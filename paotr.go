// Package paotr solves the Probabilistic AND-OR Tree Resolution (PAOTR)
// problem with shared streams: given a boolean query tree whose leaves are
// probabilistic predicates over windowed sensor data streams, find a leaf
// evaluation order (schedule) minimizing the expected data acquisition
// cost, where a data item pulled for one leaf is reused for free by every
// later leaf that needs it.
//
// It is a from-scratch reproduction of
//
//	H. Casanova, L. Lim, Y. Robert, F. Vivien, D. Zaidouni.
//	"Cost-Optimal Execution of Boolean Query Trees with Shared Streams."
//	IPDPS 2014.
//
// The package exposes the library's stable public surface; the
// implementation lives in internal packages:
//
//   - Exact expected-cost evaluation of any schedule (Proposition 2),
//     with truth-table and Monte-Carlo reference evaluators.
//   - The optimal greedy algorithm for shared AND-trees (Algorithm 1,
//     Theorem 1) and the classical read-once greedy baseline.
//   - Ten DNF scheduling heuristics (leaf-, AND- and stream-ordered) and
//     exhaustive branch-and-bound searches exploiting depth-first
//     dominance (Theorem 2).
//   - Random instance generators and experiment drivers reproducing every
//     figure of the paper's evaluation.
//   - A full pull-model query engine over simulated sensor streams, with
//     a query language, windowed predicates, an acquisition cache and
//     trace-driven probability estimation.
//   - A concurrent multi-query scheduling service (internal/service,
//     cmd/paotrserve): many continuous queries share one acquisition
//     cache and skip re-planning via per-query plan caches.
//
// # Quick start
//
//	tree := &paotr.Tree{
//	    Streams: []paotr.Stream{{Name: "A", Cost: 1}, {Name: "B", Cost: 1}},
//	    Leaves: []paotr.Leaf{
//	        {And: 0, Stream: 0, Items: 1, Prob: 0.75},
//	        {And: 0, Stream: 0, Items: 2, Prob: 0.10},
//	        {And: 0, Stream: 1, Items: 1, Prob: 0.50},
//	    },
//	}
//	schedule := paotr.OptimalAndTree(tree)       // Algorithm 1
//	cost := paotr.ExpectedCost(tree, schedule)   // 1.825
package paotr

import (
	"math/rand/v2"

	"paotr/internal/andtree"
	"paotr/internal/dnf"
	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/strategy"
)

// Core model types, re-exported from internal/query.
type (
	// Tree is a DNF query tree (an OR of AND nodes); an AND-tree is a
	// Tree with a single AND node.
	Tree = query.Tree
	// Stream is a data stream with a per-item acquisition cost.
	Stream = query.Stream
	// StreamID indexes a Tree's streams.
	StreamID = query.StreamID
	// Leaf is a probabilistic predicate leaf.
	Leaf = query.Leaf
	// Node is a general AND-OR tree as produced by the parser; use
	// Node.ToDNF to obtain a schedulable Tree.
	Node = query.Node
	// Schedule is a leaf evaluation order.
	Schedule = sched.Schedule
	// Heuristic is a named DNF schedule-construction strategy.
	Heuristic = dnf.Heuristic
	// SearchOptions bounds exhaustive schedule searches.
	SearchOptions = dnf.SearchOptions
	// SearchResult is the outcome of an exhaustive schedule search.
	SearchResult = dnf.SearchResult
)

// ExpectedCost returns the exact expected acquisition cost of evaluating
// tree t in schedule order s (Proposition 2 of the paper). s may also be a
// prefix of a schedule.
func ExpectedCost(t *Tree, s Schedule) float64 { return sched.Cost(t, s) }

// AndTreeCost is a specialized O(m) expected-cost evaluation for AND-trees.
func AndTreeCost(t *Tree, s Schedule) float64 { return sched.AndTreeCost(t, s) }

// MonteCarloCost estimates the expected cost of a schedule by simulating n
// random executions — an independent check of ExpectedCost.
func MonteCarloCost(t *Tree, s Schedule, n int, rng *rand.Rand) float64 {
	return sched.MonteCarloCost(t, s, n, rng)
}

// OptimalAndTree returns a cost-optimal schedule for a shared AND-tree
// (Algorithm 1 / Theorem 1 of the paper). It panics if t has more than one
// AND node.
func OptimalAndTree(t *Tree) Schedule { return andtree.Greedy(t) }

// ReadOnceAndTree returns the classical read-once greedy schedule (sort by
// d*c/q), which is optimal only when no stream is shared — the baseline of
// the paper's Figure 4.
func ReadOnceAndTree(t *Tree) Schedule { return andtree.ReadOnceGreedy(t) }

// ScheduleDNF builds a schedule for a DNF tree with the paper's best
// heuristic: AND-ordered by increasing C/p with dynamic cost computation.
func ScheduleDNF(t *Tree) Schedule { return dnf.AndOrderedIncCOverPDynamic(t, nil) }

// Heuristics returns the ten schedule heuristics evaluated in the paper's
// Figures 5 and 6, in figure-legend order.
func Heuristics() []Heuristic { return dnf.Heuristics() }

// BestHeuristic runs every deterministic heuristic and returns the
// cheapest schedule found with its cost (a portfolio scheduler).
func BestHeuristic(t *Tree) (Schedule, float64) { return dnf.BestHeuristicSchedule(t) }

// OptimalDNF finds a provably optimal schedule for a DNF tree by
// branch-and-bound over depth-first schedules (sound by Theorem 2).
// The search is exponential; bound it with opts.MaxNodes for large trees,
// in which case the result may be inexact (Exact=false).
func OptimalDNF(t *Tree, opts SearchOptions) SearchResult {
	return dnf.OptimalDepthFirst(t, opts)
}

// OptimalNonLinear computes the expected cost of an optimal non-linear
// (decision-tree) strategy by dynamic programming — the Section V
// extension. Limited to 12 leaves.
func OptimalNonLinear(t *Tree) float64 { return strategy.OptimalNonLinear(t) }

// NonLinearCounterExample returns a shared DNF tree on which the optimal
// non-linear strategy is strictly cheaper than every schedule, witnessing
// that linear strategies are not dominant in the shared model.
func NonLinearCounterExample() *Tree { return strategy.CounterExample() }

// NewAndTree builds a single-AND tree from streams and leaves.
func NewAndTree(streams []Stream, leaves []Leaf) *Tree {
	return query.NewAndTree(streams, leaves)
}

// Warm describes data items already held in the device cache when a
// schedule starts; Warm[k][t-1] is true when the t-th most recent item of
// stream k is in memory. It generalizes Algorithm 1's NItems mechanism to
// the arbitrary cache states of continuous query processing.
type Warm = sched.Warm

// WarmFromCounts builds a prefix-form warm state: counts[k] most recent
// items of stream k are cached.
func WarmFromCounts(counts []int) Warm { return sched.WarmFromCounts(counts) }

// ExpectedCostWarm is ExpectedCost starting from a warm cache: items
// already held contribute zero acquisition cost.
func ExpectedCostWarm(t *Tree, s Schedule, w Warm) float64 { return sched.CostWarm(t, s, w) }

// OptimalAndTreeWarm is Algorithm 1 generalized to a warm cache; it
// matches the exhaustive warm-start optimum on randomized tests.
func OptimalAndTreeWarm(t *Tree, w Warm) Schedule { return andtree.GreedyWarm(t, w) }

// ScheduleDNFWarm is the paper's best heuristic computed against a warm
// cache — the planner used by the continuous query engine.
func ScheduleDNFWarm(t *Tree, w Warm) Schedule {
	return dnf.AndOrderedIncCOverPDynamicWarm(t, w)
}

// OptimalDNFParallel is OptimalDNF with the first branching level fanned
// out over worker goroutines sharing the incumbent; results are identical
// to the sequential search.
func OptimalDNFParallel(t *Tree, opts SearchOptions, workers int) SearchResult {
	return dnf.OptimalDepthFirstParallel(t, opts, workers)
}

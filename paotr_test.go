package paotr_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr"
)

func section2ATree() *paotr.Tree {
	return paotr.NewAndTree(
		[]paotr.Stream{{Name: "A", Cost: 1}, {Name: "B", Cost: 1}},
		[]paotr.Leaf{
			{Stream: 0, Items: 1, Prob: 0.75},
			{Stream: 0, Items: 2, Prob: 0.10},
			{Stream: 1, Items: 1, Prob: 0.50},
		},
	)
}

func TestQuickStartExample(t *testing.T) {
	tree := section2ATree()
	s := paotr.OptimalAndTree(tree)
	if got := paotr.ExpectedCost(tree, s); math.Abs(got-1.825) > 1e-12 {
		t.Errorf("optimal cost = %v, want 1.825", got)
	}
	if got := paotr.AndTreeCost(tree, s); math.Abs(got-1.825) > 1e-12 {
		t.Errorf("AndTreeCost = %v", got)
	}
	ro := paotr.ReadOnceAndTree(tree)
	if got := paotr.ExpectedCost(tree, ro); got < 1.875-1e-12 {
		t.Errorf("read-once baseline = %v, expected >= 1.875", got)
	}
}

func TestFacadeDNF(t *testing.T) {
	tree := &paotr.Tree{
		Streams: []paotr.Stream{{Name: "X", Cost: 2}, {Name: "Y", Cost: 3}},
		Leaves: []paotr.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.4},
			{And: 0, Stream: 1, Items: 2, Prob: 0.7},
			{And: 1, Stream: 0, Items: 2, Prob: 0.5},
			{And: 1, Stream: 1, Items: 1, Prob: 0.6},
		},
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	s := paotr.ScheduleDNF(tree)
	if err := s.Validate(tree); err != nil {
		t.Fatal(err)
	}
	hc := paotr.ExpectedCost(tree, s)
	res := paotr.OptimalDNF(tree, paotr.SearchOptions{})
	if !res.Exact {
		t.Fatal("search should complete")
	}
	if res.Cost > hc+1e-9 {
		t.Errorf("optimum %v worse than heuristic %v", res.Cost, hc)
	}
	bs, bc := paotr.BestHeuristic(tree)
	if err := bs.Validate(tree); err != nil {
		t.Fatal(err)
	}
	if bc > hc+1e-9 {
		t.Errorf("portfolio %v worse than single heuristic %v", bc, hc)
	}
	if len(paotr.Heuristics()) != 10 {
		t.Errorf("expected the paper's 10 heuristics")
	}
}

func TestFacadeMonteCarlo(t *testing.T) {
	tree := section2ATree()
	s := paotr.OptimalAndTree(tree)
	rng := rand.New(rand.NewPCG(1, 2))
	est := paotr.MonteCarloCost(tree, s, 100000, rng)
	if math.Abs(est-1.825) > 0.05 {
		t.Errorf("Monte-Carlo = %v, want ~1.825", est)
	}
}

func TestFacadeWarmAndParallel(t *testing.T) {
	tree := section2ATree()
	// With the two most recent A items cached, l1 and l2 are free; only
	// l3 can cost anything, and only if both A-leaves succeed.
	w := paotr.WarmFromCounts([]int{2, 0})
	s := paotr.OptimalAndTreeWarm(tree, w)
	want := 0.75 * 0.10 * 1.0
	if got := paotr.ExpectedCostWarm(tree, s, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("warm cost = %v, want %v", got, want)
	}
	dnfTree := &paotr.Tree{
		Streams: []paotr.Stream{{Name: "X", Cost: 2}, {Name: "Y", Cost: 3}},
		Leaves: []paotr.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.4},
			{And: 0, Stream: 1, Items: 2, Prob: 0.7},
			{And: 1, Stream: 0, Items: 2, Prob: 0.5},
			{And: 1, Stream: 1, Items: 1, Prob: 0.6},
		},
	}
	seq := paotr.OptimalDNF(dnfTree, paotr.SearchOptions{})
	par := paotr.OptimalDNFParallel(dnfTree, paotr.SearchOptions{}, 4)
	if math.Abs(seq.Cost-par.Cost) > 1e-12 {
		t.Errorf("parallel %v != sequential %v", par.Cost, seq.Cost)
	}
	ws := paotr.ScheduleDNFWarm(dnfTree, nil)
	if err := ws.Validate(dnfTree); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNonLinear(t *testing.T) {
	tree := paotr.NonLinearCounterExample()
	res := paotr.OptimalDNF(tree, paotr.SearchOptions{})
	nl := paotr.OptimalNonLinear(tree)
	if nl >= res.Cost-1e-12 {
		t.Errorf("counter-example gap missing: non-linear %v vs linear %v", nl, res.Cost)
	}
}

// Command doclint is the documentation gate CI runs alongside go vet:
// it enforces that the core packages keep a complete godoc surface and
// that the operations runbook stays in sync with the binaries it
// documents.
//
// Two checks:
//
//  1. Doc-comment lint: every exported top-level symbol (and the
//     package clause itself) in the core packages — internal/fleet,
//     internal/service, internal/obs, internal/admit — must carry a doc
//     comment. go vet does not enforce this; the repo treats a bare
//     exported symbol as a build defect.
//  2. Docs freshness: every CLI flag declared by cmd/paotrserve and
//     cmd/paotrload and every HTTP route paotrserve registers must be
//     mentioned in docs/OPERATIONS.md. Adding a flag or endpoint
//     without documenting how to operate it fails the build.
//
// Usage:
//
//	doclint [-root <repo root>]
//
// Exits nonzero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// docPackages are the packages whose exported API must be fully
// documented.
var docPackages = []string{
	"internal/fleet",
	"internal/service",
	"internal/obs",
	"internal/admit",
}

// flagDirs are the commands whose flags the runbook must cover.
var flagDirs = []string{"cmd/paotrserve", "cmd/paotrload"}

// routeDir is the command whose HTTP routes the runbook must cover.
const routeDir = "cmd/paotrserve"

// runbook is the operations document the freshness check targets.
const runbook = "docs/OPERATIONS.md"

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	violations, err := run(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// run executes both checks under root and returns every violation.
func run(root string) ([]string, error) {
	var out []string
	for _, pkg := range docPackages {
		vs, err := lintPackage(filepath.Join(root, pkg), pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	fresh, err := checkFreshness(root)
	if err != nil {
		return nil, err
	}
	return append(out, fresh...), nil
}

// lintPackage parses one package directory (tests excluded) and reports
// every exported top-level symbol without a doc comment, plus a missing
// package doc.
func lintPackage(dir, label string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			f := pkg.Files[name]
			if f.Doc != nil {
				hasPkgDoc = true
			}
			out = append(out, lintFile(fset, f)...)
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package doc comment", label, pkg.Name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// lintFile reports undocumented exported declarations in one file.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind, name := "function", d.Name.Name
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				kind, name = "method", recv+"."+d.Name.Name
			}
			report(d.Pos(), kind, name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// A documented const/var block covers its members;
						// an inline or trailing comment also counts.
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the bare type name of a method receiver.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// checkFreshness asserts every flag of flagDirs and every route of
// routeDir appears in the runbook.
func checkFreshness(root string) ([]string, error) {
	docBytes, err := os.ReadFile(filepath.Join(root, runbook))
	if err != nil {
		return nil, fmt.Errorf("%s: %w (the freshness check needs the runbook)", runbook, err)
	}
	doc := string(docBytes)
	var out []string
	for _, dir := range flagDirs {
		flags, err := collectFlags(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		for _, fl := range flags {
			if !strings.Contains(doc, "-"+fl) {
				out = append(out, fmt.Sprintf("%s: flag -%s is not documented in %s", dir, fl, runbook))
			}
		}
	}
	routes, err := collectRoutes(filepath.Join(root, routeDir))
	if err != nil {
		return nil, err
	}
	for _, rt := range routes {
		if !strings.Contains(doc, rt) {
			out = append(out, fmt.Sprintf("%s: endpoint %s is not documented in %s", routeDir, rt, runbook))
		}
	}
	return out, nil
}

// collectFlags parses one command directory for flag.<Type>("name",...)
// declarations and returns the sorted flag names.
func collectFlags(dir string) ([]string, error) {
	seen := map[string]bool{}
	err := walkCalls(dir, func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "flag" {
			return
		}
		switch sel.Sel.Name {
		case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration",
			"StringVar", "BoolVar", "IntVar", "Int64Var", "UintVar", "Uint64Var", "Float64Var", "DurationVar":
		default:
			return
		}
		args := call.Args
		if strings.HasSuffix(sel.Sel.Name, "Var") {
			args = args[1:] // (ptr, name, ...)
		}
		if len(args) > 0 {
			if name, ok := stringLit(args[0]); ok {
				seen[name] = true
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return sortedKeys(seen), nil
}

// collectRoutes parses one command directory for mux Handle/HandleFunc
// registrations with literal patterns and returns the sorted route
// paths, method stripped and wildcards trimmed ("GET /results/{id...}"
// -> "/results").
func collectRoutes(dir string) ([]string, error) {
	seen := map[string]bool{}
	err := walkCalls(dir, func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		if sel.Sel.Name != "HandleFunc" && sel.Sel.Name != "Handle" {
			return
		}
		pattern, ok := stringLit(call.Args[0])
		if !ok {
			return // computed pattern (e.g. the pprof profile loop)
		}
		if _, path, found := strings.Cut(pattern, " "); found {
			pattern = path
		}
		if i := strings.IndexByte(pattern, '{'); i >= 0 {
			pattern = pattern[:i]
		}
		pattern = strings.TrimRight(pattern, "/")
		if pattern != "" {
			seen[pattern] = true
		}
	})
	if err != nil {
		return nil, err
	}
	return sortedKeys(seen), nil
}

// walkCalls applies fn to every call expression in a directory's
// non-test sources.
func walkCalls(dir string, fn func(*ast.CallExpr)) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					fn(call)
				}
				return true
			})
		}
	}
	return nil
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the enforcement point: go test ./... fails when a
// core package grows an undocumented exported symbol or a flag/endpoint
// is missing from the runbook.
func TestRepoIsClean(t *testing.T) {
	violations, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

// write lays out one file under a temp root.
func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLintHasTeeth proves the doc lint flags undocumented exported
// symbols and missing package docs, and stays quiet on documented and
// unexported ones.
func TestLintHasTeeth(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "x.go", `package x

// Documented is fine.
func Documented() {}

func Naked() {}

type Bare struct{}

func (Bare) Method() {}

type hidden struct{}

func (hidden) Exported() {} // unexported receiver: not API surface

// Covered block doc.
const (
	CoveredA = 1
	CoveredB = 2
)
`)
	vs, err := lintPackage(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(vs, "\n")
	for _, want := range []string{
		"function Naked has no doc comment",
		"type Bare has no doc comment",
		"method Bare.Method has no doc comment",
		"package x has no package doc comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint missed %q in:\n%s", want, joined)
		}
	}
	for _, wrong := range []string{"Documented", "hidden.Exported", "CoveredA"} {
		if strings.Contains(joined, wrong) {
			t.Errorf("lint flagged %s, which is documented or unexported:\n%s", wrong, joined)
		}
	}
	if len(vs) != 4 {
		t.Errorf("lint found %d violations, want exactly 4:\n%s", len(vs), joined)
	}
}

// TestFreshnessHasTeeth proves the runbook check catches an undocumented
// flag and endpoint, and passes once both are mentioned.
func TestFreshnessHasTeeth(t *testing.T) {
	root := t.TempDir()
	write(t, root, "cmd/paotrserve/main.go", `package main

import (
	"flag"
	"net/http"
)

func main() {
	_ = flag.Bool("documented", false, "")
	_ = flag.Bool("forgotten", false, "")
	http.HandleFunc("GET /known", nil)
	http.HandleFunc("GET /secret/{id...}", nil)
}
`)
	write(t, root, "cmd/paotrload/main.go", `package main

import "flag"

func main() { _ = flag.Int("load-knob", 0, "") }
`)
	write(t, root, "docs/OPERATIONS.md", "-documented and -load-knob and /known\n")
	vs, err := checkFreshness(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(vs, "\n")
	if !strings.Contains(joined, "flag -forgotten is not documented") {
		t.Errorf("freshness missed the undocumented flag:\n%s", joined)
	}
	if !strings.Contains(joined, "endpoint /secret is not documented") {
		t.Errorf("freshness missed the undocumented endpoint (wildcard should be trimmed):\n%s", joined)
	}
	if len(vs) != 2 {
		t.Errorf("freshness found %d violations, want exactly 2:\n%s", len(vs), joined)
	}

	write(t, root, "docs/OPERATIONS.md", "-documented -forgotten -load-knob /known /secret\n")
	vs, err = checkFreshness(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("freshness still complains on a complete runbook: %v", vs)
	}
}

// TestFreshnessNeedsRunbook: a deleted runbook is an error, not a pass.
func TestFreshnessNeedsRunbook(t *testing.T) {
	root := t.TempDir()
	write(t, root, "cmd/paotrserve/main.go", "package main\nfunc main() {}\n")
	write(t, root, "cmd/paotrload/main.go", "package main\nfunc main() {}\n")
	if _, err := checkFreshness(root); err == nil {
		t.Error("missing runbook passed the freshness check")
	}
}

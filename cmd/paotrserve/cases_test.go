package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"paotr/internal/engine"
	"paotr/internal/service"
	"paotr/internal/stream"
)

// e2eStep is one HTTP interaction of a catalogued case.
type e2eStep struct {
	method, path, body string
	wantStatus         int
	// check, when set, inspects the decoded JSON response.
	check func(t *testing.T, body []byte)
}

// e2eCase is one row of cmd/paotrserve/TESTCASES.md: caseID must appear
// in the catalog (enforced by TestCatalogInSync).
type e2eCase struct {
	caseID string
	name   string
	// server overrides the default (linear, batched) test service.
	server func(t *testing.T) *httptest.Server
	steps  []e2eStep
}

// adaptiveServer forces decision-tree execution for every query within
// the DP bound: adaptive default executor with a negative gap threshold,
// mirroring `paotrserve -executor adaptive -adaptive-gap -1`.
func adaptiveServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := newServiceWith(serviceConfig{
		seed: 1, workers: 4, replan: 0.02,
		executor: "adaptive", gap: -1, batch: true, fleetPlan: true, shapeFactor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(svc, -1))
	t.Cleanup(srv.Close)
	return srv
}

// driftServer serves the regime-shifting scenario: probabilities and
// per-item costs of streams r0..r3 flip at the configured tick,
// mirroring `paotrserve -scenario drift -shift-tick n`.
func driftServer(shiftTick int64) func(t *testing.T) *httptest.Server {
	return func(t *testing.T) *httptest.Server {
		t.Helper()
		svc, err := newServiceWith(serviceConfig{
			seed: 17, workers: 4, replan: 0.02,
			executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
			scenario: "drift", shiftTick: shiftTick,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newServer(svc, -1))
		t.Cleanup(srv.Close)
		return srv
	}
}

// cumulativeServer runs the never-forgetting baseline estimator,
// mirroring `paotrserve -estimator cumulative`.
func cumulativeServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := newServiceWith(serviceConfig{
		seed: 1, workers: 4, replan: 0.02,
		executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
		estimator: "cumulative",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(svc, -1))
	t.Cleanup(srv.Close)
	return srv
}

// shardedServer serves the 4-shard runtime over the wearables fleet,
// mirroring `paotrserve -shards 4`.
func shardedServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := newServiceWith(serviceConfig{
		seed: 1, workers: 4, replan: 0.02,
		executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
		shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(svc, -1))
	t.Cleanup(srv.Close)
	return srv
}

// oneShardServer serves the sharded runtime with a single shard,
// mirroring `paotrserve -shards 1` through the NewSharded path (the
// degenerate configuration that must match the plain service).
func oneShardServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.NewSharded(stream.Wearables(1), 1,
		service.WithWorkers(4),
		service.WithEngineOptions(engine.WithReplanThreshold(0.02)))
	srv := httptest.NewServer(newServer(svc, -1))
	t.Cleanup(srv.Close)
	return srv
}

// relayShardedServer serves the 4-shard runtime with the fleet-global
// L2 item relay at the given transfer fraction, mirroring
// `paotrserve -shards 4 -relay-frac <frac>`.
func relayShardedServer(frac float64) func(t *testing.T) *httptest.Server {
	return func(t *testing.T) *httptest.Server {
		t.Helper()
		svc, err := newServiceWith(serviceConfig{
			seed: 1, workers: 4, replan: 0.02,
			executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
			shards: 4, relayFrac: frac,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newServer(svc, -1))
		t.Cleanup(srv.Close)
		return srv
	}
}

// remoteRelayCase is E00702: two shard workers running as separate
// HTTP processes behind a relay-enabled coordinator, mirroring
// `paotrserve -worker` plus `paotrserve -join`. After ticking, a fresh
// coordinator over the same running workers (a coordinator restart)
// must adopt the standing queries and keep serving merged results.
func remoteRelayCase() e2eCase {
	cfg := serviceConfig{
		seed: 1, workers: 2, replan: 0.02,
		executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
		relayFrac: 0.1,
	}
	var endpoints []string
	server := func(t *testing.T) *httptest.Server {
		t.Helper()
		endpoints = nil
		for i := 0; i < 2; i++ {
			h, err := newWorkerHandler(cfg, i)
			if err != nil {
				t.Fatal(err)
			}
			ws := httptest.NewServer(h)
			t.Cleanup(ws.Close)
			endpoints = append(endpoints, ws.URL)
		}
		svc, err := newCoordinator(cfg, endpoints)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newServer(svc, -1))
		t.Cleanup(srv.Close)
		return srv
	}
	return e2eCase{caseID: "E00702", name: "remote workers and coordinator restart", server: server, steps: []e2eStep{
		{"POST", "/queries", `{"id":"t0","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
		{"POST", "/queries", `{"id":"t1","query":"AVG(heart-rate,5) > 95 OR accelerometer > 15"}`, http.StatusCreated, nil},
		{"POST", "/queries", `{"id":"t2","query":"heart-rate > 110 OR gps-speed > 1.5"}`, http.StatusCreated, nil},
		{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
		{"GET", "/metrics", "", http.StatusOK,
			func(t *testing.T, body []byte) {
				var m service.Metrics
				mustDecode(t, body, &m)
				if m.Shards != 2 || m.Executions != 30 {
					t.Errorf("remote fleet: shards = %d, executions = %d, want 2 and 30", m.Shards, m.Executions)
				}
				if !m.RelayEnabled || m.RelayPurchases == 0 {
					t.Errorf("remote relay inactive: enabled=%v purchases=%d", m.RelayEnabled, m.RelayPurchases)
				}
			}},
		{"GET", "/healthz", "", http.StatusOK,
			func(t *testing.T, body []byte) {
				// Coordinator restart: a second coordinator over the same
				// running workers adopts the standing queries and serves
				// merged ticks without re-registration.
				svc2, err := newCoordinator(cfg, endpoints)
				if err != nil {
					t.Fatalf("restarted coordinator: %v", err)
				}
				if ids := svc2.QueryIDs(); len(ids) != 3 {
					t.Fatalf("restarted coordinator adopted %d queries, want 3: %v", len(ids), ids)
				}
				tr := svc2.Tick()
				if len(tr.Executions) != 3 {
					t.Errorf("restarted coordinator tick merged %d executions, want 3", len(tr.Executions))
				}
				for _, e := range tr.Executions {
					if e.Err != "" {
						t.Errorf("restarted coordinator execution %s: %s", e.ID, e.Err)
					}
				}
			}},
	}}
}

// -replan-threshold 0.1`: the tolerant drift threshold keeps settled
// estimates within the planner's patch eligibility, so post-shift churn
// exercises incremental replanning rather than full replans.
func driftChurnServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := newServiceWith(serviceConfig{
		seed: 17, workers: 4, replan: 0.1,
		executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
		scenario: "drift", shiftTick: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(svc, -1))
	t.Cleanup(srv.Close)
	return srv
}

// registrationStormCase is E00601: a four-digit registration storm
// followed by ticks — the fleet scale the sub-quadratic joint planner
// exists for. The metrics read checks the planner-health fields land on
// the wire (plan_ns, plan_incremental) and that the storm actually went
// through joint planning.
func registrationStormCase() e2eCase {
	const storm = 1000
	steps := make([]e2eStep, 0, storm+2)
	for i := 0; i < storm; i++ {
		q := fmt.Sprintf(`{"id":"storm%d","query":"AVG(heart-rate,%d) > %d OR AVG(spo2,%d) < %d"}`,
			i, i%6+2, 80+i%40, i%4+2, 88+i%8)
		steps = append(steps, e2eStep{"POST", "/queries", q, http.StatusCreated, nil})
	}
	steps = append(steps,
		e2eStep{"POST", "/tick", `{"steps":2}`, http.StatusOK, nil},
		e2eStep{"GET", "/metrics", "", http.StatusOK, func(t *testing.T, body []byte) {
			for _, field := range []string{`"plan_ns"`, `"plan_incremental"`} {
				if !strings.Contains(string(body), field) {
					t.Errorf("/metrics missing %s", field)
				}
			}
			var m service.Metrics
			mustDecode(t, body, &m)
			if m.Queries != storm || m.Ticks != 2 {
				t.Errorf("queries = %d, ticks = %d, want %d and 2", m.Queries, m.Ticks, storm)
			}
			if m.FleetPlans == 0 || m.FleetPlannedExecutions == 0 {
				t.Errorf("storm fleet did no joint planning: plans %d, executions %d",
					m.FleetPlans, m.FleetPlannedExecutions)
			}
			if m.PlanNanos <= 0 {
				t.Errorf("plan_ns not accounted: %d", m.PlanNanos)
			}
		}})
	return e2eCase{caseID: "E00601", name: "1k-query registration storm plans jointly", steps: steps}
}

// twinStormCase is E00801: ten thousand tenants registering twenty
// distinct alert templates between them. Shape factoring interns the
// storm into twenty equivalence classes — registration of an exact twin
// never recompiles or replans — and each tick evaluates twenty shapes,
// fanning the verdicts out to the other 9,980 subscribers for free.
func twinStormCase() e2eCase {
	const tenants, shapes = 10000, 20
	steps := make([]e2eStep, 0, tenants+2)
	for i := 0; i < tenants; i++ {
		s := i % shapes
		q := fmt.Sprintf(`{"id":"twin%d","query":"AVG(heart-rate,%d) > %d OR spo2 < %d"}`,
			i, s%6+2, 80+s, 88+s%8)
		steps = append(steps, e2eStep{"POST", "/queries", q, http.StatusCreated, nil})
	}
	steps = append(steps,
		e2eStep{"POST", "/tick", `{"steps":2}`, http.StatusOK, nil},
		e2eStep{"GET", "/metrics", "", http.StatusOK, func(t *testing.T, body []byte) {
			var m service.Metrics
			mustDecode(t, body, &m)
			if m.Queries != tenants || m.DistinctShapes != shapes || m.ShapeSubscribers != tenants {
				t.Errorf("census: %d queries in %d classes (%d subscribers), want %d in %d",
					m.Queries, m.DistinctShapes, m.ShapeSubscribers, tenants, shapes)
			}
			if m.Executions != 2*tenants {
				t.Errorf("executions = %d, want %d (every tenant, every tick)", m.Executions, 2*tenants)
			}
			if want := int64(2 * (tenants - shapes)); m.SharedExecutions != want {
				t.Errorf("shared executions = %d, want %d (all but one leader per class per tick)",
					m.SharedExecutions, want)
			}
		}})
	return e2eCase{caseID: "E00801", name: "10k-twin registration storm factors into 20 classes", steps: steps}
}

// thirteenLeafQuery exceeds the 12-leaf DP bound of the strategy package.
func thirteenLeafQuery() string {
	terms := make([]string, 13)
	for i := range terms {
		terms[i] = fmt.Sprintf("AVG(heart-rate,%d) > %d [p=0.9]", i%5+1, 60+i)
	}
	return strings.Join(terms, " AND ")
}

func e2eCases() []e2eCase {
	registerHR := e2eStep{"POST", "/queries", `{"id":"hr","query":"heart-rate > 100"}`, http.StatusCreated, nil}
	// preChurn carries E00602's incremental-plan count across its two
	// metrics reads: the post-churn tick must patch, not full-replan.
	var preChurn int64
	cases := []e2eCase{
		{caseID: "E00001", name: "register linear query", steps: []e2eStep{
			{"POST", "/queries", `{"id":"q","query":"AVG(heart-rate,5) > 100"}`, http.StatusCreated,
				func(t *testing.T, body []byte) {
					var m service.QueryMetrics
					mustDecode(t, body, &m)
					if m.ID != "q" || m.Executor != "linear" || m.Every != 1 {
						t.Errorf("registered metrics = %+v", m)
					}
				}},
		}},
		{caseID: "E00002", name: "register adaptive query", steps: []e2eStep{
			{"POST", "/queries", `{"id":"q","query":"heart-rate > 100 OR spo2 < 92","executor":"adaptive"}`, http.StatusCreated,
				func(t *testing.T, body []byte) {
					var m service.QueryMetrics
					mustDecode(t, body, &m)
					if m.Executor != "adaptive" {
						t.Errorf("executor = %q, want adaptive", m.Executor)
					}
				}},
		}},
		{caseID: "E00003", name: "every=n cadence", steps: []e2eStep{
			{"POST", "/queries", `{"id":"slow","query":"spo2 > 0","every":5}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":20}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Executions != 4 {
						t.Errorf("every=5 over 20 ticks ran %d times, want 4", m.Executions)
					}
				}},
		}},
		{caseID: "E00004", name: "tick returns due executions", steps: []e2eStep{
			registerHR,
			{"POST", "/tick", `{"steps":3}`, http.StatusOK,
				func(t *testing.T, body []byte) {
					var ticks []service.TickResult
					mustDecode(t, body, &ticks)
					if len(ticks) != 3 || len(ticks[2].Executions) != 1 || ticks[2].Executions[0].ID != "hr" {
						t.Errorf("ticks = %+v", ticks)
					}
				}},
		}},
		{caseID: "E00005", name: "results oldest first", steps: []e2eStep{
			registerHR,
			{"POST", "/tick", `{"steps":5}`, http.StatusOK, nil},
			{"GET", "/results/hr?n=2", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var res []service.Execution
					mustDecode(t, body, &res)
					if len(res) != 2 || res[0].Tick != 4 || res[1].Tick != 5 {
						t.Errorf("results = %+v", res)
					}
				}},
		}},
		{caseID: "E00006", name: "unregister frees the id", steps: []e2eStep{
			registerHR,
			{"DELETE", "/queries/hr", "", http.StatusOK, nil},
			{"POST", "/queries", `{"id":"hr","query":"spo2 < 90"}`, http.StatusCreated, nil},
		}},
		{caseID: "E00007", name: "healthz", steps: []e2eStep{
			{"GET", "/healthz", "", http.StatusOK, nil},
		}},
		{caseID: "E00008", name: "list queries", steps: []e2eStep{
			registerHR,
			{"POST", "/queries", `{"id":"ox","query":"spo2 < 92"}`, http.StatusCreated, nil},
			{"GET", "/queries", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var ms []service.QueryMetrics
					mustDecode(t, body, &ms)
					if len(ms) != 2 || ms[0].ID != "hr" || ms[1].ID != "ox" {
						t.Errorf("query list = %+v", ms)
					}
				}},
		}},

		{caseID: "E00101", name: "malformed query text", steps: []e2eStep{
			{"POST", "/queries", `{"id":"bad","query":"AVG(heart-rate"}`, http.StatusBadRequest, wantErrorBody},
		}},
		{caseID: "E00102", name: "unknown stream", steps: []e2eStep{
			{"POST", "/queries", `{"id":"bad","query":"nosuch > 1"}`, http.StatusBadRequest, wantErrorBody},
		}},
		{caseID: "E00103", name: "duplicate id", steps: []e2eStep{
			registerHR,
			{"POST", "/queries", `{"id":"hr","query":"spo2 < 90"}`, http.StatusConflict, wantErrorBody},
		}},
		{caseID: "E00104", name: "missing id or query", steps: []e2eStep{
			{"POST", "/queries", `{"id":"","query":""}`, http.StatusBadRequest, wantErrorBody},
			{"POST", "/queries", `{"id":"x"}`, http.StatusBadRequest, wantErrorBody},
		}},
		{caseID: "E00105", name: "unknown executor", steps: []e2eStep{
			{"POST", "/queries", `{"id":"x","query":"heart-rate > 1","executor":"quantum"}`, http.StatusBadRequest, wantErrorBody},
		}},
		{caseID: "E00106", name: "malformed JSON body", steps: []e2eStep{
			{"POST", "/queries", `{"id": "x", `, http.StatusBadRequest, wantErrorBody},
		}},
		{caseID: "E00107", name: "results for unknown id", steps: []e2eStep{
			{"GET", "/results/nope", "", http.StatusNotFound, wantErrorBody},
		}},
		{caseID: "E00108", name: "unregister unknown id", steps: []e2eStep{
			{"DELETE", "/queries/nope", "", http.StatusNotFound, wantErrorBody},
		}},
		{caseID: "E00109", name: "tick steps validation", steps: []e2eStep{
			{"POST", "/tick", `{"steps":0}`, http.StatusBadRequest, wantErrorBody},
			{"POST", "/tick", `{"steps":100001}`, http.StatusBadRequest, wantErrorBody},
		}},

		{caseID: "E00201", name: "adaptive strategy executes decision trees", server: adaptiveServer, steps: []e2eStep{
			{"POST", "/queries", `{"id":"ce","query":"(heart-rate > 100 [p=0.4] AND AVG(heart-rate,3) > 95 [p=0.5]) OR (spo2 < 92 [p=0.3] AND AVG(heart-rate,2) > 90 [p=0.6])"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/results/ce?n=1", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var res []service.Execution
					mustDecode(t, body, &res)
					if len(res) != 1 || res[0].Strategy != "adaptive" {
						t.Errorf("execution = %+v, want strategy adaptive", res)
					}
				}},
		}},
		{caseID: "E00202", name: "DP bound falls back to linear", server: adaptiveServer, steps: []e2eStep{
			{"POST", "/queries", fmt.Sprintf(`{"id":"big","query":%q}`, thirteenLeafQuery()), http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":2}`, http.StatusOK, nil},
			{"GET", "/results/big?n=1", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var res []service.Execution
					mustDecode(t, body, &res)
					if len(res) != 1 || res[0].Strategy != "linear" {
						t.Errorf("execution = %+v, want linear fallback", res)
					}
				}},
		}},
		{caseID: "E00203", name: "fleet metrics aggregate", steps: []e2eStep{
			registerHR,
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Ticks != 10 || m.Executions != 10 || m.Queries != 1 || m.PaidCost <= 0 || m.ExpectedCost <= 0 {
						t.Errorf("metrics = %+v", m)
					}
				}},
		}},
		{caseID: "E00204", name: "batcher coalesces duplicate first-leaf pulls", steps: []e2eStep{
			registerHR,
			{"POST", "/queries", `{"id":"hr5","query":"AVG(heart-rate,5) > 90"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"hr3","query":"AVG(heart-rate,3) > 95"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.DuplicatePullsAvoided == 0 || m.BatchedItems == 0 {
						t.Errorf("no batching recorded for overlapping queries: %+v", m)
					}
				}},
		}},
		{caseID: "E00205", name: "per-query executor kind and adaptive count", server: adaptiveServer, steps: []e2eStep{
			{"POST", "/queries", `{"id":"q","query":"heart-rate > 100 [p=0.5] OR spo2 < 92 [p=0.3]"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":5}`, http.StatusOK, nil},
			{"GET", "/queries", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var ms []service.QueryMetrics
					mustDecode(t, body, &ms)
					if len(ms) != 1 || ms[0].Executor != "adaptive" || ms[0].AdaptiveExecutions == 0 {
						t.Errorf("query metrics = %+v, want adaptive executions", ms)
					}
				}},
		}},
		{caseID: "E00301", name: "cross-tenant sharing avoids duplicate pulls", steps: []e2eStep{
			// Two tenants over overlapping streams: the joint planner
			// coalesces their opening windows, so missing items wanted by
			// both are pulled exactly once.
			{"POST", "/queries", `{"id":"a/load","query":"AVG(heart-rate,6) > 90 AND spo2 < 97"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"b/load","query":"AVG(heart-rate,6) > 95 AND accelerometer < 25"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"b/rest","query":"AVG(heart-rate,4) < 70 OR spo2 > 93"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":12}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.DuplicatePullsAvoided == 0 {
						t.Errorf("overlapping tenants avoided no duplicate pulls: %+v", m)
					}
					if m.FleetPlans == 0 || m.FleetPlannedExecutions == 0 {
						t.Errorf("no fleet planning recorded: %+v", m)
					}
					if m.FleetExpectedCost > m.IndependentExpectedCost+1e-9 {
						t.Errorf("joint model %v exceeds independent %v", m.FleetExpectedCost, m.IndependentExpectedCost)
					}
				}},
		}},
		{caseID: "E00302", name: "per-stream metrics exposed", steps: []e2eStep{
			registerHR,
			{"POST", "/queries", `{"id":"hr5","query":"AVG(heart-rate,5) > 90"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"ox","query":"AVG(spo2,3) < 95"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if len(m.PerStream) == 0 {
						t.Fatalf("no per-stream metrics: %+v", m)
					}
					byName := map[string]service.StreamMetrics{}
					for _, ps := range m.PerStream {
						byName[ps.Name] = ps
					}
					hr, ok := byName["heart-rate"]
					if !ok || hr.Requested == 0 || hr.Transferred == 0 {
						t.Errorf("heart-rate stream metrics missing or empty: %+v", m.PerStream)
					}
					if hr.HitRate <= 0 {
						t.Errorf("heart-rate hit rate not tracked: %+v", hr)
					}
					if byName["temperature"].Requested != 0 {
						t.Errorf("unused stream shows traffic: %+v", byName["temperature"])
					}
				}},
		}},
		{caseID: "E00303", name: "fleet-planned executions flagged", steps: []e2eStep{
			registerHR,
			{"POST", "/queries", `{"id":"hr2","query":"AVG(heart-rate,5) > 90"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":3}`, http.StatusOK, nil},
			{"GET", "/results/hr?n=1", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var res []service.Execution
					mustDecode(t, body, &res)
					if len(res) != 1 || !res[0].FleetPlanned {
						t.Errorf("execution = %+v, want fleet_planned", res)
					}
				}},
		}},

		{caseID: "E00401", name: "drift scenario trips detectors and forces replans", server: driftServer(40), steps: []e2eStep{
			// Register over the regime streams, tick through the shift at
			// 40, and observe the adaptation loop close via /metrics.
			{"POST", "/queries", `{"id":"or","query":"r0 < 0.5 OR r1 < 0.5 OR r2 < 0.5 OR r3 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"and","query":"r3 < 0.5 AND r0 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":160}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Estimator != "windowed" || m.EstimatorWindow == 0 {
						t.Errorf("estimator state missing: %+v", m)
					}
					if m.PredicateDetectorTrips == 0 {
						t.Errorf("no predicate detector trips across the shift: %+v", m)
					}
					if m.ReplansForced == 0 {
						t.Errorf("detector trips forced no replans: %+v", m)
					}
					for _, ps := range m.PerStream {
						if ps.Name == "r0" && ps.CostDetectorTrips == 0 {
							t.Errorf("r0 cost shift (1→6 J/item) undetected: %+v", ps)
						}
						if ps.Name == "r0" && ps.LearnedCostPerItem < 3 {
							t.Errorf("r0 learned cost %.2f, want re-learned toward 6", ps.LearnedCostPerItem)
						}
					}
				}},
		}},
		{caseID: "E00402", name: "stationary run stays quiet", server: driftServer(0), steps: []e2eStep{
			// shift-tick 0 never shifts: same streams, one regime — the
			// detectors must not trip and no replans may be forced.
			{"POST", "/queries", `{"id":"or","query":"r0 < 0.5 OR r1 < 0.5 OR r2 < 0.5 OR r3 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":160}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.PredicateDetectorTrips != 0 || m.CostDetectorTrips != 0 || m.ReplansForced != 0 {
						t.Errorf("stationary run reported adaptive activity: %+v", m)
					}
					if m.AvgCIWidth <= 0 || m.AvgCIWidth > 0.6 {
						t.Errorf("avg CI width %.2f after 160 ticks, want tightened evidence", m.AvgCIWidth)
					}
				}},
		}},
		{caseID: "E00403", name: "cumulative estimator baseline selectable", server: cumulativeServer, steps: []e2eStep{
			registerHR,
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Estimator != "cumulative" || m.EstimatorWindow != 0 {
						t.Errorf("estimator = %q/%d, want cumulative baseline", m.Estimator, m.EstimatorWindow)
					}
					if m.PredicateDetectorTrips != 0 || m.ReplansForced != 0 {
						t.Errorf("cumulative baseline reported detector activity: %+v", m)
					}
					if m.TrackedPredicates == 0 {
						t.Errorf("trace store tracked no predicates: %+v", m)
					}
				}},
		}},

		{caseID: "E00501", name: "sharded register, tick and per-shard results", server: shardedServer, steps: []e2eStep{
			{"POST", "/queries", `{"id":"a/tachy","query":"AVG(heart-rate,5) > 100 AND accelerometer < 12"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"b/workout","query":"accelerometer > 15 AND heart-rate > 100"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"b/hypoxia","query":"spo2 < 92 OR heart-rate > 110"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"c/heat","query":"AVG(temperature,6) > 24 AND heart-rate > 90"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":5}`, http.StatusOK,
				func(t *testing.T, body []byte) {
					var ticks []service.TickResult
					mustDecode(t, body, &ticks)
					if len(ticks) != 5 || len(ticks[4].Executions) != 4 {
						t.Fatalf("ticks = %+v", ticks)
					}
					shards := map[int]bool{}
					for _, e := range ticks[4].Executions {
						if e.Err != "" {
							t.Errorf("execution error: %+v", e)
						}
						shards[e.Shard] = true
					}
					if len(shards) < 2 {
						t.Errorf("4 queries all executed on %d shard(s); want a real split", len(shards))
					}
				}},
			{"GET", "/results/a/tachy?n=3", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var res []service.Execution
					mustDecode(t, body, &res)
					if len(res) != 3 {
						t.Errorf("results = %+v", res)
					}
				}},
		}},
		{caseID: "E00502", name: "sharded metrics expose per-shard and sharing-lost state", server: shardedServer, steps: []e2eStep{
			{"POST", "/queries", `{"id":"t0","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t1","query":"AVG(heart-rate,5) > 95 OR accelerometer > 15"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t2","query":"heart-rate > 110 OR gps-speed > 1.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":20}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Shards != 4 || len(m.PerShard) != 4 {
						t.Fatalf("shards = %d, per_shard = %d entries", m.Shards, len(m.PerShard))
					}
					var execs int64
					for _, ps := range m.PerShard {
						execs += ps.Executions
					}
					if execs != m.Executions || m.Executions != 60 {
						t.Errorf("per-shard executions %d vs fleet %d (want 60)", execs, m.Executions)
					}
					if m.ShardJointExpectedCost <= 0 || m.SingleJointExpectedCost <= 0 {
						t.Errorf("sharing-loss model absent: %+v", m)
					}
					if m.ShardJointExpectedCost < m.SingleJointExpectedCost-1e-9 || m.SharingLostPct < 0 {
						t.Errorf("sharing-loss inverted: shard %v vs single %v (%v%%)",
							m.ShardJointExpectedCost, m.SingleJointExpectedCost, m.SharingLostPct)
					}
					// Overlapping heart-rate queries split across shards
					// must re-pull items some other shard already paid for.
					if m.CrossShardDuplicateTransfers == 0 {
						t.Error("no cross-shard duplicate transfers on an overlapping fleet")
					}
				}},
		}},
		{caseID: "E00503", name: "one-shard server matches the plain service", server: oneShardServer, steps: []e2eStep{
			{"POST", "/queries", `{"id":"hr","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":15}`, http.StatusOK,
				func(t *testing.T, body []byte) {
					// Replay the same fleet on a plain unsharded service over
					// identically seeded streams: the serialized tick results
					// must match byte for byte.
					plain := service.New(stream.Wearables(1),
						service.WithWorkers(4),
						service.WithEngineOptions(engine.WithReplanThreshold(0.02)))
					if err := plain.Register("hr", "AVG(heart-rate,5) > 100 OR spo2 < 92"); err != nil {
						t.Fatal(err)
					}
					want, err := json.Marshal(plain.Run(15))
					if err != nil {
						t.Fatal(err)
					}
					var sharded []service.TickResult
					mustDecode(t, body, &sharded)
					got, err := json.Marshal(sharded)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Errorf("one-shard results diverge from the plain service:\n got %.200s\nwant %.200s", got, want)
					}
				}},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Shards != 1 {
						t.Errorf("shards = %d, want 1", m.Shards)
					}
					if m.CrossShardDuplicateTransfers != 0 || m.SharingLostPct != 0 {
						t.Errorf("one shard reported sharing loss: %+v", m)
					}
				}},
		}},

		{caseID: "E00701", name: "relay serves cross-shard L1 misses", server: relayShardedServer(0.1), steps: []e2eStep{
			// The E00502 fleet with the relay on: overlapping heart-rate
			// queries split across shards race within each tick, so the
			// first shard to pull an item pays full price and the rest
			// take it from the relay at the transfer fraction.
			{"POST", "/queries", `{"id":"t0","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t1","query":"AVG(heart-rate,5) > 95 OR accelerometer > 15"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t2","query":"heart-rate > 110 OR gps-speed > 1.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":20}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if !m.RelayEnabled || m.RelayTransferFrac != 0.1 {
						t.Fatalf("relay not enabled at frac 0.1: %+v", m)
					}
					if m.RelayHits == 0 || m.RelayPurchases == 0 {
						t.Errorf("no relay traffic: hits=%d purchases=%d", m.RelayHits, m.RelayPurchases)
					}
					if m.RelayTransferSpend <= 0 || m.RelaySavedSpend <= 0 {
						t.Errorf("relay spend unaccounted: transfer=%v saved=%v",
							m.RelayTransferSpend, m.RelaySavedSpend)
					}
					if m.SharingLostPct > 0 && m.SharingLostPctRelay >= m.SharingLostPct {
						t.Errorf("relayed loss %.1f%% not below raw loss %.1f%%",
							m.SharingLostPctRelay, m.SharingLostPct)
					}
				}},
		}},
		remoteRelayCase(),
		{caseID: "E00703", name: "transfer-cost fraction prices relay traffic", server: relayShardedServer(0.5), steps: []e2eStep{
			{"POST", "/queries", `{"id":"t0","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t1","query":"AVG(heart-rate,5) > 95 OR accelerometer > 15"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t2","query":"heart-rate > 110 OR gps-speed > 1.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":20}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					// Per-item relay pricing: every hit pays frac of the
					// item's acquisition cost and saves the rest, so across
					// any traffic transfer/(transfer+saved) == frac, and the
					// modelled residual loss is frac of the raw loss.
					checkFrac := func(m service.Metrics, frac float64) {
						if m.RelayTransferFrac != frac {
							t.Errorf("transfer frac %v, want %v", m.RelayTransferFrac, frac)
						}
						if total := m.RelayTransferSpend + m.RelaySavedSpend; total > 0 {
							if ratio := m.RelayTransferSpend / total; ratio < frac-1e-6 || ratio > frac+1e-6 {
								t.Errorf("frac %v: transfer/(transfer+saved) = %v", frac, ratio)
							}
						} else if m.RelayHits > 0 {
							t.Errorf("frac %v: hits without spend accounting", frac)
						}
						if want := frac * m.SharingLostPct; m.SharingLostPctRelay < want-1e-6 || m.SharingLostPctRelay > want+1e-6 {
							t.Errorf("frac %v: relayed loss %.3f%%, want frac x raw = %.3f%%",
								frac, m.SharingLostPctRelay, want)
						}
					}
					checkFrac(m, 0.5)
					// Sweep the fraction across the same fleet in-process:
					// the pricing identities must hold at every frac, and
					// frac 1 must degenerate to no saving at all.
					for _, frac := range []float64{0.1, 1} {
						svc, err := newServiceWith(serviceConfig{
							seed: 1, workers: 4, replan: 0.02,
							executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
							shards: 4, relayFrac: frac,
						})
						if err != nil {
							t.Fatal(err)
						}
						for _, q := range []struct{ id, text string }{
							{"t0", "AVG(heart-rate,5) > 100 OR spo2 < 92"},
							{"t1", "AVG(heart-rate,5) > 95 OR accelerometer > 15"},
							{"t2", "heart-rate > 110 OR gps-speed > 1.5"},
						} {
							if err := svc.Register(q.id, q.text); err != nil {
								t.Fatal(err)
							}
						}
						svc.Run(20)
						sm := svc.Metrics()
						checkFrac(sm, frac)
						if frac == 1 && sm.RelaySavedSpend != 0 {
							t.Errorf("frac 1 saved %v J, want 0 (transfers cost full price)", sm.RelaySavedSpend)
						}
					}
				}},
		}},

		{caseID: "E00206", name: "realized-vs-expected ratio", steps: []e2eStep{
			// The first scheduled leaf is pre-pulled by the batcher, but
			// heart-rate never exceeds 500, so the OR always evaluates the
			// other leaf too and the query pays for it itself.
			{"POST", "/queries", `{"id":"hr","query":"heart-rate > 500 OR spo2 > 0"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.RealizedOverExpected <= 0 {
						t.Errorf("fleet ratio missing: %+v", m)
					}
					if len(m.PerQuery) != 1 || m.PerQuery[0].RealizedOverExpected <= 0 {
						t.Errorf("per-query ratio missing: %+v", m.PerQuery)
					}
				}},
		}},

		registrationStormCase(),
		{caseID: "E00602", name: "incremental replan after drift and churn", server: driftChurnServer, steps: []e2eStep{
			// Plan a stable fleet through the regime shift at tick 40, then
			// unregister one query: the next tick must absorb the churn by
			// patching the cached joint plan — survivors keep their
			// schedules — rather than replanning the whole fleet.
			{"POST", "/queries", `{"id":"or1","query":"r0 < 0.5 OR r1 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"or2","query":"r1 < 0.5 OR r2 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"or3","query":"r2 < 0.5 OR r3 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"and4","query":"r3 < 0.5 AND r0 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":120}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.ReplansForced == 0 {
						t.Errorf("regime shift forced no replans: %+v", m)
					}
					preChurn = m.FleetPlanIncremental
				}},
			{"DELETE", "/queries/or2", "", http.StatusOK, nil},
			{"POST", "/tick", `{"steps":1}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.Queries != 3 {
						t.Errorf("queries = %d after churn, want 3", m.Queries)
					}
					if m.FleetPlanIncremental <= preChurn {
						t.Errorf("post-churn tick full-replanned the fleet: plan_incremental %d -> %d",
							preChurn, m.FleetPlanIncremental)
					}
					if m.PlanNanos <= 0 {
						t.Errorf("plan_ns not accounted: %d", m.PlanNanos)
					}
				}},
		}},

		twinStormCase(),
		{caseID: "E00802", name: "unregister of one subscriber leaves the class live", steps: []e2eStep{
			// Three twins share one shape; a fourth query holds its own.
			{"POST", "/queries", `{"id":"tw0","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"tw1","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"tw2","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"solo","query":"accelerometer > 15"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":5}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					if m.DistinctShapes != 2 || m.ShapeSubscribers != 4 {
						t.Fatalf("census before churn: %d classes / %d subscribers, want 2 / 4",
							m.DistinctShapes, m.ShapeSubscribers)
					}
					if m.SharedExecutions != 10 {
						t.Errorf("shared executions = %d, want 10 (two non-leader twins x five ticks)", m.SharedExecutions)
					}
				}},
			{"DELETE", "/queries/tw1", "", http.StatusOK, nil},
			{"POST", "/tick", `{"steps":1}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					// The class outlives the departed subscriber: the two
					// remaining twins still share one shape.
					if m.DistinctShapes != 2 || m.ShapeSubscribers != 3 {
						t.Errorf("census after churn: %d classes / %d subscribers, want 2 / 3",
							m.DistinctShapes, m.ShapeSubscribers)
					}
					if m.SharedExecutions != 11 {
						t.Errorf("shared executions = %d, want 11", m.SharedExecutions)
					}
				}},
			{"GET", "/results/tw2?n=1", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var res []service.Execution
					mustDecode(t, body, &res)
					if len(res) != 1 || res[0].Tick != 6 || !res[0].Shared || res[0].Cost != 0 {
						t.Errorf("surviving twin's execution = %+v, want shared at tick 6 for free", res)
					}
				}},
		}},
		{caseID: "E00803", name: "metrics expose the shape-class census", steps: []e2eStep{
			{"POST", "/queries", `{"id":"a/alert","query":"AVG(heart-rate,5) > 100 AND spo2 < 95"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"b/alert","query":"AVG(heart-rate,5) > 100 AND spo2 < 95"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"c/uniq","query":"gps-speed > 1.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":3}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					for _, field := range []string{`"shape_factoring"`, `"distinct_shapes"`, `"shape_subscribers"`, `"shared_executions"`} {
						if !strings.Contains(string(body), field) {
							t.Errorf("/metrics missing %s", field)
						}
					}
					var m service.Metrics
					mustDecode(t, body, &m)
					if !m.ShapeFactoring || m.DistinctShapes != 2 || m.ShapeSubscribers != 3 || m.SharedExecutions != 3 {
						t.Errorf("census = factoring %v, %d classes / %d subscribers / %d shared, want on, 2 / 3 / 3",
							m.ShapeFactoring, m.DistinctShapes, m.ShapeSubscribers, m.SharedExecutions)
					}
					// `-shape-factoring=false` degenerates to one class per
					// query: replay the fleet with factoring off in-process.
					svc, err := newServiceWith(serviceConfig{
						seed: 1, workers: 4, replan: 0.02,
						executor: "linear", batch: true, fleetPlan: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range []struct{ id, text string }{
						{"a/alert", "AVG(heart-rate,5) > 100 AND spo2 < 95"},
						{"b/alert", "AVG(heart-rate,5) > 100 AND spo2 < 95"},
						{"c/uniq", "gps-speed > 1.5"},
					} {
						if err := svc.Register(q.id, q.text); err != nil {
							t.Fatal(err)
						}
					}
					svc.Run(3)
					um := svc.Metrics()
					if um.ShapeFactoring || um.DistinctShapes != 3 || um.SharedExecutions != 0 {
						t.Errorf("factoring off: %v, %d classes / %d shared, want off, 3 / 0",
							um.ShapeFactoring, um.DistinctShapes, um.SharedExecutions)
					}
				}},
		}},
	}
	cases = append(cases, obsCases()...)
	return append(cases, admitCases()...)
}

func mustDecode(t *testing.T, body []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
}

func wantErrorBody(t *testing.T, body []byte) {
	t.Helper()
	var e map[string]string
	mustDecode(t, body, &e)
	if e["error"] == "" {
		t.Errorf("error response missing error field: %s", body)
	}
}

// TestCaseCatalog runs every case of TESTCASES.md end to end against a
// live server.
func TestCaseCatalog(t *testing.T) {
	for _, c := range e2eCases() {
		t.Run(c.caseID+"_"+strings.ReplaceAll(c.name, " ", "_"), func(t *testing.T) {
			newSrv := c.server
			if newSrv == nil {
				newSrv = testServer
			}
			srv := newSrv(t)
			for i, step := range c.steps {
				req, err := http.NewRequest(step.method, srv.URL+step.path, strings.NewReader(step.body))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != step.wantStatus {
					t.Fatalf("step %d %s %s: status %d, want %d (body %s)",
						i, step.method, step.path, resp.StatusCode, step.wantStatus, body)
				}
				if step.check != nil {
					step.check(t, body)
				}
			}
		})
	}
}

// TestCatalogInSync checks that every implemented case id appears in
// TESTCASES.md and vice versa, keeping the spiderpool-style catalog and
// the suite in lockstep.
func TestCatalogInSync(t *testing.T) {
	md, err := os.ReadFile("TESTCASES.md")
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]bool{}
	for _, line := range strings.Split(string(md), "\n") {
		if !strings.HasPrefix(line, "| E") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) > 1 {
			catalog[strings.TrimSpace(fields[1])] = true
		}
	}
	impl := map[string]bool{}
	for _, c := range e2eCases() {
		impl[c.caseID] = true
		if !catalog[c.caseID] {
			t.Errorf("case %s implemented but missing from TESTCASES.md", c.caseID)
		}
	}
	for id := range catalog {
		if !impl[id] {
			t.Errorf("case %s catalogued in TESTCASES.md but not implemented", id)
		}
	}
}

// Debug endpoints over the observability layer (internal/obs):
//
//	GET /debug/events?type=drift-trip&n=50   recent journal events
//	GET /debug/ticks/{n}                     trace of sampled tick n
//	GET /debug/ticks                         which ticks are sampled
//
// The journal is always on (bounded ring, negligible cost); tick traces
// exist only for ticks the tracer sampled (-trace-sample, or
// PUT /debug/trace-sample to change the period live).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"paotr/internal/obs"
)

// maxDebugEvents bounds one /debug/events response.
const maxDebugEvents = 1000

// eventsResponse is the body of GET /debug/events.
type eventsResponse struct {
	// Events is the filtered tail of the journal ring, oldest first.
	Events []obs.Event `json:"events"`
	// CountsByType counts every event ever appended, per type — unlike
	// the ring, these survive eviction.
	CountsByType map[string]int64 `json:"counts_by_type"`
	// Dropped is how many events the ring has evicted.
	Dropped int64 `json:"dropped"`
}

func (s *server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > maxDebugEvents {
			writeError(w, http.StatusBadRequest, fmt.Errorf("n must be in [1, %d]", maxDebugEvents))
			return
		}
		n = v
	}
	j := s.svc.Journal()
	resp := eventsResponse{
		Events:       j.Events(r.URL.Query().Get("type"), n),
		CountsByType: j.CountByType(),
		Dropped:      j.Dropped(),
	}
	if resp.Events == nil {
		resp.Events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tickTraceResponse is the body of GET /debug/ticks/{n}.
type tickTraceResponse struct {
	Tick int64 `json:"tick"`
	// Traces holds one trace per shard that sampled the tick (a single
	// element for the unsharded service).
	Traces []obs.TickTrace `json:"traces"`
}

func (s *server) handleDebugTick(w http.ResponseWriter, r *http.Request) {
	tick, err := strconv.ParseInt(r.PathValue("n"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid tick %q", r.PathValue("n")))
		return
	}
	traces := s.svc.TickTraces(tick)
	if len(traces) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("tick %d not sampled (trace sample period %d)", tick, s.svc.TraceSampling()))
		return
	}
	writeJSON(w, http.StatusOK, tickTraceResponse{Tick: tick, Traces: traces})
}

// tickListResponse is the body of GET /debug/ticks.
type tickListResponse struct {
	// SamplePeriod is the tracer's current period (0 = disabled).
	SamplePeriod int `json:"sample_period"`
	// Ticks lists the sampled ticks still in the ring, oldest first.
	Ticks []int64 `json:"ticks"`
}

func (s *server) handleDebugTicks(w http.ResponseWriter, r *http.Request) {
	ticks := s.svc.TraceTicks()
	if ticks == nil {
		ticks = []int64{}
	}
	writeJSON(w, http.StatusOK, tickListResponse{
		SamplePeriod: s.svc.TraceSampling(),
		Ticks:        ticks,
	})
}

// handleTraceSample serves PUT /debug/trace-sample {"period": 100}: it
// changes the tracer's sampling period live (0 disables tracing and
// restores the zero-allocation tick path).
func (s *server) handleTraceSample(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Period int `json:"period"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Period < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("period must be >= 0"))
		return
	}
	s.svc.SetTraceSampling(req.Period)
	writeJSON(w, http.StatusOK, map[string]int{"period": s.svc.TraceSampling()})
}

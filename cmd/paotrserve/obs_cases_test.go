package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paotr/internal/obs"
	"paotr/internal/service"
)

// tracingServer serves the default fleet with tick tracing on at the
// given period, mirroring `paotrserve -trace-sample <n>`.
func tracingServer(sample int) func(t *testing.T) *httptest.Server {
	return func(t *testing.T) *httptest.Server {
		t.Helper()
		svc, err := newServiceWith(serviceConfig{
			seed: 1, workers: 4, replan: 0.02,
			executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
			traceSample: sample,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newServer(svc, -1))
		t.Cleanup(srv.Close)
		return srv
	}
}

// obsCases are the observability rows of TESTCASES.md (E009xx): the
// Prometheus exposition, the event journal and the tick tracer, each
// exercised over a live server.
func obsCases() []e2eCase {
	return []e2eCase{
		{caseID: "E00901", name: "metrics.prom exposition lints and matches the fleet", steps: []e2eStep{
			{"POST", "/queries", `{"id":"hr","query":"AVG(heart-rate,5) > 100 AND accelerometer < 12"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"ox","query":"spo2 < 92 OR heart-rate > 110"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":10}`, http.StatusOK, nil},
			{"GET", "/metrics.prom", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					rep, err := obs.LintProm(bytes.NewReader(body))
					if err != nil {
						t.Fatalf("exposition does not lint: %v\n%s", err, body)
					}
					if rep.Families < 20 || rep.Samples < rep.Families {
						t.Errorf("exposition too thin: %d families, %d samples", rep.Families, rep.Samples)
					}
					text := string(body)
					for _, want := range []string{
						"paotr_ticks_total 10",
						"paotr_queries 2",
						`paotr_tick_phase_seconds_bucket{le="+Inf",phase="total"} 10`,
						`paotr_detector_trips_total{kind="predicate"} 0`,
						"paotr_journal_events_dropped_total 0",
						"paotr_trace_sample_period 0",
					} {
						if !strings.Contains(text, want) {
							t.Errorf("exposition missing %q", want)
						}
					}
				}},
		}},
		{caseID: "E00902", name: "journal records drift trips across the regime shift", server: driftServer(40), steps: []e2eStep{
			{"POST", "/queries", `{"id":"or","query":"r0 < 0.5 OR r1 < 0.5 OR r2 < 0.5 OR r3 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"and","query":"r3 < 0.5 AND r0 < 0.5"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":160}`, http.StatusOK, nil},
			{"GET", "/debug/events?type=" + obs.EventDriftTrip, "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var resp eventsResponse
					mustDecode(t, body, &resp)
					if len(resp.Events) == 0 {
						t.Fatalf("no drift-trip events after the regime shift: %s", body)
					}
					for _, ev := range resp.Events {
						if ev.Type != obs.EventDriftTrip {
							t.Errorf("type filter leaked event %+v", ev)
						}
						if ev.Tick < 40 {
							t.Errorf("drift trip before the shift at 40: %+v", ev)
						}
						if ev.Pred == "" && ev.Stream == 0 && ev.Detail == "" {
							t.Errorf("drift trip carries no context: %+v", ev)
						}
					}
					if resp.CountsByType[obs.EventDriftTrip] < int64(len(resp.Events)) {
						t.Errorf("counts_by_type %v below returned events %d", resp.CountsByType, len(resp.Events))
					}
					if resp.CountsByType[obs.EventForcedReplan] == 0 {
						t.Errorf("drift trips forced no replan events: %v", resp.CountsByType)
					}
				}},
			{"GET", "/debug/events?type=" + obs.EventForcedReplan + "&n=5", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var resp eventsResponse
					mustDecode(t, body, &resp)
					if len(resp.Events) == 0 || len(resp.Events) > 5 {
						t.Fatalf("n=5 filter returned %d events", len(resp.Events))
					}
					for _, ev := range resp.Events {
						if ev.Type != obs.EventForcedReplan {
							t.Errorf("type filter leaked event %+v", ev)
						}
					}
				}},
			{"GET", "/debug/events?n=0", "", http.StatusBadRequest, wantErrorBody},
		}},
		{caseID: "E00903", name: "tick traces agree with the metrics counters", server: tracingServer(1), steps: []e2eStep{
			{"POST", "/queries", `{"id":"hr","query":"AVG(heart-rate,5) > 100 AND accelerometer < 12"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"ox","query":"spo2 < 92 OR heart-rate > 110"}`, http.StatusCreated, nil},
			{"POST", "/tick", `{"steps":6}`, http.StatusOK, nil},
			{"GET", "/debug/ticks", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var resp tickListResponse
					mustDecode(t, body, &resp)
					if resp.SamplePeriod != 1 || len(resp.Ticks) != 6 {
						t.Fatalf("sampling every tick over 6 ticks: period %d, %d sampled", resp.SamplePeriod, len(resp.Ticks))
					}
				}},
			{"GET", "/debug/ticks/4", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var resp tickTraceResponse
					mustDecode(t, body, &resp)
					if resp.Tick != 4 || len(resp.Traces) != 1 {
						t.Fatalf("tick 4 traces = %+v", resp)
					}
					tr := resp.Traces[0]
					if tr.Tick != 4 || tr.DueQueries != 2 || tr.TotalNs <= 0 {
						t.Errorf("trace = %+v", tr)
					}
					subs := 0
					for _, c := range tr.Classes {
						subs += c.Subscribers
						if c.Leader == "" || c.Shape == "" {
							t.Errorf("class trace missing identity: %+v", c)
						}
					}
					if subs != tr.DueQueries {
						t.Errorf("class subscribers %d != due queries %d", subs, tr.DueQueries)
					}
				}},
			{"GET", "/debug/ticks/9999", "", http.StatusNotFound, wantErrorBody},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					// The histogram and the tracer count the same ticks: with
					// sampling at every tick, the total-phase count equals the
					// tick counter and the sampled-tick census.
					var m service.Metrics
					mustDecode(t, body, &m)
					total, ok := m.TickLatency[obs.PhaseNames[obs.PhaseTotal]]
					if !ok || total.Count != m.Ticks || m.Ticks != 6 {
						t.Errorf("tick_latency total count = %+v, ticks = %d, want both 6", total, m.Ticks)
					}
				}},
			{"PUT", "/debug/trace-sample", `{"period":0}`, http.StatusOK,
				func(t *testing.T, body []byte) {
					var resp map[string]int
					mustDecode(t, body, &resp)
					if resp["period"] != 0 {
						t.Errorf("trace-sample not disabled: %v", resp)
					}
				}},
		}},
	}
}

// TestPprofNamedProfiles pins the named-profile routes: with -pprof on,
// every named runtime profile must resolve explicitly (not just the
// index page), so registering more-specific /debug/... routes can never
// shadow them.
func TestPprofNamedProfiles(t *testing.T) {
	s := newServer(newService(1, 1, 0.02), -1)
	s.enablePprof()
	srv := httptest.NewServer(s)
	defer srv.Close()
	for _, name := range []string{"goroutine", "heap", "allocs", "threadcreate", "block", "mutex"} {
		resp, err := http.Get(srv.URL + "/debug/pprof/" + name + "?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("profile %s: status %d, %d bytes", name, resp.StatusCode, len(body))
		}
	}
}

// TestMetricsPromShardedLints: the sharded runtime's exposition (merged
// histograms, per-shard series, repartition counters) must lint too.
func TestMetricsPromSharded(t *testing.T) {
	srv := shardedServer(t)
	for _, q := range []string{
		`{"id":"t0","query":"AVG(heart-rate,5) > 100 OR spo2 < 92"}`,
		`{"id":"t1","query":"accelerometer > 15 OR gps-speed > 1.5"}`,
	} {
		if resp := doJSON(t, "POST", srv.URL+"/queries", q, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("register status = %d", resp.StatusCode)
		}
	}
	doJSON(t, "POST", srv.URL+"/tick", `{"steps":8}`, nil)
	resp, err := http.Get(srv.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics.prom status = %d", resp.StatusCode)
	}
	if _, err := obs.LintProm(bytes.NewReader(body)); err != nil {
		t.Fatalf("sharded exposition does not lint: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{"paotr_shards 4", `paotr_shard_tick_seconds_count{shard="0"}`} {
		if !strings.Contains(text, want) {
			t.Errorf("sharded exposition missing %q", want)
		}
	}
}

// TestMetricsJSONStillServesTickLatency: the JSON endpoint carries the
// histogram snapshots the exposition is rendered from.
func TestMetricsJSONTickLatency(t *testing.T) {
	srv := testServer(t)
	doJSON(t, "POST", srv.URL+"/queries", `{"id":"hr","query":"heart-rate > 100"}`, nil)
	doJSON(t, "POST", srv.URL+"/tick", `{"steps":5}`, nil)
	var m service.Metrics
	doJSON(t, "GET", srv.URL+"/metrics", "", &m)
	for _, phase := range obs.PhaseNames {
		s, ok := m.TickLatency[phase]
		if !ok || s.Count != 5 {
			t.Errorf("phase %s: snapshot %+v, want count 5", phase, s)
		}
	}
	if total := m.TickLatency["total"]; total.P50Ns <= 0 || total.P99Ns < total.P50Ns {
		t.Errorf("quantiles not populated: %+v", m.TickLatency["total"])
	}
}

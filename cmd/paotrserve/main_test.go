package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paotr/internal/engine"
	"paotr/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServer(newService(1, 4, 0.02), engine.DefaultGapThreshold))
	t.Cleanup(srv.Close)
	return srv
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func TestRegisterTickResultsMetrics(t *testing.T) {
	srv := testServer(t)

	var qm service.QueryMetrics
	resp := doJSON(t, "POST", srv.URL+"/queries",
		`{"id":"hr","query":"AVG(heart-rate,5) > 100 AND accelerometer < 12"}`, &qm)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	if qm.ID != "hr" || qm.Every != 1 {
		t.Fatalf("registered metrics = %+v", qm)
	}

	// Duplicate id conflicts; bad query is a 400.
	if resp := doJSON(t, "POST", srv.URL+"/queries", `{"id":"hr","query":"spo2 < 90"}`, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register status = %d, want 409", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", srv.URL+"/queries", `{"id":"bad","query":"nosuch > 1"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", srv.URL+"/queries", `{"id":"","query":""}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty register status = %d, want 400", resp.StatusCode)
	}

	var ticks []service.TickResult
	if resp := doJSON(t, "POST", srv.URL+"/tick", `{"steps":10}`, &ticks); resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status = %d", resp.StatusCode)
	}
	if len(ticks) != 10 || len(ticks[9].Executions) != 1 {
		t.Fatalf("ticks = %d, last executions = %+v", len(ticks), ticks[len(ticks)-1])
	}
	if ticks[9].Executions[0].Err != "" {
		t.Fatalf("execution error: %s", ticks[9].Executions[0].Err)
	}

	var res []service.Execution
	if resp := doJSON(t, "GET", srv.URL+"/results/hr?n=3", "", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if len(res) != 3 || res[2].Tick != 10 {
		t.Fatalf("results = %+v", res)
	}
	if resp := doJSON(t, "GET", srv.URL+"/results/nope", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown results status = %d, want 404", resp.StatusCode)
	}

	var m service.Metrics
	if resp := doJSON(t, "GET", srv.URL+"/metrics", "", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if m.Ticks != 10 || m.Executions != 10 || m.Queries != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.PaidCost <= 0 {
		t.Fatalf("fleet paid nothing: %+v", m)
	}

	var ids []service.QueryMetrics
	doJSON(t, "GET", srv.URL+"/queries", "", &ids)
	if len(ids) != 1 || ids[0].Executions != 10 {
		t.Fatalf("query list = %+v", ids)
	}

	if resp := doJSON(t, "DELETE", srv.URL+"/queries/hr", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("unregister status = %d", resp.StatusCode)
	}
	if resp := doJSON(t, "DELETE", srv.URL+"/queries/hr", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unregister status = %d, want 404", resp.StatusCode)
	}
}

// TestTenantStyleIDs: ids containing '/' (the demo's tenant/query
// format) must round-trip through the path-parameter routes.
func TestTenantStyleIDs(t *testing.T) {
	srv := testServer(t)
	if resp := doJSON(t, "POST", srv.URL+"/queries", `{"id":"a/tachycardia","query":"heart-rate > 100"}`, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	doJSON(t, "POST", srv.URL+"/tick", `{"steps":2}`, nil)
	var res []service.Execution
	if resp := doJSON(t, "GET", srv.URL+"/results/a/tachycardia", "", &res); resp.StatusCode != http.StatusOK || len(res) != 2 {
		t.Fatalf("slash-id results: status %d, %d results", resp.StatusCode, len(res))
	}
	if resp := doJSON(t, "DELETE", srv.URL+"/queries/a/tachycardia", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("slash-id unregister status = %d", resp.StatusCode)
	}
}

// TestPprofEndpoint: enablePprof (the -pprof flag) mounts the profiling
// index on the server mux; without it the path stays unrouted.
func TestPprofEndpoint(t *testing.T) {
	s := newServer(newService(1, 1, 0.02), engine.DefaultGapThreshold)
	s.enablePprof()
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	plain := testServer(t)
	if resp, err := http.Get(plain.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without -pprof")
	}
}

func TestTickValidation(t *testing.T) {
	srv := testServer(t)
	if resp := doJSON(t, "POST", srv.URL+"/tick", `{"steps":0}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("steps=0 status = %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", srv.URL+"/tick", `{"steps":1000000}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge steps status = %d, want 400", resp.StatusCode)
	}
	// Empty body defaults to one step.
	var ticks []service.TickResult
	if resp := doJSON(t, "POST", srv.URL+"/tick", "", &ticks); resp.StatusCode != http.StatusOK || len(ticks) != 1 {
		t.Fatalf("default tick: status %d, %d ticks", resp.StatusCode, len(ticks))
	}
}

func TestDemoScenario(t *testing.T) {
	var b strings.Builder
	if err := runDemo(&b, newService(1, 4, 0.02), 50, engine.DefaultGapThreshold); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"multi-tenant demo: 9 queries, 50 ticks",
		"a/tachycardia", "a/cardiac", "b/fall", "c/indoors",
		"cache hit rate", "plan-cache hit rate", "batched acquisition",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q:\n%s", want, out)
		}
	}
	// Low-cadence queries must have run fewer times: b/fall every 2 ticks.
	svc := newService(1, 4, 0.02)
	if err := runDemo(&strings.Builder{}, svc, 50, engine.DefaultGapThreshold); err != nil {
		t.Fatal(err)
	}
	fall, err := svc.QueryMetrics("b/fall")
	if err != nil {
		t.Fatal(err)
	}
	if fall.Executions != 25 {
		t.Errorf("b/fall ran %d times over 50 ticks with every=2, want 25", fall.Executions)
	}
}

// End-to-end admission-control cases (E01001..E01004 of TESTCASES.md):
// tiered registration through the HTTP API against a gated runtime,
// driving the 429/Retry-After surface, the defer queue, and the
// /metrics backpressure exposition.
package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paotr/internal/admit"
	"paotr/internal/service"
)

// admitServer serves a gated runtime with the given admission knobs,
// mirroring `paotrserve -admit -admit-rate ... -admit-burst ...`. The
// returned gate pointer lets cases drive controller drills (forced
// overload) that would otherwise need a saturating load.
func admitServer(rate, burst float64, gate **service.AdmissionGate) func(t *testing.T) *httptest.Server {
	return func(t *testing.T) *httptest.Server {
		t.Helper()
		svc, err := newServiceWith(serviceConfig{
			seed: 1, workers: 4, replan: 0.02,
			executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
			admit: true, admitRate: rate, admitBurst: burst, admitWindow: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, ok := svc.(*service.AdmissionGate)
		if !ok {
			t.Fatalf("admit server runtime is %T, want *service.AdmissionGate", svc)
		}
		if gate != nil {
			*gate = g
		}
		srv := httptest.NewServer(newServer(svc, -1))
		t.Cleanup(srv.Close)
		return srv
	}
}

// decodeAdmission decodes a 429 body.
func decodeAdmission(t *testing.T, body []byte) admissionResponse {
	t.Helper()
	var ar admissionResponse
	mustDecode(t, body, &ar)
	if ar.Error == "" {
		t.Errorf("429 body missing error: %s", body)
	}
	return ar
}

// admitCases are the admission rows of TESTCASES.md.
func admitCases() []e2eCase {
	// E01002 keeps a handle on its gate so a case step can force the
	// overload verdict (the controller's drill hook) without having to
	// saturate a real tick SLO from a unit test.
	var overloadGate *service.AdmissionGate
	return []e2eCase{
		{caseID: "E01001", name: "storm admission with headroom", server: admitServer(1e6, 1e6, nil), steps: []e2eStep{
			{"POST", "/queries", `{"id":"a/hr","query":"AVG(heart-rate,5) > 100","tier":"gold"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"b/hr","query":"AVG(heart-rate,5) > 100","tier":"silver"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"c/spo2","query":"spo2 < 92"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"d/bad","query":"spo2 < 92","tier":"platinum"}`, http.StatusBadRequest, wantErrorBody},
			{"POST", "/tick", `{"steps":5}`, http.StatusOK, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					a := m.Admission
					if a == nil {
						t.Fatal("gated /metrics missing admission block")
					}
					admits := a.Decisions["gold"]["admit"] + a.Decisions["silver"]["admit"] + a.Decisions["bronze"]["admit"]
					if admits != 3 || a.Overloaded || a.DeferredPending != 0 {
						t.Errorf("admission census = %+v, want 3 admits, not overloaded, empty queue", a)
					}
					// The twin of a/hr is free; the distinct shapes paid.
					if a.AdmittedQuoteJ <= 0 {
						t.Errorf("admitted quote sum = %v, want > 0", a.AdmittedQuoteJ)
					}
					// Tenant d never reached the controller (unknown tier is a
					// 400 at the HTTP layer), so no bucket was opened for it.
					if len(a.Tenants) != 3 {
						t.Errorf("tenant census = %+v, want a,b,c", a.Tenants)
					}
				}},
			{"GET", "/metrics.prom", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					for _, want := range []string{
						`paotr_admit_decisions_total{action="admit",tier="gold"} 1`,
						"paotr_admit_overloaded 0",
						"paotr_admit_deferred_pending 0",
						`paotr_journal_events_total{type="admit"} 3`,
					} {
						if !strings.Contains(string(body), want) {
							t.Errorf("/metrics.prom missing %q", want)
						}
					}
				}},
		}},
		{caseID: "E01002", name: "overload sheds bronze and defers silver, gold admits", server: admitServer(1e6, 1e6, &overloadGate), steps: []e2eStep{
			{"GET", "/healthz", "", http.StatusOK,
				func(t *testing.T, body []byte) { overloadGate.Controller().SetOverloaded(true) }},
			{"POST", "/queries", `{"id":"be/load","query":"accelerometer > 15","tier":"bronze"}`, http.StatusTooManyRequests,
				func(t *testing.T, body []byte) {
					ar := decodeAdmission(t, body)
					if ar.Decision.Action != admit.Shed || ar.Decision.Reason != "slo-burn" || ar.Queued {
						t.Errorf("bronze under overload = %+v, want shed slo-burn, not queued", ar)
					}
				}},
			{"POST", "/queries", `{"id":"biz/load","query":"accelerometer > 15","tier":"silver"}`, http.StatusTooManyRequests,
				func(t *testing.T, body []byte) {
					ar := decodeAdmission(t, body)
					if ar.Decision.Action != admit.Defer || !ar.Queued || ar.Decision.RetryAfterTicks <= 0 {
						t.Errorf("silver under overload = %+v, want queued defer with retry horizon", ar)
					}
				}},
			{"POST", "/queries", `{"id":"icu/alert","query":"accelerometer > 15","tier":"gold"}`, http.StatusCreated, nil},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					a := m.Admission
					if a == nil || !a.Overloaded {
						t.Fatalf("admission block = %+v, want overloaded", a)
					}
					if a.Decisions["bronze"]["shed"] != 1 || a.Decisions["silver"]["defer"] != 1 || a.Decisions["gold"]["admit"] != 1 {
						t.Errorf("decision census = %+v", a.Decisions)
					}
					if a.ShedPrecision != 1 {
						t.Errorf("shed precision = %v, want 1 (no gold shed)", a.ShedPrecision)
					}
					if a.DeferredPending != 1 {
						t.Errorf("deferred pending = %d, want the parked silver query", a.DeferredPending)
					}
				}},
			{"GET", "/healthz", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					// Overload clears: the parked silver registration admits at
					// a tick boundary past its retry horizon (one SLO window)
					// without a client retry.
					overloadGate.Controller().SetOverloaded(false)
					overloadGate.Run(10)
					ids := strings.Join(overloadGate.QueryIDs(), ",")
					if !strings.Contains(ids, "biz/load") {
						t.Errorf("deferred silver query not admitted after overload cleared: %s", ids)
					}
				}},
		}},
		{caseID: "E01003", name: "budget exhaustion 429 quotes the marginal cost", server: admitServer(0.05, 0.001, nil), steps: []e2eStep{
			{"POST", "/queries", `{"id":"t/pricey","query":"AVG(heart-rate,5) > 100 AND spo2 < 95"}`, http.StatusTooManyRequests,
				func(t *testing.T, body []byte) {
					ar := decodeAdmission(t, body)
					d := ar.Decision
					if d.Action != admit.Defer || d.Reason != "budget-exhausted" || !ar.Queued {
						t.Errorf("over-budget verdict = %+v, want queued budget-exhausted defer", ar)
					}
					if d.QuoteJ <= 0 {
						t.Errorf("429 body quotes no marginal cost: %+v", d)
					}
					if d.RetryAfterTicks <= 0 {
						t.Errorf("429 body carries no retry horizon: %+v", d)
					}
					if d.Tenant != "t" {
						t.Errorf("tenant = %q, want id prefix \"t\"", d.Tenant)
					}
				}},
			{"GET", "/queries", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var ms []service.QueryMetrics
					mustDecode(t, body, &ms)
					if len(ms) != 0 {
						t.Errorf("deferred query visible in /queries before admission: %+v", ms)
					}
				}},
		}},
		// E01004 drains tenant t's bucket with an admitted registration
		// (quote ~1.75 J/tick at seed 1 against a 2 J burst), so the next
		// distinct shape (~1.46 J/tick) must defer until refills cover it.
		{caseID: "E01004", name: "deferred registration eventually admits", server: admitServer(0.1, 2.0, nil), steps: []e2eStep{
			{"POST", "/queries", `{"id":"t/first","query":"AVG(heart-rate,5) > 100 AND spo2 < 95"}`, http.StatusCreated, nil},
			{"POST", "/queries", `{"id":"t/later","query":"accelerometer > 15"}`, http.StatusTooManyRequests,
				func(t *testing.T, body []byte) {
					ar := decodeAdmission(t, body)
					if ar.Decision.Action != admit.Defer || !ar.Queued {
						t.Errorf("verdict = %+v, want queued defer", ar)
					}
				}},
			// Tick past the refill horizon: the gate retries the parked
			// registration at tick boundaries and admits once the tenant's
			// bucket covers the quote.
			{"POST", "/tick", `{"steps":30}`, http.StatusOK, nil},
			{"GET", "/queries", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var ms []service.QueryMetrics
					mustDecode(t, body, &ms)
					found := false
					for _, m := range ms {
						if m.ID == "t/later" {
							found = true
							if m.Executions == 0 {
								t.Errorf("admitted query never executed: %+v", m)
							}
						}
					}
					if !found || len(ms) != 2 {
						t.Fatalf("deferred query not admitted after refill: %+v", ms)
					}
				}},
			{"GET", "/metrics", "", http.StatusOK,
				func(t *testing.T, body []byte) {
					var m service.Metrics
					mustDecode(t, body, &m)
					a := m.Admission
					if a == nil || a.DeferredPending != 0 {
						t.Fatalf("defer queue not drained: %+v", a)
					}
					if a.Decisions["bronze"]["defer"] < 1 || a.Decisions["bronze"]["admit"] != 2 {
						t.Errorf("decision census = %+v, want >=1 defer and 2 admits", a.Decisions)
					}
				}},
		}},
	}
}

// TestAdmitRetryAfterHeader pins the HTTP contract the e2e harness
// can't see (it only surfaces bodies): a deferred registration's 429
// carries Retry-After in ticks.
func TestAdmitRetryAfterHeader(t *testing.T) {
	srv := admitServer(0.05, 0.001, nil)(t)
	resp, err := http.Post(srv.URL+"/queries", "application/json",
		strings.NewReader(`{"id":"t/q","query":"spo2 < 92"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want a positive tick count", ra)
	}
}

// TestAdmitOffIsUngated pins -admit=false: the runtime is the plain
// service, registrations bypass admission entirely, and /metrics
// carries no admission block — byte-identical to the pre-admission
// server.
func TestAdmitOffIsUngated(t *testing.T) {
	svc, err := newServiceWith(serviceConfig{
		seed: 1, workers: 4, replan: 0.02,
		executor: "linear", batch: true, fleetPlan: true, shapeFactor: true,
		admit: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, gated := svc.(*service.AdmissionGate); gated {
		t.Fatal("-admit=false still built a gated runtime")
	}
	if svc.Metrics().Admission != nil {
		t.Error("ungated runtime reports admission state")
	}
}

// Prometheus text exposition for the serving runtime: GET /metrics.prom
// renders the same counters the JSON /metrics endpoint reports, plus the
// tick-latency histograms and the event-journal census, in the text
// exposition format (0.0.4) — hand-rolled via internal/obs so the repo
// stays dependency-free. The payload is validated in CI by
// cmd/metricslint against obs.LintProm.
package main

import (
	"bytes"
	"net/http"
	"sort"
	"strconv"

	"paotr/internal/obs"
	"paotr/internal/service"
)

// handleMetricsProm serves GET /metrics.prom.
func (s *server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	writeProm(&buf, s.svc.Metrics(), s.svc.Journal(), s.svc.TraceSampling())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// writeProm renders one scrape. Families are emitted header-first and
// samples in deterministic order, so consecutive scrapes differ only in
// values — the shape is lintable and diffable.
func writeProm(buf *bytes.Buffer, m service.Metrics, j *obs.Journal, traceSample int) {
	p := obs.NewPromWriter(buf)

	counter := func(name, help string, v float64) {
		p.Header(name, help, "counter")
		p.Value(name, nil, v)
	}
	gauge := func(name, help string, v float64) {
		p.Header(name, help, "gauge")
		p.Value(name, nil, v)
	}

	counter("paotr_ticks_total", "Ticks executed since start.", float64(m.Ticks))
	gauge("paotr_queries", "Continuous queries currently registered.", float64(m.Queries))
	counter("paotr_executions_total", "Query executions since start.", float64(m.Executions))
	counter("paotr_adaptive_executions_total", "Executions that ran a decision tree instead of the linear schedule.", float64(m.AdaptiveExecutions))
	counter("paotr_paid_joules_total", "Acquisition energy actually paid.", m.PaidCost)
	counter("paotr_expected_joules_total", "Planner-modelled expected acquisition energy.", m.ExpectedCost)
	counter("paotr_predicates_evaluated_total", "Predicate evaluations since start.", float64(m.PredicatesEvaluated))
	counter("paotr_plan_cache_hits_total", "Executions served by a cached per-query plan.", float64(m.PlanCacheHits))
	counter("paotr_fleet_plans_total", "Joint fleet plans produced.", float64(m.FleetPlans))
	counter("paotr_fleet_plan_reuses_total", "Joint fleet plans reused from the cache.", float64(m.FleetPlanReuses))
	counter("paotr_fleet_plan_incremental_total", "Joint plans produced by patching a cached plan instead of replanning.", float64(m.FleetPlanIncremental))
	counter("paotr_plan_seconds_total", "Wall time spent in the joint planner.", float64(m.PlanNanos)/1e9)
	gauge("paotr_distinct_shapes", "Distinct query shapes (shape-factoring equivalence classes).", float64(m.DistinctShapes))
	gauge("paotr_shape_subscribers", "Queries subscribed to a shape class.", float64(m.ShapeSubscribers))
	counter("paotr_shared_executions_total", "Executions served by a class leader's fan-out instead of evaluating.", float64(m.SharedExecutions))
	counter("paotr_cache_requests_total", "Items requested from the acquisition cache.", float64(m.CacheRequested))
	counter("paotr_cache_transfers_total", "Items actually transferred from streams (cache misses and prefetches).", float64(m.CacheTransferred))
	counter("paotr_batched_items_total", "Items pre-acquired by the tick batcher.", float64(m.BatchedItems))
	counter("paotr_duplicate_pulls_avoided_total", "Duplicate same-tick pulls coalesced by the batcher.", float64(m.DuplicatePullsAvoided))
	gauge("paotr_tracked_predicates", "Predicates with live estimator state.", float64(m.TrackedPredicates))
	counter("paotr_trace_evictions_total", "Estimator predicate states evicted to honour the cap.", float64(m.TraceEvictions))

	p.Header("paotr_detector_trips_total", "Page-Hinkley change-detector trips by kind.", "counter")
	p.Value("paotr_detector_trips_total", map[string]string{"kind": "predicate"}, float64(m.PredicateDetectorTrips))
	p.Value("paotr_detector_trips_total", map[string]string{"kind": "cost"}, float64(m.CostDetectorTrips))
	counter("paotr_replans_forced_total", "Plans invalidated by drift detection.", float64(m.ReplansForced))

	if m.Shards > 1 {
		gauge("paotr_shards", "Shard workers in the fleet.", float64(m.Shards))
		counter("paotr_repartitions_total", "Drift-driven repartitions of the fleet.", float64(m.Repartitions))
		counter("paotr_queries_moved_total", "Queries moved by repartitions.", float64(m.QueriesMoved))
		counter("paotr_cross_shard_duplicate_transfers_total", "Items acquired by more than one shard.", float64(m.CrossShardDuplicateTransfers))
	}
	if m.RelayEnabled {
		counter("paotr_relay_purchases_total", "Items purchased at full cost (once per item fleet-wide).", float64(m.RelayPurchases))
		counter("paotr_relay_hits_total", "Items transferred from the fleet-global relay.", float64(m.RelayHits))
		counter("paotr_relay_transfer_joules_total", "Energy paid for relay transfers.", m.RelayTransferSpend)
		counter("paotr_relay_saved_joules_total", "Acquisition energy relay hits avoided.", m.RelaySavedSpend)
	}

	p.Header("paotr_stream_spent_joules_total", "Acquisition energy paid per stream.", "counter")
	for _, ps := range m.PerStream {
		p.Value("paotr_stream_spent_joules_total", map[string]string{"stream": ps.Name}, ps.Spent)
	}
	p.Header("paotr_stream_requests_total", "Items requested per stream.", "counter")
	for _, ps := range m.PerStream {
		p.Value("paotr_stream_requests_total", map[string]string{"stream": ps.Name}, float64(ps.Requested))
	}
	p.Header("paotr_stream_transfers_total", "Items transferred per stream.", "counter")
	for _, ps := range m.PerStream {
		p.Value("paotr_stream_transfers_total", map[string]string{"stream": ps.Name}, float64(ps.Transferred))
	}

	// Tick-latency histograms (absent when -tick-hists=false): fleet-wide
	// per phase, then the per-shard total-tick distributions.
	if len(m.TickLatency) > 0 {
		p.Header("paotr_tick_phase_seconds", "Tick latency by phase (plan/acquire/execute/fanout/total).", "histogram")
		phases := make([]string, 0, len(m.TickLatency))
		for name := range m.TickLatency {
			phases = append(phases, name)
		}
		sort.Strings(phases)
		for _, name := range phases {
			p.Histogram("paotr_tick_phase_seconds", map[string]string{"phase": name}, m.TickLatency[name])
		}
	}
	shardHists := false
	for _, sh := range m.PerShard {
		if sh.TickLatency != nil {
			shardHists = true
			break
		}
	}
	if shardHists {
		p.Header("paotr_shard_tick_seconds", "Total tick latency per shard.", "histogram")
		for _, sh := range m.PerShard {
			if sh.TickLatency != nil {
				p.Histogram("paotr_shard_tick_seconds", map[string]string{"shard": strconv.Itoa(sh.Shard)}, *sh.TickLatency)
			}
		}
	}

	// Admission-control backpressure (absent when -admit=false).
	if a := m.Admission; a != nil {
		gauge("paotr_admit_overloaded", "Whether the admission controller considers the fleet overloaded (recent p99 above the gold SLO).", b2f(a.Overloaded))
		gauge("paotr_admit_recent_p99_seconds", "p99 total-tick latency over the last completed SLO window.", a.RecentP99Ns/1e9)
		gauge("paotr_admit_slo_gold_seconds", "Gold-tier p99 tick-latency objective.", a.SLOGoldNs/1e9)
		gauge("paotr_admit_deferred_pending", "Registrations parked in the defer queue awaiting budget or headroom.", float64(a.DeferredPending))
		counter("paotr_admit_admitted_joules_total", "Quoted marginal J/tick admitted into the fleet.", a.AdmittedQuoteJ)
		gauge("paotr_admit_shed_precision", "Fraction of sheds that hit non-gold tiers (1 = no gold query ever shed).", a.ShedPrecision)
		p.Header("paotr_admit_decisions_total", "Admission verdicts by tier and action.", "counter")
		tiers := make([]string, 0, len(a.Decisions))
		for t := range a.Decisions {
			tiers = append(tiers, t)
		}
		sort.Strings(tiers)
		for _, t := range tiers {
			actions := make([]string, 0, len(a.Decisions[t]))
			for act := range a.Decisions[t] {
				actions = append(actions, act)
			}
			sort.Strings(actions)
			for _, act := range actions {
				p.Value("paotr_admit_decisions_total", map[string]string{"tier": t, "action": act}, float64(a.Decisions[t][act]))
			}
		}
		if len(a.Tenants) > 0 {
			p.Header("paotr_admit_tenant_budget_joules", "Per-tenant token-bucket balance in planned J.", "gauge")
			for _, tb := range a.Tenants {
				p.Value("paotr_admit_tenant_budget_joules", map[string]string{"tenant": tb.Tenant}, tb.BalanceJ)
			}
		}
	}

	// Event-journal census and tracer state.
	if j != nil {
		byType := j.CountByType()
		if len(byType) > 0 {
			p.Header("paotr_journal_events_total", "Journal events recorded by type (survives ring eviction).", "counter")
			types := make([]string, 0, len(byType))
			for t := range byType {
				types = append(types, t)
			}
			sort.Strings(types)
			for _, t := range types {
				p.Value("paotr_journal_events_total", map[string]string{"type": t}, float64(byType[t]))
			}
		}
		counter("paotr_journal_events_dropped_total", "Journal events evicted from the ring buffer.", float64(j.Dropped()))
	}
	gauge("paotr_trace_sample_period", "Tick-tracer sampling period (0 = tracing disabled).", float64(traceSample))
}

// b2f renders a boolean as a 0/1 gauge value.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestServeLoggerJSON: -log-json records are one-line JSON with level,
// RFC3339 timestamp, shard and a stable event tag.
func TestServeLoggerJSON(t *testing.T) {
	var b strings.Builder
	lg := newServeLogger(true, &b)
	lg.shard = 3
	lg.Infof("listen", "worker %d listening on %s", 3, ":8081")
	out := b.String()
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Fatalf("record is not one line: %q", out)
	}
	var rec logRecord
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("record is not JSON: %v: %q", err, out)
	}
	if rec.Level != "info" || rec.Event != "listen" || rec.Shard != 3 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Msg != "worker 3 listening on :8081" {
		t.Errorf("msg = %q", rec.Msg)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.TS); err != nil {
		t.Errorf("ts %q not RFC3339: %v", rec.TS, err)
	}
}

// TestServeLoggerPlain: without -log-json the output is the stdlib
// format — timestamp prefix, message verbatim, no JSON.
func TestServeLoggerPlain(t *testing.T) {
	var b strings.Builder
	lg := newServeLogger(false, &b)
	lg.Infof("listen", "paotrserve listening on %s", ":8080")
	out := b.String()
	if !strings.Contains(out, "paotrserve listening on :8080") {
		t.Errorf("plain output missing message: %q", out)
	}
	if strings.Contains(out, `"level"`) {
		t.Errorf("plain output contains JSON fields: %q", out)
	}
}

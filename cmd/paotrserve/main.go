// Command paotrserve runs the multi-query scheduling service as an
// HTTP/JSON server: clients register continuous queries over the shared
// sensor streams, advance time in ticks, and read per-query results and
// fleet-wide metrics. All registered queries share one acquisition cache,
// so an item pulled for one tenant's query is free for every other query
// that needs it — the multi-query payoff of the paper's shared-stream
// model.
//
// Usage:
//
//	paotrserve -addr :8080
//	paotrserve -demo -steps 300        # run the multi-tenant demo and exit
//
// Endpoints:
//
//	POST   /queries   {"id":"q1","query":"AVG(heart-rate,5) > 100","every":1,"executor":"adaptive"}
//	GET    /queries
//	DELETE /queries/{id}
//	POST   /tick      {"steps":10}
//	GET    /results/{id}?n=20
//	GET    /metrics
//
// Available streams: heart-rate, spo2, accelerometer, gps-speed,
// temperature (BLE cost model; accelerometer uses WiFi).
//
// The per-query "executor" field (or the -executor flag, for the fleet
// default) selects the execution strategy: "linear" runs the planner's
// fixed schedule, "adaptive" walks an optimal decision tree when the
// query is within the 12-leaf DP bound and the modelled gap clears
// -adaptive-gap (falling back to linear otherwise).
//
// The -shape-factoring flag (default on) interns same-shape queries
// into equivalence classes: each tick one leader per class evaluates
// the shared plan and its verdict fans out to every subscriber at zero
// cost, so a fleet of N tenants over S distinct alert templates pays
// for S evaluations, not N. /metrics reports the class census
// (distinct_shapes, shape_subscribers) and shared_executions;
// -shape-factoring=false degenerates to one class per query.
//
// The -estimator flag selects probability estimation: "windowed" (the
// default) learns leaf probabilities and per-item costs online over a
// sliding window (-window) with Page-Hinkley change detectors
// (-ph-delta, -ph-lambda) that force targeted replans on regime shifts;
// "cumulative" is the never-forgetting baseline. /metrics reports
// estimator state (detector trips, forced replans, CI width, learned
// per-stream costs). The -scenario flag swaps the sensor fleet:
// "wearables" (default) or "drift", a regime-shifting synthetic corpus
// whose probabilities and costs flip at -shift-tick (for drift e2e
// testing; streams r0..r3).
//
// The -shards flag scales the service horizontally: queries are placed
// onto N shard workers by stream affinity (see internal/shard), each
// worker owns its own acquisition cache, fleet planner and estimator,
// and ticks run concurrently across shards. /metrics then adds
// per-shard summaries, the modelled sharing lost to partitioning and
// the realized cross-shard duplicate traffic; execution results carry
// the shard that ran them. -repartition n enables live re-partitioning:
// after at least n ticks, a tick that observed drift-detector trips
// re-runs the partitioner and moves queries (their learned estimator
// evidence migrates along). -shards 1 (the default) is byte-identical
// to the unsharded service.
//
// The -relay-frac flag (with -shards > 1) enables the fleet-global L2
// item relay: an item one shard already purchased is transferred to
// other shards at that fraction of its acquisition cost instead of
// re-acquired at stream cost, recovering most of the sharing lost to
// partitioning. /metrics then adds relay_hits, relay_transfer_spend,
// relay_saved_spend and sharing_lost_pct_relay (the residual modelled
// loss after relay discounts). 0 (the default) disables the relay.
//
// -worker turns the process into a shard worker: it serves the
// coordinator protocol under /worker/ instead of the public API
// (-shard-index stamps its executions). -join "url1,url2,..." turns the
// process into a coordinator over those already-running workers — the
// public API is served locally, queries are placed across the workers by
// stream affinity, and relay state syncs at tick boundaries. A restarted
// coordinator adopts the standing queries its workers still hold.
//
// The -admit flag (default on) gates registrations behind admission
// control: every POST /queries is priced at its marginal joint cost (a
// read-only dry run of the joint planner), charged against a per-tenant
// token-bucket budget (-admit-rate J/tick refill, -admit-burst J cap;
// the tenant is the id prefix before the first '/'), and tiered by the
// request's "tier" field (gold, silver, or bronze — the default). Under
// SLO burn (the last -admit-window ticks' p99 total-tick latency above
// -admit-slo-gold-ms) bronze registrations are shed and silver deferred
// while gold still admits; shed and deferred registrations get 429 with
// a Retry-After hint and the quoted cost in the body, and deferred ones
// are retried automatically at tick boundaries until budgets refill.
// /metrics reports the backpressure state under "admission";
// /metrics.prom exports the paotr_admit_* families; every verdict lands
// in the event journal (admit/defer/shed). -admit=false serves the
// ungated runtime, byte-identical to the pre-admission service.
//
// The -pprof flag exposes net/http/pprof under /debug/pprof/, for
// CPU/heap profiling of a live fleet. /metrics reports joint planning
// health alongside: plan_ns (cumulative wall time spent in the joint
// planner) and plan_incremental (plans produced by patching a cached
// joint plan instead of replanning the whole fleet).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"paotr/internal/acquisition"
	"paotr/internal/adapt"
	"paotr/internal/admit"
	"paotr/internal/corpus"
	"paotr/internal/engine"
	"paotr/internal/service"
	"paotr/internal/stream"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		seed    = flag.Uint64("seed", 1, "sensor simulation seed")
		workers = flag.Int("workers", 0, "tick worker-pool size (0 = GOMAXPROCS)")
		demo    = flag.Bool("demo", false, "run the multi-tenant demo scenario and exit")
		steps   = flag.Int("steps", 300, "ticks to run in -demo mode")
		replan  = flag.Float64("replan-threshold", 0.02,
			"probability drift tolerated before re-planning (0 = exact match, negative = re-plan every tick)")
		executor = flag.String("executor", "linear",
			"default execution strategy: linear or adaptive")
		adaptiveGap = flag.Float64("adaptive-gap", engine.DefaultGapThreshold,
			"relative linear/non-linear cost gap required before the adaptive executor prefers a decision tree")
		noBatch   = flag.Bool("no-batch", false, "disable tick-level batched acquisition")
		fleetPlan = flag.Bool("fleet-plan", true,
			"plan all due linear queries jointly each tick, discounting items sibling queries will pull (see Metrics.FleetExpectedCost)")
		shapeFactoring = flag.Bool("shape-factoring", true,
			"intern same-shape queries into equivalence classes and evaluate each distinct shape once per tick, fanning the verdict out to every subscriber (see Metrics.DistinctShapes)")
		stripes = flag.Int("cache-stripes", 0,
			"acquisition-cache lock stripes (0 = one per stream; 1 = single global lock baseline)")
		estimator = flag.String("estimator", "windowed",
			"probability estimation: windowed (online adaptive) or cumulative (never-forgetting baseline)")
		window = flag.Int("window", 0,
			"sliding-window size of the windowed estimator (0 = default 64)")
		phDelta = flag.Float64("ph-delta", 0,
			"Page-Hinkley tolerance: probability shifts below this are absorbed (0 = default 0.1)")
		phLambda = flag.Float64("ph-lambda", 0,
			"Page-Hinkley trip threshold: cumulative deviation required to force replans (0 = default 12)")
		scenario = flag.String("scenario", "wearables",
			"sensor fleet: wearables, or drift (regime-shifting corpus, streams r0..r3)")
		shiftTick = flag.Int64("shift-tick", 150,
			"tick at which the drift scenario flips probabilities and costs (-scenario drift only; <= 0 never)")
		shards = flag.Int("shards", 1,
			"shard workers: queries are placed by stream affinity, each shard owns its own cache/planner/estimator (1 = the unsharded service)")
		repartition = flag.Int("repartition", 0,
			"minimum ticks between drift-driven repartitions of the sharded fleet (0 = never re-partition live; needs -shards > 1)")
		relayFrac = flag.Float64("relay-frac", 0,
			"fleet-global L2 relay: per-item transfer cost as a fraction of acquisition cost for items another shard already purchased (0 = relay off; needs -shards > 1 or -join/-worker)")
		workerMode = flag.Bool("worker", false,
			"run as a shard worker: serve the coordinator protocol under /worker/ instead of the public API")
		shardIndex = flag.Int("shard-index", 0,
			"this worker's shard index, stamped on its executions (-worker only)")
		join = flag.String("join", "",
			"comma-separated worker base URLs to coordinate over (e.g. \"http://w0:8081,http://w1:8082\"); serves the public API over those workers")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof under /debug/pprof/ (CPU/heap profiling of a live fleet, e.g. plan-time or per-tick allocation hunts)")
		admitOn = flag.Bool("admit", true,
			"gate registrations behind admission control: marginal-cost pricing, per-tenant budgets, SLA tiers (false = serve ungated, byte-identical to the pre-admission service)")
		admitRate = flag.Float64("admit-rate", 0,
			"per-tenant budget refill in planned J/tick (0 = default 25)")
		admitBurst = flag.Float64("admit-burst", 0,
			"per-tenant budget burst cap in planned J (0 = default 500)")
		admitWindow = flag.Int("admit-window", 0,
			"SLO window in ticks over which the admission controller measures p99 tick latency (0 = default 64)")
		admitSLOGoldMS = flag.Float64("admit-slo-gold-ms", 0,
			"gold-tier p99 tick-latency objective in milliseconds; sustained breach marks the fleet overloaded (0 = default 250)")
		admitSLOSilverMS = flag.Float64("admit-slo-silver-ms", 0,
			"silver-tier p99 tick-latency objective in milliseconds (0 = default 1000)")
		admitSLOBronzeMS = flag.Float64("admit-slo-bronze-ms", 0,
			"bronze-tier p99 tick-latency objective in milliseconds (0 = default 4000)")
		traceSample = flag.Int("trace-sample", 0,
			"tick-tracer sampling period: every n-th tick records one structured trace served at /debug/ticks/{n} (0 = tracing off, the zero-allocation default)")
		logJSON = flag.Bool("log-json", false,
			"emit one-line JSON log records (level, ts, shard, event) instead of plain text")
	)
	flag.Parse()
	lg := newServeLogger(*logJSON, os.Stderr)

	cfg := serviceConfig{
		seed: *seed, workers: *workers, replan: *replan,
		executor: *executor, gap: *adaptiveGap,
		batch: !*noBatch, fleetPlan: *fleetPlan, shapeFactor: *shapeFactoring, stripes: *stripes,
		estimator: *estimator, window: *window, phDelta: *phDelta, phLambda: *phLambda,
		scenario: *scenario, shiftTick: *shiftTick,
		shards: *shards, repartition: *repartition, relayFrac: *relayFrac,
		traceSample: *traceSample,
		admit:       *admitOn,
		admitRate:   *admitRate, admitBurst: *admitBurst, admitWindow: *admitWindow,
		admitSLOGoldMS: *admitSLOGoldMS, admitSLOSilverMS: *admitSLOSilverMS,
		admitSLOBronzeMS: *admitSLOBronzeMS,
	}
	if *workerMode {
		lg.shard = *shardIndex
		h, err := newWorkerHandler(cfg, *shardIndex)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paotrserve: %v\n", err)
			os.Exit(2)
		}
		lg.Infof("listen", "paotrserve worker %d listening on %s (relay frac %.2f)", *shardIndex, *addr, *relayFrac)
		lg.Fatal("serve", http.ListenAndServe(*addr, h))
	}
	var svc service.Runtime
	var err error
	if *join != "" {
		svc, err = newCoordinator(cfg, strings.Split(*join, ","))
	} else {
		svc, err = newServiceWith(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrserve: %v\n", err)
		os.Exit(2)
	}
	if *demo {
		if err := runDemo(os.Stdout, svc, *steps, *adaptiveGap); err != nil {
			fmt.Fprintf(os.Stderr, "paotrserve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	streams := "heart-rate, spo2, accelerometer, gps-speed, temperature"
	if *scenario == "drift" {
		streams = "r0, r1, r2, r3 (regime shift at tick " + strconv.FormatInt(*shiftTick, 10) + ")"
	}
	srv := newServer(svc, *adaptiveGap)
	if *pprofOn {
		srv.enablePprof()
		lg.Infof("pprof", "pprof enabled under /debug/pprof/")
	}
	lg.Infof("listen", "paotrserve listening on %s (estimator: %s; streams: %s)", *addr, *estimator, streams)
	lg.Fatal("serve", http.ListenAndServe(*addr, srv))
}

// executorByName resolves an execution-strategy name from the API or CLI.
// The empty string means "use the default".
func executorByName(name string, gap float64) (engine.Executor, error) {
	switch name {
	case "", engine.StrategyLinear:
		return engine.LinearExecutor{}, nil
	case engine.StrategyAdaptive:
		return engine.AdaptiveExecutor{GapThreshold: gap}, nil
	}
	return nil, fmt.Errorf("unknown executor %q (want %q or %q)", name, engine.StrategyLinear, engine.StrategyAdaptive)
}

// serviceConfig collects the service-construction knobs of the CLI.
type serviceConfig struct {
	seed      uint64
	workers   int
	replan    float64
	executor  string
	gap       float64
	batch     bool
	fleetPlan bool
	// shapeFactor interns same-shape queries into equivalence classes so
	// each distinct shape plans and evaluates once per tick (the
	// -shape-factoring flag; see service.WithShapeFactoring).
	shapeFactor bool
	stripes     int
	// estimator is "windowed" (default when empty) or "cumulative";
	// window/phDelta/phLambda tune the windowed estimator (0 = default).
	estimator string
	window    int
	phDelta   float64
	phLambda  float64
	// scenario is "wearables" (default when empty) or "drift"; shiftTick
	// is the drift scenario's regime-flip tick.
	scenario  string
	shiftTick int64
	// shards > 1 runs the sharded runtime; repartition is the minimum
	// tick gap between drift-driven repartitions (0 = off); relayFrac > 0
	// enables the fleet-global L2 item relay at that transfer fraction.
	shards      int
	repartition int
	relayFrac   float64
	// traceSample is the tick tracer's sampling period (0 = tracing off,
	// the zero-allocation default; see service.WithTraceSampling).
	traceSample int
	// admit gates registrations behind admission control (the -admit
	// flag); the remaining knobs tune the controller, 0 meaning the
	// admit.DefaultConfig value.
	admit            bool
	admitRate        float64
	admitBurst       float64
	admitWindow      int
	admitSLOGoldMS   float64
	admitSLOSilverMS float64
	admitSLOBronzeMS float64
}

// admitConfigFor maps the CLI's admission knobs onto an admit.Config,
// falling back to admit.DefaultConfig for every zero knob.
func admitConfigFor(cfg serviceConfig) admit.Config {
	c := admit.DefaultConfig()
	if cfg.admitRate > 0 {
		c.RefillJPerTick = cfg.admitRate
	}
	if cfg.admitBurst > 0 {
		c.BurstJ = cfg.admitBurst
	}
	if cfg.admitWindow > 0 {
		c.WindowTicks = cfg.admitWindow
	}
	slos := []struct {
		tier admit.Tier
		ms   float64
	}{
		{admit.TierGold, cfg.admitSLOGoldMS},
		{admit.TierSilver, cfg.admitSLOSilverMS},
		{admit.TierBronze, cfg.admitSLOBronzeMS},
	}
	for _, s := range slos {
		if s.ms > 0 {
			c.SLOTickP99[s.tier] = time.Duration(s.ms * float64(time.Millisecond))
		}
	}
	return c
}

// gateRuntime wraps rt in the admission gate when cfg asks for it.
// Worker processes are never gated — admission is a front-door concern,
// so the coordinator gates for the whole fleet.
func gateRuntime(cfg serviceConfig, rt service.Runtime) service.Runtime {
	if !cfg.admit {
		return rt
	}
	return service.NewAdmissionGate(rt, admit.NewController(admitConfigFor(cfg)))
}

// newService builds the service over the standard simulated sensor fleet
// with the linear default executor (the test configuration).
func newService(seed uint64, workers int, replanThreshold float64) service.Runtime {
	svc, err := newServiceWith(serviceConfig{
		seed: seed, workers: workers, replan: replanThreshold,
		executor: "linear", gap: engine.DefaultGapThreshold,
		batch: true, fleetPlan: true, shapeFactor: true,
	})
	if err != nil {
		panic(err) // unreachable: "linear" always resolves
	}
	return svc
}

// serviceOptions builds the per-service options of a configuration
// (everything except the sharded-runtime knobs).
func serviceOptions(cfg serviceConfig) ([]service.Option, error) {
	x, err := executorByName(cfg.executor, cfg.gap)
	if err != nil {
		return nil, err
	}
	opts := []service.Option{
		service.WithEngineOptions(engine.WithReplanThreshold(cfg.replan)),
		service.WithExecutor(x),
		service.WithBatchedAcquisition(cfg.batch),
		service.WithFleetPlanning(cfg.fleetPlan),
		service.WithShapeFactoring(cfg.shapeFactor),
		service.WithCacheStripes(cfg.stripes),
	}
	if cfg.workers > 0 {
		opts = append(opts, service.WithWorkers(cfg.workers))
	}
	if cfg.traceSample > 0 {
		opts = append(opts, service.WithTraceSampling(cfg.traceSample))
	}
	switch cfg.estimator {
	case "", "windowed":
		opts = append(opts, service.WithAdaptConfig(adapt.Config{
			Window: cfg.window, PHDelta: cfg.phDelta, PHLambda: cfg.phLambda,
		}))
	case "cumulative":
		opts = append(opts, service.WithCumulativeEstimator())
	default:
		return nil, fmt.Errorf("unknown estimator %q (want \"windowed\" or \"cumulative\")", cfg.estimator)
	}
	return opts, nil
}

// registryFor builds the configured sensor fleet.
func registryFor(cfg serviceConfig) (*stream.Registry, error) {
	switch cfg.scenario {
	case "", "wearables":
		return stream.Wearables(cfg.seed), nil
	case "drift":
		return corpus.RegimeRegistry(corpus.RegimeConfig{Seed: cfg.seed, ShiftStep: cfg.shiftTick}), nil
	}
	return nil, fmt.Errorf("unknown scenario %q (want \"wearables\" or \"drift\")", cfg.scenario)
}

// newServiceWith builds the serving runtime over the configured sensor
// fleet from an explicit configuration: the plain service, or the
// sharded runtime when cfg.shards > 1.
func newServiceWith(cfg serviceConfig) (service.Runtime, error) {
	opts, err := serviceOptions(cfg)
	if err != nil {
		return nil, err
	}
	reg, err := registryFor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.shards > 1 {
		if cfg.repartition > 0 {
			opts = append(opts, service.WithRepartitionEvery(cfg.repartition))
		}
		if cfg.relayFrac > 0 {
			opts = append(opts, service.WithRelay(cfg.relayFrac))
		}
		return gateRuntime(cfg, service.NewSharded(reg, cfg.shards, opts...)), nil
	}
	return gateRuntime(cfg, service.New(reg, opts...)), nil
}

// newWorkerHandler builds a shard worker process: a plain service (plus
// a relay mirror when cfg.relayFrac > 0) behind the /worker/ protocol.
func newWorkerHandler(cfg serviceConfig, shardIdx int) (http.Handler, error) {
	opts, err := serviceOptions(cfg)
	if err != nil {
		return nil, err
	}
	reg, err := registryFor(cfg)
	if err != nil {
		return nil, err
	}
	var mirror *acquisition.ItemRelay
	if cfg.relayFrac > 0 {
		mirror = acquisition.NewItemRelay(reg.Len(), cfg.relayFrac)
		opts = append(opts, service.WithSharedRelay(mirror))
	}
	opts = append(opts, service.WithShardIndex(shardIdx))
	return service.NewWorkerHandler(service.New(reg, opts...), mirror), nil
}

// newCoordinator builds the coordinator runtime over already-running
// worker processes. The workers carry the per-service configuration;
// only the sharded-runtime knobs apply here.
func newCoordinator(cfg serviceConfig, endpoints []string) (service.Runtime, error) {
	reg, err := registryFor(cfg)
	if err != nil {
		return nil, err
	}
	var opts []service.Option
	if cfg.repartition > 0 {
		opts = append(opts, service.WithRepartitionEvery(cfg.repartition))
	}
	if cfg.relayFrac > 0 {
		opts = append(opts, service.WithRelay(cfg.relayFrac))
	}
	sh, err := service.NewShardedRemote(reg, endpoints, opts...)
	if err != nil {
		return nil, err
	}
	return gateRuntime(cfg, sh), nil
}

// server is the HTTP front-end over one serving runtime (plain or
// sharded). gap is the adaptive executor's gap threshold, applied to
// per-query "executor" choices.
type server struct {
	svc service.Runtime
	gap float64
	mux *http.ServeMux
}

// newServer wires the endpoint handlers.
func newServer(svc service.Runtime, gap float64) *server {
	s := &server{svc: svc, gap: gap, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /queries", s.handleRegister)
	s.mux.HandleFunc("GET /queries", s.handleListQueries)
	// {id...} matches across '/' so tenant-style ids like "a/tachycardia"
	// stay addressable.
	s.mux.HandleFunc("DELETE /queries/{id...}", s.handleUnregister)
	s.mux.HandleFunc("POST /tick", s.handleTick)
	s.mux.HandleFunc("GET /results/{id...}", s.handleResults)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	s.mux.HandleFunc("GET /debug/ticks", s.handleDebugTicks)
	s.mux.HandleFunc("GET /debug/ticks/{n}", s.handleDebugTick)
	s.mux.HandleFunc("PUT /debug/trace-sample", s.handleTraceSample)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// enablePprof mounts the net/http/pprof handlers on the server mux (the
// -pprof flag): profiles are how plan-time and per-tick allocation
// regressions get diagnosed against a live fleet instead of a synthetic
// benchmark corpus.
func (s *server) enablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	// Named runtime profiles are routed explicitly rather than relying
	// on the subtree pattern above resolving them through pprof.Index:
	// registering more-specific /debug/... routes (like /debug/ticks/{n})
	// must never shadow a profile, and the explicit routes pin that
	// (TestPprofNamedProfiles).
	for _, name := range []string{"goroutine", "heap", "allocs", "threadcreate", "block", "mutex"} {
		s.mux.Handle("GET /debug/pprof/"+name, pprof.Handler(name))
	}
}

// queryOptions converts a register request into service options, using
// gap as the threshold for per-query adaptive executors.
func queryOptions(req registerRequest, gap float64) ([]service.QueryOption, error) {
	var opts []service.QueryOption
	if req.Every > 0 {
		opts = append(opts, service.Every(req.Every))
	}
	if req.Executor != "" {
		x, err := executorByName(req.Executor, gap)
		if err != nil {
			return nil, err
		}
		opts = append(opts, service.WithQueryExecutor(x))
	}
	return opts, nil
}

// registerRequest is the body of POST /queries.
type registerRequest struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	// Every runs the query only on every n-th tick (default 1).
	Every int `json:"every,omitempty"`
	// Executor selects the execution strategy for this query ("linear"
	// or "adaptive"; empty uses the service default).
	Executor string `json:"executor,omitempty"`
	// Tier is the admission priority: "gold", "silver" or "bronze"
	// (default). Ignored when the server runs -admit=false.
	Tier string `json:"tier,omitempty"`
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.ID == "" || req.Query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id and query are required"))
		return
	}
	opts, err := queryOptions(req, s.gap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tier, err := admit.ParseTier(req.Tier)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.register(req.ID, req.Query, tier, opts); err != nil {
		var adm *service.AdmissionError
		if errors.As(err, &adm) {
			s.writeAdmission(w, adm)
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, service.ErrDuplicateID) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	m, _ := s.svc.QueryMetrics(req.ID)
	writeJSON(w, http.StatusCreated, m)
}

// register routes a registration through the admission gate's tiered
// entry point when the runtime is gated, the plain Register otherwise.
func (s *server) register(id, text string, tier admit.Tier, opts []service.QueryOption) error {
	if g, ok := s.svc.(*service.AdmissionGate); ok {
		return g.RegisterTier(id, text, tier, opts...)
	}
	return s.svc.Register(id, text, opts...)
}

// admissionResponse is the 429 body of a shed or deferred registration:
// the controller's verdict, including the quoted marginal cost the
// client was priced at.
type admissionResponse struct {
	Error    string         `json:"error"`
	Decision admit.Decision `json:"decision"`
	// Queued reports the registration was parked for automatic retry at
	// tick boundaries (Defer verdicts): the client may poll GET /queries
	// for it instead of re-POSTing.
	Queued bool `json:"queued"`
}

// writeAdmission maps an admission rejection to 429 Too Many Requests
// with a Retry-After hint in ticks.
func (s *server) writeAdmission(w http.ResponseWriter, adm *service.AdmissionError) {
	if adm.Decision.RetryAfterTicks > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(adm.Decision.RetryAfterTicks))
	}
	writeJSON(w, http.StatusTooManyRequests, admissionResponse{
		Error:    adm.Error(),
		Decision: adm.Decision,
		Queued:   adm.Queued,
	})
}

func (s *server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	ids := s.svc.QueryIDs()
	out := make([]service.QueryMetrics, 0, len(ids))
	for _, id := range ids {
		if m, err := s.svc.QueryMetrics(id); err == nil {
			out = append(out, m)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.Unregister(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

// tickRequest is the body of POST /tick.
type tickRequest struct {
	Steps int `json:"steps"`
}

// maxTickSteps bounds one request's work.
const maxTickSteps = 100_000

func (s *server) handleTick(w http.ResponseWriter, r *http.Request) {
	req := tickRequest{Steps: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
	}
	if req.Steps < 1 || req.Steps > maxTickSteps {
		writeError(w, http.StatusBadRequest, fmt.Errorf("steps must be in [1, %d]", maxTickSteps))
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Run(req.Steps))
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	res, err := s.svc.Results(r.PathValue("id"), n)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Metrics())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// demoQueries is the multi-tenant demo scenario: three tenants whose
// continuous queries overlap heavily on the same streams, so the shared
// cache and plan reuse both get traction.
var demoQueries = []registerRequest{
	// Tenant A: telehealth alerting. The two alerting queries small
	// enough for the decision-tree DP run adaptively.
	{ID: "a/tachycardia", Query: "AVG(heart-rate,5) > 100 AND accelerometer < 12", Executor: "adaptive"},
	{ID: "a/hypoxia", Query: "spo2 < 92 OR (heart-rate > 110 AND gps-speed < 0.5)", Executor: "adaptive"},
	{ID: "a/exertion", Query: "AVG(heart-rate,5) > 90 AND AVG(spo2,3) < 95"},
	// Cardiac triage shares heart-rate across all three AND nodes with
	// different windows — the shared-stream shape where a decision tree
	// can beat every fixed schedule (paper, Section V).
	{ID: "a/cardiac", Query: "(AVG(heart-rate,8) > 95 AND spo2 < 94) OR (AVG(heart-rate,3) > 110 AND gps-speed < 0.5) OR (heart-rate > 125 AND accelerometer > 15)", Executor: "adaptive"},
	// Tenant B: activity tracking, lower cadence.
	{ID: "b/fall", Query: "accelerometer > 20 AND AVG(gps-speed,4) < 0.2", Every: 2},
	{ID: "b/workout", Query: "accelerometer > 15 AND heart-rate > 100"},
	{ID: "b/commute", Query: "AVG(gps-speed,4) > 1.5 AND heart-rate > 80", Every: 2},
	// Tenant C: environment monitoring, slow cadence.
	{ID: "c/heat", Query: "AVG(temperature,6) > 24 AND heart-rate > 90", Every: 5},
	{ID: "c/indoors", Query: "AVG(temperature,6) < 25 AND spo2 > 90", Every: 5},
}

// runDemo registers the demo fleet, runs it for the given number of
// ticks, and prints per-query and fleet-wide metrics.
func runDemo(w io.Writer, svc service.Runtime, steps int, gap float64) error {
	for _, q := range demoQueries {
		opts, err := queryOptions(q, gap)
		if err != nil {
			return err
		}
		if err := svc.Register(q.ID, q.Query, opts...); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "multi-tenant demo: %d queries, %d ticks\n\n", len(demoQueries), steps)
	svc.Run(steps)
	m := svc.Metrics()
	fmt.Fprintf(w, "%-14s %-8s %6s %6s %10s %10s %8s %s\n",
		"query", "exec", "runs", "true", "paid J", "expect J", "plan-hit", "text")
	for _, qm := range m.PerQuery {
		hit := 0.0
		if qm.Executions > 0 {
			hit = float64(qm.PlanCacheHits) / float64(qm.Executions)
		}
		fmt.Fprintf(w, "%-14s %-8s %6d %6d %10.2f %10.2f %7.0f%% %s\n",
			qm.ID, qm.Executor, qm.Executions, qm.TrueCount, qm.PaidCost, qm.ExpectedCost, 100*hit, qm.Query)
	}
	fmt.Fprintf(w, "\n--- fleet over %d ticks ---\n", m.Ticks)
	fmt.Fprintf(w, "executions:            %d (%d adaptive)\n", m.Executions, m.AdaptiveExecutions)
	fmt.Fprintf(w, "predicates evaluated:  %d\n", m.PredicatesEvaluated)
	fmt.Fprintf(w, "paid cost:             %.2f J (expected %.2f J, realized/expected %.2f)\n",
		m.PaidCost, m.ExpectedCost, m.RealizedOverExpected)
	fmt.Fprintf(w, "cache hit rate:        %.1f%% (%d/%d items served from cache)\n",
		100*m.CacheHitRate, m.CacheRequested-m.CacheTransferred, m.CacheRequested)
	fmt.Fprintf(w, "plan-cache hit rate:   %.1f%%\n", 100*m.PlanCacheHitRate)
	fmt.Fprintf(w, "batched acquisition:   %d duplicate pulls avoided, %d items (%.2f J) pre-acquired\n",
		m.DuplicatePullsAvoided, m.BatchedItems, m.BatchedCost)
	if m.FleetPlans > 0 {
		fmt.Fprintf(w, "fleet planning:        %d joint plans (%d reused), %d executions, modelled %.2f J vs %.2f J independent (%.1f%% saving)\n",
			m.FleetPlans, m.FleetPlanReuses, m.FleetPlannedExecutions,
			m.FleetExpectedCost, m.IndependentExpectedCost, 100*m.FleetModelledSaving)
	}
	if m.Shards > 1 {
		fmt.Fprintf(w, "sharding:              %d shards; modelled sharing lost %.1f%% (%.1f J joint at K shards vs %.1f J at one); %d cross-shard duplicate transfers (%.2f J); %d repartitions, %d queries moved\n",
			m.Shards, m.SharingLostPct, m.ShardJointExpectedCost, m.SingleJointExpectedCost,
			m.CrossShardDuplicateTransfers, m.CrossShardDuplicateSpend, m.Repartitions, m.QueriesMoved)
		for _, ps := range m.PerShard {
			fmt.Fprintf(w, "  shard %d:             %d queries (load %.1f J), %d executions, %.2f J paid, %.1f%% cache hit\n",
				ps.Shard, ps.Queries, ps.ExpectedLoad, ps.Executions, ps.PaidCost, 100*ps.CacheHitRate)
		}
	}
	fmt.Fprintf(w, "estimator:             %s (%d predicates tracked", m.Estimator, m.TrackedPredicates)
	if m.Estimator == "windowed" {
		fmt.Fprintf(w, ", window %d, avg CI width %.2f, %d/%d detector trips, %d forced replans",
			m.EstimatorWindow, m.AvgCIWidth, m.PredicateDetectorTrips, m.CostDetectorTrips, m.ReplansForced)
	}
	fmt.Fprintf(w, ")\n")
	fmt.Fprintf(w, "\n%-14s %10s %10s %8s %8s %8s\n", "stream", "requested", "pulled", "hit-rate", "spent J", "dup-avoid")
	for _, ps := range m.PerStream {
		fmt.Fprintf(w, "%-14s %10d %10d %7.1f%% %8.2f %9d\n",
			ps.Name, ps.Requested, ps.Transferred, 100*ps.HitRate, ps.Spent, ps.DuplicatePullsAvoided)
	}
	return nil
}

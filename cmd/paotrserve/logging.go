// Structured logging for paotrserve: the -log-json flag switches the
// server's own log lines from the plain stdlib format to one-line JSON
// records — level, RFC3339 timestamp, shard (worker mode), a stable
// event tag and the human message — so fleet log pipelines can index
// them without parsing free text. The plain default is byte-for-byte
// what previous releases printed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"
)

// logRecord is one JSON log line.
type logRecord struct {
	Level string `json:"level"`
	TS    string `json:"ts"`
	// Shard is the worker's shard index (worker mode only).
	Shard int `json:"shard,omitempty"`
	// Event is a stable machine-readable tag ("listen", "serve", ...).
	Event string `json:"event"`
	Msg   string `json:"msg"`
}

// serveLogger writes the server's own log lines, either as stdlib plain
// text (the default) or as one-line JSON records (-log-json).
type serveLogger struct {
	mu    sync.Mutex
	json  bool
	shard int
	out   io.Writer
	plain *log.Logger
}

// newServeLogger builds the process logger. Plain mode delegates to a
// stdlib logger on w so the default output format stays unchanged.
func newServeLogger(jsonOn bool, w io.Writer) *serveLogger {
	return &serveLogger{json: jsonOn, out: w, plain: log.New(w, "", log.LstdFlags)}
}

// Infof logs one line at level info. event is the stable tag of the
// JSON record; plain mode prints only the formatted message.
func (l *serveLogger) Infof(event, format string, args ...any) {
	l.emit("info", event, fmt.Sprintf(format, args...))
}

// Fatal logs the error at level fatal and exits with status 1, like
// log.Fatal. A nil error still exits: it is only ever reached when a
// Serve call returned.
func (l *serveLogger) Fatal(event string, err error) {
	msg := "server stopped"
	if err != nil {
		msg = err.Error()
	}
	l.emit("fatal", event, msg)
	os.Exit(1)
}

func (l *serveLogger) emit(level, event, msg string) {
	if !l.json {
		l.plain.Print(msg)
		return
	}
	rec := logRecord{
		Level: level,
		TS:    time.Now().UTC().Format(time.RFC3339Nano),
		Shard: l.shard,
		Event: event,
		Msg:   msg,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		l.plain.Print(msg)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.out.Write(append(b, '\n'))
}

// Command paotrgen generates random PAOTR problem instances with the
// paper's distributions and writes them as JSON trees.
//
// Usage:
//
//	paotrgen -type and -leaves 10 -rho 2 -seed 1 -o tree.json
//	paotrgen -type dnf -ands 5 -leaves-per-and 10 -rho 3
//
// With no -o the tree is written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"paotr/internal/corpus"
	"paotr/internal/gen"
	"paotr/internal/query"
)

func main() {
	var (
		typ     = flag.String("type", "and", "instance type: and | dnf")
		leaves  = flag.Int("leaves", 10, "number of leaves (AND-trees)")
		ands    = flag.Int("ands", 3, "number of AND nodes (DNF trees)")
		perAnd  = flag.Int("leaves-per-and", 5, "leaves per AND node (DNF trees)")
		rho     = flag.Float64("rho", 2, "sharing ratio: expected leaves per stream")
		seed    = flag.Uint64("seed", 1, "random seed")
		maxD    = flag.Int("max-items", 5, "maximum window size d")
		minCost = flag.Float64("min-cost", 1, "minimum per-item stream cost")
		maxCost = flag.Float64("max-cost", 10, "maximum per-item stream cost")
		out     = flag.String("o", "", "output file (default stdout)")
		batch   = flag.String("corpus", "", "write a JSONL corpus instead: fig4 | small | large")
		perCfg  = flag.Int("per-config", 10, "instances per configuration for -corpus")
	)
	flag.Parse()

	dist := gen.Dist{MaxItems: *maxD, MinCost: *minCost, MaxCost: *maxCost}
	if *batch != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "paotrgen: -corpus requires -o FILE")
			os.Exit(2)
		}
		instances, err := buildCorpus(*batch, *perCfg, *seed, dist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paotrgen: %v\n", err)
			os.Exit(2)
		}
		if err := corpus.WriteFile(*out, instances); err != nil {
			fmt.Fprintf(os.Stderr, "paotrgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d instances\n", *out, len(instances))
		return
	}
	tree, err := buildTree(*typ, *leaves, *ands, *perAnd, *rho, dist, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrgen: %v\n", err)
		os.Exit(2)
	}
	if *out == "" {
		if err := query.Encode(os.Stdout, tree); err != nil {
			fmt.Fprintf(os.Stderr, "paotrgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := query.SaveFile(*out, tree); err != nil {
		fmt.Fprintf(os.Stderr, "paotrgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d leaves, %d AND nodes, %d streams (rho=%.2f)\n",
		*out, tree.NumLeaves(), tree.NumAnds(), tree.NumStreams(), tree.SharingRatio())
}

// buildTree generates one validated random instance of the requested
// type: a shared AND-tree or a DNF tree with ands AND nodes of perAnd
// leaves each.
func buildTree(typ string, leaves, ands, perAnd int, rho float64, dist gen.Dist, seed uint64) (*query.Tree, error) {
	rng := gen.NewRng(seed)
	var tree *query.Tree
	switch typ {
	case "and":
		tree = gen.AndTree(leaves, rho, dist, rng)
	case "dnf":
		sizes := make([]int, ands)
		for i := range sizes {
			sizes[i] = perAnd
		}
		tree = gen.DNF(sizes, rho, dist, rng)
	default:
		return nil, fmt.Errorf("unknown -type %q (want and|dnf)", typ)
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("generated invalid tree: %v", err)
	}
	return tree, nil
}

// buildCorpus generates one of the named instance corpora.
func buildCorpus(name string, perCfg int, seed uint64, dist gen.Dist) ([]corpus.Instance, error) {
	switch name {
	case "fig4":
		return corpus.GenerateAndTrees(perCfg, seed, dist), nil
	case "small":
		return corpus.GenerateDNF(gen.SmallDNFConfigs(), perCfg, seed, dist), nil
	case "large":
		return corpus.GenerateDNF(gen.LargeDNFConfigs(), perCfg, seed, dist), nil
	}
	return nil, fmt.Errorf("unknown corpus %q (want fig4|small|large)", name)
}

package main

import (
	"testing"

	"paotr/internal/gen"
)

func TestBuildTreeAnd(t *testing.T) {
	tr, err := buildTree("and", 10, 0, 0, 2, gen.Dist{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 10 || !tr.IsAndTree() {
		t.Errorf("AND-tree: %d leaves, %d ANDs", tr.NumLeaves(), tr.NumAnds())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildTreeDNF(t *testing.T) {
	tr, err := buildTree("dnf", 0, 4, 3, 2.5, gen.Dist{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumAnds() != 4 || tr.NumLeaves() != 12 {
		t.Errorf("DNF: %d ANDs, %d leaves, want 4 and 12", tr.NumAnds(), tr.NumLeaves())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildTreeDeterministic(t *testing.T) {
	a, err := buildTree("dnf", 0, 3, 4, 2, gen.Dist{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTree("dnf", 0, 3, 4, 2, gen.Dist{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different trees")
	}
}

func TestBuildTreeUnknownType(t *testing.T) {
	if _, err := buildTree("nope", 1, 1, 1, 1, gen.Dist{}, 1); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestBuildCorpus(t *testing.T) {
	instances, err := buildCorpus("fig4", 2, 5, gen.Dist{})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's grid has 157 configurations.
	if len(instances) != 314 {
		t.Errorf("fig4 corpus has %d instances, want 314", len(instances))
	}
	for _, in := range instances[:10] {
		if err := in.Tree.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", in.ID, err)
		}
	}
	if _, err := buildCorpus("nope", 1, 1, gen.Dist{}); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeArtifacts fills a directory with one artifact file.
func writeArtifact(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

const baseArtifact = `{
  "results": [
    {"name": "planning/fleet", "j_per_tick": 16.75, "per_sec": 50000},
    {"name": "planning/independent", "j_per_tick": 43.9, "per_sec": 29000}
  ],
  "nested": {"stale_j_per_tick": 11.47}
}`

// TestGatePassesWithinTolerance: identical and mildly improved metrics
// pass; per_sec changes are ignored entirely.
func TestGatePassesWithinTolerance(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeArtifact(t, baseDir, "BENCH_x.json", baseArtifact)
	writeArtifact(t, curDir, "BENCH_x.json", `{
	  "results": [
	    {"name": "planning/fleet", "j_per_tick": 17.0, "per_sec": 1},
	    {"name": "planning/independent", "j_per_tick": 40.0, "per_sec": 1}
	  ],
	  "nested": {"stale_j_per_tick": 11.47}
	}`)
	var out strings.Builder
	n, err := runGate(baseDir, curDir, []string{"BENCH_x.json"}, 0.10, &out)
	if err != nil || n != 0 {
		t.Fatalf("regressions = %d, err = %v\n%s", n, err, out.String())
	}
}

// TestGateFailsSyntheticTenPercentRegression is the dry run the CI step
// performs: a >10% J/tick inflation must be rejected, and the offending
// metric named by path.
func TestGateFailsSyntheticTenPercentRegression(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeArtifact(t, baseDir, "BENCH_x.json", baseArtifact)
	writeArtifact(t, curDir, "BENCH_x.json", `{
	  "results": [
	    {"name": "planning/fleet", "j_per_tick": 18.8, "per_sec": 50000},
	    {"name": "planning/independent", "j_per_tick": 43.9, "per_sec": 29000}
	  ],
	  "nested": {"stale_j_per_tick": 11.47}
	}`)
	var out strings.Builder
	n, err := runGate(baseDir, curDir, []string{"BENCH_x.json"}, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want exactly 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "results[planning/fleet].j_per_tick") {
		t.Errorf("regression not addressed by row name:\n%s", out.String())
	}
	// Reordered rows must still match by name, not index.
	writeArtifact(t, curDir, "BENCH_x.json", `{
	  "results": [
	    {"name": "planning/independent", "j_per_tick": 43.9},
	    {"name": "planning/fleet", "j_per_tick": 16.75}
	  ],
	  "nested": {"stale_j_per_tick": 11.47}
	}`)
	out.Reset()
	if n, err := runGate(baseDir, curDir, []string{"BENCH_x.json"}, 0.10, &out); err != nil || n != 0 {
		t.Fatalf("reordered rows: regressions = %d, err = %v\n%s", n, err, out.String())
	}
}

// TestGateFailsOnMissingMetricOrArtifact: a produced artifact losing a
// gated metric, or not being produced at all, is a failure — silent
// metric removal must not pass the gate.
func TestGateFailsOnMissingMetricOrArtifact(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeArtifact(t, baseDir, "BENCH_x.json", baseArtifact)
	writeArtifact(t, curDir, "BENCH_x.json", `{"results": [{"name": "planning/fleet", "j_per_tick": 16.75}]}`)
	var out strings.Builder
	n, err := runGate(baseDir, curDir, []string{"BENCH_x.json"}, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // independent row + nested stale metric both gone
		t.Fatalf("regressions = %d, want 2 for two missing metrics\n%s", n, out.String())
	}
	if _, err := runGate(baseDir, t.TempDir(), []string{"BENCH_x.json"}, 0.10, &out); err == nil {
		t.Fatal("missing current artifact accepted")
	}
}

// TestGateFailsOnMalformedBaseline: a zero or negative gated metric on
// either side makes the relative diff vacuous or nonsense, so the gate
// must error out loudly instead of skipping the row.
func TestGateFailsOnMalformedBaseline(t *testing.T) {
	good := `{"results": [{"name": "planning/fleet", "j_per_tick": 16.75}]}`
	for _, tc := range []struct {
		name            string
		baseCur         [2]string
		wantErrContains string
	}{
		{
			name: "zero baseline",
			baseCur: [2]string{
				`{"results": [{"name": "planning/fleet", "j_per_tick": 0, "per_sec": 1}]}`, good},
			wantErrContains: "baseline BENCH_x.json",
		},
		{
			name: "negative baseline",
			baseCur: [2]string{
				`{"results": [{"name": "planning/fleet", "j_per_tick": -3.2}]}`, good},
			wantErrContains: "baseline BENCH_x.json",
		},
		{
			name:            "zero current",
			baseCur:         [2]string{good, `{"results": [{"name": "planning/fleet", "j_per_tick": 0}]}`},
			wantErrContains: "current BENCH_x.json",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseDir, curDir := t.TempDir(), t.TempDir()
			writeArtifact(t, baseDir, "BENCH_x.json", tc.baseCur[0])
			writeArtifact(t, curDir, "BENCH_x.json", tc.baseCur[1])
			var out strings.Builder
			_, err := runGate(baseDir, curDir, []string{"BENCH_x.json"}, 0.10, &out)
			if err == nil {
				t.Fatalf("malformed metric accepted\n%s", out.String())
			}
			if !strings.Contains(err.Error(), tc.wantErrContains) || !strings.Contains(err.Error(), "malformed") {
				t.Errorf("error %q does not name the malformed side", err)
			}
		})
	}
}

// TestSelftestAgainstRealBaselines runs the -selftest path against the
// committed repository baselines, proving the dry run works end to end.
func TestSelftestAgainstRealBaselines(t *testing.T) {
	base := filepath.Join("..", "..", "ci", "baselines")
	if _, err := os.Stat(base); err != nil {
		t.Skipf("no committed baselines at %s", base)
	}
	var out strings.Builder
	if err := runSelftest(base, defaultArtifacts, 0.10, &out); err != nil {
		t.Fatalf("selftest against committed baselines: %v\n%s", err, out.String())
	}
}

// TestGateHigherBetterSpeedup: a *_speedup_gated metric regresses when it
// DROPS beyond tolerance, passes when steady, and merely improves when it
// rises — the mirror image of the J/tick direction.
func TestGateHigherBetterSpeedup(t *testing.T) {
	const cse = `{"cse_speedup_gated": 12.0, "speedup": 64.0, "factored_tick_ms": 2.4}`
	baseDir := t.TempDir()
	writeArtifact(t, baseDir, "BENCH_cse.json", cse)

	for _, tc := range []struct {
		name, current string
		want          int
	}{
		{"drop regresses", `{"cse_speedup_gated": 9.0}`, 1},
		{"steady passes", `{"cse_speedup_gated": 12.0}`, 0},
		{"rise improves", `{"cse_speedup_gated": 20.0}`, 0},
	} {
		curDir := t.TempDir()
		writeArtifact(t, curDir, "BENCH_cse.json", tc.current)
		var out strings.Builder
		n, err := runGate(baseDir, curDir, []string{"BENCH_cse.json"}, 0.10, &out)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n != tc.want {
			t.Errorf("%s: %d regressions, want %d\n%s", tc.name, n, tc.want, out.String())
		}
	}
}

// TestSelftestDeflatesHigherBetterMetrics: the synthetic-regression dry
// run must push speedup metrics DOWN (divide), or the selftest would
// wrongly report the gate as toothless on speedup-only artifacts.
func TestSelftestDeflatesHigherBetterMetrics(t *testing.T) {
	baseDir := t.TempDir()
	writeArtifact(t, baseDir, "BENCH_cse.json", `{"cse_speedup_gated": 12.0}`)
	var out strings.Builder
	if err := runSelftest(baseDir, []string{"BENCH_cse.json"}, 0.10, &out); err != nil {
		t.Fatalf("selftest on a speedup-only artifact: %v\n%s", err, out.String())
	}
}

// Command benchgate is the CI benchmark-regression gate: it diffs the
// freshly produced machine-readable benchmark artifacts (BENCH_*.json)
// against baselines committed in the repository and fails the build when
// an energy-efficiency metric regresses beyond the tolerance.
//
// The gated metrics are the deterministic efficiency numbers — every
// numeric JSON field whose name ends in "j_per_tick" or
// "allocs_per_tick", addressed by its path (array elements that carry a
// "name" field are addressed by it, so reordering rows does not break
// the diff). J/tick and allocations/tick are deterministic for the
// seeded simulation corpora, unlike wall-clock throughput, which makes
// them safe to gate on across heterogeneous CI hosts; per_sec and
// plan-time fields are deliberately not gated.
//
// Usage:
//
//	benchgate -baseline ci/baselines -current . [-tolerance 0.10] [files...]
//	benchgate -selftest -baseline ci/baselines
//
// Without explicit files the default artifact set is compared
// (BENCH_fleet.json, BENCH_adapt.json, BENCH_shard.json, BENCH_plan.json,
// BENCH_relay.json, BENCH_cse.json, BENCH_obs.json, BENCH_admit.json).
// A file present in the baseline directory but missing
// from the current one fails the gate, and a gated metric that is zero,
// negative or non-finite on either side is rejected as malformed (a
// corrupted baseline must not silently disable the comparison).
// -selftest is the dry run CI uses to prove the gate has teeth: it
// synthesizes a current artifact set with every J/tick metric inflated
// 12% over baseline and exits 0 only if the gate correctly rejects it,
// then checks that a zeroed baseline row errors out as malformed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultArtifacts is the benchmark set produced by the CI workflow.
var defaultArtifacts = []string{"BENCH_fleet.json", "BENCH_adapt.json", "BENCH_shard.json", "BENCH_plan.json", "BENCH_relay.json", "BENCH_cse.json", "BENCH_obs.json", "BENCH_admit.json"}

func main() {
	var (
		baseline = flag.String("baseline", "ci/baselines", "directory holding the committed baseline BENCH_*.json files")
		current  = flag.String("current", ".", "directory holding the freshly produced BENCH_*.json files")
		tol      = flag.Float64("tolerance", 0.10, "relative J/tick regression tolerated before failing")
		selftest = flag.Bool("selftest", false, "dry run: synthesize a regression over the baselines and verify the gate rejects it")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		files = defaultArtifacts
	}
	if *selftest {
		if err := runSelftest(*baseline, files, *tol, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate selftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("benchgate selftest: ok — synthetic regression was rejected")
		return
	}
	regressions, err := runGate(*baseline, *current, files, *tol, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed beyond %.0f%%\n", regressions, 100**tol)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all gated metrics within %.0f%% of baseline\n", 100**tol)
}

// metrics flattens a decoded JSON document into path -> value for every
// numeric field whose key ends in a gated suffix.
func metrics(doc any) map[string]float64 {
	out := map[string]float64{}
	collect(doc, "", out)
	return out
}

// gatedSuffixes are the key suffixes of the deterministic lower-is-better
// metrics the gate diffs; wall-clock fields stay ungated.
// higherBetterSuffixes mark gated metrics where a DROP is the regression
// (speedup ratios): the gate fails when the current value falls more
// than the tolerance below baseline.
var (
	gatedSuffixes        = []string{"j_per_tick", "allocs_per_tick"}
	higherBetterSuffixes = []string{"speedup_gated"}
)

func gatedKey(k string) bool {
	for _, s := range append(gatedSuffixes, higherBetterSuffixes...) {
		if strings.HasSuffix(k, s) {
			return true
		}
	}
	return false
}

func higherBetter(k string) bool {
	for _, s := range higherBetterSuffixes {
		if strings.HasSuffix(k, s) {
			return true
		}
	}
	return false
}

func collect(v any, path string, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			if f, ok := t[k].(float64); ok && gatedKey(k) {
				out[p] = f
				continue
			}
			collect(t[k], p, out)
		}
	case []any:
		for i, e := range t {
			label := fmt.Sprintf("%s[%d]", path, i)
			if m, ok := e.(map[string]any); ok {
				if name, ok := m["name"].(string); ok {
					label = fmt.Sprintf("%s[%s]", path, name)
				}
			}
			collect(e, label, out)
		}
	}
}

// loadMetrics reads one artifact and flattens its gated metrics.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return metrics(doc), nil
}

// validateMetrics rejects malformed gated metrics. A zero, negative,
// NaN or infinite baseline makes the relative diff vacuous (the gate
// used to skip such rows silently, letting a corrupted baseline disable
// the check), so they fail the gate loudly instead.
func validateMetrics(name string, m map[string]float64) error {
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		v := m[p]
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("%s: gated metric %s = %v is malformed (must be finite and > 0)", name, p, v)
		}
	}
	return nil
}

// gateFile compares one artifact's metrics and reports the number of
// regressions beyond tol.
func gateFile(name string, base, cur map[string]float64, tol float64, w io.Writer) int {
	paths := make([]string, 0, len(base))
	for p := range base {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	regressions := 0
	for _, p := range paths {
		b := base[p]
		c, ok := cur[p]
		if !ok {
			fmt.Fprintf(w, "  MISSING  %s: %s (baseline %.4f) absent from current artifact\n", name, p, b)
			regressions++
			continue
		}
		delta := (c - b) / b
		worse, better := delta > tol, delta < -tol
		if higherBetter(p) {
			worse, better = better, worse
		}
		switch {
		case worse:
			fmt.Fprintf(w, "  REGRESS  %s: %s %.4f -> %.4f (%+.1f%%)\n", name, p, b, c, 100*delta)
			regressions++
		case better:
			fmt.Fprintf(w, "  improve  %s: %s %.4f -> %.4f (%+.1f%%)\n", name, p, b, c, 100*delta)
		default:
			fmt.Fprintf(w, "  ok       %s: %s %.4f -> %.4f (%+.1f%%)\n", name, p, b, c, 100*delta)
		}
	}
	return regressions
}

// runGate diffs every artifact and returns the total regression count.
func runGate(baselineDir, currentDir string, files []string, tol float64, w io.Writer) (int, error) {
	total := 0
	gated := 0
	for _, f := range files {
		base, err := loadMetrics(filepath.Join(baselineDir, f))
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(w, "  skip     %s: no committed baseline\n", f)
				continue
			}
			return 0, err
		}
		cur, err := loadMetrics(filepath.Join(currentDir, f))
		if err != nil {
			if os.IsNotExist(err) {
				return 0, fmt.Errorf("%s has a committed baseline but was not produced by this run", f)
			}
			return 0, err
		}
		if len(base) == 0 {
			fmt.Fprintf(w, "  skip     %s: baseline has no gated metrics\n", f)
			continue
		}
		if err := validateMetrics("baseline "+f, base); err != nil {
			return 0, err
		}
		if err := validateMetrics("current "+f, cur); err != nil {
			return 0, err
		}
		gated++
		total += gateFile(f, base, cur, tol, w)
	}
	if gated == 0 {
		return 0, fmt.Errorf("no artifacts gated (checked %v)", files)
	}
	return total, nil
}

// runSelftest proves the gate rejects a synthetic regression: every
// baseline J/tick metric inflated by 12% must trip a >10% gate.
func runSelftest(baselineDir string, files []string, tol float64, w io.Writer) error {
	dir, err := os.MkdirTemp("", "benchgate-selftest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	inflated := 0
	first := ""
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(baselineDir, f))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		var doc any
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		doc = inflate(doc, 1.12)
		out, err := json.Marshal(doc)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, f), out, 0o644); err != nil {
			return err
		}
		if first == "" {
			first = f
		}
		inflated++
	}
	if inflated == 0 {
		return fmt.Errorf("no baselines found under %s", baselineDir)
	}
	fmt.Fprintf(w, "selftest: gating %d artifact(s) with every %s inflated 12%%\n", inflated, strings.Join(gatedSuffixes, "/"))
	regressions, err := runGate(baselineDir, dir, files, tol, w)
	if err != nil {
		return err
	}
	if regressions == 0 {
		return fmt.Errorf("gate accepted a 12%% synthetic regression — it has no teeth")
	}
	fmt.Fprintf(w, "selftest: gate rejected %d inflated metric(s)\n", regressions)

	// Second teeth check: a baseline with zeroed gated rows must error
	// out as malformed rather than silently disabling the comparison.
	zdir, err := os.MkdirTemp("", "benchgate-selftest-zero")
	if err != nil {
		return err
	}
	defer os.RemoveAll(zdir)
	data, err := os.ReadFile(filepath.Join(baselineDir, first))
	if err != nil {
		return err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", first, err)
	}
	out, err := json.Marshal(inflate(doc, 0))
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(zdir, first), out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "selftest: gating %s against a zeroed baseline\n", first)
	if _, err := runGate(zdir, baselineDir, []string{first}, tol, w); err == nil {
		return fmt.Errorf("gate accepted a zeroed baseline for %s — malformed baselines make it vacuous", first)
	} else {
		fmt.Fprintf(w, "selftest: zeroed baseline rejected (%v)\n", err)
	}
	return nil
}

// inflate scales every gated metric in a decoded JSON document toward
// regression: lower-is-better metrics are multiplied by factor,
// higher-is-better metrics divided (both directions must trip the gate's
// teeth; factor 0 zeroes either kind for the malformed-baseline check).
func inflate(v any, factor float64) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			if f, ok := e.(float64); ok && gatedKey(k) {
				if higherBetter(k) {
					if factor == 0 {
						t[k] = 0.0
					} else {
						t[k] = f / factor
					}
				} else {
					t[k] = f * factor
				}
				continue
			}
			t[k] = inflate(e, factor)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = inflate(e, factor)
		}
		return t
	}
	return v
}

// Command paotrload drives admission-controlled load against an
// in-process serving runtime: registration storms, churn floods, and
// sustained mixed-tier load over the wearables fleet. It reports a
// machine-readable JSON summary — admission decision latency, the
// decision census by tier, shed precision, and whether the realized
// p99 tick latency held the gold-tier SLO — to stdout and optionally
// to a file.
//
// Usage:
//
//	paotrload -scenario storm -queries 100000 -ticks 20 -shards 4
//	paotrload -scenario churn -queries 5000 -ticks 100
//	paotrload -scenario sustained -queries 10000 -ticks 200 -check
//
// Scenarios:
//
//   - storm: register every query up front (the thundering herd), then
//     tick. With -drill (default on) the middle wave of registrations
//     runs under a forced overload window, so the report measures shed
//     precision — the fraction of sheds that hit non-gold tiers — under
//     the exact conditions admission exists for.
//   - churn: register a base fleet, then each tick unregister a slice of
//     the oldest queries and register fresh ones, exercising the defer
//     queue and planner patching under continuous arrival/departure.
//   - sustained: register half the fleet up front and trickle the rest
//     in evenly across the run — the steady-state mixed-tier workload.
//
// The -mix flag sets the gold/silver/bronze percentages (default
// "10/30/60"); ids are tenant-prefixed ("t3/q17") so the per-tenant
// token buckets see -tenants distinct budget owners. -check exits
// nonzero when the run shed a gold query, shed precision fell below 1,
// or the gold p99 tick-latency SLO was violated — the CI storm step's
// pass/fail line.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"paotr/internal/admit"
	"paotr/internal/obs"
	"paotr/internal/service"
	"paotr/internal/stream"
)

func main() {
	var (
		scenario = flag.String("scenario", "storm", "load scenario: storm, churn, or sustained")
		queries  = flag.Int("queries", 10000, "total queries to register across the run")
		ticks    = flag.Int("ticks", 20, "ticks to run after (storm) or across (churn, sustained) the registrations")
		shards   = flag.Int("shards", 1, "shard workers for the runtime under load (1 = unsharded)")
		seed     = flag.Uint64("seed", 1, "sensor simulation seed")
		mix      = flag.String("mix", "10/30/60", "gold/silver/bronze tier percentages of the registration mix")
		tenants  = flag.Int("tenants", 50, "distinct tenants (token-bucket budget owners) the ids are spread over")
		rate     = flag.Float64("admit-rate", 1e6, "per-tenant budget refill in planned J/tick (generous by default so the storm measures latency, not budget policy)")
		burst    = flag.Float64("admit-burst", 1e6, "per-tenant budget burst cap in planned J")
		window   = flag.Int("admit-window", 64, "admission controller SLO window in ticks")
		sloGold  = flag.Float64("slo-gold-ms", 0, "gold-tier p99 tick-latency objective in milliseconds (0 = admission default)")
		drill    = flag.Bool("drill", true, "force an overload window over the middle wave of a storm, measuring shed precision")
		check    = flag.Bool("check", false, "exit nonzero when a gold query was shed, shed precision < 1, or the gold p99 SLO was violated")
		report   = flag.String("report", "", "also write the JSON report to this path")
	)
	flag.Parse()
	cfg := loadConfig{
		Scenario: *scenario, Queries: *queries, Ticks: *ticks, Shards: *shards,
		Seed: *seed, Mix: *mix, Tenants: *tenants,
		Rate: *rate, Burst: *burst, Window: *window, SLOGoldMS: *sloGold, Drill: *drill,
	}
	rep, err := runScenario(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrload: %v\n", err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrload: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *report != "" {
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paotrload: %v\n", err)
			os.Exit(2)
		}
	}
	if *check && !rep.Passed() {
		fmt.Fprintf(os.Stderr, "paotrload: check failed: gold sheds=%d shed_precision=%.3f gold_slo_held=%v\n",
			rep.GoldSheds, rep.ShedPrecision, rep.GoldSLOHeld)
		os.Exit(1)
	}
}

// loadConfig parameterizes one scenario run.
type loadConfig struct {
	// Scenario is "storm", "churn" or "sustained"; Queries the total
	// registrations; Ticks the run length in ticks.
	Scenario string
	Queries  int
	Ticks    int
	// Shards builds the sharded runtime when > 1; Seed seeds the
	// wearables simulation.
	Shards int
	Seed   uint64
	// Mix is "gold/silver/bronze" percentages; Tenants the number of
	// distinct budget owners ids are spread over.
	Mix     string
	Tenants int
	// Rate/Burst/Window tune the admission controller (0 = defaults);
	// SLOGoldMS the gold p99 tick-latency objective in milliseconds.
	Rate, Burst float64
	Window      int
	SLOGoldMS   float64
	// Drill forces an overload window over the middle wave of a storm.
	Drill bool
}

// loadReport is the machine-readable outcome of one scenario run.
type loadReport struct {
	Scenario   string `json:"scenario"`
	Queries    int    `json:"queries"`
	Ticks      int    `json:"ticks"`
	Shards     int    `json:"shards"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Registered counts queries resident at the end of the run (admitted
	// and not churned out); Decisions is the tier -> action census.
	Registered int                         `json:"registered"`
	Decisions  map[string]map[string]int64 `json:"decisions"`
	// DecisionP50Ns / DecisionP99Ns are quantiles of the admission
	// decision latency: one RegisterTier round including the quote
	// (wall clock — reported, never gated).
	DecisionP50Ns float64 `json:"decision_p50_ns"`
	DecisionP99Ns float64 `json:"decision_p99_ns"`
	// TickP99Ns is the realized p99 total-tick latency over the whole
	// run; RecentP99Ns the last completed SLO window's p99 — the
	// controller's own overload signal. SLOGoldNs is the gold objective
	// and GoldSLOHeld whether the run held it, judged on the windowed
	// p99 when a window completed (the one-time cold-start tick after a
	// storm ages out of it, exactly as it does for the shedding
	// verdict) and on the whole-run p99 otherwise.
	TickP99Ns   float64 `json:"tick_p99_ns"`
	RecentP99Ns float64 `json:"recent_p99_ns"`
	SLOGoldNs   float64 `json:"slo_gold_ns"`
	GoldSLOHeld bool    `json:"gold_slo_held"`
	// GoldSheds counts gold-tier sheds (must stay 0: shedding exists to
	// protect gold); ShedPrecision the fraction of sheds that hit
	// non-gold tiers (1 when nothing was shed).
	GoldSheds     int64   `json:"gold_sheds"`
	ShedPrecision float64 `json:"shed_precision"`
	// AdmittedQuoteJPerTick is the summed quoted marginal cost the run
	// admitted — deterministic for a seeded corpus.
	AdmittedQuoteJPerTick float64 `json:"admitted_quote_j_per_tick"`
	// DeferredPending is the defer-queue depth at the end of the run;
	// ElapsedNs the wall clock of the whole scenario.
	DeferredPending int   `json:"deferred_pending"`
	ElapsedNs       int64 `json:"elapsed_ns"`
}

// Passed reports the -check verdict: no gold query shed, full shed
// precision, and the gold p99 tick-latency SLO held.
func (r *loadReport) Passed() bool {
	return r.GoldSheds == 0 && r.ShedPrecision >= 1 && r.GoldSLOHeld
}

// templates are the distinct query shapes of the load mix. Twenty
// shapes over the five wearables streams: a registration storm interns
// most arrivals as twins (the cheap quote path) while the distinct
// shapes exercise the joint-planner dry run.
var templates = []string{
	"AVG(heart-rate,5) > 100",
	"AVG(heart-rate,5) > 100 AND spo2 < 95",
	"heart-rate > 110 OR spo2 < 92",
	"AVG(spo2,4) < 93",
	"accelerometer > 15",
	"AVG(accelerometer,6) > 12 AND heart-rate > 90",
	"gps-speed > 1.5",
	"AVG(gps-speed,3) > 1.2 OR accelerometer > 18",
	"temperature > 38",
	"AVG(temperature,6) > 37.5 AND heart-rate > 85",
	"heart-rate > 120",
	"AVG(heart-rate,8) > 95 AND AVG(spo2,4) < 94",
	"spo2 < 90",
	"AVG(accelerometer,4) > 14 OR gps-speed > 2",
	"temperature > 37 AND AVG(heart-rate,5) > 90",
	"AVG(gps-speed,5) > 1 AND accelerometer > 10",
	"heart-rate > 100 OR temperature > 38.5",
	"AVG(spo2,6) < 95 AND temperature > 37.2",
	"gps-speed > 1.8 OR heart-rate > 115",
	"AVG(temperature,4) > 38 OR spo2 < 91",
}

// parseMix parses a "gold/silver/bronze" percentage triple.
func parseMix(s string) ([admit.NumTiers]int, error) {
	var mix [admit.NumTiers]int
	parts := strings.Split(s, "/")
	if len(parts) != int(admit.NumTiers) {
		return mix, fmt.Errorf("mix %q: want gold/silver/bronze percentages", s)
	}
	sum := 0
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return mix, fmt.Errorf("mix %q: bad percentage %q", s, p)
		}
		mix[i] = v
		sum += v
	}
	if sum != 100 {
		return mix, fmt.Errorf("mix %q: percentages sum to %d, want 100", s, sum)
	}
	return mix, nil
}

// tierFor deals tiers deterministically by registration index according
// to the mix percentages.
func tierFor(i int, mix [admit.NumTiers]int) admit.Tier {
	slot := i % 100
	for t, pct := range mix {
		if slot < pct {
			return admit.Tier(t)
		}
		slot -= pct
	}
	return admit.TierBronze
}

// loadRun is one scenario's mutable state: the gate under load and the
// decision-latency histogram.
type loadRun struct {
	gate *service.AdmissionGate
	mix  [admit.NumTiers]int
	lat  obs.Histogram
	next int
}

// registerNext performs the next registration in the deterministic id
// sequence, timing the admission decision. Defer and shed verdicts are
// the scenario's expected weather, not errors.
func (lr *loadRun) registerNext(cfg loadConfig) error {
	i := lr.next
	lr.next++
	id := fmt.Sprintf("t%d/q%d", i%cfg.Tenants, i)
	text := templates[i%len(templates)]
	tier := tierFor(i, lr.mix)
	start := time.Now()
	err := lr.gate.RegisterTier(id, text, tier)
	lr.lat.Observe(time.Since(start))
	if err != nil {
		var adm *service.AdmissionError
		if errors.As(err, &adm) {
			return nil
		}
		return err
	}
	return nil
}

// runScenario builds the gated runtime and drives one scenario.
func runScenario(cfg loadConfig) (*loadReport, error) {
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	if cfg.Queries < 1 || cfg.Ticks < 1 || cfg.Tenants < 1 {
		return nil, fmt.Errorf("queries, ticks and tenants must be positive")
	}
	reg := stream.Wearables(cfg.Seed)
	var rt service.Runtime
	if cfg.Shards > 1 {
		rt = service.NewSharded(reg, cfg.Shards)
	} else {
		rt = service.New(reg)
	}
	ac := admit.DefaultConfig()
	if cfg.Rate > 0 {
		ac.RefillJPerTick = cfg.Rate
	}
	if cfg.Burst > 0 {
		ac.BurstJ = cfg.Burst
	}
	if cfg.Window > 0 {
		ac.WindowTicks = cfg.Window
	}
	if cfg.SLOGoldMS > 0 {
		ac.SLOTickP99[admit.TierGold] = time.Duration(cfg.SLOGoldMS * float64(time.Millisecond))
	}
	lr := &loadRun{gate: service.NewAdmissionGate(rt, admit.NewController(ac)), mix: mix}

	start := time.Now()
	switch cfg.Scenario {
	case "storm":
		err = runStorm(lr, cfg)
	case "churn":
		err = runChurn(lr, cfg)
	case "sustained":
		err = runSustained(lr, cfg)
	default:
		err = fmt.Errorf("unknown scenario %q (want storm, churn, or sustained)", cfg.Scenario)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	m := lr.gate.Metrics()
	a := m.Admission
	lat := lr.lat.Snapshot()
	rep := &loadReport{
		Scenario: cfg.Scenario, Queries: cfg.Queries, Ticks: cfg.Ticks,
		Shards: cfg.Shards, GoMaxProcs: runtime.GOMAXPROCS(0),
		Registered:            m.Queries,
		Decisions:             a.Decisions,
		DecisionP50Ns:         lat.Quantile(0.50),
		DecisionP99Ns:         lat.Quantile(0.99),
		TickP99Ns:             m.TickLatency["total"].Quantile(0.99),
		RecentP99Ns:           a.RecentP99Ns,
		SLOGoldNs:             a.SLOGoldNs,
		GoldSheds:             a.Decisions[admit.TierGold.String()][admit.Shed.String()],
		ShedPrecision:         a.ShedPrecision,
		AdmittedQuoteJPerTick: a.AdmittedQuoteJ,
		DeferredPending:       a.DeferredPending,
		ElapsedNs:             elapsed.Nanoseconds(),
	}
	conformance := rep.RecentP99Ns
	if conformance == 0 {
		conformance = rep.TickP99Ns
	}
	rep.GoldSLOHeld = conformance <= rep.SLOGoldNs
	return rep, nil
}

// runStorm registers everything up front, then ticks. With Drill the
// middle 20% of registrations run under a forced overload window, so
// bronze sheds and silver defers while gold keeps landing — the shed-
// precision measurement.
func runStorm(lr *loadRun, cfg loadConfig) error {
	drillFrom, drillTo := cfg.Queries*2/5, cfg.Queries*3/5
	for i := 0; i < cfg.Queries; i++ {
		if cfg.Drill {
			lr.gate.Controller().SetOverloaded(i >= drillFrom && i < drillTo)
		}
		if err := lr.registerNext(cfg); err != nil {
			return err
		}
	}
	lr.gate.Controller().SetOverloaded(false)
	lr.gate.Run(cfg.Ticks)
	return nil
}

// runChurn registers a base fleet, then each tick unregisters the
// oldest slice and registers fresh queries — continuous arrival and
// departure against the planner's patch path.
func runChurn(lr *loadRun, cfg loadConfig) error {
	base := cfg.Queries / 2
	if base < 1 {
		base = 1
	}
	for i := 0; i < base; i++ {
		if err := lr.registerNext(cfg); err != nil {
			return err
		}
	}
	perTick := (cfg.Queries - base) / cfg.Ticks
	if perTick < 1 {
		perTick = 1
	}
	oldest := 0
	for t := 0; t < cfg.Ticks && lr.next < cfg.Queries; t++ {
		for i := 0; i < perTick && oldest < lr.next; i++ {
			id := fmt.Sprintf("t%d/q%d", oldest%cfg.Tenants, oldest)
			// The oldest id may itself still be parked; Unregister covers
			// both. A miss means it was shed — nothing to remove.
			_ = lr.gate.Unregister(id)
			oldest++
		}
		for i := 0; i < perTick && lr.next < cfg.Queries; i++ {
			if err := lr.registerNext(cfg); err != nil {
				return err
			}
		}
		lr.gate.Tick()
	}
	return nil
}

// runSustained registers half the fleet up front and trickles the rest
// in evenly across the ticks — steady-state mixed-tier load.
func runSustained(lr *loadRun, cfg loadConfig) error {
	base := cfg.Queries / 2
	if base < 1 {
		base = 1
	}
	for i := 0; i < base; i++ {
		if err := lr.registerNext(cfg); err != nil {
			return err
		}
	}
	perTick := (cfg.Queries - base) / cfg.Ticks
	for t := 0; t < cfg.Ticks; t++ {
		for i := 0; i < perTick && lr.next < cfg.Queries; i++ {
			if err := lr.registerNext(cfg); err != nil {
				return err
			}
		}
		lr.gate.Tick()
	}
	return nil
}

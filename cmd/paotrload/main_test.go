package main

import (
	"testing"

	"paotr/internal/admit"
)

// TestStormMixedTierHoldsGoldSLO is the admission acceptance run: a
// 100k-query mixed-tier registration storm against the 4-shard runtime
// (5k under -short), with the overload drill forcing sheds over the
// middle wave. The gold tier must ride through untouched — every gold
// registration admitted, zero gold sheds, full shed precision — and the
// realized p99 tick latency must hold the configured gold SLO.
func TestStormMixedTierHoldsGoldSLO(t *testing.T) {
	queries := 100000
	if testing.Short() {
		queries = 5000
	}
	// Two 8-tick SLO windows: the first absorbs the one-time cold-start
	// tick after the storm lands, the second is the steady state the
	// conformance verdict is judged on.
	rep, err := runScenario(loadConfig{
		Scenario: "storm", Queries: queries, Ticks: 16, Shards: 4,
		Seed: 1, Mix: "10/30/60", Tenants: 50,
		Rate: 1e6, Burst: 1e6, Window: 8,
		// The objective scales to single-core CI hardware: at 100k
		// resident queries a tick fans out 100k verdicts, and before the
		// class-deduplicated sharing-loss pricing and the reused tick
		// merge map this ran seconds per tick — the bound has teeth.
		SLOGoldMS: 2000,
		Drill:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Errorf("storm failed the admission check: gold_sheds=%d shed_precision=%.3f gold_slo_held=%v (tick p99 %.0f ns vs SLO %.0f ns)",
			rep.GoldSheds, rep.ShedPrecision, rep.GoldSLOHeld, rep.TickP99Ns, rep.SLOGoldNs)
	}
	gold := rep.Decisions[admit.TierGold.String()]
	if gold["admit"] != int64(queries/10) || gold["shed"] != 0 || gold["defer"] != 0 {
		t.Errorf("gold census = %+v, want all %d admitted", gold, queries/10)
	}
	if rep.Decisions[admit.TierBronze.String()]["shed"] == 0 {
		t.Error("drill shed no bronze load — the overload window never bit")
	}
	if rep.Decisions[admit.TierSilver.String()]["defer"] == 0 {
		t.Error("drill deferred no silver load")
	}
	if rep.Decisions[admit.TierSilver.String()]["shed"] != 0 {
		t.Errorf("silver was shed, want defer-only under overload: %+v", rep.Decisions)
	}
	if rep.AdmittedQuoteJPerTick <= 0 {
		t.Errorf("admitted quote sum = %v, want > 0", rep.AdmittedQuoteJPerTick)
	}
	if rep.DecisionP99Ns <= 0 {
		t.Error("no admission decision latency measured")
	}
	if rep.Registered == 0 || rep.Registered >= queries {
		t.Errorf("registered = %d of %d, want some admitted and some rejected", rep.Registered, queries)
	}
}

// TestChurnScenario smoke-tests the churn flood: continuous arrival and
// departure must keep the runtime consistent and the defer queue
// bounded.
func TestChurnScenario(t *testing.T) {
	rep, err := runScenario(loadConfig{
		Scenario: "churn", Queries: 400, Ticks: 20, Shards: 1,
		Seed: 3, Mix: "10/30/60", Tenants: 10,
		Rate: 1e6, Burst: 1e6, Window: 16, SLOGoldMS: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Errorf("churn failed: %+v", rep)
	}
	if rep.Registered == 0 {
		t.Error("churn left no queries registered")
	}
}

// TestSustainedScenario smoke-tests the steady-state trickle.
func TestSustainedScenario(t *testing.T) {
	rep, err := runScenario(loadConfig{
		Scenario: "sustained", Queries: 600, Ticks: 30, Shards: 2,
		Seed: 5, Mix: "20/30/50", Tenants: 10,
		Rate: 1e6, Burst: 1e6, Window: 16, SLOGoldMS: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Errorf("sustained failed: %+v", rep)
	}
	if got := rep.Decisions[admit.TierGold.String()]["admit"]; got == 0 {
		t.Error("no gold admissions in sustained run")
	}
}

// TestParseMix pins the tier-mix flag grammar.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("10/30/60")
	if err != nil || mix != [admit.NumTiers]int{10, 30, 60} {
		t.Errorf("parseMix = %v, %v", mix, err)
	}
	for _, bad := range []string{"", "50/50", "10/30/70", "a/b/c", "-10/50/60"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestTierFor pins the deterministic tier deal: the mix percentages
// apply exactly over every window of 100 registrations.
func TestTierFor(t *testing.T) {
	mix := [admit.NumTiers]int{10, 30, 60}
	var counts [admit.NumTiers]int
	for i := 0; i < 1000; i++ {
		counts[tierFor(i, mix)]++
	}
	if counts != [admit.NumTiers]int{100, 300, 600} {
		t.Errorf("tier deal = %v, want 100/300/600", counts)
	}
}

// TestUnknownScenario pins the CLI error path.
func TestUnknownScenario(t *testing.T) {
	if _, err := runScenario(loadConfig{Scenario: "chaos", Queries: 1, Ticks: 1, Tenants: 1, Mix: "10/30/60"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// admitBenchRow is one scenario's admission cost profile.
type admitBenchRow struct {
	Name string `json:"name"`
	// AdmittedQuoteJPerTick is the summed marginal planned energy the
	// run admitted — deterministic for the seeded corpus and gated by
	// benchgate (a drift means the pricing dry run changed).
	AdmittedQuoteJPerTick float64 `json:"admitted_quote_j_per_tick"`
	// DecisionP50Ns / DecisionP99Ns are admission decision latency
	// quantiles (quote + verdict + charge). Wall clock: reported for the
	// perf trajectory, never gated.
	DecisionP50Ns float64 `json:"decision_p50_ns"`
	DecisionP99Ns float64 `json:"decision_p99_ns"`
	// ShedPrecision is the fraction of sheds that hit non-gold tiers
	// (acceptance bound: exactly 1).
	ShedPrecision float64 `json:"shed_precision"`
}

// admitBenchFile is BENCH_admit.json: admission decision latency and
// shed precision over a drilled storm and a steady sustained run.
type admitBenchFile struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	Scenarios  []admitBenchRow `json:"scenarios"`
}

// measureAdmitScenario runs one scenario and distills its admission row,
// carrying the acceptance assertions: sheds never touch gold and every
// run admits a positive deterministic quote sum.
func measureAdmitScenario(t *testing.T, cfg loadConfig) admitBenchRow {
	t.Helper()
	rep, err := runScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoldSheds != 0 || rep.ShedPrecision < 1 {
		t.Errorf("%s: gold_sheds=%d shed_precision=%.3f, want 0 sheds and full precision",
			cfg.Scenario, rep.GoldSheds, rep.ShedPrecision)
	}
	if rep.AdmittedQuoteJPerTick <= 0 {
		t.Errorf("%s: admitted quote sum %v, want > 0 (benchgate rejects non-positive gated metrics)",
			cfg.Scenario, rep.AdmittedQuoteJPerTick)
	}
	return admitBenchRow{
		Name:                  cfg.Scenario,
		AdmittedQuoteJPerTick: rep.AdmittedQuoteJPerTick,
		DecisionP50Ns:         rep.DecisionP50Ns,
		DecisionP99Ns:         rep.DecisionP99Ns,
		ShedPrecision:         rep.ShedPrecision,
	}
}

// TestWriteAdmitBenchJSON emits BENCH_admit.json when
// PAOTR_BENCH_ADMIT_JSON names an output path (the CI admission bench
// artifact, diffed by benchgate against ci/baselines; skipped
// otherwise). The gated metric is the admitted quote sum per scenario —
// the marginal-cost pricing's deterministic output — so a planner or
// pricing change that silently inflates admitted load fails the gate.
func TestWriteAdmitBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_ADMIT_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_ADMIT_JSON=<path> to write the benchmark artifact")
	}
	storm := measureAdmitScenario(t, loadConfig{
		Scenario: "storm", Queries: 2000, Ticks: 10, Shards: 2,
		Seed: 1, Mix: "10/30/60", Tenants: 50,
		Rate: 1e6, Burst: 1e6, Window: 64, SLOGoldMS: 60000, Drill: true,
	})
	sustained := measureAdmitScenario(t, loadConfig{
		Scenario: "sustained", Queries: 1000, Ticks: 20, Shards: 1,
		Seed: 1, Mix: "10/30/60", Tenants: 20,
		Rate: 1e6, Burst: 1e6, Window: 64, SLOGoldMS: 60000,
	})

	file := admitBenchFile{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scenarios:  []admitBenchRow{storm, sustained},
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: storm %.3f J/tick admitted (p50 %.0f ns, p99 %.0f ns), sustained %.3f J/tick admitted",
		out, storm.AdmittedQuoteJPerTick, storm.DecisionP50Ns, storm.DecisionP99Ns,
		sustained.AdmittedQuoteJPerTick)
}

// Command metricslint validates a Prometheus text-exposition (0.0.4)
// payload — legal metric/label names, samples preceded by their # TYPE
// line, no duplicate series, and histogram invariants (monotonic le,
// non-decreasing cumulative buckets, +Inf == _count). CI runs it against
// a live paotrserve's /metrics.prom so a malformed exposition fails the
// build instead of a scrape.
//
// Usage:
//
//	metricslint -url http://localhost:8080/metrics.prom
//	metricslint exposition.prom
//	curl -s host/metrics.prom | metricslint
//
// Exit status 0 when the payload lints (a one-line summary is printed),
// 1 on a violation, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"paotr/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading a file or stdin")
	flag.Parse()
	if *url != "" && flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "metricslint: -url and a file argument are mutually exclusive")
		os.Exit(2)
	}

	var (
		in   io.ReadCloser
		name string
	)
	switch {
	case *url != "":
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(*url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
			os.Exit(2)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "metricslint: GET %s: %s\n", *url, resp.Status)
			os.Exit(2)
		}
		in, name = resp.Body, *url
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
			os.Exit(2)
		}
		in, name = f, flag.Arg(0)
	case flag.NArg() == 0:
		in, name = os.Stdin, "stdin"
	default:
		fmt.Fprintln(os.Stderr, "usage: metricslint [-url URL | FILE]")
		os.Exit(2)
	}
	defer in.Close()

	rep, err := obs.LintProm(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("metricslint: %s: OK (%d families, %d samples)\n", name, rep.Families, rep.Samples)
}

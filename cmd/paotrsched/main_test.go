package main

import (
	"math"
	"strings"
	"testing"

	"paotr/internal/dnf"
	"paotr/internal/gen"
	"paotr/internal/sched"
)

func TestScheduleAlgorithms(t *testing.T) {
	tr := gen.DNF([]int{3, 3}, 2, gen.Dist{}, gen.NewRng(5))
	opt := dnf.OptimalDepthFirst(tr, dnf.SearchOptions{})

	cases := []struct {
		algo    string
		optimal bool
	}{
		{"auto", false},
		{"portfolio", false},
		{"optimal", true},
		{"inc. C/p, dyn", false},
		{"stream", false},
	}
	for _, c := range cases {
		s, how := schedule(tr, c.algo, 0, 2, 1)
		if err := s.Validate(tr); err != nil {
			t.Fatalf("%s: %v", c.algo, err)
		}
		if how == "" {
			t.Errorf("%s: empty description", c.algo)
		}
		cost := sched.Cost(tr, s)
		if cost < opt.Cost-1e-9 {
			t.Errorf("%s: cost %v below optimum %v", c.algo, cost, opt.Cost)
		}
		if c.optimal && math.Abs(cost-opt.Cost) > 1e-9*(1+opt.Cost) {
			t.Errorf("%s: cost %v, want optimum %v", c.algo, cost, opt.Cost)
		}
	}
}

func TestScheduleAutoOnAndTree(t *testing.T) {
	tr := gen.AndTree(6, 2, gen.Dist{}, gen.NewRng(7))
	s, how := schedule(tr, "auto", 0, 1, 1)
	if !strings.Contains(how, "Algorithm 1") {
		t.Errorf("auto on AND-tree should use Algorithm 1, got %q", how)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 is optimal: cross-check with readonce >= it.
	ro, _ := schedule(tr, "readonce", 0, 1, 1)
	if sched.Cost(tr, s) > sched.Cost(tr, ro)+1e-9 {
		t.Error("Algorithm 1 worse than read-once greedy")
	}
}

func TestScheduleHeuristicNameMatching(t *testing.T) {
	tr := gen.DNF([]int{2, 2}, 2, gen.Dist{}, gen.NewRng(9))
	for _, frag := range []string{"random", "dec. q", "inc. C, stat", "dec. p"} {
		s, how := schedule(tr, frag, 0, 1, 1)
		if err := s.Validate(tr); err != nil {
			t.Fatalf("%q: %v", frag, err)
		}
		if !strings.Contains(strings.ToLower(how), strings.ToLower(frag)) {
			t.Errorf("%q matched %q", frag, how)
		}
	}
}

// Command paotrsched schedules a PAOTR instance: it reads a JSON query
// tree (as produced by paotrgen), builds a leaf evaluation order with the
// requested algorithm, and prints the schedule and its exact expected cost.
//
// Usage:
//
//	paotrsched -algo auto tree.json
//	paotrsched -algo optimal -max-nodes 5000000 tree.json
//	paotrsched -all tree.json        # compare all heuristics
//
// Algorithms: auto (Algorithm 1 for AND-trees, best heuristic for DNF),
// readonce, portfolio, optimal, or any heuristic name fragment such as
// "inc. C/p, dyn" or "stream".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paotr/internal/andtree"
	"paotr/internal/dnf"
	"paotr/internal/gen"
	"paotr/internal/query"
	"paotr/internal/sched"
)

func main() {
	var (
		algo     = flag.String("algo", "auto", "scheduling algorithm (see doc)")
		all      = flag.Bool("all", false, "evaluate every heuristic and print a comparison")
		maxNodes = flag.Int64("max-nodes", 0, "node cap for -algo optimal (0 = unlimited)")
		workers  = flag.Int("workers", 1, "parallel search workers for -algo optimal")
		seed     = flag.Uint64("seed", 1, "seed for randomized heuristics")
		dot      = flag.Bool("dot", false, "print the tree in Graphviz DOT format and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paotrsched [flags] tree.json")
		os.Exit(2)
	}
	tree, err := query.LoadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrsched: %v\n", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(tree.Dot())
		return
	}
	fmt.Printf("query: %v\n", tree)
	fmt.Printf("leaves=%d ands=%d streams=%d rho=%.2f read-once=%v\n\n",
		tree.NumLeaves(), tree.NumAnds(), tree.NumStreams(),
		tree.SharingRatio(), tree.IsReadOnce())

	if *all {
		rng := gen.NewRng(*seed)
		fmt.Printf("%-28s %12s\n", "heuristic", "cost")
		for _, h := range dnf.Heuristics() {
			s := h.Schedule(tree, rng)
			fmt.Printf("%-28s %12.4f\n", h.Name, sched.Cost(tree, s))
		}
		if tree.IsAndTree() {
			fmt.Printf("%-28s %12.4f\n", "Algorithm 1 (optimal)",
				sched.Cost(tree, andtree.Greedy(tree)))
		}
		return
	}

	s, how := schedule(tree, *algo, *maxNodes, *workers, *seed)
	fmt.Printf("algorithm: %s\n", how)
	fmt.Printf("schedule:  %v\n", s.Names(tree))
	fmt.Printf("expected cost: %.6f\n", sched.Cost(tree, s))
}

func schedule(tree *query.Tree, algo string, maxNodes int64, workers int, seed uint64) (sched.Schedule, string) {
	switch algo {
	case "auto":
		if tree.IsAndTree() {
			return andtree.Greedy(tree), "Algorithm 1 (optimal for AND-trees)"
		}
		s, _ := dnf.BestHeuristicSchedule(tree)
		return s, "best heuristic (portfolio)"
	case "readonce":
		if !tree.IsAndTree() {
			fmt.Fprintln(os.Stderr, "paotrsched: readonce requires an AND-tree")
			os.Exit(1)
		}
		return andtree.ReadOnceGreedy(tree), "read-once greedy (d*c/q)"
	case "portfolio":
		s, _ := dnf.BestHeuristicSchedule(tree)
		return s, "best heuristic (portfolio)"
	case "optimal":
		res := dnf.OptimalDepthFirstParallel(tree, dnf.SearchOptions{MaxNodes: maxNodes}, workers)
		how := fmt.Sprintf("exhaustive depth-first B&B (exact=%v, nodes=%d, workers=%d)",
			res.Exact, res.Nodes, workers)
		return res.Schedule, how
	}
	needle := strings.ToLower(algo)
	for _, h := range dnf.Heuristics() {
		if strings.Contains(strings.ToLower(h.Name), needle) {
			return h.Schedule(tree, gen.NewRng(seed)), h.Name
		}
	}
	fmt.Fprintf(os.Stderr, "paotrsched: unknown algorithm %q\n", algo)
	os.Exit(2)
	return nil, ""
}

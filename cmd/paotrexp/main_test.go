package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScale(t *testing.T) {
	cases := []struct {
		override       int
		full           bool
		paperN, quickN int
		want           int
	}{
		{0, false, 1000, 50, 50},
		{0, true, 1000, 50, 1000},
		{7, false, 1000, 50, 7},
		{7, true, 1000, 50, 7},
	}
	for _, c := range cases {
		if got := scale(c.override, c.full, c.paperN, c.quickN); got != c.want {
			t.Errorf("scale(%d, %v) = %d, want %d", c.override, c.full, got, c.want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	writeCSV(path, "a,b\n1,2\n")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b") {
		t.Errorf("content %q", data)
	}
	// Empty path is a no-op.
	writeCSV("", "ignored")
}

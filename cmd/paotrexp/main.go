// Command paotrexp reproduces the paper's evaluation: Figure 4 (AND-tree
// algorithms), Figure 5 (DNF heuristics vs the exhaustive optimum),
// Figure 6 (DNF heuristics vs the best heuristic), the Section II worked
// examples, the non-linear strategy study (Section V) and the design
// ablations.
//
// Usage:
//
//	paotrexp -exp fig4                 # scaled-down run (fast)
//	paotrexp -exp fig4 -full           # paper scale (157,000 instances)
//	paotrexp -exp fig5 -csv fig5.csv   # write the plotted series as CSV
//	paotrexp -exp all                  # everything, scaled down
//
// Every run prints measured statistics next to the values quoted in the
// paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"paotr/internal/dnf"
	"paotr/internal/experiments"
	"paotr/internal/gen"
	"paotr/internal/stats"
	"paotr/internal/strategy"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4 | fig5 | fig6 | examples | nonlinear | ablation | timing | rho | all")
		full     = flag.Bool("full", false, "run at paper scale (slow: hours for fig5)")
		inst     = flag.Int("instances", 0, "override instances per configuration")
		seed     = flag.Uint64("seed", 1, "experiment master seed")
		maxNodes = flag.Int64("max-nodes", 1_000_000, "per-instance search node cap for fig5/ablation (0 = unlimited)")
		csvPath  = flag.String("csv", "", "also write the figure's data series as CSV")
		points   = flag.Int("points", 100, "points per profile curve in CSV output")
		plot     = flag.Bool("plot", false, "render figures as ASCII charts")
	)
	flag.Parse()

	run := func(name string, f func()) {
		switch *exp {
		case name, "all":
			start := time.Now()
			f()
			fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	known := map[string]bool{"fig4": true, "fig5": true, "fig6": true, "examples": true,
		"nonlinear": true, "ablation": true, "timing": true, "rho": true, "all": true}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "paotrexp: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	run("examples", func() { fmt.Println(experiments.Section2Report()) })

	run("fig4", func() {
		n := scale(*inst, *full, 1000, 50)
		res := experiments.Fig4(experiments.Fig4Options{
			InstancesPerConfig: n, Seed: *seed, KeepSeries: *csvPath != "",
		})
		fmt.Print(res.Report())
		writeCSV(*csvPath, res.CSV())
	})

	run("fig5", func() {
		n := scale(*inst, *full, 100, 2)
		cap := *maxNodes
		if *full {
			cap = 0
		}
		res := experiments.Fig5(experiments.DNFOptions{
			InstancesPerConfig: n, Seed: *seed, MaxNodes: cap,
		})
		fmt.Print(res.Report())
		if *plot {
			fmt.Println(stats.AsciiPlot(res.Names, res.Profiles, 72, 16, 10))
		}
		writeCSV(*csvPath, res.CSV(*points))
	})

	run("fig6", func() {
		n := scale(*inst, *full, 100, 5)
		res := experiments.Fig6(experiments.DNFOptions{
			InstancesPerConfig: n, Seed: *seed,
		})
		fmt.Print(res.Report())
		if *plot {
			fmt.Println(stats.AsciiPlot(res.Names, res.Profiles, 72, 16, 10))
		}
		writeCSV(*csvPath, res.CSV(*points))
	})

	run("ablation", func() {
		n := scale(*inst, *full, 100, 2)
		res := experiments.Ablation(experiments.AblationOptions{
			InstancesPerConfig: n, Seed: *seed, MaxNodes: *maxNodes,
		})
		fmt.Print(res.Report())
	})

	run("rho", func() {
		n := scale(*inst, *full, 200, 30)
		res := experiments.RhoSensitivity(experiments.RhoOptions{
			InstancesPerConfig: n, Seed: *seed,
		})
		fmt.Print(res.Report())
	})

	run("nonlinear", func() {
		tr := strategy.CounterExample()
		g := strategy.Analyze(tr)
		fmt.Println("Section V — non-linear (decision-tree) strategies in the shared model")
		fmt.Printf("counter-example tree: %v\n", tr)
		fmt.Printf("optimal schedule (linear) cost:     %.6f\n", g.Linear)
		fmt.Printf("optimal non-linear strategy cost:   %.6f\n", g.NonLinear)
		fmt.Printf("gap: %.4f%% — linear strategies are NOT dominant with shared streams\n",
			100*(g.Ratio()-1))
	})

	run("timing", func() {
		sizes := make([]int, 10)
		for i := range sizes {
			sizes[i] = 20
		}
		tr := gen.DNF(sizes, 2, gen.Dist{}, gen.NewRng(*seed))
		start := time.Now()
		s := dnf.AndOrderedIncCOverPDynamic(tr, nil)
		elapsed := time.Since(start)
		fmt.Println("Section IV-D timing claim — best heuristic on N=10 ANDs x 20 leaves")
		fmt.Printf("scheduled %d leaves in %v (paper: < 5 s on a 1.86 GHz core)\n",
			len(s), elapsed)
	})
}

func scale(override int, full bool, paperN, quickN int) int {
	if override > 0 {
		return override
	}
	if full {
		return paperN
	}
	return quickN
}

func writeCSV(path, data string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paotrexp: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("(series written to %s)\n", path)
}

// Command paotrsim runs the end-to-end query engine on simulated sensor
// streams: it compiles a textual query, plans schedules adaptively from
// trace-estimated probabilities, executes in the pull model over a span of
// time steps, and reports the energy spent against naive baselines.
//
// Usage:
//
//	paotrsim -steps 500 "AVG(heart-rate,5) > 100 AND accelerometer < 12"
//	paotrsim -steps 200 -seed 7 "spo2 < 92 OR (heart-rate > 120 AND gps-speed < 0.5)"
//
// Available streams: heart-rate, spo2, accelerometer, gps-speed,
// temperature (BLE cost model; accelerometer uses WiFi).
package main

import (
	"flag"
	"fmt"
	"os"

	"paotr/internal/engine"
	"paotr/internal/query"
	"paotr/internal/stream"
)

func main() {
	var (
		steps = flag.Int("steps", 200, "time steps to simulate")
		seed  = flag.Uint64("seed", 1, "sensor simulation seed")
		quiet = flag.Bool("quiet", false, "suppress per-step output")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: paotrsim [flags] "QUERY"`)
		os.Exit(2)
	}

	reg := stream.Wearables(*seed)
	eng := engine.New(reg)
	q, err := eng.Compile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("query: %s\n", q.Text)
	fmt.Printf("DNF:   %v\n\n", q.Tree())

	cache, err := q.NewCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrsim: %v\n", err)
		os.Exit(1)
	}
	results, err := q.Run(cache, *steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paotrsim: %v\n", err)
		os.Exit(1)
	}

	trues, evaluated := 0, 0
	for i, r := range results {
		if r.Value {
			trues++
		}
		evaluated += r.Evaluated
		if !*quiet && (i < 5 || (i+1)%50 == 0) {
			fmt.Printf("step %4d: value=%-5v cost=%7.3f J  expected=%7.3f J  evaluated=%d/%d\n",
				i+1, r.Value, r.Cost, r.ExpectedCost, r.Evaluated, len(r.Schedule))
		}
	}

	// Naive baseline: a push model acquires every window every step.
	naive := naiveCost(q.Tree(), reg) * float64(*steps)

	fmt.Printf("\n--- summary over %d steps ---\n", *steps)
	fmt.Printf("query TRUE on %d steps (%.1f%%)\n", trues, 100*float64(trues)/float64(*steps))
	fmt.Printf("predicates evaluated: %d (%.2f per step, of %d leaves)\n",
		evaluated, float64(evaluated)/float64(*steps), q.Tree().NumLeaves())
	fmt.Printf("energy spent (adaptive pull): %9.3f J\n", cache.Spent())
	fmt.Printf("energy naive push baseline:   %9.3f J\n", naive)
	if naive > 0 {
		fmt.Printf("savings: %.1f%%\n", 100*(1-cache.Spent()/naive))
	}
	fmt.Println("\nlearned probabilities:")
	for _, p := range eng.Traces().Predicates() {
		est, n := eng.Traces().Estimate(p)
		fmt.Printf("  %-36s p=%.3f (%d evaluations)\n", p, est, n)
	}
}

// naiveCost is the per-step cost of acquiring every stream's maximum
// window with no short-circuiting and no reuse across steps beyond the
// one-step overlap (a fresh item per step per stream plus cold start
// amortized away: we charge the incremental item per stream, the
// best-case push model).
func naiveCost(t *query.Tree, reg *stream.Registry) float64 {
	total := 0.0
	for k, d := range t.StreamMaxItems() {
		if d > 0 {
			// Push model: every step, the device receives the new item of
			// each stream it subscribes to.
			total += reg.At(k).Cost.PerItem()
		}
	}
	return total
}

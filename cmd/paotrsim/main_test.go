package main

import (
	"testing"

	"paotr/internal/engine"
	"paotr/internal/stream"
)

func TestWearablesRegistry(t *testing.T) {
	reg := stream.Wearables(1)
	if reg.Len() != 5 {
		t.Fatalf("registry has %d streams, want 5", reg.Len())
	}
	for _, name := range []string{"heart-rate", "spo2", "accelerometer", "gps-speed", "temperature"} {
		if _, ok := reg.ByName(name); !ok {
			t.Errorf("stream %q missing", name)
		}
	}
}

func TestNaiveCostCoversQueryStreams(t *testing.T) {
	reg := stream.Wearables(1)
	eng := engine.New(reg)
	q, err := eng.Compile("AVG(heart-rate,5) > 100 AND accelerometer < 12")
	if err != nil {
		t.Fatal(err)
	}
	naive := naiveCost(q.Tree(), reg)
	hr, _ := reg.ByName("heart-rate")
	acc, _ := reg.ByName("accelerometer")
	want := hr.Cost.PerItem() + acc.Cost.PerItem()
	if naive != want {
		t.Errorf("naiveCost = %v, want one item per subscribed stream = %v", naive, want)
	}
}

// TestSimulationBeatsNaive runs the simulator's core loop for a short
// span: the adaptive pull engine must never spend more than the naive
// push baseline on a short-circuiting query.
func TestSimulationBeatsNaive(t *testing.T) {
	reg := stream.Wearables(7)
	eng := engine.New(reg)
	q, err := eng.Compile("spo2 < 92 OR (heart-rate > 120 AND gps-speed < 0.5)")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	const steps = 100
	results, err := q.Run(cache, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != steps {
		t.Fatalf("%d results, want %d", len(results), steps)
	}
	naive := naiveCost(q.Tree(), reg) * steps
	if cache.Spent() > naive {
		t.Errorf("adaptive pull spent %.3f, naive push %.3f", cache.Spent(), naive)
	}
}

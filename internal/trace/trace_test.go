package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEstimatePrior(t *testing.T) {
	s := NewStore()
	p, n := s.Estimate("A < 3")
	if p != 0.5 || n != 0 {
		t.Errorf("prior estimate = %v, %d", p, n)
	}
}

func TestEstimateConverges(t *testing.T) {
	s := NewStore()
	for i := 0; i < 700; i++ {
		s.Record("A < 3", true)
	}
	for i := 0; i < 300; i++ {
		s.Record("A < 3", false)
	}
	p, n := s.Estimate("A < 3")
	if n != 1000 {
		t.Errorf("n = %d", n)
	}
	if math.Abs(p-0.7) > 0.01 {
		t.Errorf("estimate = %v, want ~0.7", p)
	}
	// Smoothing keeps estimates strictly inside (0,1).
	s2 := NewStore()
	s2.Record("B > 0", true)
	p2, _ := s2.Estimate("B > 0")
	if p2 <= 0.5 || p2 >= 1 {
		t.Errorf("one success estimate = %v, want in (0.5, 1)", p2)
	}
}

func TestStatsFor(t *testing.T) {
	s := NewStore()
	s.Record("x", true)
	s.Record("x", false)
	s.Record("x", true)
	st := s.StatsFor("x")
	if st.Evals != 3 || st.Successes != 2 {
		t.Errorf("stats = %+v", st)
	}
	if s.StatsFor("y") != (Stats{}) {
		t.Error("unknown predicate should have zero stats")
	}
}

func TestPredicatesSorted(t *testing.T) {
	s := NewStore()
	s.Record("b", true)
	s.Record("a", false)
	s.Record("c", true)
	got := s.Predicates()
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("Predicates = %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Record("A < 3", true)
	s.Record("A < 3", false)
	s.Record("B > 9", true)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.StatsFor("A < 3") != (Stats{Evals: 2, Successes: 1}) {
		t.Errorf("loaded stats = %+v", s2.StatsFor("A < 3"))
	}
	p1, _ := s.Estimate("B > 9")
	p2, _ := s2.Estimate("B > 9")
	if p1 != p2 {
		t.Error("estimates differ after round trip")
	}
}

func TestLoadRejectsInconsistent(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader(`{"x": {"evals": 1, "successes": 5}}`)); err == nil {
		t.Error("successes > evals accepted")
	}
	if err := s.Load(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := s.Load(strings.NewReader(`null`)); err != nil {
		t.Errorf("null store should load as empty: %v", err)
	}
	if s.Len() != 0 {
		t.Error("null load should clear")
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := NewStore()
	s.Record("q", true)
	path := filepath.Join(t.TempDir(), "traces.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.StatsFor("q").Evals != 1 {
		t.Error("file round trip lost data")
	}
	if err := s2.LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestConcurrentRecord(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Record("hot", w%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	if st := s.StatsFor("hot"); st.Evals != 8000 || st.Successes != 4000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCapEvictsLeastRecentlyRecorded(t *testing.T) {
	s := NewStore()
	s.SetCap(3)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Record(string(rune('a'+i)), true)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d after cap-3 churn, want 3", s.Len())
	}
	if s.Evictions() != 2 {
		t.Errorf("Evictions = %d, want 2", s.Evictions())
	}
	// The two oldest predicates ("a", "b") are gone; the rest survive.
	if got := s.Predicates(); len(got) != 3 || got[0] != "c" || got[2] != "e" {
		t.Errorf("surviving predicates = %v, want [c d e]", got)
	}
	// Recording an evicted predicate starts it fresh.
	if st := s.StatsFor("a"); st.Evals != 0 {
		t.Errorf("evicted predicate kept stats: %+v", st)
	}
	// Shrinking the cap evicts immediately.
	s.SetCap(1)
	if s.Len() != 1 || s.Evictions() != 4 {
		t.Errorf("after SetCap(1): Len=%d Evictions=%d, want 1 and 4", s.Len(), s.Evictions())
	}
	// Cap 0 removes the bound.
	s.SetCap(0)
	for i := 0; i < 10; i++ {
		s.Record(string(rune('p'+i)), false)
	}
	if s.Len() != 11 {
		t.Errorf("uncapped Len = %d, want 11", s.Len())
	}
}

// Package trace records historical predicate evaluation outcomes and
// estimates leaf success probabilities from them. The paper assumes leaf
// probabilities are "inferred based on historical traces obtained for
// previous query executions" (Section I); this package is that substrate:
// the engine feeds every actual evaluation back into the store, and the
// planner reads smoothed estimates out of it, so schedules adapt as the
// observed stream behaviour drifts.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Stats summarizes the recorded history of one predicate.
type Stats struct {
	// Evals is the number of recorded evaluations.
	Evals int `json:"evals"`
	// Successes is how many evaluated TRUE.
	Successes int `json:"successes"`
}

// Store accumulates evaluation outcomes keyed by predicate text. It is
// safe for concurrent use; reads (Estimate, StatsFor) take a shared lock
// so many concurrent planners can consult the store without contending.
type Store struct {
	mu     sync.RWMutex
	counts map[string]*Stats
	// PriorProb is the estimate returned for predicates with no history
	// (default 0.5).
	PriorProb float64
	// PriorWeight is the strength of the prior in pseudo-counts for
	// Laplace-style smoothing (default 2: one success, one failure).
	PriorWeight float64
}

// NewStore creates an empty store with the default uniform prior.
func NewStore() *Store {
	return &Store{counts: map[string]*Stats{}, PriorProb: 0.5, PriorWeight: 2}
}

// Record adds one evaluation outcome for the predicate.
func (s *Store) Record(pred string, success bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.counts[pred]
	if st == nil {
		st = &Stats{}
		s.counts[pred] = st
	}
	st.Evals++
	if success {
		st.Successes++
	}
}

// Estimate returns the smoothed success probability of the predicate and
// the number of observations backing it:
//
//	p = (successes + PriorWeight*PriorProb) / (evals + PriorWeight)
func (s *Store) Estimate(pred string) (p float64, n int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.counts[pred]
	if st == nil {
		return s.PriorProb, 0
	}
	return (float64(st.Successes) + s.PriorWeight*s.PriorProb) /
		(float64(st.Evals) + s.PriorWeight), st.Evals
}

// StatsFor returns the raw counts for a predicate.
func (s *Store) StatsFor(pred string) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st := s.counts[pred]; st != nil {
		return *st
	}
	return Stats{}
}

// Predicates lists the recorded predicate texts, sorted.
func (s *Store) Predicates() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct predicates recorded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.counts)
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.counts)
}

// Load reads counts previously written by Save, replacing the current
// contents.
func (s *Store) Load(r io.Reader) error {
	var counts map[string]*Stats
	if err := json.NewDecoder(r).Decode(&counts); err != nil {
		return fmt.Errorf("trace: decoding store: %w", err)
	}
	for k, st := range counts {
		if st == nil || st.Evals < 0 || st.Successes < 0 || st.Successes > st.Evals {
			return fmt.Errorf("trace: inconsistent counts for %q", k)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts = counts
	if s.counts == nil {
		s.counts = map[string]*Stats{}
	}
	return nil
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a store from a file.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

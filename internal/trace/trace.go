// Package trace records historical predicate evaluation outcomes and
// estimates leaf success probabilities from them. The paper assumes leaf
// probabilities are "inferred based on historical traces obtained for
// previous query executions" (Section I); this package is that substrate:
// the engine feeds every actual evaluation back into the store, and the
// planner reads smoothed estimates out of it, so schedules adapt as the
// observed stream behaviour drifts.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Estimator is a pluggable success-probability estimator over predicate
// evaluation outcomes. The engine records every realized outcome into its
// estimator and reads planning estimates back out. Store is the
// cumulative (never-forgetting) implementation; adapt.Windowed is the
// sliding-window one that tracks non-stationary streams.
type Estimator interface {
	// Record adds one evaluation outcome for the predicate.
	Record(pred string, success bool)
	// Estimate returns the estimated success probability and the number
	// of observations backing it.
	Estimate(pred string) (p float64, n int)
}

var _ Estimator = (*Store)(nil)

// Stats summarizes the recorded history of one predicate.
type Stats struct {
	// Evals is the number of recorded evaluations.
	Evals int `json:"evals"`
	// Successes is how many evaluated TRUE.
	Successes int `json:"successes"`
}

// Store accumulates evaluation outcomes keyed by predicate text. It is
// safe for concurrent use; reads (Estimate, StatsFor) take a shared lock
// so many concurrent planners can consult the store without contending.
type Store struct {
	mu     sync.RWMutex
	counts map[string]*Stats
	// stamps holds a recency stamp per predicate (for capped eviction).
	stamps map[string]int64
	clock  int64
	// cap bounds the number of distinct predicates retained (0 =
	// unlimited); evictions counts predicates dropped to honour it.
	cap       int
	evictions int64
	// evictHook, when set, observes each eviction batch (see
	// SetEvictionHook).
	evictHook func(evicted int)
	// PriorProb is the estimate returned for predicates with no history
	// (default 0.5).
	PriorProb float64
	// PriorWeight is the strength of the prior in pseudo-counts for
	// Laplace-style smoothing (default 2: one success, one failure).
	PriorWeight float64
}

// NewStore creates an empty store with the default uniform prior.
func NewStore() *Store {
	return &Store{counts: map[string]*Stats{}, stamps: map[string]int64{}, PriorProb: 0.5, PriorWeight: 2}
}

// SetCap bounds the number of distinct predicates the store retains
// (0 removes the bound). When a Record pushes the store past the cap, the
// least-recently-recorded predicates are evicted — under churning tenant
// registration the per-predicate history otherwise grows forever.
func (s *Store) SetCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cap = n
	s.evictLocked()
}

// Cap returns the predicate-count bound (0 = unlimited).
func (s *Store) Cap() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cap
}

// Evictions returns how many predicates have been evicted to honour the
// cap.
func (s *Store) Evictions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evictions
}

// SetEvictionHook installs an observer of cap-driven evictions: each
// eviction batch reports how many predicates were dropped. The hook is
// called with the store's lock held and must not call back into the
// store; a service journals the events (see internal/obs).
func (s *Store) SetEvictionHook(fn func(evicted int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictHook = fn
}

// OldestKeys returns the least-recently-stamped keys to evict so that a
// map of len(stamps) entries honours the cap, over-evicting by ~1/16 of
// the cap so the scan amortizes over many insertions instead of running
// once per new key at the bound. It returns nil while the cap is
// honoured. The windowed estimator (internal/adapt) shares this policy
// for its own per-predicate state.
func OldestKeys(stamps map[string]int64, cap int) []string {
	if cap <= 0 || len(stamps) <= cap {
		return nil
	}
	type aged struct {
		key   string
		stamp int64
	}
	all := make([]aged, 0, len(stamps))
	for key, stamp := range stamps {
		all = append(all, aged{key, stamp})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stamp < all[j].stamp })
	drop := len(stamps) - cap + cap/16
	if drop > len(all) {
		drop = len(all)
	}
	out := make([]string, drop)
	for i, a := range all[:drop] {
		out[i] = a.key
	}
	return out
}

// evictLocked drops least-recently-recorded predicates until the cap is
// honoured (see OldestKeys). Caller holds mu exclusively.
func (s *Store) evictLocked() {
	dropped := 0
	for _, pred := range OldestKeys(s.stamps, s.cap) {
		delete(s.counts, pred)
		delete(s.stamps, pred)
		s.evictions++
		dropped++
	}
	if dropped > 0 && s.evictHook != nil {
		s.evictHook(dropped)
	}
}

// Record adds one evaluation outcome for the predicate.
func (s *Store) Record(pred string, success bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.counts[pred]
	if st == nil {
		st = &Stats{}
		s.counts[pred] = st
	}
	st.Evals++
	if success {
		st.Successes++
	}
	s.clock++
	s.stamps[pred] = s.clock
	s.evictLocked()
}

// Estimate returns the smoothed success probability of the predicate and
// the number of observations backing it:
//
//	p = (successes + PriorWeight*PriorProb) / (evals + PriorWeight)
func (s *Store) Estimate(pred string) (p float64, n int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.counts[pred]
	if st == nil {
		return s.PriorProb, 0
	}
	return (float64(st.Successes) + s.PriorWeight*s.PriorProb) /
		(float64(st.Evals) + s.PriorWeight), st.Evals
}

// StatsFor returns the raw counts for a predicate.
func (s *Store) StatsFor(pred string) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st := s.counts[pred]; st != nil {
		return *st
	}
	return Stats{}
}

// Predicates lists the recorded predicate texts, sorted.
func (s *Store) Predicates() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct predicates recorded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.counts)
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.counts)
}

// Load reads counts previously written by Save, replacing the current
// contents.
func (s *Store) Load(r io.Reader) error {
	var counts map[string]*Stats
	if err := json.NewDecoder(r).Decode(&counts); err != nil {
		return fmt.Errorf("trace: decoding store: %w", err)
	}
	for k, st := range counts {
		if st == nil || st.Evals < 0 || st.Successes < 0 || st.Successes > st.Evals {
			return fmt.Errorf("trace: inconsistent counts for %q", k)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts = counts
	if s.counts == nil {
		s.counts = map[string]*Stats{}
	}
	s.stamps = make(map[string]int64, len(s.counts))
	for k := range s.counts {
		s.clock++
		s.stamps[k] = s.clock
	}
	s.evictLocked()
	return nil
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a store from a file.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

// Package shard places a fleet of continuous queries onto N shard
// workers by stream affinity — the fleet-level analogue of the paper's
// AND-ordered C/p heuristic applied to query placement instead of leaf
// ordering.
//
// The paper's whole premium comes from sharing: an item acquired for one
// leaf is free for every other leaf of any query (Proposition 2), and
// the joint planner of internal/fleet exploits that inside one tick
// loop. Scaling the service horizontally splits the fleet across shard
// workers that each own a private acquisition cache, so an item two
// shards both need is paid twice — naive sharding destroys exactly the
// sharing the paper monetizes. Placement therefore becomes a
// shared-aware optimization problem: co-locate the queries whose
// schedules probably pull the same items, while keeping the per-shard
// expected load balanced so the slowest shard does not dominate tick
// latency.
//
// The partitioner is a greedy LPT (longest processing time first) over
// the query–stream bipartite graph. Each query is profiled into a
// per-stream weight vector — the summed Proposition 2 acquisition
// probabilities of its independent schedule, priced per item — and an
// expected-cost load. Queries are placed heaviest-first onto the shard
// maximizing stream-weight overlap minus a load-balance penalty (both
// in expected-cost units); ties fall to the least-loaded shard, so a
// no-overlap fleet degenerates to plain LPT load balancing.
//
// SharingLoss quantifies what a placement gives up: the sum of the
// per-shard joint plan costs (each shard plans only over its own
// queries) against the K=1 joint cost of planning the whole fleet as
// one workload. At K=1 the two coincide exactly.
package shard

import (
	"math"
	"sort"

	"paotr/internal/andtree"
	"paotr/internal/dnf"
	"paotr/internal/fleet"
	"paotr/internal/query"
	"paotr/internal/sched"
)

// Query is one fleet member as the partitioner sees it: its identity,
// its probability-annotated tree (probabilities and per-item costs from
// the owning shard's learned estimators), and the profile derived from
// them.
type Query struct {
	// ID is the service-level query id.
	ID string
	// Tree is the probability-annotated DNF tree. All trees handed to
	// one Partition call must index the same registry stream space.
	Tree *query.Tree
	// Load is the expected acquisition cost of the query's independent
	// plan against a cold cache — the balance currency of LPT.
	Load float64
	// Weights[k] is the expected acquisition spend of the query on
	// stream k: the Proposition 2 probability that its schedule
	// acquires each item, times the per-item cost, summed over the
	// stream's items. Two queries with overlapping weight mass share
	// items when co-located.
	Weights []float64
}

// independentOrder plans one query in isolation, exactly as the engine's
// default warm planner does (here against a cold cache: placement is a
// structural decision, not a per-tick one).
func independentOrder(t *query.Tree) sched.Schedule {
	if t.IsAndTree() {
		return andtree.Greedy(t)
	}
	return dnf.AndOrderedIncCOverPDynamic(t, nil)
}

// Profile computes a query's placement profile: its independent-plan
// expected cost and its per-stream Proposition 2 acquisition weights.
func Profile(id string, t *query.Tree) Query {
	q := Query{ID: id, Tree: t, Weights: make([]float64, t.NumStreams())}
	px := sched.NewPrefix(t)
	for _, j := range independentOrder(t) {
		px.AppendVisit(j, func(k query.StreamID, d int, pr float64) {
			q.Weights[k] += pr * t.Streams[k].Cost
		})
	}
	q.Load = px.Cost()
	return q
}

// Config tunes the partitioner.
type Config struct {
	// Shards is the number of shard workers (minimum 1).
	Shards int
	// Balance weighs the load-balance penalty against stream-affinity
	// overlap. Both are in expected-cost units: a query joins a shard
	// when the spend it would share there exceeds Balance times the
	// overload it would cause beyond the mean shard load. Higher values
	// flatten load at the price of sharing; <= 0 defaults to 1.
	Balance float64
	// RelayFrac is the fleet relay's per-item transfer cost as a fraction
	// of acquisition cost (0 = no relay, clamped to [0, 1]). With a relay,
	// an item a query needs from a *different* shard is no longer
	// re-acquired at full price but transferred at RelayFrac of it, so the
	// marginal value of co-locating overlapping queries shrinks to
	// (1 - RelayFrac) of their shared spend — the transfer-cost term of
	// the placement objective. At RelayFrac = 1 transfers cost as much as
	// acquisitions and placement degenerates to pure load balancing.
	RelayFrac float64
}

func (c Config) norm() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Balance <= 0 {
		c.Balance = 1
	}
	if c.RelayFrac < 0 {
		c.RelayFrac = 0
	}
	if c.RelayFrac > 1 {
		c.RelayFrac = 1
	}
	return c
}

// Assignment is a placement of queries onto shards.
type Assignment struct {
	// Shard maps query id -> shard index in [0, Shards).
	Shard map[string]int
	// Loads is the summed expected load per shard.
	Loads []float64
}

// affinity is the stream-weight overlap between a query and a shard's
// accumulated weight mass: sum over streams of min(query weight, shard
// weight). It grows with the expected spend the two would share.
func affinity(q Query, shardW []float64) float64 {
	a := 0.0
	for k, w := range q.Weights {
		if w <= 0 {
			continue
		}
		if sw := shardW[k]; sw < w {
			a += sw
		} else {
			a += w
		}
	}
	return a
}

// place picks the shard for one query given the current per-shard
// state, maximizing affinity minus the weighted overload the placement
// would cause beyond the mean shard load. Affinity and overload are
// both expected-cost quantities, so a query co-locates with its
// overlapping siblings exactly when the spend it would share outweighs
// the imbalance it creates. With a fleet relay, items held by another
// shard cost only relayFrac of acquisition, so the shareable spend — and
// with it the pull toward co-location — shrinks to (1-relayFrac) of the
// affinity. Ties fall to the least-loaded, then lowest-index, shard — on
// a no-overlap fleet this is plain LPT load balancing. Deterministic for
// a fixed input order.
func place(q Query, shardW [][]float64, loads []float64, target, balance, relayFrac float64) int {
	best, bestScore := 0, math.Inf(-1)
	for s := range loads {
		overload := loads[s] + q.Load - target
		if overload < 0 {
			overload = 0
		}
		score := (1-relayFrac)*affinity(q, shardW[s]) - balance*overload
		if score > bestScore || (score == bestScore && loads[s] < loads[best]) {
			best, bestScore = s, score
		}
	}
	return best
}

// Partition places the queries onto cfg.Shards shards: LPT order
// (heaviest load first, ties by id for determinism), each query to the
// shard chosen by place. Shards == 1 trivially assigns everything to
// shard 0, so the sharded runtime degenerates to the unsharded service.
func Partition(qs []Query, cfg Config) Assignment {
	cfg = cfg.norm()
	out := Assignment{Shard: make(map[string]int, len(qs)), Loads: make([]float64, cfg.Shards)}
	if len(qs) == 0 {
		return out
	}
	order := make([]int, len(qs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		qa, qb := qs[order[a]], qs[order[b]]
		if qa.Load != qb.Load {
			return qa.Load > qb.Load
		}
		return qa.ID < qb.ID
	})
	total := 0.0
	for _, q := range qs {
		total += q.Load
	}
	target := total / float64(cfg.Shards)
	streams := len(qs[0].Weights)
	shardW := make([][]float64, cfg.Shards)
	for s := range shardW {
		shardW[s] = make([]float64, streams)
	}
	for _, i := range order {
		q := qs[i]
		s := place(q, shardW, out.Loads, target, cfg.Balance, cfg.RelayFrac)
		out.Shard[q.ID] = s
		out.Loads[s] += q.Load
		for k, w := range q.Weights {
			shardW[s][k] += w
		}
	}
	return out
}

// PlaceOne places a single new query into an existing assignment without
// disturbing it — the incremental path a service takes on Register,
// deferring full repartitions to explicit or drift-driven moments.
func PlaceOne(q Query, existing []Query, assign map[string]int, cfg Config) int {
	cfg = cfg.norm()
	loads := make([]float64, cfg.Shards)
	streams := len(q.Weights)
	shardW := make([][]float64, cfg.Shards)
	for s := range shardW {
		shardW[s] = make([]float64, streams)
	}
	total := q.Load
	for _, e := range existing {
		s, ok := assign[e.ID]
		if !ok || s < 0 || s >= cfg.Shards {
			continue
		}
		loads[s] += e.Load
		total += e.Load
		for k, w := range e.Weights {
			if k < streams {
				shardW[s][k] += w
			}
		}
	}
	return place(q, shardW, loads, total/float64(cfg.Shards), cfg.Balance, cfg.RelayFrac)
}

// Loss is the modelled cost of a placement versus planning the fleet as
// one workload.
type Loss struct {
	// JointK is the sum over shards of the per-shard joint plan costs:
	// what the partitioned fleet's planners model, with sharing only
	// inside each shard.
	JointK float64
	// JointOne is the K=1 baseline: the cheaper of the full-fleet joint
	// plan and the per-shard schedules re-priced under the full joint
	// objective (so JointOne <= JointK always — splitting a fleet can
	// only lose discounts, never gain them).
	JointOne float64
	// LostPct is the relative sharing lost to partitioning:
	// (JointK - JointOne) / JointOne, in percent. 0 at K=1.
	LostPct float64
	// RelayK prices the same placement with a fleet relay at transfer
	// fraction f: the duplicated spend JointK - JointOne is the expected
	// cost of items re-acquired across shards, and a relay turns each such
	// re-acquisition into a transfer at f of its price, so
	// RelayK = JointOne + f*(JointK - JointOne). Zero when no relay
	// pricing was applied (see WithRelay).
	RelayK float64 `json:"relay_k,omitempty"`
	// RelayLostPct is LostPct under relay pricing:
	// (RelayK - JointOne) / JointOne = f * LostPct.
	RelayLostPct float64 `json:"relay_lost_pct,omitempty"`
	// RelayFrac echoes the transfer fraction RelayK was priced at.
	RelayFrac float64 `json:"relay_frac,omitempty"`
}

// WithRelay prices the placement's sharing loss under a fleet relay with
// per-item transfer cost frac (clamped to [0, 1]): cross-shard duplicate
// spend is paid at frac of acquisition cost instead of in full. The
// relay-priced loss interpolates linearly between the K=1 joint cost
// (frac = 0, transfers free) and the partitioned cost (frac = 1, a
// transfer as dear as an acquisition).
func (l Loss) WithRelay(frac float64) Loss {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	l.RelayFrac = frac
	l.RelayK = l.JointOne + frac*(l.JointK-l.JointOne)
	l.RelayLostPct = frac * l.LostPct
	return l
}

// SharingLoss prices an assignment: per-shard joint plans summed,
// against the K=1 joint cost of the same fleet. Trees are priced against
// a cold cache, so the number is a structural property of the placement
// rather than of one tick's warm state.
func SharingLoss(qs []Query, assign map[string]int, shards int) Loss {
	if shards < 1 {
		shards = 1
	}
	var loss Loss
	if len(qs) == 0 {
		return loss
	}
	trees := make([]*query.Tree, len(qs))
	for i, q := range qs {
		trees[i] = q.Tree
	}
	if shards == 1 {
		// One shard IS the K=1 baseline: a single joint plan, zero loss,
		// exactly (no re-derivation that could differ in the last ulp).
		full := fleet.PlanJoint(trees, nil)
		loss.JointK, loss.JointOne = full.Expected, full.Expected
		return loss
	}
	// Per-shard joint plans; remember each query's chosen schedule so
	// the K=1 baseline can price the very same orders fleet-wide.
	schedules := make([]sched.Schedule, len(qs))
	for s := 0; s < shards; s++ {
		var idx []int
		for i, q := range qs {
			if assign[q.ID] == s {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		group := make([]*query.Tree, len(idx))
		for gi, i := range idx {
			group[gi] = trees[i]
		}
		plan := fleet.PlanJoint(group, nil)
		loss.JointK += plan.Expected
		for gi, i := range idx {
			schedules[i] = plan.Queries[gi].Schedule
		}
	}
	full := fleet.PlanJoint(trees, nil)
	loss.JointOne = full.Expected
	// The full planner's greedy is not optimal; the per-shard orders
	// priced under the full joint objective are another K=1 candidate,
	// and taking the min makes JointOne <= JointK hold unconditionally
	// (same schedules, strictly more cross-discounts).
	if repriced := fleet.PriceJoint(trees, schedules, nil); repriced < loss.JointOne {
		loss.JointOne = repriced
	}
	if loss.JointOne > 0 {
		loss.LostPct = 100 * (loss.JointK - loss.JointOne) / loss.JointOne
	}
	return loss
}

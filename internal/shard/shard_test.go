package shard

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"paotr/internal/fleet"
	"paotr/internal/query"
)

// randomFleet builds n random DNF trees over one shared stream space of
// s streams — the shape the partitioner sees in production, where every
// tree indexes the same registry.
func randomFleet(rng *rand.Rand, n, s int) []Query {
	streams := make([]query.Stream, s)
	for k := range streams {
		streams[k] = query.Stream{Name: fmt.Sprintf("s%d", k), Cost: 1 + 9*rng.Float64()}
	}
	out := make([]Query, n)
	for i := range out {
		ands := 1 + rng.IntN(3)
		t := &query.Tree{Streams: streams}
		for a := 0; a < ands; a++ {
			leaves := 1 + rng.IntN(3)
			for l := 0; l < leaves; l++ {
				t.Leaves = append(t.Leaves, query.Leaf{
					Stream: query.StreamID(rng.IntN(s)),
					Items:  1 + rng.IntN(5),
					Prob:   0.1 + 0.8*rng.Float64(),
					And:    a,
					Label:  fmt.Sprintf("q%d.a%d.l%d", i, a, l),
				})
			}
		}
		if err := t.Validate(); err != nil {
			panic(err)
		}
		out[i] = Profile(fmt.Sprintf("q%d", i), t)
	}
	return out
}

// TestProfileLoadMatchesIndependentPlan: the profile's Load must equal
// the expected cost of the query's independent plan, and the per-stream
// weights must sum to it (the Proposition 2 acquisition probabilities
// are a partition of the schedule's expected spend).
func TestProfileLoadMatchesIndependentPlan(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for trial := 0; trial < 50; trial++ {
		qs := randomFleet(rng, 1, 4)
		q := qs[0]
		sum := 0.0
		for _, w := range q.Weights {
			sum += w
		}
		if diff := q.Load - sum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: load %v != weight sum %v", trial, q.Load, sum)
		}
	}
}

// TestPartitionSingleShardIsUnsharded: with one shard the partitioner
// assigns everything to shard 0 and the sharing loss degenerates
// exactly — the per-"shard" joint cost IS the K=1 joint cost.
func TestPartitionSingleShardIsUnsharded(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	for trial := 0; trial < 20; trial++ {
		qs := randomFleet(rng, 2+rng.IntN(6), 3+rng.IntN(4))
		a := Partition(qs, Config{Shards: 1})
		for _, q := range qs {
			if a.Shard[q.ID] != 0 {
				t.Fatalf("trial %d: query %s on shard %d with K=1", trial, q.ID, a.Shard[q.ID])
			}
		}
		loss := SharingLoss(qs, a.Shard, 1)
		if loss.JointK != loss.JointOne {
			t.Fatalf("trial %d: K=1 loss not degenerate: jointK %v != jointOne %v",
				trial, loss.JointK, loss.JointOne)
		}
		if loss.LostPct != 0 {
			t.Fatalf("trial %d: K=1 lost %v%%, want exactly 0", trial, loss.LostPct)
		}
		trees := make([]*query.Tree, len(qs))
		for i, q := range qs {
			trees[i] = q.Tree
		}
		if full := fleet.PlanJoint(trees, nil); loss.JointK > full.Expected+1e-12 {
			t.Fatalf("trial %d: K=1 jointK %v exceeds the fleet planner's %v",
				trial, loss.JointK, full.Expected)
		}
	}
}

// TestShardedCostBounds is the partitioner's core invariant, over 100
// random fleets: the summed per-shard joint cost is sandwiched between
// the K=1 joint cost (splitting a fleet can only lose cross-query
// discounts, so K shards cost at least as much as one) and the
// independent-planning cost (within a shard the joint planner never
// models more than per-query planning would).
func TestShardedCostBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 0))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.IntN(6)
		qs := randomFleet(rng, n, 3+rng.IntN(5))
		k := 2 + rng.IntN(3)
		a := Partition(qs, Config{Shards: k})
		loss := SharingLoss(qs, a.Shard, k)

		indep := 0.0
		for _, q := range qs {
			indep += q.Load
		}
		const eps = 1e-9
		if loss.JointOne > loss.JointK+eps {
			t.Errorf("trial %d (n=%d k=%d): K=1 joint %v exceeds K-shard joint %v",
				trial, n, k, loss.JointOne, loss.JointK)
		}
		if loss.JointK > indep+eps {
			t.Errorf("trial %d (n=%d k=%d): K-shard joint %v exceeds independent %v",
				trial, n, k, loss.JointK, indep)
		}
		if loss.LostPct < 0 {
			t.Errorf("trial %d: negative sharing loss %v%%", trial, loss.LostPct)
		}
	}
}

// TestPartitionBalances: on a no-overlap fleet (every query on its own
// streams) affinity is useless and the partitioner must fall back to
// load balancing — no shard ends up empty while another holds the whole
// fleet.
func TestPartitionBalances(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	streams := make([]query.Stream, 16)
	for k := range streams {
		streams[k] = query.Stream{Name: fmt.Sprintf("s%d", k), Cost: 2}
	}
	qs := make([]Query, 8)
	for i := range qs {
		t1 := &query.Tree{Streams: streams, Leaves: []query.Leaf{
			{Stream: query.StreamID(2 * i), Items: 1 + rng.IntN(4), Prob: 0.5, And: 0, Label: fmt.Sprintf("q%d.0", i)},
			{Stream: query.StreamID(2*i + 1), Items: 1 + rng.IntN(4), Prob: 0.5, And: 0, Label: fmt.Sprintf("q%d.1", i)},
		}}
		qs[i] = Profile(fmt.Sprintf("q%d", i), t1)
	}
	a := Partition(qs, Config{Shards: 4})
	perShard := make([]int, 4)
	for _, s := range a.Shard {
		perShard[s]++
	}
	for s, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d empty on a balanced no-overlap fleet: %v", s, perShard)
		}
		if n > 4 {
			t.Errorf("shard %d holds %d of 8 disjoint queries: %v", s, n, perShard)
		}
	}
	if loss := SharingLoss(qs, a.Shard, 4); loss.LostPct > 1e-9 {
		t.Errorf("disjoint fleet lost %v%% sharing to partitioning, want 0", loss.LostPct)
	}
}

// TestPartitionCoLocatesOverlap: queries sharing an expensive stream
// must land on the same shard when the balance cap allows it, and the
// placement must lose less sharing than a round-robin placement.
func TestPartitionCoLocatesOverlap(t *testing.T) {
	streams := []query.Stream{
		{Name: "shared", Cost: 10},
		{Name: "p0", Cost: 1}, {Name: "p1", Cost: 1},
		{Name: "p2", Cost: 1}, {Name: "p3", Cost: 1},
	}
	mk := func(i int, private query.StreamID) Query {
		t1 := &query.Tree{Streams: streams, Leaves: []query.Leaf{
			{Stream: 0, Items: 4, Prob: 0.5, And: 0, Label: fmt.Sprintf("q%d.shared", i)},
			{Stream: private, Items: 2, Prob: 0.5, And: 1, Label: fmt.Sprintf("q%d.private", i)},
		}}
		return Profile(fmt.Sprintf("q%d", i), t1)
	}
	// Two pairs: q0/q1 share stream "shared" heavily (both open on it);
	// q2/q3 are private-only.
	qs := []Query{mk(0, 1), mk(1, 2)}
	for i := 2; i < 4; i++ {
		t1 := &query.Tree{Streams: streams, Leaves: []query.Leaf{
			{Stream: query.StreamID(i + 1), Items: 3, Prob: 0.5, And: 0, Label: fmt.Sprintf("q%d.a", i)},
		}}
		qs = append(qs, Profile(fmt.Sprintf("q%d", i), t1))
	}
	a := Partition(qs, Config{Shards: 2})
	if a.Shard["q0"] != a.Shard["q1"] {
		t.Errorf("overlapping queries split across shards: %v", a.Shard)
	}
	affine := SharingLoss(qs, a.Shard, 2)
	roundRobin := map[string]int{"q0": 0, "q1": 1, "q2": 0, "q3": 1}
	naive := SharingLoss(qs, roundRobin, 2)
	if affine.JointK > naive.JointK+1e-9 {
		t.Errorf("affinity placement models %v J, round-robin %v J — placement should not lose more",
			affine.JointK, naive.JointK)
	}
	if naive.LostPct <= 0 {
		t.Errorf("round-robin split of an overlapping fleet lost %v%%, expected > 0", naive.LostPct)
	}
}

// TestPlaceOneAgreesWithPartitionState: incrementally placing a query
// into an existing assignment must be deterministic and in range.
func TestPlaceOneInRangeAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 0))
	qs := randomFleet(rng, 6, 5)
	a := Partition(qs[:5], Config{Shards: 3})
	first := PlaceOne(qs[5], qs[:5], a.Shard, Config{Shards: 3})
	for i := 0; i < 10; i++ {
		if got := PlaceOne(qs[5], qs[:5], a.Shard, Config{Shards: 3}); got != first {
			t.Fatalf("PlaceOne not deterministic: %d then %d", first, got)
		}
	}
	if first < 0 || first >= 3 {
		t.Fatalf("PlaceOne out of range: %d", first)
	}
}

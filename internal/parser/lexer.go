// Package parser implements a small query language for boolean queries
// over sensor streams, in the notation of the paper's Figure 1:
//
//	AVG(A,5) < 70 AND (MAX(B,4) > 100 OR C < 3)
//
// Predicates are a window aggregate over one stream compared with a
// constant; bare "C < 3" means the most recent item. A predicate may carry
// an optional success-probability annotation "[p=0.7]", used when no
// historical trace estimate is available:
//
//	AVG(A,5) < 70 [p=0.6] AND C < 3 [p=0.5]
//
// AND binds tighter than OR; parentheses group.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokCmp    // < <= > >= == !=
	tokAnd    // AND (case-insensitive) or &&
	tokOr     // OR or ||
	tokLBrack // [
	tokRBrack // ]
	tokEquals // = (inside probability annotation)
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError reports a lexical or grammatical error with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("parser: at offset %d: %s", e.Pos, e.Msg)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBrack, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBrack, "]", i})
			i++
		case c == '&':
			if i+1 < len(input) && input[i+1] == '&' {
				toks = append(toks, token{tokAnd, "&&", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '&' (use AND or &&)")
			}
		case c == '|':
			if i+1 < len(input) && input[i+1] == '|' {
				toks = append(toks, token{tokOr, "||", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '|' (use OR or ||)")
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokCmp, op, i})
			i++
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokCmp, "!=", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '!' (use !=)")
			}
		case c == '=':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokCmp, "==", i})
				i += 2
			} else {
				toks = append(toks, token{tokEquals, "=", i})
				i++
			}
		case unicode.IsDigit(c) || c == '.' || c == '-' || c == '+':
			start := i
			i++
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.' ||
				input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '-' || input[i] == '+') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) ||
				input[i] == '_' || input[i] == '-') {
				i++
			}
			word := input[start:i]
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{tokAnd, word, start})
			case "OR":
				toks = append(toks, token{tokOr, word, start})
			default:
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

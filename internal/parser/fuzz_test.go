package parser

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary input through the lexer and parser. Parse
// must never panic: every malformed query reaching the service's
// registration endpoint has to come back as an error, not a crash. For
// inputs that do parse, the rendered String() form must parse again
// (queries survive a round trip through logs and APIs).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"heart-rate > 100",
		"AVG(heart-rate,5) > 100 AND accelerometer < 12",
		"spo2 < 92 OR (heart-rate > 110 AND gps-speed < 0.5)",
		"a < 0.3 [p=0.3] AND b >= 0.7 [p=0.7]",
		"MAX(u,3) < 0.843432665 [p=0.6]",
		"MIN(x,2) != 1e-9 OR COUNT(y,4) = 2",
		"MEDIAN(z,7) <= -3.5 AND STDDEV(w,6) > 0",
		"(a > 1 AND (b < 2 OR c = 3)) OR d != 4",
		"AVG(heart-rate",  // truncated call
		"a >",             // missing threshold
		"a > 1 [p=2]",     // probability out of range
		"NOSUCH(a,3) > 1", // unknown operator
		"a > 1 AND",       // dangling operator
		"((((((((((a > 1))))))))))",
		"a > 1 ]",
		"AVG(a,0) > 1",  // zero window
		"AVG(a,-1) > 1", // negative window
		"a\x00b > 1",
		"ORANDOR > 1",
		"[p=0.5]",
		"a > 1 [p=0.5",
		"🤖 > 1",
		strings.Repeat("(", 1000),
		strings.Repeat("a > 1 OR ", 500) + "b < 2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input) // must not panic
		if err != nil {
			return
		}
		// Round trip: the rendered form must parse to the same shape.
		rendered := e.String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parsing rendered form %q of %q: %v", rendered, input, err)
		}
		p1, p2 := Predicates(e), Predicates(e2)
		if len(p1) != len(p2) {
			t.Fatalf("round trip changed predicate count: %d -> %d (%q)", len(p1), len(p2), rendered)
		}
		for i := range p1 {
			if p1[i].P.String() != p2[i].P.String() {
				t.Fatalf("round trip changed predicate %d: %q -> %q", i, p1[i].P.String(), p2[i].P.String())
			}
			if !(math.IsNaN(p1[i].Prob) && math.IsNaN(p2[i].Prob)) && p1[i].Prob != p2[i].Prob {
				t.Fatalf("round trip changed probability %d: %v -> %v", i, p1[i].Prob, p2[i].Prob)
			}
		}
	})
}

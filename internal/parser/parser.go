package parser

import (
	"math"
	"strconv"

	"paotr/internal/predicate"
)

// Expr is a parsed boolean expression over predicates.
type Expr interface {
	// String renders the expression back into query-language syntax.
	String() string
	isExpr()
}

// Pred is a leaf predicate with an optional probability annotation.
type Pred struct {
	P predicate.Predicate
	// Prob is the annotated success probability, or NaN when the query
	// did not annotate one (the engine then consults its trace store).
	Prob float64
}

func (Pred) isExpr() {}

func (p Pred) String() string {
	s := p.P.String()
	if !math.IsNaN(p.Prob) {
		s += " [p=" + strconv.FormatFloat(p.Prob, 'g', -1, 64) + "]"
	}
	return s
}

// And is a conjunction.
type And struct{ Terms []Expr }

func (And) isExpr() {}

func (a And) String() string { return joinExpr(a.Terms, " AND ") }

// Or is a disjunction.
type Or struct{ Terms []Expr }

func (Or) isExpr() {}

func (o Or) String() string { return joinExpr(o.Terms, " OR ") }

func joinExpr(terms []Expr, sep string) string {
	s := "("
	for i, t := range terms {
		if i > 0 {
			s += sep
		}
		s += t.String()
	}
	return s + ")"
}

// Parse parses a query expression.
//
// Grammar:
//
//	expr   := term { OR term }
//	term   := factor { AND factor }
//	factor := '(' expr ')' | pred
//	pred   := [ OPNAME '(' IDENT ',' INT ')' | IDENT ] CMP NUMBER [ '[' 'p' '=' NUMBER ']' ]
func Parse(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errf(t.pos, "expected %s, found %s", what, t)
	}
	return t, nil
}

func (p *parser) expr() (Expr, error) {
	first, err := p.term()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.peek().kind == tokOr {
		p.next()
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return Or{Terms: terms}, nil
}

func (p *parser) term() (Expr, error) {
	first, err := p.factor()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.peek().kind == tokAnd {
		p.next()
		t, err := p.factor()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return And{Terms: terms}, nil
}

func (p *parser) factor() (Expr, error) {
	if p.peek().kind == tokLParen {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.pred()
}

func (p *parser) pred() (Expr, error) {
	id, err := p.expect(tokIdent, "stream or operator name")
	if err != nil {
		return nil, err
	}
	pr := predicate.Predicate{Op: predicate.Last, Window: 1, Stream: id.text}
	if p.peek().kind == tokLParen {
		op, ok := predicate.ParseOp(id.text)
		if !ok {
			return nil, errf(id.pos, "unknown operator %q", id.text)
		}
		pr.Op = op
		p.next() // (
		st, err := p.expect(tokIdent, "stream name")
		if err != nil {
			return nil, err
		}
		pr.Stream = st.text
		if _, err := p.expect(tokComma, "','"); err != nil {
			return nil, err
		}
		w, err := p.expect(tokNumber, "window size")
		if err != nil {
			return nil, err
		}
		n, err2 := strconv.Atoi(w.text)
		if err2 != nil || n < 1 {
			return nil, errf(w.pos, "window size must be a positive integer, found %q", w.text)
		}
		pr.Window = n
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	}
	cmpTok, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return nil, err
	}
	cmp, ok := predicate.ParseCmp(cmpTok.text)
	if !ok {
		return nil, errf(cmpTok.pos, "unknown comparison %q", cmpTok.text)
	}
	pr.Cmp = cmp
	num, err := p.expect(tokNumber, "threshold")
	if err != nil {
		return nil, err
	}
	thr, err2 := strconv.ParseFloat(num.text, 64)
	if err2 != nil {
		return nil, errf(num.pos, "bad number %q", num.text)
	}
	pr.Threshold = thr

	prob := math.NaN()
	if p.peek().kind == tokLBrack {
		p.next()
		key, err := p.expect(tokIdent, "'p'")
		if err != nil {
			return nil, err
		}
		if key.text != "p" {
			return nil, errf(key.pos, "expected 'p', found %q", key.text)
		}
		if _, err := p.expect(tokEquals, "'='"); err != nil {
			return nil, err
		}
		val, err := p.expect(tokNumber, "probability")
		if err != nil {
			return nil, err
		}
		pv, err2 := strconv.ParseFloat(val.text, 64)
		if err2 != nil || pv < 0 || pv > 1 {
			return nil, errf(val.pos, "probability must be in [0,1], found %q", val.text)
		}
		prob = pv
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
	}
	return Pred{P: pr, Prob: prob}, nil
}

// Predicates returns the leaf predicates of an expression in left-to-right
// order.
func Predicates(e Expr) []Pred {
	var out []Pred
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case Pred:
			out = append(out, v)
		case And:
			for _, t := range v.Terms {
				walk(t)
			}
		case Or:
			for _, t := range v.Terms {
				walk(t)
			}
		}
	}
	walk(e)
	return out
}

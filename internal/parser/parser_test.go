package parser

import (
	"math"
	"testing"

	"paotr/internal/predicate"
)

func TestParseFig1a(t *testing.T) {
	e, err := Parse("(AVG(A,5) < 70 AND MAX(B,4) > 100) OR C < 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(Or)
	if !ok {
		t.Fatalf("top level is %T, want Or", e)
	}
	if len(or.Terms) != 2 {
		t.Fatalf("%d OR terms", len(or.Terms))
	}
	and, ok := or.Terms[0].(And)
	if !ok || len(and.Terms) != 2 {
		t.Fatalf("first term %T", or.Terms[0])
	}
	preds := Predicates(e)
	if len(preds) != 3 {
		t.Fatalf("%d predicates", len(preds))
	}
	p0 := preds[0].P
	if p0.Stream != "A" || p0.Op != predicate.Avg || p0.Window != 5 ||
		p0.Cmp != predicate.LT || p0.Threshold != 70 {
		t.Errorf("pred 0 = %+v", p0)
	}
	p2 := preds[2].P
	if p2.Stream != "C" || p2.Op != predicate.Last || p2.Window != 1 || p2.Threshold != 3 {
		t.Errorf("pred 2 = %+v", p2)
	}
}

func TestAndBindsTighterThanOr(t *testing.T) {
	e, err := Parse("A < 1 OR B < 2 AND C < 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(Or)
	if !ok || len(or.Terms) != 2 {
		t.Fatalf("top = %T", e)
	}
	if _, ok := or.Terms[0].(Pred); !ok {
		t.Errorf("first OR term should be the bare predicate, got %T", or.Terms[0])
	}
	if and, ok := or.Terms[1].(And); !ok || len(and.Terms) != 2 {
		t.Errorf("second OR term should be an AND of two, got %T", or.Terms[1])
	}
}

func TestProbabilityAnnotation(t *testing.T) {
	e, err := Parse("AVG(A,5) < 70 [p=0.6] AND C < 3")
	if err != nil {
		t.Fatal(err)
	}
	preds := Predicates(e)
	if preds[0].Prob != 0.6 {
		t.Errorf("annotated prob = %v", preds[0].Prob)
	}
	if !math.IsNaN(preds[1].Prob) {
		t.Errorf("unannotated prob = %v, want NaN", preds[1].Prob)
	}
}

func TestSymbolicOperators(t *testing.T) {
	e, err := Parse("A < 1 && B >= 2 || C != 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Or); !ok {
		t.Fatalf("top = %T", e)
	}
	preds := Predicates(e)
	if preds[1].P.Cmp != predicate.GE || preds[2].P.Cmp != predicate.NE {
		t.Error("comparison operators mis-parsed")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	for _, q := range []string{"A<1 and B<2", "A<1 And B<2", "A<1 AND B<2"} {
		e, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if _, ok := e.(And); !ok {
			t.Errorf("%q: top = %T", q, e)
		}
	}
}

func TestNegativeAndFloatThresholds(t *testing.T) {
	e, err := Parse("A < -3.5 AND SUM(B,3) >= 1e2")
	if err != nil {
		t.Fatal(err)
	}
	preds := Predicates(e)
	if preds[0].P.Threshold != -3.5 || preds[1].P.Threshold != 100 {
		t.Errorf("thresholds %v, %v", preds[0].P.Threshold, preds[1].P.Threshold)
	}
}

func TestNestedParens(t *testing.T) {
	e, err := Parse("((A < 1))")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Pred); !ok {
		t.Fatalf("top = %T", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"A",
		"A <",
		"A < x",
		"FOO(A,5) < 3",
		"AVG(A) < 3",
		"AVG(A,0) < 3",
		"AVG(A,-2) < 3",
		"A < 3 AND",
		"(A < 3",
		"A < 3 )",
		"A < 3 [q=0.5]",
		"A < 3 [p=1.5]",
		"A < 3 [p=0.5",
		"A = 3",
		"A ! 3",
		"A & B",
		"A | B",
		"A < 3 B < 4",
		"#",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		} else if se := err.(*SyntaxError); se.Error() == "" {
			t.Errorf("empty error for %q", q)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "(AVG(A,5) < 70 [p=0.6] AND MAX(B,4) > 100) OR C < 3"
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Rendering and reparsing must give the same structure.
	e2, err := Parse(e.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", e.String(), err)
	}
	if e.String() != e2.String() {
		t.Errorf("round trip: %q vs %q", e.String(), e2.String())
	}
	p1, p2 := Predicates(e), Predicates(e2)
	if len(p1) != len(p2) {
		t.Fatal("predicate count changed")
	}
	for i := range p1 {
		if p1[i].P != p2[i].P {
			t.Errorf("pred %d: %+v vs %+v", i, p1[i].P, p2[i].P)
		}
	}
}

func TestHyphenatedStreamNames(t *testing.T) {
	e, err := Parse("AVG(heart-rate,5) > 100")
	if err != nil {
		t.Fatal(err)
	}
	if Predicates(e)[0].P.Stream != "heart-rate" {
		t.Error("hyphenated name mis-parsed")
	}
}

package query

import (
	"strings"
	"testing"
)

func leafA() Leaf { return Leaf{Stream: 0, Items: 1, Prob: 0.5, Label: "a"} }
func leafB() Leaf { return Leaf{Stream: 1, Items: 2, Prob: 0.6, Label: "b"} }
func leafC() Leaf { return Leaf{Stream: 0, Items: 3, Prob: 0.7, Label: "c"} }

func twoStreams() []Stream {
	return []Stream{{Name: "X", Cost: 1}, {Name: "Y", Cost: 2}}
}

func TestNodeKindString(t *testing.T) {
	if NodeLeaf.String() != "leaf" || NodeAnd.String() != "and" || NodeOr.String() != "or" {
		t.Error("NodeKind.String mismatch")
	}
	if !strings.Contains(NodeKind(9).String(), "9") {
		t.Error("unknown kind should include the value")
	}
}

func TestToDNFAlreadyDNF(t *testing.T) {
	n := NewOrNode(
		NewAndNode(NewLeafNode(leafA()), NewLeafNode(leafB())),
		NewAndNode(NewLeafNode(leafC())),
	)
	if !n.IsDNFShape() {
		t.Error("IsDNFShape should be true")
	}
	tr, err := n.ToDNF(twoStreams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumAnds() != 2 || tr.NumLeaves() != 3 {
		t.Errorf("got %d ands, %d leaves", tr.NumAnds(), tr.NumLeaves())
	}
}

func TestToDNFDistributes(t *testing.T) {
	// a AND (b OR c)  =>  (a AND b) OR (a AND c)
	n := NewAndNode(
		NewLeafNode(leafA()),
		NewOrNode(NewLeafNode(leafB()), NewLeafNode(leafC())),
	)
	if n.IsDNFShape() {
		t.Error("IsDNFShape should be false for AND over OR")
	}
	tr, err := n.ToDNF(twoStreams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumAnds() != 2 {
		t.Fatalf("got %d AND nodes, want 2", tr.NumAnds())
	}
	if tr.NumLeaves() != 4 {
		t.Fatalf("got %d leaves, want 4 (a duplicated)", tr.NumLeaves())
	}
	ands := tr.AndLeaves()
	for i, and := range ands {
		if tr.Leaves[and[0]].Label != "a" {
			t.Errorf("AND %d should start with the distributed leaf a", i)
		}
	}
}

func TestToDNFNested(t *testing.T) {
	// (a OR b) AND (b OR c) => 4 conjunctions.
	n := NewAndNode(
		NewOrNode(NewLeafNode(leafA()), NewLeafNode(leafB())),
		NewOrNode(NewLeafNode(leafB()), NewLeafNode(leafC())),
	)
	tr, err := n.ToDNF(twoStreams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumAnds() != 4 || tr.NumLeaves() != 8 {
		t.Errorf("got %d ands / %d leaves, want 4 / 8", tr.NumAnds(), tr.NumLeaves())
	}
}

func TestToDNFSingleLeaf(t *testing.T) {
	tr, err := NewLeafNode(leafA()).ToDNF(twoStreams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumAnds() != 1 || tr.NumLeaves() != 1 {
		t.Error("single leaf should become a one-leaf AND")
	}
}

func TestToDNFEmptyOperator(t *testing.T) {
	if _, err := NewAndNode().ToDNF(twoStreams()); err == nil {
		t.Error("empty AND should fail")
	}
	if _, err := NewOrNode().ToDNF(twoStreams()); err == nil {
		t.Error("empty OR should fail")
	}
}

func TestNodeString(t *testing.T) {
	n := NewOrNode(
		NewAndNode(NewLeafNode(leafA()), NewLeafNode(leafB())),
		NewLeafNode(leafC()),
	)
	s := n.String()
	if !strings.Contains(s, "AND") || !strings.Contains(s, "OR") {
		t.Errorf("String = %q", s)
	}
	if n.CountLeaves() != 3 {
		t.Errorf("CountLeaves = %d", n.CountLeaves())
	}
}

func TestBareAndIsDNFShape(t *testing.T) {
	n := NewAndNode(NewLeafNode(leafA()), NewLeafNode(leafB()))
	if !n.IsDNFShape() {
		t.Error("bare AND of leaves is DNF shape")
	}
	tr, err := n.ToDNF(twoStreams())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsAndTree() {
		t.Error("should become an AND-tree")
	}
}

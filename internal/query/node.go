package query

import (
	"errors"
	"fmt"
	"strings"
)

// NodeKind distinguishes operators from predicates in a general AND-OR tree.
type NodeKind int

const (
	// NodeLeaf is a probabilistic predicate node.
	NodeLeaf NodeKind = iota
	// NodeAnd is a conjunction of its children.
	NodeAnd
	// NodeOr is a disjunction of its children.
	NodeOr
)

func (k NodeKind) String() string {
	switch k {
	case NodeLeaf:
		return "leaf"
	case NodeAnd:
		return "and"
	case NodeOr:
		return "or"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is a general rooted AND-OR tree, as produced by the query parser.
// The scheduling algorithms of this library operate on DNF Trees; ToDNF
// normalizes a Node into that form.
type Node struct {
	Kind     NodeKind
	Children []*Node // for NodeAnd / NodeOr
	Pred     Leaf    // for NodeLeaf (the And field is ignored)
}

// NewLeafNode builds a predicate node.
func NewLeafNode(pred Leaf) *Node { return &Node{Kind: NodeLeaf, Pred: pred} }

// NewAndNode builds a conjunction node.
func NewAndNode(children ...*Node) *Node {
	return &Node{Kind: NodeAnd, Children: children}
}

// NewOrNode builds a disjunction node.
func NewOrNode(children ...*Node) *Node {
	return &Node{Kind: NodeOr, Children: children}
}

// ErrEmptyNode is returned when normalizing a node with an operator that
// has no children.
var ErrEmptyNode = errors.New("query: operator node with no children")

// CountLeaves returns the number of predicate leaves below n.
func (n *Node) CountLeaves() int {
	if n.Kind == NodeLeaf {
		return 1
	}
	c := 0
	for _, ch := range n.Children {
		c += ch.CountLeaves()
	}
	return c
}

// String renders the node tree with infix operators.
func (n *Node) String() string {
	switch n.Kind {
	case NodeLeaf:
		if n.Pred.Label != "" {
			return n.Pred.Label
		}
		return fmt.Sprintf("S%d[%d]", n.Pred.Stream, n.Pred.Items)
	case NodeAnd, NodeOr:
		op := " AND "
		if n.Kind == NodeOr {
			op = " OR "
		}
		parts := make([]string, len(n.Children))
		for i, ch := range n.Children {
			parts[i] = ch.String()
		}
		return "(" + strings.Join(parts, op) + ")"
	}
	return "?"
}

// IsDNFShape reports whether the node is already in DNF shape: an OR of
// ANDs of leaves (single leaves and a bare AND are also accepted).
func (n *Node) IsDNFShape() bool {
	isConj := func(c *Node) bool {
		if c.Kind == NodeLeaf {
			return true
		}
		if c.Kind != NodeAnd {
			return false
		}
		for _, l := range c.Children {
			if l.Kind != NodeLeaf {
				return false
			}
		}
		return true
	}
	if n.Kind != NodeOr {
		return isConj(n)
	}
	for _, c := range n.Children {
		if !isConj(c) {
			return false
		}
	}
	return true
}

// ToDNF normalizes the node tree into a DNF Tree over the given streams by
// distributing AND over OR. Each resulting conjunction becomes one AND node.
//
// Note: DNF expansion can duplicate a predicate into several AND nodes. The
// scheduling model treats leaves as statistically independent, so expansion
// of non-DNF queries yields an approximation of the true cost semantics
// (documented in DESIGN.md); queries already in DNF shape are exact.
func (n *Node) ToDNF(streams []Stream) (*Tree, error) {
	terms, err := n.dnfTerms()
	if err != nil {
		return nil, err
	}
	t := &Tree{Streams: streams}
	for i, term := range terms {
		for _, pred := range term {
			pred.And = i
			t.Leaves = append(t.Leaves, pred)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// dnfTerms returns the list of conjunctions (each a list of predicates)
// equivalent to the node.
func (n *Node) dnfTerms() ([][]Leaf, error) {
	switch n.Kind {
	case NodeLeaf:
		return [][]Leaf{{n.Pred}}, nil
	case NodeOr:
		if len(n.Children) == 0 {
			return nil, ErrEmptyNode
		}
		var all [][]Leaf
		for _, c := range n.Children {
			ts, err := c.dnfTerms()
			if err != nil {
				return nil, err
			}
			all = append(all, ts...)
		}
		return all, nil
	case NodeAnd:
		if len(n.Children) == 0 {
			return nil, ErrEmptyNode
		}
		// Cross product of the children's term lists.
		acc := [][]Leaf{{}}
		for _, c := range n.Children {
			ts, err := c.dnfTerms()
			if err != nil {
				return nil, err
			}
			next := make([][]Leaf, 0, len(acc)*len(ts))
			for _, a := range acc {
				for _, t := range ts {
					term := make([]Leaf, 0, len(a)+len(t))
					term = append(term, a...)
					term = append(term, t...)
					next = append(next, term)
				}
			}
			acc = next
		}
		return acc, nil
	}
	return nil, fmt.Errorf("query: unknown node kind %v", n.Kind)
}

package query

import (
	"strings"
	"testing"
)

func TestDot(t *testing.T) {
	tr := fig1bTree()
	dot := tr.Dot()
	for _, want := range []string{
		"digraph query",
		"or [label=\"OR\"",
		"and0", "and1",
		"AVG(A,5) < 70",
		"shape=cylinder",
		"style=dashed",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
	// One leaf node and one ownership edge per leaf.
	if got := strings.Count(dot, "shape=ellipse"); got != tr.NumLeaves() {
		t.Errorf("%d leaf nodes, want %d", got, tr.NumLeaves())
	}
	// Sharing visible: stream A (index 0) referenced by two leaves.
	if got := strings.Count(dot, "-> stream0"); got != 2 {
		t.Errorf("%d edges to shared stream A, want 2", got)
	}
}

func TestDotEscaping(t *testing.T) {
	tr := &Tree{
		Streams: []Stream{{Name: `we"ird`, Cost: 1}},
		Leaves:  []Leaf{{And: 0, Stream: 0, Items: 1, Prob: 0.5, Label: `x"y`}},
	}
	dot := tr.Dot()
	if strings.Contains(dot, `"x"y`) {
		t.Error("unescaped quote in label")
	}
	if !strings.Contains(dot, `x\"y`) {
		t.Errorf("expected escaped label:\n%s", dot)
	}
}

package query

import (
	"math"
	"math/rand"
	"testing"
)

func canonTree() *Tree {
	return &Tree{
		Streams: []Stream{{Name: "A", Cost: 2}, {Name: "B", Cost: 1}, {Name: "C", Cost: 5}},
		Leaves: []Leaf{
			{And: 0, Stream: 0, Items: 2, Prob: 0.3, Label: "a"},
			{And: 0, Stream: 1, Items: 1, Prob: 0.7, Label: "b"},
			{And: 1, Stream: 2, Items: 3, Prob: 0.5, Label: "c"},
			{And: 1, Stream: 0, Items: 1, Prob: 0.9, Label: "a2"},
		},
	}
}

// The canonical shape must be invariant under permuting AND terms and
// permuting leaves within an AND term — the commutativity the planner and
// verdict cannot observe.
func TestCanonicalShapeCommutative(t *testing.T) {
	base := canonTree()
	want := base.CanonicalShape(nil)

	// Swap the two AND terms.
	swapped := &Tree{
		Streams: base.Streams,
		Leaves: []Leaf{
			{And: 0, Stream: 2, Items: 3, Prob: 0.5, Label: "c"},
			{And: 0, Stream: 0, Items: 1, Prob: 0.9, Label: "a2"},
			{And: 1, Stream: 0, Items: 2, Prob: 0.3, Label: "a"},
			{And: 1, Stream: 1, Items: 1, Prob: 0.7, Label: "b"},
		},
	}
	if got := swapped.CanonicalShape(nil); got != want {
		t.Fatalf("AND-term permutation changed the canonical shape:\n%q\n%q", got, want)
	}

	// Shuffle leaves within terms, repeatedly.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuf := base.Clone()
		rng.Shuffle(len(shuf.Leaves), func(i, j int) {
			shuf.Leaves[i], shuf.Leaves[j] = shuf.Leaves[j], shuf.Leaves[i]
		})
		if got := shuf.CanonicalShape(nil); got != want {
			t.Fatalf("leaf shuffle %d changed the canonical shape", trial)
		}
	}
}

// Every descriptor field must be load-bearing: changing the stream, the
// window, the probability, the cost or the predicate label must change
// the shape.
func TestCanonicalShapeDistinguishes(t *testing.T) {
	base := canonTree()
	want := base.CanonicalShape(nil)
	mutate := []func(*Tree){
		func(t *Tree) { t.Leaves[0].Stream = 1 },
		func(t *Tree) { t.Leaves[0].Items = 3 },
		func(t *Tree) { t.Leaves[0].Prob = 0.31 },
		func(t *Tree) { t.Leaves[0].Label = "a'" },
		func(t *Tree) { t.Streams[0].Cost = 3 },
		func(t *Tree) { t.Leaves[3].And = 0 }, // regroup a leaf under another AND
	}
	for i, m := range mutate {
		c := base.Clone()
		m(c)
		if got := c.CanonicalShape(nil); got == want {
			t.Fatalf("mutation %d did not change the canonical shape", i)
		}
	}
}

// probs overrides the leaf probabilities; NaN marks an estimator-driven
// leaf, distinct from any annotated value.
func TestCanonicalShapeProbOverride(t *testing.T) {
	base := canonTree()
	annotated := base.CanonicalShape([]float64{0.3, 0.7, 0.5, 0.9})
	if annotated != base.CanonicalShape(nil) {
		t.Fatalf("explicit probs equal to the tree's must not change the shape")
	}
	est := base.CanonicalShape([]float64{math.NaN(), 0.7, 0.5, 0.9})
	if est == annotated {
		t.Fatalf("estimator-driven leaf must differ from the annotated shape")
	}
	// The estimator marker must be stable regardless of the placeholder
	// probability the skeleton happens to carry.
	c := base.Clone()
	c.Leaves[0].Prob = 0.123
	if got := c.CanonicalShape([]float64{math.NaN(), 0.7, 0.5, 0.9}); got != est {
		t.Fatalf("estimator-driven descriptor leaked the placeholder probability")
	}
}

func TestShapeHashStable(t *testing.T) {
	base := canonTree()
	c := base.CanonicalShape(nil)
	if ShapeHash(c) != ShapeHash(c) {
		t.Fatalf("hash not deterministic")
	}
	if ShapeHash(c) == ShapeHash(c+"x") {
		t.Fatalf("trivially distinct strings collided")
	}
}

// Package query defines the data model for probabilistic boolean query
// trees over shared sensor data streams, following Casanova, Lim, Robert,
// Vivien and Zaidouni, "Cost-Optimal Execution of Boolean Query Trees with
// Shared Streams" (IPDPS 2014).
//
// A query is a DNF tree: an OR of AND nodes whose leaves are independent
// probabilistic predicates. Leaf j requires the d_j most recent data items
// from stream S(j), evaluates to TRUE with probability p_j, and each item of
// stream S_k costs c(S_k) to acquire. An AND-tree is the special case of a
// single AND node. The "shared" model allows one stream to appear at several
// leaves, so acquired items are reused across leaves.
package query

import (
	"errors"
	"fmt"
	"strings"
)

// StreamID identifies a stream within a Tree (index into Tree.Streams).
type StreamID int

// Stream describes a data stream: a named source of periodically produced
// data items with a fixed per-item acquisition cost.
type Stream struct {
	// Name is a human-readable identifier ("A", "heart-rate", ...).
	Name string `json:"name"`
	// Cost is the cost c(S) of acquiring one data item from this stream
	// (e.g. joules per item). Must be non-negative.
	Cost float64 `json:"cost"`
}

// Leaf is a probabilistic boolean predicate at a leaf of the query tree.
type Leaf struct {
	// And is the index of the AND node this leaf belongs to (0-based).
	And int `json:"and"`
	// Stream is the stream the predicate reads.
	Stream StreamID `json:"stream"`
	// Items is d_j: the predicate needs the Items most recent data items
	// of the stream (a time window). Must be >= 1.
	Items int `json:"items"`
	// Prob is p_j, the probability that the predicate evaluates to TRUE.
	Prob float64 `json:"prob"`
	// Label is an optional human-readable form, e.g. "AVG(A,5) < 70".
	Label string `json:"label,omitempty"`
}

// Q returns the failure probability q_j = 1 - p_j of the leaf.
func (l Leaf) Q() float64 { return 1 - l.Prob }

// Tree is a DNF query tree: an OR of AND nodes over probabilistic leaves.
// An AND-tree is represented as a Tree with a single AND node.
//
// Leaves are stored in a flat slice; Leaf.And groups them under AND nodes.
// AND indices must form the contiguous range 0..NumAnds()-1.
type Tree struct {
	Streams []Stream `json:"streams"`
	Leaves  []Leaf   `json:"leaves"`

	// memoized accessors (not serialized)
	ands [][]int
}

// NumLeaves returns the total number of leaves m.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// NumStreams returns the number of streams s.
func (t *Tree) NumStreams() int { return len(t.Streams) }

// NumAnds returns the number N of AND nodes under the OR root.
func (t *Tree) NumAnds() int {
	n := 0
	for _, l := range t.Leaves {
		if l.And+1 > n {
			n = l.And + 1
		}
	}
	return n
}

// IsAndTree reports whether the tree consists of a single AND node.
func (t *Tree) IsAndTree() bool { return t.NumAnds() <= 1 }

// AndLeaves returns, for each AND node, the indices of its leaves in
// Tree.Leaves order. The result is memoized; callers must not mutate it.
func (t *Tree) AndLeaves() [][]int {
	if t.ands != nil {
		return t.ands
	}
	ands := make([][]int, t.NumAnds())
	for j, l := range t.Leaves {
		ands[l.And] = append(ands[l.And], j)
	}
	t.ands = ands
	return ands
}

// InvalidateCache drops memoized accessors after a mutation of Leaves.
func (t *Tree) InvalidateCache() { t.ands = nil }

// Cost returns the per-item cost of stream k.
func (t *Tree) Cost(k StreamID) float64 { return t.Streams[k].Cost }

// LeafAcquireCost returns the isolated acquisition cost of leaf j,
// d_j * c(S(j)) — the cost of evaluating the leaf with an empty cache.
func (t *Tree) LeafAcquireCost(j int) float64 {
	l := t.Leaves[j]
	return float64(l.Items) * t.Streams[l.Stream].Cost
}

// MaxItems returns D, the maximum number of data items required from any
// stream by any leaf (0 for an empty tree).
func (t *Tree) MaxItems() int {
	d := 0
	for _, l := range t.Leaves {
		if l.Items > d {
			d = l.Items
		}
	}
	return d
}

// StreamMaxItems returns, per stream, the maximum window size required by
// any leaf of the tree (0 for unused streams).
func (t *Tree) StreamMaxItems() []int {
	d := make([]int, len(t.Streams))
	for _, l := range t.Leaves {
		if l.Items > d[l.Stream] {
			d[l.Stream] = l.Items
		}
	}
	return d
}

// AndProb returns the success probability of AND node i assuming
// independent leaves: the product of its leaf probabilities.
func (t *Tree) AndProb(i int) float64 {
	p := 1.0
	for _, j := range t.AndLeaves()[i] {
		p *= t.Leaves[j].Prob
	}
	return p
}

// RootProb returns the probability that the whole DNF query evaluates to
// TRUE: 1 - prod_i (1 - AndProb(i)). Note that with shared streams leaves
// remain statistically independent (sharing is of *data*, not of truth
// values), so the product form is exact.
func (t *Tree) RootProb() float64 {
	q := 1.0
	for i := 0; i < t.NumAnds(); i++ {
		q *= 1 - t.AndProb(i)
	}
	return 1 - q
}

// SharingRatio returns rho, the expected number of leaves per stream:
// total leaves divided by the number of streams actually referenced.
func (t *Tree) SharingRatio() float64 {
	used := map[StreamID]bool{}
	for _, l := range t.Leaves {
		used[l.Stream] = true
	}
	if len(used) == 0 {
		return 0
	}
	return float64(len(t.Leaves)) / float64(len(used))
}

// IsReadOnce reports whether every stream occurs in at most one leaf
// (the classical PAOTR model).
func (t *Tree) IsReadOnce() bool {
	seen := map[StreamID]bool{}
	for _, l := range t.Leaves {
		if seen[l.Stream] {
			return false
		}
		seen[l.Stream] = true
	}
	return true
}

// Validation errors returned by Tree.Validate.
var (
	ErrNoLeaves      = errors.New("query: tree has no leaves")
	ErrNoStreams     = errors.New("query: tree has no streams")
	ErrBadAndIndex   = errors.New("query: AND indices must cover 0..N-1 contiguously")
	ErrBadStream     = errors.New("query: leaf references unknown stream")
	ErrBadItems      = errors.New("query: leaf requires fewer than one data item")
	ErrBadProb       = errors.New("query: leaf probability outside [0,1]")
	ErrNegativeCost  = errors.New("query: stream has negative per-item cost")
	ErrDuplicateName = errors.New("query: duplicate stream name")
)

// Validate checks structural invariants of the tree.
func (t *Tree) Validate() error {
	if len(t.Leaves) == 0 {
		return ErrNoLeaves
	}
	if len(t.Streams) == 0 {
		return ErrNoStreams
	}
	names := make(map[string]bool, len(t.Streams))
	for k, s := range t.Streams {
		if s.Cost < 0 {
			return fmt.Errorf("%w: stream %d (%q) cost %v", ErrNegativeCost, k, s.Name, s.Cost)
		}
		if s.Name != "" {
			if names[s.Name] {
				return fmt.Errorf("%w: %q", ErrDuplicateName, s.Name)
			}
			names[s.Name] = true
		}
	}
	n := t.NumAnds()
	seen := make([]bool, n)
	for j, l := range t.Leaves {
		if l.And < 0 || l.And >= n {
			return fmt.Errorf("%w: leaf %d has AND index %d", ErrBadAndIndex, j, l.And)
		}
		seen[l.And] = true
		if int(l.Stream) < 0 || int(l.Stream) >= len(t.Streams) {
			return fmt.Errorf("%w: leaf %d references stream %d", ErrBadStream, j, l.Stream)
		}
		if l.Items < 1 {
			return fmt.Errorf("%w: leaf %d requires %d items", ErrBadItems, j, l.Items)
		}
		if l.Prob < 0 || l.Prob > 1 {
			return fmt.Errorf("%w: leaf %d has probability %v", ErrBadProb, j, l.Prob)
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: AND node %d has no leaves", ErrBadAndIndex, i)
		}
	}
	return nil
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		Streams: append([]Stream(nil), t.Streams...),
		Leaves:  append([]Leaf(nil), t.Leaves...),
	}
	return c
}

// StreamByName returns the ID of the stream with the given name.
func (t *Tree) StreamByName(name string) (StreamID, bool) {
	for k, s := range t.Streams {
		if s.Name == name {
			return StreamID(k), true
		}
	}
	return -1, false
}

// LeafName returns a printable name for leaf j: its label if set,
// otherwise "<stream>[d]" as in the paper's figures (e.g. "A[2]").
func (t *Tree) LeafName(j int) string {
	l := t.Leaves[j]
	if l.Label != "" {
		return l.Label
	}
	name := t.Streams[l.Stream].Name
	if name == "" {
		name = fmt.Sprintf("S%d", l.Stream)
	}
	return fmt.Sprintf("%s[%d]", name, l.Items)
}

// String renders the tree in a compact single-line DNF form, e.g.
// "(A[1] & A[2] & B[1]) | (C[1] & B[1])".
func (t *Tree) String() string {
	var b strings.Builder
	for i, and := range t.AndLeaves() {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteByte('(')
		for r, j := range and {
			if r > 0 {
				b.WriteString(" & ")
			}
			b.WriteString(t.LeafName(j))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// NewAndTree builds a single-AND tree from streams and leaves; the And
// field of each leaf is forced to zero.
func NewAndTree(streams []Stream, leaves []Leaf) *Tree {
	ls := append([]Leaf(nil), leaves...)
	for j := range ls {
		ls[j].And = 0
	}
	return &Tree{Streams: streams, Leaves: ls}
}

package query

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Canonical shape hashing: two queries have the same *shape* when their
// DNF trees are equal up to the order of AND terms under the OR root and
// the order of leaves within each AND term — AND and OR are commutative,
// so the planner, the executor and the verdict cannot distinguish such
// trees. A multi-tenant fleet registers many copies of the same shape
// under different identities; interning queries by canonical shape lets
// the tick path plan and evaluate each distinct shape once and fan the
// verdict out to every subscriber (see internal/service).
//
// The canonical form is a deterministic rendering: every leaf becomes a
// descriptor of its stream (name, falling back to registry index, plus
// the static per-item cost), window, probability and predicate label;
// leaf descriptors are sorted within each AND term and AND terms are
// sorted under the OR. The predicate label is part of the descriptor on
// purpose: equal probabilities on different predicates give equal *cost
// models* but different verdicts, and shape classes must be safe to share
// verdicts across.

// descSep separates the fields of one leaf descriptor, leafSep the leaves
// of one AND term, andSep the AND terms. Control characters cannot occur
// in parsed predicate labels or stream names, so the rendering cannot
// collide across field boundaries.
const (
	descSep = "\x1f"
	leafSep = "\x1e"
	andSep  = "\x1d"
)

// estimatorDriven marks a leaf whose probability is learned online rather
// than annotated: such leaves share a shape only with other estimator-
// driven leaves of the same predicate (whose estimates then coincide by
// construction, since estimates are keyed by predicate label).
const estimatorDriven = "~"

// CanonicalShape renders the tree's canonical shape string. probs, when
// non-nil, overrides the per-leaf probability descriptor: NaN entries mark
// estimator-driven leaves (the engine passes its annotation vector, where
// NaN means "no [p=..] annotation"); a nil probs uses the tree's own leaf
// probabilities verbatim.
func (t *Tree) CanonicalShape(probs []float64) string {
	ands := t.AndLeaves()
	terms := make([]string, 0, len(ands))
	var b strings.Builder
	leaves := make([]string, 0, 8)
	for _, and := range ands {
		leaves = leaves[:0]
		for _, j := range and {
			l := t.Leaves[j]
			b.Reset()
			name := t.Streams[l.Stream].Name
			if name == "" {
				name = "#" + strconv.Itoa(int(l.Stream))
			}
			b.WriteString(name)
			b.WriteString(descSep)
			b.WriteString(strconv.FormatFloat(t.Streams[l.Stream].Cost, 'g', -1, 64))
			b.WriteString(descSep)
			b.WriteString(strconv.Itoa(l.Items))
			b.WriteString(descSep)
			p := l.Prob
			if probs != nil {
				p = probs[j]
			}
			if math.IsNaN(p) {
				b.WriteString(estimatorDriven)
			} else {
				b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
			}
			b.WriteString(descSep)
			b.WriteString(l.Label)
			leaves = append(leaves, b.String())
		}
		sort.Strings(leaves)
		terms = append(terms, strings.Join(leaves, leafSep))
	}
	sort.Strings(terms)
	return strings.Join(terms, andSep)
}

// ShapeHash hashes a canonical shape string to a compact 64-bit id
// (FNV-1a). Hashes are for display and cache keying; equivalence-class
// membership compares the canonical strings themselves, so a collision
// can never merge two distinct shapes.
func ShapeHash(canon string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(canon))
	return h.Sum64()
}

package query

import (
	"fmt"
	"strings"
)

// Dot renders the DNF tree in Graphviz DOT format: the OR root, one node
// per AND, and one labeled node per leaf ("A[2] p=0.10"). Useful for
// inspecting generated instances and for documentation.
func (t *Tree) Dot() string {
	var b strings.Builder
	b.WriteString("digraph query {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  or [label=\"OR\", shape=diamond];\n")
	for i := range t.AndLeaves() {
		fmt.Fprintf(&b, "  and%d [label=\"AND %d\", shape=box];\n", i, i+1)
		fmt.Fprintf(&b, "  or -> and%d;\n", i)
	}
	for j, l := range t.Leaves {
		fmt.Fprintf(&b, "  leaf%d [label=\"%s\\np=%.3g\", shape=ellipse];\n",
			j, escapeDot(t.LeafName(j)), l.Prob)
		fmt.Fprintf(&b, "  and%d -> leaf%d;\n", l.And, j)
	}
	// One node per stream, dashed edges from the leaves that read it —
	// this makes sharing visible at a glance.
	used := map[StreamID]bool{}
	for _, l := range t.Leaves {
		used[l.Stream] = true
	}
	for k, s := range t.Streams {
		if !used[StreamID(k)] {
			continue
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("S%d", k)
		}
		fmt.Fprintf(&b, "  stream%d [label=\"%s\\nc=%.3g\", shape=cylinder];\n",
			k, escapeDot(name), s.Cost)
	}
	for j, l := range t.Leaves {
		fmt.Fprintf(&b, "  leaf%d -> stream%d [style=dashed, arrowhead=none];\n", j, l.Stream)
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

package query

import (
	"bytes"
	"math"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func fig1bTree() *Tree {
	// Figure 1(b): (AVG(A,5)<70 AND MAX(B,4)>100) OR (C<3 AND MAX(A,10)>80)
	return &Tree{
		Streams: []Stream{{Name: "A", Cost: 2}, {Name: "B", Cost: 3}, {Name: "C", Cost: 1}},
		Leaves: []Leaf{
			{And: 0, Stream: 0, Items: 5, Prob: 0.6, Label: "AVG(A,5) < 70"},
			{And: 0, Stream: 1, Items: 4, Prob: 0.3, Label: "MAX(B,4) > 100"},
			{And: 1, Stream: 2, Items: 1, Prob: 0.5, Label: "C < 3"},
			{And: 1, Stream: 0, Items: 10, Prob: 0.4, Label: "MAX(A,10) > 80"},
		},
	}
}

func TestTreeAccessors(t *testing.T) {
	tr := fig1bTree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.NumLeaves(); got != 4 {
		t.Errorf("NumLeaves = %d", got)
	}
	if got := tr.NumAnds(); got != 2 {
		t.Errorf("NumAnds = %d", got)
	}
	if tr.IsAndTree() {
		t.Error("IsAndTree should be false")
	}
	if tr.IsReadOnce() {
		t.Error("IsReadOnce should be false (A occurs twice)")
	}
	if got := tr.MaxItems(); got != 10 {
		t.Errorf("MaxItems = %d", got)
	}
	want := []int{10, 4, 1}
	for k, d := range tr.StreamMaxItems() {
		if d != want[k] {
			t.Errorf("StreamMaxItems[%d] = %d, want %d", k, d, want[k])
		}
	}
	if got := tr.LeafAcquireCost(0); got != 10 {
		t.Errorf("LeafAcquireCost(0) = %v, want 10", got)
	}
	if got := tr.AndProb(0); math.Abs(got-0.18) > 1e-12 {
		t.Errorf("AndProb(0) = %v, want 0.18", got)
	}
	wantRoot := 1 - (1-0.18)*(1-0.2)
	if got := tr.RootProb(); math.Abs(got-wantRoot) > 1e-12 {
		t.Errorf("RootProb = %v, want %v", got, wantRoot)
	}
	if got := tr.SharingRatio(); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("SharingRatio = %v, want 4/3", got)
	}
	if id, ok := tr.StreamByName("B"); !ok || id != 1 {
		t.Errorf("StreamByName(B) = %v, %v", id, ok)
	}
	if _, ok := tr.StreamByName("Z"); ok {
		t.Error("StreamByName(Z) should fail")
	}
	if got := tr.LeafName(2); got != "C < 3" {
		t.Errorf("LeafName(2) = %q", got)
	}
	s := tr.String()
	if !strings.Contains(s, " | ") || !strings.Contains(s, " & ") {
		t.Errorf("String() = %q", s)
	}
}

func TestAndLeavesGrouping(t *testing.T) {
	tr := fig1bTree()
	ands := tr.AndLeaves()
	if len(ands) != 2 || len(ands[0]) != 2 || len(ands[1]) != 2 {
		t.Fatalf("AndLeaves = %v", ands)
	}
	if ands[0][0] != 0 || ands[0][1] != 1 || ands[1][0] != 2 || ands[1][1] != 3 {
		t.Errorf("AndLeaves = %v", ands)
	}
	// Mutation + InvalidateCache refreshes the grouping.
	tr.Leaves = append(tr.Leaves, Leaf{And: 0, Stream: 2, Items: 1, Prob: 0.9})
	tr.InvalidateCache()
	if got := len(tr.AndLeaves()[0]); got != 3 {
		t.Errorf("after mutation AndLeaves[0] has %d leaves", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Tree)
		want error
	}{
		{"no leaves", func(tr *Tree) { tr.Leaves = nil }, ErrNoLeaves},
		{"no streams", func(tr *Tree) { tr.Streams = nil }, ErrNoStreams},
		{"bad and", func(tr *Tree) { tr.Leaves[0].And = 7 }, ErrBadAndIndex},
		{"negative and", func(tr *Tree) { tr.Leaves[0].And = -1 }, ErrBadAndIndex},
		{"gap in ands", func(tr *Tree) { tr.Leaves[2].And = 2; tr.Leaves[3].And = 2 }, ErrBadAndIndex},
		{"bad stream", func(tr *Tree) { tr.Leaves[1].Stream = 9 }, ErrBadStream},
		{"zero items", func(tr *Tree) { tr.Leaves[0].Items = 0 }, ErrBadItems},
		{"bad prob", func(tr *Tree) { tr.Leaves[0].Prob = 1.5 }, ErrBadProb},
		{"neg prob", func(tr *Tree) { tr.Leaves[0].Prob = -0.1 }, ErrBadProb},
		{"neg cost", func(tr *Tree) { tr.Streams[0].Cost = -1 }, ErrNegativeCost},
		{"dup name", func(tr *Tree) { tr.Streams[1].Name = "A" }, ErrDuplicateName},
	}
	for _, c := range cases {
		tr := fig1bTree()
		c.mut(tr)
		tr.InvalidateCache()
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid tree", c.name)
			continue
		}
		if !strings.Contains(err.Error(), strings.TrimPrefix(c.want.Error(), "query: ")) {
			t.Errorf("%s: error %q does not wrap %q", c.name, err, c.want)
		}
	}
	// The pristine tree must validate.
	if err := fig1bTree().Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := fig1bTree()
	c := tr.Clone()
	c.Leaves[0].Prob = 0.99
	c.Streams[0].Cost = 42
	if tr.Leaves[0].Prob == 0.99 || tr.Streams[0].Cost == 42 {
		t.Error("Clone shares storage with original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := fig1bTree()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != tr.String() {
		t.Errorf("round trip mismatch: %q vs %q", got.String(), tr.String())
	}
	if got.NumLeaves() != tr.NumLeaves() || got.NumStreams() != tr.NumStreams() {
		t.Error("round trip lost leaves or streams")
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	tr := fig1bTree()
	path := filepath.Join(t.TempDir(), "tree.json")
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != tr.String() {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadFile on missing file should fail")
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	bad := `{"streams":[{"name":"A","cost":1}],"leaves":[{"and":0,"stream":0,"items":0,"prob":0.5}]}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("Decode accepted a tree with zero items")
	}
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
}

func TestJSONRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		tr := &Tree{}
		n := 1 + rng.IntN(3)
		s := 1 + rng.IntN(3)
		for k := 0; k < s; k++ {
			tr.Streams = append(tr.Streams, Stream{Cost: rng.Float64() * 10})
		}
		for i := 0; i < n; i++ {
			for r := 0; r <= rng.IntN(3); r++ {
				tr.Leaves = append(tr.Leaves, Leaf{
					And: i, Stream: StreamID(rng.IntN(s)),
					Items: 1 + rng.IntN(5), Prob: rng.Float64(),
				})
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.NumLeaves() != tr.NumLeaves() {
			return false
		}
		for j := range got.Leaves {
			if got.Leaves[j] != tr.Leaves[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewAndTreeForcesAndZero(t *testing.T) {
	tr := NewAndTree(
		[]Stream{{Name: "A", Cost: 1}},
		[]Leaf{{And: 3, Stream: 0, Items: 1, Prob: 0.5}, {And: 7, Stream: 0, Items: 2, Prob: 0.2}},
	)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.IsAndTree() {
		t.Error("NewAndTree should produce a single-AND tree")
	}
}

func TestLeafNameFallbacks(t *testing.T) {
	tr := &Tree{
		Streams: []Stream{{Cost: 1}},
		Leaves:  []Leaf{{And: 0, Stream: 0, Items: 3, Prob: 0.5}},
	}
	if got := tr.LeafName(0); got != "S0[3]" {
		t.Errorf("LeafName = %q, want S0[3]", got)
	}
	tr.Streams[0].Name = "HR"
	if got := tr.LeafName(0); got != "HR[3]" {
		t.Errorf("LeafName = %q, want HR[3]", got)
	}
}

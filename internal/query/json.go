package query

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MarshalJSON/UnmarshalJSON use the default struct encoding; the wrapper
// functions below add validation and convenience I/O.

// Encode writes the tree as indented JSON to w.
func Encode(w io.Writer, t *Tree) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads a tree from JSON and validates it.
func Decode(r io.Reader) (*Tree, error) {
	var t Tree
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("query: decoding tree: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// SaveFile writes the tree to a JSON file.
func SaveFile(path string, t *Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Encode(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads and validates a tree from a JSON file.
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

package sched

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"paotr/internal/query"
)

// section2BTree builds the 7-leaf, 3-AND DNF tree of Figure 3 / Section
// II-B with the given leaf probabilities (p[0] is p_1, ... p[6] is p_7) and
// unit stream costs unless costs is non-nil.
//
// Leaves, in schedule order l1..l7:
//
//	l1 = AND1:A[1], l2 = AND2:B[1], l3 = AND1:C[1], l4 = AND1:D[1],
//	l5 = AND2:C[1], l6 = AND3:B[1], l7 = AND3:D[1]
func section2BTree(p [7]float64, costs []float64) (*query.Tree, Schedule) {
	c := []float64{1, 1, 1, 1}
	if costs != nil {
		c = costs
	}
	t := &query.Tree{
		Streams: []query.Stream{
			{Name: "A", Cost: c[0]}, {Name: "B", Cost: c[1]},
			{Name: "C", Cost: c[2]}, {Name: "D", Cost: c[3]},
		},
		Leaves: []query.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: p[0]}, // l1
			{And: 1, Stream: 1, Items: 1, Prob: p[1]}, // l2
			{And: 0, Stream: 2, Items: 1, Prob: p[2]}, // l3
			{And: 0, Stream: 3, Items: 1, Prob: p[3]}, // l4
			{And: 1, Stream: 2, Items: 1, Prob: p[4]}, // l5
			{And: 2, Stream: 1, Items: 1, Prob: p[5]}, // l6
			{And: 2, Stream: 3, Items: 1, Prob: p[6]}, // l7
		},
	}
	return t, Schedule{0, 1, 2, 3, 4, 5, 6}
}

// section2BClosedForm is the cost expression derived step by step in
// Section II-B:
//
//	C = c(A) + c(B) + (p1 + (1-p1)p2) c(C)
//	    + (p1 p3 + (1-p1 p3)(1-p2 p5) p6) c(D)
func section2BClosedForm(p [7]float64, c []float64) float64 {
	return c[0] + c[1] +
		(p[0]+(1-p[0])*p[1])*c[2] +
		(p[0]*p[2]+(1-p[0]*p[2])*(1-p[1]*p[4])*p[5])*c[3]
}

func TestSection2BExample(t *testing.T) {
	p := [7]float64{0.3, 0.6, 0.5, 0.8, 0.2, 0.7, 0.4}
	tree, s := section2BTree(p, nil)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	want := section2BClosedForm(p, []float64{1, 1, 1, 1})
	if got := Cost(tree, s); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v (paper closed form)", got, want)
	}
	if got := ExactCostEnum(tree, s); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExactCostEnum = %v, want %v", got, want)
	}
}

func TestSection2BExampleRandomProbs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		var p [7]float64
		for i := range p {
			p[i] = rng.Float64()
		}
		costs := []float64{1 + 9*rng.Float64(), 1 + 9*rng.Float64(),
			1 + 9*rng.Float64(), 1 + 9*rng.Float64()}
		tree, s := section2BTree(p, costs)
		want := section2BClosedForm(p, costs)
		if got := Cost(tree, s); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Cost = %v, want %v (p=%v c=%v)", trial, got, want, p, costs)
		}
	}
}

// randomTree builds a random DNF tree with up to maxAnds AND nodes, up to
// maxLeavesPerAnd leaves each, windows up to maxD, and a small stream pool
// to force sharing.
func randomTree(rng *rand.Rand, maxAnds, maxLeavesPerAnd, maxD int) *query.Tree {
	nAnds := 1 + rng.IntN(maxAnds)
	nStreams := 1 + rng.IntN(4)
	tr := &query.Tree{}
	for k := 0; k < nStreams; k++ {
		tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 9*rng.Float64()})
	}
	for i := 0; i < nAnds; i++ {
		n := 1 + rng.IntN(maxLeavesPerAnd)
		for r := 0; r < n; r++ {
			tr.Leaves = append(tr.Leaves, query.Leaf{
				And:    i,
				Stream: query.StreamID(rng.IntN(nStreams)),
				Items:  1 + rng.IntN(maxD),
				Prob:   rng.Float64(),
			})
		}
	}
	return tr
}

func randomSchedule(rng *rand.Rand, m int) Schedule {
	s := make(Schedule, m)
	for j := range s {
		s[j] = j
	}
	rng.Shuffle(m, func(a, b int) { s[a], s[b] = s[b], s[a] })
	return s
}

// TestCostMatchesTruthTable is the central cross-validation: the closed
// form of Proposition 2 must equal the exact expectation of the pull-model
// executor over all truth assignments, for arbitrary trees and schedules.
func TestCostMatchesTruthTable(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 500; trial++ {
		tr := randomTree(rng, 4, 4, 3)
		if tr.NumLeaves() > 14 {
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		s := randomSchedule(rng, tr.NumLeaves())
		want := ExactCostEnum(tr, s)
		got := Cost(tr, s)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: Cost=%v truth-table=%v\ntree=%v\nschedule=%v",
				trial, got, want, tr, s)
		}
	}
}

// TestCostMatchesTruthTableQuick drives the same cross-validation through
// testing/quick, with the seed as the generated input.
func TestCostMatchesTruthTableQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		tr := randomTree(rng, 3, 3, 3)
		if tr.NumLeaves() > 12 {
			return true
		}
		s := randomSchedule(rng, tr.NumLeaves())
		return math.Abs(Cost(tr, s)-ExactCostEnum(tr, s)) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAndTreeCostMatchesGeneralCost(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 300; trial++ {
		tr := randomTree(rng, 1, 8, 4)
		s := randomSchedule(rng, tr.NumLeaves())
		fast := AndTreeCost(tr, s)
		general := Cost(tr, s)
		if math.Abs(fast-general) > 1e-9*(1+general) {
			t.Fatalf("trial %d: AndTreeCost=%v Cost=%v tree=%v", trial, fast, general, tr)
		}
	}
}

func TestPrefixMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 300; trial++ {
		tr := randomTree(rng, 4, 4, 3)
		s := randomSchedule(rng, tr.NumLeaves())
		p := NewPrefix(tr)
		sum := 0.0
		for _, j := range s {
			sum += p.Append(j)
		}
		want := Cost(tr, s)
		if math.Abs(p.Cost()-want) > 1e-9*(1+want) || math.Abs(sum-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: prefix=%v sum=%v want=%v", trial, p.Cost(), sum, want)
		}
	}
}

// TestPrefixPopRestores verifies that Append followed by Pop is a no-op by
// interleaving random appends/pops and re-checking the final cost.
func TestPrefixPopRestores(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 3, 4, 3)
		m := tr.NumLeaves()
		p := NewPrefix(tr)
		var stack []int
		inPrefix := make([]bool, m)
		for step := 0; step < 80; step++ {
			if len(stack) > 0 && (len(stack) == m || rng.Float64() < 0.45) {
				j := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				inPrefix[j] = false
				p.Pop()
			} else {
				j := rng.IntN(m)
				if inPrefix[j] {
					continue
				}
				inPrefix[j] = true
				stack = append(stack, j)
				p.Append(j)
			}
			want := Cost(tr, Schedule(p.Order()))
			if math.Abs(p.Cost()-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d step %d: prefix cost %v, recompute %v (order %v)",
					trial, step, p.Cost(), want, p.Order())
			}
		}
	}
}

func TestMonteCarloConvergesToCost(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 10; trial++ {
		tr := randomTree(rng, 3, 4, 3)
		s := randomSchedule(rng, tr.NumLeaves())
		exact := Cost(tr, s)
		est := MonteCarloCost(tr, s, 200000, rng)
		if math.Abs(est-exact) > 0.05*(1+exact) {
			t.Errorf("trial %d: Monte-Carlo %v vs exact %v", trial, est, exact)
		}
	}
}

// TestCostScheduleInvariance: the expected cost depends on the schedule,
// but leaves of probability 1 at the end of an AND may be permuted freely;
// more fundamentally, reversing a schedule of an OR of single-leaf ANDs
// with identical leaves must not change cost.
func TestCostSymmetricLeaves(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Name: "A", Cost: 2}},
		Leaves: []query.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.5},
			{And: 1, Stream: 0, Items: 1, Prob: 0.5},
			{And: 2, Stream: 0, Items: 1, Prob: 0.5},
		},
	}
	a := Cost(tr, Schedule{0, 1, 2})
	b := Cost(tr, Schedule{2, 1, 0})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("symmetric schedules differ: %v vs %v", a, b)
	}
	// Single-leaf ANDs sharing one item: only the first evaluation pays.
	// Cost = c (first leaf always evaluated; later leaves are free).
	if math.Abs(a-2) > 1e-12 {
		t.Errorf("cost = %v, want 2 (single shared item paid once)", a)
	}
}

func TestExecutorShortCircuits(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 1}, {Cost: 10}},
		Leaves: []query.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.5},
			{And: 0, Stream: 1, Items: 1, Prob: 0.5},
			{And: 1, Stream: 1, Items: 1, Prob: 0.5},
		},
	}
	e := NewExecutor(tr)
	// Leaf 0 FALSE: AND0 dead, leaf 1 skipped, leaf 2 evaluated.
	res := e.Execute(Schedule{0, 1, 2}, []bool{false, true, true})
	if res.Cost != 1+10 || !res.Value || res.Evaluated != 2 {
		t.Errorf("unexpected result %+v", res)
	}
	// Leaf 0,1 TRUE: AND0 TRUE resolves the OR; leaf 2 not evaluated.
	res = e.Execute(Schedule{0, 1, 2}, []bool{true, true, false})
	if res.Cost != 11 || !res.Value || res.Evaluated != 2 {
		t.Errorf("unexpected result %+v", res)
	}
	// All FALSE: leaf 0 kills AND0, leaf 2 kills AND1 -> OR FALSE.
	res = e.Execute(Schedule{0, 1, 2}, []bool{false, true, false})
	if res.Cost != 11 || res.Value || res.Evaluated != 2 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestScheduleValidate(t *testing.T) {
	tr := randomTree(rand.New(rand.NewPCG(1, 2)), 2, 3, 2)
	m := tr.NumLeaves()
	good := make(Schedule, m)
	for i := range good {
		good[i] = i
	}
	if err := good.Validate(tr); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := good[:m-1].Validate(tr); err == nil {
		t.Error("short schedule accepted")
	}
	bad := good.Clone()
	bad[0] = bad[1]
	if err := bad.Validate(tr); err == nil {
		t.Error("duplicate leaf accepted")
	}
}

func TestIsDepthFirst(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 1}},
		Leaves: []query.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.5},
			{And: 0, Stream: 0, Items: 1, Prob: 0.5},
			{And: 1, Stream: 0, Items: 1, Prob: 0.5},
		},
	}
	if !(Schedule{0, 1, 2}).IsDepthFirst(tr) {
		t.Error("0,1,2 should be depth-first")
	}
	if !(Schedule{2, 0, 1}).IsDepthFirst(tr) {
		t.Error("2,0,1 should be depth-first")
	}
	if (Schedule{0, 2, 1}).IsDepthFirst(tr) {
		t.Error("0,2,1 should not be depth-first")
	}
}

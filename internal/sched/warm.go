package sched

import "paotr/internal/query"

// Warm describes data items already held in the device cache when a
// schedule starts: Warm[k][t-1] is true when the t-th most recent item of
// stream k is in memory, so no leaf pays for it. A nil Warm (or a short
// row) means a cold cache.
//
// Warm state generalizes the NItems mechanism of the paper's Algorithm 1
// (which tracks a per-stream prefix of acquired items) to arbitrary cached
// subsets, as arise in continuous query processing: after the clock
// advances, the newest item is missing while older items are still held.
type Warm [][]bool

// Has reports whether item t (1-based) of stream k is cached.
func (w Warm) Has(k query.StreamID, t int) bool {
	if w == nil || int(k) >= len(w) {
		return false
	}
	row := w[k]
	return t-1 < len(row) && row[t-1]
}

// WarmFromCounts builds a prefix-form warm state: counts[k] most recent
// items of stream k are cached. This is exactly the NItems array of
// Algorithm 1.
func WarmFromCounts(counts []int) Warm {
	w := make(Warm, len(counts))
	for k, n := range counts {
		row := make([]bool, n)
		for i := range row {
			row[i] = true
		}
		w[k] = row
	}
	return w
}

// CostWarm is Cost with a warm cache: items already held contribute zero
// acquisition cost for every leaf. CostWarm(t, s, nil) == Cost(t, s).
func CostWarm(t *query.Tree, s Schedule, w Warm) float64 {
	if w == nil {
		return Cost(t, s)
	}
	return costImpl(t, s, w)
}

// AndTreeCostWarm is AndTreeCost with a warm cache.
func AndTreeCostWarm(t *query.Tree, s Schedule, w Warm) float64 {
	if !t.IsAndTree() {
		panic("sched: AndTreeCostWarm on a tree with multiple AND nodes")
	}
	acquired := make([][]bool, t.NumStreams())
	maxD := t.StreamMaxItems()
	for k := range acquired {
		acquired[k] = make([]bool, maxD[k])
		for d := range acquired[k] {
			acquired[k][d] = w.Has(query.StreamID(k), d+1)
		}
	}
	reach := 1.0
	total := 0.0
	for _, j := range s {
		l := t.Leaves[j]
		missing := 0
		for d := 0; d < l.Items; d++ {
			if !acquired[l.Stream][d] {
				missing++
				acquired[l.Stream][d] = true
			}
		}
		if missing > 0 {
			total += reach * float64(missing) * t.Streams[l.Stream].Cost
		}
		reach *= l.Prob
	}
	return total
}

// ExecutorWarm executes one truth assignment starting from a warm cache;
// used to validate CostWarm.
func ExecutorWarm(t *query.Tree, s Schedule, truth []bool, w Warm) float64 {
	acquired := make([][]bool, t.NumStreams())
	maxD := t.StreamMaxItems()
	for k := range acquired {
		acquired[k] = make([]bool, maxD[k])
		for d := range acquired[k] {
			acquired[k][d] = w.Has(query.StreamID(k), d+1)
		}
	}
	nAnds := t.NumAnds()
	andFalse := make([]bool, nAnds)
	andLeft := make([]int, nAnds)
	for i, and := range t.AndLeaves() {
		andLeft[i] = len(and)
	}
	falseAnds := 0
	cost := 0.0
	for _, j := range s {
		l := t.Leaves[j]
		if andFalse[l.And] {
			continue
		}
		for d := 0; d < l.Items; d++ {
			if !acquired[l.Stream][d] {
				acquired[l.Stream][d] = true
				cost += t.Streams[l.Stream].Cost
			}
		}
		andLeft[l.And]--
		if !truth[j] {
			andFalse[l.And] = true
			falseAnds++
			if falseAnds == nAnds {
				break
			}
		} else if andLeft[l.And] == 0 {
			break
		}
	}
	return cost
}

// ExactCostEnumWarm is the truth-table reference for CostWarm.
func ExactCostEnumWarm(t *query.Tree, s Schedule, w Warm) float64 {
	m := t.NumLeaves()
	if m > 30 {
		panic("sched: ExactCostEnumWarm limited to 30 leaves")
	}
	truth := make([]bool, m)
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		prob := 1.0
		for j := 0; j < m; j++ {
			if mask&(1<<uint(j)) != 0 {
				truth[j] = true
				prob *= t.Leaves[j].Prob
			} else {
				truth[j] = false
				prob *= 1 - t.Leaves[j].Prob
			}
		}
		if prob == 0 {
			continue
		}
		total += prob * ExecutorWarm(t, s, truth, w)
	}
	return total
}

package sched

import (
	"sync"

	"paotr/internal/query"
)

// Cost returns the expected cost of evaluating tree t under schedule s,
// using the closed form of Section IV-A / Proposition 2 of the paper.
//
// For every scheduled leaf l_{i,j} (AND node i) and every item index t in
// 1..d_{i,j} of its stream S_k, the expected cost of acquiring that item is
// zero when an earlier leaf of the same AND node also requires it;
// otherwise it is
//
//	C_{i,j,t} = F1 * F2 * F3 * c(S_k)
//
// where
//
//	F1 = prod over leaves l_{r,s} in L_{k,t} preceding l_{i,j}
//	     of (1 - prod_{l_{r,u} before l_{r,s} in same AND} p_{r,u})
//	     -- the probability that no earlier "first-of-its-AND" leaf
//	        requiring the item was actually evaluated (hence the item was
//	        not yet acquired, and none of those AND nodes is TRUE);
//	F2 = prod over fully evaluated AND nodes a (before l_{i,j}) that have
//	     no leaf in L_{k,t}, of (1 - prod_r p_{a,r})
//	     -- the probability that no completed AND node already made the OR
//	        root TRUE;
//	F3 = prod over same-AND leaves before l_{i,j} of their p
//	     -- the probability that the evaluation of AND node i reached
//	        l_{i,j} without being short-circuited.
//
// L_{k,t} is the set of leaves that require the t-th item of stream k and
// are the first of their respective AND node (in schedule order) to do so.
//
// s may be a prefix of a schedule (any sequence of distinct leaves): the
// result is then the expected cost incurred by those leaves under any
// completion, since a leaf's contribution depends only on its predecessors.
//
// The complexity is O(|L| * D * N^2) with |L| leaves, N AND nodes and D the
// maximum window size, as in the paper.
func Cost(t *query.Tree, s Schedule) float64 { return costImpl(t, s, nil) }

// costScratch pools costImpl's working arrays — the closed form runs
// once per AND candidate per replan, and on the service's steady tick
// path its temporaries dominated planner allocations. The first table is
// flattened to one backing slice indexed (off[k]+t-1)*nAnds + a.
type costScratch struct {
	pos        []int
	prefixProb []float64
	andInt     []int     // completedPos | andScheduled | andSize
	andFloat   []float64 // andAllProb | andAcc
	maxD       []int
	off        []int
	first      []int32
}

var costScratchPool = sync.Pool{New: func() any { return new(costScratch) }}

func scratchInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

func scratchFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// costImpl implements Cost and CostWarm: items already cached in w
// contribute zero cost for every leaf, and nothing else changes (the F1,
// F2, F3 factors concern only uncached items).
func costImpl(t *query.Tree, s Schedule, w Warm) float64 {
	m := t.NumLeaves()
	if m == 0 || len(s) == 0 {
		return 0
	}
	nAnds := t.NumAnds()

	sc := costScratchPool.Get().(*costScratch)
	defer costScratchPool.Put(sc)

	maxD := scratchInts(&sc.maxD, t.NumStreams())
	for k := range maxD {
		maxD[k] = 0
	}
	for _, l := range t.Leaves {
		if l.Items > maxD[l.Stream] {
			maxD[l.Stream] = l.Items
		}
	}

	// pos[j] = position of leaf j in s, or -1 if unscheduled.
	pos := scratchInts(&sc.pos, m)
	for j := range pos {
		pos[j] = -1
	}
	for i, j := range s {
		pos[j] = i
	}

	// prefixProb[j] = product of p over same-AND leaves strictly before
	// leaf j in the schedule: the probability that leaf j is evaluated,
	// conditioned on its AND node being reached at all.
	prefixProb := scratchFloats(&sc.prefixProb, m)
	// completedPos[a] = schedule position after which all leaves of AND a
	// have been scheduled, or -1 if AND a is not fully scheduled.
	// andAllProb[a] = product of all leaf probabilities of AND a.
	// andAcc[a] = running product while scanning s.
	andInt := scratchInts(&sc.andInt, 3*nAnds)
	completedPos, andScheduled, andSize := andInt[:nAnds], andInt[nAnds:2*nAnds], andInt[2*nAnds:]
	andFloat := scratchFloats(&sc.andFloat, 2*nAnds)
	andAllProb, andAcc := andFloat[:nAnds], andFloat[nAnds:]
	for a := 0; a < nAnds; a++ {
		completedPos[a] = -1
		andScheduled[a] = 0
		andSize[a] = 0
		andAllProb[a] = 1
		andAcc[a] = 1
	}
	for _, l := range t.Leaves {
		andAllProb[l.And] *= l.Prob
		andSize[l.And]++
	}
	for i, j := range s {
		l := t.Leaves[j]
		prefixProb[j] = andAcc[l.And]
		andAcc[l.And] *= l.Prob
		andScheduled[l.And]++
		if andScheduled[l.And] == andSize[l.And] {
			completedPos[l.And] = i
		}
	}

	// first[(off[k]+t-1)*nAnds + a] = leaf index of the first scheduled
	// leaf (in schedule order) of AND a requiring the t-th item of stream
	// k, or -1.
	off := scratchInts(&sc.off, len(maxD))
	rows := 0
	for k := range maxD {
		off[k] = rows
		rows += maxD[k]
	}
	if cap(sc.first) < rows*nAnds {
		sc.first = make([]int32, rows*nAnds)
	}
	first := sc.first[:rows*nAnds]
	for i := range first {
		first[i] = -1
	}
	for _, j := range s { // schedule order => first occurrence wins
		l := t.Leaves[j]
		base := off[l.Stream]
		for d := 0; d < l.Items; d++ {
			if p := &first[(base+d)*nAnds+l.And]; *p == -1 {
				*p = int32(j)
			}
		}
	}

	total := 0.0
	for _, j := range s {
		l := t.Leaves[j]
		pj := pos[j]
		c := t.Streams[l.Stream].Cost
		base := off[l.Stream]
		for d := 0; d < l.Items; d++ {
			if w.Has(l.Stream, d+1) {
				continue // item already in the device cache: free
			}
			lkt := first[(base+d)*nAnds : (base+d+1)*nAnds]
			// Case 1: an earlier leaf of the same AND requires the item.
			if f := lkt[l.And]; int(f) != j {
				continue // f precedes j by first-occurrence construction
			}
			f1 := 1.0
			for a, r := range lkt {
				if r == -1 || a == l.And || pos[r] >= pj {
					continue
				}
				f1 *= 1 - prefixProb[r]
			}
			f2 := 1.0
			for a := 0; a < nAnds; a++ {
				if a == l.And || lkt[a] != -1 {
					continue
				}
				if cp := completedPos[a]; cp >= 0 && cp < pj {
					f2 *= 1 - andAllProb[a]
				}
			}
			total += f1 * f2 * prefixProb[j] * c
		}
	}
	return total
}

// AndTreeCost returns the expected cost of schedule s on a single-AND tree
// in O(m + s) time: the j-th evaluated leaf is reached iff all previous
// leaves evaluated to TRUE, and it pays only for items of its stream not
// already acquired by earlier leaves. Like Cost, it accepts schedule
// prefixes.
//
// It panics if the tree has more than one AND node.
func AndTreeCost(t *query.Tree, s Schedule) float64 {
	if !t.IsAndTree() {
		panic("sched: AndTreeCost on a tree with multiple AND nodes")
	}
	acquired := make([]int, t.NumStreams())
	reach := 1.0 // probability that evaluation reaches the current leaf
	total := 0.0
	for _, j := range s {
		l := t.Leaves[j]
		if extra := l.Items - acquired[l.Stream]; extra > 0 {
			total += reach * float64(extra) * t.Streams[l.Stream].Cost
			acquired[l.Stream] = l.Items
		}
		reach *= l.Prob
	}
	return total
}

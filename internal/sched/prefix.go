package sched

import "paotr/internal/query"

// Prefix incrementally evaluates the expected cost of a schedule prefix of
// a DNF tree under the Proposition 2 semantics. Because the cost
// contribution of a leaf depends only on the leaves scheduled before it,
// the expected cost of a partial schedule is a lower bound on the cost of
// any completion — the key fact exploited by the branch-and-bound searches
// and by the dynamic AND-ordered heuristics.
//
// Append adds a leaf to the prefix and returns its (exact) expected cost
// contribution; Pop undoes the most recent Append in O(D) time.
type Prefix struct {
	t     *query.Tree
	warm  Warm
	words int // bitset words per (stream,item) slot

	order []int // appended leaves, in order

	pi      []float64 // per AND: product of p over appended leaves
	cnt     []int     // per AND: number of appended leaves
	size    []int     // per AND: total number of leaves
	andAll  []float64 // per AND: product of all leaf probabilities
	done    []int     // completed ANDs, in completion order
	acq     [][]float64
	has     [][]uint64 // has[k][t*words+w]: ANDs owning a leaf in L_{k,t}
	maxD    []int
	cost    float64
	history []undoRec
}

type undoRec struct {
	leaf      int
	delta     float64
	changedTs []int
	oldAcq    []float64
	completed bool
}

// NewPrefix creates an empty prefix evaluator for tree t.
func NewPrefix(t *query.Tree) *Prefix { return NewPrefixWarm(t, nil) }

// NewPrefixWarm creates a prefix evaluator that treats the items cached in
// w as free (see CostWarm).
func NewPrefixWarm(t *query.Tree, w Warm) *Prefix {
	p := &Prefix{}
	p.ReinitWarm(t, w)
	return p
}

// ReinitWarm re-initializes p as an empty prefix evaluator for tree t —
// equivalent to NewPrefixWarm(t, w) but reusing p's buffers when their
// capacity allows, so pooled planning state that rebuilds evaluators
// every tick stays allocation-free once warmed.
func (p *Prefix) ReinitWarm(t *query.Tree, w Warm) {
	n := t.NumAnds()
	p.t = t
	p.warm = w
	p.words = (n + 63) / 64
	p.order = p.order[:0]
	p.done = p.done[:0]
	p.history = p.history[:0]
	p.cost = 0
	p.pi = floatsGrown(p.pi, n)
	p.cnt = intsGrown(p.cnt, n)
	p.size = intsGrown(p.size, n)
	p.andAll = floatsGrown(p.andAll, n)
	for a := range p.pi {
		p.pi[a] = 1
		p.andAll[a] = 1
	}
	for a, and := range t.AndLeaves() {
		p.size[a] = len(and)
	}
	for _, l := range t.Leaves {
		p.andAll[l.And] *= l.Prob
	}
	ns := t.NumStreams()
	p.maxD = intsGrown(p.maxD, ns)
	for _, l := range t.Leaves {
		if l.Items > p.maxD[l.Stream] {
			p.maxD[l.Stream] = l.Items
		}
	}
	p.acq = floatRowsGrown(p.acq, ns)
	p.has = wordRowsGrown(p.has, ns)
	for k := range p.acq {
		p.acq[k] = floatsGrown(p.acq[k], p.maxD[k])
		for d := range p.acq[k] {
			p.acq[k][d] = 1
		}
		hn := p.maxD[k] * p.words
		p.has[k] = wordsGrown(p.has[k], hn)
	}
}

func floatsGrown(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func intsGrown(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func wordsGrown(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func floatRowsGrown(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		grown := make([][]float64, n)
		copy(grown, s)
		return grown
	}
	return s[:n]
}

func wordRowsGrown(s [][]uint64, n int) [][]uint64 {
	if cap(s) < n {
		grown := make([][]uint64, n)
		copy(grown, s)
		return grown
	}
	return s[:n]
}

// MaxItems returns, per stream, the largest window any leaf of the tree
// reads — the per-stream item horizon the evaluator prices over (see
// query.Tree.StreamMaxItems). Callers must not mutate the slice.
func (p *Prefix) MaxItems() []int { return p.maxD }

func (p *Prefix) hasBit(k query.StreamID, d, a int) bool {
	return p.has[k][d*p.words+a/64]&(1<<uint(a%64)) != 0
}

func (p *Prefix) setBit(k query.StreamID, d, a int) {
	p.has[k][d*p.words+a/64] |= 1 << uint(a%64)
}

func (p *Prefix) clearBit(k query.StreamID, d, a int) {
	p.has[k][d*p.words+a/64] &^= 1 << uint(a%64)
}

// Len returns the number of leaves appended so far.
func (p *Prefix) Len() int { return len(p.order) }

// Cost returns the expected cost of the current prefix: the exact expected
// acquisition cost incurred by the leaves appended so far, whatever leaves
// are appended later.
func (p *Prefix) Cost() float64 { return p.cost }

// Order returns the appended leaves in order. Callers must not mutate it.
func (p *Prefix) Order() []int { return p.order }

// Append adds leaf j to the prefix and returns its expected cost
// contribution C_j = sum_t C_{i,j,t} (Proposition 2).
func (p *Prefix) Append(j int) float64 { return p.AppendVisit(j, nil) }

// AppendVisit is Append with a per-item breakdown: for every stream item
// whose expected acquisition leaf j newly accounts for, visit is called
// with the stream, the 0-based item index d (item t = d+1 of the paper),
// and the probability pr = F1 * F2 * F3 that leaf j is the one that
// actually acquires the item (Proposition 2). The returned cost delta is
// the sum of pr * c(stream) over the visited items.
//
// The per-leaf acquisition events of one item are disjoint, so summing pr
// over a whole schedule yields the probability that the query acquires
// the item at all — the marginal-cost primitive a fleet-level planner
// needs to discount items that sibling queries will probably pull anyway.
func (p *Prefix) AppendVisit(j int, visit func(k query.StreamID, d int, pr float64)) float64 {
	l := p.t.Leaves[j]
	i, k := l.And, l.Stream
	c := p.t.Streams[k].Cost
	var rec undoRec
	if n := len(p.history); n < cap(p.history) {
		// Reclaim the undo slices of a popped record sitting in the
		// stack's spare capacity: Append/Pop pricing cycles would
		// otherwise allocate two fresh slices per evaluation.
		spare := p.history[:n+1][n]
		rec.changedTs = spare.changedTs[:0]
		rec.oldAcq = spare.oldAcq[:0]
	}
	rec.leaf = j
	delta := 0.0
	for d := 0; d < l.Items; d++ {
		if p.warm.Has(k, d+1) {
			continue // item already in the device cache: free
		}
		if p.hasBit(k, d, i) {
			continue // an earlier same-AND leaf already requires the item
		}
		f1 := p.acq[k][d]
		f2 := 1.0
		for _, a := range p.done {
			if a != i && !p.hasBit(k, d, a) {
				f2 *= 1 - p.andAll[a]
			}
		}
		pr := f1 * f2 * p.pi[i]
		delta += pr * c
		if visit != nil {
			visit(k, d, pr)
		}
		// Leaf j becomes the first of AND i to require this item.
		rec.changedTs = append(rec.changedTs, d)
		rec.oldAcq = append(rec.oldAcq, p.acq[k][d])
		p.acq[k][d] *= 1 - p.pi[i]
		p.setBit(k, d, i)
	}
	p.pi[i] *= l.Prob
	p.cnt[i]++
	if p.cnt[i] == p.size[i] {
		p.done = append(p.done, i)
		rec.completed = true
	}
	rec.delta = delta
	p.cost += delta
	p.order = append(p.order, j)
	p.history = append(p.history, rec)
	return delta
}

// Pop undoes the most recent Append. It panics if the prefix is empty.
func (p *Prefix) Pop() {
	rec := p.history[len(p.history)-1]
	p.history = p.history[:len(p.history)-1]
	p.order = p.order[:len(p.order)-1]
	l := p.t.Leaves[rec.leaf]
	i, k := l.And, l.Stream
	if rec.completed {
		p.done = p.done[:len(p.done)-1]
	}
	p.cnt[i]--
	// Recompute pi rather than dividing, to stay exact when p == 0.
	p.pi[i] = 1
	for _, r := range p.order {
		if p.t.Leaves[r].And == i {
			p.pi[i] *= p.t.Leaves[r].Prob
		}
	}
	for n, d := range rec.changedTs {
		p.acq[k][d] = rec.oldAcq[n]
		p.clearBit(k, d, i)
	}
	p.cost -= rec.delta
}

// Reset empties the prefix.
func (p *Prefix) Reset() {
	for p.Len() > 0 {
		p.Pop()
	}
}

// AppendAll appends the given leaves in order and returns the total
// expected cost contribution.
func (p *Prefix) AppendAll(leaves []int) float64 {
	total := 0.0
	for _, j := range leaves {
		total += p.Append(j)
	}
	return total
}

// PopN undoes the n most recent Appends.
func (p *Prefix) PopN(n int) {
	for ; n > 0; n-- {
		p.Pop()
	}
}

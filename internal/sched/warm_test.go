package sched

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"paotr/internal/query"
)

func randomWarm(rng *rand.Rand, t *query.Tree) Warm {
	maxD := t.StreamMaxItems()
	w := make(Warm, t.NumStreams())
	for k := range w {
		w[k] = make([]bool, maxD[k])
		for d := range w[k] {
			w[k][d] = rng.Float64() < 0.4
		}
	}
	return w
}

// TestCostWarmMatchesTruthTable: the warm closed form must equal the warm
// truth-table executor on random trees, schedules and cache states.
func TestCostWarmMatchesTruthTable(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 61))
	for trial := 0; trial < 400; trial++ {
		tr := randomTree(rng, 4, 3, 3)
		if tr.NumLeaves() > 12 {
			continue
		}
		s := randomSchedule(rng, tr.NumLeaves())
		w := randomWarm(rng, tr)
		got := CostWarm(tr, s, w)
		want := ExactCostEnumWarm(tr, s, w)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: CostWarm=%v truth-table=%v\ntree=%v warm=%v sched=%v",
				trial, got, want, tr, w, s)
		}
	}
}

func TestCostWarmNilEqualsCost(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 63))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 3, 4, 3)
		s := randomSchedule(rng, tr.NumLeaves())
		if got, want := CostWarm(tr, s, nil), Cost(tr, s); got != want {
			t.Fatalf("CostWarm(nil) %v != Cost %v", got, want)
		}
		// An all-false warm state is also a cold cache.
		w := make(Warm, tr.NumStreams())
		for k := range w {
			w[k] = make([]bool, tr.StreamMaxItems()[k])
		}
		if got, want := CostWarm(tr, s, w), Cost(tr, s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("all-false warm %v != cold %v", got, want)
		}
	}
}

// TestCostWarmMonotone: caching more items can only lower the expected
// cost.
func TestCostWarmMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(64, 65))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 3, 3, 4)
		s := randomSchedule(rng, tr.NumLeaves())
		w := randomWarm(rng, tr)
		base := CostWarm(tr, s, w)
		// Add one more cached item.
		w2 := make(Warm, len(w))
		for k := range w {
			w2[k] = append([]bool(nil), w[k]...)
		}
		added := false
		for k := range w2 {
			for d := range w2[k] {
				if !w2[k][d] {
					w2[k][d] = true
					added = true
					break
				}
			}
			if added {
				break
			}
		}
		if !added {
			continue
		}
		if got := CostWarm(tr, s, w2); got > base+1e-12 {
			t.Fatalf("trial %d: caching more items raised cost %v -> %v", trial, base, got)
		}
	}
}

// TestCostWarmFullCacheIsFree: with every item cached the cost is zero.
func TestCostWarmFullCacheIsFree(t *testing.T) {
	rng := rand.New(rand.NewPCG(66, 67))
	tr := randomTree(rng, 3, 4, 4)
	s := randomSchedule(rng, tr.NumLeaves())
	w := make(Warm, tr.NumStreams())
	for k, d := range tr.StreamMaxItems() {
		w[k] = make([]bool, d)
		for i := range w[k] {
			w[k][i] = true
		}
	}
	if got := CostWarm(tr, s, w); got != 0 {
		t.Errorf("full cache cost = %v", got)
	}
}

func TestWarmFromCounts(t *testing.T) {
	w := WarmFromCounts([]int{2, 0, 1})
	cases := []struct {
		k    query.StreamID
		item int
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, false},
		{1, 1, false},
		{2, 1, true}, {2, 2, false},
		{9, 1, false}, // out-of-range stream
	}
	for _, c := range cases {
		if got := w.Has(c.k, c.item); got != c.want {
			t.Errorf("Has(%d, %d) = %v, want %v", c.k, c.item, got, c.want)
		}
	}
	var nilW Warm
	if nilW.Has(0, 1) {
		t.Error("nil warm should have nothing")
	}
}

// TestPrefixWarmMatchesCostWarm: the incremental warm evaluator must agree
// with the closed form.
func TestPrefixWarmMatchesCostWarm(t *testing.T) {
	rng := rand.New(rand.NewPCG(68, 69))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 4, 4, 3)
		s := randomSchedule(rng, tr.NumLeaves())
		w := randomWarm(rng, tr)
		p := NewPrefixWarm(tr, w)
		for _, j := range s {
			p.Append(j)
		}
		want := CostWarm(tr, s, w)
		if math.Abs(p.Cost()-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: prefix warm %v vs %v", trial, p.Cost(), want)
		}
	}
}

func TestAndTreeCostWarmAgainstGeneral(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 70))
		tr := randomTree(rng, 1, 6, 4)
		s := randomSchedule(rng, tr.NumLeaves())
		w := randomWarm(rng, tr)
		a := AndTreeCostWarm(tr, s, w)
		b := CostWarm(tr, s, w)
		return math.Abs(a-b) <= 1e-9*(1+b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestWarmPrefixFormEqualsDiscount: a prefix-form warm state W is
// equivalent to shrinking every window by W (the NItems view of
// Algorithm 1) — cross-checking the two mental models.
func TestWarmPrefixFormEqualsDiscount(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 1, 5, 4) // AND-tree
		counts := make([]int, tr.NumStreams())
		for k := range counts {
			counts[k] = rng.IntN(3)
		}
		w := WarmFromCounts(counts)
		s := randomSchedule(rng, tr.NumLeaves())
		warmCost := AndTreeCostWarm(tr, s, w)
		// Discounted tree: d' = max(0, d - counts[k]) — emulated with the
		// simple AndTreeCost recurrence using initial acquired counts.
		acquired := append([]int(nil), counts...)
		reach := 1.0
		want := 0.0
		for _, j := range s {
			l := tr.Leaves[j]
			if extra := l.Items - acquired[l.Stream]; extra > 0 {
				want += reach * float64(extra) * tr.Streams[l.Stream].Cost
				acquired[l.Stream] = l.Items
			}
			reach *= l.Prob
		}
		if math.Abs(warmCost-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: warm %v vs discount %v", trial, warmCost, want)
		}
	}
}

package sched

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr/internal/query"
)

// acquireProbEnum computes, by truth-table enumeration, the probability
// that executing schedule s acquires item d+1 of stream k — the reference
// for the AppendVisit weights.
func acquireProbEnum(t *query.Tree, s Schedule, k query.StreamID, d int, w Warm) float64 {
	m := t.NumLeaves()
	truth := make([]bool, m)
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		prob := 1.0
		for j := 0; j < m; j++ {
			truth[j] = mask&(1<<uint(j)) != 0
			if truth[j] {
				prob *= t.Leaves[j].Prob
			} else {
				prob *= 1 - t.Leaves[j].Prob
			}
		}
		if prob == 0 {
			continue
		}
		// Replay the execution and record whether the item is acquired.
		acquired := make([][]bool, t.NumStreams())
		maxD := t.StreamMaxItems()
		for kk := range acquired {
			acquired[kk] = make([]bool, maxD[kk])
			for dd := range acquired[kk] {
				acquired[kk][dd] = w.Has(query.StreamID(kk), dd+1)
			}
		}
		nAnds := t.NumAnds()
		andFalse := make([]bool, nAnds)
		andLeft := make([]int, nAnds)
		for i, and := range t.AndLeaves() {
			andLeft[i] = len(and)
		}
		falseAnds := 0
		got := false
		wasWarm := w.Has(k, d+1)
	exec:
		for _, j := range s {
			l := t.Leaves[j]
			if andFalse[l.And] {
				continue
			}
			for dd := 0; dd < l.Items; dd++ {
				if !acquired[l.Stream][dd] {
					acquired[l.Stream][dd] = true
					if l.Stream == k && dd == d && !wasWarm {
						got = true
					}
				}
			}
			andLeft[l.And]--
			if !truth[j] {
				andFalse[l.And] = true
				falseAnds++
				if falseAnds == nAnds {
					break exec
				}
			} else if andLeft[l.And] == 0 {
				break exec
			}
		}
		if got {
			total += prob
		}
	}
	return total
}

// TestAppendVisitWeights: the per-item weights reported by AppendVisit
// are the Proposition 2 acquisition probabilities — they sum, over a
// whole schedule, to the probability that the query acquires each item,
// and weighting them by stream cost reproduces the Append deltas.
func TestAppendVisitWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 3, 3, 3)
		if tr.NumLeaves() > 8 {
			continue
		}
		var w Warm
		if trial%2 == 1 {
			w = make(Warm, tr.NumStreams())
			for k, d := range tr.StreamMaxItems() {
				w[k] = make([]bool, d)
				for i := range w[k] {
					w[k][i] = rng.Float64() < 0.3
				}
			}
		}
		s := randomSchedule(rng, tr.NumLeaves())
		p := NewPrefixWarm(tr, w)
		type slot struct {
			k query.StreamID
			d int
		}
		sum := map[slot]float64{}
		for _, j := range s {
			wantDelta := 0.0
			gotDelta := p.AppendVisit(j, func(k query.StreamID, d int, pr float64) {
				sum[slot{k, d}] += pr
				wantDelta += pr * tr.Streams[k].Cost
			})
			if math.Abs(gotDelta-wantDelta) > 1e-9 {
				t.Fatalf("trial %d: AppendVisit delta %v != weighted sum %v", trial, gotDelta, wantDelta)
			}
		}
		if math.Abs(p.Cost()-CostWarm(tr, s, w)) > 1e-9 {
			t.Fatalf("trial %d: prefix cost %v != CostWarm %v", trial, p.Cost(), CostWarm(tr, s, w))
		}
		for k := 0; k < tr.NumStreams(); k++ {
			for d := 0; d < tr.StreamMaxItems()[k]; d++ {
				want := acquireProbEnum(tr, s, query.StreamID(k), d, w)
				if math.Abs(sum[slot{query.StreamID(k), d}]-want) > 1e-9 {
					t.Fatalf("trial %d: stream %d item %d acquire prob %v, enum %v",
						trial, k, d+1, sum[slot{query.StreamID(k), d}], want)
				}
			}
		}
	}
}

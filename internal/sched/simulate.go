package sched

import (
	"math/rand/v2"

	"paotr/internal/query"
)

// Executor simulates the pull-model evaluation of a schedule for one fixed
// truth assignment of the leaves. It is the operational ground truth for
// the cost semantics: Cost (Proposition 2) must equal the expectation of
// Execute over the leaf-truth distribution, which the tests assert via
// ExactCostEnum and MonteCarloCost.
type Executor struct {
	t        *query.Tree
	acquired []int  // per stream, deepest item index pulled so far
	andFalse []bool // AND short-circuited to FALSE
	andLeft  []int  // unevaluated leaves remaining per AND
}

// NewExecutor prepares an executor for tree t.
func NewExecutor(t *query.Tree) *Executor {
	return &Executor{
		t:        t,
		acquired: make([]int, t.NumStreams()),
		andFalse: make([]bool, t.NumAnds()),
		andLeft:  make([]int, t.NumAnds()),
	}
}

// Result reports the outcome of executing a schedule under one assignment.
type Result struct {
	// Cost is the total acquisition cost actually paid.
	Cost float64
	// Value is the truth value of the OR root.
	Value bool
	// Evaluated counts the leaves whose predicate was actually computed.
	Evaluated int
	// Acquired counts the data items pulled, per stream.
	Acquired []int
}

// Execute runs schedule s assuming truth[j] is the value of leaf j.
// Evaluation short-circuits exactly as in the paper: a leaf is skipped when
// its AND node is already FALSE, and everything stops as soon as one AND
// node has all leaves TRUE (OR resolved) or all AND nodes are FALSE.
func (e *Executor) Execute(s Schedule, truth []bool) Result {
	t := e.t
	for k := range e.acquired {
		e.acquired[k] = 0
	}
	falseAnds := 0
	for a, and := range t.AndLeaves() {
		e.andFalse[a] = false
		e.andLeft[a] = len(and)
	}
	res := Result{}
	for _, j := range s {
		l := t.Leaves[j]
		if e.andFalse[l.And] {
			continue // AND already FALSE: leaf short-circuited
		}
		// Evaluate the leaf: pull the items not yet in memory.
		if extra := l.Items - e.acquired[l.Stream]; extra > 0 {
			res.Cost += float64(extra) * t.Streams[l.Stream].Cost
			e.acquired[l.Stream] = l.Items
		}
		res.Evaluated++
		e.andLeft[l.And]--
		if !truth[j] {
			e.andFalse[l.And] = true
			falseAnds++
			if falseAnds == t.NumAnds() {
				break // OR resolved FALSE
			}
		} else if e.andLeft[l.And] == 0 {
			res.Value = true // OR resolved TRUE
			break
		}
	}
	res.Acquired = append([]int(nil), e.acquired...)
	return res
}

// ExactCostEnum computes the exact expected cost of schedule s by
// enumerating all 2^m truth assignments and executing each one. It is
// exponential and intended for tests on small trees (m <= ~20); it serves
// as an independent check of Cost.
func ExactCostEnum(t *query.Tree, s Schedule) float64 {
	m := t.NumLeaves()
	if m > 30 {
		panic("sched: ExactCostEnum limited to 30 leaves")
	}
	e := NewExecutor(t)
	truth := make([]bool, m)
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		prob := 1.0
		for j := 0; j < m; j++ {
			if mask&(1<<uint(j)) != 0 {
				truth[j] = true
				prob *= t.Leaves[j].Prob
			} else {
				truth[j] = false
				prob *= 1 - t.Leaves[j].Prob
			}
		}
		if prob == 0 {
			continue
		}
		total += prob * e.Execute(s, truth).Cost
	}
	return total
}

// MonteCarloCost estimates the expected cost of schedule s by sampling n
// random truth assignments with the leaf probabilities.
func MonteCarloCost(t *query.Tree, s Schedule, n int, rng *rand.Rand) float64 {
	m := t.NumLeaves()
	e := NewExecutor(t)
	truth := make([]bool, m)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			truth[j] = rng.Float64() < t.Leaves[j].Prob
		}
		total += e.Execute(s, truth).Cost
	}
	return total / float64(n)
}

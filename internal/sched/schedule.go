// Package sched defines leaf-evaluation schedules for shared-stream query
// trees and implements the expected-cost semantics of Casanova et al.
// (IPDPS 2014): the closed-form evaluation of Section IV-A / Proposition 2,
// an incremental prefix evaluator used by branch-and-bound searches and
// dynamic heuristics, and two independent reference evaluators (exhaustive
// truth-table execution and Monte-Carlo execution).
package sched

import (
	"errors"
	"fmt"

	"paotr/internal/query"
)

// Schedule is a leaf evaluation order: a permutation of 0..m-1 where m is
// the number of leaves of the tree, listing leaf indices in the order in
// which they are to be evaluated.
type Schedule []int

// ErrNotPermutation is returned by Validate when a schedule is not a
// permutation of the tree's leaf indices.
var ErrNotPermutation = errors.New("sched: schedule is not a permutation of the tree leaves")

// Validate checks that s is a permutation of 0..m-1 for tree t.
func (s Schedule) Validate(t *query.Tree) error {
	m := t.NumLeaves()
	if len(s) != m {
		return fmt.Errorf("%w: length %d, want %d", ErrNotPermutation, len(s), m)
	}
	seen := make([]bool, m)
	for _, j := range s {
		if j < 0 || j >= m || seen[j] {
			return fmt.Errorf("%w: bad or repeated leaf %d", ErrNotPermutation, j)
		}
		seen[j] = true
	}
	return nil
}

// Positions returns pos such that pos[leaf] is the position of the leaf in
// the schedule.
func (s Schedule) Positions() []int {
	pos := make([]int, len(s))
	for i, j := range s {
		pos[j] = i
	}
	return pos
}

// Clone returns a copy of the schedule.
func (s Schedule) Clone() Schedule { return append(Schedule(nil), s...) }

// IsDepthFirst reports whether the schedule processes AND nodes one by one:
// once a leaf of an AND node has been evaluated, all leaves of that AND node
// are evaluated before any leaf of another AND node.
func (s Schedule) IsDepthFirst(t *query.Tree) bool {
	remaining := make([]int, t.NumAnds())
	for i, and := range t.AndLeaves() {
		remaining[i] = len(and)
	}
	current := -1
	for _, j := range s {
		a := t.Leaves[j].And
		if current != -1 && a != current {
			return false
		}
		remaining[a]--
		if remaining[a] == 0 {
			current = -1
		} else {
			current = a
		}
	}
	return true
}

// Names renders the schedule using LeafName, for debugging and reports.
func (s Schedule) Names(t *query.Tree) []string {
	out := make([]string, len(s))
	for i, j := range s {
		out[i] = t.LeafName(j)
	}
	return out
}

package strategy

import (
	"fmt"
	"strings"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// OptimalStrategy computes an optimal non-linear strategy and returns it
// as an explicit decision tree together with its expected cost. It panics
// if t has more than 12 leaves (the DP state space is 3^m).
//
// The returned decision tree shares subtrees (it is a DAG when rendered by
// reference), so its size is bounded by the number of reachable DP states
// rather than 2^depth.
func OptimalStrategy(t *query.Tree) (*DecisionNode, float64) {
	return OptimalStrategyWarm(t, nil)
}

// OptimalStrategyWarm is OptimalStrategy with a warm cache: items already
// held (sched.Warm semantics) are free, so the extracted decision tree is
// optimal for the cache state an adaptive executor plans against.
func OptimalStrategyWarm(t *query.Tree, w sched.Warm) (*DecisionNode, float64) {
	if t.NumLeaves() > MaxLeaves {
		panic("strategy: OptimalStrategy limited to 12 leaves")
	}
	d := newDP(t, w)
	cost := d.solve(0)
	nodes := make(map[uint32]*DecisionNode)
	return d.extract(0, nodes), cost
}

// extract rebuilds the argmin decision tree from the memoized values.
func (d *dp) extract(state uint32, nodes map[uint32]*DecisionNode) *DecisionNode {
	if n, ok := nodes[state]; ok {
		return n
	}
	if d.rootKnown(state) {
		n := &DecisionNode{Leaf: -1}
		nodes[state] = n
		return n
	}
	acq := d.acquiredItems(state)
	bestLeaf := -1
	bestCost := 0.0
	for j, l := range d.t.Leaves {
		if get(state, j) != unevaluated || !d.useful(state, j) {
			continue
		}
		cost := d.leafCost(acq, l)
		cost += l.Prob * d.solve(set(state, j, evalTrue))
		cost += (1 - l.Prob) * d.solve(set(state, j, evalFalse))
		if bestLeaf == -1 || cost < bestCost {
			bestLeaf = j
			bestCost = cost
		}
	}
	if bestLeaf == -1 {
		n := &DecisionNode{Leaf: -1}
		nodes[state] = n
		return n
	}
	n := &DecisionNode{Leaf: bestLeaf}
	nodes[state] = n
	n.IfTrue = d.extract(set(state, bestLeaf, evalTrue), nodes)
	n.IfFalse = d.extract(set(state, bestLeaf, evalFalse), nodes)
	return n
}

// IsLinear reports whether the decision tree evaluates leaves in a fixed
// order regardless of outcomes — i.e. whether it is equivalent to some
// schedule. A strategy is linear when, at every internal node, the next
// *distinct* leaf tried on the TRUE branch and on the FALSE branch (after
// skipping short-circuited leaves) follows one global order.
func IsLinear(root *DecisionNode) bool {
	// Collect the first-evaluation order on every root-to-node path; the
	// strategy is linear iff the relative order of any two leaves is the
	// same on all paths where both occur.
	type edge struct{ a, b int }
	before := map[edge]bool{}
	var walk func(n *DecisionNode, path []int) bool
	walk = func(n *DecisionNode, path []int) bool {
		if n == nil || n.Leaf < 0 {
			return true
		}
		for _, a := range path {
			if a == n.Leaf {
				return true // revisit impossible in well-formed strategies
			}
			if before[edge{n.Leaf, a}] {
				return false
			}
			before[edge{a, n.Leaf}] = true
		}
		np := append(append([]int(nil), path...), n.Leaf)
		return walk(n.IfTrue, np) && walk(n.IfFalse, np)
	}
	return walk(root, nil)
}

// CountNodes returns the number of distinct decision nodes (the DAG size).
func CountNodes(root *DecisionNode) int {
	seen := map[*DecisionNode]bool{}
	var walk func(n *DecisionNode)
	walk = func(n *DecisionNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		walk(n.IfTrue)
		walk(n.IfFalse)
	}
	walk(root)
	return len(seen)
}

// Render pretty-prints the strategy with leaf names from the tree, up to
// the given depth (the full tree can be exponential when written out).
func Render(t *query.Tree, root *DecisionNode, maxDepth int) string {
	var b strings.Builder
	var walk func(n *DecisionNode, prefix string, depth int)
	walk = func(n *DecisionNode, prefix string, depth int) {
		if n == nil {
			return
		}
		if n.Leaf < 0 {
			fmt.Fprintf(&b, "%s└ done\n", prefix)
			return
		}
		fmt.Fprintf(&b, "%s├ eval %s\n", prefix, t.LeafName(n.Leaf))
		if depth >= maxDepth {
			fmt.Fprintf(&b, "%s│  …\n", prefix)
			return
		}
		fmt.Fprintf(&b, "%s│ if TRUE:\n", prefix)
		walk(n.IfTrue, prefix+"│  ", depth+1)
		fmt.Fprintf(&b, "%s│ if FALSE:\n", prefix)
		walk(n.IfFalse, prefix+"│  ", depth+1)
	}
	walk(root, "", 0)
	return b.String()
}

package strategy

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"paotr/internal/dnf"
	"paotr/internal/sched"
)

// TestOptimalStrategyCostMatchesDP: the extracted decision tree must
// realize exactly the DP's optimal cost.
func TestOptimalStrategyCostMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 21))
	for trial := 0; trial < 150; trial++ {
		tr := randomTinyDNF(rng)
		root, cost := OptimalStrategy(tr)
		if math.Abs(cost-OptimalNonLinear(tr)) > 1e-12 {
			t.Fatalf("trial %d: extraction changed the DP value", trial)
		}
		realized := CostOfDecisionTree(tr, root)
		if math.Abs(realized-cost) > 1e-9*(1+cost) {
			t.Fatalf("trial %d: decision tree realizes %v, DP says %v", trial, realized, cost)
		}
	}
}

// TestOptimalStrategyOnCounterExample: the extracted strategy on the
// shipped counter-example must be strictly cheaper than every schedule and
// must actually be non-linear.
func TestOptimalStrategyOnCounterExample(t *testing.T) {
	tr := CounterExample()
	root, cost := OptimalStrategy(tr)
	lin := dnf.OptimalDepthFirst(tr, dnf.SearchOptions{})
	if cost >= lin.Cost-1e-12 {
		t.Fatalf("strategy %v not better than linear %v", cost, lin.Cost)
	}
	if IsLinear(root) {
		t.Error("optimal strategy on the counter-example should be non-linear")
	}
	if CountNodes(root) < 3 {
		t.Error("suspiciously small strategy")
	}
	out := Render(tr, root, 3)
	if !strings.Contains(out, "eval") || !strings.Contains(out, "if TRUE") {
		t.Errorf("Render output: %q", out)
	}
}

// TestScheduleStrategiesAreLinear: converting a schedule to a decision
// tree must produce a linear strategy.
func TestScheduleStrategiesAreLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 23))
	for trial := 0; trial < 100; trial++ {
		tr := randomTinyDNF(rng)
		m := tr.NumLeaves()
		s := make(sched.Schedule, m)
		for i := range s {
			s[i] = i
		}
		rng.Shuffle(m, func(a, b int) { s[a], s[b] = s[b], s[a] })
		root := ScheduleAsDecisionTree(tr, s)
		if !IsLinear(root) {
			t.Fatalf("trial %d: schedule-derived strategy flagged non-linear\nsched %v tree %v",
				trial, s, tr)
		}
	}
}

// TestStrategyIsDAG: shared subtrees keep the node count far below the
// worst-case 2^m.
func TestStrategyIsDAG(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 25))
	for trial := 0; trial < 30; trial++ {
		tr := randomTinyDNF(rng)
		root, _ := OptimalStrategy(tr)
		if n := CountNodes(root); n > 3000 {
			t.Fatalf("trial %d: %d nodes for %d leaves", trial, n, tr.NumLeaves())
		}
	}
}

// TestZeroGapImpliesLinearEquivalence: when the DP value equals the
// optimal schedule cost, the schedule achieves the non-linear optimum (the
// strategy itself may still branch between cost-equal alternatives).
func TestZeroGapImpliesLinearEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(26, 27))
	for trial := 0; trial < 60; trial++ {
		tr := randomTinyDNF(rng)
		g := Analyze(tr)
		if g.Ratio() > 1+1e-9 {
			continue
		}
		// Equal optima: the linear optimum realizes the DP value.
		lin := dnf.OptimalDepthFirst(tr, dnf.SearchOptions{})
		realized := CostOfDecisionTree(tr, ScheduleAsDecisionTree(tr, lin.Schedule))
		if math.Abs(realized-g.NonLinear) > 1e-9*(1+g.NonLinear) {
			t.Fatalf("trial %d: schedule cost %v vs DP %v", trial, realized, g.NonLinear)
		}
	}
}

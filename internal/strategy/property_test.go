package strategy

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr/internal/dnf"
	"paotr/internal/gen"
	"paotr/internal/query"
	"paotr/internal/sched"
)

// corpusTrees generates a deterministic corpus of shared DNF trees with at
// most MaxLeaves leaves, spanning the sharing ratios of the paper's
// evaluation.
func corpusTrees(perConfig int) []*query.Tree {
	rng := gen.NewRng(2014)
	var out []*query.Tree
	for _, rho := range gen.SharingRatios() {
		for i := 0; i < perConfig; i++ {
			sizes := gen.SmallDNFSizes(2+rng.IntN(3), 3, MaxLeaves, rng)
			t := gen.DNF(sizes, rho, gen.Dist{MaxItems: 3, MinCost: 1, MaxCost: 10}, rng)
			if t.NumLeaves() <= MaxLeaves {
				out = append(out, t)
			}
		}
	}
	return out
}

// TestPropertyNonLinearNeverWorse is the paper's Section V property over
// a generated corpus: the optimal non-linear (decision-tree) strategy is
// never more expensive than the best linear schedule, and when the
// extracted optimal strategy is itself linear the two costs coincide.
func TestPropertyNonLinearNeverWorse(t *testing.T) {
	trees := corpusTrees(12)
	if len(trees) < 40 {
		t.Fatalf("corpus too small: %d trees", len(trees))
	}
	const eps = 1e-9
	linearOptimal := 0
	for i, tr := range trees {
		lin := dnf.OptimalDepthFirst(tr, dnf.SearchOptions{}).Cost
		root, nl := OptimalStrategy(tr)
		if nl2 := OptimalNonLinear(tr); math.Abs(nl2-nl) > eps {
			t.Fatalf("tree %d: OptimalNonLinear %.9f != OptimalStrategy cost %.9f", i, nl2, nl)
		}
		if nl > lin+eps {
			t.Errorf("tree %d: non-linear optimum %.9f exceeds linear optimum %.9f", i, nl, lin)
		}
		if cdt := CostOfDecisionTree(tr, root); math.Abs(cdt-nl) > 1e-6 {
			t.Errorf("tree %d: decision-tree cost %.9f != DP value %.9f", i, cdt, nl)
		}
		if IsLinear(root) {
			linearOptimal++
			if math.Abs(nl-lin) > 1e-6 {
				t.Errorf("tree %d: optimal strategy is linear but costs differ (%.9f vs %.9f)", i, nl, lin)
			}
		}
	}
	t.Logf("%d corpus trees, optimal strategy linear on %d", len(trees), linearOptimal)
}

// TestPropertyScheduleAsDecisionTree: every linear schedule, rewritten as
// an explicit decision tree, costs at least the non-linear optimum — and
// the rewrite itself must preserve the schedule's expected cost (checked
// in the sched package; here we check the ordering against the DP).
func TestPropertyScheduleAsDecisionTree(t *testing.T) {
	trees := corpusTrees(4)
	for i, tr := range trees {
		res := dnf.OptimalDepthFirst(tr, dnf.SearchOptions{})
		asTree := ScheduleAsDecisionTree(tr, res.Schedule)
		nl := OptimalNonLinear(tr)
		if c := CostOfDecisionTree(tr, asTree); nl > c+1e-9 {
			t.Errorf("tree %d: DP value %.9f exceeds a valid strategy's cost %.9f", i, nl, c)
		}
	}
}

// TestPropertySimulatedMeanMatchesDP validates the DP expectation by
// Monte-Carlo: simulating the optimal decision tree with independent
// Bernoulli leaf outcomes must converge to OptimalNonLinear.
func TestPropertySimulatedMeanMatchesDP(t *testing.T) {
	trees := corpusTrees(2)
	if len(trees) > 10 {
		trees = trees[:10]
	}
	rng := rand.New(rand.NewPCG(1, 2))
	const trials = 20000
	for i, tr := range trees {
		root, nl := OptimalStrategy(tr)
		if nl == 0 {
			continue
		}
		total := 0.0
		for k := 0; k < trials; k++ {
			total += SimulateDecisionTree(tr, root, rng)
		}
		mean := total / trials
		if rel := math.Abs(mean-nl) / nl; rel > 0.05 {
			t.Errorf("tree %d: simulated mean %.4f vs DP %.4f (%.1f%% off)", i, mean, nl, 100*rel)
		}
	}
}

// TestWarmNonLinearCheaper: warming any cached item can only reduce the
// non-linear optimum, and a fully warm cache makes it zero.
func TestWarmNonLinearCheaper(t *testing.T) {
	trees := corpusTrees(3)
	rng := rand.New(rand.NewPCG(3, 4))
	for i, tr := range trees {
		cold := OptimalNonLinear(tr)
		maxD := tr.StreamMaxItems()
		warm := make(sched.Warm, len(maxD))
		full := make(sched.Warm, len(maxD))
		for k, d := range maxD {
			warm[k] = make([]bool, d)
			full[k] = make([]bool, d)
			for t := range warm[k] {
				warm[k][t] = rng.IntN(2) == 0
				full[k][t] = true
			}
		}
		wcost := OptimalNonLinearWarm(tr, warm)
		if wcost > cold+1e-9 {
			t.Errorf("tree %d: warm optimum %.9f exceeds cold %.9f", i, wcost, cold)
		}
		if f := OptimalNonLinearWarm(tr, full); f != 0 {
			t.Errorf("tree %d: fully warm optimum = %.9f, want 0", i, f)
		}
	}
}

package strategy

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr/internal/dnf"
	"paotr/internal/query"
	"paotr/internal/sched"
)

func randomTinyDNF(rng *rand.Rand) *query.Tree {
	nAnds := 1 + rng.IntN(3)
	nStreams := 1 + rng.IntN(3)
	tr := &query.Tree{}
	for k := 0; k < nStreams; k++ {
		tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 4*rng.Float64()})
	}
	for i := 0; i < nAnds; i++ {
		n := 1 + rng.IntN(2)
		for r := 0; r < n; r++ {
			tr.Leaves = append(tr.Leaves, query.Leaf{
				And:    i,
				Stream: query.StreamID(rng.IntN(nStreams)),
				Items:  1 + rng.IntN(3),
				Prob:   rng.Float64(),
			})
		}
	}
	return tr
}

// TestNonLinearLowerBoundsLinear: the optimal non-linear cost can never
// exceed the optimal linear cost (every schedule is a decision tree).
func TestNonLinearLowerBoundsLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 150; trial++ {
		tr := randomTinyDNF(rng)
		g := Analyze(tr)
		if g.NonLinear > g.Linear+1e-9*(1+g.Linear) {
			t.Fatalf("trial %d: non-linear %v > linear %v on %v", trial, g.NonLinear, g.Linear, tr)
		}
		if g.Ratio() < 1-1e-9 {
			t.Fatalf("trial %d: ratio %v < 1", trial, g.Ratio())
		}
	}
}

// TestReadOnceNoGap: in the read-once model linear strategies are dominant
// for DNF trees ([6]), so the gap must be zero.
func TestReadOnceNoGap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		nAnds := 1 + rng.IntN(3)
		tr := &query.Tree{}
		for i := 0; i < nAnds; i++ {
			n := 1 + rng.IntN(2)
			for r := 0; r < n; r++ {
				k := len(tr.Streams)
				tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 4*rng.Float64()})
				tr.Leaves = append(tr.Leaves, query.Leaf{
					And: i, Stream: query.StreamID(k),
					Items: 1 + rng.IntN(3), Prob: rng.Float64(),
				})
			}
		}
		g := Analyze(tr)
		if math.Abs(g.Linear-g.NonLinear) > 1e-9*(1+g.Linear) {
			t.Fatalf("trial %d: read-once gap %v vs %v on %v", trial, g.Linear, g.NonLinear, tr)
		}
	}
}

// TestCounterExample: the shipped witness must have a strict gap — the
// Section V claim that linear strategies are not dominant with sharing.
func TestCounterExample(t *testing.T) {
	tr := CounterExample()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.IsReadOnce() {
		t.Error("counter-example should share a stream")
	}
	g := Analyze(tr)
	if g.Ratio() <= 1+1e-9 {
		t.Fatalf("no strict gap: linear %v, non-linear %v", g.Linear, g.NonLinear)
	}
	t.Logf("counter-example: %v, linear %.6f, non-linear %.6f (ratio %.4f)",
		tr, g.Linear, g.NonLinear, g.Ratio())
}

// TestScheduleAsDecisionTreeCost: converting a schedule to its decision
// tree must preserve the expected cost (third independent implementation
// of the cost semantics).
func TestScheduleAsDecisionTreeCost(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 200; trial++ {
		tr := randomTinyDNF(rng)
		m := tr.NumLeaves()
		s := make(sched.Schedule, m)
		for i := range s {
			s[i] = i
		}
		rng.Shuffle(m, func(a, b int) { s[a], s[b] = s[b], s[a] })
		want := sched.Cost(tr, s)
		got := CostOfDecisionTree(tr, ScheduleAsDecisionTree(tr, s))
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: decision-tree cost %v, schedule cost %v on %v (sched %v)",
				trial, got, want, tr, s)
		}
	}
}

// TestNonLinearMatchesBestScheduleOnAndTrees: for an AND-tree (single AND)
// the optimal non-linear strategy coincides with the optimal schedule: the
// only decision information is "all previous leaves TRUE".
func TestNonLinearMatchesOnAndTrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 100; trial++ {
		tr := randomTinyDNF(rng)
		if !tr.IsAndTree() {
			continue
		}
		g := Analyze(tr)
		if math.Abs(g.Linear-g.NonLinear) > 1e-9*(1+g.Linear) {
			t.Fatalf("trial %d: AND-tree gap %v vs %v on %v", trial, g.Linear, g.NonLinear, tr)
		}
	}
}

func TestOptimalNonLinearPanicsOnLargeTrees(t *testing.T) {
	tr := &query.Tree{Streams: []query.Stream{{Cost: 1}}}
	for j := 0; j < 13; j++ {
		tr.Leaves = append(tr.Leaves, query.Leaf{And: 0, Stream: 0, Items: 1, Prob: 0.5})
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for > 12 leaves")
		}
	}()
	OptimalNonLinear(tr)
}

// TestDecisionStateEncoding exercises the 2-bit state packing.
func TestDecisionStateEncoding(t *testing.T) {
	var s uint32
	s = set(s, 3, evalTrue)
	s = set(s, 7, evalFalse)
	if get(s, 3) != evalTrue || get(s, 7) != evalFalse || get(s, 0) != unevaluated {
		t.Error("state encoding broken")
	}
	s = set(s, 3, evalFalse)
	if get(s, 3) != evalFalse {
		t.Error("overwrite broken")
	}
}

// TestGapStatistics: sample random shared trees and confirm gaps exist but
// are not universal (sanity check on the phenomenon's prevalence).
func TestGapStatistics(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	gaps, total := 0, 0
	for trial := 0; trial < 300; trial++ {
		tr := randomTinyDNF(rng)
		if tr.IsReadOnce() || tr.NumLeaves() > 6 {
			continue
		}
		total++
		if Analyze(tr).Ratio() > 1+1e-9 {
			gaps++
		}
	}
	if total == 0 {
		t.Skip("no shared instances sampled")
	}
	t.Logf("linear/non-linear gaps on %d/%d shared tiny instances", gaps, total)
	if gaps == total {
		t.Error("every instance has a gap — suspicious")
	}
}

func TestDNFPackageIntegration(t *testing.T) {
	// The analysis must agree with the dnf search on the counter-example.
	tr := CounterExample()
	res := dnf.OptimalDepthFirst(tr, dnf.SearchOptions{})
	g := Analyze(tr)
	if math.Abs(res.Cost-g.Linear) > 1e-12 {
		t.Errorf("linear optimum mismatch: %v vs %v", res.Cost, g.Linear)
	}
}

package strategy

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"paotr/internal/query"
)

// UniformQueryText renders a raw query.Tree as query-language text whose
// realized leaf probabilities match the tree's annotated ones when every
// stream produces independent uniform values in [0,1) (stream.Uniform):
// a leaf with window d and probability p becomes "MAX(name,d) < p^(1/d)",
// since the maximum of d independent uniforms is below t with probability
// t^d. The annotation [p=...] pins the planner to the same probability.
//
// names[k] is the registry name of tree stream k. This is how the
// counter-example corpora of this package are turned into executable
// queries for the adaptive-vs-linear end-to-end comparisons.
func UniformQueryText(t *query.Tree, names []string) string {
	var b strings.Builder
	for a, and := range t.AndLeaves() {
		if a > 0 {
			b.WriteString(" OR ")
		}
		b.WriteString("(")
		for i, j := range and {
			if i > 0 {
				b.WriteString(" AND ")
			}
			l := t.Leaves[j]
			threshold := math.Pow(l.Prob, 1/float64(l.Items))
			fmt.Fprintf(&b, "MAX(%s,%d) < %.9f [p=%g]", names[l.Stream], l.Items, threshold, l.Prob)
		}
		b.WriteString(")")
	}
	return b.String()
}

// GapCorpus returns up to n small shared DNF trees whose optimal
// non-linear strategy beats the optimal linear schedule by at least
// minRatio. The search is seeded and deterministic, so the corpus is
// stable across runs — it is the counter-example workload used by the
// adaptive-vs-linear benchmarks and examples.
func GapCorpus(n int, minRatio float64) []*query.Tree {
	rng := rand.New(rand.NewPCG(2014, 5))
	var out []*query.Tree
	for trial := 0; len(out) < n && trial < 200_000; trial++ {
		nAnds := 2 + rng.IntN(2)
		nStreams := 2 + rng.IntN(2)
		tr := &query.Tree{}
		for k := 0; k < nStreams; k++ {
			tr.Streams = append(tr.Streams, query.Stream{
				Name: fmt.Sprintf("s%d", k),
				Cost: 1 + float64(rng.IntN(5)),
			})
		}
		for i := 0; i < nAnds; i++ {
			leaves := 1 + rng.IntN(2)
			for r := 0; r < leaves; r++ {
				tr.Leaves = append(tr.Leaves, query.Leaf{
					And:    i,
					Stream: query.StreamID(rng.IntN(nStreams)),
					Items:  1 + rng.IntN(3),
					Prob:   float64(1+rng.IntN(9)) / 10,
				})
			}
		}
		if tr.NumLeaves() > 8 || tr.IsReadOnce() {
			continue
		}
		if g := Analyze(tr); g.Ratio() >= minRatio {
			out = append(out, tr)
		}
	}
	return out
}

// SimulateDecisionTree runs one Monte-Carlo trial of a decision-tree
// strategy: every leaf's truth value is drawn independently with its
// annotated probability, the tree is walked from the root, and each
// evaluated leaf pays for the items of its stream not already acquired
// during the trial. The mean over many trials converges to
// CostOfDecisionTree (and, for an optimal strategy, to OptimalNonLinear).
func SimulateDecisionTree(t *query.Tree, root *DecisionNode, rng *rand.Rand) float64 {
	acq := make([]int, t.NumStreams())
	cost := 0.0
	for n := root; n != nil && n.Leaf >= 0; {
		l := t.Leaves[n.Leaf]
		if extra := l.Items - acq[l.Stream]; extra > 0 {
			cost += float64(extra) * t.Streams[l.Stream].Cost
			acq[l.Stream] = l.Items
		}
		if rng.Float64() < l.Prob {
			n = n.IfTrue
		} else {
			n = n.IfFalse
		}
	}
	return cost
}

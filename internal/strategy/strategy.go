// Package strategy implements non-linear evaluation strategies for shared
// DNF trees: decision trees in which the next leaf to evaluate depends on
// the truth values observed so far (Section V of the paper, after [6]).
//
// A linear strategy (a schedule) evaluates leaves in a fixed order; a
// non-linear strategy may branch. In the read-once model linear strategies
// are dominant for DNF trees; the paper notes that this is no longer true
// in the shared model. OptimalNonLinear computes the exact optimal
// non-linear expected cost by dynamic programming over evaluation states,
// which lets the library exhibit concrete counter-examples (see
// FindCounterExample) and measure the linear/non-linear gap.
package strategy

import (
	"math"
	"math/rand/v2"
	"sync"

	"paotr/internal/dnf"
	"paotr/internal/query"
	"paotr/internal/sched"
)

// MaxLeaves bounds the DP: states are ternary words over the leaves, so
// the state space is 3^m and m must stay small. Callers that want adaptive
// execution on larger trees must fall back to linear schedules.
const MaxLeaves = 12

// leafState is the observed status of one leaf.
type leafState uint8

const (
	unevaluated leafState = iota
	evalTrue
	evalFalse
)

// OptimalNonLinear returns the expected cost of an optimal non-linear
// (decision-tree) strategy for t, computed by memoized dynamic programming
// over the 3^m evaluation states. It panics if t has more than 12 leaves.
//
// In every state the strategy may evaluate any *useful* leaf: leaves of
// AND nodes already known FALSE are never evaluated (they cannot influence
// the root), and evaluation stops as soon as the root value is known.
func OptimalNonLinear(t *query.Tree) float64 {
	return OptimalNonLinearWarm(t, nil)
}

// OptimalNonLinearWarm is OptimalNonLinear with a warm cache: items already
// held (sched.Warm semantics) are free for every leaf, which is the state
// an adaptive executor plans against in continuous operation.
func OptimalNonLinearWarm(t *query.Tree, w sched.Warm) float64 {
	if t.NumLeaves() > MaxLeaves {
		panic("strategy: OptimalNonLinear limited to 12 leaves")
	}
	return newDP(t, w).solve(0)
}

type dp struct {
	t    *query.Tree
	ands [][]int
	memo map[uint32]float64
	// paid[k][t] is the cost of acquiring items 1..t of stream k that the
	// warm cache does not already hold, so the incremental cost of growing
	// the acquired prefix from a to b is paid[k][b]-paid[k][a].
	paid [][]float64
}

// newDP prepares a DP instance for the tree at the given warm state
// (nil = cold), precomputing the per-stream prefix cost table.
func newDP(t *query.Tree, w sched.Warm) *dp {
	d := &dp{t: t, memo: make(map[uint32]float64), ands: t.AndLeaves()}
	d.paid = make([][]float64, t.NumStreams())
	for k, maxD := range t.StreamMaxItems() {
		row := make([]float64, maxD+1)
		per := t.Streams[k].Cost
		for i := 1; i <= maxD; i++ {
			row[i] = row[i-1]
			if !w.Has(query.StreamID(k), i) {
				row[i] += per
			}
		}
		d.paid[k] = row
	}
	return d
}

// state encoding: 2 bits per leaf.
func get(state uint32, j int) leafState { return leafState(state >> (2 * uint(j)) & 3) }
func set(state uint32, j int, v leafState) uint32 {
	return state&^(3<<(2*uint(j))) | uint32(v)<<(2*uint(j))
}

// rootKnown reports whether the OR root's value is determined: some AND
// node has all leaves TRUE, or every AND node has a FALSE leaf.
func (d *dp) rootKnown(state uint32) bool {
	allFalse := true
	for _, and := range d.ands {
		andTrue := true
		andFalse := false
		for _, j := range and {
			switch get(state, j) {
			case evalFalse:
				andFalse = true
				andTrue = false
			case unevaluated:
				andTrue = false
			}
		}
		if andTrue {
			return true
		}
		if !andFalse {
			allFalse = false
		}
	}
	return allFalse
}

// acquired returns the deepest item index already pulled from each stream:
// the maximum window over evaluated leaves.
func (d *dp) acquiredItems(state uint32) []int {
	acq := make([]int, d.t.NumStreams())
	for j, l := range d.t.Leaves {
		if get(state, j) != unevaluated && l.Items > acq[l.Stream] {
			acq[l.Stream] = l.Items
		}
	}
	return acq
}

// leafCost is the incremental acquisition cost of evaluating leaf l when
// acq items of each stream were already pulled on this path: every item of
// the leaf's window beyond the acquired prefix is paid for unless the warm
// cache already holds it.
func (d *dp) leafCost(acq []int, l query.Leaf) float64 {
	if l.Items <= acq[l.Stream] {
		return 0
	}
	row := d.paid[l.Stream]
	return row[l.Items] - row[acq[l.Stream]]
}

// useful reports whether evaluating leaf j can influence the outcome: its
// AND node has no FALSE leaf yet.
func (d *dp) useful(state uint32, j int) bool {
	for _, r := range d.ands[d.t.Leaves[j].And] {
		if get(state, r) == evalFalse {
			return false
		}
	}
	return true
}

func (d *dp) solve(state uint32) float64 {
	if d.rootKnown(state) {
		return 0
	}
	if v, ok := d.memo[state]; ok {
		return v
	}
	acq := d.acquiredItems(state)
	best := math.Inf(1)
	for j, l := range d.t.Leaves {
		if get(state, j) != unevaluated || !d.useful(state, j) {
			continue
		}
		cost := d.leafCost(acq, l)
		cost += l.Prob * d.solve(set(state, j, evalTrue))
		cost += (1 - l.Prob) * d.solve(set(state, j, evalFalse))
		if cost < best {
			best = cost
		}
	}
	if math.IsInf(best, 1) {
		// No useful leaf but root unknown cannot happen on valid trees:
		// if every remaining leaf is useless, all ANDs have FALSE leaves
		// and the root is known FALSE.
		best = 0
	}
	d.memo[state] = best
	return best
}

// Gap compares the optimal linear strategy (exhaustive over schedules,
// using depth-first dominance) with the optimal non-linear strategy.
type Gap struct {
	Tree      *query.Tree
	Linear    float64 // optimal schedule cost
	NonLinear float64 // optimal decision-tree cost
}

// Ratio returns Linear / NonLinear (>= 1; strictly > 1 witnesses that
// linear strategies are not dominant in the shared model).
func (g Gap) Ratio() float64 {
	if g.NonLinear == 0 {
		if g.Linear == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return g.Linear / g.NonLinear
}

// Analyze computes both optima for a small tree.
func Analyze(t *query.Tree) Gap {
	res := dnf.OptimalDepthFirst(t, dnf.SearchOptions{})
	return Gap{Tree: t, Linear: res.Cost, NonLinear: OptimalNonLinear(t)}
}

var (
	counterOnce sync.Once
	counterTree *query.Tree
)

// CounterExample returns a fixed shared DNF tree on which the optimal
// non-linear strategy is strictly cheaper than every schedule, witnessing
// the paper's Section V claim that linear strategies are not dominant in
// the shared model (the read-once dominance result of [6] fails once
// streams are shared). The witness is found once by a deterministic search
// and cached; it panics if the search fails (covered by tests).
func CounterExample() *query.Tree {
	counterOnce.Do(func() { counterTree = found() })
	if counterTree == nil {
		panic("strategy: built-in counter-example search failed")
	}
	return counterTree
}

// found searches a deterministic pseudo-random family of small shared DNF
// trees for a linear/non-linear gap and returns the first witness. The
// search is seeded, so the returned tree is stable across runs.
func found() *query.Tree {
	rng := rand.New(rand.NewPCG(2014, 8373))
	for trial := 0; trial < 50_000; trial++ {
		nAnds := 2 + rng.IntN(2)
		nStreams := 2 + rng.IntN(2)
		tr := &query.Tree{}
		for k := 0; k < nStreams; k++ {
			tr.Streams = append(tr.Streams, query.Stream{
				Name: string(rune('X' + k)),
				Cost: 1 + float64(rng.IntN(5)),
			})
		}
		for i := 0; i < nAnds; i++ {
			n := 1 + rng.IntN(2)
			for r := 0; r < n; r++ {
				tr.Leaves = append(tr.Leaves, query.Leaf{
					And:    i,
					Stream: query.StreamID(rng.IntN(nStreams)),
					Items:  1 + rng.IntN(3),
					Prob:   float64(1+rng.IntN(9)) / 10,
				})
			}
		}
		if tr.NumLeaves() > 6 || tr.IsReadOnce() {
			continue
		}
		if g := Analyze(tr); g.Ratio() > 1+1e-6 {
			return tr
		}
	}
	return nil
}

// LinearCostOfStrategyTree evaluates an explicit decision-tree strategy —
// used by tests to validate OptimalNonLinear bottom-up on tiny instances.
type DecisionNode struct {
	// Leaf is the leaf to evaluate, or -1 for a terminal node.
	Leaf int
	// IfTrue and IfFalse are the subsequent decisions.
	IfTrue, IfFalse *DecisionNode
}

// CostOfDecisionTree returns the expected cost of following the given
// decision tree: each evaluated leaf pays for the items of its stream not
// already acquired on the path from the root.
func CostOfDecisionTree(t *query.Tree, root *DecisionNode) float64 {
	return CostOfDecisionTreeWarm(t, root, nil)
}

// CostOfDecisionTreeWarm is CostOfDecisionTree with a warm cache: items
// already held are free for every leaf. It re-prices an existing strategy
// under fresh probabilities or cache state without re-running the DP,
// which is how the adaptive executor refreshes a cached decision tree
// whose fingerprint drifted within tolerance.
func CostOfDecisionTreeWarm(t *query.Tree, root *DecisionNode, w sched.Warm) float64 {
	d := newDP(t, w)
	acq := make([]int, t.NumStreams())
	var walk func(n *DecisionNode) float64
	walk = func(n *DecisionNode) float64 {
		if n == nil || n.Leaf < 0 {
			return 0
		}
		l := t.Leaves[n.Leaf]
		cost := d.leafCost(acq, l)
		old := acq[l.Stream]
		if l.Items > old {
			acq[l.Stream] = l.Items
		}
		cost += l.Prob*walk(n.IfTrue) + (1-l.Prob)*walk(n.IfFalse)
		acq[l.Stream] = old
		return cost
	}
	return walk(root)
}

// ScheduleAsDecisionTree converts a schedule into the equivalent decision
// tree (with the short-circuit skips made explicit), for cross-validation:
// its CostOfDecisionTree must equal sched.Cost.
func ScheduleAsDecisionTree(t *query.Tree, s sched.Schedule) *DecisionNode {
	var build func(i int, state uint32) *DecisionNode
	d := &dp{t: t, ands: t.AndLeaves()}
	build = func(i int, state uint32) *DecisionNode {
		if i == len(s) || d.rootKnown(state) {
			return &DecisionNode{Leaf: -1}
		}
		j := s[i]
		if get(state, j) != unevaluated || !d.useful(state, j) {
			return build(i+1, state)
		}
		return &DecisionNode{
			Leaf:    j,
			IfTrue:  build(i+1, set(state, j, evalTrue)),
			IfFalse: build(i+1, set(state, j, evalFalse)),
		}
	}
	return build(0, 0)
}

package dnf

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr/internal/query"
	"paotr/internal/sched"
)

func randomWarmFor(rng *rand.Rand, t *query.Tree) sched.Warm {
	maxD := t.StreamMaxItems()
	w := make(sched.Warm, t.NumStreams())
	for k := range w {
		w[k] = make([]bool, maxD[k])
		for d := range w[k] {
			w[k][d] = rng.Float64() < 0.4
		}
	}
	return w
}

func TestWarmDynamicValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewPCG(700, 701))
	for trial := 0; trial < 150; trial++ {
		tr := randomDNF(rng, 5, 5, 4, 4)
		w := randomWarmFor(rng, tr)
		s := AndOrderedIncCOverPDynamicWarm(tr, w)
		if err := s.Validate(tr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !s.IsDepthFirst(tr) {
			t.Fatalf("trial %d: warm dynamic schedule not depth-first", trial)
		}
	}
}

// TestWarmDynamicColdMatchesDynamic: with a nil warm state the warm
// heuristic must produce a schedule of the same cost as the cold one.
func TestWarmDynamicColdMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewPCG(702, 703))
	for trial := 0; trial < 100; trial++ {
		tr := randomDNF(rng, 4, 4, 3, 3)
		a := sched.Cost(tr, AndOrderedIncCOverPDynamic(tr, nil))
		b := sched.Cost(tr, AndOrderedIncCOverPDynamicWarm(tr, nil))
		if math.Abs(a-b) > 1e-9*(1+a) {
			t.Fatalf("trial %d: cold %v vs warm-nil %v", trial, a, b)
		}
	}
}

// TestWarmDynamicExploitsCache: the warm heuristic must never be worse
// than the cold heuristic when both are scored against the true (warm)
// cost, on average — and must exploit an obviously free AND.
func TestWarmDynamicExploitsCache(t *testing.T) {
	// AND0 = Y[1] (expensive, uncached), AND1 = X[1] (cached: free).
	tr := &query.Tree{
		Streams: []query.Stream{{Name: "X", Cost: 10}, {Name: "Y", Cost: 1}},
		Leaves: []query.Leaf{
			{And: 0, Stream: 1, Items: 1, Prob: 0.5},
			{And: 1, Stream: 0, Items: 1, Prob: 0.5},
		},
	}
	w := sched.Warm{{true}, {false}} // X item cached
	s := AndOrderedIncCOverPDynamicWarm(tr, w)
	// The free AND (leaf 1) must be evaluated first: it can resolve the
	// OR for nothing.
	if s[0] != 1 {
		t.Errorf("warm heuristic should try the free AND first, got %v", s)
	}
	got := sched.CostWarm(tr, s, w)
	want := 0.5 * 1.0 // pay Y only when the free AND fails
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("warm cost = %v, want %v", got, want)
	}
	// The cold heuristic, unaware of the cache, starts with the "cheap" Y.
	cold := AndOrderedIncCOverPDynamic(tr, nil)
	if coldCost := sched.CostWarm(tr, cold, w); coldCost <= got-1e-12 {
		t.Errorf("cold plan (%v) should not beat warm plan (%v) here", coldCost, got)
	}
}

// TestWarmDynamicAverageImprovement: across random instances and cache
// states, planning warm must on average reduce the true warm cost
// relative to planning cold.
func TestWarmDynamicAverageImprovement(t *testing.T) {
	rng := rand.New(rand.NewPCG(704, 705))
	var warmTotal, coldTotal float64
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		tr := randomDNF(rng, 4, 4, 3, 4)
		w := randomWarmFor(rng, tr)
		warmTotal += sched.CostWarm(tr, AndOrderedIncCOverPDynamicWarm(tr, w), w)
		coldTotal += sched.CostWarm(tr, AndOrderedIncCOverPDynamic(tr, nil), w)
	}
	if warmTotal > coldTotal*1.001 {
		t.Errorf("warm planning (%v) worse on aggregate than cold planning (%v)",
			warmTotal, coldTotal)
	}
	t.Logf("aggregate warm-planned cost %.1f vs cold-planned %.1f (%.1f%% saved)",
		warmTotal, coldTotal, 100*(1-warmTotal/coldTotal))
}

func TestPlanAndsWarmCosts(t *testing.T) {
	rng := rand.New(rand.NewPCG(706, 707))
	tr := randomDNF(rng, 3, 4, 3, 3)
	w := randomWarmFor(rng, tr)
	warm := PlanAndsWarm(tr, w)
	cold := PlanAnds(tr)
	if len(warm) != len(cold) {
		t.Fatal("plan count mismatch")
	}
	for i := range warm {
		if warm[i].Cost > cold[i].Cost+1e-9 {
			t.Errorf("AND %d: warm cost %v exceeds cold cost %v", i, warm[i].Cost, cold[i].Cost)
		}
		if math.Abs(warm[i].Prob-cold[i].Prob) > 1e-12 {
			t.Errorf("AND %d: probability changed", i)
		}
	}
}

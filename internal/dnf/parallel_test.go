package dnf

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr/internal/gen"
	"paotr/internal/sched"
)

// TestParallelMatchesSequential: the parallel search must find exactly the
// sequential optimum on random instances.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(800, 801))
	for trial := 0; trial < 60; trial++ {
		tr := randomDNF(rng, 4, 3, 3, 3)
		seq := OptimalDepthFirst(tr, SearchOptions{})
		par := OptimalDepthFirstParallel(tr, SearchOptions{}, 4)
		if !seq.Exact || !par.Exact {
			t.Fatalf("trial %d: truncated", trial)
		}
		if math.Abs(seq.Cost-par.Cost) > 1e-9*(1+seq.Cost) {
			t.Fatalf("trial %d: sequential %v vs parallel %v\ntree %v",
				trial, seq.Cost, par.Cost, tr)
		}
		if err := par.Schedule.Validate(tr); err != nil {
			t.Fatal(err)
		}
		if got := sched.Cost(tr, par.Schedule); math.Abs(got-par.Cost) > 1e-9*(1+par.Cost) {
			t.Fatalf("trial %d: parallel schedule costs %v, reported %v", trial, got, par.Cost)
		}
	}
}

// TestParallelSingleWorkerFallsBack: workers <= 1 must use the sequential
// path.
func TestParallelSingleWorkerFallsBack(t *testing.T) {
	rng := rand.New(rand.NewPCG(802, 803))
	tr := randomDNF(rng, 3, 3, 3, 3)
	a := OptimalDepthFirst(tr, SearchOptions{})
	b := OptimalDepthFirstParallel(tr, SearchOptions{}, 1)
	if a.Cost != b.Cost {
		t.Errorf("fallback mismatch: %v vs %v", a.Cost, b.Cost)
	}
}

// TestParallelNodeCap: the node cap bounds total work across workers and
// marks the result inexact when hit.
func TestParallelNodeCap(t *testing.T) {
	cfg := gen.DNFConfig{N: 8, Cap: 8, MaxTotal: 20, Rho: 2}
	tr := cfg.Generate(gen.Dist{}, gen.NewRng(99))
	res := OptimalDepthFirstParallel(tr, SearchOptions{MaxNodes: 100}, 4)
	if err := res.Schedule.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("100-node cap should truncate this instance")
	}
	// The incumbent is still at least as good as the best heuristic.
	_, hc := BestHeuristicSchedule(tr)
	if res.Cost > hc+1e-9 {
		t.Errorf("truncated parallel result %v worse than incumbent %v", res.Cost, hc)
	}
}

// TestParallelOnHardInstance: a previously hard small-instance shape must
// be solved exactly and match the sequential answer.
func TestParallelOnHardInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := gen.DNFConfig{N: 6, Cap: 4, MaxTotal: 16, Rho: 3}
	tr := cfg.Generate(gen.Dist{}, gen.NewRng(123))
	seq := OptimalDepthFirst(tr, SearchOptions{MaxNodes: 20_000_000})
	par := OptimalDepthFirstParallel(tr, SearchOptions{MaxNodes: 20_000_000}, 8)
	if seq.Exact && par.Exact && math.Abs(seq.Cost-par.Cost) > 1e-9*(1+seq.Cost) {
		t.Fatalf("hard instance: sequential %v vs parallel %v", seq.Cost, par.Cost)
	}
}

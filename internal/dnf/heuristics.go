// Package dnf implements schedule-construction heuristics and exhaustive
// searches for DNF trees (an OR of AND nodes) in the shared-stream model of
// Casanova et al. (IPDPS 2014), Section IV.
//
// Three heuristic families are provided, as in the paper:
//
//   - leaf-ordered: sort all leaves globally by a per-leaf key;
//   - AND-ordered: build a depth-first schedule (Theorem 2 says one is
//     optimal), ordering leaves within each AND node with the optimal
//     AND-tree algorithm and ordering AND nodes by cost, success
//     probability, or their ratio, either statically or dynamically;
//   - stream-ordered: the prior-art heuristic of Lim, Misra and Mo [4],
//     which acquires streams one at a time.
package dnf

import (
	"math"
	"math/rand/v2"
	"sort"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// Heuristic is a named schedule-construction strategy. Schedule must
// return a valid schedule for any valid DNF tree. The rng is used only by
// randomized heuristics and may be nil for deterministic ones.
type Heuristic struct {
	// Name identifies the heuristic; it matches the legend of Figures 5
	// and 6 in the paper.
	Name string
	// Schedule builds an evaluation order for t.
	Schedule func(t *query.Tree, rng *rand.Rand) sched.Schedule
}

// Heuristics returns the ten heuristics evaluated in the paper, in the
// order of the figure legends: the stream-ordered heuristic of [4], four
// leaf-ordered heuristics, three static AND-ordered heuristics and two
// dynamic AND-ordered heuristics.
func Heuristics() []Heuristic {
	return []Heuristic{
		{"Stream-ord.", StreamOrdered},
		{"Leaf-ord., random", LeafOrderedRandom},
		{"Leaf-ord., dec. q", LeafOrderedDecQ},
		{"Leaf-ord., inc. C", LeafOrderedIncC},
		{"Leaf-ord., inc. C/q", LeafOrderedIncCOverQ},
		{"AND-ord., dec. p, stat", AndOrderedDecPStatic},
		{"AND-ord., inc. C, stat", AndOrderedIncCStatic},
		{"AND-ord., inc. C/p, stat", AndOrderedIncCOverPStatic},
		{"AND-ord., inc. C, dyn", AndOrderedIncCDynamic},
		{"AND-ord., inc. C/p, dyn", AndOrderedIncCOverPDynamic},
	}
}

// Best is the heuristic the paper recommends: AND-ordered by increasing
// C/p with dynamic cost computation. It wins on 94.5% of the large
// instances and 83.8% of the small ones in the paper's evaluation.
var Best = Heuristic{"AND-ord., inc. C/p, dyn", AndOrderedIncCOverPDynamic}

// sortLeavesBy returns the identity schedule sorted stably by the key.
func sortLeavesBy(t *query.Tree, key func(j int) float64) sched.Schedule {
	s := make(sched.Schedule, t.NumLeaves())
	for j := range s {
		s[j] = j
	}
	sort.SliceStable(s, func(a, b int) bool { return key(s[a]) < key(s[b]) })
	return s
}

// LeafOrderedRandom is the baseline heuristic: a uniformly random leaf
// permutation.
func LeafOrderedRandom(t *query.Tree, rng *rand.Rand) sched.Schedule {
	s := make(sched.Schedule, t.NumLeaves())
	for j := range s {
		s[j] = j
	}
	rng.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
	return s
}

// LeafOrderedDecQ sorts leaves by decreasing failure probability q,
// prioritizing leaves with high chances of short-circuiting their AND node.
func LeafOrderedDecQ(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return sortLeavesBy(t, func(j int) float64 { return -t.Leaves[j].Q() })
}

// LeafOrderedIncC sorts leaves by increasing isolated acquisition cost
// C_j = d_j * c(S(j)).
func LeafOrderedIncC(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return sortLeavesBy(t, t.LeafAcquireCost)
}

// LeafOrderedIncCOverQ sorts leaves by increasing C_j / q_j, combining low
// cost with high short-circuiting power.
func LeafOrderedIncCOverQ(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return sortLeavesBy(t, func(j int) float64 {
		q := t.Leaves[j].Q()
		if q <= 0 {
			return math.Inf(1)
		}
		return t.LeafAcquireCost(j) / q
	})
}

package dnf

import (
	"math/rand/v2"
	"sort"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// SearchResult reports the outcome of an exhaustive schedule search.
type SearchResult struct {
	// Schedule is the best schedule found.
	Schedule sched.Schedule
	// Cost is its expected cost.
	Cost float64
	// Exact is true when the search space was fully explored (possibly
	// with sound pruning), so Cost is the true optimum.
	Exact bool
	// Nodes is the number of search-tree nodes visited.
	Nodes int64
}

// SearchOptions bounds exhaustive searches.
type SearchOptions struct {
	// MaxNodes caps the number of visited search nodes; 0 means no cap.
	// When the cap is hit the search returns the incumbent with
	// Exact=false.
	MaxNodes int64
	// DepthFirst restricts the search to depth-first schedules. By
	// Theorem 2 this restriction preserves optimality for DNF trees and
	// shrinks the search space dramatically.
	DepthFirst bool
}

// OptimalDepthFirst finds a minimum-cost schedule among depth-first
// schedules by branch-and-bound. By Theorem 2 of the paper the result is a
// globally optimal schedule. The search is exponential; it is intended for
// the paper's "small" instances (up to ~20 leaves). A node cap can be set
// through opts.
func OptimalDepthFirst(t *query.Tree, opts SearchOptions) SearchResult {
	opts.DepthFirst = true
	return branchAndBound(t, opts)
}

// OptimalAnyOrder searches over all leaf permutations, not only depth-first
// ones. It is used to verify Theorem 2 empirically on tiny trees.
func OptimalAnyOrder(t *query.Tree, opts SearchOptions) SearchResult {
	opts.DepthFirst = false
	return branchAndBound(t, opts)
}

// BestHeuristicSchedule runs every deterministic heuristic and returns the
// schedule with the lowest expected cost. It seeds the branch-and-bound
// incumbent and is also a reasonable "portfolio" scheduler in its own
// right.
func BestHeuristicSchedule(t *query.Tree) (sched.Schedule, float64) {
	var best sched.Schedule
	bestCost := 0.0
	for _, h := range Heuristics() {
		if h.Schedule == nil {
			continue
		}
		var s sched.Schedule
		if h.Name == "Leaf-ord., random" {
			continue // randomized: skip for determinism
		}
		s = h.Schedule(t, nil)
		c := sched.Cost(t, s)
		if best == nil || c < bestCost {
			best, bestCost = s, c
		}
	}
	if best == nil {
		best = LeafOrderedIncC(t, nil)
		bestCost = sched.Cost(t, best)
	}
	return best, bestCost
}

// branchAndBound explores leaf orderings with the incremental Proposition 2
// evaluator. Prefix costs are monotone non-decreasing, so any prefix whose
// cost reaches the incumbent is pruned. Candidate branches are tried in
// increasing order of immediate cost contribution, which tends to reach
// good incumbents early and sharpen pruning.
//
// In depth-first mode the search additionally applies the Proposition 1
// dominance rule, which the paper states for DNF trees as well: within an
// AND node, a leaf is never scheduled before an unscheduled same-stream
// leaf with a smaller window. Branching within an AND node is therefore
// limited to, per stream, the unscheduled leaves of minimal window size
// (deduplicated when both window and probability coincide). The any-order
// search does not use the reduction, so comparing the two cross-validates
// it together with Theorem 2.
func branchAndBound(t *query.Tree, opts SearchOptions) SearchResult {
	m := t.NumLeaves()
	incumbent, incumbentCost := BestHeuristicSchedule(t)
	res := SearchResult{Schedule: incumbent.Clone(), Cost: incumbentCost, Exact: true}
	if m == 0 {
		return res
	}

	prefix := sched.NewPrefix(t)
	used := make([]bool, m)
	leafAnd := make([]int, m)
	for j, l := range t.Leaves {
		leafAnd[j] = l.And
	}
	andLeft := make([]int, t.NumAnds())
	for i, and := range t.AndLeaves() {
		andLeft[i] = len(and)
	}
	// groups[a] = leaves of AND a grouped by stream, each group sorted by
	// (d, p, index); used by the Proposition 1 branching reduction.
	groups := make([][][]int, t.NumAnds())
	if opts.DepthFirst {
		for a, and := range t.AndLeaves() {
			byStream := map[query.StreamID][]int{}
			for _, j := range and {
				byStream[t.Leaves[j].Stream] = append(byStream[t.Leaves[j].Stream], j)
			}
			for _, g := range byStream {
				sort.Slice(g, func(x, y int) bool {
					lx, ly := t.Leaves[g[x]], t.Leaves[g[y]]
					if lx.Items != ly.Items {
						return lx.Items < ly.Items
					}
					if lx.Prob != ly.Prob {
						return lx.Prob < ly.Prob
					}
					return g[x] < g[y]
				})
				groups[a] = append(groups[a], g)
			}
			sort.Slice(groups[a], func(x, y int) bool { return groups[a][x][0] < groups[a][y][0] })
		}
	}
	currentAnd := -1 // AND in progress for depth-first search
	truncated := false

	type cand struct {
		leaf  int
		delta float64
	}
	// One scratch candidate buffer per depth to avoid allocation.
	bufs := make([][]cand, m+1)
	for d := range bufs {
		bufs[d] = make([]cand, 0, m)
	}
	scratch := make([]int, 0, m)

	const eps = 1e-12

	// andCandidates appends, per stream group of AND a, the admissible
	// next leaves under Proposition 1: the unused leaves whose window is
	// the minimal unused window of the group, deduplicated on (d, p).
	andCandidates := func(a int, out []int) []int {
		for _, g := range groups[a] {
			minD := -1
			lastD, lastP := -1, -1.0
			for _, j := range g {
				if used[j] {
					continue
				}
				l := t.Leaves[j]
				if minD == -1 {
					minD = l.Items
				}
				if l.Items != minD {
					break // larger windows are dominated (Proposition 1)
				}
				if l.Items == lastD && l.Prob == lastP {
					continue // identical leaf: symmetric, skip
				}
				lastD, lastP = l.Items, l.Prob
				out = append(out, j)
			}
		}
		return out
	}

	var rec func(depth int)
	rec = func(depth int) {
		if truncated {
			return
		}
		res.Nodes++
		if opts.MaxNodes > 0 && res.Nodes > opts.MaxNodes {
			truncated = true
			return
		}
		if depth == m {
			if c := prefix.Cost(); c < res.Cost-eps {
				res.Cost = c
				res.Schedule = append(res.Schedule[:0], prefix.Order()...)
			}
			return
		}
		var leaves []int
		if opts.DepthFirst {
			scratch = scratch[:0]
			if currentAnd != -1 {
				scratch = andCandidates(currentAnd, scratch)
			} else {
				for a := range groups {
					if andLeft[a] == len(t.AndLeaves()[a]) { // unstarted
						scratch = andCandidates(a, scratch)
					}
				}
			}
			leaves = scratch
		}
		cands := bufs[depth][:0]
		if opts.DepthFirst {
			for _, j := range leaves {
				delta := prefix.Append(j)
				prefix.Pop()
				if prefix.Cost()+delta < res.Cost-eps {
					cands = append(cands, cand{j, delta})
				}
			}
		} else {
			for j := 0; j < m; j++ {
				if used[j] {
					continue
				}
				delta := prefix.Append(j)
				prefix.Pop()
				if prefix.Cost()+delta < res.Cost-eps {
					cands = append(cands, cand{j, delta})
				}
			}
		}
		bufs[depth] = cands
		sort.Slice(cands, func(a, b int) bool { return cands[a].delta < cands[b].delta })
		for _, c := range cands {
			if truncated {
				return
			}
			if prefix.Cost()+c.delta >= res.Cost-eps {
				continue // incumbent improved since candidate generation
			}
			j := c.leaf
			a := leafAnd[j]
			prevAnd := currentAnd
			used[j] = true
			prefix.Append(j)
			andLeft[a]--
			if andLeft[a] == 0 {
				currentAnd = -1
			} else {
				currentAnd = a
			}
			rec(depth + 1)
			currentAnd = prevAnd
			andLeft[a]++
			prefix.Pop()
			used[j] = false
		}
	}
	rec(0)
	res.Exact = !truncated
	return res
}

// RandomSchedule returns a uniformly random leaf permutation; exported for
// harnesses that need an unbiased baseline distinct from the heuristics.
func RandomSchedule(t *query.Tree, rng *rand.Rand) sched.Schedule {
	return LeafOrderedRandom(t, rng)
}

package dnf

import (
	"math"

	"paotr/internal/andtree"
	"paotr/internal/query"
	"paotr/internal/sched"
)

// PlanAndsWarm runs the warm-start Algorithm 1 on each AND node in
// isolation, with the device cache state w: the per-AND costs reflect only
// the items that would actually have to be pulled.
func PlanAndsWarm(t *query.Tree, w sched.Warm) []AndPlan {
	plans := make([]AndPlan, t.NumAnds())
	for i, and := range t.AndLeaves() {
		sub := &query.Tree{Streams: t.Streams, Leaves: make([]query.Leaf, len(and))}
		for r, j := range and {
			sub.Leaves[r] = t.Leaves[j]
			sub.Leaves[r].And = 0
		}
		order := andtree.GreedyWarm(sub, w)
		plan := AndPlan{
			Leaves: make([]int, len(and)),
			Cost:   sched.AndTreeCostWarm(sub, order, w),
			Prob:   t.AndProb(i),
		}
		for r, local := range order {
			plan.Leaves[r] = and[local]
		}
		plans[i] = plan
	}
	return plans
}

// AndOrderedIncCOverPDynamicWarm is the paper's best heuristic (AND nodes
// by increasing incremental C/p, dynamic) computed against a warm device
// cache: items already in memory are free. This is the planner the
// continuous-query engine uses — after the first execution most windows
// are mostly cached, and cold-cache planning would systematically
// over-estimate leaf costs.
func AndOrderedIncCOverPDynamicWarm(t *query.Tree, w sched.Warm) sched.Schedule {
	plans := PlanAndsWarm(t, w)
	prefix := sched.NewPrefixWarm(t, w)
	remaining := make([]int, len(plans))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestIdx := -1
		bestKey := math.Inf(1)
		for idx, i := range remaining {
			delta := prefix.AppendAll(plans[i].Leaves)
			prefix.PopN(len(plans[i].Leaves))
			key := math.Inf(1)
			if plans[i].Prob > 0 {
				key = delta / plans[i].Prob
			}
			if key < bestKey {
				bestKey = key
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			bestIdx = 0
		}
		i := remaining[bestIdx]
		prefix.AppendAll(plans[i].Leaves)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return append(sched.Schedule(nil), prefix.Order()...)
}

package dnf

import (
	"math"
	"sync"

	"paotr/internal/andtree"
	"paotr/internal/query"
	"paotr/internal/sched"
)

// planScratch pools the warm planner's per-call working set — the
// single-AND sub-tree handed to Algorithm 1, the per-AND plans with
// their leaf buffers, and the remaining-AND index — so the steady-state
// replan path of the engine and fleet planners stops allocating here.
type planScratch struct {
	sub       query.Tree
	plans     []AndPlan
	remaining []int
}

var planScratchPool = sync.Pool{New: func() any { return new(planScratch) }}

// PlanAndsWarm runs the warm-start Algorithm 1 on each AND node in
// isolation, with the device cache state w: the per-AND costs reflect only
// the items that would actually have to be pulled.
func PlanAndsWarm(t *query.Tree, w sched.Warm) []AndPlan {
	var sub query.Tree
	return planAndsWarmInto(t, w, &sub, nil)
}

// planAndsWarmInto is PlanAndsWarm against caller-owned storage: plans
// and their per-AND Leaves buffers are reused when capacity allows, and
// sub is the scratch single-AND tree Algorithm 1 orders in place.
func planAndsWarmInto(t *query.Tree, w sched.Warm, sub *query.Tree, plans []AndPlan) []AndPlan {
	nAnds := t.NumAnds()
	if cap(plans) < nAnds {
		plans = append(plans[:cap(plans)], make([]AndPlan, nAnds-cap(plans))...)
	}
	plans = plans[:nAnds]
	sub.Streams = t.Streams
	for i, and := range t.AndLeaves() {
		if cap(sub.Leaves) < len(and) {
			sub.Leaves = make([]query.Leaf, len(and))
		}
		sub.Leaves = sub.Leaves[:len(and)]
		for r, j := range and {
			sub.Leaves[r] = t.Leaves[j]
			sub.Leaves[r].And = 0
		}
		sub.InvalidateCache()
		order := andtree.GreedyWarm(sub, w)
		leaves := plans[i].Leaves
		if cap(leaves) < len(and) {
			leaves = make([]int, len(and))
		}
		leaves = leaves[:len(and)]
		for r, local := range order {
			leaves[r] = and[local]
		}
		plans[i] = AndPlan{
			Leaves: leaves,
			Cost:   sched.AndTreeCostWarm(sub, order, w),
			Prob:   t.AndProb(i),
		}
	}
	return plans
}

// AndOrderedIncCOverPDynamicWarm is the paper's best heuristic (AND nodes
// by increasing incremental C/p, dynamic) computed against a warm device
// cache: items already in memory are free. This is the planner the
// continuous-query engine uses — after the first execution most windows
// are mostly cached, and cold-cache planning would systematically
// over-estimate leaf costs.
func AndOrderedIncCOverPDynamicWarm(t *query.Tree, w sched.Warm) sched.Schedule {
	sc := planScratchPool.Get().(*planScratch)
	defer planScratchPool.Put(sc)
	sc.plans = planAndsWarmInto(t, w, &sc.sub, sc.plans)
	plans := sc.plans
	prefix := sched.NewPrefixWarm(t, w)
	if cap(sc.remaining) < len(plans) {
		sc.remaining = make([]int, len(plans))
	}
	remaining := sc.remaining[:len(plans)]
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestIdx := -1
		bestKey := math.Inf(1)
		for idx, i := range remaining {
			delta := prefix.AppendAll(plans[i].Leaves)
			prefix.PopN(len(plans[i].Leaves))
			key := math.Inf(1)
			if plans[i].Prob > 0 {
				key = delta / plans[i].Prob
			}
			if key < bestKey {
				bestKey = key
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			bestIdx = 0
		}
		i := remaining[bestIdx]
		prefix.AppendAll(plans[i].Leaves)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return append(sched.Schedule(nil), prefix.Order()...)
}

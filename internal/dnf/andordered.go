package dnf

import (
	"math"
	"math/rand/v2"
	"sort"

	"paotr/internal/andtree"
	"paotr/internal/query"
	"paotr/internal/sched"
)

// AndPlan holds the per-AND-node quantities used by the AND-ordered
// heuristics: the Algorithm-1 leaf order of the AND node considered in
// isolation, its expected evaluation cost in isolation, and its success
// probability.
type AndPlan struct {
	// Leaves is the AND node's leaf indices (into the full tree) in the
	// order produced by the optimal AND-tree algorithm.
	Leaves []int
	// Cost is the expected cost of evaluating the AND node alone.
	Cost float64
	// Prob is the probability that the AND node evaluates to TRUE.
	Prob float64
}

// PlanAnds runs Algorithm 1 on each AND node of t in isolation and returns
// one AndPlan per AND node.
func PlanAnds(t *query.Tree) []AndPlan {
	plans := make([]AndPlan, t.NumAnds())
	for i, and := range t.AndLeaves() {
		sub := &query.Tree{Streams: t.Streams, Leaves: make([]query.Leaf, len(and))}
		for r, j := range and {
			sub.Leaves[r] = t.Leaves[j]
			sub.Leaves[r].And = 0
		}
		order := andtree.Greedy(sub)
		plan := AndPlan{
			Leaves: make([]int, len(and)),
			Cost:   sched.AndTreeCost(sub, order),
			Prob:   t.AndProb(i),
		}
		for r, local := range order {
			plan.Leaves[r] = and[local]
		}
		plans[i] = plan
	}
	return plans
}

// concatPlans flattens the plans of the AND nodes, taken in the given
// order, into a depth-first schedule.
func concatPlans(plans []AndPlan, order []int) sched.Schedule {
	var s sched.Schedule
	for _, i := range order {
		s = append(s, plans[i].Leaves...)
	}
	return s
}

// andOrderedStatic sorts AND nodes by the key computed on their isolated
// plans and concatenates the Algorithm-1 leaf orders.
func andOrderedStatic(t *query.Tree, key func(AndPlan) float64) sched.Schedule {
	plans := PlanAnds(t)
	order := make([]int, len(plans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return key(plans[order[a]]) < key(plans[order[b]])
	})
	return concatPlans(plans, order)
}

// AndOrderedDecPStatic orders AND nodes by decreasing success probability:
// the AND most likely to resolve the OR root to TRUE goes first.
func AndOrderedDecPStatic(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return andOrderedStatic(t, func(p AndPlan) float64 { return -p.Prob })
}

// AndOrderedIncCStatic orders AND nodes by increasing isolated expected
// cost.
func AndOrderedIncCStatic(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return andOrderedStatic(t, func(p AndPlan) float64 { return p.Cost })
}

// AndOrderedIncCOverPStatic orders AND nodes by increasing cost-to-success
// ratio C/p. In the read-once model this is exactly the optimal DNF
// algorithm of Greiner et al.
func AndOrderedIncCOverPStatic(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return andOrderedStatic(t, func(p AndPlan) float64 {
		if p.Prob <= 0 {
			return math.Inf(1)
		}
		return p.Cost / p.Prob
	})
}

// andOrderedDynamic greedily picks the next AND node by the key applied to
// the *incremental* expected cost of appending the AND node's leaves to the
// schedule built so far. The incremental cost, computed exactly with the
// Proposition 2 prefix evaluator, accounts for data items probabilistically
// acquired by previously scheduled AND nodes — the paper's "dynamic"
// variant.
func andOrderedDynamic(t *query.Tree, key func(cost, prob float64) float64) sched.Schedule {
	plans := PlanAnds(t)
	prefix := sched.NewPrefix(t)
	remaining := make([]int, len(plans))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestIdx := -1
		bestKey := math.Inf(1)
		for idx, i := range remaining {
			delta := prefix.AppendAll(plans[i].Leaves)
			prefix.PopN(len(plans[i].Leaves))
			if k := key(delta, plans[i].Prob); k < bestKey {
				bestKey = k
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			bestIdx = 0 // all keys are +Inf: any order is as good
		}
		i := remaining[bestIdx]
		prefix.AppendAll(plans[i].Leaves)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return append(sched.Schedule(nil), prefix.Order()...)
}

// AndOrderedIncCDynamic orders AND nodes by increasing incremental expected
// cost, recomputed after each placement.
func AndOrderedIncCDynamic(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return andOrderedDynamic(t, func(cost, _ float64) float64 { return cost })
}

// AndOrderedIncCOverPDynamic orders AND nodes by increasing incremental
// C/p. This is the heuristic the paper found best overall.
func AndOrderedIncCOverPDynamic(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return andOrderedDynamic(t, func(cost, prob float64) float64 {
		if prob <= 0 {
			return math.Inf(1)
		}
		return cost / prob
	})
}

package dnf

import (
	"math"
	"math/rand/v2"
	"sort"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// RDirection selects how stream-ordered schedules sort streams on the
// metric R(S) of Lim, Misra and Mo [4].
type RDirection int

const (
	// DecreasingR sorts streams by decreasing R, i.e. high shortcutting
	// power per unit of acquisition cost first. This matches the
	// rationale stated in the paper ("prioritize streams that can
	// shortcut many leaf evaluations and that have low maximum data item
	// acquisition costs") and performs best empirically; it is the
	// default.
	DecreasingR RDirection = iota
	// IncreasingR sorts streams by increasing R, following the letter of
	// the paper's text. Kept for the ablation study: the paper's formula
	// and its prose disagree on the direction (see DESIGN.md).
	IncreasingR
)

// LeafDOrder selects the order of same-stream leaves in stream-ordered
// schedules.
type LeafDOrder int

const (
	// IncreasingD evaluates same-stream leaves by increasing window size,
	// as Proposition 1 recommends; this is the improved version the paper
	// uses in its experiments.
	IncreasingD LeafDOrder = iota
	// DecreasingD evaluates same-stream leaves by decreasing window size,
	// acquiring the maximum number of items needed from the stream up
	// front — the original formulation in [4].
	DecreasingD
)

// StreamOrderedOptions parameterizes StreamOrderedWith.
type StreamOrderedOptions struct {
	Direction RDirection
	LeafOrder LeafDOrder
}

// StreamRank computes the metric R(S) of [4] for every stream of t:
//
//	R(S) = sum_{leaves l_{i,j} on S} q_{i,j} * n_{i,j}
//	       / ( max_{leaves l_{i,j} on S} d_{i,j} * c(S) )
//
// where n_{i,j} = m_i - 1 is the number of leaves whose evaluation a FALSE
// at l_{i,j} would short-circuit (the other leaves of its AND node). The
// numerator is the stream's shortcutting power, the denominator its worst
// acquisition cost. Streams not used by any leaf get R = -Inf so they sort
// deterministically; they contribute no leaves to the schedule.
func StreamRank(t *query.Tree) []float64 {
	r := make([]float64, t.NumStreams())
	den := make([]float64, t.NumStreams())
	andSize := make([]int, t.NumAnds())
	for _, and := range t.AndLeaves() {
		andSize[t.Leaves[and[0]].And] = len(and)
	}
	for _, l := range t.Leaves {
		r[l.Stream] += l.Q() * float64(andSize[l.And]-1)
		if d := float64(l.Items) * t.Streams[l.Stream].Cost; d > den[l.Stream] {
			den[l.Stream] = d
		}
	}
	for k := range r {
		switch {
		case den[k] > 0:
			r[k] /= den[k]
		case den[k] == 0 && r[k] == 0:
			r[k] = math.Inf(-1) // unused stream
		default:
			r[k] = math.Inf(1) // free stream with shortcutting power
		}
	}
	return r
}

// StreamOrderedWith builds a stream-ordered schedule: streams are sorted on
// R(S), and all leaves of a stream are scheduled consecutively (so that the
// stream's items are acquired once and reused), ordered by window size.
func StreamOrderedWith(t *query.Tree, opt StreamOrderedOptions) sched.Schedule {
	r := StreamRank(t)
	streams := make([]int, 0, t.NumStreams())
	for k := range r {
		streams = append(streams, k)
	}
	sort.SliceStable(streams, func(a, b int) bool {
		if opt.Direction == DecreasingR {
			return r[streams[a]] > r[streams[b]]
		}
		return r[streams[a]] < r[streams[b]]
	})
	byStream := make([][]int, t.NumStreams())
	for j := range t.Leaves {
		k := t.Leaves[j].Stream
		byStream[k] = append(byStream[k], j)
	}
	var s sched.Schedule
	for _, k := range streams {
		ls := byStream[k]
		sort.SliceStable(ls, func(a, b int) bool {
			da, db := t.Leaves[ls[a]].Items, t.Leaves[ls[b]].Items
			if opt.LeafOrder == IncreasingD {
				return da < db
			}
			return da > db
		})
		s = append(s, ls...)
	}
	return s
}

// StreamOrdered is the stream-ordered heuristic as evaluated in the paper:
// the heuristic of [4] improved with the Proposition 1 leaf order
// (increasing d within each stream).
func StreamOrdered(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return StreamOrderedWith(t, StreamOrderedOptions{Direction: DecreasingR, LeafOrder: IncreasingD})
}

// StreamOrderedOriginal is the heuristic exactly as proposed in [4], with
// same-stream leaves in decreasing d order. The paper reports (and our
// ablation confirms) that the increasing-d version is at least as good on
// virtually every instance.
func StreamOrderedOriginal(t *query.Tree, _ *rand.Rand) sched.Schedule {
	return StreamOrderedWith(t, StreamOrderedOptions{Direction: DecreasingR, LeafOrder: DecreasingD})
}

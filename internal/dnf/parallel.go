package dnf

import (
	"math"
	"sync"
	"sync/atomic"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// sharedBest is an incumbent shared between parallel search workers:
// lock-free reads on the hot pruning path, mutex-serialized updates.
type sharedBest struct {
	bits  atomic.Uint64 // math.Float64bits of the best cost
	mu    sync.Mutex
	sched sched.Schedule
}

func newSharedBest(s sched.Schedule, cost float64) *sharedBest {
	b := &sharedBest{sched: s.Clone()}
	b.bits.Store(math.Float64bits(cost))
	return b
}

func (b *sharedBest) Cost() float64 { return math.Float64frombits(b.bits.Load()) }

// Update installs a better schedule; returns false if cost is not an
// improvement (another worker got there first).
func (b *sharedBest) Update(s []int, cost float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cost >= b.Cost() {
		return false
	}
	b.bits.Store(math.Float64bits(cost))
	b.sched = append(b.sched[:0], s...)
	return true
}

func (b *sharedBest) Snapshot() (sched.Schedule, float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sched.Clone(), b.Cost()
}

// OptimalDepthFirstParallel is OptimalDepthFirst with the first branching
// level fanned out over worker goroutines that share the incumbent. The
// result is identical to the sequential search (both are exact); only
// wall-clock time and the node count differ (sharper incumbents prune
// more, so the parallel search often visits fewer nodes in total).
//
// workers <= 1 falls back to the sequential search. opts.MaxNodes bounds
// the total nodes across all workers.
func OptimalDepthFirstParallel(t *query.Tree, opts SearchOptions, workers int) SearchResult {
	if workers <= 1 {
		return OptimalDepthFirst(t, opts)
	}
	opts.DepthFirst = true
	m := t.NumLeaves()
	incumbent, incumbentCost := BestHeuristicSchedule(t)
	if m == 0 {
		return SearchResult{Schedule: incumbent, Cost: incumbentCost, Exact: true}
	}
	best := newSharedBest(incumbent, incumbentCost)

	// First-level branches: every admissible (AND, first leaf) pair under
	// the Proposition 1 reduction.
	var firsts []int
	type sig struct {
		and  int
		k    query.StreamID
		d    int
		prob float64
	}
	seenSig := map[sig]bool{}
	for a, and := range t.AndLeaves() {
		// Per (AND, stream): minimal-d leaves only (Proposition 1).
		minD := map[query.StreamID]int{}
		for _, j := range and {
			l := t.Leaves[j]
			if d, ok := minD[l.Stream]; !ok || l.Items < d {
				minD[l.Stream] = l.Items
			}
		}
		for _, j := range and {
			l := t.Leaves[j]
			if l.Items != minD[l.Stream] {
				continue
			}
			sg := sig{a, l.Stream, l.Items, l.Prob}
			if seenSig[sg] {
				continue // identical first moves are symmetric
			}
			seenSig[sg] = true
			firsts = append(firsts, j)
		}
	}
	var totalNodes atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	truncated := atomic.Bool{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for first := range jobs {
				res := searchFrom(t, opts, first, best, &totalNodes)
				if !res {
					truncated.Store(true)
				}
			}
		}()
	}
	for _, f := range firsts {
		jobs <- f
	}
	close(jobs)
	wg.Wait()

	s, c := best.Snapshot()
	return SearchResult{Schedule: s, Cost: c, Exact: !truncated.Load(), Nodes: totalNodes.Load()}
}

// searchFrom runs the sequential depth-first branch-and-bound with a
// forced first leaf, pruning against (and updating) the shared incumbent.
// It reports whether the subtree was fully explored.
func searchFrom(t *query.Tree, opts SearchOptions, first int, best *sharedBest, totalNodes *atomic.Int64) bool {
	// Reuse the sequential machinery by running branchAndBound on a
	// constrained searcher: we inline a small variant here to keep the
	// shared-incumbent reads on the hot path.
	m := t.NumLeaves()
	prefix := sched.NewPrefix(t)
	used := make([]bool, m)
	andLeft := make([]int, t.NumAnds())
	andSize := make([]int, t.NumAnds())
	for i, and := range t.AndLeaves() {
		andLeft[i] = len(and)
		andSize[i] = len(and)
	}
	groups := buildGroups(t)
	const eps = 1e-12
	complete := true

	bufs := make([][]bbCand, m+1)
	for d := range bufs {
		bufs[d] = make([]bbCand, 0, m)
	}
	currentAnd := -1

	var rec func(depth int)
	rec = func(depth int) {
		if !complete {
			return
		}
		n := totalNodes.Add(1)
		if opts.MaxNodes > 0 && n > opts.MaxNodes {
			complete = false
			return
		}
		if depth == m {
			if c := prefix.Cost(); c < best.Cost()-eps {
				best.Update(prefix.Order(), c)
			}
			return
		}
		cands := bufs[depth][:0]
		collect := func(a int) {
			for _, g := range groups[a] {
				minD := -1
				lastD, lastP := -1, -1.0
				for _, j := range g {
					if used[j] {
						continue
					}
					l := t.Leaves[j]
					if minD == -1 {
						minD = l.Items
					}
					if l.Items != minD {
						break
					}
					if l.Items == lastD && l.Prob == lastP {
						continue
					}
					lastD, lastP = l.Items, l.Prob
					delta := prefix.Append(j)
					prefix.Pop()
					if prefix.Cost()+delta < best.Cost()-eps {
						cands = append(cands, bbCand{j, delta})
					}
				}
			}
		}
		if currentAnd != -1 {
			collect(currentAnd)
		} else {
			for a := range groups {
				if andLeft[a] == andSize[a] {
					collect(a)
				}
			}
		}
		bufs[depth] = cands
		sortCands(cands)
		for _, c := range cands {
			if !complete {
				return
			}
			if prefix.Cost()+c.delta >= best.Cost()-eps {
				continue
			}
			j := c.leaf
			a := t.Leaves[j].And
			prev := currentAnd
			used[j] = true
			prefix.Append(j)
			andLeft[a]--
			if andLeft[a] == 0 {
				currentAnd = -1
			} else {
				currentAnd = a
			}
			rec(depth + 1)
			currentAnd = prev
			andLeft[a]++
			prefix.Pop()
			used[j] = false
		}
	}

	// Force the first leaf.
	a := t.Leaves[first].And
	used[first] = true
	prefix.Append(first)
	andLeft[a]--
	if andLeft[a] > 0 {
		currentAnd = a
	}
	rec(1)
	return complete
}

// bbCand is one branch candidate of the parallel search.
type bbCand struct {
	leaf  int
	delta float64
}

// sortCands orders candidates by increasing immediate contribution
// (insertion sort: candidate lists are short and mostly sorted).
func sortCands(cands []bbCand) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].delta < cands[j-1].delta; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// buildGroups exposes the per-AND stream groups used by the Proposition 1
// branching reduction (shared with the sequential search).
func buildGroups(t *query.Tree) [][][]int {
	groups := make([][][]int, t.NumAnds())
	for a, and := range t.AndLeaves() {
		byStream := map[query.StreamID][]int{}
		for _, j := range and {
			byStream[t.Leaves[j].Stream] = append(byStream[t.Leaves[j].Stream], j)
		}
		for _, g := range byStream {
			sortLeavesGroup(t, g)
			groups[a] = append(groups[a], g)
		}
		// Deterministic group order.
		for i := 1; i < len(groups[a]); i++ {
			for j := i; j > 0 && groups[a][j][0] < groups[a][j-1][0]; j-- {
				groups[a][j], groups[a][j-1] = groups[a][j-1], groups[a][j]
			}
		}
	}
	return groups
}

func sortLeavesGroup(t *query.Tree, g []int) {
	for i := 1; i < len(g); i++ {
		for j := i; j > 0; j-- {
			lx, ly := t.Leaves[g[j]], t.Leaves[g[j-1]]
			if lx.Items < ly.Items ||
				(lx.Items == ly.Items && lx.Prob < ly.Prob) ||
				(lx.Items == ly.Items && lx.Prob == ly.Prob && g[j] < g[j-1]) {
				g[j], g[j-1] = g[j-1], g[j]
			} else {
				break
			}
		}
	}
}

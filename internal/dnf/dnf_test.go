package dnf

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"paotr/internal/query"
	"paotr/internal/sched"
)

func randomDNF(rng *rand.Rand, maxAnds, maxLeavesPerAnd, maxStreams, maxD int) *query.Tree {
	nAnds := 1 + rng.IntN(maxAnds)
	nStreams := 1 + rng.IntN(maxStreams)
	tr := &query.Tree{}
	for k := 0; k < nStreams; k++ {
		tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 9*rng.Float64()})
	}
	for i := 0; i < nAnds; i++ {
		n := 1 + rng.IntN(maxLeavesPerAnd)
		for r := 0; r < n; r++ {
			tr.Leaves = append(tr.Leaves, query.Leaf{
				And:    i,
				Stream: query.StreamID(rng.IntN(nStreams)),
				Items:  1 + rng.IntN(maxD),
				Prob:   rng.Float64(),
			})
		}
	}
	return tr
}

// TestHeuristicsProduceValidSchedules: every heuristic must emit a
// permutation of the leaves on arbitrary trees.
func TestHeuristicsProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		tr := randomDNF(rng, 5, 6, 4, 4)
		for _, h := range Heuristics() {
			s := h.Schedule(tr, rng)
			if err := s.Validate(tr); err != nil {
				t.Fatalf("trial %d: heuristic %q: %v", trial, h.Name, err)
			}
		}
	}
}

// TestAndOrderedSchedulesAreDepthFirst: AND-ordered and stream... only
// AND-ordered heuristics are depth-first by construction.
func TestAndOrderedSchedulesAreDepthFirst(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	andOrdered := []Heuristic{
		{"dec p stat", AndOrderedDecPStatic},
		{"inc C stat", AndOrderedIncCStatic},
		{"inc C/p stat", AndOrderedIncCOverPStatic},
		{"inc C dyn", AndOrderedIncCDynamic},
		{"inc C/p dyn", AndOrderedIncCOverPDynamic},
	}
	for trial := 0; trial < 100; trial++ {
		tr := randomDNF(rng, 5, 5, 4, 3)
		for _, h := range andOrdered {
			s := h.Schedule(tr, nil)
			if !s.IsDepthFirst(tr) {
				t.Fatalf("trial %d: %s schedule not depth-first: %v", trial, h.Name, s)
			}
		}
	}
}

// TestOptimalDepthFirstUpperBounds: the exhaustive depth-first optimum must
// be no worse than every heuristic.
func TestOptimalDepthFirstUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 60; trial++ {
		tr := randomDNF(rng, 3, 3, 3, 3)
		res := OptimalDepthFirst(tr, SearchOptions{})
		if !res.Exact {
			t.Fatalf("trial %d: search truncated without a cap", trial)
		}
		if err := res.Schedule.Validate(tr); err != nil {
			t.Fatal(err)
		}
		if got := sched.Cost(tr, res.Schedule); math.Abs(got-res.Cost) > 1e-9*(1+res.Cost) {
			t.Fatalf("trial %d: reported cost %v but schedule costs %v", trial, res.Cost, got)
		}
		for _, h := range Heuristics() {
			c := sched.Cost(tr, h.Schedule(tr, rng))
			if res.Cost > c+1e-9*(1+c) {
				t.Fatalf("trial %d: optimum %v worse than %s at %v", trial, res.Cost, h.Name, c)
			}
		}
	}
}

// TestDepthFirstDominance is the empirical Theorem 2 check: on tiny trees
// the best depth-first schedule must match the best schedule overall.
func TestDepthFirstDominance(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 150; trial++ {
		tr := randomDNF(rng, 3, 3, 3, 3)
		if tr.NumLeaves() > 7 {
			continue
		}
		df := OptimalDepthFirst(tr, SearchOptions{})
		any := OptimalAnyOrder(tr, SearchOptions{})
		if !df.Exact || !any.Exact {
			t.Fatalf("trial %d: truncated search", trial)
		}
		if df.Cost > any.Cost+1e-9*(1+any.Cost) {
			t.Fatalf("trial %d: depth-first optimum %v > global optimum %v\ntree %v",
				trial, df.Cost, any.Cost, tr)
		}
	}
}

// TestDepthFirstDominanceQuick: same property via testing/quick.
func TestDepthFirstDominanceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		tr := randomDNF(rng, 3, 2, 3, 2)
		df := OptimalDepthFirst(tr, SearchOptions{})
		any := OptimalAnyOrder(tr, SearchOptions{})
		return df.Cost <= any.Cost+1e-9*(1+any.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestReadOnceStaticIsOptimal: in the read-once case, AND-ordered by
// increasing C/p with Algorithm-1 leaf orders is the known optimal DNF
// algorithm (Greiner et al.), so it must match the exhaustive optimum.
func TestReadOnceStaticIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 80; trial++ {
		nAnds := 1 + rng.IntN(3)
		tr := &query.Tree{}
		for i := 0; i < nAnds; i++ {
			n := 1 + rng.IntN(3)
			for r := 0; r < n; r++ {
				k := len(tr.Streams)
				tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 9*rng.Float64()})
				tr.Leaves = append(tr.Leaves, query.Leaf{
					And: i, Stream: query.StreamID(k),
					Items: 1 + rng.IntN(3), Prob: rng.Float64(),
				})
			}
		}
		if tr.NumLeaves() > 9 {
			continue
		}
		h := AndOrderedIncCOverPStatic(tr, nil)
		hc := sched.Cost(tr, h)
		opt := OptimalDepthFirst(tr, SearchOptions{})
		if hc > opt.Cost+1e-9*(1+opt.Cost) {
			t.Fatalf("trial %d: read-once static C/p %v > optimum %v on %v",
				trial, hc, opt.Cost, tr)
		}
	}
}

// TestDynamicAccountsForSharing constructs an instance where static C/p
// ordering interleaves an unrelated AND between two stream-sharing ANDs,
// while the dynamic variant sees that the second sharing AND is free once
// the first has run and schedules it immediately — at strictly lower cost.
//
// AND0 = X[1]/0.5 (C/p = 2), AND1 = X[1]/0.4 (C/p = 2.5),
// AND2 = Y[1]/0.5 with c(Y)=1.2 (C/p = 2.4). Static: AND0, AND2, AND1
// costs 1 + 0.5*1.2 = 1.6. Dynamic: AND0, AND1 (free), AND2 costs
// 1 + 0.5*0.6*1.2 = 1.36, which is optimal.
func TestDynamicAccountsForSharing(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Name: "X", Cost: 1}, {Name: "Y", Cost: 1.2}},
		Leaves: []query.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.5},
			{And: 1, Stream: 0, Items: 1, Prob: 0.4}, // shares X: free after AND0
			{And: 2, Stream: 1, Items: 1, Prob: 0.5},
		},
	}
	static := sched.Cost(tr, AndOrderedIncCOverPStatic(tr, nil))
	if math.Abs(static-1.6) > 1e-12 {
		t.Errorf("static C/p cost = %v, want 1.6", static)
	}
	dyn := sched.Cost(tr, AndOrderedIncCOverPDynamic(tr, nil))
	if math.Abs(dyn-1.36) > 1e-12 {
		t.Errorf("dynamic C/p cost = %v, want 1.36", dyn)
	}
	opt := OptimalDepthFirst(tr, SearchOptions{})
	if math.Abs(dyn-opt.Cost) > 1e-12 {
		t.Errorf("dynamic %v should be optimal here (optimum %v)", dyn, opt.Cost)
	}
}

// TestStreamOrderedGroupsStreams: all leaves of one stream must be
// contiguous in a stream-ordered schedule.
func TestStreamOrderedGroupsStreams(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 100; trial++ {
		tr := randomDNF(rng, 4, 5, 4, 4)
		s := StreamOrdered(tr, nil)
		if err := s.Validate(tr); err != nil {
			t.Fatal(err)
		}
		seen := map[query.StreamID]bool{}
		var last query.StreamID = -1
		for _, j := range s {
			k := tr.Leaves[j].Stream
			if k != last {
				if seen[k] {
					t.Fatalf("trial %d: stream %d appears twice in %v", trial, k, s)
				}
				seen[k] = true
				last = k
			}
		}
	}
}

// TestStreamOrderedImprovedBeatsOriginal: the increasing-d variant must be
// at least as good as the decreasing-d original in the vast majority of
// cases (the paper reports "all remaining cases being ties"; we allow a
// tiny fraction of regressions since the R metric ordering interacts with
// the leaf order).
func TestStreamOrderedImprovedVsOriginal(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	worse := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		tr := randomDNF(rng, 4, 5, 3, 5)
		imp := sched.Cost(tr, StreamOrdered(tr, nil))
		orig := sched.Cost(tr, StreamOrderedOriginal(tr, nil))
		if imp > orig+1e-9*(1+orig) {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("improved stream-ordered worse than original on %d/%d instances", worse, trials)
	}
}

// TestBestHeuristicSchedule returns the min-cost deterministic heuristic.
func TestBestHeuristicSchedule(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 50; trial++ {
		tr := randomDNF(rng, 4, 4, 3, 3)
		s, c := BestHeuristicSchedule(tr)
		if err := s.Validate(tr); err != nil {
			t.Fatal(err)
		}
		for _, h := range Heuristics() {
			if h.Name == "Leaf-ord., random" {
				continue
			}
			hc := sched.Cost(tr, h.Schedule(tr, nil))
			if c > hc+1e-9*(1+hc) {
				t.Fatalf("trial %d: best %v worse than %s at %v", trial, c, h.Name, hc)
			}
		}
	}
}

// TestSearchNodeCap: a tiny node cap must yield a truncated result whose
// schedule is still valid and no worse than the heuristic incumbent.
func TestSearchNodeCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	tr := randomDNF(rng, 5, 6, 4, 4)
	res := OptimalDepthFirst(tr, SearchOptions{MaxNodes: 10})
	if res.Exact && tr.NumLeaves() > 4 {
		t.Error("expected truncated search with MaxNodes=10")
	}
	if err := res.Schedule.Validate(tr); err != nil {
		t.Fatal(err)
	}
	_, hc := BestHeuristicSchedule(tr)
	if res.Cost > hc+1e-9 {
		t.Errorf("truncated result %v worse than incumbent %v", res.Cost, hc)
	}
}

// TestPlanAnds sanity: plan cost equals Algorithm-1 cost on each isolated
// AND; probabilities multiply.
func TestPlanAnds(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	tr := randomDNF(rng, 4, 4, 3, 3)
	plans := PlanAnds(tr)
	if len(plans) != tr.NumAnds() {
		t.Fatalf("got %d plans for %d ANDs", len(plans), tr.NumAnds())
	}
	for i, pl := range plans {
		want := tr.AndProb(i)
		if math.Abs(pl.Prob-want) > 1e-12 {
			t.Errorf("AND %d prob %v, want %v", i, pl.Prob, want)
		}
		if len(pl.Leaves) != len(tr.AndLeaves()[i]) {
			t.Errorf("AND %d plan has %d leaves, want %d", i, len(pl.Leaves), len(tr.AndLeaves()[i]))
		}
		if pl.Cost < 0 {
			t.Errorf("AND %d negative cost %v", i, pl.Cost)
		}
	}
}

package admit

import (
	"encoding/json"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		RefillJPerTick: 10,
		BurstJ:         30,
		MaxQuoteJ:      [NumTiers]float64{0, 100, 20},
		SLOTickP99: [NumTiers]time.Duration{
			time.Millisecond,
			10 * time.Millisecond,
			100 * time.Millisecond,
		},
		WindowTicks: 4,
	}
}

func TestParseTier(t *testing.T) {
	for in, want := range map[string]Tier{
		"": TierBronze, "gold": TierGold, "Silver": TierSilver, "BRONZE": TierBronze,
	} {
		got, err := ParseTier(in)
		if err != nil || got != want {
			t.Fatalf("ParseTier(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseTier("platinum"); err == nil {
		t.Fatal("ParseTier accepted an unknown tier")
	}
}

func TestTierJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(TierSilver)
	if err != nil || string(b) != `"silver"` {
		t.Fatalf("marshal: %s, %v", b, err)
	}
	var tier Tier
	if err := json.Unmarshal([]byte(`"gold"`), &tier); err != nil || tier != TierGold {
		t.Fatalf("unmarshal: %v, %v", tier, err)
	}
}

// TestBudgetExhaustionDefers: spending past the bucket defers with a
// Retry-After that covers the shortfall at the refill rate, and the
// deferred retry succeeds once the clock advances that far.
func TestBudgetExhaustionDefers(t *testing.T) {
	c := NewController(testConfig())
	d := c.Decide(Request{ID: "a/q1", Tenant: "a", Tier: TierGold, QuoteJ: 30})
	if d.Action != Admit {
		t.Fatalf("first admission within burst: got %v (%s)", d.Action, d.Reason)
	}
	d = c.Decide(Request{ID: "a/q2", Tenant: "a", Tier: TierGold, QuoteJ: 25})
	if d.Action != Defer || d.Reason != "budget-exhausted" {
		t.Fatalf("over-budget: got %v (%s)", d.Action, d.Reason)
	}
	if d.RetryAfterTicks != 3 { // shortfall 25 J at 10 J/tick
		t.Fatalf("retry-after: got %d ticks, want 3", d.RetryAfterTicks)
	}
	for i := 0; i < 3; i++ {
		c.ObserveTick(time.Microsecond)
	}
	d = c.Decide(Request{ID: "a/q2", Tenant: "a", Tier: TierGold, QuoteJ: 25, Deferred: true})
	if d.Action != Admit {
		t.Fatalf("refilled retry: got %v (%s)", d.Action, d.Reason)
	}
	// Tenant budgets are independent: tenant b still has its full burst.
	if d := c.Decide(Request{ID: "b/q1", Tenant: "b", Tier: TierGold, QuoteJ: 30}); d.Action != Admit {
		t.Fatalf("independent tenant: got %v (%s)", d.Action, d.Reason)
	}
}

// TestPriceCeilingSheds: a quote above the tier ceiling is shed, and
// the same quote under a laxer tier is not.
func TestPriceCeilingSheds(t *testing.T) {
	c := NewController(testConfig())
	if d := c.Decide(Request{ID: "a/big", Tenant: "a", Tier: TierBronze, QuoteJ: 25}); d.Action != Shed || d.Reason != "price-ceiling" {
		t.Fatalf("bronze over ceiling: got %v (%s)", d.Action, d.Reason)
	}
	if d := c.Decide(Request{ID: "a/big2", Tenant: "a", Tier: TierSilver, QuoteJ: 25}); d.Action != Admit {
		t.Fatalf("silver under ceiling: got %v (%s)", d.Action, d.Reason)
	}
}

// TestSLOBurnShedsBronzeDefersSilver: when a window's p99 exceeds the
// gold objective, bronze sheds, silver defers, gold admits; once the
// latency recovers for a full window the gate reopens.
func TestSLOBurnShedsBronzeDefersSilver(t *testing.T) {
	c := NewController(testConfig())
	for i := 0; i < 4; i++ {
		c.ObserveTick(50 * time.Millisecond) // way past the 1ms gold target
	}
	if !c.Overloaded() {
		t.Fatal("controller not overloaded after a slow window")
	}
	if d := c.Decide(Request{ID: "a/b1", Tenant: "a", Tier: TierBronze, QuoteJ: 1}); d.Action != Shed || d.Reason != "slo-burn" {
		t.Fatalf("bronze under burn: got %v (%s)", d.Action, d.Reason)
	}
	d := c.Decide(Request{ID: "a/s1", Tenant: "a", Tier: TierSilver, QuoteJ: 1})
	if d.Action != Defer || d.Reason != "slo-burn" || d.RetryAfterTicks != 4 {
		t.Fatalf("silver under burn: got %v (%s) retry %d", d.Action, d.Reason, d.RetryAfterTicks)
	}
	if d := c.Decide(Request{ID: "a/g1", Tenant: "a", Tier: TierGold, QuoteJ: 1}); d.Action != Admit {
		t.Fatalf("gold under burn: got %v (%s)", d.Action, d.Reason)
	}
	for i := 0; i < 4; i++ {
		c.ObserveTick(100 * time.Microsecond)
	}
	if c.Overloaded() {
		t.Fatal("controller still overloaded after a fast window")
	}
	if d := c.Decide(Request{ID: "a/b2", Tenant: "a", Tier: TierBronze, QuoteJ: 1}); d.Action != Admit {
		t.Fatalf("bronze after recovery: got %v (%s)", d.Action, d.Reason)
	}
}

// TestSnapshotCensus: the metrics snapshot carries the full decision
// census, shed precision, and refilled tenant balances.
func TestSnapshotCensus(t *testing.T) {
	c := NewController(testConfig())
	c.Decide(Request{ID: "a/q", Tenant: "a", Tier: TierGold, QuoteJ: 10})
	c.Decide(Request{ID: "a/big", Tenant: "a", Tier: TierBronze, QuoteJ: 25}) // shed: ceiling
	m := c.Snapshot()
	if m.Decisions["gold"]["admit"] != 1 || m.Decisions["bronze"]["shed"] != 1 {
		t.Fatalf("census: %+v", m.Decisions)
	}
	if m.ShedPrecision != 1 {
		t.Fatalf("shed precision %v, want 1 (only bronze shed)", m.ShedPrecision)
	}
	if m.AdmittedQuoteJ != 10 {
		t.Fatalf("admitted quote %v, want 10", m.AdmittedQuoteJ)
	}
	if len(m.Tenants) != 1 || m.Tenants[0].Tenant != "a" || m.Tenants[0].BalanceJ != 20 {
		t.Fatalf("tenants: %+v", m.Tenants)
	}
}

func TestTenantOf(t *testing.T) {
	if got := TenantOf("a/tachycardia"); got != "a" {
		t.Fatalf("TenantOf: %q", got)
	}
	if got := TenantOf("solo"); got != "solo" {
		t.Fatalf("TenantOf without prefix: %q", got)
	}
}

// Package admit is the admission controller for the continuous-query
// service: it decides, for every incoming registration, whether the
// fleet can afford it. The currency is the paper's own cost model — a
// registration is priced by its marginal joint acquisition cost
// (expected J per planned tick, quoted by fleet.QuoteJoint as the delta
// of the patched joint plan over the resident plan), so a query that
// overlaps resident shapes and streams is nearly free while one that
// drags in new streams pays its full independent price.
//
// Three mechanisms gate admission:
//
//   - Per-tenant token buckets denominated in J/tick: each tenant's
//     bucket refills at a fixed rate and an admission spends the quoted
//     marginal cost from it, bounding how fast any tenant can grow the
//     fleet's planned energy budget.
//   - Per-tier price ceilings: gold/silver/bronze tiers carry distinct
//     admission thresholds, so a bronze registration cannot buy an
//     expensive disjoint workload that a gold one could.
//   - A p99 tick-latency SLO: the controller watches a windowed p99 of
//     the service's total-tick latency (fed from the obs histograms)
//     and, while the gold-tier SLO is burning, sheds bronze and defers
//     silver registrations before gold feels anything.
//
// Decisions are Admit, Defer (come back in RetryAfterTicks — budget
// will have refilled or the overload window re-evaluated), or Shed
// (rejected outright). The controller is pure policy: it never touches
// the planner or the service; the service-side gate quotes, asks, and
// enforces (see service.AdmissionGate).
package admit

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"paotr/internal/obs"
)

// Tier is a registration's priority class.
type Tier int

const (
	// TierGold is the protected class: admitted while its SLO holds,
	// never shed to protect anyone else.
	TierGold Tier = iota
	// TierSilver is the middle class: deferred (not shed) under SLO burn.
	TierSilver
	// TierBronze is the best-effort class, first to be shed under
	// overload and the default for untagged registrations.
	TierBronze
	// NumTiers is the number of priority tiers.
	NumTiers
)

// TierNames are the stable exposition names, indexed by Tier.
var TierNames = [NumTiers]string{"gold", "silver", "bronze"}

// String returns the tier's exposition name.
func (t Tier) String() string {
	if t < 0 || t >= NumTiers {
		return fmt.Sprintf("tier(%d)", int(t))
	}
	return TierNames[t]
}

// MarshalJSON encodes the tier as its exposition name.
func (t Tier) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// UnmarshalJSON decodes an exposition name (or the empty string, which
// is bronze) back to a Tier.
func (t *Tier) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := ParseTier(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// ParseTier maps an exposition name to its Tier. The empty string is
// TierBronze — untagged registrations ride best-effort.
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(s) {
	case "":
		return TierBronze, nil
	case "gold":
		return TierGold, nil
	case "silver":
		return TierSilver, nil
	case "bronze":
		return TierBronze, nil
	}
	return TierBronze, fmt.Errorf("admit: unknown tier %q (want gold, silver, or bronze)", s)
}

// Action is an admission decision's outcome.
type Action int

const (
	// Admit: register the query; its quote has been charged to the
	// tenant's budget.
	Admit Action = iota
	// Defer: do not register now, retry after Decision.RetryAfterTicks —
	// the budget will have refilled or the overload window re-evaluated.
	Defer
	// Shed: reject outright (price above the tier's ceiling, or bronze
	// under SLO burn).
	Shed
	// NumActions is the number of decision outcomes.
	NumActions
)

// ActionNames are the stable exposition names, indexed by Action.
var ActionNames = [NumActions]string{"admit", "defer", "shed"}

// String returns the action's exposition name.
func (a Action) String() string {
	if a < 0 || a >= NumActions {
		return fmt.Sprintf("action(%d)", int(a))
	}
	return ActionNames[a]
}

// MarshalJSON encodes the action as its exposition name.
func (a Action) MarshalJSON() ([]byte, error) { return []byte(`"` + a.String() + `"`), nil }

// UnmarshalJSON decodes an exposition name back into its Action.
func (a *Action) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for i, name := range ActionNames {
		if name == s {
			*a = Action(i)
			return nil
		}
	}
	return fmt.Errorf("admit: unknown action %q", s)
}

// Config parameterizes a Controller. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// RefillJPerTick is each tenant's budget refill rate and BurstJ the
	// bucket capacity (and initial balance), both in expected J/tick of
	// quoted marginal cost. Admissions spend their quote from the bucket,
	// so a tenant can grow the fleet's planned energy by at most
	// RefillJPerTick per tick, with BurstJ of headroom for storms.
	RefillJPerTick float64
	BurstJ         float64
	// MaxQuoteJ is the per-tier admission price ceiling: a registration
	// quoting above its tier's ceiling is shed regardless of budget.
	// Zero or negative means no ceiling for that tier.
	MaxQuoteJ [NumTiers]float64
	// SLOTickP99 is the per-tier p99 total-tick-latency objective. The
	// gold target drives shedding: while the recent p99 exceeds it the
	// controller sheds bronze and defers silver. Silver and bronze
	// targets are exposition (reported in Metrics so operators can see
	// which tiers' objectives the current latency violates).
	SLOTickP99 [NumTiers]time.Duration
	// WindowTicks is the SLO evaluation window: the recent p99 is
	// computed over the last WindowTicks tick observations.
	WindowTicks int
}

// DefaultConfig returns generous production defaults: budgets that an
// interactive fleet never exhausts, no gold ceiling, and a 250ms gold
// p99 objective evaluated over 64-tick windows.
func DefaultConfig() Config {
	return Config{
		RefillJPerTick: 25,
		BurstJ:         500,
		MaxQuoteJ:      [NumTiers]float64{0, 200, 50},
		SLOTickP99: [NumTiers]time.Duration{
			250 * time.Millisecond,
			time.Second,
			4 * time.Second,
		},
		WindowTicks: 64,
	}
}

// Request is one registration candidate as the controller sees it: the
// identity is for journaling only; policy reads Tenant, Tier, and the
// quoted marginal cost.
type Request struct {
	// ID is the query id being registered.
	ID string
	// Tenant is the budget owner (the service derives it from the id
	// prefix before the first '/').
	Tenant string
	// Tier is the registration's priority class.
	Tier Tier
	// QuoteJ is the quoted marginal joint cost in expected J/tick.
	QuoteJ float64
	// Deferred marks a retry of a previously deferred registration.
	Deferred bool
}

// Decision is the controller's verdict on one Request.
type Decision struct {
	// Action is the verdict; Reason a short operator-facing cause
	// ("budget-exhausted", "slo-burn", "price-ceiling", "admitted").
	Action Action `json:"action"`
	Reason string `json:"reason"`
	Tier   Tier   `json:"tier"`
	Tenant string `json:"tenant"`
	// QuoteJ echoes the quoted marginal cost the verdict priced.
	QuoteJ float64 `json:"quote_j"`
	// RetryAfterTicks is, for Defer, when retrying can succeed (budget
	// refilled or overload window re-evaluated). Zero otherwise.
	RetryAfterTicks int `json:"retry_after_ticks,omitempty"`
}

// bucket is one tenant's token bucket, refilled lazily.
type bucket struct {
	balance  float64
	lastTick int64
}

// Controller applies admission policy. Safe for concurrent use; all
// methods are cheap (a map lookup and a few comparisons — decision
// latency is measured by BENCH_admit.json).
type Controller struct {
	cfg Config

	mu      sync.Mutex
	tick    int64
	buckets map[string]*bucket

	// SLO window state: lat accumulates every tick latency; at each
	// window boundary the delta of its counts against prevCounts yields
	// the window's p99.
	lat        obs.Histogram
	prevCounts [obs.NumBuckets + 1]int64
	prevSum    int64
	recentP99  time.Duration
	overloaded bool

	decisions [NumTiers][NumActions]int64
	admittedJ float64
	shedGold  int64
}

// NewController builds a controller over cfg, filling unset knobs from
// DefaultConfig.
func NewController(cfg Config) *Controller {
	def := DefaultConfig()
	if cfg.RefillJPerTick <= 0 {
		cfg.RefillJPerTick = def.RefillJPerTick
	}
	if cfg.BurstJ <= 0 {
		cfg.BurstJ = def.BurstJ
	}
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = def.WindowTicks
	}
	for i := range cfg.SLOTickP99 {
		if cfg.SLOTickP99[i] <= 0 {
			cfg.SLOTickP99[i] = def.SLOTickP99[i]
		}
	}
	return &Controller{cfg: cfg, buckets: map[string]*bucket{}}
}

// Config returns the controller's effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Decide prices one registration candidate against policy. Admit
// charges the quote to the tenant's budget; Defer and Shed charge
// nothing.
func (c *Controller) Decide(req Request) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()

	d := Decision{Tier: req.Tier, Tenant: req.Tenant, QuoteJ: req.QuoteJ}
	tier := req.Tier
	if tier < 0 || tier >= NumTiers {
		tier = TierBronze
		d.Tier = TierBronze
	}

	// Price ceiling: a quote no budget refill will ever make affordable
	// for this tier is shed, not deferred.
	if max := c.cfg.MaxQuoteJ[tier]; max > 0 && req.QuoteJ > max {
		d.Action, d.Reason = Shed, "price-ceiling"
		return c.recordLocked(d)
	}

	// SLO burn: while the recent p99 exceeds the gold objective, bronze
	// is shed and silver deferred until the next window's verdict. Gold
	// proceeds — the point of shedding is to protect it.
	if c.overloaded {
		switch tier {
		case TierBronze:
			d.Action, d.Reason = Shed, "slo-burn"
			return c.recordLocked(d)
		case TierSilver:
			d.Action, d.Reason = Defer, "slo-burn"
			d.RetryAfterTicks = c.cfg.WindowTicks
			return c.recordLocked(d)
		}
	}

	// Token bucket: the admission spends the quote; an unaffordable
	// quote is deferred until the refill covers it.
	b := c.bucketLocked(req.Tenant)
	if req.QuoteJ > b.balance {
		d.Action, d.Reason = Defer, "budget-exhausted"
		d.RetryAfterTicks = int(math.Ceil((req.QuoteJ - b.balance) / c.cfg.RefillJPerTick))
		if d.RetryAfterTicks < 1 {
			d.RetryAfterTicks = 1
		}
		return c.recordLocked(d)
	}
	b.balance -= req.QuoteJ
	c.admittedJ += req.QuoteJ
	d.Action, d.Reason = Admit, "admitted"
	return c.recordLocked(d)
}

// recordLocked counts the decision. Caller holds c.mu.
func (c *Controller) recordLocked(d Decision) Decision {
	c.decisions[d.Tier][d.Action]++
	if d.Action == Shed && d.Tier == TierGold {
		c.shedGold++
	}
	return d
}

// bucketLocked returns the tenant's bucket, refilled to the current
// tick. Caller holds c.mu.
func (c *Controller) bucketLocked(tenant string) *bucket {
	b := c.buckets[tenant]
	if b == nil {
		b = &bucket{balance: c.cfg.BurstJ, lastTick: c.tick}
		c.buckets[tenant] = b
		return b
	}
	if dt := c.tick - b.lastTick; dt > 0 {
		b.balance = math.Min(c.cfg.BurstJ, b.balance+float64(dt)*c.cfg.RefillJPerTick)
	}
	b.lastTick = c.tick
	return b
}

// ObserveTick advances the controller's clock by one service tick and
// feeds the tick's total latency into the SLO window. At each window
// boundary the window's p99 is recomputed and the overload verdict
// re-evaluated against the gold objective.
func (c *Controller) ObserveTick(d time.Duration) {
	c.lat.Observe(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if c.tick%int64(c.cfg.WindowTicks) != 0 {
		return
	}
	snap := c.lat.Snapshot()
	var win obs.HistSnapshot
	win.Counts = make([]int64, len(snap.Counts))
	for i, ct := range snap.Counts {
		win.Counts[i] = ct - c.prevCounts[i]
		win.Count += win.Counts[i]
		c.prevCounts[i] = ct
	}
	win.SumNs = snap.SumNs - c.prevSum
	c.prevSum = snap.SumNs
	c.recentP99 = time.Duration(win.Quantile(0.99))
	c.overloaded = win.Count > 0 && c.recentP99 > c.cfg.SLOTickP99[TierGold]
}

// Tick returns the controller's current tick clock.
func (c *Controller) Tick() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tick
}

// Overloaded reports whether the last completed SLO window's p99
// exceeded the gold objective.
func (c *Controller) Overloaded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overloaded
}

// SetOverloaded forces the overload verdict — a test and operations
// hook (drills) that the next window boundary overwrites.
func (c *Controller) SetOverloaded(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.overloaded = v
}

// TenantBudget is one tenant's budget state in a Metrics snapshot.
type TenantBudget struct {
	Tenant string `json:"tenant"`
	// BalanceJ is the bucket's balance refilled to the snapshot tick.
	BalanceJ float64 `json:"balance_j"`
}

// Metrics is a point-in-time snapshot of the controller: the overload
// verdict, the decision census, and every tenant's budget.
type Metrics struct {
	// Tick is the controller's tick clock; WindowTicks the SLO window.
	Tick        int64 `json:"tick"`
	WindowTicks int   `json:"window_ticks"`
	// RecentP99Ns is the last completed window's p99 total-tick latency;
	// Overloaded whether it exceeded the gold objective (SLOGoldNs).
	RecentP99Ns float64 `json:"recent_p99_ns"`
	Overloaded  bool    `json:"overloaded"`
	SLOGoldNs   float64 `json:"slo_gold_ns"`
	SLOSilverNs float64 `json:"slo_silver_ns"`
	SLOBronzeNs float64 `json:"slo_bronze_ns"`
	// Decisions is the census: tier name -> action name -> count.
	Decisions map[string]map[string]int64 `json:"decisions"`
	// AdmittedQuoteJ sums the quoted marginal costs of every admission —
	// the planned J/tick admission has let into the fleet.
	AdmittedQuoteJ float64 `json:"admitted_quote_j"`
	// ShedPrecision is the fraction of sheds that hit non-gold tiers
	// (1 when nothing was shed): the tiering guarantee, gated by
	// BENCH_admit.json under storm.
	ShedPrecision float64 `json:"shed_precision"`
	// RefillJPerTick / BurstJ echo the budget knobs; Tenants the
	// per-tenant balances, sorted by tenant.
	RefillJPerTick float64        `json:"refill_j_per_tick"`
	BurstJ         float64        `json:"burst_j"`
	Tenants        []TenantBudget `json:"tenants,omitempty"`
	// DeferredPending is the number of registrations parked in the defer
	// queue (filled by the service-side gate, not the controller).
	DeferredPending int `json:"deferred_pending"`
}

// Snapshot captures the controller's current Metrics.
func (c *Controller) Snapshot() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Metrics{
		Tick:           c.tick,
		WindowTicks:    c.cfg.WindowTicks,
		RecentP99Ns:    float64(c.recentP99),
		Overloaded:     c.overloaded,
		SLOGoldNs:      float64(c.cfg.SLOTickP99[TierGold]),
		SLOSilverNs:    float64(c.cfg.SLOTickP99[TierSilver]),
		SLOBronzeNs:    float64(c.cfg.SLOTickP99[TierBronze]),
		AdmittedQuoteJ: c.admittedJ,
		RefillJPerTick: c.cfg.RefillJPerTick,
		BurstJ:         c.cfg.BurstJ,
		Decisions:      make(map[string]map[string]int64, NumTiers),
	}
	var sheds, shedNonGold int64
	for t := Tier(0); t < NumTiers; t++ {
		row := make(map[string]int64, NumActions)
		for a := Action(0); a < NumActions; a++ {
			row[a.String()] = c.decisions[t][a]
			if a == Shed {
				sheds += c.decisions[t][a]
				if t != TierGold {
					shedNonGold += c.decisions[t][a]
				}
			}
		}
		m.Decisions[t.String()] = row
	}
	m.ShedPrecision = 1
	if sheds > 0 {
		m.ShedPrecision = float64(shedNonGold) / float64(sheds)
	}
	for tenant, b := range c.buckets {
		bal := b.balance
		if dt := c.tick - b.lastTick; dt > 0 {
			bal = math.Min(c.cfg.BurstJ, bal+float64(dt)*c.cfg.RefillJPerTick)
		}
		m.Tenants = append(m.Tenants, TenantBudget{Tenant: tenant, BalanceJ: bal})
	}
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].Tenant < m.Tenants[j].Tenant })
	return m
}

// TenantOf derives the budget owner from a query id: the prefix before
// the first '/' (the whole id when there is none) — the demo fleet's
// "a/tachycardia" ids make "a" the tenant.
func TenantOf(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i]
	}
	return id
}

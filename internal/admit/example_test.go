package admit_test

import (
	"fmt"
	"time"

	"paotr/internal/admit"
)

// Example walks one tenant through the three admission outcomes: an
// affordable overlap-discounted registration admits, an over-budget one
// defers with a concrete Retry-After, and a bronze registration under
// SLO burn is shed to protect the gold tier.
func Example() {
	c := admit.NewController(admit.Config{
		RefillJPerTick: 10,
		BurstJ:         30,
		SLOTickP99:     [admit.NumTiers]time.Duration{time.Millisecond, 0, 0},
		WindowTicks:    4,
	})

	d := c.Decide(admit.Request{ID: "a/cheap", Tenant: "a", Tier: admit.TierGold, QuoteJ: 25})
	fmt.Printf("%s: %s\n", d.Action, d.Reason)

	d = c.Decide(admit.Request{ID: "a/pricey", Tenant: "a", Tier: admit.TierGold, QuoteJ: 25})
	fmt.Printf("%s: %s, retry in %d ticks\n", d.Action, d.Reason, d.RetryAfterTicks)

	for i := 0; i < 4; i++ {
		c.ObserveTick(50 * time.Millisecond) // a window far past the gold p99 objective
	}
	d = c.Decide(admit.Request{ID: "b/besteffort", Tenant: "b", Tier: admit.TierBronze, QuoteJ: 1})
	fmt.Printf("%s: %s\n", d.Action, d.Reason)

	// Output:
	// admit: admitted
	// defer: budget-exhausted, retry in 2 ticks
	// shed: slo-burn
}

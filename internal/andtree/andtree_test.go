package andtree

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// section2ATree is the AND-tree of Figure 2: l1 = A[1]/0.75, l2 = A[2]/0.1,
// l3 = B[1]/0.5, unit costs.
func section2ATree() *query.Tree {
	return &query.Tree{
		Streams: []query.Stream{{Name: "A", Cost: 1}, {Name: "B", Cost: 1}},
		Leaves: []query.Leaf{
			{And: 0, Stream: 0, Items: 1, Prob: 0.75},
			{And: 0, Stream: 0, Items: 2, Prob: 0.1},
			{And: 0, Stream: 1, Items: 1, Prob: 0.5},
		},
	}
}

// TestSection2ACosts checks the three schedule costs computed in Section
// II-A: (l3,l1,l2) = 1.875, (l3,l2,l1) = 2, (l1,l2,l3) = 1.825.
func TestSection2ACosts(t *testing.T) {
	tr := section2ATree()
	cases := []struct {
		s    sched.Schedule
		want float64
	}{
		{sched.Schedule{2, 0, 1}, 1.875},
		{sched.Schedule{2, 1, 0}, 2},
		{sched.Schedule{0, 1, 2}, 1.825},
	}
	for _, c := range cases {
		if got := sched.AndTreeCost(tr, c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("cost(%v) = %v, want %v", c.s, got, c.want)
		}
		if got := sched.Cost(tr, c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("general cost(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

// TestSection2AGreedyOptimal: on the Section II-A instance the read-once
// algorithm picks l3 first (cost >= 1.875) while the optimal schedule is
// (l1,l2,l3) at 1.825; Algorithm 1 must find it.
func TestSection2AGreedyOptimal(t *testing.T) {
	tr := section2ATree()
	g := Greedy(tr)
	if got := sched.AndTreeCost(tr, g); math.Abs(got-1.825) > 1e-12 {
		t.Errorf("Greedy cost = %v (schedule %v), want 1.825", got, g)
	}
	ro := ReadOnceGreedy(tr)
	if got := sched.AndTreeCost(tr, ro); got < 1.875-1e-12 {
		t.Errorf("ReadOnceGreedy cost = %v, expected >= 1.875 (it schedules l3 first)", got)
	}
	if ro[0] != 2 {
		t.Errorf("ReadOnceGreedy should schedule l3 (min d*c/q) first, got %v", ro)
	}
}

func randomAndTree(rng *rand.Rand, maxLeaves, maxStreams, maxD int) *query.Tree {
	m := 1 + rng.IntN(maxLeaves)
	s := 1 + rng.IntN(maxStreams)
	tr := &query.Tree{}
	for k := 0; k < s; k++ {
		tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 9*rng.Float64()})
	}
	for j := 0; j < m; j++ {
		tr.Leaves = append(tr.Leaves, query.Leaf{
			Stream: query.StreamID(rng.IntN(s)),
			Items:  1 + rng.IntN(maxD),
			Prob:   rng.Float64(),
		})
	}
	return tr
}

// TestGreedyOptimal is the empirical Theorem 1 check: on random small
// shared AND-trees, Algorithm 1 must match the exhaustive optimum.
func TestGreedyOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 101))
	for trial := 0; trial < 400; trial++ {
		tr := randomAndTree(rng, 8, 3, 4)
		g := Greedy(tr)
		if err := g.Validate(tr); err != nil {
			t.Fatalf("trial %d: invalid greedy schedule: %v", trial, err)
		}
		gc := sched.AndTreeCost(tr, g)
		_, oc := Exhaustive(tr)
		if gc > oc+1e-9*(1+oc) {
			t.Fatalf("trial %d: Greedy cost %v > optimal %v\ntree: %v\nschedule: %v",
				trial, gc, oc, tr, g)
		}
	}
}

// TestGreedyOptimalQuick drives the optimality check through testing/quick.
func TestGreedyOptimalQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*2+1))
		tr := randomAndTree(rng, 7, 3, 3)
		g := Greedy(tr)
		_, oc := Exhaustive(tr)
		return sched.AndTreeCost(tr, g) <= oc+1e-9*(1+oc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestGreedyNoWorseThanReadOnce: Algorithm 1 must never lose to the
// read-once baseline (it is optimal).
func TestGreedyNoWorseThanReadOnce(t *testing.T) {
	rng := rand.New(rand.NewPCG(200, 201))
	for trial := 0; trial < 500; trial++ {
		tr := randomAndTree(rng, 15, 5, 5)
		gc := sched.AndTreeCost(tr, Greedy(tr))
		rc := sched.AndTreeCost(tr, ReadOnceGreedy(tr))
		if gc > rc+1e-9*(1+rc) {
			t.Fatalf("trial %d: Greedy %v worse than read-once %v on %v", trial, gc, rc, tr)
		}
	}
}

// TestReadOnceEquivalence: on read-once instances (one leaf per stream)
// both algorithms are optimal, so their costs must agree.
func TestReadOnceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(300, 301))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.IntN(10)
		tr := &query.Tree{}
		for j := 0; j < m; j++ {
			tr.Streams = append(tr.Streams, query.Stream{Cost: 1 + 9*rng.Float64()})
			tr.Leaves = append(tr.Leaves, query.Leaf{
				Stream: query.StreamID(j),
				Items:  1 + rng.IntN(5),
				Prob:   rng.Float64(),
			})
		}
		if !tr.IsReadOnce() {
			t.Fatal("constructed tree should be read-once")
		}
		gc := sched.AndTreeCost(tr, Greedy(tr))
		rc := sched.AndTreeCost(tr, ReadOnceGreedy(tr))
		if math.Abs(gc-rc) > 1e-9*(1+rc) {
			t.Fatalf("trial %d: read-once disagreement greedy=%v smith=%v", trial, gc, rc)
		}
	}
}

// TestProposition1: there is an optimal schedule in which same-stream
// leaves appear in non-decreasing d order. We verify that the exhaustive
// optimum over sorted-order schedules (which Greedy and Exhaustive both
// emit thanks to candidate ordering) equals the unrestricted optimum found
// by checking Greedy's schedule respects the property.
func TestProposition1(t *testing.T) {
	rng := rand.New(rand.NewPCG(400, 401))
	for trial := 0; trial < 200; trial++ {
		tr := randomAndTree(rng, 8, 2, 5)
		g := Greedy(tr)
		// The greedy schedule must itself respect Proposition 1.
		lastD := make(map[query.StreamID]int)
		for _, j := range g {
			l := tr.Leaves[j]
			if l.Items < lastD[l.Stream] {
				t.Fatalf("trial %d: greedy schedule violates Proposition 1: %v on %v",
					trial, g, tr)
			}
			lastD[l.Stream] = l.Items
		}
	}
}

func TestGreedySingleLeaf(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 3}},
		Leaves:  []query.Leaf{{Stream: 0, Items: 2, Prob: 0.4}},
	}
	g := Greedy(tr)
	if len(g) != 1 || g[0] != 0 {
		t.Fatalf("bad schedule %v", g)
	}
	if c := sched.AndTreeCost(tr, g); c != 6 {
		t.Errorf("cost = %v, want 6", c)
	}
}

// TestGreedyAllCertain: leaves with p=1 can never short-circuit; the greedy
// must still terminate and produce a valid schedule whose cost equals the
// total acquisition cost.
func TestGreedyAllCertain(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 2}, {Cost: 5}},
		Leaves: []query.Leaf{
			{Stream: 0, Items: 2, Prob: 1},
			{Stream: 0, Items: 3, Prob: 1},
			{Stream: 1, Items: 1, Prob: 1},
		},
	}
	g := Greedy(tr)
	if err := g.Validate(tr); err != nil {
		t.Fatal(err)
	}
	want := 3.0*2 + 1*5 // all items acquired exactly once
	if c := sched.AndTreeCost(tr, g); math.Abs(c-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", c, want)
	}
}

// TestGreedyZeroProb: a leaf with p=0 always fails; the optimal schedule
// evaluates the cheapest certain-failure prefix first.
func TestGreedyZeroProb(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 1}, {Cost: 100}},
		Leaves: []query.Leaf{
			{Stream: 1, Items: 1, Prob: 0.99},
			{Stream: 0, Items: 1, Prob: 0},
		},
	}
	g := Greedy(tr)
	if g[0] != 1 {
		t.Fatalf("greedy should evaluate the free failing leaf first, got %v", g)
	}
	if c := sched.AndTreeCost(tr, g); math.Abs(c-1) > 1e-12 {
		t.Errorf("cost = %v, want 1", c)
	}
}

func TestExhaustiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(500, 501))
	for trial := 0; trial < 100; trial++ {
		tr := randomAndTree(rng, 6, 3, 3)
		_, bb := Exhaustive(tr)
		// Plain enumeration of all permutations, no pruning.
		m := tr.NumLeaves()
		perm := make(sched.Schedule, m)
		for i := range perm {
			perm[i] = i
		}
		best := math.Inf(1)
		var walk func(k int)
		walk = func(k int) {
			if k == m {
				if c := sched.AndTreeCost(tr, perm); c < best {
					best = c
				}
				return
			}
			for i := k; i < m; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				walk(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		walk(0)
		if math.Abs(bb-best) > 1e-9*(1+best) {
			t.Fatalf("trial %d: B&B %v vs brute force %v", trial, bb, best)
		}
	}
}

package andtree

import (
	"math"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// Exhaustive finds a minimum-cost schedule for an AND-tree by
// branch-and-bound over all m! leaf permutations. The expected cost of a
// prefix never decreases as leaves are appended, so branches whose prefix
// cost reaches the incumbent are pruned; the incumbent is seeded with the
// Greedy schedule. Intended for small m (say m <= 12) in tests and
// validation harnesses.
func Exhaustive(t *query.Tree) (sched.Schedule, float64) {
	if !t.IsAndTree() {
		panic("andtree: Exhaustive requires a single-AND tree")
	}
	m := t.NumLeaves()
	best := Greedy(t)
	bestCost := sched.AndTreeCost(t, best)
	if m == 0 {
		return best, bestCost
	}

	used := make([]bool, m)
	cur := make(sched.Schedule, 0, m)
	acquired := make([]int, t.NumStreams())

	var rec func(reach, cost float64)
	rec = func(reach, cost float64) {
		if len(cur) == m {
			if cost < bestCost {
				bestCost = cost
				best = cur.Clone()
			}
			return
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			l := t.Leaves[j]
			extra := l.Items - acquired[l.Stream]
			add := 0.0
			if extra > 0 {
				add = reach * float64(extra) * t.Streams[l.Stream].Cost
			}
			if cost+add >= bestCost-1e-15 {
				continue
			}
			old := acquired[l.Stream]
			if extra > 0 {
				acquired[l.Stream] = l.Items
			}
			used[j] = true
			cur = append(cur, j)
			rec(reach*l.Prob, cost+add)
			cur = cur[:len(cur)-1]
			used[j] = false
			acquired[l.Stream] = old
		}
	}
	rec(1, 0)
	if math.IsInf(bestCost, 1) {
		panic("andtree: exhaustive search found no schedule")
	}
	return best, bestCost
}

package andtree

import (
	"math"
	"sort"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// GreedyWarm is Algorithm 1 generalized to start from a warm cache: items
// already held by the device (sched.Warm) are free for every leaf. With a
// prefix-form warm state this is exactly the NItems mechanism of the
// paper's pseudocode (the recursive calls of Algorithm 1 already run with
// non-zero NItems); arbitrary cached subsets — as arise in continuous
// query processing when the newest item is missing but older ones are
// held — are handled by counting only uncached items in each prefix cost.
//
// GreedyWarm(t, nil) produces a schedule with the same cost as Greedy(t).
func GreedyWarm(t *query.Tree, w sched.Warm) sched.Schedule {
	if !t.IsAndTree() {
		panic("andtree: GreedyWarm requires a single-AND tree")
	}
	byStream := make([][]int, t.NumStreams())
	for j := range t.Leaves {
		k := t.Leaves[j].Stream
		byStream[k] = append(byStream[k], j)
	}
	for k := range byStream {
		ls := byStream[k]
		sort.SliceStable(ls, func(a, b int) bool {
			la, lb := t.Leaves[ls[a]], t.Leaves[ls[b]]
			if la.Items != lb.Items {
				return la.Items < lb.Items
			}
			return la.Prob < lb.Prob
		})
	}

	// acquired[k][d] tracks items held (warm or pulled by the schedule).
	maxD := t.StreamMaxItems()
	acquired := make([][]bool, t.NumStreams())
	for k := range acquired {
		acquired[k] = make([]bool, maxD[k])
		for d := range acquired[k] {
			acquired[k][d] = w.Has(query.StreamID(k), d+1)
		}
	}
	missingUpTo := func(k, d int) int {
		n := 0
		for i := 0; i < d; i++ {
			if !acquired[k][i] {
				n++
			}
		}
		return n
	}

	schedule := make(sched.Schedule, 0, t.NumLeaves())
	remaining := t.NumLeaves()
	for remaining > 0 {
		minRatio := math.Inf(1)
		bestStream := -1
		bestPrefix := 0
		for k := range byStream {
			if len(byStream[k]) == 0 {
				continue
			}
			cost := 0.0
			proba := 1.0
			covered := 0 // window depth already counted in this prefix
			for n, j := range byStream[k] {
				l := t.Leaves[j]
				if l.Items > covered {
					extra := missingUpTo(k, l.Items) - missingUpTo(k, covered)
					cost += proba * float64(extra) * t.Streams[k].Cost
					covered = l.Items
				}
				proba *= l.Prob
				ratio := math.Inf(1)
				if proba < 1 {
					ratio = cost / (1 - proba)
				}
				if ratio < minRatio {
					minRatio = ratio
					bestStream = k
					bestPrefix = n + 1
				}
			}
		}
		if bestStream == -1 {
			for k := range byStream {
				schedule = append(schedule, byStream[k]...)
				remaining -= len(byStream[k])
				byStream[k] = nil
			}
			break
		}
		last := byStream[bestStream][bestPrefix-1]
		schedule = append(schedule, byStream[bestStream][:bestPrefix]...)
		for d := 0; d < t.Leaves[last].Items; d++ {
			acquired[bestStream][d] = true
		}
		byStream[bestStream] = byStream[bestStream][bestPrefix:]
		remaining -= bestPrefix
	}
	return schedule
}

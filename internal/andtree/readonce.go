package andtree

import (
	"math"
	"sort"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// ReadOnceGreedy orders the leaves of an AND-tree by non-decreasing
// d_j * c(S(j)) / q_j (Smith's rule, [Smith 1989]). This is optimal in the
// read-once model but, as Section II-A of the paper shows, not in the
// shared model; it is the baseline of Figure 4.
//
// Ties are broken by increasing window size d, which can only help in the
// shared model (Proposition 1) and keeps the order deterministic.
func ReadOnceGreedy(t *query.Tree) sched.Schedule {
	if !t.IsAndTree() {
		panic("andtree: ReadOnceGreedy requires a single-AND tree")
	}
	s := make(sched.Schedule, t.NumLeaves())
	for j := range s {
		s[j] = j
	}
	key := func(j int) float64 {
		l := t.Leaves[j]
		q := 1 - l.Prob
		if q <= 0 {
			return math.Inf(1)
		}
		return float64(l.Items) * t.Streams[l.Stream].Cost / q
	}
	sort.SliceStable(s, func(a, b int) bool {
		ka, kb := key(s[a]), key(s[b])
		if ka != kb {
			return ka < kb
		}
		return t.Leaves[s[a]].Items < t.Leaves[s[b]].Items
	})
	return s
}

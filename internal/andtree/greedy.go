// Package andtree implements leaf-scheduling algorithms for AND-trees
// (single-level conjunctive queries) in the shared-stream model:
//
//   - Greedy: Algorithm 1 of Casanova et al. (IPDPS 2014), which is optimal
//     for shared AND-trees (Theorem 1);
//   - ReadOnceGreedy: the classical Smith-rule ordering by d*c/q, optimal in
//     the read-once model only (used as the Figure 4 baseline);
//   - Exhaustive: branch-and-bound search over all leaf permutations, used
//     to validate optimality on small instances.
package andtree

import (
	"math"
	"sort"

	"paotr/internal/query"
	"paotr/internal/sched"
)

// Greedy computes an optimal schedule for a shared AND-tree using
// Algorithm 1 of the paper. At each step it considers, for every stream,
// the prefixes of that stream's unscheduled leaves taken in increasing
// order of window size d, and computes the ratio of the prefix's expected
// incremental cost to its failure probability
//
//	Ratio = Cost / (1 - prod p)
//
// where Cost accounts for the items of the stream already acquired by the
// schedule so far. The prefix with the minimum ratio is appended to the
// schedule, and the process repeats. Complexity O(m^2).
//
// Greedy panics if t is not an AND-tree; it returns a schedule covering
// all leaves.
func Greedy(t *query.Tree) sched.Schedule {
	if !t.IsAndTree() {
		panic("andtree: Greedy requires a single-AND tree")
	}
	// Group leaves by stream, sorted by increasing d (Proposition 1).
	// Ties are broken by increasing probability: among leaves with the
	// same window the incremental cost is identical, so putting the most
	// likely-to-fail leaf first weakly lowers every prefix ratio.
	byStream := make([][]int, t.NumStreams())
	for j := range t.Leaves {
		k := t.Leaves[j].Stream
		byStream[k] = append(byStream[k], j)
	}
	for k := range byStream {
		ls := byStream[k]
		sort.SliceStable(ls, func(a, b int) bool {
			la, lb := t.Leaves[ls[a]], t.Leaves[ls[b]]
			if la.Items != lb.Items {
				return la.Items < lb.Items
			}
			return la.Prob < lb.Prob
		})
	}

	nItems := make([]int, t.NumStreams())
	schedule := make(sched.Schedule, 0, t.NumLeaves())
	remaining := t.NumLeaves()

	for remaining > 0 {
		minRatio := math.Inf(1)
		bestStream := -1
		bestPrefix := 0 // number of leaves of the chosen stream to append
		for k := range byStream {
			if len(byStream[k]) == 0 {
				continue
			}
			cost := 0.0
			proba := 1.0
			num := nItems[k]
			for n, j := range byStream[k] {
				l := t.Leaves[j]
				if l.Items > num {
					cost += proba * float64(l.Items-num) * t.Streams[k].Cost
					num = l.Items
				}
				proba *= l.Prob
				ratio := math.Inf(1)
				if proba < 1 {
					ratio = cost / (1 - proba)
				}
				if ratio < minRatio {
					minRatio = ratio
					bestStream = k
					bestPrefix = n + 1
				}
			}
		}
		if bestStream == -1 {
			// All remaining prefixes have probability 1 of success (no
			// shortcutting possible): order is immaterial; flush all
			// remaining leaves stream by stream in increasing d.
			for k := range byStream {
				schedule = append(schedule, byStream[k]...)
				remaining -= len(byStream[k])
				byStream[k] = nil
			}
			break
		}
		schedule = append(schedule, byStream[bestStream][:bestPrefix]...)
		last := byStream[bestStream][bestPrefix-1]
		if d := t.Leaves[last].Items; d > nItems[bestStream] {
			nItems[bestStream] = d
		}
		byStream[bestStream] = byStream[bestStream][bestPrefix:]
		remaining -= bestPrefix
	}
	return schedule
}

// Cost is a convenience wrapper around sched.AndTreeCost.
func Cost(t *query.Tree, s sched.Schedule) float64 { return sched.AndTreeCost(t, s) }

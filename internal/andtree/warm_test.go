package andtree

import (
	"math"
	"math/rand/v2"
	"testing"

	"paotr/internal/query"
	"paotr/internal/sched"
)

func randomWarmFor(rng *rand.Rand, t *query.Tree) sched.Warm {
	maxD := t.StreamMaxItems()
	w := make(sched.Warm, t.NumStreams())
	for k := range w {
		w[k] = make([]bool, maxD[k])
		for d := range w[k] {
			w[k][d] = rng.Float64() < 0.4
		}
	}
	return w
}

// warmExhaustive brute-forces the optimal warm-start schedule cost.
func warmExhaustive(t *query.Tree, w sched.Warm) float64 {
	m := t.NumLeaves()
	perm := make(sched.Schedule, m)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var walk func(k int)
	walk = func(k int) {
		if k == m {
			if c := sched.AndTreeCostWarm(t, perm, w); c < best {
				best = c
			}
			return
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return best
}

// TestGreedyWarmOptimal: the warm-start Algorithm 1 must match the
// exhaustive warm optimum on random small instances — the empirical
// extension of Theorem 1 to arbitrary cache states.
func TestGreedyWarmOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(600, 601))
	for trial := 0; trial < 300; trial++ {
		tr := randomAndTree(rng, 6, 3, 4)
		w := randomWarmFor(rng, tr)
		g := GreedyWarm(tr, w)
		if err := g.Validate(tr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gc := sched.AndTreeCostWarm(tr, g, w)
		oc := warmExhaustive(tr, w)
		if gc > oc+1e-9*(1+oc) {
			t.Fatalf("trial %d: GreedyWarm %v > optimal %v\ntree %v warm %v",
				trial, gc, oc, tr, w)
		}
	}
}

// TestGreedyWarmColdEqualsGreedy: with no cached items the warm algorithm
// must match the paper's Algorithm 1 cost exactly.
func TestGreedyWarmColdEqualsGreedy(t *testing.T) {
	rng := rand.New(rand.NewPCG(602, 603))
	for trial := 0; trial < 200; trial++ {
		tr := randomAndTree(rng, 10, 4, 5)
		a := sched.AndTreeCost(tr, Greedy(tr))
		b := sched.AndTreeCostWarm(tr, GreedyWarm(tr, nil), nil)
		if math.Abs(a-b) > 1e-9*(1+a) {
			t.Fatalf("trial %d: cold warm-greedy %v != greedy %v", trial, b, a)
		}
	}
}

// TestGreedyWarmFreeLeavesFirst: fully cached leaves cost nothing and
// should be scheduled before any paying prefix (their ratio is 0 when they
// can fail).
func TestGreedyWarmFreeLeavesFirst(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 5}, {Cost: 5}},
		Leaves: []query.Leaf{
			{Stream: 0, Items: 2, Prob: 0.9}, // must be paid
			{Stream: 1, Items: 1, Prob: 0.6}, // cached: free
		},
	}
	w := sched.WarmFromCounts([]int{0, 1})
	g := GreedyWarm(tr, w)
	if g[0] != 1 {
		t.Errorf("free fallible leaf should be first, got %v", g)
	}
	want := 0.6 * 2 * 5 // pay for leaf 0 only if the free leaf succeeds
	if got := sched.AndTreeCostWarm(tr, g, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

// TestGreedyWarmHole: a warm state with a hole (newest item missing,
// older ones cached) prices a window by its missing items only.
func TestGreedyWarmHole(t *testing.T) {
	tr := &query.Tree{
		Streams: []query.Stream{{Cost: 1}},
		Leaves: []query.Leaf{
			{Stream: 0, Items: 3, Prob: 0.5},
		},
	}
	w := sched.Warm{{false, true, true}} // items 2,3 cached, item 1 missing
	g := GreedyWarm(tr, w)
	if got := sched.AndTreeCostWarm(tr, g, w); math.Abs(got-1) > 1e-12 {
		t.Errorf("cost = %v, want 1 (only the newest item)", got)
	}
}

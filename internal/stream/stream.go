// Package stream models periodic sensor data streams for the pull-based
// query processing scenario of the paper: each stream produces one data
// item per time step, and the query engine explicitly pulls the most
// recent items it needs, paying a per-item acquisition cost (e.g. the
// energy cost of radio transfer from a wearable sensor).
//
// The paper's experiments ran against synthetic (p, d, c) triples; this
// package supplies the full substrate its motivation describes — concrete
// sensors (heart rate, SpO2, accelerometer, GPS speed, temperature) whose
// items flow through the same acquisition and caching code paths, so the
// end-to-end engine can be validated against the analytical cost model
// (see DESIGN.md, "Substitutions").
package stream

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// Item is one sensor reading.
type Item struct {
	// Seq is the production time step (monotonically increasing).
	Seq int64
	// Value is the reading.
	Value float64
}

// Source produces one item per time step on demand. Implementations must
// be deterministic functions of their seed and the step so that pulls are
// reproducible. Streams conceptually have always existed (the paper's
// model), so At must accept negative steps as well.
type Source interface {
	// At returns the item produced at the given step (any int64).
	At(step int64) Item
	// Name identifies the source.
	Name() string
}

// CostModel prices the acquisition of items from a stream.
type CostModel struct {
	// BytesPerItem is the payload size of one item.
	BytesPerItem int
	// JoulesPerByte is the transfer energy cost of the medium.
	JoulesPerByte float64
	// BaseJoules is a fixed per-item radio wake-up overhead.
	BaseJoules float64
}

// PerItem returns the energy cost of acquiring one item.
func (c CostModel) PerItem() float64 {
	return c.BaseJoules + float64(c.BytesPerItem)*c.JoulesPerByte
}

// Media presets loosely modeled on short-range radio technologies; the
// absolute values are arbitrary but their ordering (BLE < WiFi < cellular)
// matches the motivation of [4].
var (
	BLE      = CostModel{BytesPerItem: 8, JoulesPerByte: 0.05, BaseJoules: 0.1}
	WiFi     = CostModel{BytesPerItem: 8, JoulesPerByte: 0.12, BaseJoules: 0.5}
	Cellular = CostModel{BytesPerItem: 8, JoulesPerByte: 0.35, BaseJoules: 2.0}
)

// DynamicCost prices items per production step, for scenarios whose
// acquisition cost regime changes over time (e.g. a sensor falling back
// from BLE to cellular). Implementations must be deterministic functions
// of the step.
type DynamicCost interface {
	// PerItemAt returns the cost of acquiring the item produced at step.
	PerItemAt(step int64) float64
}

// Stream couples a source with a cost model. When Dynamic is non-nil it
// overrides the static model's per-item price at acquisition time; Cost
// remains the planner-visible baseline (planners that learn realized
// costs — see internal/adapt — converge to the dynamic price).
type Stream struct {
	Source  Source
	Cost    CostModel
	Dynamic DynamicCost
}

// PerItemAt returns the cost of acquiring the item produced at step:
// the dynamic price when one is installed, the static model otherwise.
func (s Stream) PerItemAt(step int64) float64 {
	if s.Dynamic != nil {
		return s.Dynamic.PerItemAt(step)
	}
	return s.Cost.PerItem()
}

// sine is a deterministic sinusoid with additive pseudo-random noise.
type sine struct {
	name            string
	base, amp, freq float64
	noise           float64
	seed            uint64
}

func (s sine) Name() string { return s.name }

func (s sine) At(step int64) Item {
	// Deterministic per-step noise: hash the step with the seed.
	rng := rand.New(rand.NewPCG(s.seed, uint64(step)*0x9e3779b97f4a7c15+1))
	v := s.base + s.amp*math.Sin(2*math.Pi*s.freq*float64(step)) +
		s.noise*(2*rng.Float64()-1)
	return Item{Seq: step, Value: v}
}

// randomWalk is a bounded random walk, deterministic in (seed, step).
// Each At recomputes the walk prefix lazily with caching. The memo is
// mutex-guarded: a registry may back several acquisition caches at once
// (shard workers each own a private cache over the shared registry), so
// At must be safe for concurrent use.
type randomWalk struct {
	name       string
	start      float64
	stepSize   float64
	lo, hi     float64
	seed       uint64
	mu         sync.Mutex
	cache      []float64
	cacheValid bool
}

func (r *randomWalk) Name() string { return r.name }

func (r *randomWalk) At(step int64) Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The walk starts at step 0; earlier steps return the start value
	// (streams have always existed in the paper's model).
	if step < 0 {
		return Item{Seq: step, Value: r.start}
	}
	// The walk is defined recursively; memoize from step 0.
	if !r.cacheValid {
		r.cache = []float64{r.start}
		r.cacheValid = true
	}
	for int64(len(r.cache)) <= step {
		i := int64(len(r.cache))
		rng := rand.New(rand.NewPCG(r.seed, uint64(i)))
		v := r.cache[i-1] + r.stepSize*(2*rng.Float64()-1)
		if v < r.lo {
			v = r.lo
		}
		if v > r.hi {
			v = r.hi
		}
		r.cache = append(r.cache, v)
	}
	return Item{Seq: step, Value: r.cache[step]}
}

// spikes is a mostly-flat signal with occasional bursts, modeling event
// sensors (e.g. accelerometer magnitude with activity bursts).
type spikes struct {
	name       string
	base, peak float64
	period     int64
	width      int64
	seed       uint64
}

func (s spikes) Name() string { return s.name }

func (s spikes) At(step int64) Item {
	rng := rand.New(rand.NewPCG(s.seed, uint64(step)+7))
	v := s.base + 0.1*s.base*(2*rng.Float64()-1)
	phase := step % s.period
	if phase < 0 {
		phase += s.period
	}
	if s.period > 0 && phase < s.width {
		v = s.peak + 0.05*s.peak*(2*rng.Float64()-1)
	}
	return Item{Seq: step, Value: v}
}

// Synthetic sensor constructors. All are deterministic in their seed.

// HeartRate returns a resting-heart-rate stream in beats per minute:
// a random walk around 60-100 bpm.
func HeartRate(seed uint64) Source {
	return &randomWalk{name: "heart-rate", start: 72, stepSize: 2.5, lo: 45, hi: 185, seed: seed}
}

// SpO2 returns a blood-oxygen-saturation stream in percent (random walk
// near 97 with a floor of 80).
func SpO2(seed uint64) Source {
	return &randomWalk{name: "spo2", start: 97, stepSize: 0.4, lo: 80, hi: 100, seed: seed}
}

// Accelerometer returns an activity-magnitude stream in m/s^2: near-1g at
// rest with periodic activity bursts.
func Accelerometer(seed uint64) Source {
	return spikes{name: "accelerometer", base: 9.8, peak: 25, period: 97, width: 13, seed: seed}
}

// GPSSpeed returns a movement-speed stream in m/s with commute-like
// periodicity.
func GPSSpeed(seed uint64) Source {
	return sine{name: "gps-speed", base: 1.2, amp: 1.2, freq: 1.0 / 240, noise: 0.3, seed: seed}
}

// Temperature returns an ambient-temperature stream in Celsius with a slow
// diurnal cycle.
func Temperature(seed uint64) Source {
	return sine{name: "temperature", base: 21, amp: 4, freq: 1.0 / 1440, noise: 0.2, seed: seed}
}

// Uniform returns a stream of independent uniform values in [0,1),
// deterministic in (seed, step). Predicates of the form "MAX(u,d) < t"
// over such a stream are TRUE with probability exactly t^d, which makes
// uniform streams the workload of choice for validating expected-cost
// models against realized execution costs.
func Uniform(name string, seed uint64) Source { return uniform{name, seed} }

type uniform struct {
	name string
	seed uint64
}

func (u uniform) Name() string { return u.name }

func (u uniform) At(step int64) Item {
	rng := rand.New(rand.NewPCG(u.seed, uint64(step)*0x9e3779b97f4a7c15+1))
	return Item{Seq: step, Value: rng.Float64()}
}

// Constant returns a stream that always produces the same value — useful
// in tests.
func Constant(name string, v float64) Source { return constant{name, v} }

type constant struct {
	name string
	v    float64
}

func (c constant) Name() string       { return c.name }
func (c constant) At(step int64) Item { return Item{Seq: step, Value: c.v} }

// Wearables builds the standard five-sensor wearable registry used by
// the simulator, the multi-query service and the tests: heart-rate,
// spo2, accelerometer (WiFi), gps-speed and temperature, seeded with
// seed..seed+4.
func Wearables(seed uint64) *Registry {
	reg := NewRegistry()
	for _, s := range []struct {
		src  Source
		cost CostModel
	}{
		{HeartRate(seed), BLE},
		{SpO2(seed + 1), BLE},
		{Accelerometer(seed + 2), WiFi},
		{GPSSpeed(seed + 3), BLE},
		{Temperature(seed + 4), BLE},
	} {
		if err := reg.Add(s.src, s.cost); err != nil {
			panic(err) // unreachable: names are distinct constants
		}
	}
	return reg
}

// Registry is a named collection of streams, the device's view of its
// sensor network.
type Registry struct {
	streams []Stream
	byName  map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Add registers a stream; the source name must be unique.
func (r *Registry) Add(src Source, cost CostModel) error {
	return r.AddDynamic(src, cost, nil)
}

// AddDynamic registers a stream whose realized per-item price follows dyn
// (cost stays the planner-visible static baseline). A nil dyn is Add.
func (r *Registry) AddDynamic(src Source, cost CostModel, dyn DynamicCost) error {
	if _, dup := r.byName[src.Name()]; dup {
		return fmt.Errorf("stream: duplicate stream %q", src.Name())
	}
	r.byName[src.Name()] = len(r.streams)
	r.streams = append(r.streams, Stream{Source: src, Cost: cost, Dynamic: dyn})
	return nil
}

// Len returns the number of registered streams.
func (r *Registry) Len() int { return len(r.streams) }

// ByName returns the stream with the given name.
func (r *Registry) ByName(name string) (Stream, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Stream{}, false
	}
	return r.streams[i], true
}

// IndexOf returns the registry index of the named stream.
func (r *Registry) IndexOf(name string) (int, bool) {
	i, ok := r.byName[name]
	return i, ok
}

// At returns the stream at a registry index.
func (r *Registry) At(i int) Stream { return r.streams[i] }

// Names lists registered stream names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.streams))
	for i, s := range r.streams {
		out[i] = s.Source.Name()
	}
	return out
}

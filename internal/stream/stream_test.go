package stream

import (
	"math"
	"testing"
)

func TestSourcesDeterministic(t *testing.T) {
	sources := []Source{
		HeartRate(1), SpO2(2), Accelerometer(3), GPSSpeed(4), Temperature(5),
	}
	for _, src := range sources {
		a := src.At(100)
		b := src.At(100)
		if a != b {
			t.Errorf("%s: At(100) not deterministic: %v vs %v", src.Name(), a, b)
		}
		if a.Seq != 100 {
			t.Errorf("%s: Seq = %d", src.Name(), a.Seq)
		}
	}
	// Two instances with the same seed agree.
	x, y := HeartRate(7), HeartRate(7)
	for step := int64(0); step < 50; step++ {
		if x.At(step) != y.At(step) {
			t.Fatalf("heart-rate seed 7 disagrees at step %d", step)
		}
	}
}

func TestRandomWalkOutOfOrderAccess(t *testing.T) {
	src := HeartRate(11)
	late := src.At(500)
	early := src.At(100)
	if src.At(500) != late || src.At(100) != early {
		t.Error("random walk access order changes values")
	}
}

func TestSourceRanges(t *testing.T) {
	cases := []struct {
		src    Source
		lo, hi float64
	}{
		{HeartRate(1), 45, 185},
		{SpO2(1), 80, 100},
		{Accelerometer(1), 0, 30},
		{Temperature(1), 10, 32},
	}
	for _, c := range cases {
		for step := int64(0); step < 2000; step++ {
			v := c.src.At(step).Value
			if v < c.lo || v > c.hi || math.IsNaN(v) {
				t.Fatalf("%s: value %v at step %d outside [%v, %v]",
					c.src.Name(), v, step, c.lo, c.hi)
			}
		}
	}
}

func TestAccelerometerHasBursts(t *testing.T) {
	src := Accelerometer(9)
	high, low := 0, 0
	for step := int64(0); step < 1000; step++ {
		if src.At(step).Value > 15 {
			high++
		} else {
			low++
		}
	}
	if high == 0 || low == 0 {
		t.Errorf("expected both rest and burst phases, got high=%d low=%d", high, low)
	}
}

func TestCostModels(t *testing.T) {
	if !(BLE.PerItem() < WiFi.PerItem() && WiFi.PerItem() < Cellular.PerItem()) {
		t.Errorf("cost ordering broken: BLE=%v WiFi=%v Cell=%v",
			BLE.PerItem(), WiFi.PerItem(), Cellular.PerItem())
	}
	c := CostModel{BytesPerItem: 10, JoulesPerByte: 0.5, BaseJoules: 1}
	if got := c.PerItem(); got != 6 {
		t.Errorf("PerItem = %v, want 6", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(HeartRate(1), BLE); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(SpO2(1), BLE); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(HeartRate(2), WiFi); err == nil {
		t.Error("duplicate name accepted")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if _, ok := r.ByName("heart-rate"); !ok {
		t.Error("ByName failed")
	}
	if _, ok := r.ByName("nope"); ok {
		t.Error("ByName found a ghost")
	}
	if i, ok := r.IndexOf("spo2"); !ok || i != 1 {
		t.Errorf("IndexOf(spo2) = %d, %v", i, ok)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "heart-rate" || names[1] != "spo2" {
		t.Errorf("Names = %v", names)
	}
	if r.At(0).Source.Name() != "heart-rate" {
		t.Error("At(0) mismatch")
	}
}

func TestConstant(t *testing.T) {
	c := Constant("k", 42)
	if c.Name() != "k" || c.At(9).Value != 42 || c.At(9).Seq != 9 {
		t.Error("Constant misbehaves")
	}
}

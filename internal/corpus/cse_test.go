package corpus

import (
	"testing"

	"paotr/internal/engine"
	"paotr/internal/stream"
)

func cseRegistry(t *testing.T, cfg CSEConfig) *stream.Registry {
	t.Helper()
	reg := stream.NewRegistry()
	for i, name := range cfg.StreamNames() {
		if err := reg.Add(stream.Uniform(name, uint64(i+1)), stream.CostModel{BaseJoules: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// Exact twins (Jitter 0) must compile to the same canonical shape within
// a shape index and to pairwise distinct shapes across indices.
func TestCSEFleetTwinsShareShape(t *testing.T) {
	cfg := CSEConfig{Tenants: 40, Shapes: 8, Streams: 6, Seed: 7}
	fleet := CSEFleet(cfg)
	if len(fleet) != 40 {
		t.Fatalf("got %d tenants, want 40", len(fleet))
	}
	eng := engine.New(cseRegistry(t, cfg))
	keyOf := map[int]string{}
	for _, q := range fleet {
		cq, err := eng.Compile(q.Text)
		if err != nil {
			t.Fatalf("compiling %q: %v", q.Text, err)
		}
		k := cq.ShapeKey()
		if want, ok := keyOf[q.Shape]; ok {
			if k != want {
				t.Fatalf("tenant %s of shape %d has a different canonical shape", q.ID, q.Shape)
			}
		} else {
			keyOf[q.Shape] = k
		}
	}
	seen := map[string]int{}
	for si, k := range keyOf {
		if o, dup := seen[k]; dup {
			t.Fatalf("shapes %d and %d collapsed to one canonical shape", o, si)
		}
		seen[k] = si
	}
}

// Jittered fleets are the negative control: every tenant's probabilities
// differ, so no two queries may share a shape class.
func TestCSEFleetJitterDistinct(t *testing.T) {
	cfg := CSEConfig{Tenants: 30, Shapes: 5, Streams: 6, Jitter: 0.02, Seed: 11}
	fleet := CSEFleet(cfg)
	eng := engine.New(cseRegistry(t, cfg))
	seen := map[string]string{}
	for _, q := range fleet {
		cq, err := eng.Compile(q.Text)
		if err != nil {
			t.Fatalf("compiling %q: %v", q.Text, err)
		}
		k := cq.ShapeKey()
		if o, dup := seen[k]; dup {
			t.Fatalf("jittered tenants %s and %s share a shape", o, q.ID)
		}
		seen[k] = q.ID
	}
}

func TestCSEFleetDeterministic(t *testing.T) {
	cfg := CSEConfig{Tenants: 20, Shapes: 4, Streams: 5, Jitter: 0.01, Seed: 3}
	a, b := CSEFleet(cfg), CSEFleet(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at tenant %d:\n%v\n%v", i, a[i], b[i])
		}
	}
}

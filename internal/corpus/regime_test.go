package corpus

import (
	"math"
	"testing"
)

// TestRegimeSourceHitsConfiguredProbabilities: the fraction of values
// below Tau matches the configured probability in each regime.
func TestRegimeSourceHitsConfiguredProbabilities(t *testing.T) {
	cfg := RegimeConfig{Seed: 5, ShiftStep: 10_000}.norm()
	reg := RegimeRegistry(cfg)
	if reg.Len() != 4 {
		t.Fatalf("registry has %d streams, want 4", reg.Len())
	}
	const n = 8000
	for k := 0; k < reg.Len(); k++ {
		src := reg.At(k).Source
		countBelow := func(from, to int64) float64 {
			below := 0
			for step := from; step < to; step++ {
				if src.At(step).Value < cfg.Tau {
					below++
				}
			}
			return float64(below) / float64(to-from)
		}
		tol := 3 * math.Sqrt(0.25/n)
		if got := countBelow(0, n); math.Abs(got-cfg.ProbsA[k]) > tol {
			t.Errorf("stream %d regime A: P(v<tau)=%.3f, want %.2f", k, got, cfg.ProbsA[k])
		}
		if got := countBelow(cfg.ShiftStep, cfg.ShiftStep+n); math.Abs(got-cfg.ProbsB[k]) > tol {
			t.Errorf("stream %d regime B: P(v<tau)=%.3f, want %.2f", k, got, cfg.ProbsB[k])
		}
	}
}

// TestRegimeCostsFlipAtShift: per-item prices follow the regimes, and
// the static planner-visible model keeps regime A's price.
func TestRegimeCostsFlipAtShift(t *testing.T) {
	cfg := RegimeConfig{Seed: 9, ShiftStep: 100}.norm()
	reg := RegimeRegistry(cfg)
	for k := 0; k < reg.Len(); k++ {
		st := reg.At(k)
		if got := st.PerItemAt(99); got != cfg.CostsA[k] {
			t.Errorf("stream %d pre-shift per-item = %v, want %v", k, got, cfg.CostsA[k])
		}
		if got := st.PerItemAt(100); got != cfg.CostsB[k] {
			t.Errorf("stream %d post-shift per-item = %v, want %v", k, got, cfg.CostsB[k])
		}
		if got := st.Cost.PerItem(); got != cfg.CostsA[k] {
			t.Errorf("stream %d static model = %v, want regime A %v", k, got, cfg.CostsA[k])
		}
	}
	// A stationary config never flips.
	stat := RegimeRegistry(RegimeConfig{Seed: 9})
	for k := 0; k < stat.Len(); k++ {
		if got := stat.At(k).PerItemAt(1 << 40); got != cfg.CostsA[k] {
			t.Errorf("stationary stream %d per-item = %v at large step, want %v", k, got, cfg.CostsA[k])
		}
	}
}

// TestRegimeQueriesParseable is covered end-to-end by the service tests;
// here just check shape.
func TestRegimeQueriesShape(t *testing.T) {
	qs := RegimeQueries(RegimeConfig{})
	if len(qs) != 2 {
		t.Fatalf("queries = %v", qs)
	}
	if qs[0] != "r0 < 0.5 OR r1 < 0.5 OR r2 < 0.5 OR r3 < 0.5" {
		t.Errorf("OR query = %q", qs[0])
	}
	if qs[1] != "r3 < 0.5 AND r0 < 0.5" {
		t.Errorf("AND query = %q", qs[1])
	}
}

package corpus

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"paotr/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	instances := GenerateDNF(gen.SmallDNFConfigs()[:5], 2, 7, gen.Dist{})
	if len(instances) != 10 {
		t.Fatalf("%d instances", len(instances))
	}
	var buf bytes.Buffer
	if err := Write(&buf, instances); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(instances) {
		t.Fatalf("round trip lost instances: %d vs %d", len(got), len(instances))
	}
	for i := range got {
		if got[i].ID != instances[i].ID || got[i].Rho != instances[i].Rho ||
			got[i].Kind != "dnf" || got[i].Seed != instances[i].Seed {
			t.Errorf("instance %d metadata mismatch: %+v", i, got[i])
		}
		if got[i].Tree.String() != instances[i].Tree.String() {
			t.Errorf("instance %d tree mismatch", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	instances := GenerateAndTrees(1, 3, gen.Dist{})
	if len(instances) != 157 {
		t.Fatalf("%d instances, want 157 (one per Figure 4 config)", len(instances))
	}
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := WriteFile(path, instances); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 157 {
		t.Fatalf("read %d", len(got))
	}
	for _, in := range got {
		if in.Kind != "and" || !in.Tree.IsAndTree() {
			t.Fatalf("bad instance %+v", in)
		}
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"id":0,"kind":"and","tree":null}`,
		`{"id":0,"kind":"and","tree":{"streams":[],"leaves":[]}}`,
		`{"id":0,"kind":"and","tree":{"streams":[{"name":"A","cost":1}],"leaves":[{"and":0,"stream":0,"items":0,"prob":0.5}]}}`,
		`not json at all`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Empty corpus is fine.
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty corpus: %v, %d", err, len(got))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateDNF(gen.LargeDNFConfigs()[:3], 2, 11, gen.Dist{})
	b := GenerateDNF(gen.LargeDNFConfigs()[:3], 2, 11, gen.Dist{})
	for i := range a {
		if a[i].Tree.String() != b[i].Tree.String() {
			t.Fatalf("instance %d differs between identical calls", i)
		}
	}
}

// Duplicated-shape fleet generation: the workload cross-tenant shape
// factoring (service.WithShapeFactoring) monetizes. A multi-tenant
// deployment rarely carries N distinct query shapes — tenants install
// the same alert templates over the same shared feeds — so the fleet
// collapses to M distinct shapes with N/M subscribers each, and the
// tick path should pay O(M), not O(N).
package corpus

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// CSEConfig parameterizes a duplicated-shape fleet.
type CSEConfig struct {
	// Tenants is the number of registered query identities N.
	Tenants int
	// Shapes is the number of distinct query shapes M the tenants draw
	// from (capped at Tenants; tenant i subscribes to shape i mod M).
	Shapes int
	// Streams is the stream-space size; shapes reference streams named
	// "s0".."s<Streams-1>" (see StreamNames).
	Streams int
	// Jitter, when positive, perturbs each tenant's leaf probabilities by
	// up to ±Jitter — near-miss twins that must NOT be deduplicated,
	// the negative control for shape factoring. 0 yields exact twins.
	Jitter float64
	// Seed drives the deterministic generator.
	Seed uint64
}

func (c CSEConfig) norm() CSEConfig {
	if c.Tenants < 1 {
		c.Tenants = 1
	}
	if c.Shapes < 1 {
		c.Shapes = 1
	}
	if c.Shapes > c.Tenants {
		c.Shapes = c.Tenants
	}
	if c.Streams < 1 {
		c.Streams = 1
	}
	return c
}

// StreamNames lists the stream names a CSE fleet references, in registry
// order: the caller registers these before registering the fleet.
func (c CSEConfig) StreamNames() []string {
	c = c.norm()
	out := make([]string, c.Streams)
	for k := range out {
		out[k] = fmt.Sprintf("s%d", k)
	}
	return out
}

// CSEQuery is one generated registration.
type CSEQuery struct {
	// ID is the tenant's query id ("t<i>"), Text the service query text.
	ID   string
	Text string
	// Shape indexes the distinct shape the tenant subscribed to.
	Shape int
}

// cseLeaf is one leaf of a shape template before rendering.
type cseLeaf struct {
	stream int
	window int
	thresh float64
	prob   float64
}

// CSEFleet generates a duplicated-shape fleet: Shapes distinct annotated
// DNF templates over the stream space, each subscribed to by
// Tenants/Shapes tenant identities (tenant i takes shape i mod Shapes).
// With Jitter == 0 the copies are byte-identical texts — exact shape
// twins a factoring service interns into Shapes classes. With Jitter > 0
// every tenant's probabilities are independently perturbed, so the
// fleet's shapes are pairwise distinct and nothing may be factored.
func CSEFleet(cfg CSEConfig) []CSEQuery {
	cfg = cfg.norm()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5e5))

	shapes := make([][][]cseLeaf, cfg.Shapes) // shape -> AND term -> leaves
	for si := range shapes {
		ands := make([][]cseLeaf, 1+rng.IntN(2))
		for a := range ands {
			leaves := make([]cseLeaf, 1+rng.IntN(3))
			for l := range leaves {
				leaves[l] = cseLeaf{
					stream: rng.IntN(cfg.Streams),
					window: 2 + rng.IntN(7),
					thresh: 0.1 + 0.05*float64(rng.IntN(9)),
					prob:   0.05 + 0.9*rng.Float64(),
				}
			}
			ands[a] = leaves
		}
		shapes[si] = ands
	}

	out := make([]CSEQuery, cfg.Tenants)
	for i := range out {
		si := i % cfg.Shapes
		jit := func(p float64) float64 {
			if cfg.Jitter <= 0 {
				return p
			}
			p += cfg.Jitter * (2*rng.Float64() - 1)
			if p < 0.01 {
				p = 0.01
			}
			if p > 0.99 {
				p = 0.99
			}
			return p
		}
		var b strings.Builder
		for a, leaves := range shapes[si] {
			if a > 0 {
				b.WriteString(" OR ")
			}
			multi := len(leaves) > 1
			if multi && len(shapes[si]) > 1 {
				b.WriteByte('(')
			}
			for l, lf := range leaves {
				if l > 0 {
					b.WriteString(" AND ")
				}
				fmt.Fprintf(&b, "AVG(s%d,%d) > %.2f [p=%.6f]",
					lf.stream, lf.window, lf.thresh, jit(lf.prob))
			}
			if multi && len(shapes[si]) > 1 {
				b.WriteByte(')')
			}
		}
		out[i] = CSEQuery{ID: fmt.Sprintf("t%d", i), Text: b.String(), Shape: si}
	}
	return out
}

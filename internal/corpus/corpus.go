// Package corpus reads and writes instance corpora: JSON-lines files of
// query trees with metadata, mirroring the dataset the authors published
// alongside the paper (DataForRR-8373.tgz). Corpora make experiments
// repeatable across implementations: generate once, evaluate many times.
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"paotr/internal/gen"
	"paotr/internal/query"
)

// Instance is one corpus entry: a tree plus its generation parameters.
type Instance struct {
	// ID is a unique instance identifier within the corpus.
	ID int `json:"id"`
	// Kind is "and" or "dnf".
	Kind string `json:"kind"`
	// Rho is the sharing ratio the instance was generated with.
	Rho float64 `json:"rho"`
	// Seed is the generator seed.
	Seed uint64 `json:"seed"`
	// Tree is the instance itself.
	Tree *query.Tree `json:"tree"`
}

// Write streams instances as JSON lines.
func Write(w io.Writer, instances []Instance) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, in := range instances {
		if err := enc.Encode(in); err != nil {
			return fmt.Errorf("corpus: encoding instance %d: %w", in.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses and validates a JSON-lines corpus.
func Read(r io.Reader) ([]Instance, error) {
	var out []Instance
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var in Instance
		if err := dec.Decode(&in); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", len(out)+1, err)
		}
		if in.Tree == nil {
			return nil, fmt.Errorf("corpus: instance %d has no tree", in.ID)
		}
		if err := in.Tree.Validate(); err != nil {
			return nil, fmt.Errorf("corpus: instance %d: %w", in.ID, err)
		}
		out = append(out, in)
	}
	return out, nil
}

// WriteFile writes a corpus file.
func WriteFile(path string, instances []Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, instances); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a corpus file.
func ReadFile(path string) ([]Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// GenerateAndTrees builds a corpus of AND-trees across the Figure 4
// configuration grid, n instances per configuration.
func GenerateAndTrees(n int, seed uint64, dist gen.Dist) []Instance {
	var out []Instance
	id := 0
	for ci, cfg := range gen.Fig4Configs() {
		for i := 0; i < n; i++ {
			s := seed + uint64(ci)*1_000_003 + uint64(i)*7
			out = append(out, Instance{
				ID: id, Kind: "and", Rho: cfg.Rho, Seed: s,
				Tree: gen.AndTree(cfg.M, cfg.Rho, dist, gen.NewRng(s)),
			})
			id++
		}
	}
	return out
}

// GenerateDNF builds a corpus of DNF trees across the given configuration
// grid (gen.SmallDNFConfigs or gen.LargeDNFConfigs), n per configuration.
func GenerateDNF(cfgs []gen.DNFConfig, n int, seed uint64, dist gen.Dist) []Instance {
	var out []Instance
	id := 0
	for ci, cfg := range cfgs {
		for i := 0; i < n; i++ {
			s := seed + uint64(ci)*1_000_003 + uint64(i)*13
			out = append(out, Instance{
				ID: id, Kind: "dnf", Rho: cfg.Rho, Seed: s,
				Tree: cfg.Generate(dist, gen.NewRng(s)),
			})
			id++
		}
	}
	return out
}

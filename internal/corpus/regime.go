package corpus

import (
	"fmt"
	"math/rand/v2"

	"paotr/internal/stream"
)

// RegimeConfig describes a two-regime synthetic scenario for exercising
// online adaptation: every stream's predicate success probability AND
// per-item acquisition cost flip from regime A to regime B at a
// configurable production step. Before the shift the scenario is
// stationary, so a one-regime run (ShiftStep <= 0, or a run shorter than
// ShiftStep) doubles as the stationary baseline.
//
// Streams are named "r0".."rN-1" and produce uniform values shaped so
// that the predicate "rK < Tau" is TRUE with exactly the configured
// probability — the controlled workload for validating estimators
// against ground truth.
type RegimeConfig struct {
	// Streams is the number of streams (default 4).
	Streams int
	// ShiftStep is the production step at which regime B starts;
	// <= 0 never shifts (a stationary scenario).
	ShiftStep int64
	// Seed drives the deterministic value streams.
	Seed uint64
	// Tau is the predicate threshold (default 0.5).
	Tau float64
	// ProbsA/ProbsB are the per-stream P(value < Tau) in each regime
	// (defaults: A = 0.7, 0.3, 0.2, 0.1...; B = 0.02, 0.05, 0.1, 0.8...).
	ProbsA, ProbsB []float64
	// CostsA/CostsB are the per-item acquisition costs in each regime
	// (defaults: A = 1, 2, 4, 8...; B = 6, 2, 4, 2...). CostsA is also
	// the static planner-visible baseline; only cost-learning planners
	// see regime B's prices before paying them.
	CostsA, CostsB []float64
}

// defaultRegime fills the documented defaults for up to any stream
// count (the per-stream defaults repeat beyond index 3).
func (c RegimeConfig) norm() RegimeConfig {
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.Tau <= 0 || c.Tau >= 1 {
		c.Tau = 0.5
	}
	pad := func(vals []float64, defaults [4]float64) []float64 {
		out := append([]float64(nil), vals...)
		for len(out) < c.Streams {
			out = append(out, defaults[len(out)%4])
		}
		return out[:c.Streams]
	}
	c.ProbsA = pad(c.ProbsA, [4]float64{0.7, 0.3, 0.2, 0.1})
	c.ProbsB = pad(c.ProbsB, [4]float64{0.02, 0.05, 0.1, 0.8})
	c.CostsA = pad(c.CostsA, [4]float64{1, 2, 4, 8})
	c.CostsB = pad(c.CostsB, [4]float64{6, 2, 4, 2})
	return c
}

// regimeSource produces uniform-derived values with P(value < tau) = pA
// before the shift step and pB from it on, deterministic in (seed, step).
type regimeSource struct {
	name   string
	seed   uint64
	tau    float64
	pA, pB float64
	shift  int64 // <= 0: never shifts
}

func (s regimeSource) Name() string { return s.name }

func (s regimeSource) At(step int64) stream.Item {
	p := s.pA
	if s.shift > 0 && step >= s.shift {
		p = s.pB
	}
	rng := rand.New(rand.NewPCG(s.seed, uint64(step)*0x9e3779b97f4a7c15+1))
	u := rng.Float64()
	// Map u so that P(value < tau) = p exactly: the sub-tau mass gets
	// the first p of the uniform, the rest spreads over [tau, 1).
	// (u < 1 always, so p >= 1 lands in the first branch.)
	var v float64
	if u < p {
		v = s.tau * u / p
	} else {
		v = s.tau + (1-s.tau)*(u-p)/(1-p)
	}
	return stream.Item{Seq: step, Value: v}
}

// regimeCost prices items at costA before the shift step and costB from
// it on.
type regimeCost struct {
	costA, costB float64
	shift        int64
}

func (c regimeCost) PerItemAt(step int64) float64 {
	if c.shift > 0 && step >= c.shift {
		return c.costB
	}
	return c.costA
}

// RegimeRegistry builds the scenario's stream registry: streams
// "r0".."rN-1" whose value distributions and per-item prices flip at
// cfg.ShiftStep. The static cost models carry regime A's prices (what a
// non-learning planner believes forever).
func RegimeRegistry(cfg RegimeConfig) *stream.Registry {
	cfg = cfg.norm()
	reg := stream.NewRegistry()
	for k := 0; k < cfg.Streams; k++ {
		src := regimeSource{
			name: fmt.Sprintf("r%d", k),
			seed: cfg.Seed + uint64(k)*1_000_003,
			tau:  cfg.Tau,
			pA:   cfg.ProbsA[k], pB: cfg.ProbsB[k],
			shift: cfg.ShiftStep,
		}
		var dyn stream.DynamicCost
		if cfg.CostsA[k] != cfg.CostsB[k] {
			dyn = regimeCost{costA: cfg.CostsA[k], costB: cfg.CostsB[k], shift: cfg.ShiftStep}
		}
		if err := reg.AddDynamic(src, stream.CostModel{BaseJoules: cfg.CostsA[k]}, dyn); err != nil {
			panic(err) // unreachable: generated names are distinct
		}
	}
	return reg
}

// RegimeQueries returns the scenario's query texts — deliberately
// without probability annotations, so planning rests entirely on learned
// estimates. The OR query is the headline: its cost-optimal leaf order
// under regime A is close to worst-case under regime B, so a planner
// holding stale estimates keeps paying for expensive never-true leaves.
func RegimeQueries(cfg RegimeConfig) []string {
	cfg = cfg.norm()
	tau := cfg.Tau
	qs := []string{
		orQuery(cfg.Streams, tau),
	}
	if cfg.Streams >= 2 {
		// AND short-circuits on FALSE: regime A's most-likely-false leaf
		// becomes regime B's most-likely-true one, and vice versa.
		qs = append(qs, fmt.Sprintf("r%d < %g AND r0 < %g", cfg.Streams-1, tau, tau))
	}
	return qs
}

func orQuery(n int, tau float64) string {
	s := ""
	for k := 0; k < n; k++ {
		if k > 0 {
			s += " OR "
		}
		s += fmt.Sprintf("r%d < %g", k, tau)
	}
	return s
}

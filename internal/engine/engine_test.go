package engine

import (
	"math"
	"strings"
	"testing"

	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/stream"
)

func testRegistry(t *testing.T) *stream.Registry {
	t.Helper()
	reg := stream.NewRegistry()
	for _, s := range []struct {
		src  stream.Source
		cost stream.CostModel
	}{
		{stream.HeartRate(1), stream.BLE},
		{stream.SpO2(2), stream.BLE},
		{stream.Accelerometer(3), stream.WiFi},
		{stream.Constant("const-low", 1), stream.BLE},
		{stream.Constant("const-high", 100), stream.BLE},
	} {
		if err := reg.Add(s.src, s.cost); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestCompileBindsStreams(t *testing.T) {
	e := New(testRegistry(t))
	q, err := e.Compile("AVG(heart-rate,5) > 100 AND spo2 < 90")
	if err != nil {
		t.Fatal(err)
	}
	tr := q.Tree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 || !tr.IsAndTree() {
		t.Errorf("tree = %v", tr)
	}
	if tr.Leaves[0].Items != 5 || tr.Leaves[1].Items != 1 {
		t.Error("windows mis-bound")
	}
	if _, err := e.Compile("nosuch < 3"); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := e.Compile("AVG(heart-rate,5) >"); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestAnnotationOverridesTrace(t *testing.T) {
	e := New(testRegistry(t))
	q, err := e.Compile("heart-rate > 100 [p=0.25] AND spo2 < 90")
	if err != nil {
		t.Fatal(err)
	}
	tr := q.Tree()
	if tr.Leaves[0].Prob != 0.25 {
		t.Errorf("annotated prob = %v", tr.Leaves[0].Prob)
	}
	if tr.Leaves[1].Prob != 0.5 {
		t.Errorf("default prior prob = %v", tr.Leaves[1].Prob)
	}
}

func TestExecuteDeterministicPredicates(t *testing.T) {
	e := New(testRegistry(t))
	// const-low is always 1, const-high always 100.
	q, err := e.Compile("const-low < 5 AND const-high > 50")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	res, err := q.Execute(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value {
		t.Error("query should be TRUE")
	}
	if res.Evaluated != 2 {
		t.Errorf("evaluated %d leaves", res.Evaluated)
	}
	per := stream.BLE.PerItem()
	if math.Abs(res.Cost-2*per) > 1e-12 {
		t.Errorf("cost = %v, want %v", res.Cost, 2*per)
	}
}

func TestExecuteShortCircuitsFalse(t *testing.T) {
	e := New(testRegistry(t))
	q, err := e.Compile("const-low > 5 AND const-high > 50")
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := q.NewCache()
	cache.Advance(1)
	res, err := q.Execute(cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value {
		t.Error("query should be FALSE")
	}
	// With equal leaf costs and probabilities the planner may evaluate
	// either leaf first, but after the FALSE leaf the other is skipped
	// only if the FALSE one came first; in an AND-tree of two leaves at
	// least one leaf is always evaluated.
	if res.Evaluated < 1 || res.Evaluated > 2 {
		t.Errorf("evaluated %d", res.Evaluated)
	}
}

func TestCacheReuseAcrossLeaves(t *testing.T) {
	e := New(testRegistry(t))
	// Both leaves read const-low; the second one shares the single item.
	q, err := e.Compile("const-low < 5 AND const-low < 2 OR const-low < 1")
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := q.NewCache()
	cache.Advance(1)
	res, err := q.Execute(cache)
	if err != nil {
		t.Fatal(err)
	}
	per := stream.BLE.PerItem()
	if math.Abs(res.Cost-per) > 1e-12 {
		t.Errorf("cost = %v, want one item (%v): items must be shared", res.Cost, per)
	}
}

func TestTraceFeedbackAdaptsProbabilities(t *testing.T) {
	e := New(testRegistry(t))
	q, err := e.Compile("const-low < 5 AND const-high < 50")
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := q.NewCache()
	results, err := q.Run(cache, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("%d results", len(results))
	}
	// const-low < 5 is always TRUE, const-high < 50 always FALSE. Once
	// the planner adapts it evaluates the failing leaf first and
	// short-circuits the TRUE leaf, so the TRUE leaf keeps only its early
	// observations (estimate above the 0.5 prior but possibly far from 1)
	// while the failing leaf's estimate is driven toward 0.
	pLow, nLow := e.Traces().Estimate("const-low < 5")
	pHigh, nHigh := e.Traces().Estimate("const-high < 50")
	if nLow == 0 || pLow <= 0.5 {
		t.Errorf("pLow = %v after %d evals", pLow, nLow)
	}
	if nHigh == 0 || pHigh > 0.1 {
		t.Errorf("pHigh = %v after %d evals", pHigh, nHigh)
	}
	// The adaptive planner must eventually evaluate the almost-surely-
	// FALSE leaf first (cheapest shortcut: both leaves cost one BLE item).
	last := results[len(results)-1]
	if name := last.Tree.LeafName(last.Schedule[0]); name != "const-high < 50" {
		t.Errorf("last schedule starts with %q, want the failing leaf", name)
	}
}

func TestExpectedVsActualCostConverges(t *testing.T) {
	// For deterministic predicates with stable truth values, once traces
	// converge the expected cost of the plan approaches the actual cost.
	e := New(testRegistry(t))
	q, err := e.Compile("const-low < 5 AND const-high > 50")
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := q.NewCache()
	results, err := q.Run(cache, 100)
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if last.ExpectedCost <= 0 {
		t.Fatal("expected cost should be positive")
	}
	if math.Abs(last.ExpectedCost-last.Cost)/last.Cost > 0.2 {
		t.Errorf("expected %v vs actual %v after convergence", last.ExpectedCost, last.Cost)
	}
}

func TestRunAdvancesTime(t *testing.T) {
	e := New(testRegistry(t))
	q, err := e.Compile("heart-rate > 100")
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := q.NewCache()
	if _, err := q.Run(cache, 10); err != nil {
		t.Fatal(err)
	}
	if cache.Now() != 10 {
		t.Errorf("Now = %d", cache.Now())
	}
	// Each step needs exactly one new heart-rate item (window 1).
	if cache.Pulls(0) != 10 {
		t.Errorf("pulls = %d, want 10", cache.Pulls(0))
	}
}

func TestWithPlanner(t *testing.T) {
	called := false
	e := New(testRegistry(t), WithPlanner(func(tr *query.Tree) sched.Schedule {
		called = true
		return DefaultPlanner(tr)
	}))
	q, err := e.Compile("const-low < 5")
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := q.NewCache()
	cache.Advance(1)
	if _, err := q.Execute(cache); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom planner not used")
	}
}

func TestDNFExpansionOfNestedQuery(t *testing.T) {
	e := New(testRegistry(t))
	q, err := e.Compile("const-low < 5 AND (spo2 < 90 OR heart-rate > 100)")
	if err != nil {
		t.Fatal(err)
	}
	tr := q.Tree()
	if tr.NumAnds() != 2 {
		t.Errorf("expanded to %d ANDs, want 2", tr.NumAnds())
	}
	if tr.NumLeaves() != 4 {
		t.Errorf("%d leaves, want 4 (const-low duplicated)", tr.NumLeaves())
	}
	if !strings.Contains(tr.String(), "const-low < 5") {
		t.Errorf("tree = %v", tr)
	}
	cache, _ := q.NewCache()
	cache.Advance(1)
	if _, err := q.Execute(cache); err != nil {
		t.Fatal(err)
	}
}

package engine

import (
	"math"
	"testing"

	"paotr/internal/adapt"
	"paotr/internal/stream"
)

// adaptRegistry builds two constant streams with distinct costs.
func adaptRegistry(t *testing.T) *stream.Registry {
	t.Helper()
	reg := stream.NewRegistry()
	if err := reg.Add(stream.Constant("c1", 1), stream.CostModel{BaseJoules: 2}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(stream.Constant("c2", 1), stream.CostModel{BaseJoules: 5}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestWithEstimatorDrivesPlanning: with a windowed estimator installed,
// plan-time leaf probabilities come from it (not the cumulative store),
// while the store keeps recording for persistence.
func TestWithEstimatorDrivesPlanning(t *testing.T) {
	ad := adapt.NewWindowed(adapt.Config{Window: 8})
	e := New(adaptRegistry(t), WithEstimator(ad))
	q, err := e.Compile("c1 > 0")
	if err != nil {
		t.Fatal(err)
	}
	key := q.Preds[0].P.String()
	// 20 successes then 8 failures: the window only remembers failures,
	// the cumulative store remembers everything.
	for i := 0; i < 20; i++ {
		e.record(key, true)
	}
	for i := 0; i < 8; i++ {
		e.record(key, false)
	}
	want, _ := ad.Estimate(key)
	if got := q.Tree().Leaves[0].Prob; math.Abs(got-want) > 1e-12 {
		t.Errorf("plan-time prob = %v, want windowed %v", got, want)
	}
	if want > 0.2 {
		t.Errorf("windowed estimate %v should reflect only the failing window", want)
	}
	if cum, n := e.Traces().Estimate(key); n != 28 || cum < 0.6 {
		t.Errorf("cumulative store = (%v, %d), want all 28 outcomes", cum, n)
	}
}

// TestDetectorTripEvictsExactlyAffectedPlans: a predicate-level detector
// trip must drop the cached plans of queries referencing that predicate
// and leave every other plan cache untouched.
func TestDetectorTripEvictsExactlyAffectedPlans(t *testing.T) {
	ad := adapt.NewWindowed(adapt.Config{})
	// replanEps 1 tolerates any probability drift, so only targeted
	// invalidation can force a re-plan.
	e := New(adaptRegistry(t), WithEstimator(ad), WithReplanThreshold(1))
	q1, err := e.Compile("c1 > 0")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Compile("c2 > 0")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q1.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Retain("q2", q2.Windows()); err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	for _, q := range []*Query{q1, q2} {
		if _, err := q.Execute(cache); err != nil {
			t.Fatal(err)
		}
		// The execution warmed the cache, so plan once more at the new
		// warm state; the plan after that must be a cache hit.
		if _, err := q.Plan(cache); err != nil {
			t.Fatal(err)
		}
		if p, err := q.Plan(cache); err != nil || !p.Reused {
			t.Fatalf("warm-up plan not cached: %+v, %v", p, err)
		}
	}
	// Drive q1's predicate through a 1→0 regime shift until the detector
	// trips (recording directly, as an execution stream would).
	key := q1.Preds[0].P.String()
	for i := 0; i < 40; i++ {
		ad.Record(key, true)
	}
	before := e.ReplansForced()
	for i := 0; i < 200; i++ {
		ad.Record(key, false)
		if e.ReplansForced() > before {
			break
		}
	}
	if e.ReplansForced() == before {
		t.Fatal("detector never tripped on a 1→0 shift")
	}
	p1, err := q1.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Reused {
		t.Error("q1 reused its plan after a detector trip on its predicate")
	}
	p2, err := q2.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Reused {
		t.Error("q2's plan was evicted by a trip on an unrelated predicate")
	}
	// Forgetting a query detaches it from future invalidation.
	e.Forget(q1)
	if n := e.InvalidatePredicate(key); n != 0 {
		t.Errorf("forgotten query still invalidated (%d)", n)
	}
}

// TestLearnedCostsRepriceTrees: once the cost source has observations,
// plan-time stream costs come from it instead of the static registry
// models.
func TestLearnedCostsRepriceTrees(t *testing.T) {
	ad := adapt.NewWindowed(adapt.Config{})
	e := New(adaptRegistry(t), WithEstimator(ad), WithCostSource(ad))
	q, err := e.Compile("c1 > 0 AND c2 > 0")
	if err != nil {
		t.Fatal(err)
	}
	tr := q.Tree()
	if tr.Streams[0].Cost != 2 || tr.Streams[1].Cost != 5 {
		t.Fatalf("static costs = %v, %v; want 2 and 5", tr.Streams[0].Cost, tr.Streams[1].Cost)
	}
	ad.ObserveCost(0, 9, 1)
	tr = q.Tree()
	if tr.Streams[0].Cost != 9 {
		t.Errorf("stream 0 cost = %v after observation, want learned 9", tr.Streams[0].Cost)
	}
	if tr.Streams[1].Cost != 5 {
		t.Errorf("stream 1 cost = %v, want static 5 (no observations)", tr.Streams[1].Cost)
	}
}

// TestCIGateKeepsLowEvidenceQueriesLinear: an adaptive-executor query
// whose leaf probabilities rest on no evidence (CI width 1) must fall
// back to the linear schedule even when the modelled gap clears the
// configured threshold, and must be allowed the tree once evidence
// accumulates.
func TestCIGateKeepsLowEvidenceQueriesLinear(t *testing.T) {
	reg := stream.NewRegistry()
	for i, n := range []string{"u1", "u2", "u3"} {
		if err := reg.Add(stream.Uniform(n, uint64(7+i)), stream.CostModel{BaseJoules: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ad := adapt.NewWindowed(adapt.Config{Window: 64})
	e := New(reg, WithEstimator(ad), WithReplanThreshold(-1))
	// The shared-stream counter-example shape where a decision tree beats
	// every fixed schedule; probabilities come from traces, not
	// annotations, so the CI gate applies.
	q, err := e.Compile("(MAX(u1,2) < 0.9 AND MAX(u2,2) < 0.7) OR (MAX(u1,3) < 0.8 AND MAX(u3,2) < 0.6)")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	ap, err := q.PlanAdaptive(cache, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ap.CIWidth < 0.99 {
		t.Fatalf("CI width with no evidence = %v, want ~1", ap.CIWidth)
	}
	if ap.Root != nil {
		t.Error("decision tree chosen with zero evidence behind the estimates")
	}
	// Accumulate evidence, then re-plan: the gate narrows.
	for i := 0; i < 200; i++ {
		cache.Advance(1)
		if _, err := q.Execute(cache); err != nil {
			t.Fatal(err)
		}
	}
	cache.Advance(1)
	ap, err = q.PlanAdaptive(cache, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ap.CIWidth > 0.5 {
		t.Errorf("CI width after 200 executions = %v, want tightened", ap.CIWidth)
	}
	t.Logf("post-evidence: ciWidth=%.3f gap=%.3f root=%v", ap.CIWidth, ap.Gap(), ap.Root != nil)
}

package engine

import (
	"math"
	"testing"

	"paotr/internal/stream"
)

func TestWorkloadSharesCacheAcrossQueries(t *testing.T) {
	e := New(testRegistry(t))
	// Both queries read const-low's single item; only one pull per step.
	w, err := NewWorkload(e, "const-low < 5", "const-low < 2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 || len(res[0].Results) != 2 {
		t.Fatalf("bad result shape: %d steps, %d queries", len(res), len(res[0].Results))
	}
	per := stream.BLE.PerItem()
	if got, want := w.Spent(), 10*per; math.Abs(got-want) > 1e-9 {
		t.Errorf("workload spent %v, want %v (one pull per step for both queries)", got, want)
	}
	// The second query each step must have paid nothing.
	for _, sr := range res {
		if sr.Results[1].Cost != 0 {
			t.Errorf("step %d: second query paid %v", sr.Step, sr.Results[1].Cost)
		}
	}
}

func TestWorkloadHorizonsAreMaxAcrossQueries(t *testing.T) {
	e := New(testRegistry(t))
	// Query 1 needs 2 items of heart-rate, query 2 needs 5: the shared
	// cache must retain 5 so query 2 only pays one new item per step after
	// warm-up.
	w, err := NewWorkload(e, "AVG(heart-rate,2) > 100", "AVG(heart-rate,5) > 100")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(20); err != nil {
		t.Fatal(err)
	}
	// Warm-up pulls 5, then 19 steps pull exactly 1 new item each.
	if got := w.Cache().Pulls(0); got != 5+19 {
		t.Errorf("heart-rate pulls = %d, want 24", got)
	}
}

func TestWorkloadErrors(t *testing.T) {
	e := New(testRegistry(t))
	if _, err := NewWorkload(e); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := NewWorkload(e, "bogus <"); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := NewWorkload(e, "nosuchstream < 1"); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestWorkloadMixedQueries(t *testing.T) {
	e := New(testRegistry(t))
	w, err := NewWorkload(e,
		"const-low < 5 AND const-high > 50",
		"spo2 < 92 OR (heart-rate > 120 AND accelerometer < 12)",
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res {
		if !sr.Results[0].Value {
			t.Fatalf("step %d: constant query should be TRUE", sr.Step)
		}
	}
	if len(w.Queries()) != 2 {
		t.Error("Queries() shape")
	}
	if w.Spent() <= 0 {
		t.Error("workload should have paid something")
	}
}

package engine

import (
	"fmt"

	"paotr/internal/acquisition"
)

// Workload runs several continuous queries against one shared device
// cache — the realistic smartphone setting of the paper's introduction,
// where a social-networking query and a health-monitoring query both read
// the accelerometer: items pulled for one query are free for the others
// within the same time step, and across steps while they remain relevant.
type Workload struct {
	engine  *Engine
	queries []*Query
	cache   *acquisition.Cache
}

// NewWorkload compiles the query texts against the engine and sizes one
// shared cache: each stream's retention horizon is the maximum window any
// query uses on it.
func NewWorkload(e *Engine, texts ...string) (*Workload, error) {
	if len(texts) == 0 {
		return nil, fmt.Errorf("engine: empty workload")
	}
	w := &Workload{engine: e}
	horizons := make([]int, e.reg.Len())
	for _, text := range texts {
		q, err := e.Compile(text)
		if err != nil {
			return nil, fmt.Errorf("engine: compiling %q: %w", text, err)
		}
		w.queries = append(w.queries, q)
		for k, d := range q.skeleton.StreamMaxItems() {
			if d > horizons[k] {
				horizons[k] = d
			}
		}
	}
	cache, err := acquisition.NewCache(e.reg, horizons)
	if err != nil {
		return nil, err
	}
	w.cache = cache
	return w, nil
}

// Queries returns the compiled queries, in workload order.
func (w *Workload) Queries() []*Query { return w.queries }

// Cache exposes the shared cache (for accounting).
func (w *Workload) Cache() *acquisition.Cache { return w.cache }

// StepResult holds the per-query results of one time step.
type StepResult struct {
	Step    int64
	Results []Result
}

// Step advances time by one item and executes every query once, in order,
// against the shared cache. Later queries reuse whatever earlier queries
// pulled this step.
func (w *Workload) Step() (StepResult, error) {
	w.cache.Advance(1)
	out := StepResult{Step: w.cache.Now()}
	for _, q := range w.queries {
		r, err := q.Execute(w.cache)
		if err != nil {
			return out, fmt.Errorf("engine: query %q: %w", q.Text, err)
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// Run executes steps time steps and returns per-step results.
func (w *Workload) Run(steps int) ([]StepResult, error) {
	out := make([]StepResult, 0, steps)
	for i := 0; i < steps; i++ {
		r, err := w.Step()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Spent returns the total acquisition cost paid by the whole workload.
func (w *Workload) Spent() float64 { return w.cache.Spent() }

package engine

import (
	"testing"

	"paotr/internal/stream"
)

// planReg is a registry of constant streams: stable values, so warm cache
// state reaches a steady state and only probability drift can force a
// re-plan.
func planReg(t *testing.T) *stream.Registry {
	t.Helper()
	reg := stream.NewRegistry()
	for _, s := range []stream.Source{
		stream.Constant("a", 10),
		stream.Constant("b", 20),
	} {
		if err := reg.Add(s, stream.BLE); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestPlanCacheReusesOnStableState(t *testing.T) {
	e := New(planReg(t)) // default threshold 0: exact-match reuse
	q, err := e.Compile("AVG(a,3) > 5 [p=0.7] AND b > 15 [p=0.6]")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	for i := 0; i < 10; i++ {
		cache.Advance(1)
		r, err := q.Execute(cache)
		if err != nil {
			t.Fatal(err)
		}
		if r.PlanReused {
			reused++
		}
		if i == 0 && r.PlanReused {
			t.Error("first execution cannot reuse a plan")
		}
	}
	// Tick 1 plans cold, tick 2 plans against the new steady-state warm
	// fingerprint, every later tick reuses.
	if reused < 7 {
		t.Errorf("plan reused on %d/10 stable ticks, want >= 7", reused)
	}
}

func TestPlanCacheRePlansOnProbabilityDrift(t *testing.T) {
	e := New(planReg(t), WithReplanThreshold(0.05))
	// No annotations: probabilities come from the trace store, which we
	// drift by hand between plans.
	q, err := e.Compile("a > 5 AND b > 15")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	if _, err := q.Execute(cache); err != nil { // cold plan, fills the cache
		t.Fatal(err)
	}

	// Same cache state, small drift: executing recorded one success per
	// predicate, moving the smoothed estimate from 0.5 to 2/3 — wait, that
	// exceeds 0.05. Re-plan is expected on the second run; from then on
	// each extra success moves the estimate less and less.
	p, err := q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reused {
		t.Error("estimates moved 0.5 -> 2/3 (> threshold) but plan was reused")
	}

	// With the fingerprint refreshed and no new evidence, planning again
	// at the same state must reuse.
	p, err = q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Reused {
		t.Error("no drift since last plan, but planner re-ran")
	}

	// Drift the estimate past the threshold by recording failures; the
	// next plan must not reuse.
	for i := 0; i < 10; i++ {
		e.Traces().Record("a > 5", false)
	}
	p, err = q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reused {
		t.Error("probability drifted past the threshold but plan was reused")
	}

	// A negative threshold disables reuse entirely.
	e2 := New(planReg(t), WithReplanThreshold(-1))
	q2, err := e2.Compile("a > 5 [p=0.7] AND b > 15 [p=0.6]")
	if err != nil {
		t.Fatal(err)
	}
	cache2, err := q2.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache2.Advance(1)
	for i := 0; i < 3; i++ {
		r, err := q2.Execute(cache2)
		if err != nil {
			t.Fatal(err)
		}
		if r.PlanReused {
			t.Fatal("negative threshold must disable plan reuse")
		}
	}
}

func TestPlanCacheRePlansOnWarmChange(t *testing.T) {
	e := New(planReg(t))
	q, err := e.Compile("AVG(a,4) > 5 [p=0.9] AND AVG(b,2) > 15 [p=0.9]")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	p1, err := q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Reused {
		t.Fatal("first plan cannot be a reuse")
	}
	// Pulling items changes the warm fingerprint: the next plan at the
	// same probabilities must re-plan, not reuse.
	cache.Pull(0, 4)
	p2, err := q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Reused {
		t.Error("warm state changed but plan was reused")
	}
	// Unchanged state now: reuse, and InvalidatePlan forces a fresh run.
	p3, err := q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Reused {
		t.Error("unchanged state should reuse")
	}
	if p3.ExpectedCost != p2.ExpectedCost {
		t.Errorf("exact-match reuse changed expected cost: %v != %v", p3.ExpectedCost, p2.ExpectedCost)
	}
	q.InvalidatePlan()
	p4, err := q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	if p4.Reused {
		t.Error("InvalidatePlan did not drop the cached plan")
	}
}

// Package engine is the end-to-end query processor the paper's motivation
// describes: it compiles textual queries into shared DNF trees, estimates
// leaf probabilities from historical traces, plans a cost-minimizing leaf
// evaluation order with the scheduling algorithms of this library, and
// executes the plan in the pull model against live (simulated) sensor
// streams, paying for data acquisition and reusing cached items across
// leaves.
//
// Every execution feeds outcomes back into the trace store and re-plans,
// which is the adaptive behaviour of Lim, Misra and Mo [4].
package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"paotr/internal/acquisition"
	"paotr/internal/adapt"
	"paotr/internal/andtree"
	"paotr/internal/dnf"
	"paotr/internal/parser"
	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/stream"
	"paotr/internal/trace"
)

// Planner builds a schedule for a DNF tree with a cold cache.
type Planner func(*query.Tree) sched.Schedule

// WarmPlanner builds a schedule given the device cache state, pricing
// already-held items as free.
type WarmPlanner func(*query.Tree, sched.Warm) sched.Schedule

// DefaultPlanner uses the paper's best heuristic (AND-ordered, increasing
// C/p, dynamic) for DNF trees and the optimal Algorithm 1 for AND-trees.
func DefaultPlanner(t *query.Tree) sched.Schedule {
	if t.IsAndTree() {
		return andtree.Greedy(t)
	}
	return dnf.AndOrderedIncCOverPDynamic(t, nil)
}

// DefaultWarmPlanner is the warm-start counterpart of DefaultPlanner: the
// warm Algorithm 1 for AND-trees and the warm dynamic C/p heuristic for
// DNF trees. It is what the engine uses in continuous operation, where
// most windows are partially cached from the previous step.
func DefaultWarmPlanner(t *query.Tree, w sched.Warm) sched.Schedule {
	if t.IsAndTree() {
		return andtree.GreedyWarm(t, w)
	}
	return dnf.AndOrderedIncCOverPDynamicWarm(t, w)
}

// Engine processes queries over a stream registry. An Engine and its
// compiled queries are safe for concurrent use: many queries may plan and
// execute simultaneously against a shared acquisition cache.
type Engine struct {
	reg      *stream.Registry
	traces   *trace.Store
	plan     Planner     // set by WithPlanner; overrides warm planning
	planWarm WarmPlanner // default planning path
	// est is the probability estimator planners consult (default: the
	// cumulative trace store itself; see WithEstimator). Realized
	// outcomes are recorded into both the store and est.
	est trace.Estimator
	// costs, when set, overrides static per-item stream costs at plan
	// time with learned ones (see WithCostSource).
	costs CostSource
	// replanEps is the plan-cache drift threshold: a cached schedule is
	// reused while every leaf probability has moved by at most replanEps
	// since it was planned and the warm cache state is unchanged.
	// 0 (the default) reuses only on an exact fingerprint match; negative
	// disables plan reuse entirely.
	replanEps float64

	// qmu guards queries, the compiled queries subscribed to targeted
	// plan invalidation (detector events evict exactly the plans whose
	// fingerprints reference the shifted predicate or stream). Queries
	// are only retained when the estimator actually emits detector
	// events (watchPlans), so plain engines keep Compile free of
	// engine-side retention; long-lived multi-query owners release
	// retained queries with Forget.
	watchPlans bool
	qmu        sync.Mutex
	queries    map[*Query]struct{}
	// replansForced counts plan-cache evictions driven by detector
	// events; invalHook, when set, additionally reports each forced
	// invalidation (see SetInvalidationHook).
	replansForced atomic.Int64
	invalHook     func(kind, pred string, stream, dropped int)
}

// CostSource supplies learned per-item acquisition costs by registry
// stream index; ok is false while no observation backs the stream (the
// static registry cost then applies). adapt.Windowed implements it.
type CostSource interface {
	CostPerItem(k int) (float64, bool)
}

// Option configures an Engine.
type Option func(*Engine)

// WithPlanner overrides the schedule planner with a cache-oblivious one;
// the engine then also reports cold-cache expected costs.
func WithPlanner(p Planner) Option { return func(e *Engine) { e.plan = p } }

// WithWarmPlanner overrides the cache-aware schedule planner.
func WithWarmPlanner(p WarmPlanner) Option { return func(e *Engine) { e.planWarm = p } }

// WithTraceStore supplies a pre-populated trace store.
func WithTraceStore(s *trace.Store) Option { return func(e *Engine) { e.traces = s } }

// WithEstimator installs a probability estimator consulted at plan time
// in place of the cumulative trace store (which keeps recording outcomes
// for persistence and inspection either way). When the estimator also
// implements adapt's Subscribe, the engine subscribes to its detector
// events and evicts exactly the affected cached plans on a trip.
func WithEstimator(est trace.Estimator) Option { return func(e *Engine) { e.est = est } }

// WithCostSource makes plan-time stream costs come from learned per-item
// observations instead of the static registry cost models (streams with
// no observations keep the static cost).
func WithCostSource(cs CostSource) Option { return func(e *Engine) { e.costs = cs } }

// WithReplanThreshold sets the plan-cache drift threshold. A query's last
// schedule is reused — skipping the planner — when the warm cache state is
// identical to the one it was planned against and no leaf probability
// estimate has drifted by more than eps since. eps = 0 (the default)
// reuses only when the fingerprint matches exactly; a negative eps
// disables reuse, re-planning on every execution (the seed behaviour).
func WithReplanThreshold(eps float64) Option { return func(e *Engine) { e.replanEps = eps } }

// New creates an engine over the registry.
func New(reg *stream.Registry, opts ...Option) *Engine {
	e := &Engine{reg: reg, traces: trace.NewStore(), planWarm: DefaultWarmPlanner, queries: map[*Query]struct{}{}}
	for _, o := range opts {
		o(e)
	}
	if e.est == nil {
		e.est = e.traces
	}
	if sub, ok := e.est.(interface{ Subscribe(func(adapt.Event)) }); ok {
		e.watchPlans = true
		sub.Subscribe(func(ev adapt.Event) {
			switch ev.Kind {
			case adapt.KindPredicate:
				e.InvalidatePredicate(ev.Pred)
			case adapt.KindStreamCost:
				e.InvalidateStream(ev.Stream)
			}
		})
	}
	return e
}

// Traces exposes the engine's trace store.
func (e *Engine) Traces() *trace.Store { return e.traces }

// Estimator exposes the probability estimator planners consult.
func (e *Engine) Estimator() trace.Estimator { return e.est }

// record feeds one realized predicate outcome into the cumulative store
// and, when a separate estimator is installed, into it as well.
func (e *Engine) record(pred string, truth bool) {
	e.traces.Record(pred, truth)
	if e.est != nil && e.est != trace.Estimator(e.traces) {
		e.est.Record(pred, truth)
	}
}

// SetInvalidationHook installs an observer of forced plan invalidations:
// after a detector trip evicts cached plans, the hook receives the trip
// kind (adapt.KindPredicate or adapt.KindStreamCost), the tripped
// predicate key or stream index, and how many plans were dropped. The
// hook is called with the engine's query lock held and must not call
// back into the engine; a multi-query service journals the events (see
// internal/obs).
func (e *Engine) SetInvalidationHook(fn func(kind, pred string, stream, dropped int)) {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	e.invalHook = fn
}

// InvalidatePredicate drops the cached plans of every compiled query
// referencing the predicate and returns how many plans were actually
// evicted — the targeted reaction to a predicate-level detector trip,
// instead of waiting for passive per-plan drift checks to notice.
func (e *Engine) InvalidatePredicate(pred string) int {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	n := 0
	for q := range e.queries {
		for _, key := range q.predKeys {
			if key == pred {
				if q.InvalidatePlan() {
					n++
				}
				break
			}
		}
	}
	e.replansForced.Add(int64(n))
	if n > 0 && e.invalHook != nil {
		e.invalHook(adapt.KindPredicate, pred, -1, n)
	}
	return n
}

// InvalidateStream drops the cached plans of every compiled query with a
// leaf on registry stream k and returns how many plans were actually
// evicted — the reaction to a stream-cost detector trip (probability
// fingerprints would not notice a pure cost shift).
func (e *Engine) InvalidateStream(k int) int {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	n := 0
	for q := range e.queries {
		if d := q.skeleton.StreamMaxItems(); k >= 0 && k < len(d) && d[k] > 0 {
			if q.InvalidatePlan() {
				n++
			}
		}
	}
	e.replansForced.Add(int64(n))
	if n > 0 && e.invalHook != nil {
		e.invalHook(adapt.KindStreamCost, "", k, n)
	}
	return n
}

// ReplansForced returns how many plan-cache evictions detector events
// have driven.
func (e *Engine) ReplansForced() int64 { return e.replansForced.Load() }

// Forget detaches a compiled query from targeted invalidation (a
// multi-query service calls it on unregister, so the engine does not
// accumulate dead queries).
func (e *Engine) Forget(q *Query) {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	delete(e.queries, q)
}

// ReplanThreshold returns the plan-cache drift threshold (see
// WithReplanThreshold), so schedulers layering their own plan caches on
// top — e.g. a fleet-level joint planner — can reuse the same policy.
func (e *Engine) ReplanThreshold() float64 { return e.replanEps }

// Query is a compiled query: the parsed predicates bound to registry
// streams, ready to be planned and executed. A Query may be executed
// concurrently with other queries of the same engine; the plan cache is
// per query and lock-protected.
type Query struct {
	// Text is the original query string.
	Text string
	// Expr is the parsed expression.
	Expr parser.Expr
	// Preds holds, per tree leaf, the bound predicate.
	Preds []parser.Pred
	// predKeys caches Preds[j].P.String(), the trace-store key, which is
	// needed on every leaf evaluation (rendering it per evaluation
	// dominated execution profiles).
	predKeys []string
	// tree is rebuilt before each execution (probabilities may drift);
	// structure (streams, windows, AND grouping) is fixed at compile time.
	skeleton *query.Tree
	// shape is the canonical shape of the skeleton — identical for every
	// query that is equal up to AND/OR commutativity — and shapeHash its
	// compact 64-bit id (see query.CanonicalShape). The shape splits query
	// *identity* (who registered it, where results go) from query
	// *structure* (what is planned and evaluated): a fleet runtime interns
	// queries into shape equivalence classes by this key.
	shape     string
	shapeHash uint64
	engine    *Engine

	mu           sync.Mutex
	last         *Plan         // plan cache: most recent plan, with its fingerprint
	lastAdaptive *AdaptivePlan // adaptive-plan cache (see PlanAdaptive)
}

// ErrUnknownStream is returned when a query references an unregistered
// stream.
var ErrUnknownStream = errors.New("engine: unknown stream")

// Compile parses and binds a query.
func (e *Engine) Compile(text string) (*Query, error) {
	expr, err := parser.Parse(text)
	if err != nil {
		return nil, err
	}
	node, err := exprToNode(expr, e.reg)
	if err != nil {
		return nil, err
	}
	streams := make([]query.Stream, e.reg.Len())
	for k := 0; k < e.reg.Len(); k++ {
		st := e.reg.At(k)
		streams[k] = query.Stream{Name: st.Source.Name(), Cost: st.Cost.PerItem()}
	}
	tree, err := node.ToDNF(streams)
	if err != nil {
		return nil, err
	}
	q := &Query{Text: text, Expr: expr, skeleton: tree, engine: e}
	// Recover the per-leaf predicates from the labels stamped by
	// exprToNode (ToDNF may duplicate predicates across AND nodes).
	preds := map[string]parser.Pred{}
	for _, p := range parser.Predicates(expr) {
		preds[p.P.String()] = p
	}
	for _, l := range tree.Leaves {
		p, ok := preds[l.Label]
		if !ok {
			return nil, fmt.Errorf("engine: internal: leaf %q lost its predicate", l.Label)
		}
		q.Preds = append(q.Preds, p)
		q.predKeys = append(q.predKeys, p.P.String())
	}
	// Canonicalize the shape against the *annotation* vector, not the
	// skeleton's placeholder probabilities: an annotated leaf is described
	// by its fixed probability, an estimator-driven one (NaN annotation)
	// by a marker — its runtime estimate is keyed by the predicate label,
	// which is already part of the leaf descriptor, so two estimator-driven
	// leaves of equal shape always see equal estimates.
	annot := make([]float64, len(q.Preds))
	for j, p := range q.Preds {
		annot[j] = p.Prob
	}
	q.shape = tree.CanonicalShape(annot)
	q.shapeHash = query.ShapeHash(q.shape)
	if e.watchPlans {
		e.qmu.Lock()
		e.queries[q] = struct{}{}
		e.qmu.Unlock()
	}
	return q, nil
}

// ShapeKey returns the query's canonical shape string: equal for every
// query whose DNF tree is identical up to AND/OR commutativity (same
// streams, windows, probabilities and predicate labels). Queries with
// equal shape keys plan identically and yield identical verdicts at any
// tick, so a fleet runtime may evaluate one representative and share the
// result (see service.WithShapeFactoring).
func (q *Query) ShapeKey() string { return q.shape }

// ShapeHash returns the compact 64-bit id of the shape key (for display
// and cache keying; class membership compares ShapeKey itself).
func (q *Query) ShapeHash() uint64 { return q.shapeHash }

// exprToNode converts a parsed expression to a query.Node, resolving
// stream names against the registry. Probabilities are filled in at plan
// time, not here.
func exprToNode(e parser.Expr, reg *stream.Registry) (*query.Node, error) {
	switch v := e.(type) {
	case parser.Pred:
		k, ok := reg.IndexOf(v.P.Stream)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownStream, v.P.Stream)
		}
		return query.NewLeafNode(query.Leaf{
			Stream: query.StreamID(k),
			Items:  v.P.Items(),
			Prob:   0.5, // placeholder; bound per execution
			Label:  v.P.String(),
		}), nil
	case parser.And:
		children, err := childNodes(v.Terms, reg)
		if err != nil {
			return nil, err
		}
		return query.NewAndNode(children...), nil
	case parser.Or:
		children, err := childNodes(v.Terms, reg)
		if err != nil {
			return nil, err
		}
		return query.NewOrNode(children...), nil
	}
	return nil, fmt.Errorf("engine: unknown expression %T", e)
}

func childNodes(terms []parser.Expr, reg *stream.Registry) ([]*query.Node, error) {
	out := make([]*query.Node, len(terms))
	for i, t := range terms {
		n, err := exprToNode(t, reg)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// Tree returns the query's DNF tree with current probability estimates —
// the annotated probability when the query provided one, otherwise the
// estimator's — and, when a cost source is installed, per-item stream
// costs re-priced from learned acquisition observations.
func (q *Query) Tree() *query.Tree { return q.TreeInto(nil) }

// TreeInto is Tree with the clone amortized: dst — a tree previously
// returned by Tree or TreeInto for this same query — is re-annotated in
// place with the current probability estimates and learned costs and
// returned. A nil dst clones the skeleton fresh. Callers reusing dst
// across executions must be done with the previous tree before the next
// call (the service's tick loop is; its phases are serialized).
func (q *Query) TreeInto(dst *query.Tree) *query.Tree {
	if dst == nil {
		dst = q.skeleton.Clone()
	}
	for j := range dst.Leaves {
		p := q.Preds[j]
		if !math.IsNaN(p.Prob) {
			dst.Leaves[j].Prob = p.Prob
			continue
		}
		est, _ := q.engine.est.Estimate(q.predKeys[j])
		dst.Leaves[j].Prob = est
	}
	if cs := q.engine.costs; cs != nil {
		for k := range dst.Streams {
			if c, ok := cs.CostPerItem(k); ok {
				dst.Streams[k].Cost = c
			}
		}
	}
	return dst
}

// PredKeys returns the trace-store keys of the query's leaf predicates,
// in leaf order. These are the keys the engine records outcomes under —
// what a runtime needs to migrate a query's learned estimator state when
// moving it between engines (see adapt.Windowed.ExportPredicates). The
// result is a copy.
func (q *Query) PredKeys() []string { return append([]string(nil), q.predKeys...) }

// Result reports one query execution.
type Result struct {
	// Value is the query's truth value.
	Value bool
	// Cost is the acquisition cost actually paid during this execution.
	Cost float64
	// ExpectedCost is the planner's expected cost for the schedule under
	// the probability estimates used, accounting for items already cached
	// at planning time (unless a cold Planner override is installed).
	ExpectedCost float64
	// Evaluated counts predicates actually computed.
	Evaluated int
	// Schedule is the leaf order used.
	Schedule sched.Schedule
	// Tree is the probability-annotated tree that was planned.
	Tree *query.Tree
	// PlanReused reports whether the schedule came from the plan cache
	// instead of a fresh planner run (see WithReplanThreshold).
	PlanReused bool
	// Strategy is the execution strategy kind actually used:
	// StrategyLinear (a fixed schedule) or StrategyAdaptive (a decision
	// tree; see AdaptiveExecutor).
	Strategy string
}

// Plan is a ready-to-execute schedule for one query at one cache state:
// the probability-annotated tree, the leaf order, and its expected cost.
// The probability vector and warm snapshot it was planned against are kept
// as the plan-cache fingerprint.
type Plan struct {
	// Tree is the probability-annotated tree the plan was built for.
	Tree *query.Tree
	// Schedule is the planned leaf evaluation order.
	Schedule sched.Schedule
	// ExpectedCost is the expected acquisition cost of the schedule under
	// Tree's probabilities and the warm state at planning time.
	ExpectedCost float64
	// Reused reports whether the schedule was taken from the plan cache.
	Reused bool

	probs []float64  // fingerprint: per-leaf probabilities planned against
	costs []float64  // fingerprint: per-stream per-item costs planned against
	warm  sched.Warm // fingerprint: warm cache snapshot planned against
}

// Plan builds (or reuses) a schedule for the query against the cache's
// current state. When the fingerprint — the per-leaf probability
// estimates, the per-stream per-item costs (which drift when a cost
// source learns them; see WithCostSource) and the warm-state snapshot —
// has not drifted beyond the engine's replan threshold since the last
// plan, the cached schedule is reused and only its expected cost is
// recomputed; otherwise the planner runs anew.
func (q *Query) Plan(cache *acquisition.Cache) (*Plan, error) {
	t := q.Tree()
	var warm sched.Warm
	cold := q.engine.plan != nil
	if !cold {
		warm = sched.Warm(cache.Snapshot(t.StreamMaxItems()))
	}
	probs := make([]float64, len(t.Leaves))
	for j := range t.Leaves {
		probs[j] = t.Leaves[j].Prob
	}
	costs := streamCosts(t)

	q.mu.Lock()
	prev := q.last
	q.mu.Unlock()
	if prev != nil && q.engine.replanEps >= 0 && warmEqual(prev.warm, warm) {
		drift := maxDrift(prev.probs, probs)
		if cd := maxRelCostDrift(prev.costs, costs); cd > drift {
			drift = cd
		}
		if drift <= q.engine.replanEps {
			// Keep the fingerprint of the plan that produced the schedule:
			// drift is always measured against the probabilities the planner
			// actually saw, so slow cumulative drift still forces a re-plan
			// once it exceeds the threshold.
			p := &Plan{Tree: t, Schedule: prev.Schedule, Reused: true, probs: prev.probs, costs: prev.costs, warm: prev.warm}
			switch {
			case drift == 0:
				// Exact fingerprint match: same probabilities and same warm
				// state give the same expected cost.
				p.ExpectedCost = prev.ExpectedCost
			case cold:
				p.ExpectedCost = sched.Cost(t, p.Schedule)
			default:
				p.ExpectedCost = sched.CostWarm(t, p.Schedule, warm)
			}
			q.storePlan(p)
			return p, nil
		}
	}

	var s sched.Schedule
	var expected float64
	if cold {
		s = q.engine.plan(t)
		expected = sched.Cost(t, s)
	} else {
		s = q.engine.planWarm(t, warm)
		expected = sched.CostWarm(t, s, warm)
	}
	if err := s.Validate(t); err != nil {
		return nil, fmt.Errorf("engine: planner returned invalid schedule: %w", err)
	}
	p := &Plan{Tree: t, Schedule: s, ExpectedCost: expected, probs: probs, costs: costs, warm: warm}
	q.storePlan(p)
	return p, nil
}

// streamCosts extracts the tree's per-stream per-item costs (the cost
// part of a plan fingerprint).
func streamCosts(t *query.Tree) []float64 {
	out := make([]float64, len(t.Streams))
	for k := range t.Streams {
		out[k] = t.Streams[k].Cost
	}
	return out
}

func (q *Query) storePlan(p *Plan) {
	q.mu.Lock()
	q.last = p
	q.mu.Unlock()
}

// InvalidatePlan drops the cached plans (linear and adaptive), forcing
// the next Plan or PlanAdaptive call to run the planner. It reports
// whether anything was actually dropped.
func (q *Query) InvalidatePlan() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	had := q.last != nil || q.lastAdaptive != nil
	q.last = nil
	q.lastAdaptive = nil
	return had
}

// warmEqual reports whether two warm snapshots describe the same cache
// state (row lengths are fixed per query, so elementwise compare).
func warmEqual(a, b sched.Warm) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			return false
		}
		for t := range a[k] {
			if a[k][t] != b[k][t] {
				return false
			}
		}
	}
	return true
}

// maxRelCostDrift returns the largest relative per-stream cost change
// |b/a - 1|, or +Inf when the vectors are incomparable (a cost falling
// to or rising from zero is incomparable too).
func maxRelCostDrift(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	d := 0.0
	for k := range a {
		switch {
		case a[k] == b[k]:
		case a[k] <= 0:
			return math.Inf(1)
		default:
			if dk := math.Abs(b[k]-a[k]) / a[k]; dk > d {
				d = dk
			}
		}
	}
	return d
}

// maxDrift returns the largest absolute per-leaf probability change, or
// +Inf when the vectors are incomparable.
func maxDrift(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	d := 0.0
	for j := range a {
		if dj := math.Abs(a[j] - b[j]); dj > d {
			d = dj
		}
	}
	return d
}

// evalLeaf acquires leaf j's stream window from the cache, evaluates its
// predicate and records the outcome in the trace store. It returns the
// truth value and the acquisition cost paid (also on error, so callers
// can account for partial acquisitions).
func (q *Query) evalLeaf(t *query.Tree, j int, cache *acquisition.Cache) (bool, float64, error) {
	l := t.Leaves[j]
	vals, cost, err := cache.Acquire(int(l.Stream), l.Items)
	if err != nil {
		return false, cost, err
	}
	truth, err := q.Preds[j].P.Eval(vals)
	if err != nil {
		return false, cost, err
	}
	q.engine.record(q.predKeys[j], truth)
	return truth, cost, nil
}

// orState tracks the resolution of a DNF tree while its leaves are
// evaluated in any order: an AND node with a FALSE leaf is dead, an AND
// node whose leaves were all TRUE resolves the OR root TRUE, and the root
// resolves FALSE once every AND node is dead. Both executors (fixed
// schedules and decision-tree walks) share this bookkeeping, so their
// verdict semantics cannot diverge.
type orState struct {
	andFalse  []bool
	andLeft   []int // TRUE evaluations still missing per AND node
	falseAnds int
}

func newOrState(t *query.Tree) *orState {
	s := &orState{andFalse: make([]bool, t.NumAnds()), andLeft: make([]int, t.NumAnds())}
	for i, and := range t.AndLeaves() {
		s.andLeft[i] = len(and)
	}
	return s
}

// dead reports whether the AND node is already known FALSE (its leaves
// need not be evaluated).
func (s *orState) dead(and int) bool { return s.andFalse[and] }

// record applies one leaf outcome and reports whether the root is now
// resolved, and to which value.
func (s *orState) record(and int, truth bool) (done, value bool) {
	if truth {
		s.andLeft[and]--
		if s.andLeft[and] == 0 && !s.andFalse[and] {
			return true, true // AND fully TRUE: OR resolved TRUE
		}
	} else if !s.andFalse[and] {
		s.andFalse[and] = true
		s.falseAnds++
		if s.falseAnds == len(s.andFalse) {
			return true, false // every AND dead: OR resolved FALSE
		}
	}
	return false, false
}

// value reports the root's value from the state as it stands (used only
// defensively, when an executor runs out of leaves without resolution).
func (s *orState) value() bool {
	if s.falseAnds == len(s.andFalse) {
		return false
	}
	for a, left := range s.andLeft {
		if left == 0 && !s.andFalse[a] {
			return true
		}
	}
	return false
}

// ExecutePlan runs a previously built plan against the cache's current
// time, paying for acquisitions and recording predicate outcomes in the
// trace store. The plan must have been built for the same cache state
// (same Now and contents); Execute composes Plan and ExecutePlan.
func (q *Query) ExecutePlan(p *Plan, cache *acquisition.Cache) (Result, error) {
	t := p.Tree
	res := Result{Schedule: p.Schedule, Tree: t, ExpectedCost: p.ExpectedCost, PlanReused: p.Reused, Strategy: StrategyLinear}

	st := newOrState(t)
	for _, j := range p.Schedule {
		if st.dead(t.Leaves[j].And) {
			continue
		}
		truth, cost, err := q.evalLeaf(t, j, cache)
		res.Cost += cost
		if err != nil {
			return res, err
		}
		res.Evaluated++
		if done, value := st.record(t.Leaves[j].And, truth); done {
			res.Value = value
			return res, nil
		}
	}
	return res, nil
}

// Execute plans (or reuses a cached plan) and runs the query once against
// the cache's current time, recording outcomes in the trace store. The
// caller advances time on the cache between executions (one execution per
// arrival of new data, in the continuous-processing model of [4]).
func (q *Query) Execute(cache *acquisition.Cache) (Result, error) {
	p, err := q.Plan(cache)
	if err != nil {
		return Result{}, err
	}
	return q.ExecutePlan(p, cache)
}

// NewCache builds an acquisition cache sized for the query: each stream's
// retention horizon is the maximum window the query uses on it.
func (q *Query) NewCache() (*acquisition.Cache, error) {
	return acquisition.NewCache(q.engine.reg, q.skeleton.StreamMaxItems())
}

// Windows returns, per registry stream, the maximum window the query uses
// on it — the retention claim a shared cache must honour while the query
// is registered (see acquisition.Cache.Retain).
func (q *Query) Windows() []int { return q.skeleton.StreamMaxItems() }

// Run executes the query over a span of time steps: at every step the
// cache advances one step (one new item per stream) and the query runs
// once. It returns the per-step results.
func (q *Query) Run(cache *acquisition.Cache, steps int) ([]Result, error) {
	out := make([]Result, 0, steps)
	for i := 0; i < steps; i++ {
		cache.Advance(1)
		r, err := q.Execute(cache)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Package engine is the end-to-end query processor the paper's motivation
// describes: it compiles textual queries into shared DNF trees, estimates
// leaf probabilities from historical traces, plans a cost-minimizing leaf
// evaluation order with the scheduling algorithms of this library, and
// executes the plan in the pull model against live (simulated) sensor
// streams, paying for data acquisition and reusing cached items across
// leaves.
//
// Every execution feeds outcomes back into the trace store and re-plans,
// which is the adaptive behaviour of Lim, Misra and Mo [4].
package engine

import (
	"errors"
	"fmt"
	"math"

	"paotr/internal/acquisition"
	"paotr/internal/andtree"
	"paotr/internal/dnf"
	"paotr/internal/parser"
	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/stream"
	"paotr/internal/trace"
)

// Planner builds a schedule for a DNF tree with a cold cache.
type Planner func(*query.Tree) sched.Schedule

// WarmPlanner builds a schedule given the device cache state, pricing
// already-held items as free.
type WarmPlanner func(*query.Tree, sched.Warm) sched.Schedule

// DefaultPlanner uses the paper's best heuristic (AND-ordered, increasing
// C/p, dynamic) for DNF trees and the optimal Algorithm 1 for AND-trees.
func DefaultPlanner(t *query.Tree) sched.Schedule {
	if t.IsAndTree() {
		return andtree.Greedy(t)
	}
	return dnf.AndOrderedIncCOverPDynamic(t, nil)
}

// DefaultWarmPlanner is the warm-start counterpart of DefaultPlanner: the
// warm Algorithm 1 for AND-trees and the warm dynamic C/p heuristic for
// DNF trees. It is what the engine uses in continuous operation, where
// most windows are partially cached from the previous step.
func DefaultWarmPlanner(t *query.Tree, w sched.Warm) sched.Schedule {
	if t.IsAndTree() {
		return andtree.GreedyWarm(t, w)
	}
	return dnf.AndOrderedIncCOverPDynamicWarm(t, w)
}

// Engine processes queries over a stream registry.
type Engine struct {
	reg      *stream.Registry
	traces   *trace.Store
	plan     Planner     // set by WithPlanner; overrides warm planning
	planWarm WarmPlanner // default planning path
}

// Option configures an Engine.
type Option func(*Engine)

// WithPlanner overrides the schedule planner with a cache-oblivious one;
// the engine then also reports cold-cache expected costs.
func WithPlanner(p Planner) Option { return func(e *Engine) { e.plan = p } }

// WithWarmPlanner overrides the cache-aware schedule planner.
func WithWarmPlanner(p WarmPlanner) Option { return func(e *Engine) { e.planWarm = p } }

// WithTraceStore supplies a pre-populated trace store.
func WithTraceStore(s *trace.Store) Option { return func(e *Engine) { e.traces = s } }

// New creates an engine over the registry.
func New(reg *stream.Registry, opts ...Option) *Engine {
	e := &Engine{reg: reg, traces: trace.NewStore(), planWarm: DefaultWarmPlanner}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Traces exposes the engine's trace store.
func (e *Engine) Traces() *trace.Store { return e.traces }

// Query is a compiled query: the parsed predicates bound to registry
// streams, ready to be planned and executed.
type Query struct {
	// Text is the original query string.
	Text string
	// Expr is the parsed expression.
	Expr parser.Expr
	// Preds holds, per tree leaf, the bound predicate.
	Preds []parser.Pred
	// tree is rebuilt before each execution (probabilities may drift);
	// structure (streams, windows, AND grouping) is fixed at compile time.
	skeleton *query.Tree
	engine   *Engine
}

// ErrUnknownStream is returned when a query references an unregistered
// stream.
var ErrUnknownStream = errors.New("engine: unknown stream")

// Compile parses and binds a query.
func (e *Engine) Compile(text string) (*Query, error) {
	expr, err := parser.Parse(text)
	if err != nil {
		return nil, err
	}
	node, err := exprToNode(expr, e.reg)
	if err != nil {
		return nil, err
	}
	streams := make([]query.Stream, e.reg.Len())
	for k := 0; k < e.reg.Len(); k++ {
		st := e.reg.At(k)
		streams[k] = query.Stream{Name: st.Source.Name(), Cost: st.Cost.PerItem()}
	}
	tree, err := node.ToDNF(streams)
	if err != nil {
		return nil, err
	}
	q := &Query{Text: text, Expr: expr, skeleton: tree, engine: e}
	// Recover the per-leaf predicates from the labels stamped by
	// exprToNode (ToDNF may duplicate predicates across AND nodes).
	preds := map[string]parser.Pred{}
	for _, p := range parser.Predicates(expr) {
		preds[p.P.String()] = p
	}
	for _, l := range tree.Leaves {
		p, ok := preds[l.Label]
		if !ok {
			return nil, fmt.Errorf("engine: internal: leaf %q lost its predicate", l.Label)
		}
		q.Preds = append(q.Preds, p)
	}
	return q, nil
}

// exprToNode converts a parsed expression to a query.Node, resolving
// stream names against the registry. Probabilities are filled in at plan
// time, not here.
func exprToNode(e parser.Expr, reg *stream.Registry) (*query.Node, error) {
	switch v := e.(type) {
	case parser.Pred:
		k, ok := reg.IndexOf(v.P.Stream)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownStream, v.P.Stream)
		}
		return query.NewLeafNode(query.Leaf{
			Stream: query.StreamID(k),
			Items:  v.P.Items(),
			Prob:   0.5, // placeholder; bound per execution
			Label:  v.P.String(),
		}), nil
	case parser.And:
		children, err := childNodes(v.Terms, reg)
		if err != nil {
			return nil, err
		}
		return query.NewAndNode(children...), nil
	case parser.Or:
		children, err := childNodes(v.Terms, reg)
		if err != nil {
			return nil, err
		}
		return query.NewOrNode(children...), nil
	}
	return nil, fmt.Errorf("engine: unknown expression %T", e)
}

func childNodes(terms []parser.Expr, reg *stream.Registry) ([]*query.Node, error) {
	out := make([]*query.Node, len(terms))
	for i, t := range terms {
		n, err := exprToNode(t, reg)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// Tree returns the query's DNF tree with current probability estimates:
// the annotated probability when the query provided one, otherwise the
// trace-store estimate.
func (q *Query) Tree() *query.Tree {
	t := q.skeleton.Clone()
	for j := range t.Leaves {
		p := q.Preds[j]
		if !math.IsNaN(p.Prob) {
			t.Leaves[j].Prob = p.Prob
			continue
		}
		est, _ := q.engine.traces.Estimate(p.P.String())
		t.Leaves[j].Prob = est
	}
	return t
}

// Result reports one query execution.
type Result struct {
	// Value is the query's truth value.
	Value bool
	// Cost is the acquisition cost actually paid during this execution.
	Cost float64
	// ExpectedCost is the planner's expected cost for the schedule under
	// the probability estimates used, accounting for items already cached
	// at planning time (unless a cold Planner override is installed).
	ExpectedCost float64
	// Evaluated counts predicates actually computed.
	Evaluated int
	// Schedule is the leaf order used.
	Schedule sched.Schedule
	// Tree is the probability-annotated tree that was planned.
	Tree *query.Tree
}

// Execute plans and runs the query once against the cache's current time,
// recording outcomes in the trace store. The caller advances time on the
// cache between executions (one execution per arrival of new data, in the
// continuous-processing model of [4]).
func (q *Query) Execute(cache *acquisition.Cache) (Result, error) {
	t := q.Tree()
	var s sched.Schedule
	var expected float64
	if q.engine.plan != nil {
		s = q.engine.plan(t)
		expected = sched.Cost(t, s)
	} else {
		warm := sched.Warm(cache.Snapshot(t.StreamMaxItems()))
		s = q.engine.planWarm(t, warm)
		expected = sched.CostWarm(t, s, warm)
	}
	if err := s.Validate(t); err != nil {
		return Result{}, fmt.Errorf("engine: planner returned invalid schedule: %w", err)
	}
	res := Result{Schedule: s, Tree: t, ExpectedCost: expected}

	nAnds := t.NumAnds()
	andFalse := make([]bool, nAnds)
	andLeft := make([]int, nAnds)
	for i, and := range t.AndLeaves() {
		andLeft[i] = len(and)
	}
	falseAnds := 0
	for _, j := range s {
		l := t.Leaves[j]
		if andFalse[l.And] {
			continue
		}
		res.Cost += cache.Pull(int(l.Stream), l.Items)
		vals, err := cache.Values(int(l.Stream), l.Items)
		if err != nil {
			return res, err
		}
		truth, err := q.Preds[j].P.Eval(vals)
		if err != nil {
			return res, err
		}
		q.engine.traces.Record(q.Preds[j].P.String(), truth)
		res.Evaluated++
		andLeft[l.And]--
		if !truth {
			andFalse[l.And] = true
			falseAnds++
			if falseAnds == nAnds {
				return res, nil // OR resolved FALSE
			}
		} else if andLeft[l.And] == 0 {
			res.Value = true
			return res, nil // OR resolved TRUE
		}
	}
	return res, nil
}

// NewCache builds an acquisition cache sized for the query: each stream's
// retention horizon is the maximum window the query uses on it.
func (q *Query) NewCache() (*acquisition.Cache, error) {
	return acquisition.NewCache(q.engine.reg, q.skeleton.StreamMaxItems())
}

// Run executes the query over a span of time steps: at every step the
// cache advances one step (one new item per stream) and the query runs
// once. It returns the per-step results.
func (q *Query) Run(cache *acquisition.Cache, steps int) ([]Result, error) {
	out := make([]Result, 0, steps)
	for i := 0; i < steps; i++ {
		cache.Advance(1)
		r, err := q.Execute(cache)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

package engine

import (
	"fmt"
	"math"
	"testing"

	"paotr/internal/strategy"
	"paotr/internal/stream"
)

// uniformRegistry builds one uniform stream per name with unit BLE-free
// costs (PerItem = cost).
func uniformRegistry(seed uint64, names []string, costs []float64) *stream.Registry {
	reg := stream.NewRegistry()
	for i, n := range names {
		if err := reg.Add(stream.Uniform(n, seed+uint64(i)), stream.CostModel{BaseJoules: costs[i]}); err != nil {
			panic(err)
		}
	}
	return reg
}

// TestAdaptiveMatchesLinearVerdicts: on identical streams, the adaptive
// executor must report exactly the truth values the linear executor
// reports — a decision tree changes the evaluation order, never the
// query's value.
func TestAdaptiveMatchesLinearVerdicts(t *testing.T) {
	text := strategy.UniformQueryText(strategy.CounterExample(), []string{"u0", "u1", "u2"})
	run := func(x Executor) []bool {
		reg := uniformRegistry(11, []string{"u0", "u1", "u2"}, []float64{1, 1, 1})
		eng := New(reg)
		q, err := eng.Compile(text)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := q.NewCache()
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 200; i++ {
			cache.Advance(1)
			prep, err := x.Prepare(q, cache)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Execute(cache)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Value)
		}
		return out
	}
	linear := run(LinearExecutor{})
	adaptive := run(AdaptiveExecutor{GapThreshold: -1})
	for i := range linear {
		if linear[i] != adaptive[i] {
			t.Fatalf("tick %d: linear=%v adaptive=%v", i, linear[i], adaptive[i])
		}
	}
}

// TestAdaptiveFallsBackAboveDPBound: a query with more than
// strategy.MaxLeaves leaves must execute linearly under the adaptive
// executor.
func TestAdaptiveFallsBackAboveDPBound(t *testing.T) {
	names := make([]string, 13)
	costs := make([]float64, 13)
	text := ""
	for i := range names {
		names[i] = fmt.Sprintf("u%d", i)
		costs[i] = 1
		if i > 0 {
			text += " AND "
		}
		text += fmt.Sprintf("u%d < 0.5 [p=0.5]", i)
	}
	reg := uniformRegistry(3, names, costs)
	eng := New(reg)
	q, err := eng.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	ap, err := q.PlanAdaptive(cache, -1)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Root != nil || ap.Strategy() != StrategyLinear {
		t.Fatalf("13-leaf query got strategy %q, want linear fallback", ap.Strategy())
	}
	if !math.IsNaN(ap.NonLinearCost) {
		t.Fatalf("NonLinearCost = %v, want NaN when the DP is skipped", ap.NonLinearCost)
	}
	res, err := q.ExecuteAdaptivePlan(ap, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyLinear {
		t.Fatalf("executed strategy %q, want linear", res.Strategy)
	}
}

// TestAdaptiveGapThresholdFallback: on a read-once tree (no shared
// streams) the optimal non-linear cost equals the optimal linear cost, so
// any non-negative gap threshold must keep the linear schedule.
func TestAdaptiveGapThresholdFallback(t *testing.T) {
	reg := uniformRegistry(5, []string{"a", "b"}, []float64{1, 2})
	eng := New(reg)
	q, err := eng.Compile("a < 0.3 [p=0.3] OR b < 0.6 [p=0.6]")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	ap, err := q.PlanAdaptive(cache, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Strategy() != StrategyLinear {
		t.Fatalf("read-once tree got strategy %q, want linear (no gap)", ap.Strategy())
	}
	if g := ap.Gap(); g > 1e-9 {
		t.Fatalf("read-once gap = %v, want ~0", g)
	}
}

// TestAdaptivePlanReuse: with annotated probabilities and a stable warm
// state, the decision tree must come from the plan cache, and
// InvalidatePlan must force a fresh DP run.
func TestAdaptivePlanReuse(t *testing.T) {
	text := strategy.UniformQueryText(strategy.CounterExample(), []string{"u0", "u1", "u2"})
	reg := uniformRegistry(17, []string{"u0", "u1", "u2"}, []float64{1, 1, 1})
	eng := New(reg)
	q, err := eng.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	first, err := q.PlanAdaptive(cache, -1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Reused {
		t.Fatal("first adaptive plan reported as reused")
	}
	second, err := q.PlanAdaptive(cache, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Reused || second.Root != first.Root {
		t.Fatalf("second plan at same state not reused (reused=%v, same root=%v)",
			second.Reused, second.Root == first.Root)
	}
	q.InvalidatePlan()
	third, err := q.PlanAdaptive(cache, -1)
	if err != nil {
		t.Fatal(err)
	}
	if third.Reused {
		t.Fatal("plan reused after InvalidatePlan")
	}
}

// TestAdaptiveRealizedCostMatchesDP is the executor half of the
// non-linear property: over many cold-cache trials, the adaptive
// executor's mean realized acquisition cost must converge to the DP's
// expected cost. Leaves use distinct streams so realized truth values are
// independent, exactly as the DP assumes; uniform streams make each
// leaf's marginal probability match its annotation exactly.
func TestAdaptiveRealizedCostMatchesDP(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	costs := []float64{1, 2, 3, 1}
	// Windows are 1, so every tick starts cold: each trial is i.i.d.
	text := "(a < 0.3 [p=0.3] AND b < 0.7 [p=0.7]) OR (c < 0.5 [p=0.5] AND d < 0.4 [p=0.4])"
	reg := uniformRegistry(29, names, costs)
	eng := New(reg)
	q, err := eng.Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	total := 0.0
	var expected float64
	x := AdaptiveExecutor{GapThreshold: -1}
	for i := 0; i < trials; i++ {
		cache.Advance(1)
		prep, err := x.Prepare(q, cache)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prep.Execute(cache)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyAdaptive {
			t.Fatalf("trial %d used strategy %q, want adaptive", i, res.Strategy)
		}
		total += res.Cost
		expected = res.ExpectedCost
	}
	mean := total / trials
	if rel := math.Abs(mean-expected) / expected; rel > 0.05 {
		t.Fatalf("realized mean cost %.4f vs DP expectation %.4f (%.1f%% off)",
			mean, expected, 100*rel)
	}
	t.Logf("realized mean %.4f vs DP expectation %.4f over %d trials", mean, expected, trials)
}

// TestPreparedManifest: a linear plan's manifest lists every scheduled
// leaf acquisition in order (the first entry matching FirstAcquisition);
// an adaptive plan that walks a decision tree lists only its
// unconditional root acquisition; and NewPrepared executes an externally
// built schedule verbatim.
func TestPreparedManifest(t *testing.T) {
	reg := uniformRegistry(3, []string{"u0", "u1"}, []float64{2, 5})
	eng := New(reg)
	q, err := eng.Compile("AVG(u0,3) > 0.2 [p=0.4] AND AVG(u1,2) > 0.3 [p=0.6]")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := q.NewCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Advance(1)
	prep, err := LinearExecutor{}.Prepare(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	man := prep.Manifest()
	if len(man) != 2 {
		t.Fatalf("manifest = %+v, want 2 acquisitions", man)
	}
	k, d, ok := prep.FirstAcquisition()
	if !ok || man[0].Stream != k || man[0].Items != d {
		t.Errorf("manifest head %+v != FirstAcquisition (%d, %d, %v)", man[0], k, d, ok)
	}
	total := 0
	for _, a := range man {
		total += a.Items
	}
	if total != 5 {
		t.Errorf("manifest windows sum to %d, want 5 (3 + 2)", total)
	}

	// Adaptive plan with a forced decision tree: only the root is
	// unconditional.
	aprep, err := AdaptiveExecutor{GapThreshold: -1}.Prepare(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	aman := aprep.Manifest()
	if len(aman) != 1 {
		t.Fatalf("adaptive manifest = %+v, want only the root acquisition", aman)
	}
	ak, ad, aok := aprep.FirstAcquisition()
	if !aok || aman[0].Stream != ak || aman[0].Items != ad {
		t.Errorf("adaptive manifest head %+v != FirstAcquisition (%d, %d)", aman[0], ak, ad)
	}

	// NewPrepared runs an externally supplied schedule (here: reversed).
	plan, err := q.Plan(cache)
	if err != nil {
		t.Fatal(err)
	}
	rev := append([]int(nil), plan.Schedule...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	ext := NewPrepared(q, &Plan{Tree: plan.Tree, Schedule: rev, ExpectedCost: 1})
	res, err := ext.Execute(cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedCost != 1 || len(res.Schedule) != len(rev) || res.Schedule[0] != rev[0] {
		t.Errorf("external plan not executed verbatim: %+v", res)
	}
}

package engine

import (
	"math"

	"paotr/internal/acquisition"
	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/strategy"
)

// Strategy kinds reported in Result.Strategy and service metrics.
const (
	// StrategyLinear is a fixed leaf-evaluation order (a schedule).
	StrategyLinear = "linear"
	// StrategyAdaptive is a non-linear (decision-tree) strategy: the next
	// leaf depends on the truth values observed so far (paper, Section V).
	StrategyAdaptive = "adaptive"
)

// DefaultGapThreshold is the relative linear/non-linear expected-cost gap
// below which the adaptive executor keeps the linear schedule: running a
// decision tree only pays off when the model says it is measurably
// cheaper.
const DefaultGapThreshold = 0.02

// CIGateFactor scales the evidence gate of the adaptive executor: when
// the engine's estimator exposes confidence intervals, the modelled gap
// must additionally clear CIGateFactor times the widest interval over
// the query's trace-estimated leaves. A low-evidence query (wide CI)
// therefore stays on the linear schedule until the estimates firm up —
// the modelled non-linear advantage is not trustworthy before that.
const CIGateFactor = 0.5

// Executor is a pluggable execution strategy for compiled queries. Prepare
// plans (or reuses a cached plan for) one execution against the cache's
// current state; the returned Prepared runs it. Splitting the two lets a
// multi-query scheduler plan every due query first, coalesce their opening
// acquisitions, and only then execute (see service.Tick).
type Executor interface {
	// Name is the strategy kind the executor aims for ("linear",
	// "adaptive"); individual executions may still fall back (see
	// Result.Strategy).
	Name() string
	// Prepare builds or reuses a plan for the query at the cache's current
	// state.
	Prepare(q *Query, cache *acquisition.Cache) (Prepared, error)
}

// Acquisition is one leaf's stream window: evaluating the leaf acquires
// the Items most recent items of the stream.
type Acquisition struct {
	// Stream is the registry stream index.
	Stream int
	// Items is the leaf's window size.
	Items int
}

// Prepared is one planned query execution, bound to its query.
type Prepared interface {
	// FirstAcquisition returns the stream index and window of the first
	// leaf the execution will evaluate. That acquisition happens
	// unconditionally (the first leaf is never short-circuited), so a
	// scheduler can pre-pull it without risk of waste. ok is false for
	// empty plans.
	FirstAcquisition() (stream int, items int, ok bool)
	// Manifest returns the plan's leaf acquisitions in evaluation order:
	// the stream windows the execution will request if no leaf
	// short-circuits. Only the first entry is unconditional; later
	// entries are what a fleet-level planner discounts against sibling
	// plans. For an adaptive (decision-tree) plan only the unconditional
	// root acquisition is listed — the rest depend on observed truth
	// values.
	Manifest() []Acquisition
	// Execute runs the plan against the cache it was prepared for.
	Execute(cache *acquisition.Cache) (Result, error)
}

// LinearExecutor executes the planner's fixed schedule — the engine's
// historical behaviour and the zero value of the service's executor
// choice.
type LinearExecutor struct{}

// Name reports "linear".
func (LinearExecutor) Name() string { return StrategyLinear }

// Prepare plans (or reuses) a schedule via Query.Plan.
func (LinearExecutor) Prepare(q *Query, cache *acquisition.Cache) (Prepared, error) {
	p, err := q.Plan(cache)
	if err != nil {
		return nil, err
	}
	return linearPrepared{q: q, p: p}, nil
}

type linearPrepared struct {
	q *Query
	p *Plan
}

func (lp linearPrepared) FirstAcquisition() (int, int, bool) {
	if len(lp.p.Schedule) == 0 {
		return 0, 0, false
	}
	l := lp.p.Tree.Leaves[lp.p.Schedule[0]]
	return int(l.Stream), l.Items, true
}

func (lp linearPrepared) Manifest() []Acquisition {
	out := make([]Acquisition, len(lp.p.Schedule))
	for i, j := range lp.p.Schedule {
		l := lp.p.Tree.Leaves[j]
		out[i] = Acquisition{Stream: int(l.Stream), Items: l.Items}
	}
	return out
}

func (lp linearPrepared) Execute(cache *acquisition.Cache) (Result, error) {
	return lp.q.ExecutePlan(lp.p, cache)
}

// NewPrepared binds an externally built plan — e.g. a fleet-level joint
// schedule — to its query for execution. The plan must have been built
// for the cache state Execute will run against, like Query.Plan output;
// it is not stored in the query's plan cache.
func NewPrepared(q *Query, p *Plan) Prepared { return linearPrepared{q: q, p: p} }

// AdaptiveExecutor executes an optimal non-linear (decision-tree)
// strategy, computed by the strategy package's DP and cached with the same
// fingerprint/drift machinery as linear plans. It falls back to the linear
// schedule when the tree has more than strategy.MaxLeaves leaves (the DP
// bound) or when the modelled linear/non-linear gap is below GapThreshold.
type AdaptiveExecutor struct {
	// GapThreshold is the minimum relative expected-cost gap
	// (linear-nonlinear)/linear required to prefer the decision tree.
	// 0 prefers the tree whenever it is strictly cheaper; negative always
	// uses the tree (when the DP bound allows one). Use
	// DefaultGapThreshold to avoid flip-flopping on noise.
	GapThreshold float64
}

// Name reports "adaptive".
func (AdaptiveExecutor) Name() string { return StrategyAdaptive }

// Prepare plans (or reuses) an adaptive plan via Query.PlanAdaptive.
func (x AdaptiveExecutor) Prepare(q *Query, cache *acquisition.Cache) (Prepared, error) {
	ap, err := q.PlanAdaptive(cache, x.GapThreshold)
	if err != nil {
		return nil, err
	}
	return adaptivePrepared{q: q, ap: ap}, nil
}

type adaptivePrepared struct {
	q  *Query
	ap *AdaptivePlan
}

func (ap adaptivePrepared) FirstAcquisition() (int, int, bool) {
	if root := ap.ap.Root; root != nil {
		if root.Leaf < 0 {
			return 0, 0, false
		}
		l := ap.ap.Tree.Leaves[root.Leaf]
		return int(l.Stream), l.Items, true
	}
	return linearPrepared{q: ap.q, p: ap.ap.Linear}.FirstAcquisition()
}

func (ap adaptivePrepared) Manifest() []Acquisition {
	if root := ap.ap.Root; root != nil {
		if root.Leaf < 0 {
			return nil
		}
		l := ap.ap.Tree.Leaves[root.Leaf]
		return []Acquisition{{Stream: int(l.Stream), Items: l.Items}}
	}
	return linearPrepared{q: ap.q, p: ap.ap.Linear}.Manifest()
}

func (ap adaptivePrepared) Execute(cache *acquisition.Cache) (Result, error) {
	return ap.q.ExecuteAdaptivePlan(ap.ap, cache)
}

// AdaptivePlan is a ready-to-execute strategy for one query at one cache
// state: either a decision tree (Root non-nil) or the linear fallback.
// Like Plan, it carries the probability/warm fingerprint it was planned
// against for drift-based reuse.
type AdaptivePlan struct {
	// Tree is the probability-annotated tree the plan was built for.
	Tree *query.Tree
	// Root is the decision tree to walk; nil when execution falls back to
	// the linear schedule (DP bound exceeded or gap below threshold).
	Root *strategy.DecisionNode
	// Linear is the linear plan, kept both as the fallback and as the
	// baseline the gap is measured against.
	Linear *Plan
	// ExpectedCost is the expected cost of the chosen strategy.
	ExpectedCost float64
	// LinearCost and NonLinearCost are the modelled expected costs of the
	// two strategies at planning time; NonLinearCost is NaN when the DP
	// bound was exceeded. Gap() reports their relative difference.
	LinearCost    float64
	NonLinearCost float64
	// CIWidth is the widest estimator confidence interval over the
	// query's trace-estimated leaves at planning time (0 when every leaf
	// probability is annotated or the estimator has no intervals). It
	// widens the gap the decision tree must clear (see CIGateFactor).
	CIWidth float64
	// Reused reports whether the strategy came from the plan cache.
	Reused bool

	probs []float64  // fingerprint: per-leaf probabilities planned against
	costs []float64  // fingerprint: per-stream per-item costs planned against
	warm  sched.Warm // fingerprint: warm cache snapshot planned against
}

// Strategy returns the kind of strategy the plan will execute.
func (p *AdaptivePlan) Strategy() string {
	if p.Root != nil {
		return StrategyAdaptive
	}
	return StrategyLinear
}

// Gap returns the modelled relative cost gap (linear-nonlinear)/linear at
// planning time, or 0 when the DP was skipped or the linear cost is zero.
func (p *AdaptivePlan) Gap() float64 {
	if math.IsNaN(p.NonLinearCost) || p.LinearCost <= 0 {
		return 0
	}
	return (p.LinearCost - p.NonLinearCost) / p.LinearCost
}

// PlanAdaptive builds (or reuses) an adaptive plan for the query against
// the cache's current state. The linear plan is always built first (it is
// the fallback, the gap baseline, and it shares the plan-cache machinery);
// the decision-tree DP then runs unless the tree exceeds
// strategy.MaxLeaves. Reuse follows the same fingerprint rules as Plan:
// while no leaf probability drifts beyond the engine's replan threshold
// and the warm state is unchanged, the cached decision tree is kept and
// only re-priced.
func (q *Query) PlanAdaptive(cache *acquisition.Cache, gapThreshold float64) (*AdaptivePlan, error) {
	lin, err := q.Plan(cache)
	if err != nil {
		return nil, err
	}
	t := lin.Tree
	if t.NumLeaves() > strategy.MaxLeaves {
		return &AdaptivePlan{
			Tree: t, Linear: lin,
			ExpectedCost: lin.ExpectedCost, LinearCost: lin.ExpectedCost,
			NonLinearCost: math.NaN(), Reused: lin.Reused,
		}, nil
	}
	probs := make([]float64, len(t.Leaves))
	for j := range t.Leaves {
		probs[j] = t.Leaves[j].Prob
	}
	costs := streamCosts(t)
	warm := lin.warm
	// Evidence gate: a decision tree is only preferred when the modelled
	// gap also clears a share of the widest confidence interval over the
	// trace-estimated leaf probabilities, so low-evidence queries stay
	// linear. A negative threshold forces the tree and skips the gate.
	ciw := q.ciWidth()
	effGap := gapThreshold
	if gapThreshold >= 0 {
		effGap += CIGateFactor * ciw
	}

	q.mu.Lock()
	prev := q.lastAdaptive
	q.mu.Unlock()
	if prev != nil && q.engine.replanEps >= 0 && warmEqual(prev.warm, warm) {
		drift := maxDrift(prev.probs, probs)
		if cd := maxRelCostDrift(prev.costs, costs); cd > drift {
			drift = cd
		}
		if drift <= q.engine.replanEps {
			// Keep the cached choice (tree or fallback) and its
			// fingerprint; re-price the tree only when probabilities or
			// learned costs moved.
			ap := &AdaptivePlan{
				Tree: t, Root: prev.Root, Linear: lin,
				LinearCost: lin.ExpectedCost, NonLinearCost: prev.NonLinearCost,
				CIWidth: ciw, Reused: true, probs: prev.probs, costs: prev.costs, warm: prev.warm,
			}
			if ap.Root != nil && drift > 0 {
				ap.NonLinearCost = strategy.CostOfDecisionTreeWarm(t, ap.Root, warm)
				// The re-priced tree must still clear the gap; drop to the
				// linear schedule until the next full re-plan otherwise.
				// (The symmetric case — a cached fallback whose tree became
				// worthwhile — is only reconsidered on a re-plan, since
				// detecting it would cost a full DP run per tick.)
				if !preferTree(effGap, lin.ExpectedCost, ap.NonLinearCost) {
					ap.Root = nil
				}
			}
			if ap.Root != nil {
				ap.ExpectedCost = ap.NonLinearCost
			} else {
				ap.ExpectedCost = lin.ExpectedCost
			}
			q.storeAdaptivePlan(ap)
			return ap, nil
		}
	}

	root, nl := strategy.OptimalStrategyWarm(t, warm)
	ap := &AdaptivePlan{
		Tree: t, Linear: lin,
		LinearCost: lin.ExpectedCost, NonLinearCost: nl,
		CIWidth: ciw, probs: probs, costs: costs, warm: warm,
	}
	if preferTree(effGap, lin.ExpectedCost, nl) {
		ap.Root = root
		ap.ExpectedCost = nl
	} else {
		ap.ExpectedCost = lin.ExpectedCost
	}
	q.storeAdaptivePlan(ap)
	return ap, nil
}

// ciWidth returns the widest estimator confidence interval over the
// query's trace-estimated leaves — 0 when every leaf is annotated or the
// estimator exposes no intervals (e.g. the cumulative store).
func (q *Query) ciWidth() float64 {
	ci, ok := q.engine.est.(interface{ CIWidth(pred string) float64 })
	if !ok {
		return 0
	}
	w := 0.0
	for j := range q.Preds {
		if !math.IsNaN(q.Preds[j].Prob) {
			continue
		}
		if cw := ci.CIWidth(q.predKeys[j]); cw > w {
			w = cw
		}
	}
	return w
}

// preferTree decides whether the decision tree's expected cost clears the
// gap threshold over the linear schedule (negative threshold: always).
func preferTree(gapThreshold, linearCost, nonLinearCost float64) bool {
	return gapThreshold < 0 || linearCost-nonLinearCost > gapThreshold*linearCost+1e-12
}

func (q *Query) storeAdaptivePlan(p *AdaptivePlan) {
	q.mu.Lock()
	q.lastAdaptive = p
	q.mu.Unlock()
}

// ExecuteAdaptivePlan runs a previously built adaptive plan against the
// cache's current time. When the plan fell back to a linear schedule, this
// is exactly ExecutePlan; otherwise the decision tree is walked: each
// evaluated leaf's truth value selects the next decision node, so the
// evaluation order adapts to what has been observed. Like ExecutePlan, the
// plan must have been built for the same cache state.
func (q *Query) ExecuteAdaptivePlan(p *AdaptivePlan, cache *acquisition.Cache) (Result, error) {
	if p.Root == nil {
		return q.ExecutePlan(p.Linear, cache)
	}
	t := p.Tree
	res := Result{Tree: t, ExpectedCost: p.ExpectedCost, PlanReused: p.Reused, Strategy: StrategyAdaptive}

	st := newOrState(t)
	for n := p.Root; n != nil && n.Leaf >= 0; {
		truth, cost, err := q.evalLeaf(t, n.Leaf, cache)
		res.Cost += cost
		if err != nil {
			return res, err
		}
		res.Evaluated++
		if done, value := st.record(t.Leaves[n.Leaf].And, truth); done {
			res.Value = value
			return res, nil
		}
		if truth {
			n = n.IfTrue
		} else {
			n = n.IfFalse
		}
	}
	// An optimal strategy terminates exactly when the root is resolved, so
	// the loop returns from inside; reaching a terminal node without
	// resolution means a malformed tree — report the state as it stands.
	res.Value = st.value()
	return res, nil
}

package predicate

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAggregates(t *testing.T) {
	w := []float64{3, 1, 4, 1, 5} // most recent first
	cases := []struct {
		op   Op
		d    int
		want float64
	}{
		{Last, 1, 3},
		{Avg, 5, 2.8},
		{Avg, 2, 2},
		{Max, 5, 5},
		{Max, 2, 3},
		{Min, 5, 1},
		{Sum, 3, 8},
		{Count, 5, 5},
		{Median, 5, 3},
		{Median, 4, 2}, // sorted {1,1,3,4} -> (1+3)/2
	}
	for _, c := range cases {
		p := Predicate{Op: c.op, Window: c.d}
		got, err := p.Aggregate(w)
		if err != nil {
			t.Fatalf("%v(%d): %v", c.op, c.d, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%d) = %v, want %v", c.op, c.d, got, c.want)
		}
	}
}

func TestStddev(t *testing.T) {
	p := Predicate{Op: Stddev, Window: 4}
	got, err := p.Aggregate([]float64{2, 4, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(2)", got)
	}
	// Constant window: zero deviation.
	got, _ = Predicate{Op: Stddev, Window: 3}.Aggregate([]float64{5, 5, 5})
	if got != 0 {
		t.Errorf("Stddev of constant = %v", got)
	}
}

func TestCountPositive(t *testing.T) {
	p := Predicate{Op: Count, Window: 4}
	got, _ := p.Aggregate([]float64{1, -2, 0, 3})
	if got != 2 {
		t.Errorf("Count = %v, want 2", got)
	}
}

func TestComparisons(t *testing.T) {
	w := []float64{10}
	cases := []struct {
		cmp  Cmp
		thr  float64
		want bool
	}{
		{LT, 11, true}, {LT, 10, false},
		{LE, 10, true}, {LE, 9, false},
		{GT, 9, true}, {GT, 10, false},
		{GE, 10, true}, {GE, 11, false},
		{EQ, 10, true}, {EQ, 9, false},
		{NE, 9, true}, {NE, 10, false},
	}
	for _, c := range cases {
		p := Predicate{Op: Last, Window: 1, Cmp: c.cmp, Threshold: c.thr}
		got, err := p.Eval(w)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("10 %v %v = %v, want %v", c.cmp, c.thr, got, c.want)
		}
	}
}

func TestWindowTooShort(t *testing.T) {
	p := Predicate{Op: Avg, Window: 5}
	if _, err := p.Eval([]float64{1, 2}); !errors.Is(err, ErrWindow) {
		t.Errorf("expected ErrWindow, got %v", err)
	}
}

func TestStringNotation(t *testing.T) {
	p := Predicate{Stream: "A", Op: Avg, Window: 5, Cmp: LT, Threshold: 70}
	if got := p.String(); got != "AVG(A,5) < 70" {
		t.Errorf("String = %q", got)
	}
	p = Predicate{Stream: "C", Op: Last, Window: 1, Cmp: LT, Threshold: 3}
	if got := p.String(); got != "C < 3" {
		t.Errorf("String = %q", got)
	}
}

func TestParseOpAndCmp(t *testing.T) {
	for _, name := range []string{"AVG", "MAX", "MIN", "SUM", "COUNT", "MEDIAN", "STDDEV", "LAST"} {
		op, ok := ParseOp(name)
		if !ok {
			t.Errorf("ParseOp(%q) failed", name)
		}
		if op.String() != name {
			t.Errorf("round trip %q -> %v", name, op)
		}
	}
	if _, ok := ParseOp("avg"); ok {
		t.Error("lower-case op should not parse (operators are upper-case)")
	}
	for _, tok := range []string{"<", "<=", ">", ">=", "==", "!="} {
		c, ok := ParseCmp(tok)
		if !ok || c.String() != tok {
			t.Errorf("ParseCmp(%q) = %v, %v", tok, c, ok)
		}
	}
	if _, ok := ParseCmp("<>"); ok {
		t.Error("bogus comparison parsed")
	}
}

func TestItems(t *testing.T) {
	if (Predicate{Window: 4}).Items() != 4 {
		t.Error("Items should return the window")
	}
	if (Predicate{Window: 0}).Items() != 1 {
		t.Error("Items should clamp to 1")
	}
}

// Property: MIN <= MEDIAN <= MAX and MIN <= AVG <= MAX on any window.
func TestAggregateOrderingQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Clamp to a range where the mean cannot overflow, keeping
			// the property about ordering (not float extremes).
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				w = append(w, v)
			}
		}
		if len(w) == 0 {
			return true
		}
		d := len(w)
		get := func(op Op) float64 {
			v, err := Predicate{Op: op, Window: d}.Aggregate(w)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		mn, mx, avg, med := get(Min), get(Max), get(Avg), get(Median)
		return mn <= mx && mn <= avg+1e-9*math.Abs(avg) && avg <= mx+1e-9*math.Abs(mx) &&
			mn <= med && med <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnknownOpErrors(t *testing.T) {
	p := Predicate{Op: Op(99), Window: 1}
	if _, err := p.Aggregate([]float64{1}); err == nil {
		t.Error("unknown op should error")
	}
	if (Op(99)).String() == "" || (Cmp(99)).String() == "" {
		t.Error("unknown enum String should be non-empty")
	}
	q := Predicate{Op: Last, Window: 1, Cmp: Cmp(99)}
	if _, err := q.Eval([]float64{1}); err == nil {
		t.Error("unknown cmp should error")
	}
}

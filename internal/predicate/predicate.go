// Package predicate implements the windowed boolean predicates at query
// tree leaves: an aggregate operator (AVG, MAX, ...) applied to the most
// recent d items of a stream, compared against a constant — e.g.
// "AVG(A,5) < 70" or "C < 3" from Figure 1 of the paper.
package predicate

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Op is a window aggregate operator.
type Op int

const (
	// Last is the identity on the most recent item (window size 1),
	// written without an operator in queries: "C < 3".
	Last Op = iota
	// Avg averages the window.
	Avg
	// Max takes the window maximum.
	Max
	// Min takes the window minimum.
	Min
	// Sum totals the window.
	Sum
	// Count counts items strictly greater than zero in the window.
	Count
	// Median takes the window median (mean of middle two for even sizes).
	Median
	// Stddev is the population standard deviation of the window.
	Stddev
)

var opNames = map[Op]string{
	Last: "LAST", Avg: "AVG", Max: "MAX", Min: "MIN",
	Sum: "SUM", Count: "COUNT", Median: "MEDIAN", Stddev: "STDDEV",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp resolves an operator name (case-sensitive, upper-case as in the
// paper's examples).
func ParseOp(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return op, true
		}
	}
	return 0, false
}

// Cmp is a comparison operator.
type Cmp int

const (
	LT Cmp = iota // <
	LE            // <=
	GT            // >
	GE            // >=
	EQ            // ==
	NE            // !=
)

var cmpNames = map[Cmp]string{LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!="}

func (c Cmp) String() string {
	if n, ok := cmpNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Cmp(%d)", int(c))
}

// ParseCmp resolves a comparison token.
func ParseCmp(tok string) (Cmp, bool) {
	for c, n := range cmpNames {
		if n == tok {
			return c, true
		}
	}
	return 0, false
}

// Predicate is "Op(stream, window) Cmp Threshold".
type Predicate struct {
	// Stream is the stream name the predicate reads.
	Stream string
	// Op is the window aggregate.
	Op Op
	// Window is d: the number of most recent items aggregated (>= 1).
	Window int
	// Cmp compares the aggregate against Threshold.
	Cmp Cmp
	// Threshold is the constant right-hand side.
	Threshold float64
}

// ErrWindow is returned when a window has fewer items than the predicate
// needs.
var ErrWindow = errors.New("predicate: window shorter than required")

// String renders the predicate in the paper's notation.
func (p Predicate) String() string {
	if p.Op == Last && p.Window <= 1 {
		return fmt.Sprintf("%s %s %g", p.Stream, p.Cmp, p.Threshold)
	}
	return fmt.Sprintf("%s(%s,%d) %s %g", p.Op, p.Stream, p.Window, p.Cmp, p.Threshold)
}

// Aggregate applies the operator to a window of values ordered from most
// recent to oldest; len(window) must be at least p.Window.
func (p Predicate) Aggregate(window []float64) (float64, error) {
	d := p.Window
	if d < 1 {
		d = 1
	}
	if len(window) < d {
		return 0, fmt.Errorf("%w: have %d items, need %d", ErrWindow, len(window), d)
	}
	w := window[:d]
	switch p.Op {
	case Last:
		return w[0], nil
	case Avg:
		return sum(w) / float64(d), nil
	case Max:
		m := w[0]
		for _, v := range w[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case Min:
		m := w[0]
		for _, v := range w[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case Sum:
		return sum(w), nil
	case Count:
		n := 0.0
		for _, v := range w {
			if v > 0 {
				n++
			}
		}
		return n, nil
	case Median:
		s := append([]float64(nil), w...)
		sort.Float64s(s)
		if d%2 == 1 {
			return s[d/2], nil
		}
		return (s[d/2-1] + s[d/2]) / 2, nil
	case Stddev:
		mean := sum(w) / float64(d)
		ss := 0.0
		for _, v := range w {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss / float64(d)), nil
	}
	return 0, fmt.Errorf("predicate: unknown operator %v", p.Op)
}

// Eval evaluates the predicate on a window of values ordered from most
// recent to oldest.
func (p Predicate) Eval(window []float64) (bool, error) {
	v, err := p.Aggregate(window)
	if err != nil {
		return false, err
	}
	switch p.Cmp {
	case LT:
		return v < p.Threshold, nil
	case LE:
		return v <= p.Threshold, nil
	case GT:
		return v > p.Threshold, nil
	case GE:
		return v >= p.Threshold, nil
	case EQ:
		return v == p.Threshold, nil
	case NE:
		return v != p.Threshold, nil
	}
	return false, fmt.Errorf("predicate: unknown comparison %v", p.Cmp)
}

// Items returns the window size d the predicate requires (at least 1).
func (p Predicate) Items() int {
	if p.Window < 1 {
		return 1
	}
	return p.Window
}

func sum(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

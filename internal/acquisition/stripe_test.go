package acquisition

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"paotr/internal/stream"
)

// wideRegistry builds a registry with n constant streams at unit cost.
func wideRegistry(tb testing.TB, n int) *stream.Registry {
	tb.Helper()
	reg := stream.NewRegistry()
	for i := 0; i < n; i++ {
		if err := reg.Add(stream.Constant(fmt.Sprintf("s%d", i), float64(i)), stream.CostModel{BytesPerItem: 1, JoulesPerByte: 1}); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// TestStripeCounts: the default stripes one lock per stream; explicit
// counts are clamped to [1, streams].
func TestStripeCounts(t *testing.T) {
	reg := wideRegistry(t, 8)
	if got := NewShared(reg).Stripes(); got != 8 {
		t.Errorf("default stripes = %d, want 8 (one per stream)", got)
	}
	if got := NewSharedStriped(reg, 1).Stripes(); got != 1 {
		t.Errorf("stripes(1) = %d, want 1", got)
	}
	if got := NewSharedStriped(reg, 3).Stripes(); got != 3 {
		t.Errorf("stripes(3) = %d, want 3", got)
	}
	if got := NewSharedStriped(reg, 100).Stripes(); got != 8 {
		t.Errorf("stripes(100) = %d, want clamp to 8", got)
	}
}

// TestStripedMatchesGlobal: under concurrent pulls on many streams, every
// stripe count yields identical accounting — sharding changes contention,
// never semantics.
func TestStripedMatchesGlobal(t *testing.T) {
	const streams, workers, rounds = 8, 8, 25
	run := func(stripes int) (Stats, []StreamStats) {
		c := NewSharedStriped(wideRegistry(t, streams), stripes)
		if err := c.Retain("q", []int{6, 6, 6, 6, 6, 6, 6, 6}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			c.Advance(1)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := 0; k < streams; k++ {
						if _, _, err := c.Acquire((k+w)%streams, 1+(k+w)%5); err != nil {
							t.Error(err)
						}
					}
				}(w)
			}
			wg.Wait()
		}
		return c.Stats(), c.PerStream()
	}
	gStats, gPer := run(1)
	sStats, sPer := run(streams)
	if gStats != sStats {
		t.Errorf("stats diverge: global %+v vs striped %+v", gStats, sStats)
	}
	for k := range gPer {
		if gPer[k] != sPer[k] {
			t.Errorf("stream %d stats diverge: global %+v vs striped %+v", k, gPer[k], sPer[k])
		}
	}
}

// TestPerStreamStats: requested/transferred/pulls/spent and the hit rate
// are tracked per stream, and sum to the fleet-wide aggregates.
func TestPerStreamStats(t *testing.T) {
	c := NewShared(wideRegistry(t, 3))
	if err := c.Retain("q", []int{4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	c.Advance(5)
	c.Pull(0, 4) // 4 transferred
	c.Pull(0, 4) // 4 requested, 0 transferred
	c.Pull(1, 2) // 2 transferred
	s0, s1, s2 := c.StreamStats(0), c.StreamStats(1), c.StreamStats(2)
	if s0.Requested != 8 || s0.Transferred != 4 || s0.HitRate != 0.5 {
		t.Errorf("stream 0 stats = %+v", s0)
	}
	if c.Pulls(0) != 4 {
		t.Errorf("Pulls(0) = %d, want 4", c.Pulls(0))
	}
	if s1.Requested != 2 || s1.Transferred != 2 || s1.HitRate != 0 {
		t.Errorf("stream 1 stats = %+v", s1)
	}
	if s2.Requested != 0 || s2.HitRate != 0 {
		t.Errorf("stream 2 stats = %+v", s2)
	}
	if s0.Name != "s0" || s1.Stream != 1 {
		t.Errorf("stream identity not reported: %+v %+v", s0, s1)
	}
	agg := c.Stats()
	per := c.PerStream()
	var req, tr int64
	var spent float64
	for _, s := range per {
		req += s.Requested
		tr += s.Transferred
		spent += s.Spent
	}
	if req != agg.Requested || tr != agg.Transferred || spent != agg.Spent {
		t.Errorf("per-stream sums (%d, %d, %v) != aggregates %+v", req, tr, spent, agg)
	}
}

// BenchmarkStripedVsGlobal measures concurrent Acquire throughput on
// disjoint streams with per-stream stripes versus the single global lock
// (the pre-sharding baseline). Workers pin distinct streams, so striped
// runs should scale with parallelism while the global lock serializes.
func BenchmarkStripedVsGlobal(b *testing.B) {
	const streams = 16
	bench := func(b *testing.B, stripes int) {
		c := NewSharedStriped(wideRegistry(b, streams), stripes)
		windows := make([]int, streams)
		for k := range windows {
			windows[k] = 8
		}
		if err := c.Retain("q", windows); err != nil {
			b.Fatal(err)
		}
		c.Advance(1)
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			k := int(next.Add(1)-1) % streams
			for pb.Next() {
				if _, _, err := c.Acquire(k, 8); err != nil {
					b.Error(err)
				}
			}
		})
	}
	b.Run("global", func(b *testing.B) { bench(b, 1) })
	b.Run("striped", func(b *testing.B) { bench(b, streams) })
}

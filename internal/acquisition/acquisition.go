// Package acquisition implements the device-side data item cache of the
// paper's pull model (Section I): acquired items are held in memory until
// they are no longer relevant — i.e. older than the maximum time window
// used for their stream in any registered query — and every leaf
// evaluation pays only for the items not already cached.
//
// A Cache is safe for concurrent use and can be shared by many queries:
// an item pulled for one query is reused for free by every other query
// that needs it, which is where the multi-query savings of the paper's
// shared-stream model come from. Per-query retention claims (Retain /
// Release) keep the per-stream horizon equal to the maximum window over
// all registered queries, recomputed whenever the query set changes.
//
// Internally the cache is striped per stream: every stream's items and
// traffic counters live in a shard guarded by its own mutex, so
// concurrent pulls on different streams never contend. A top-level
// RWMutex covers the structural state (time, retention horizons): stream
// operations take it shared, while Advance / Retain / Release and the
// aggregate accessors take it exclusively. This replaces the former
// single global mutex, which serialized every pull of a worker pool
// behind one lock regardless of stream.
package acquisition

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paotr/internal/stream"
)

// shard holds the cached items and traffic counters of the streams
// assigned to one stripe. All fields are guarded by mu (taken together
// with the cache's structural read lock), except under the cache's
// structural write lock, which excludes all shard access.
type shard struct {
	mu sync.Mutex
	_  [56]byte // pad to a 64-byte cache line so stripe locks do not false-share
}

// streamView is an immutable snapshot of the contiguous most-recent
// cached prefix of one stream: vals[t-1] is the value of the t-th most
// recent item as of time step now. Once published it is never mutated;
// Acquire serves warm hits straight from it without taking any lock.
type streamView struct {
	now  int64
	vals []float64
}

// Cache holds the most recent items pulled from each stream of a registry
// and accounts for acquisition costs. Items are identified by production
// step: at time now, the "t-th item" of the paper (t >= 1) is the one
// produced at step now-t. All methods are safe for concurrent use.
type Cache struct {
	// mu guards the structural state: now, base, claims, maxWindow.
	// Stream operations hold it shared plus the stream's stripe lock;
	// structural operations hold it exclusively (which also excludes all
	// stripe-locked readers, so they may touch every stream's data
	// without taking stripe locks).
	mu  sync.RWMutex
	reg *stream.Registry
	// shards[stripeOf[k]] guards the per-stream slices below at index k.
	shards   []shard
	stripeOf []int
	// items[k] = cached items of stream k, sorted by decreasing Seq
	// (most recent first). Not necessarily contiguous after Advance.
	items [][]stream.Item
	// base[k] = fixed retention horizon supplied at construction.
	base []int
	// claims holds per-query retention claims (Retain/Release).
	claims map[string][]int
	// maxWindow[k] = effective retention horizon: the elementwise max of
	// base and every claim. Items older than this relative age are
	// dropped (the paper's "no longer relevant" rule).
	maxWindow []int
	now       int64
	// nowA mirrors now for lock-free freshness checks: the warm-hit fast
	// path compares a view's stamp against it without taking mu.
	nowA atomic.Int64
	// views[k], when non-nil, is the published warm prefix of stream k.
	// Views are written under stream k's locks (and invalidated under the
	// structural write lock); they are read with a bare atomic load.
	views []atomic.Pointer[streamView]
	// Per-stream accounting, guarded like items: spent[k] is the cost
	// paid for stream k, pulls[k] the items transferred from it, and
	// requested/transferred count per-stream traffic (their ratio is the
	// per-stream cache hit rate). Fleet-wide totals are sums over k.
	// requested is atomic because the lock-free fast path bumps it.
	spent       []float64
	pulls       []int
	requested   []atomic.Int64
	transferred []int64
	// relayHits[k] counts transfers of stream k served from the fleet
	// relay instead of the stream; relaySaved[k] is the acquisition cost
	// those hits avoided net of the transfer price (so spent[k] +
	// relaySaved[k] is what the stream would have charged).
	relayHits  []int64
	relaySaved []float64
	// ledger, when set, additionally accounts every transfer to a
	// fleet-wide Ledger shared with other caches (see SetLedger); ledgerH
	// is this cache's clock handle there.
	ledger  *Ledger
	ledgerH int
	// relay, when set, is the fleet-global L2 item index consulted on
	// every L1 miss (see SetRelay); relayH is this cache's clock handle.
	relay  *ItemRelay
	relayH int
}

// NewCache creates a cache over the registry; maxWindow[k] is the fixed
// retention horizon of stream k (the maximum window any query leaf uses on
// that stream). Additional horizons can be claimed later with Retain.
// The cache is striped per stream (see NewSharedStriped).
func NewCache(reg *stream.Registry, maxWindow []int) (*Cache, error) {
	if len(maxWindow) != reg.Len() {
		return nil, fmt.Errorf("acquisition: %d horizons for %d streams", len(maxWindow), reg.Len())
	}
	return newStriped(reg, maxWindow, reg.Len()), nil
}

// NewShared creates a cache with no fixed horizons: retention is driven
// entirely by Retain/Release claims, the configuration of a multi-query
// service where the query set changes at runtime.
func NewShared(reg *stream.Registry) *Cache {
	return NewSharedStriped(reg, 0)
}

// NewSharedStriped is NewShared with an explicit stripe count: stream k's
// data is guarded by stripe k mod stripes. stripes <= 0 uses one stripe
// per stream (no two streams ever contend); stripes == 1 serializes every
// stream operation behind a single lock — the pre-sharding behaviour,
// kept as the benchmark baseline.
func NewSharedStriped(reg *stream.Registry, stripes int) *Cache {
	return newStriped(reg, make([]int, reg.Len()), stripes)
}

func newStriped(reg *stream.Registry, maxWindow []int, stripes int) *Cache {
	n := reg.Len()
	if stripes <= 0 || stripes > n {
		stripes = n
	}
	if stripes < 1 {
		stripes = 1
	}
	c := &Cache{
		reg:         reg,
		shards:      make([]shard, stripes),
		stripeOf:    make([]int, n),
		items:       make([][]stream.Item, n),
		base:        append([]int(nil), maxWindow...),
		claims:      map[string][]int{},
		maxWindow:   append([]int(nil), maxWindow...),
		views:       make([]atomic.Pointer[streamView], n),
		spent:       make([]float64, n),
		pulls:       make([]int, n),
		requested:   make([]atomic.Int64, n),
		transferred: make([]int64, n),
		relayHits:   make([]int64, n),
		relaySaved:  make([]float64, n),
	}
	for k := range c.stripeOf {
		c.stripeOf[k] = k % stripes
	}
	return c
}

// Stripes returns the number of lock stripes guarding per-stream data.
func (c *Cache) Stripes() int { return len(c.shards) }

// SetLedger attaches a fleet-wide transfer ledger: every item this cache
// transfers from now on is also recorded there, so duplicated traffic
// across caches (shard workers with private caches pulling the same
// item) becomes measurable. Attach before the cache sees traffic.
func (c *Cache) SetLedger(l *Ledger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ledger = l
	if l != nil {
		c.ledgerH = l.attach()
	}
}

// SetRelay attaches the fleet-global L2 item relay: from now on every L1
// miss consults it before the stream, transferring already-purchased
// items at the relay's transfer fraction of their acquisition cost
// instead of re-acquiring. Attach before the cache sees traffic; a nil
// relay (the default) leaves the pull path untouched.
func (c *Cache) SetRelay(r *ItemRelay) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.relay = r
	if r != nil {
		c.relayH = r.attach()
	}
}

// lockStream takes the structural read lock plus stream k's stripe lock.
// The returned function releases both.
func (c *Cache) lockStream(k int) func() {
	c.mu.RLock()
	sh := &c.shards[c.stripeOf[k]]
	sh.mu.Lock()
	return func() {
		sh.mu.Unlock()
		c.mu.RUnlock()
	}
}

// Retain registers a per-query retention claim: windows[k] is the maximum
// window the query uses on stream k. The effective horizon of every
// stream becomes the maximum over the base horizon and all claims.
// Claiming again under the same id replaces the previous claim.
func (c *Cache) Retain(id string, windows []int) error {
	if len(windows) != c.reg.Len() {
		return fmt.Errorf("acquisition: %d horizons for %d streams", len(windows), c.reg.Len())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, replaces := c.claims[id]
	c.claims[id] = append([]int(nil), windows...)
	if !replaces {
		// A fresh claim can only raise horizons: nothing falls out of
		// retention, so skip the full O(claims) rebuild and eviction scan
		// (a registration storm would otherwise pay it once per query).
		for k, w := range windows {
			if w > c.maxWindow[k] {
				c.maxWindow[k] = w
			}
		}
		return nil
	}
	c.recomputeHorizons()
	return nil
}

// Release withdraws a retention claim. Items beyond the shrunken horizon
// are evicted immediately.
func (c *Cache) Release(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.claims, id)
	c.recomputeHorizons()
}

// recomputeHorizons rebuilds maxWindow from base and claims and evicts
// items that fell outside the new horizons. Caller holds mu exclusively.
func (c *Cache) recomputeHorizons() {
	for k := range c.maxWindow {
		c.maxWindow[k] = c.base[k]
		for _, w := range c.claims {
			if w[k] > c.maxWindow[k] {
				c.maxWindow[k] = w[k]
			}
		}
	}
	c.evictLocked()
}

// evictLocked drops items older than the retention horizon and retires
// every published warm view (ages shifted or horizons shrank, so a view
// could otherwise serve items the cache no longer holds as free). Caller
// holds mu exclusively (so no stripe locks are needed).
func (c *Cache) evictLocked() {
	for k := range c.views {
		c.views[k].Store(nil)
	}
	for k := range c.items {
		kept := c.items[k][:0]
		for _, it := range c.items[k] {
			if age := c.now - it.Seq; age <= int64(c.maxWindow[k]) {
				kept = append(kept, it)
			}
		}
		c.items[k] = kept
	}
}

// Now returns the current time step.
func (c *Cache) Now() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Spent returns the total acquisition cost paid so far.
func (c *Cache) Spent() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, s := range c.spent {
		total += s
	}
	return total
}

// Pulls returns the number of items transferred from stream k.
func (c *Cache) Pulls(k int) int {
	unlock := c.lockStream(k)
	defer unlock()
	return c.pulls[k]
}

// Horizon returns the effective retention horizon of stream k.
func (c *Cache) Horizon(k int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.maxWindow[k]
}

// Stats summarizes cache traffic.
type Stats struct {
	// Requested counts items asked for via Pull/Acquire.
	Requested int64
	// Transferred counts the requested items that were not cached and had
	// to be acquired (and paid for).
	Transferred int64
	// Spent is the total acquisition cost paid.
	Spent float64
	// Now is the current time step.
	Now int64
}

// HitRate is the fraction of requested items served from the cache.
func (s Stats) HitRate() float64 {
	if s.Requested == 0 {
		return 0
	}
	return 1 - float64(s.Transferred)/float64(s.Requested)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{Now: c.now}
	for k := range c.spent {
		out.Requested += c.requested[k].Load()
		out.Transferred += c.transferred[k]
		out.Spent += c.spent[k]
	}
	return out
}

// StreamStats summarizes cache traffic for one stream.
type StreamStats struct {
	// Stream is the registry index; Name its source name.
	Stream int    `json:"stream"`
	Name   string `json:"name"`
	// Requested counts items of this stream asked for via Pull/Acquire.
	// Transferred counts every item actually acquired from the stream —
	// on-demand misses and prefetches alike (a prefetched item's demand
	// is attributed to the readers that follow, so Transferred can
	// exceed Requested's misses).
	Requested   int64 `json:"requested"`
	Transferred int64 `json:"transferred"`
	// Spent is the acquisition cost paid for this stream.
	Spent float64 `json:"spent"`
	// HitRate is the fraction of requested items served without a
	// same-call transfer; prefetched items count against it, so it
	// measures cross-query sharing rather than prefetcher traffic.
	HitRate float64 `json:"hit_rate"`
	// RelayHits counts transfers served from the fleet L2 relay instead
	// of the stream; RelaySaved is the acquisition cost those hits
	// avoided net of the transfer price. Zero without an attached relay.
	RelayHits  int64   `json:"relay_hits,omitempty"`
	RelaySaved float64 `json:"relay_saved,omitempty"`
}

// StreamStats returns the traffic counters of stream k.
func (c *Cache) StreamStats(k int) StreamStats {
	unlock := c.lockStream(k)
	defer unlock()
	return c.streamStatsLocked(k)
}

func (c *Cache) streamStatsLocked(k int) StreamStats {
	s := StreamStats{
		Stream:      k,
		Name:        c.reg.At(k).Source.Name(),
		Requested:   c.requested[k].Load(),
		Transferred: c.transferred[k],
		Spent:       c.spent[k],
		RelayHits:   c.relayHits[k],
		RelaySaved:  c.relaySaved[k],
	}
	if s.Requested > 0 {
		s.HitRate = 1 - float64(s.Transferred)/float64(s.Requested)
	}
	return s
}

// PerStream returns the traffic counters of every stream, by registry
// index.
func (c *Cache) PerStream() []StreamStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StreamStats, c.reg.Len())
	for k := range out {
		out[k] = c.streamStatsLocked(k)
	}
	return out
}

// Advance moves time forward by steps. Cached items age accordingly, and
// items older than the retention horizon are evicted.
func (c *Cache) Advance(steps int64) {
	if steps <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += steps
	c.nowA.Store(c.now)
	c.evictLocked()
	if c.ledger != nil {
		c.ledger.advance(c.ledgerH, c.now)
	}
	if c.relay != nil {
		c.relay.advance(c.relayH, c.now)
	}
}

// cached returns the cached item of stream k produced at step seq.
// Caller holds stream k's locks.
func (c *Cache) cached(k int, seq int64) (stream.Item, bool) {
	for _, it := range c.items[k] {
		if it.Seq == seq {
			return it, true
		}
		if it.Seq < seq {
			break // sorted descending
		}
	}
	return stream.Item{}, false
}

// Have returns how many consecutive most-recent items of stream k are
// cached: the largest t such that items 1..t are all in memory.
func (c *Cache) Have(k int) int {
	unlock := c.lockStream(k)
	defer unlock()
	n := 0
	for {
		if _, ok := c.cached(k, c.now-int64(n+1)); !ok {
			return n
		}
		n++
	}
}

// Missing returns how many of the d most recent items of stream k are not
// cached — the incremental item count a Pull(k, d) would transfer.
func (c *Cache) Missing(k, d int) int {
	unlock := c.lockStream(k)
	defer unlock()
	miss := 0
	for t := 1; t <= d; t++ {
		if _, ok := c.cached(k, c.now-int64(t)); !ok {
			miss++
		}
	}
	return miss
}

// pullLocked ensures the d most recent items of stream k are cached and
// returns the incremental cost paid. countRequested attributes the items
// to the request counter (false for prefetches, whose demand belongs to
// the readers that follow). Caller holds stream k's locks.
func (c *Cache) pullLocked(k, d int, countRequested bool) float64 {
	st := c.reg.At(k)
	cost := 0.0
	if countRequested {
		c.requested[k].Add(int64(d))
	}
	added := false
	for t := 1; t <= d; t++ {
		seq := c.now - int64(t)
		if _, ok := c.cached(k, seq); ok {
			continue
		}
		var it stream.Item
		var itemCost float64
		if c.relay != nil {
			// L2 path: a relay hit transfers the item another cache already
			// purchased at a fraction of its acquisition cost; a miss
			// acquires at full cost and publishes for the rest of the fleet.
			item, tc, full, relayed := c.relay.acquire(k, seq, d, st)
			it, itemCost = item, tc
			if relayed {
				c.relayHits[k]++
				c.relaySaved[k] += full - tc
			}
		} else {
			// Items are priced at their production step, so streams with a
			// dynamic cost regime charge the price in force when the item
			// was produced.
			it = st.Source.At(seq)
			itemCost = st.PerItemAt(seq)
		}
		c.items[k] = append(c.items[k], it)
		added = true
		cost += itemCost
		c.pulls[k]++
		c.transferred[k]++
		if c.ledger != nil {
			c.ledger.record(k, seq, itemCost, d)
		}
	}
	if added {
		sort.Slice(c.items[k], func(a, b int) bool { return c.items[k][a].Seq > c.items[k][b].Seq })
	}
	c.spent[k] += cost
	return cost
}

// Pull ensures the d most recent items of stream k are cached, transfers
// the missing ones, charges their cost, and returns the incremental cost
// paid.
func (c *Cache) Pull(k, d int) float64 {
	unlock := c.lockStream(k)
	defer unlock()
	return c.pullLocked(k, d, true)
}

// Prefetch is Pull on behalf of future readers: it transfers and charges
// for the missing items, but does not count them as requested — the
// demand is attributed to the queries that subsequently Acquire them, so
// Stats.HitRate keeps measuring cross-query sharing rather than the
// prefetcher's own traffic. It returns the items transferred and the
// cost paid.
func (c *Cache) Prefetch(k, d int) (int, float64) {
	unlock := c.lockStream(k)
	defer unlock()
	before := c.transferred[k]
	cost := c.pullLocked(k, d, false)
	return int(c.transferred[k] - before), cost
}

// Values returns the values of the d most recent items of stream k, most
// recent first, for predicate evaluation. It does not pull; call Pull
// first (or use Acquire, which does both atomically).
func (c *Cache) Values(k, d int) ([]float64, error) {
	unlock := c.lockStream(k)
	defer unlock()
	return c.valuesLocked(k, d)
}

func (c *Cache) valuesLocked(k, d int) ([]float64, error) {
	out := make([]float64, d)
	for t := 1; t <= d; t++ {
		it, ok := c.cached(k, c.now-int64(t))
		if !ok {
			return nil, fmt.Errorf("acquisition: stream %d missing item %d of %d", k, t, d)
		}
		out[t-1] = it.Value
	}
	return out, nil
}

// Acquire pulls the d most recent items of stream k and returns their
// values (most recent first) together with the incremental cost paid.
// Pull and read happen under one stream lock, so concurrent executions
// sharing the cache cannot interleave between paying for items and
// reading them.
//
// Warm hits take a lock-free fast path: when a published view of the
// stream covers the request at the current time step, the values are
// served straight from the immutable view — no locks, no allocation, no
// cost. The returned slice is shared and must be treated as read-only.
func (c *Cache) Acquire(k, d int) ([]float64, float64, error) {
	if v := c.views[k].Load(); v != nil && d <= len(v.vals) && v.now == c.nowA.Load() {
		c.requested[k].Add(int64(d))
		return v.vals[:d], 0, nil
	}
	unlock := c.lockStream(k)
	defer unlock()
	cost := c.pullLocked(k, d, true)
	vals, err := c.valuesLocked(k, d)
	if err == nil {
		// Publish the prefix for subsequent warm readers this step. Writes
		// serialize under the stripe lock; Advance/evict invalidate under
		// the structural write lock, which excludes us.
		if v := c.views[k].Load(); v == nil || v.now != c.now || len(v.vals) < len(vals) {
			c.views[k].Store(&streamView{now: c.now, vals: vals})
		}
	}
	return vals, cost, err
}

// Snapshot reports which of the most recent items are currently cached:
// the result has one row per stream with windows[k] entries, where entry
// t-1 is true when the t-th most recent item of stream k is in memory.
// The row layout matches sched.Warm, so planners can price cached items
// as free. Each row is read under its stream's lock; rows of different
// streams are not mutually atomic (concurrent pulls on other streams may
// land between rows — planners snapshot between execution phases, when
// nothing pulls).
func (c *Cache) Snapshot(windows []int) [][]bool {
	return c.SnapshotInto(windows, nil)
}

// SnapshotInto is Snapshot writing into out, reusing its rows' capacity
// so per-tick planners can snapshot without allocating. A nil (or too
// small) out grows as needed; the possibly reallocated slice is returned.
func (c *Cache) SnapshotInto(windows []int, out [][]bool) [][]bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.items)
	if cap(out) < n {
		grown := make([][]bool, n)
		copy(grown, out)
		out = grown
	}
	out = out[:n]
	for k := range out {
		d := 0
		if k < len(windows) {
			d = windows[k]
		}
		row := out[k]
		if cap(row) < d {
			row = make([]bool, d)
		}
		row = row[:d]
		sh := &c.shards[c.stripeOf[k]]
		sh.mu.Lock()
		for t := 1; t <= d; t++ {
			_, row[t-1] = c.cached(k, c.now-int64(t))
		}
		sh.mu.Unlock()
		out[k] = row
	}
	return out
}

// ResetAccounting zeroes the spent counter, pull counts and traffic
// counters (the cache contents are preserved).
func (c *Cache) ResetAccounting() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.pulls {
		c.spent[k] = 0
		c.pulls[k] = 0
		c.requested[k].Store(0)
		c.transferred[k] = 0
		c.relayHits[k] = 0
		c.relaySaved[k] = 0
	}
}

// RelayTraffic totals the relay counters across streams: hits served from
// the fleet L2 relay and the acquisition cost they avoided net of
// transfer prices. Both are zero without an attached relay.
func (c *Cache) RelayTraffic() (hits int64, saved float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.relayHits {
		hits += c.relayHits[k]
		saved += c.relaySaved[k]
	}
	return hits, saved
}

// Package acquisition implements the device-side data item cache of the
// paper's pull model (Section I): acquired items are held in memory until
// they are no longer relevant — i.e. older than the maximum time window
// used for their stream in the query — and every leaf evaluation pays only
// for the items not already cached.
package acquisition

import (
	"fmt"
	"sort"

	"paotr/internal/stream"
)

// Cache holds the most recent items pulled from each stream of a registry
// and accounts for acquisition costs. Items are identified by production
// step: at time now, the "t-th item" of the paper (t >= 1) is the one
// produced at step now-t.
type Cache struct {
	reg *stream.Registry
	// items[k] = cached items of stream k, sorted by decreasing Seq
	// (most recent first). Not necessarily contiguous after Advance.
	items [][]stream.Item
	// maxWindow[k] = retention horizon: items older than this relative
	// age are dropped (the paper's "no longer relevant" rule).
	maxWindow []int
	now       int64
	spent     float64
	pulls     []int
}

// NewCache creates a cache over the registry; maxWindow[k] is the
// retention horizon of stream k (the maximum window any query leaf uses on
// that stream).
func NewCache(reg *stream.Registry, maxWindow []int) (*Cache, error) {
	if len(maxWindow) != reg.Len() {
		return nil, fmt.Errorf("acquisition: %d horizons for %d streams", len(maxWindow), reg.Len())
	}
	return &Cache{
		reg:       reg,
		items:     make([][]stream.Item, reg.Len()),
		maxWindow: append([]int(nil), maxWindow...),
		pulls:     make([]int, reg.Len()),
	}, nil
}

// Now returns the current time step.
func (c *Cache) Now() int64 { return c.now }

// Spent returns the total acquisition cost paid so far.
func (c *Cache) Spent() float64 { return c.spent }

// Pulls returns the number of items transferred from stream k.
func (c *Cache) Pulls(k int) int { return c.pulls[k] }

// Advance moves time forward by steps. Cached items age accordingly, and
// items older than the retention horizon are evicted.
func (c *Cache) Advance(steps int64) {
	if steps <= 0 {
		return
	}
	c.now += steps
	for k := range c.items {
		kept := c.items[k][:0]
		for _, it := range c.items[k] {
			if age := c.now - it.Seq; age <= int64(c.maxWindow[k]) {
				kept = append(kept, it)
			}
		}
		c.items[k] = kept
	}
}

// cached returns the cached item of stream k produced at step seq.
func (c *Cache) cached(k int, seq int64) (stream.Item, bool) {
	for _, it := range c.items[k] {
		if it.Seq == seq {
			return it, true
		}
		if it.Seq < seq {
			break // sorted descending
		}
	}
	return stream.Item{}, false
}

// Have returns how many consecutive most-recent items of stream k are
// cached: the largest t such that items 1..t are all in memory.
func (c *Cache) Have(k int) int {
	n := 0
	for {
		if _, ok := c.cached(k, c.now-int64(n+1)); !ok {
			return n
		}
		n++
	}
}

// Missing returns how many of the d most recent items of stream k are not
// cached — the incremental item count a Pull(k, d) would transfer.
func (c *Cache) Missing(k, d int) int {
	miss := 0
	for t := 1; t <= d; t++ {
		if _, ok := c.cached(k, c.now-int64(t)); !ok {
			miss++
		}
	}
	return miss
}

// Pull ensures the d most recent items of stream k are cached, transfers
// the missing ones, charges their cost, and returns the incremental cost
// paid.
func (c *Cache) Pull(k, d int) float64 {
	st := c.reg.At(k)
	per := st.Cost.PerItem()
	cost := 0.0
	for t := 1; t <= d; t++ {
		seq := c.now - int64(t)
		if _, ok := c.cached(k, seq); ok {
			continue
		}
		c.items[k] = append(c.items[k], st.Source.At(seq))
		cost += per
		c.pulls[k]++
	}
	sort.Slice(c.items[k], func(a, b int) bool { return c.items[k][a].Seq > c.items[k][b].Seq })
	c.spent += cost
	return cost
}

// Values returns the values of the d most recent items of stream k, most
// recent first, for predicate evaluation. It does not pull; call Pull
// first.
func (c *Cache) Values(k, d int) ([]float64, error) {
	out := make([]float64, d)
	for t := 1; t <= d; t++ {
		it, ok := c.cached(k, c.now-int64(t))
		if !ok {
			return nil, fmt.Errorf("acquisition: stream %d missing item %d of %d", k, t, d)
		}
		out[t-1] = it.Value
	}
	return out, nil
}

// Snapshot reports which of the most recent items are currently cached:
// the result has one row per stream with windows[k] entries, where entry
// t-1 is true when the t-th most recent item of stream k is in memory.
// The row layout matches sched.Warm, so planners can price cached items
// as free.
func (c *Cache) Snapshot(windows []int) [][]bool {
	out := make([][]bool, len(c.items))
	for k := range out {
		d := 0
		if k < len(windows) {
			d = windows[k]
		}
		row := make([]bool, d)
		for t := 1; t <= d; t++ {
			_, row[t-1] = c.cached(k, c.now-int64(t))
		}
		out[k] = row
	}
	return out
}

// ResetAccounting zeroes the spent counter and pull counts (the cache
// contents are preserved).
func (c *Cache) ResetAccounting() {
	c.spent = 0
	for k := range c.pulls {
		c.pulls[k] = 0
	}
}

// Package acquisition implements the device-side data item cache of the
// paper's pull model (Section I): acquired items are held in memory until
// they are no longer relevant — i.e. older than the maximum time window
// used for their stream in any registered query — and every leaf
// evaluation pays only for the items not already cached.
//
// A Cache is safe for concurrent use and can be shared by many queries:
// an item pulled for one query is reused for free by every other query
// that needs it, which is where the multi-query savings of the paper's
// shared-stream model come from. Per-query retention claims (Retain /
// Release) keep the per-stream horizon equal to the maximum window over
// all registered queries, recomputed whenever the query set changes.
package acquisition

import (
	"fmt"
	"sort"
	"sync"

	"paotr/internal/stream"
)

// Cache holds the most recent items pulled from each stream of a registry
// and accounts for acquisition costs. Items are identified by production
// step: at time now, the "t-th item" of the paper (t >= 1) is the one
// produced at step now-t. All methods are safe for concurrent use.
type Cache struct {
	mu  sync.Mutex
	reg *stream.Registry
	// items[k] = cached items of stream k, sorted by decreasing Seq
	// (most recent first). Not necessarily contiguous after Advance.
	items [][]stream.Item
	// base[k] = fixed retention horizon supplied at construction.
	base []int
	// claims holds per-query retention claims (Retain/Release).
	claims map[string][]int
	// maxWindow[k] = effective retention horizon: the elementwise max of
	// base and every claim. Items older than this relative age are
	// dropped (the paper's "no longer relevant" rule).
	maxWindow []int
	now       int64
	spent     float64
	pulls     []int
	// requested counts items asked for via Pull/Acquire; transferred
	// counts the subset that actually had to be acquired. Their ratio is
	// the cache hit rate.
	requested   int64
	transferred int64
}

// NewCache creates a cache over the registry; maxWindow[k] is the fixed
// retention horizon of stream k (the maximum window any query leaf uses on
// that stream). Additional horizons can be claimed later with Retain.
func NewCache(reg *stream.Registry, maxWindow []int) (*Cache, error) {
	if len(maxWindow) != reg.Len() {
		return nil, fmt.Errorf("acquisition: %d horizons for %d streams", len(maxWindow), reg.Len())
	}
	return &Cache{
		reg:       reg,
		items:     make([][]stream.Item, reg.Len()),
		base:      append([]int(nil), maxWindow...),
		claims:    map[string][]int{},
		maxWindow: append([]int(nil), maxWindow...),
		pulls:     make([]int, reg.Len()),
	}, nil
}

// NewShared creates a cache with no fixed horizons: retention is driven
// entirely by Retain/Release claims, the configuration of a multi-query
// service where the query set changes at runtime.
func NewShared(reg *stream.Registry) *Cache {
	c, _ := NewCache(reg, make([]int, reg.Len()))
	return c
}

// Retain registers a per-query retention claim: windows[k] is the maximum
// window the query uses on stream k. The effective horizon of every
// stream becomes the maximum over the base horizon and all claims.
// Claiming again under the same id replaces the previous claim.
func (c *Cache) Retain(id string, windows []int) error {
	if len(windows) != c.reg.Len() {
		return fmt.Errorf("acquisition: %d horizons for %d streams", len(windows), c.reg.Len())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.claims[id] = append([]int(nil), windows...)
	c.recomputeHorizons()
	return nil
}

// Release withdraws a retention claim. Items beyond the shrunken horizon
// are evicted immediately.
func (c *Cache) Release(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.claims, id)
	c.recomputeHorizons()
}

// recomputeHorizons rebuilds maxWindow from base and claims and evicts
// items that fell outside the new horizons. Caller holds mu.
func (c *Cache) recomputeHorizons() {
	for k := range c.maxWindow {
		c.maxWindow[k] = c.base[k]
		for _, w := range c.claims {
			if w[k] > c.maxWindow[k] {
				c.maxWindow[k] = w[k]
			}
		}
	}
	c.evictLocked()
}

// evictLocked drops items older than the retention horizon. Caller holds mu.
func (c *Cache) evictLocked() {
	for k := range c.items {
		kept := c.items[k][:0]
		for _, it := range c.items[k] {
			if age := c.now - it.Seq; age <= int64(c.maxWindow[k]) {
				kept = append(kept, it)
			}
		}
		c.items[k] = kept
	}
}

// Now returns the current time step.
func (c *Cache) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Spent returns the total acquisition cost paid so far.
func (c *Cache) Spent() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spent
}

// Pulls returns the number of items transferred from stream k.
func (c *Cache) Pulls(k int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pulls[k]
}

// Horizon returns the effective retention horizon of stream k.
func (c *Cache) Horizon(k int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxWindow[k]
}

// Stats summarizes cache traffic.
type Stats struct {
	// Requested counts items asked for via Pull/Acquire.
	Requested int64
	// Transferred counts the requested items that were not cached and had
	// to be acquired (and paid for).
	Transferred int64
	// Spent is the total acquisition cost paid.
	Spent float64
	// Now is the current time step.
	Now int64
}

// HitRate is the fraction of requested items served from the cache.
func (s Stats) HitRate() float64 {
	if s.Requested == 0 {
		return 0
	}
	return 1 - float64(s.Transferred)/float64(s.Requested)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Requested: c.requested, Transferred: c.transferred, Spent: c.spent, Now: c.now}
}

// Advance moves time forward by steps. Cached items age accordingly, and
// items older than the retention horizon are evicted.
func (c *Cache) Advance(steps int64) {
	if steps <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += steps
	c.evictLocked()
}

// cached returns the cached item of stream k produced at step seq.
// Caller holds mu.
func (c *Cache) cached(k int, seq int64) (stream.Item, bool) {
	for _, it := range c.items[k] {
		if it.Seq == seq {
			return it, true
		}
		if it.Seq < seq {
			break // sorted descending
		}
	}
	return stream.Item{}, false
}

// Have returns how many consecutive most-recent items of stream k are
// cached: the largest t such that items 1..t are all in memory.
func (c *Cache) Have(k int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for {
		if _, ok := c.cached(k, c.now-int64(n+1)); !ok {
			return n
		}
		n++
	}
}

// Missing returns how many of the d most recent items of stream k are not
// cached — the incremental item count a Pull(k, d) would transfer.
func (c *Cache) Missing(k, d int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	miss := 0
	for t := 1; t <= d; t++ {
		if _, ok := c.cached(k, c.now-int64(t)); !ok {
			miss++
		}
	}
	return miss
}

// pullLocked ensures the d most recent items of stream k are cached and
// returns the incremental cost paid. countRequested attributes the items
// to the request counter (false for prefetches, whose demand belongs to
// the readers that follow). Caller holds mu.
func (c *Cache) pullLocked(k, d int, countRequested bool) float64 {
	st := c.reg.At(k)
	per := st.Cost.PerItem()
	cost := 0.0
	if countRequested {
		c.requested += int64(d)
	}
	for t := 1; t <= d; t++ {
		seq := c.now - int64(t)
		if _, ok := c.cached(k, seq); ok {
			continue
		}
		c.items[k] = append(c.items[k], st.Source.At(seq))
		cost += per
		c.pulls[k]++
		c.transferred++
	}
	sort.Slice(c.items[k], func(a, b int) bool { return c.items[k][a].Seq > c.items[k][b].Seq })
	c.spent += cost
	return cost
}

// Pull ensures the d most recent items of stream k are cached, transfers
// the missing ones, charges their cost, and returns the incremental cost
// paid.
func (c *Cache) Pull(k, d int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pullLocked(k, d, true)
}

// Prefetch is Pull on behalf of future readers: it transfers and charges
// for the missing items, but does not count them as requested — the
// demand is attributed to the queries that subsequently Acquire them, so
// Stats.HitRate keeps measuring cross-query sharing rather than the
// prefetcher's own traffic. It returns the items transferred and the
// cost paid.
func (c *Cache) Prefetch(k, d int) (int, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.transferred
	cost := c.pullLocked(k, d, false)
	return int(c.transferred - before), cost
}

// Values returns the values of the d most recent items of stream k, most
// recent first, for predicate evaluation. It does not pull; call Pull
// first (or use Acquire, which does both atomically).
func (c *Cache) Values(k, d int) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.valuesLocked(k, d)
}

func (c *Cache) valuesLocked(k, d int) ([]float64, error) {
	out := make([]float64, d)
	for t := 1; t <= d; t++ {
		it, ok := c.cached(k, c.now-int64(t))
		if !ok {
			return nil, fmt.Errorf("acquisition: stream %d missing item %d of %d", k, t, d)
		}
		out[t-1] = it.Value
	}
	return out, nil
}

// Acquire pulls the d most recent items of stream k and returns their
// values (most recent first) together with the incremental cost paid.
// Pull and read happen under one lock, so concurrent executions sharing
// the cache cannot interleave between paying for items and reading them.
func (c *Cache) Acquire(k, d int) ([]float64, float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cost := c.pullLocked(k, d, true)
	vals, err := c.valuesLocked(k, d)
	return vals, cost, err
}

// Snapshot reports which of the most recent items are currently cached:
// the result has one row per stream with windows[k] entries, where entry
// t-1 is true when the t-th most recent item of stream k is in memory.
// The row layout matches sched.Warm, so planners can price cached items
// as free.
func (c *Cache) Snapshot(windows []int) [][]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]bool, len(c.items))
	for k := range out {
		d := 0
		if k < len(windows) {
			d = windows[k]
		}
		row := make([]bool, d)
		for t := 1; t <= d; t++ {
			_, row[t-1] = c.cached(k, c.now-int64(t))
		}
		out[k] = row
	}
	return out
}

// ResetAccounting zeroes the spent counter, pull counts and traffic
// counters (the cache contents are preserved).
func (c *Cache) ResetAccounting() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spent = 0
	c.requested = 0
	c.transferred = 0
	for k := range c.pulls {
		c.pulls[k] = 0
	}
}

// The fleet ledger measures the sharing a partitioned fleet loses in
// realized traffic. Shard workers own private caches, so an item two
// shards both need is transferred (and paid for) twice — the ledger
// counts, per (stream, production step) item, every transfer beyond the
// first across all attached caches. That is the realized counterpart of
// the partitioner's modelled sharing loss (see internal/shard).
package acquisition

import "sync"

// ledgerEntry tracks one item across attached caches: how many caches
// transferred it and the largest single transfer cost seen. Duplicate
// spend is accounted as the sum of all transfer costs minus the largest —
// an order-independent total, so concurrent shard ticks racing to record
// the same item (possibly at unequal costs, e.g. one full acquisition and
// several relay transfers) always produce the same duplicate-spend sum no
// matter which cache records first.
type ledgerEntry struct {
	count int
	max   float64
}

// Ledger aggregates item transfers across several caches over the same
// registry. Attach it to each shard's cache with SetLedger; the zero
// counters then accumulate the duplicated traffic partitioning causes.
// All methods are safe for concurrent use.
type Ledger struct {
	mu sync.Mutex
	// seen[k][seq] tracks the caches that transferred item seq of stream k.
	seen []map[int64]ledgerEntry
	// keep[k] is the largest window depth ever pulled on stream k;
	// entries older than twice that below the slowest attached clock are
	// pruned on advance (pulls only reach back one horizon).
	keep []int
	// clocks[h] is the time step of attached cache h. Each cache advances
	// only its own clock, so concurrent ticks interleaving out-of-order
	// now values cannot move any clock backwards; pruning respects
	// min(clocks), so no attached cache can ever record below the prune
	// floor.
	clocks []int64

	transfers    int64
	spend        float64
	dupTransfers int64
	dupSpend     float64
}

// NewLedger creates a ledger for registries with n streams.
func NewLedger(n int) *Ledger {
	l := &Ledger{seen: make([]map[int64]ledgerEntry, n), keep: make([]int, n)}
	for k := range l.seen {
		l.seen[k] = map[int64]ledgerEntry{}
	}
	return l
}

// attach registers one cache's clock and returns its handle for advance.
func (l *Ledger) attach() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clocks = append(l.clocks, 0)
	return len(l.clocks) - 1
}

// record accounts one transferred item: d is the window depth of the
// pull (bounds how far back future pulls can reach, for pruning).
func (l *Ledger) record(k int, seq int64, cost float64, d int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recordLocked(k, seq, cost, d)
}

// Record is record for callers outside the cache — a coordinator folding
// a remote worker's reported transfers into the fleet ledger.
func (l *Ledger) Record(k int, seq int64, cost float64, d int) {
	l.record(k, seq, cost, d)
}

func (l *Ledger) recordLocked(k int, seq int64, cost float64, d int) {
	if k < 0 || k >= len(l.seen) {
		return
	}
	if d > l.keep[k] {
		l.keep[k] = d
	}
	l.transfers++
	l.spend += cost
	e := l.seen[k][seq]
	e.count++
	if e.count > 1 {
		// Everything beyond the single most expensive transfer of this
		// item is duplicate spend: charge the cheaper of the new cost and
		// the running max, and keep the max. The total is sum - max
		// regardless of arrival order.
		l.dupTransfers++
		if cost < e.max {
			l.dupSpend += cost
		} else {
			l.dupSpend += e.max
			e.max = cost
		}
	} else {
		e.max = cost
	}
	l.seen[k][seq] = e
}

// advance moves attached cache h's clock to now and prunes items too old
// for any attached cache to pull again. Each cache owns its clock, so
// concurrent out-of-order advances from different shards are monotonic
// per clock, and the prune floor is the slowest attached clock.
func (l *Ledger) advance(h int, now int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if h < 0 || h >= len(l.clocks) || now <= l.clocks[h] {
		return
	}
	l.clocks[h] = now
	floor := l.clocks[0]
	for _, c := range l.clocks[1:] {
		if c < floor {
			floor = c
		}
	}
	for k, m := range l.seen {
		horizon := int64(2 * l.keep[k])
		for seq := range m {
			if floor-seq > horizon {
				delete(m, seq)
			}
		}
	}
}

// LedgerStats summarizes cross-cache duplicated traffic.
type LedgerStats struct {
	// Transfers and Spend total the item transfers and acquisition cost
	// recorded across all attached caches.
	Transfers int64   `json:"transfers"`
	Spend     float64 `json:"spend"`
	// DuplicateTransfers counts transfers of an item some other attached
	// cache had already transferred; DuplicateSpend is the cost those
	// re-acquisitions paid (per item: total transfer cost minus the single
	// most expensive transfer). Under one shared cache both are zero —
	// they are the realized price of partitioning.
	DuplicateTransfers int64   `json:"duplicate_transfers"`
	DuplicateSpend     float64 `json:"duplicate_spend"`
}

// Stats returns a snapshot of the ledger's counters.
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerStats{
		Transfers:          l.transfers,
		Spend:              l.spend,
		DuplicateTransfers: l.dupTransfers,
		DuplicateSpend:     l.dupSpend,
	}
}

// The fleet ledger measures the sharing a partitioned fleet loses in
// realized traffic. Shard workers own private caches, so an item two
// shards both need is transferred (and paid for) twice — the ledger
// counts, per (stream, production step) item, every transfer beyond the
// first across all attached caches. That is the realized counterpart of
// the partitioner's modelled sharing loss (see internal/shard).
package acquisition

import "sync"

// Ledger aggregates item transfers across several caches over the same
// registry. Attach it to each shard's cache with SetLedger; the zero
// counters then accumulate the duplicated traffic partitioning causes.
// All methods are safe for concurrent use.
type Ledger struct {
	mu sync.Mutex
	// seen[k][seq] counts caches that transferred item seq of stream k.
	seen []map[int64]int
	// keep[k] is the largest window depth ever pulled on stream k;
	// entries older than twice that are pruned on Advance (nothing will
	// pull them again — pulls only reach back one horizon).
	keep []int
	now  int64

	transfers    int64
	spend        float64
	dupTransfers int64
	dupSpend     float64
}

// NewLedger creates a ledger for registries with n streams.
func NewLedger(n int) *Ledger {
	l := &Ledger{seen: make([]map[int64]int, n), keep: make([]int, n)}
	for k := range l.seen {
		l.seen[k] = map[int64]int{}
	}
	return l
}

// record accounts one transferred item: the d is the window depth of the
// pull (bounds how far back future pulls can reach, for pruning).
func (l *Ledger) record(k int, seq int64, cost float64, d int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if k < 0 || k >= len(l.seen) {
		return
	}
	if d > l.keep[k] {
		l.keep[k] = d
	}
	l.transfers++
	l.spend += cost
	l.seen[k][seq]++
	if l.seen[k][seq] > 1 {
		l.dupTransfers++
		l.dupSpend += cost
	}
}

// advance moves the ledger clock forward and prunes items too old for
// any future pull to touch.
func (l *Ledger) advance(now int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if now <= l.now {
		return
	}
	l.now = now
	for k, m := range l.seen {
		horizon := int64(2 * l.keep[k])
		for seq := range m {
			if now-seq > horizon {
				delete(m, seq)
			}
		}
	}
}

// LedgerStats summarizes cross-cache duplicated traffic.
type LedgerStats struct {
	// Transfers and Spend total the item transfers and acquisition cost
	// recorded across all attached caches.
	Transfers int64   `json:"transfers"`
	Spend     float64 `json:"spend"`
	// DuplicateTransfers counts transfers of an item some other attached
	// cache had already transferred; DuplicateSpend is the cost those
	// re-acquisitions paid. Under one shared cache both are zero — they
	// are the realized price of partitioning.
	DuplicateTransfers int64   `json:"duplicate_transfers"`
	DuplicateSpend     float64 `json:"duplicate_spend"`
}

// Stats returns a snapshot of the ledger's counters.
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerStats{
		Transfers:          l.transfers,
		Spend:              l.spend,
		DuplicateTransfers: l.dupTransfers,
		DuplicateSpend:     l.dupSpend,
	}
}

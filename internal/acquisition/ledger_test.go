package acquisition

import (
	"fmt"
	"sync"
	"testing"

	"paotr/internal/stream"
)

func ledgerRegistry(tb testing.TB, streams int) *stream.Registry {
	tb.Helper()
	reg := stream.NewRegistry()
	for i := 0; i < streams; i++ {
		if err := reg.Add(stream.Uniform(fmt.Sprintf("s%d", i), uint64(i+1)), stream.CostModel{BaseJoules: 2}); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// TestLedgerCountsCrossCacheDuplicates: two caches pulling the same
// window pay twice, and the ledger sees every transfer beyond the first
// as a duplicate; a third pull of already-cached items transfers
// nothing and adds nothing.
func TestLedgerCountsCrossCacheDuplicates(t *testing.T) {
	reg := ledgerRegistry(t, 2)
	l := NewLedger(reg.Len())
	a := NewShared(reg)
	b := NewShared(reg)
	a.SetLedger(l)
	b.SetLedger(l)
	for _, c := range []*Cache{a, b} {
		if err := c.Retain("q", []int{4, 4}); err != nil {
			t.Fatal(err)
		}
		c.Advance(1)
	}
	a.Pull(0, 4)
	if s := l.Stats(); s.Transfers != 4 || s.DuplicateTransfers != 0 {
		t.Fatalf("after one cache pulled: %+v", s)
	}
	b.Pull(0, 4)
	s := l.Stats()
	if s.Transfers != 8 || s.DuplicateTransfers != 4 {
		t.Fatalf("after both caches pulled the same window: %+v", s)
	}
	if s.DuplicateSpend != 8 { // 4 items at 2 J each, paid a second time
		t.Fatalf("duplicate spend %v, want 8", s.DuplicateSpend)
	}
	// Cached items do not re-transfer, so nothing new is recorded.
	a.Pull(0, 4)
	if s2 := l.Stats(); s2.Transfers != 8 {
		t.Fatalf("re-pulling cached items recorded transfers: %+v", s2)
	}
	// Disjoint streams never duplicate.
	a.Pull(1, 2)
	if s2 := l.Stats(); s2.DuplicateTransfers != 4 {
		t.Fatalf("disjoint-stream pull changed duplicates: %+v", s2)
	}
}

// TestLedgerPrunes: advancing far beyond the pulled windows must shrink
// the seen-item maps (the counters are cumulative and survive).
func TestLedgerPrunes(t *testing.T) {
	reg := ledgerRegistry(t, 1)
	l := NewLedger(1)
	c := NewShared(reg)
	c.SetLedger(l)
	if err := c.Retain("q", []int{3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Advance(1)
		c.Pull(0, 3)
	}
	l.mu.Lock()
	kept := len(l.seen[0])
	l.mu.Unlock()
	if kept > 7 { // 2 * max window depth (3), plus the newest
		t.Fatalf("ledger retains %d seqs after 50 steps of window-3 pulls", kept)
	}
	if s := l.Stats(); s.Transfers == 0 || s.DuplicateTransfers != 0 {
		t.Fatalf("single-cache traffic misaccounted: %+v", s)
	}
}

// TestLedgerClockMonotonic: each attached cache owns its clock, and a
// stale advance (a now value at or below the clock) is a no-op — so
// out-of-order advances can never move a clock backwards, and pruning
// always respects the slowest attached cache.
func TestLedgerClockMonotonic(t *testing.T) {
	l := NewLedger(1)
	h0 := l.attach()
	h1 := l.attach()
	l.record(0, 1, 2, 3)
	l.record(0, 2, 2, 3)

	// A fast cache advancing far ahead must not prune entries the slow
	// cache (still at step 0) could pull again.
	l.advance(h1, 100)
	l.mu.Lock()
	kept := len(l.seen[0])
	l.mu.Unlock()
	if kept != 2 {
		t.Fatalf("fast clock pruned past the slow one: %d entries left, want 2", kept)
	}

	// Out-of-order advances on one handle: the clock keeps its maximum.
	for _, now := range []int64{10, 5, 8, 10, 3} {
		l.advance(h0, now)
	}
	l.mu.Lock()
	c0 := l.clocks[h0]
	l.mu.Unlock()
	if c0 != 10 {
		t.Fatalf("clock after out-of-order advances = %d, want 10", c0)
	}

	// Only once the slow clock passes the horizon do entries go away.
	l.advance(h0, 100)
	l.mu.Lock()
	kept = len(l.seen[0])
	l.mu.Unlock()
	if kept != 0 {
		t.Fatalf("entries survived both clocks advancing to 100: %d left", kept)
	}
}

// TestLedgerClockMonotonicConcurrent hammers advance with shuffled now
// values from concurrent writers, one handle each (the shard-tick
// pattern under -race): every clock must land on its maximum.
func TestLedgerClockMonotonicConcurrent(t *testing.T) {
	l := NewLedger(1)
	const writers = 8
	handles := make([]int, writers)
	for i := range handles {
		handles[i] = l.attach()
	}
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i, h int) {
			defer wg.Done()
			// A deterministic shuffle of 1..100, different per writer.
			for step := 0; step < 100; step++ {
				l.advance(h, int64((step*37+i)%100)+1)
			}
		}(i, h)
	}
	wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, h := range handles {
		if l.clocks[h] != 100 {
			t.Errorf("writer %d clock = %d, want 100", i, l.clocks[h])
		}
	}
}

// TestLedgerConcurrent exercises the ledger from many caches at once
// (meaningful under -race).
func TestLedgerConcurrent(t *testing.T) {
	reg := ledgerRegistry(t, 4)
	l := NewLedger(reg.Len())
	caches := make([]*Cache, 4)
	for i := range caches {
		caches[i] = NewShared(reg)
		caches[i].SetLedger(l)
		if err := caches[i].Retain("q", []int{4, 4, 4, 4}); err != nil {
			t.Fatal(err)
		}
		caches[i].Advance(1)
	}
	var wg sync.WaitGroup
	for i, c := range caches {
		wg.Add(1)
		go func(i int, c *Cache) {
			defer wg.Done()
			for step := 0; step < 100; step++ {
				c.Pull(i%4, 4)
				c.Advance(1)
			}
		}(i, c)
	}
	wg.Wait()
	if s := l.Stats(); s.Transfers == 0 {
		t.Fatal("no transfers recorded")
	}
}

// The item relay is the fleet-global L2 tier of the two-tier cache: shard
// workers keep private L1 caches (Cache), and the relay holds every item
// any shard has already purchased. On an L1 miss the cache consults the
// relay before going to the stream: if another shard already paid the
// acquisition cost, the item is transferred at a configurable fraction of
// that cost instead of re-acquired. Any item is therefore purchased once
// fleet-wide; what the PR 5 ledger measures as duplicate spend becomes
// transfer spend at frac << 1 of the acquisition price.
package acquisition

import (
	"sync"

	"paotr/internal/stream"
)

// relayEntry is one published item: the value, the full acquisition cost
// its purchaser paid, and the publish epoch (for delta export to remote
// workers). imported marks entries seeded from another relay — a worker's
// mirror must not re-export them as its own purchases.
type relayEntry struct {
	value    float64
	cost     float64
	pub      int64
	imported bool
}

// ItemRelay is the fleet-global L2 item index shared by the caches of all
// shard workers. The first cache fleet-wide to pull item (k, seq) pays
// the full per-item acquisition cost and publishes the value; every later
// cache pays frac of that cost and takes the value from the relay. Totals
// are therefore order-independent under concurrent shard ticks: an item
// needed by m shards costs full + (m-1)*frac*full no matter which shard
// wins the purchase. All methods are safe for concurrent use.
type ItemRelay struct {
	mu   sync.Mutex
	frac float64
	// entries[k][seq] holds the published items of stream k.
	entries []map[int64]relayEntry
	// keep[k] is the largest window depth ever pulled on stream k;
	// entries older than twice that below the slowest attached cache's
	// clock are pruned (no attached cache can pull them again).
	keep []int
	// clocks[h] is the time step of attached cache h; pruning respects
	// min(clocks) so a lagging cache never loses entries it could hit.
	clocks []int64
	// epoch counts publishes, stamping entries for delta export.
	epoch int64

	purchases     int64
	hits          int64
	transferSpend float64
	savedSpend    float64
	// publishHook, when set, observes each first publish: the first
	// cache fleet-wide to purchase an item reports its stream, sequence
	// and full acquisition cost (see SetPublishHook).
	publishHook func(stream int, seq int64, cost float64)
}

// NewItemRelay creates a relay for registries with n streams. frac is the
// per-item transfer cost as a fraction of the item's acquisition cost,
// clamped to [0, 1] (1 degenerates to no saving, 0 to free transfers).
func NewItemRelay(n int, frac float64) *ItemRelay {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r := &ItemRelay{frac: frac, entries: make([]map[int64]relayEntry, n), keep: make([]int, n)}
	for k := range r.entries {
		r.entries[k] = map[int64]relayEntry{}
	}
	return r
}

// TransferFrac returns the configured transfer cost fraction.
func (r *ItemRelay) TransferFrac() float64 { return r.frac }

// SetPublishHook installs an observer of first publishes: whenever an
// item is purchased at full acquisition cost and published to the relay
// (once per unique item fleet-wide), the hook receives its stream,
// sequence and cost. The hook is called with the relay's lock held and
// must not call back into the relay; the sharded coordinator journals
// the events (see internal/obs).
func (r *ItemRelay) SetPublishHook(fn func(stream int, seq int64, cost float64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.publishHook = fn
}

// Attach registers an external clock (e.g. the remote coordinator's tick
// counter, which has no local cache attached to this relay) and returns
// its handle for Advance. Caches attach themselves via SetRelay.
func (r *ItemRelay) Attach() int { return r.attach() }

// Advance moves external clock h to now, pruning like a cache's advance.
func (r *ItemRelay) Advance(h int, now int64) { r.advance(h, now) }

// attach registers one cache's clock and returns its handle for advance.
func (r *ItemRelay) attach() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clocks = append(r.clocks, 0)
	return len(r.clocks) - 1
}

// advance moves attached cache h's clock to now and prunes entries no
// attached cache can pull anymore (older than twice the deepest window
// below the slowest clock).
func (r *ItemRelay) advance(h int, now int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h < 0 || h >= len(r.clocks) || now <= r.clocks[h] {
		return
	}
	r.clocks[h] = now
	floor := r.clocks[0]
	for _, c := range r.clocks[1:] {
		if c < floor {
			floor = c
		}
	}
	for k, m := range r.entries {
		horizon := int64(2 * r.keep[k])
		for seq := range m {
			if floor-seq > horizon {
				delete(m, seq)
			}
		}
	}
}

// acquire resolves one L1 miss through the relay: a hit transfers the
// published value at frac of its acquisition cost (relayed true); a miss
// acquires from the stream at full cost and publishes. d is the window
// depth of the pull, bounding how far back future pulls reach (pruning).
func (r *ItemRelay) acquire(k int, seq int64, d int, st stream.Stream) (it stream.Item, cost, full float64, relayed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d > r.keep[k] {
		r.keep[k] = d
	}
	if e, ok := r.entries[k][seq]; ok {
		tc := r.frac * e.cost
		r.hits++
		r.transferSpend += tc
		r.savedSpend += e.cost - tc
		return stream.Item{Seq: seq, Value: e.value}, tc, e.cost, true
	}
	it = st.Source.At(seq)
	full = st.PerItemAt(seq)
	r.epoch++
	r.entries[k][seq] = relayEntry{value: it.Value, cost: full, pub: r.epoch}
	r.purchases++
	if r.publishHook != nil {
		r.publishHook(k, seq, full)
	}
	return it, full, full, false
}

// RelayStats summarizes fleet-global relay traffic.
type RelayStats struct {
	// Purchases counts items acquired at full stream cost (once per item
	// fleet-wide); Hits counts transfers served from the relay instead of
	// re-acquiring.
	Purchases int64 `json:"purchases"`
	Hits      int64 `json:"hits"`
	// TransferSpend is the cost paid for relay transfers (frac of the
	// acquisition cost each); SavedSpend is the acquisition cost those
	// hits avoided, net of the transfer price.
	TransferSpend float64 `json:"transfer_spend"`
	SavedSpend    float64 `json:"saved_spend"`
	// TransferFrac echoes the configured per-item transfer cost fraction.
	TransferFrac float64 `json:"transfer_frac"`
}

// Stats returns a snapshot of the relay's counters.
func (r *ItemRelay) Stats() RelayStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RelayStats{
		Purchases:     r.purchases,
		Hits:          r.hits,
		TransferSpend: r.transferSpend,
		SavedSpend:    r.savedSpend,
		TransferFrac:  r.frac,
	}
}

// RelayItem is one published item in wire form, for syncing a remote
// worker's relay mirror with the coordinator's global index. Depth
// carries the exporting relay's window depth for the item's stream, so
// the receiver's pruning horizon (keep) covers it.
type RelayItem struct {
	Stream int     `json:"stream"`
	Seq    int64   `json:"seq"`
	Value  float64 `json:"value"`
	Cost   float64 `json:"cost"`
	Depth  int     `json:"depth,omitempty"`
}

// Export returns the items this relay's own caches published after epoch
// since (imported entries are excluded — they are some other relay's
// purchases), together with the current epoch to pass as the next since.
func (r *ItemRelay) Export(since int64) ([]RelayItem, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RelayItem
	for k, m := range r.entries {
		for seq, e := range m {
			if !e.imported && e.pub > since {
				out = append(out, RelayItem{Stream: k, Seq: seq, Value: e.value, Cost: e.cost, Depth: r.keep[k]})
			}
		}
	}
	return out, r.epoch
}

// Import seeds entries published elsewhere: subsequent local misses on
// them pay transfer cost. Existing entries win (the item was purchased
// here first); imported entries are never re-exported.
func (r *ItemRelay) Import(items []RelayItem) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, it := range items {
		if it.Stream < 0 || it.Stream >= len(r.entries) {
			continue
		}
		if it.Depth > r.keep[it.Stream] {
			r.keep[it.Stream] = it.Depth
		}
		if _, ok := r.entries[it.Stream][it.Seq]; ok {
			continue
		}
		r.entries[it.Stream][it.Seq] = relayEntry{value: it.Value, cost: it.Cost, imported: true}
	}
}

// Publish records purchases a remote worker's mirror made, into this
// (coordinator-side) global index: unlike Import, published entries stay
// exportable, so later deltas relay them on to every other worker. The
// first publisher of an item wins; re-publishing is a no-op.
func (r *ItemRelay) Publish(items []RelayItem) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, it := range items {
		if it.Stream < 0 || it.Stream >= len(r.entries) {
			continue
		}
		if it.Depth > r.keep[it.Stream] {
			r.keep[it.Stream] = it.Depth
		}
		if _, ok := r.entries[it.Stream][it.Seq]; ok {
			continue
		}
		r.epoch++
		r.entries[it.Stream][it.Seq] = relayEntry{value: it.Value, cost: it.Cost, pub: r.epoch}
	}
}

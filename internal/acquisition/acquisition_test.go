package acquisition

import (
	"math"
	"sync"
	"testing"

	"paotr/internal/stream"
)

func testRegistry(t *testing.T) *stream.Registry {
	t.Helper()
	reg := stream.NewRegistry()
	if err := reg.Add(stream.Constant("a", 1), stream.CostModel{BytesPerItem: 1, JoulesPerByte: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(stream.Constant("b", 2), stream.CostModel{BytesPerItem: 2, JoulesPerByte: 1}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestNewCacheValidation(t *testing.T) {
	reg := testRegistry(t)
	if _, err := NewCache(reg, []int{1}); err == nil {
		t.Error("horizon length mismatch accepted")
	}
	if _, err := NewCache(reg, []int{3, 2}); err != nil {
		t.Error(err)
	}
}

func TestPullChargesOnlyMissing(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{5, 5})
	c.Advance(10)
	// First pull of 3 items costs 3 * 1.
	if got := c.Pull(0, 3); got != 3 {
		t.Errorf("first pull = %v, want 3", got)
	}
	// Re-pulling the same window is free.
	if got := c.Pull(0, 3); got != 0 {
		t.Errorf("re-pull = %v, want 0", got)
	}
	// Extending the window pays only the extra items.
	if got := c.Pull(0, 5); got != 2 {
		t.Errorf("extension = %v, want 2", got)
	}
	if c.Spent() != 5 {
		t.Errorf("Spent = %v, want 5", c.Spent())
	}
	if c.Pulls(0) != 5 || c.Pulls(1) != 0 {
		t.Errorf("Pulls = %d/%d", c.Pulls(0), c.Pulls(1))
	}
}

func TestAgingReusesOverlap(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{5, 5})
	c.Advance(10)
	c.Pull(0, 4) // items at steps 6..9
	c.Advance(1) // now 11; cached items are now the 2nd..5th most recent
	if got := c.Have(0); got != 0 {
		t.Errorf("Have = %d, want 0 (most recent item missing)", got)
	}
	if got := c.Missing(0, 5); got != 1 {
		t.Errorf("Missing(5) = %d, want 1 (only the newest item)", got)
	}
	// Pulling 5 items must fetch only the new one.
	if got := c.Pull(0, 5); got != 1 {
		t.Errorf("pull after advance = %v, want 1", got)
	}
	if got := c.Have(0); got != 5 {
		t.Errorf("Have = %d, want 5", got)
	}
}

func TestEviction(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{2, 5})
	c.Advance(10)
	c.Pull(0, 2)
	c.Advance(5) // both items now older than horizon 2
	if got := c.Missing(0, 2); got != 2 {
		t.Errorf("Missing = %d, want 2 after eviction", got)
	}
}

func TestValues(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{3, 3})
	c.Advance(5)
	c.Pull(1, 2)
	vals, err := c.Values(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 2 {
		t.Errorf("Values = %v", vals)
	}
	if _, err := c.Values(1, 3); err == nil {
		t.Error("Values beyond cached window should error")
	}
	if _, err := c.Values(0, 1); err == nil {
		t.Error("Values on unpulled stream should error")
	}
}

func TestPerStreamCosts(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{3, 3})
	c.Advance(4)
	if got := c.Pull(1, 2); math.Abs(got-4) > 1e-12 { // 2 items * cost 2
		t.Errorf("stream b pull = %v, want 4", got)
	}
}

func TestResetAccounting(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{3, 3})
	c.Advance(4)
	c.Pull(0, 2)
	c.ResetAccounting()
	if c.Spent() != 0 || c.Pulls(0) != 0 {
		t.Error("accounting not reset")
	}
	// Cache contents survive the reset.
	if got := c.Pull(0, 2); got != 0 {
		t.Errorf("re-pull after reset = %v, want 0", got)
	}
}

func TestAdvanceNonPositive(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{3, 3})
	c.Advance(0)
	c.Advance(-5)
	if c.Now() != 0 {
		t.Errorf("Now = %d", c.Now())
	}
}

// TestMatchesAnalyticalModel: pulling windows d1 then d2 >= d1 must cost
// d1*c + (d2-d1)*c, the incremental-cost model of the scheduling theory.
func TestMatchesAnalyticalModel(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{10, 10})
	c.Advance(20)
	per := reg.At(0).Cost.PerItem()
	for d1 := 1; d1 <= 5; d1++ {
		for d2 := d1; d2 <= 10; d2++ {
			c2, _ := NewCache(reg, []int{10, 10})
			c2.Advance(20)
			first := c2.Pull(0, d1)
			second := c2.Pull(0, d2)
			if math.Abs(first-float64(d1)*per) > 1e-12 ||
				math.Abs(second-float64(d2-d1)*per) > 1e-12 {
				t.Fatalf("d1=%d d2=%d: paid %v then %v", d1, d2, first, second)
			}
		}
	}
	_ = c
}

func TestRetainReleaseRecomputesHorizons(t *testing.T) {
	reg := testRegistry(t)
	c := NewShared(reg)
	if c.Horizon(0) != 0 || c.Horizon(1) != 0 {
		t.Fatal("shared cache must start with zero horizons")
	}
	if err := c.Retain("q1", []int{3, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Retain("q2", []int{1, 5}); err != nil {
		t.Fatal(err)
	}
	if c.Horizon(0) != 3 || c.Horizon(1) != 5 {
		t.Fatalf("horizons = %d,%d, want elementwise max 3,5", c.Horizon(0), c.Horizon(1))
	}
	if err := c.Retain("short", []int{1}); err == nil {
		t.Fatal("mis-sized claim accepted")
	}

	// Items survive as long as the widest claim wants them...
	c.Advance(10)
	c.Pull(1, 5)
	if got := c.Have(1); got != 5 {
		t.Fatalf("Have = %d, want 5", got)
	}
	// ...and shrinking the claim evicts immediately.
	c.Release("q2")
	if c.Horizon(1) != 1 {
		t.Fatalf("horizon after release = %d, want 1", c.Horizon(1))
	}
	if got := c.Have(1); got != 1 {
		t.Fatalf("Have after release = %d, want 1 (evicted to new horizon)", got)
	}
}

func TestAcquireAtomicPullAndValues(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{3, 3})
	c.Advance(5)
	vals, cost, err := c.Acquire(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	per := reg.At(0).Cost.PerItem()
	if math.Abs(cost-3*per) > 1e-12 {
		t.Errorf("cost = %v, want %v", cost, 3*per)
	}
	if len(vals) != 3 || vals[0] != 1 {
		t.Errorf("vals = %v", vals)
	}
	// Second acquire is free: everything cached.
	_, cost, err = c.Acquire(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("re-acquire cost = %v, want 0", cost)
	}
	st := c.Stats()
	if st.Requested != 6 || st.Transferred != 3 {
		t.Errorf("stats = %+v, want 6 requested / 3 transferred", st)
	}
	if math.Abs(st.HitRate()-0.5) > 1e-12 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
}

// TestConcurrentPullsChargeOnce: many goroutines acquiring the same
// window concurrently must together pay for each item exactly once.
func TestConcurrentPullsChargeOnce(t *testing.T) {
	reg := testRegistry(t)
	c, _ := NewCache(reg, []int{8, 8})
	c.Advance(100)
	var wg sync.WaitGroup
	costs := make([]float64, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, cost, err := c.Acquire(g%2, 1+(i+g)%8)
				if err != nil {
					t.Error(err)
					return
				}
				costs[g] += cost
			}
		}(g)
	}
	wg.Wait()
	total := 0.0
	for _, v := range costs {
		total += v
	}
	want := 8*reg.At(0).Cost.PerItem() + 8*reg.At(1).Cost.PerItem()
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("fleet paid %v, want each item charged once: %v", total, want)
	}
	if math.Abs(c.Spent()-want) > 1e-9 {
		t.Errorf("Spent = %v, want %v", c.Spent(), want)
	}
}

// TestPrefetchDoesNotCountRequests: a prefetch transfers and charges for
// missing items but leaves the request counter alone, so the hit rate
// keeps measuring the readers' traffic (the batched-acquisition path of
// the service must not inflate it).
func TestPrefetchDoesNotCountRequests(t *testing.T) {
	reg := testRegistry(t)
	c, err := NewCache(reg, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(5)
	items, cost := c.Prefetch(0, 3)
	if items != 3 || cost != 3 {
		t.Fatalf("prefetch = %d items, %.1f J; want 3 items, 3 J", items, cost)
	}
	st := c.Stats()
	if st.Requested != 0 || st.Transferred != 3 {
		t.Fatalf("after prefetch: requested=%d transferred=%d, want 0/3", st.Requested, st.Transferred)
	}
	// The reader that follows requests the same items, all served from
	// the cache for free. The combined stats are exactly what a direct
	// cold Acquire would have produced (3 requested, 3 transferred):
	// prefetching must not move the hit rate in either direction.
	if _, cost, err := c.Acquire(0, 3); err != nil || cost != 0 {
		t.Fatalf("acquire after prefetch: cost %.1f, err %v", cost, err)
	}
	st = c.Stats()
	if st.Requested != 3 || st.Transferred != 3 || st.HitRate() != 0 {
		t.Fatalf("after acquire: %+v (hit rate %.2f), want 3/3 and hit rate 0 as without prefetch", st, st.HitRate())
	}
	// Prefetching again is free and transfers nothing.
	if items, cost := c.Prefetch(0, 3); items != 0 || cost != 0 {
		t.Fatalf("second prefetch = %d items, %.1f J; want 0, 0", items, cost)
	}
}

package acquisition

import (
	"fmt"
	"sync"
	"testing"

	"paotr/internal/corpus"
	"paotr/internal/stream"
)

// stepCost is a dynamic price that alternates per step, covering the
// DynamicCost path in the concurrent-readers tests below.
type stepCost struct{}

func (stepCost) PerItemAt(step int64) float64 {
	if step%2 == 0 {
		return 1
	}
	return 3
}

// raceRegistry builds one registry holding every source kind the stream
// package ships: random walks (stateful, mutex-guarded memo), sine,
// spikes and uniform (stateless per-step PCG), a constant, and a
// dynamic-cost stream. Each call builds fresh sources, so one instance
// can serve as ground truth for another driven concurrently.
func raceRegistry() *stream.Registry {
	reg := stream.NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(reg.Add(stream.HeartRate(11), stream.BLE))
	must(reg.Add(stream.SpO2(12), stream.BLE))
	must(reg.Add(stream.Accelerometer(13), stream.WiFi))
	must(reg.Add(stream.GPSSpeed(14), stream.BLE))
	must(reg.Add(stream.Temperature(15), stream.BLE))
	must(reg.Add(stream.Uniform("uniform", 16), stream.BLE))
	must(reg.Add(stream.Constant("constant", 3.5), stream.BLE))
	must(reg.AddDynamic(stream.Uniform("dynamic", 17), stream.CostModel{BaseJoules: 2}, stepCost{}))
	return reg
}

// TestSourceAtConcurrentReaders hammers every Source.At and PerItemAt
// implementation from concurrent readers over overlapping, interleaved
// step ranges and checks each value against a serially-computed ground
// truth from an identically-seeded fresh registry. Run with -race this
// pins the audit result that all sources are safe for concurrent use:
// the random walks' memo is mutex-guarded (and races to extend here,
// since the shared registry starts with cold memos), the rest derive
// each value from (seed, step) without shared state.
func TestSourceAtConcurrentReaders(t *testing.T) {
	shared := raceRegistry()
	refReg := raceRegistry()
	const steps = 400
	n := shared.Len()
	refVal := make([][]float64, n)
	refCost := make([][]float64, n)
	for k := 0; k < n; k++ {
		refVal[k] = make([]float64, steps)
		refCost[k] = make([]float64, steps)
		st := refReg.At(k)
		for s := int64(0); s < steps; s++ {
			refVal[k][s] = st.Source.At(s).Value
			refCost[k][s] = st.PerItemAt(s)
		}
	}

	const readers = 8
	errs := make(chan string, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Each reader walks all steps but starts at a different
			// offset, so memoized prefixes are extended concurrently
			// from many positions at once.
			for i := 0; i < steps; i++ {
				s := (i + r*53) % steps
				for k := 0; k < n; k++ {
					st := shared.At(k)
					if got := st.Source.At(int64(s)).Value; got != refVal[k][s] {
						errs <- fmt.Sprintf("reader %d: stream %d At(%d) = %v, want %v", r, k, s, got, refVal[k][s])
						return
					}
					if got := st.PerItemAt(int64(s)); got != refCost[k][s] {
						errs <- fmt.Sprintf("reader %d: stream %d PerItemAt(%d) = %v, want %v", r, k, s, got, refCost[k][s])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestConcurrentCachesSharedRegistry drives one shared registry from K
// concurrent acquisition caches — the shard-worker configuration, where
// each worker owns a private L1 cache but all of them read the same
// sources. Every cache must observe identical values and pay identical
// spend regardless of interleaving. Covered registries: the synthetic
// sensor mix (including mutex-memoized random walks) and the corpus
// regime generator with an active dynamic-cost shift.
func TestConcurrentCachesSharedRegistry(t *testing.T) {
	run := func(t *testing.T, mk func() *stream.Registry) {
		shared := mk()
		n := shared.Len()
		const caches, ticks, depth = 4, 50, 8
		windows := make([]int, n)
		for k := range windows {
			windows[k] = depth
		}

		logs := make([][]float64, caches)
		spend := make([]float64, caches)
		var wg sync.WaitGroup
		for ci := 0; ci < caches; ci++ {
			c := NewSharedStriped(shared, 0)
			if err := c.Retain("race", windows); err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(ci int, c *Cache) {
				defer wg.Done()
				var log []float64
				for tick := 0; tick < ticks; tick++ {
					c.Advance(1)
					for k := 0; k < n; k++ {
						vals, _, err := c.Acquire(k, depth)
						if err != nil {
							t.Errorf("cache %d: acquire stream %d: %v", ci, k, err)
							return
						}
						log = append(log, vals...)
					}
				}
				logs[ci] = log
				spend[ci] = c.Spent()
			}(ci, c)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		for ci := 1; ci < caches; ci++ {
			if len(logs[ci]) != len(logs[0]) {
				t.Fatalf("cache %d saw %d values, cache 0 saw %d", ci, len(logs[ci]), len(logs[0]))
			}
			for i := range logs[ci] {
				if logs[ci][i] != logs[0][i] {
					t.Fatalf("cache %d value %d = %v, cache 0 = %v", ci, i, logs[ci][i], logs[0][i])
				}
			}
			if spend[ci] != spend[0] {
				t.Fatalf("cache %d spent %v, cache 0 spent %v", ci, spend[ci], spend[0])
			}
		}

		// Ground truth from a fresh, never-raced registry: one serial
		// cache replaying the same schedule must see the same values.
		ref := mk()
		rc := NewSharedStriped(ref, 0)
		if err := rc.Retain("race", windows); err != nil {
			t.Fatal(err)
		}
		var want []float64
		for tick := 0; tick < ticks; tick++ {
			rc.Advance(1)
			for k := 0; k < n; k++ {
				vals, _, err := rc.Acquire(k, depth)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, vals...)
			}
		}
		if len(want) != len(logs[0]) {
			t.Fatalf("serial reference saw %d values, concurrent caches saw %d", len(want), len(logs[0]))
		}
		for i := range want {
			if logs[0][i] != want[i] {
				t.Fatalf("concurrent value %d = %v, serial reference = %v", i, logs[0][i], want[i])
			}
		}
		if spend[0] != rc.Spent() {
			t.Fatalf("concurrent spend %v, serial reference %v", spend[0], rc.Spent())
		}
	}

	t.Run("wearables", func(t *testing.T) { run(t, raceRegistry) })
	t.Run("regime", func(t *testing.T) {
		run(t, func() *stream.Registry {
			return corpus.RegimeRegistry(corpus.RegimeConfig{Streams: 4, ShiftStep: 20, Seed: 9})
		})
	})
}

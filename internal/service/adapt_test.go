package service

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"paotr/internal/adapt"
	"paotr/internal/corpus"
	"paotr/internal/engine"
)

// regimeService builds a service over the regime-shift corpus with every
// scenario query registered.
func regimeService(tb testing.TB, cfg corpus.RegimeConfig, cumulative bool, opts ...Option) *Service {
	tb.Helper()
	if cumulative {
		opts = append(opts, WithCumulativeEstimator())
	}
	svc := New(corpus.RegimeRegistry(cfg), opts...)
	for i, q := range corpus.RegimeQueries(cfg) {
		if err := svc.Register(fmt.Sprintf("q%d", i), q); err != nil {
			tb.Fatal(err)
		}
	}
	return svc
}

// tickAll runs n ticks and fails on any execution error.
func tickAll(tb testing.TB, svc *Service, n int) {
	tb.Helper()
	for _, tr := range svc.Run(n) {
		for _, e := range tr.Executions {
			if e.Err != "" {
				tb.Fatalf("tick %d query %s: %s", tr.Tick, e.ID, e.Err)
			}
		}
	}
}

// TestStationaryWindowedMatchesCumulative: acceptance — on a one-regime
// (stationary) run the windowed default must produce byte-identical
// schedules to the cumulative baseline, pay exactly the same costs, and
// trip no detectors. (While a predicate's window is not yet full the two
// estimators are algebraically identical; once full, the probabilities
// of this corpus are separated widely enough that window noise cannot
// reorder any schedule.)
func TestStationaryWindowedMatchesCumulative(t *testing.T) {
	// Probabilities chosen so every pairwise planning ratio (C/p for OR
	// placement, C/(1-p) for AND short-circuit order) is separated by
	// several windowed-estimate standard deviations — window noise then
	// cannot reorder any schedule.
	cfg := corpus.RegimeConfig{Seed: 23, ProbsA: []float64{0.5, 0.25, 0.12, 0.05}}
	const ticks = 300

	// Engine-level: identical per-tick schedules on private caches.
	runEngine := func(est *adapt.Windowed) []engine.Result {
		var opts []engine.Option
		if est != nil {
			opts = append(opts, engine.WithEstimator(est))
		}
		eng := engine.New(corpus.RegimeRegistry(cfg), opts...)
		q, err := eng.Compile(corpus.RegimeQueries(cfg)[0])
		if err != nil {
			t.Fatal(err)
		}
		cache, err := q.NewCache()
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Run(cache, ticks)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ad := adapt.NewWindowed(adapt.Config{})
	windowed := runEngine(ad)
	cumulative := runEngine(nil)
	for i := range windowed {
		ws, cs := windowed[i].Schedule, cumulative[i].Schedule
		if len(ws) != len(cs) {
			t.Fatalf("tick %d: schedule lengths %d vs %d", i, len(ws), len(cs))
		}
		for j := range ws {
			if ws[j] != cs[j] {
				t.Fatalf("tick %d: windowed schedule %v != cumulative %v", i, ws, cs)
			}
		}
		if windowed[i].Value != cumulative[i].Value || windowed[i].Cost != cumulative[i].Cost {
			t.Fatalf("tick %d: (value, cost) = (%v, %v) vs (%v, %v)",
				i, windowed[i].Value, windowed[i].Cost, cumulative[i].Value, cumulative[i].Cost)
		}
	}
	if pt, ct := ad.Trips(); pt != 0 || ct != 0 {
		t.Errorf("stationary run tripped detectors: %d predicate, %d cost", pt, ct)
	}

	// Service-level: identical verdicts and identical total spend.
	wsvc := regimeService(t, cfg, false, WithWorkers(1))
	csvc := regimeService(t, cfg, true, WithWorkers(1))
	tickAll(t, wsvc, ticks)
	tickAll(t, csvc, ticks)
	wm, cm := wsvc.Metrics(), csvc.Metrics()
	if math.Abs(wm.PaidCost-cm.PaidCost) > 1e-9 {
		t.Errorf("stationary paid cost: windowed %.3f vs cumulative %.3f", wm.PaidCost, cm.PaidCost)
	}
	if wm.PredicateDetectorTrips != 0 || wm.CostDetectorTrips != 0 || wm.ReplansForced != 0 {
		t.Errorf("stationary service tripped: %+v", wm)
	}
	if wm.Estimator != "windowed" || cm.Estimator != "cumulative" {
		t.Errorf("estimator names = %q, %q", wm.Estimator, cm.Estimator)
	}
}

// measureShift runs the regime-shift scenario and returns the metrics
// snapshot at the shift tick and at the end, so post-shift J/tick can be
// compared across estimators.
func measureShift(tb testing.TB, cfg corpus.RegimeConfig, cumulative bool) (atShift, atEnd Metrics, svc *Service) {
	tb.Helper()
	svc = regimeService(tb, cfg, cumulative, WithWorkers(4))
	post := int(cfg.ShiftStep)
	tickAll(tb, svc, int(cfg.ShiftStep))
	atShift = svc.Metrics()
	tickAll(tb, svc, post)
	return atShift, svc.Metrics(), svc
}

// TestAdaptiveBeatsStaleAfterShift: acceptance — on the regime-shift
// corpus, detector-driven replanning must realize >= 15% lower J/tick
// than the cumulative-estimator baseline after the shift, the detectors
// must actually fire, and the learned per-item costs must converge to
// regime B's prices.
func TestAdaptiveBeatsStaleAfterShift(t *testing.T) {
	cfg := corpus.RegimeConfig{Seed: 17, ShiftStep: 250}
	aShift, aEnd, asvc := measureShift(t, cfg, false)
	cShift, cEnd, _ := measureShift(t, cfg, true)
	post := float64(cfg.ShiftStep)
	adaptive := (aEnd.PaidCost - aShift.PaidCost) / post
	stale := (cEnd.PaidCost - cShift.PaidCost) / post
	saving := 1 - adaptive/stale
	t.Logf("post-shift J/tick: adaptive %.2f vs stale %.2f (%.1f%% saving); trips=%d/%d replans=%d",
		adaptive, stale, 100*saving, aEnd.PredicateDetectorTrips, aEnd.CostDetectorTrips, aEnd.ReplansForced)
	if saving < 0.15 {
		t.Errorf("adaptive estimation saved %.1f%% post-shift J/tick, want >= 15%%", 100*saving)
	}
	if aEnd.PredicateDetectorTrips == 0 {
		t.Error("no predicate detector trips across the shift")
	}
	if aEnd.CostDetectorTrips == 0 {
		t.Error("no cost detector trips across the shift")
	}
	if aEnd.ReplansForced == 0 {
		t.Error("detector trips forced no replans")
	}
	if cEnd.PredicateDetectorTrips != 0 || cEnd.ReplansForced != 0 {
		t.Errorf("cumulative baseline reported adaptive activity: %+v", cEnd)
	}
	// Learned per-item costs converge to regime B's prices.
	normed := corpus.RegimeConfig{Seed: 17, ShiftStep: 250, Streams: 4,
		CostsB: []float64{6, 2, 4, 2}}
	for _, ps := range aEnd.PerStream {
		want := normed.CostsB[ps.Stream]
		if ps.Requested == 0 {
			continue
		}
		if math.Abs(ps.LearnedCostPerItem-want) > 0.3*want {
			t.Errorf("stream %s learned cost %.2f, want ≈ regime B %.2f",
				ps.Name, ps.LearnedCostPerItem, want)
		}
	}
	// Property: after a trip forced the replan, the fresh plans' modelled
	// expected cost per tick stays at or below what the stale plans
	// actually paid per tick — the replan is worth it by construction.
	lastTick := asvc.Tick()
	freshExpected := 0.0
	for _, e := range lastTick.Executions {
		freshExpected += e.ExpectedCost
	}
	if freshExpected > stale*1.05 {
		t.Errorf("fresh plans' expected %.2f J/tick exceeds stale plans' realized %.2f J/tick", freshExpected, stale)
	}
}

// TestAdaptStressConcurrentSharedEstimator: 8 concurrent queries over
// the shifting corpus feed one shared estimator through an 8-worker
// tick pool — the -race CI surface for the adapt subsystem. Detector
// trips, targeted invalidation and cost feedback all fire while workers
// execute concurrently.
func TestAdaptStressConcurrentSharedEstimator(t *testing.T) {
	cfg := corpus.RegimeConfig{Seed: 31, ShiftStep: 60}
	svc := New(corpus.RegimeRegistry(cfg), WithWorkers(8))
	texts := []string{
		"r0 < 0.5 OR r1 < 0.5 OR r2 < 0.5 OR r3 < 0.5",
		"r3 < 0.5 AND r0 < 0.5",
		"r1 < 0.5 OR r3 < 0.5",
		"r2 < 0.5 AND r1 < 0.5",
		"MAX(r0,2) < 0.5 OR r3 < 0.5",
		"r0 < 0.5 AND r2 < 0.5",
		"(r0 < 0.5 AND r1 < 0.5) OR (r2 < 0.5 AND r3 < 0.5)",
		"MIN(r3,2) < 0.5 OR r0 < 0.5",
	}
	for i, text := range texts {
		if err := svc.Register(fmt.Sprintf("s%d", i), text); err != nil {
			t.Fatal(err)
		}
	}
	tickAll(t, svc, 180)
	m := svc.Metrics()
	if m.Executions != int64(180*len(texts)) {
		t.Errorf("executions = %d, want %d", m.Executions, 180*len(texts))
	}
	if m.PredicateDetectorTrips == 0 || m.ReplansForced == 0 {
		t.Errorf("shift produced no adaptive activity under concurrency: %+v", m)
	}
}

// adaptBenchFile is the machine-readable BENCH_adapt.json artifact: the
// realized post-shift J/tick of detector-driven replanning versus the
// stale cumulative baseline, plus the stationary no-trip guarantee.
type adaptBenchFile struct {
	Ticks     int   `json:"ticks"`
	ShiftTick int64 `json:"shift_tick"`
	// StaleJPerTick / AdaptiveJPerTick are realized post-shift costs per
	// tick under the cumulative and windowed estimators; SavingPct their
	// relative gap.
	StaleJPerTick    float64 `json:"stale_j_per_tick"`
	AdaptiveJPerTick float64 `json:"adaptive_j_per_tick"`
	SavingPct        float64 `json:"saving_pct"`
	PredicateTrips   int64   `json:"predicate_trips"`
	CostTrips        int64   `json:"cost_trips"`
	ReplansForced    int64   `json:"replans_forced"`
	// StationaryTrips must be 0: the detectors stay quiet without a
	// shift (the windowed default then plans byte-identically to the
	// cumulative baseline; see TestStationaryWindowedMatchesCumulative).
	StationaryTrips int64 `json:"stationary_trips"`
}

// TestWriteAdaptBenchJSON emits BENCH_adapt.json when
// PAOTR_BENCH_ADAPT_JSON names an output path (the CI drift-benchmark
// artifact). It is skipped otherwise.
func TestWriteAdaptBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_ADAPT_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_ADAPT_JSON=<path> to write the benchmark artifact")
	}
	cfg := corpus.RegimeConfig{Seed: 17, ShiftStep: 250}
	aShift, aEnd, _ := measureShift(t, cfg, false)
	cShift, cEnd, _ := measureShift(t, cfg, true)
	post := float64(cfg.ShiftStep)

	stat := regimeService(t, corpus.RegimeConfig{Seed: 23}, false, WithWorkers(4))
	tickAll(t, stat, 300)
	sm := stat.Metrics()

	file := adaptBenchFile{
		Ticks:            2 * int(cfg.ShiftStep),
		ShiftTick:        cfg.ShiftStep,
		StaleJPerTick:    (cEnd.PaidCost - cShift.PaidCost) / post,
		AdaptiveJPerTick: (aEnd.PaidCost - aShift.PaidCost) / post,
		PredicateTrips:   aEnd.PredicateDetectorTrips,
		CostTrips:        aEnd.CostDetectorTrips,
		ReplansForced:    aEnd.ReplansForced,
		StationaryTrips:  sm.PredicateDetectorTrips + sm.CostDetectorTrips,
	}
	if file.StaleJPerTick > 0 {
		file.SavingPct = 100 * (1 - file.AdaptiveJPerTick/file.StaleJPerTick)
	}
	if file.SavingPct < 15 {
		t.Errorf("adaptive saving %.1f%% post-shift, want >= 15%%", file.SavingPct)
	}
	if file.StationaryTrips != 0 {
		t.Errorf("stationary run tripped %d detectors", file.StationaryTrips)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: adaptive %.2f vs stale %.2f J/tick post-shift (%.1f%% saving)",
		out, file.AdaptiveJPerTick, file.StaleJPerTick, file.SavingPct)
}

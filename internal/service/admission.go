// AdmissionGate is the service-side half of admission control: a
// Runtime wrapper that quotes every registration's marginal joint cost
// (QuoteRegister), asks the admit.Controller for a verdict, and
// enforces it. Shed registrations fail with an AdmissionError; deferred
// ones are parked in a retry queue the gate drains at tick boundaries,
// so a deferred query is eventually admitted once budgets refill or the
// overload clears — without the client having to retry. Every verdict
// is journaled (obs.EventAdmit/EventDefer/EventShed) and the
// controller's backpressure state rides along in Metrics().Admission.
//
// The gate wraps any Runtime — the plain service or the sharded
// coordinator — and is itself a Runtime, so the HTTP layer serves it
// unchanged. Building without the gate (paotrserve -admit=false) leaves
// the wrapped runtime untouched: admission off is byte-identical to the
// pre-admission service.
package service

import (
	"fmt"
	"sync"
	"time"

	"paotr/internal/admit"
	"paotr/internal/obs"
)

// AdmissionError is the typed rejection a gated Register returns for a
// Shed or Defer verdict; the HTTP layer maps it to 429 with a
// Retry-After hint and the quoted cost.
type AdmissionError struct {
	// Decision is the controller's verdict, including the quoted
	// marginal cost and, for Defer, the retry horizon in ticks.
	Decision admit.Decision
	// Queued reports that the gate parked the registration for automatic
	// retry (Defer verdicts): the client may retry, but doesn't have to.
	Queued bool
}

// Error renders the verdict operator-readably.
func (e *AdmissionError) Error() string {
	d := e.Decision
	s := fmt.Sprintf("admission %s (%s): tier=%s tenant=%s quote=%.3f J/tick",
		d.Action, d.Reason, d.Tier, d.Tenant, d.QuoteJ)
	if d.RetryAfterTicks > 0 {
		s += fmt.Sprintf(", retry after %d ticks", d.RetryAfterTicks)
	}
	return s
}

// deferredReg is one parked registration awaiting budget or headroom.
type deferredReg struct {
	id, text string
	tier     admit.Tier
	opts     []QueryOption
	// notBefore is the gate tick at which the next retry may run.
	notBefore int64
}

// AdmissionGate gates registrations on a wrapped Runtime. All methods
// are safe for concurrent use. Construct with NewAdmissionGate.
type AdmissionGate struct {
	rt   Runtime
	ctrl *admit.Controller

	mu       sync.Mutex
	ticks    int64
	deferred []*deferredReg
	byID     map[string]*deferredReg
}

// NewAdmissionGate wraps rt with admission control under ctrl's policy.
func NewAdmissionGate(rt Runtime, ctrl *admit.Controller) *AdmissionGate {
	return &AdmissionGate{rt: rt, ctrl: ctrl, byID: map[string]*deferredReg{}}
}

// Controller exposes the gate's admission controller (metrics, drills).
func (g *AdmissionGate) Controller() *admit.Controller { return g.ctrl }

// Register admits-or-rejects at the default (bronze) tier. Runtime
// surface; tiered callers use RegisterTier.
func (g *AdmissionGate) Register(id, text string, opts ...QueryOption) error {
	return g.RegisterTier(id, text, admit.TierBronze, opts...)
}

// RegisterTier quotes the registration, asks the controller, and on
// Admit registers it on the wrapped runtime. Shed returns an
// AdmissionError; Defer parks the registration for automatic retry at
// tick boundaries and returns an AdmissionError with Queued set.
func (g *AdmissionGate) RegisterTier(id, text string, tier admit.Tier, opts ...QueryOption) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, parked := g.byID[id]; parked {
		return fmt.Errorf("%w: %q (deferred)", ErrDuplicateID, id)
	}
	return g.admitLocked(&deferredReg{id: id, text: text, tier: tier, opts: opts}, false)
}

// admitLocked runs one quote-decide-enforce round for reg. Caller holds
// g.mu. When requeue is set a Defer verdict re-parks the registration
// instead of growing the queue.
func (g *AdmissionGate) admitLocked(reg *deferredReg, requeue bool) error {
	quote, err := g.rt.QuoteRegister(reg.id, reg.text, reg.opts...)
	if err != nil {
		if requeue {
			// A parked registration that stopped quoting (its id was
			// taken, its streams vanished) is dropped, not retried forever.
			g.dropLocked(reg.id)
		}
		return err
	}
	d := g.ctrl.Decide(admit.Request{
		ID:       reg.id,
		Tenant:   admit.TenantOf(reg.id),
		Tier:     reg.tier,
		QuoteJ:   quote.MarginalJPerTick,
		Deferred: requeue,
	})
	g.journal(reg.id, d)
	switch d.Action {
	case admit.Admit:
		if err := g.rt.Register(reg.id, reg.text, reg.opts...); err != nil {
			return err
		}
		if requeue {
			g.dropLocked(reg.id)
		}
		return nil
	case admit.Defer:
		reg.notBefore = g.ticks + int64(d.RetryAfterTicks)
		if !requeue {
			g.deferred = append(g.deferred, reg)
			g.byID[reg.id] = reg
		}
		return &AdmissionError{Decision: d, Queued: true}
	default: // Shed
		if requeue {
			g.dropLocked(reg.id)
		}
		return &AdmissionError{Decision: d}
	}
}

// journal appends the verdict to the wrapped runtime's event journal.
func (g *AdmissionGate) journal(id string, d admit.Decision) {
	typ := obs.EventAdmit
	switch d.Action {
	case admit.Defer:
		typ = obs.EventDefer
	case admit.Shed:
		typ = obs.EventShed
	}
	g.rt.Journal().Append(obs.Event{
		Type:   typ,
		Tick:   g.ticks,
		Shard:  -1,
		Stream: -1,
		Pred:   id,
		Before: d.QuoteJ,
		Count:  d.RetryAfterTicks,
		Detail: fmt.Sprintf("tier=%s tenant=%s reason=%s", d.Tier, d.Tenant, d.Reason),
	})
}

// dropLocked removes id from the defer queue. Caller holds g.mu.
func (g *AdmissionGate) dropLocked(id string) {
	if _, ok := g.byID[id]; !ok {
		return
	}
	delete(g.byID, id)
	for i, reg := range g.deferred {
		if reg.id == id {
			g.deferred = append(g.deferred[:i], g.deferred[i+1:]...)
			break
		}
	}
}

// Tick retries due deferred registrations, advances the wrapped
// runtime by one tick, and feeds the tick's total latency into the
// controller's SLO window.
func (g *AdmissionGate) Tick() TickResult {
	g.retryDeferred()
	start := time.Now()
	res := g.rt.Tick()
	g.ctrl.ObserveTick(time.Since(start))
	g.mu.Lock()
	g.ticks++
	g.mu.Unlock()
	return res
}

// Run ticks n times through the gate (so deferred retries and SLO
// accounting happen every tick) and returns the per-tick results.
func (g *AdmissionGate) Run(n int) []TickResult {
	out := make([]TickResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Tick())
	}
	return out
}

// retryDeferred re-runs admission for every parked registration whose
// retry horizon has passed. Admitted and shed entries leave the queue;
// still-deferred ones get a fresh horizon.
func (g *AdmissionGate) retryDeferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.deferred) == 0 {
		return
	}
	due := make([]*deferredReg, 0, len(g.deferred))
	for _, reg := range g.deferred {
		if reg.notBefore <= g.ticks {
			due = append(due, reg)
		}
	}
	for _, reg := range due {
		// Errors are the queue's own state transitions (still deferred,
		// shed, stale): nothing to propagate mid-tick.
		_ = g.admitLocked(reg, true)
	}
}

// Unregister removes a registered query, or cancels a still-deferred
// registration.
func (g *AdmissionGate) Unregister(id string) error {
	g.mu.Lock()
	if _, parked := g.byID[id]; parked {
		g.dropLocked(id)
		g.mu.Unlock()
		return nil
	}
	g.mu.Unlock()
	return g.rt.Unregister(id)
}

// DeferredIDs lists the parked registrations in arrival order.
func (g *AdmissionGate) DeferredIDs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.deferred))
	for i, reg := range g.deferred {
		out[i] = reg.id
	}
	return out
}

// Metrics returns the wrapped runtime's metrics with the admission
// controller's backpressure snapshot attached.
func (g *AdmissionGate) Metrics() Metrics {
	m := g.rt.Metrics()
	snap := g.ctrl.Snapshot()
	g.mu.Lock()
	snap.DeferredPending = len(g.deferred)
	g.mu.Unlock()
	m.Admission = &snap
	return m
}

// The remaining Runtime surface delegates to the wrapped runtime.

// QuoteRegister prices a registration on the wrapped runtime.
func (g *AdmissionGate) QuoteRegister(id, text string, opts ...QueryOption) (Quote, error) {
	return g.rt.QuoteRegister(id, text, opts...)
}

// QueryIDs lists the wrapped runtime's registered query ids (parked
// deferred registrations are not registered and do not appear).
func (g *AdmissionGate) QueryIDs() []string { return g.rt.QueryIDs() }

// Results reads back a query's recent executions.
func (g *AdmissionGate) Results(id string, n int) ([]Execution, error) { return g.rt.Results(id, n) }

// QueryMetrics reads back one query's aggregates.
func (g *AdmissionGate) QueryMetrics(id string) (QueryMetrics, error) { return g.rt.QueryMetrics(id) }

// Journal exposes the wrapped runtime's event journal.
func (g *AdmissionGate) Journal() *obs.Journal { return g.rt.Journal() }

// TickTraces exposes the wrapped runtime's sampled tick traces.
func (g *AdmissionGate) TickTraces(tick int64) []obs.TickTrace { return g.rt.TickTraces(tick) }

// TraceTicks lists the wrapped runtime's sampled ticks.
func (g *AdmissionGate) TraceTicks() []int64 { return g.rt.TraceTicks() }

// SetTraceSampling changes the wrapped runtime's tracer period.
func (g *AdmissionGate) SetTraceSampling(n int) { g.rt.SetTraceSampling(n) }

// TraceSampling reports the wrapped runtime's tracer period.
func (g *AdmissionGate) TraceSampling() int { return g.rt.TraceSampling() }

var _ Runtime = (*AdmissionGate)(nil)

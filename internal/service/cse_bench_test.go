package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"paotr/internal/corpus"
	"paotr/internal/stream"
)

// cseBenchService registers a duplicated-shape fleet for the CSE
// benchmark (one worker, so per-tick work is deterministic).
func cseBenchService(tb testing.TB, cfg corpus.CSEConfig, opts ...Option) *Service {
	tb.Helper()
	reg := stream.NewRegistry()
	for i, name := range cfg.StreamNames() {
		if err := reg.Add(stream.Uniform(name, uint64(i+1)), stream.CostModel{BaseJoules: 1}); err != nil {
			tb.Fatal(err)
		}
	}
	// History 8 on every arm: the per-identity Results buffer is an
	// orthogonal O(tenants*history) product feature — at 10k tenants the
	// default of 64 retains ~640k executions whose GC scanning would
	// dominate the measurement on both sides of the comparison.
	svc := New(reg, append([]Option{WithWorkers(1), WithHistory(8)}, opts...)...)
	for _, q := range corpus.CSEFleet(cfg) {
		if err := svc.Register(q.ID, q.Text); err != nil {
			tb.Fatal(err)
		}
	}
	return svc
}

// timeTicks returns the average steady-state wall-clock time of one
// tick, discarding each result (Run would retain every tick's execution
// slice and measure the garbage collector instead of the tick).
func timeTicks(svc *Service, warmup, ticks int) time.Duration {
	for i := 0; i < warmup; i++ {
		svc.Tick()
	}
	t0 := time.Now()
	for i := 0; i < ticks; i++ {
		svc.Tick()
	}
	return time.Since(t0) / time.Duration(ticks)
}

// cseBenchFile is the machine-readable shape-factoring artifact tracked
// PR-over-PR. SpeedupGated is the only gated metric: the raw factored
// speedup on a 10k-tenant/100-shape fleet is host-noisy far above the
// acceptance floor, so the gate watches a capped value — it moves only
// when factoring genuinely degrades toward the floor, not when a fast
// host makes the headline bigger.
type cseBenchFile struct {
	GoMaxProcs int `json:"gomaxprocs"`
	Tenants    int `json:"tenants"`
	Shapes     int `json:"shapes"`
	// Per-tick wall-clock of the 10k-tenant fleet with factoring on and
	// off under per-query planning (see the writer for why), of the
	// factored fleet under the full default pipeline, and of a 100-query
	// fleet holding one subscriber per shape.
	FactoredTickMs   float64 `json:"factored_tick_ms"`
	UnfactoredTickMs float64 `json:"unfactored_tick_ms"`
	FullTickMs       float64 `json:"full_tick_ms"`
	SingletonTickMs  float64 `json:"singleton_tick_ms"`
	// Speedup is UnfactoredTickMs / FactoredTickMs (raw, ungated);
	// FanoutOverhead is FullTickMs / SingletonTickMs — what carrying
	// 9,900 extra subscriber identities costs over the 100 evaluations.
	Speedup        float64 `json:"speedup"`
	FanoutOverhead float64 `json:"fanout_overhead"`
	// SpeedupGated = min(Speedup, 12): the committed regression floor.
	SpeedupGated float64 `json:"cse_speedup_gated"`
	// SharedPerTick is the deterministic number of executions served by
	// leader fan-out each tick (tenants - shapes).
	SharedPerTick float64 `json:"shared_per_tick"`
}

// TestWriteCSEBenchJSON emits BENCH_cse.json when PAOTR_BENCH_CSE_JSON
// names an output path (the CI perf-trajectory artifact; skipped
// otherwise). It carries the tentpole's acceptance assertions: a
// 10k-tenant fleet drawing on 100 distinct shapes must tick at least 5x
// faster factored than unfactored, and within 3x of a 100-query fleet
// that holds one subscriber per shape.
func TestWriteCSEBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_CSE_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_CSE_JSON=<path> to write the benchmark artifact")
	}
	cfg := corpus.CSEConfig{Tenants: 10000, Shapes: 100, Streams: 32, Seed: 271}

	// The speedup arms run with per-query planning: the unfactored joint
	// planner is quadratic across 10k queries and would dominate the
	// unfactored tick, inflating the ratio. Disabling it on both sides
	// isolates the evaluation-path factoring, so the gated speedup is a
	// conservative lower bound on the end-to-end benefit.
	factored := cseBenchService(t, cfg, WithFleetPlanning(false))
	factoredTick := timeTicks(factored, 10, 100)
	m := factored.Metrics()
	if m.DistinctShapes != cfg.Shapes {
		t.Fatalf("factored fleet interned %d shapes, want %d", m.DistinctShapes, cfg.Shapes)
	}
	factored = nil

	unfactored := cseBenchService(t, cfg, WithFleetPlanning(false), WithShapeFactoring(false))
	unfactoredTick := timeTicks(unfactored, 2, 8)
	unfactored = nil
	runtime.GC() // drop the dead arms before the ratio-sensitive ones

	// The fan-out-overhead arm keeps the full default pipeline (joint
	// fleet planning included): factored, 10k tenants over 100 shapes
	// must tick close to a 100-query fleet holding one tenant per shape.
	full := cseBenchService(t, cfg)
	fullTick := timeTicks(full, 10, 100)
	single := cfg
	single.Tenants = cfg.Shapes
	singleton := cseBenchService(t, single)
	singletonTick := timeTicks(singleton, 10, 300)

	speedup := unfactoredTick.Seconds() / factoredTick.Seconds()
	overhead := fullTick.Seconds() / singletonTick.Seconds()
	if speedup < 5 {
		t.Errorf("factored 10k/100-shape fleet speedup %.1fx over unfactored, want >= 5x", speedup)
	}
	if overhead > 3 {
		t.Errorf("factored 10k-tenant fleet ticks %.2fx slower than the 100-query fleet, want <= 3x", overhead)
	}

	file := cseBenchFile{
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Tenants:          cfg.Tenants,
		Shapes:           cfg.Shapes,
		FactoredTickMs:   factoredTick.Seconds() * 1e3,
		UnfactoredTickMs: unfactoredTick.Seconds() * 1e3,
		FullTickMs:       fullTick.Seconds() * 1e3,
		SingletonTickMs:  singletonTick.Seconds() * 1e3,
		Speedup:          speedup,
		FanoutOverhead:   overhead,
		SpeedupGated:     min(speedup, 12),
		SharedPerTick:    float64(cfg.Tenants - cfg.Shapes),
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: tick %.2fms factored vs %.2fms unfactored (%.1fx), %.2fms singleton (%.2fx overhead)",
		out, file.FactoredTickMs, file.UnfactoredTickMs, speedup, file.SingletonTickMs, overhead)
}

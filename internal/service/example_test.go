package service_test

import (
	"errors"
	"fmt"

	"paotr/internal/admit"
	"paotr/internal/service"
	"paotr/internal/stream"
)

// Example runs a tiny fleet end to end: register monitoring queries
// over the simulated wearables streams, advance a few ticks, and read
// the fleet metrics. Same-shape registrations are interned into one
// equivalence class and evaluated once per tick.
func Example() {
	svc := service.New(stream.Wearables(1))
	_ = svc.Register("icu/hr", "AVG(heart-rate,5) > 100")
	_ = svc.Register("ward/hr", "AVG(heart-rate,5) > 100") // twin shape: shares the evaluation
	_ = svc.Register("icu/spo2", "spo2 < 92")
	svc.Run(10)

	m := svc.Metrics()
	fmt.Printf("queries: %d over %d distinct shapes\n", m.Queries, m.DistinctShapes)
	fmt.Printf("ticks: %d, paid within expectation: %v\n", m.Ticks, m.PaidCost <= m.ExpectedCost)
	// Output:
	// queries: 3 over 2 distinct shapes
	// ticks: 10, paid within expectation: true
}

// ExampleAdmissionGate prices a registration by its marginal joint cost
// and enforces the tenant's energy budget: the gate quotes the
// incremental planner's dry run, charges the token bucket on admit, and
// parks over-budget registrations until refills cover them.
func ExampleAdmissionGate() {
	cfg := admit.DefaultConfig()
	cfg.RefillJPerTick = 1
	cfg.BurstJ = 2
	gate := service.NewAdmissionGate(service.New(stream.Wearables(1)), admit.NewController(cfg))

	err := gate.RegisterTier("t/first", "AVG(heart-rate,5) > 100 AND spo2 < 95", admit.TierGold)
	fmt.Println("first:", err)

	err = gate.RegisterTier("t/second", "accelerometer > 15", admit.TierBronze)
	var adm *service.AdmissionError
	if errors.As(err, &adm) {
		fmt.Printf("second: %s %s, queued=%v\n", adm.Decision.Action, adm.Decision.Reason, adm.Queued)
	}

	gate.Run(30) // refills accrue; the parked registration admits at a tick boundary
	fmt.Println("resident queries:", len(gate.QueryIDs()))
	// Output:
	// first: <nil>
	// second: defer budget-exhausted, queued=true
	// resident queries: 2
}

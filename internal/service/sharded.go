// Sharded is the horizontal scale-out of the scheduling service: a
// coordinator owning the shard partitioner, the fleet-global L2 item
// relay and the aggregated metrics, over K shard workers — each a full
// Service with its own striped L1 acquisition cache, fleet planner and
// windowed estimator — ticking asynchronously. Workers are in-process by
// default (NewSharded) or separate `paotrserve -worker` processes driven
// over HTTP/JSON (NewShardedRemote; see remote.go): the coordinator sees
// both through the Worker interface.
//
// Sharding trades sharing for parallelism: the paper's premium comes
// from items acquired once and reused by every query (Proposition 2),
// and a private per-shard cache only shares within its shard. The
// partitioner therefore co-locates queries by expected stream overlap,
// and the runtime measures what partitioning costs — the modelled
// per-shard joint cost against the K=1 joint cost, and the realized
// cross-shard duplicate transfers via a fleet-wide acquisition ledger.
//
// The fleet-global relay (WithRelay) recovers most of that loss: on an
// L1 miss a worker's cache consults the relay index, and an item some
// other shard already purchased is transferred at a configured fraction
// of its acquisition cost instead of re-acquired (see
// acquisition.ItemRelay). The partitioner's placement objective gains
// the matching transfer-cost term (shard.Config.RelayFrac), and the
// coordinator prices streams shared across shards at the
// relay-discounted blend for every worker's joint planner
// (Service.SetStreamCostScale). Without WithRelay nothing changes: the
// runtime stays byte-identical to the relay-less service.
//
// Plan caches are naturally scoped per shard: every worker has its own
// engine, so detector trips in one shard evict only that shard's plans,
// and a query moved between shards re-plans in its new home (its
// windowed estimator evidence migrates with it; see
// adapt.Windowed.ExportPredicates).
//
// With one shard the runtime degenerates to the plain Service — every
// call delegates to the single worker, so plans, results and costs are
// byte-identical to an unsharded service built with the same options.
package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"paotr/internal/acquisition"
	"paotr/internal/adapt"
	"paotr/internal/engine"
	"paotr/internal/obs"
	"paotr/internal/shard"
	"paotr/internal/stream"
)

// shardedQuery remembers what Register was called with, so a
// repartition can re-register the query on its new shard.
type shardedQuery struct {
	text string
	opts []QueryOption
}

// Sharded runs K shard workers over one stream registry. All methods
// are safe for concurrent use. It implements Runtime.
type Sharded struct {
	mu      sync.Mutex
	reg     *stream.Registry
	workers []Worker
	// locals holds the in-process *Service behind each worker (nil
	// entries for remote workers), for tests and direct inspection.
	locals []*Service
	ledger *acquisition.Ledger // nil with one shard
	// relay is the fleet-global L2 item index (nil unless WithRelay with
	// a positive fraction and k > 1); relayFrac its transfer fraction.
	relay     *acquisition.ItemRelay
	relayFrac float64
	k         int
	// balance and repartEvery come from WithShardBalance /
	// WithRepartitionEvery.
	balance     float64
	repartEvery int64

	assign   map[string]int
	regOrder []string
	regInfo  map[string]*shardedQuery
	// shapeOf maps each query id to its shape-class key and classShard
	// each live class to the shard it lives on: shape twins are always
	// co-located (a split class would execute once per holding shard,
	// defeating the factoring), so a twin of a placed class skips the
	// partitioner entirely and repartitions move classes as units.
	// classSize counts each class's members. With shape factoring off
	// every query keys its own singleton class and placement degenerates
	// to the per-query behaviour.
	shapeOf     map[string]string
	classShard  map[string]int
	classSize   map[string]int
	shapeFactor bool

	tick          int64
	lastRepart    int64
	tripsAtRepart int64
	// mergeByID is the tick merge's scratch map, reused across ticks so
	// a large fleet doesn't re-grow a fleet-sized map every tick.
	mergeByID map[string]Execution
	// tickNow mirrors tick for the relay publish hook, which fires from
	// worker tick goroutines while sh.mu is held by Tick.
	tickNow atomic.Int64
	// journal and tracer are shared with every in-process worker (via
	// WithJournal/WithTracer), so coordinator events — repartitions,
	// relay first-publishes — interleave with the workers' drift trips
	// on one timeline, and a sampled tick yields one trace per shard.
	// Remote workers keep their own process-local journals.
	journal *obs.Journal
	tracer  *obs.Tracer

	repartitions int64
	moved        int64
	// loss/loads describe the current placement; lossDirty defers the
	// (joint-planning-heavy) re-pricing to the next Metrics call or
	// repartition instead of paying it on every Register/Unregister.
	loss      shard.Loss
	loads     []float64
	lossDirty bool
	// scalesDirty defers recomputing the relay-discounted per-stream cost
	// scales to the next tick after the query set changed.
	scalesDirty bool
}

var _ Runtime = (*Sharded)(nil)
var _ Runtime = (*Service)(nil)

// NewSharded creates a sharded runtime with k in-process shard workers,
// each a Service built over the shared registry with the same options.
// k <= 1 yields a single worker the runtime transparently delegates to.
// Live re-partitioning on estimator drift is off unless
// WithRepartitionEvery is given; the fleet-global item relay is off
// unless WithRelay is given.
func NewSharded(reg *stream.Registry, k int, opts ...Option) *Sharded {
	if k < 1 {
		k = 1
	}
	// Re-parse the options for the sharded-runtime knobs; the per-shard
	// services parse them again themselves.
	cfg := config{balance: 0, shapeFactor: true}
	for _, o := range opts {
		o(&cfg)
	}
	sh := newShardedShell(reg, k, cfg)
	// Workers share the coordinator's journal and tracer: one fleet
	// timeline, one trace ring with one entry per shard per sampled tick.
	opts = append(append([]Option(nil), opts...), WithJournal(sh.journal), WithTracer(sh.tracer))
	if k > 1 {
		sh.ledger = acquisition.NewLedger(reg.Len())
		opts = append(opts, WithSharedLedger(sh.ledger))
		if sh.relay != nil {
			opts = append(opts, WithSharedRelay(sh.relay))
		}
	}
	sh.workers = make([]Worker, k)
	sh.locals = make([]*Service, k)
	for i := range sh.workers {
		workerOpts := append(append([]Option(nil), opts...), WithShardIndex(i))
		svc := New(reg, workerOpts...)
		sh.locals[i] = svc
		sh.workers[i] = svc
	}
	return sh
}

// newShardedShell builds the coordinator state shared by the in-process
// and remote constructors: everything but the workers.
func newShardedShell(reg *stream.Registry, k int, cfg config) *Sharded {
	sh := &Sharded{
		reg:         reg,
		k:           k,
		balance:     cfg.balance,
		repartEvery: cfg.repartEvery,
		assign:      map[string]int{},
		regInfo:     map[string]*shardedQuery{},
		shapeOf:     map[string]string{},
		classShard:  map[string]int{},
		classSize:   map[string]int{},
		shapeFactor: cfg.shapeFactor,
		loads:       make([]float64, k),
		journal:     cfg.journal,
		tracer:      cfg.tracer,
	}
	if sh.journal == nil {
		sh.journal = obs.NewJournal(0)
	}
	if sh.tracer == nil {
		sh.tracer = obs.NewTracer(0)
	}
	if cfg.traceSample > 0 {
		sh.tracer.SetSample(cfg.traceSample)
	}
	if k > 1 && cfg.relayFrac > 0 {
		sh.relay = acquisition.NewItemRelay(reg.Len(), cfg.relayFrac)
		sh.relayFrac = sh.relay.TransferFrac()
		// No per-event formatting: first publishes fire once per unique
		// item fleet-wide, and the hook runs under the relay's lock.
		sh.relay.SetPublishHook(func(stream int, seq int64, cost float64) {
			sh.journal.Append(obs.Event{Type: obs.EventRelayPublish, Tick: sh.tickNow.Load(),
				Stream: stream, Count: 1, Before: cost, Detail: "item first published at full cost"})
		})
	}
	return sh
}

// Journal returns the fleet's shared event journal: coordinator events
// (repartitions, relay first-publishes) interleaved with every
// in-process worker's drift trips and forced replans.
func (sh *Sharded) Journal() *obs.Journal { return sh.journal }

// TickTraces returns every shard's retained trace of the given tick
// (one per in-process worker when the tick was sampled; see
// SetTraceSampling).
func (sh *Sharded) TickTraces(tick int64) []obs.TickTrace { return sh.tracer.ForTick(tick) }

// SetTraceSampling sets the shared tick tracer's sampling period for
// every in-process worker (n <= 0 disables).
func (sh *Sharded) SetTraceSampling(n int) { sh.tracer.SetSample(n) }

// TraceSampling returns the current tick-trace sampling period.
func (sh *Sharded) TraceSampling() int { return sh.tracer.Sampling() }

// TraceTicks lists the distinct sampled ticks still retained by the
// shared tracer's ring, oldest first.
func (sh *Sharded) TraceTicks() []int64 { return sh.tracer.Ticks() }

// Shards returns the number of shard workers.
func (sh *Sharded) Shards() int { return sh.k }

// Shard exposes in-process shard worker i (e.g. for estimator inspection
// in tests); nil when worker i is remote.
func (sh *Sharded) Shard(i int) *Service { return sh.locals[i] }

// Relay exposes the fleet-global L2 item relay (nil unless enabled).
func (sh *Sharded) Relay() *acquisition.ItemRelay { return sh.relay }

// shardConfig is the partitioner configuration of this runtime.
func (sh *Sharded) shardConfig() shard.Config {
	return shard.Config{Shards: sh.k, Balance: sh.balance, RelayFrac: sh.relayFrac}
}

// tripsNowLocked totals detector trips across workers — the drift
// evidence the repartition trigger compares against. Caller holds sh.mu.
func (sh *Sharded) tripsNowLocked() int64 {
	var t int64
	for _, w := range sh.workers {
		t += w.Trips()
	}
	return t
}

// profilesLocked profiles every registered query from its owning shard's
// learned estimators, in registration order. Caller holds sh.mu.
func (sh *Sharded) profilesLocked() []shard.Query {
	out := make([]shard.Query, 0, len(sh.regOrder))
	for _, id := range sh.regOrder {
		t, _, ok := sh.workers[sh.assign[id]].ProfileTree(id)
		if !ok {
			continue
		}
		out = append(out, shard.Profile(id, t))
	}
	return out
}

// recomputeLossLocked re-prices the current placement: per-shard joint
// costs against the K=1 joint baseline, and per-shard expected loads.
// Caller holds sh.mu.
func (sh *Sharded) recomputeLossLocked(profiles []shard.Query) {
	if profiles == nil {
		profiles = sh.profilesLocked()
	}
	sh.loss = shard.SharingLoss(sh.dedupByClassLocked(profiles), sh.assign, sh.k)
	loads := make([]float64, sh.k)
	for _, p := range profiles {
		loads[sh.assign[p.ID]] += p.Load
	}
	sh.loads = loads
	sh.lossDirty = false
}

// dedupByClassLocked keeps one profile per resident shape class — the
// first member standing for every subscriber. Twins co-locate with
// their class and an identical tree adds zero marginal joint cost, so
// sharing-loss pricing over class representatives matches per-query
// pricing while the planning work scales with distinct shapes instead
// of fleet size (a 100k-query storm over 20 templates prices 20 trees,
// not 100k). With shape factoring off every class is a singleton and
// this is the identity. Caller holds sh.mu.
func (sh *Sharded) dedupByClassLocked(profiles []shard.Query) []shard.Query {
	seen := make(map[string]bool, len(sh.classSize))
	out := profiles[:0:0]
	for _, p := range profiles {
		ck, ok := sh.shapeOf[p.ID]
		if !ok {
			out = append(out, p)
			continue
		}
		if seen[ck] {
			continue
		}
		seen[ck] = true
		out = append(out, p)
	}
	return out
}

// refreshLossLocked re-prices the placement if it changed since the
// last pricing. Caller holds sh.mu.
func (sh *Sharded) refreshLossLocked() {
	if sh.lossDirty {
		sh.recomputeLossLocked(nil)
	}
}

// updateRelayScalesLocked recomputes the relay-discounted per-stream
// cost scales and installs them on every worker's joint planner: a
// stream whose expected demand spans m > 1 shards is priced at the blend
// (1 + (m-1)*frac) / m of its acquisition cost — one shard purchases at
// full price, the rest relay at frac. Streams used by at most one shard
// keep scale 1. No-op without a relay. Caller holds sh.mu.
func (sh *Sharded) updateRelayScalesLocked(profiles []shard.Query) {
	if sh.relay == nil {
		return
	}
	if profiles == nil {
		profiles = sh.profilesLocked()
	}
	n := sh.reg.Len()
	uses := make([]bool, n*sh.k)
	sharers := make([]int, n)
	for _, p := range profiles {
		s := sh.assign[p.ID]
		for k, w := range p.Weights {
			if w > 0 && k < n && !uses[k*sh.k+s] {
				uses[k*sh.k+s] = true
				sharers[k]++
			}
		}
	}
	scale := make([]float64, n)
	for k := range scale {
		if m := sharers[k]; m > 1 {
			scale[k] = (1 + float64(m-1)*sh.relayFrac) / float64(m)
		} else {
			scale[k] = 1
		}
	}
	for _, w := range sh.workers {
		w.SetStreamCostScale(scale)
	}
	sh.scalesDirty = false
}

// coordClassKey is the coordinator's shape-class key for a query: the
// per-query executor override's name (or a default marker — every
// in-process worker shares the same default executor) plus the compiled
// tree's canonical shape. It mirrors the worker-side class key closely
// enough that queries the coordinator co-locates intern into one class
// on their shard.
func coordClassKey(q *engine.Query, opts []QueryOption) string {
	var probe registered
	for _, o := range opts {
		o(&probe)
	}
	x := "default"
	if probe.exec != nil {
		x = probe.exec.Name()
	}
	return x + "\x00" + q.ShapeKey()
}

// Register places the query on a shard by stream affinity (see
// shard.PlaceOne) and registers it there. A shape twin of an already
// placed class joins its class's shard directly — twins are never split,
// and the placement costs no partitioner work. Other existing queries
// stay put — full repartitions happen on Repartition or on estimator
// drift.
func (sh *Sharded) Register(id, text string, opts ...QueryOption) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.assign[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	target := 0
	ck := "id\x00" + id
	if sh.k > 1 {
		// Profile the new query on a neutral engine — prior probabilities
		// and static stream costs — so no shard's learned evidence for
		// predicates it happens to share leaks into the profile. Standing
		// queries are profiled with their own shards' learned estimates;
		// the new query has no evidence of its own yet, and the prior is
		// its honest price.
		q, err := engine.New(sh.reg).Compile(text)
		if err != nil {
			return fmt.Errorf("service: compiling %q: %w", id, err)
		}
		if sh.shapeFactor {
			ck = coordClassKey(q, opts)
		}
		if owner, placed := sh.classShard[ck]; placed {
			// A twin shape: co-locate with its class, no placement run.
			target = owner
		} else {
			prof := shard.Profile(id, q.Tree())
			target = shard.PlaceOne(prof, sh.profilesLocked(), sh.assign, sh.shardConfig())
		}
	}
	if err := sh.workers[target].Register(id, text, opts...); err != nil {
		return err
	}
	sh.assign[id] = target
	sh.regOrder = append(sh.regOrder, id)
	sh.regInfo[id] = &shardedQuery{text: text, opts: opts}
	sh.shapeOf[id] = ck
	sh.classSize[ck]++
	sh.classShard[ck] = target
	sh.lossDirty = true
	sh.scalesDirty = true
	return nil
}

// Unregister removes the query from its owning shard.
func (sh *Sharded) Unregister(id string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	owner, ok := sh.assign[id]
	if !ok {
		return fmt.Errorf("service: unknown query id %q", id)
	}
	if err := sh.workers[owner].Unregister(id); err != nil {
		return err
	}
	delete(sh.assign, id)
	delete(sh.regInfo, id)
	for i, o := range sh.regOrder {
		if o == id {
			sh.regOrder = append(sh.regOrder[:i], sh.regOrder[i+1:]...)
			break
		}
	}
	if ck, ok := sh.shapeOf[id]; ok {
		delete(sh.shapeOf, id)
		if sh.classSize[ck]--; sh.classSize[ck] <= 0 {
			// Last subscriber gone: the class releases its shard claim.
			delete(sh.classSize, ck)
			delete(sh.classShard, ck)
		}
	}
	sh.lossDirty = true
	sh.scalesDirty = true
	return nil
}

// QueryIDs lists registered query ids in registration order.
func (sh *Sharded) QueryIDs() []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]string(nil), sh.regOrder...)
}

// Assignment returns the current query -> shard placement.
func (sh *Sharded) Assignment() map[string]int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[string]int, len(sh.assign))
	for id, s := range sh.assign {
		out[id] = s
	}
	return out
}

// Repartition re-runs the partitioner over the whole fleet with the
// current learned estimators and moves queries whose shard changed. A
// moved query's windowed predicate evidence migrates to its new shard's
// estimator; its plan caches stay behind (per-shard engines scope them)
// and rebuild on the next tick. Returns how many queries moved.
func (sh *Sharded) Repartition() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.repartitionLocked()
}

func (sh *Sharded) repartitionLocked() int {
	sh.repartitions++
	// A repartition consumes the drift evidence seen so far: the drift
	// trigger only fires again after new trips (whether this run was
	// manual or trip-driven).
	sh.lastRepart = sh.tick
	sh.tripsAtRepart = sh.tripsNowLocked()
	if sh.k == 1 {
		return 0
	}
	profiles := sh.profilesLocked()
	// Collapse the fleet to one profile per shape class before
	// partitioning: under factoring a class executes once per tick
	// wherever it lives, so the representative's own load is the class's
	// honest load, and placing classes instead of queries guarantees
	// twins are never split. With factoring off every class is a
	// singleton and this is the per-query partition.
	repOf := map[string]string{}
	classProfiles := make([]shard.Query, 0, len(profiles))
	for _, p := range profiles {
		ck, ok := sh.shapeOf[p.ID]
		if !ok {
			ck = "id\x00" + p.ID
			sh.shapeOf[p.ID] = ck
			sh.classSize[ck]++
		}
		if _, seen := repOf[ck]; seen {
			continue
		}
		repOf[ck] = p.ID
		classProfiles = append(classProfiles, p)
	}
	next := shard.Partition(classProfiles, sh.shardConfig())
	moved := 0
	evidenceDone := map[string]bool{}
	for _, p := range profiles {
		ck := sh.shapeOf[p.ID]
		to := next.Shard[repOf[ck]]
		sh.classShard[ck] = to
		from := sh.assign[p.ID]
		if from == to {
			continue
		}
		// The class's estimator evidence migrates once — twins share the
		// same predicate trace keys, so the first moved member carries it
		// for the whole class.
		withEvidence := !evidenceDone[ck]
		evidenceDone[ck] = true
		sh.moveLocked(p.ID, from, to, withEvidence)
		sh.assign[p.ID] = to
		moved++
	}
	sh.moved += int64(moved)
	sh.recomputeLossLocked(profiles)
	sh.updateRelayScalesLocked(profiles)
	sh.journal.Append(obs.Event{Type: obs.EventRepartition, Tick: sh.tick,
		Count: moved, Detail: "partitioner re-run over the whole fleet"})
	return moved
}

// moveLocked transfers one query between shards: estimator evidence is
// exported from the source shard, the query is re-registered on the
// destination, and the evidence imported so the new shard's planner
// prices it with learned probabilities instead of the prior.
// withEvidence false skips the export/import — a class move migrates
// evidence through its first member only, since twins share the same
// predicate trace keys. Caller holds sh.mu.
func (sh *Sharded) moveLocked(id string, from, to int, withEvidence bool) {
	src, dst := sh.workers[from], sh.workers[to]
	info := sh.regInfo[id]
	var snaps []adapt.PredicateSnapshot
	if withEvidence {
		if _, keys, ok := src.ProfileTree(id); ok {
			snaps = src.ExportEvidence(keys)
		}
	}
	// Unregister cannot fail (the id is registered) and Register cannot
	// fail either (the same text compiled when the query first arrived,
	// and the id was just freed).
	_ = src.Unregister(id)
	if len(snaps) > 0 {
		dst.ImportEvidence(snaps)
	}
	_ = dst.Register(id, info.text, info.opts...)
}

// maybeRepartitionLocked runs the drift trigger: when enabled and due,
// a tick that observes detector trips since the last repartition re-runs
// the partitioner — shifted probabilities and learned per-stream costs
// change both the affinity weights and the loads. Caller holds sh.mu.
func (sh *Sharded) maybeRepartitionLocked() {
	if sh.repartEvery <= 0 || sh.k == 1 {
		return
	}
	if sh.tick-sh.lastRepart < sh.repartEvery {
		return
	}
	if sh.tripsNowLocked() == sh.tripsAtRepart {
		return
	}
	sh.repartitionLocked()
}

// Tick advances every shard worker by one step. Shards tick
// concurrently — each against its own cache, planner and estimator — and
// the merged result reports every due query's execution in registration
// order, tagged with the shard that ran it. With one shard this is
// exactly Service.Tick.
func (sh *Sharded) Tick() TickResult {
	if sh.k == 1 {
		return sh.workers[0].Tick()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.tick++
	sh.tickNow.Store(sh.tick)
	sh.maybeRepartitionLocked()
	if sh.scalesDirty {
		sh.updateRelayScalesLocked(nil)
	}
	results := make([]TickResult, sh.k)
	var wg sync.WaitGroup
	for i := range sh.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sh.workers[i].Tick()
		}(i)
	}
	wg.Wait()
	// Executions arrive already stamped with their shard and the shared
	// tick (every worker ticks once per Sharded.Tick).
	if sh.mergeByID == nil {
		sh.mergeByID = make(map[string]Execution, len(sh.regOrder))
	} else {
		clear(sh.mergeByID)
	}
	byID := sh.mergeByID
	for _, tr := range results {
		for _, e := range tr.Executions {
			byID[e.ID] = e
		}
	}
	out := TickResult{Tick: sh.tick, Executions: make([]Execution, 0, len(byID))}
	for _, id := range sh.regOrder {
		if e, ok := byID[id]; ok {
			out.Executions = append(out.Executions, e)
		}
	}
	return out
}

// Run executes n consecutive ticks and returns their results.
func (sh *Sharded) Run(n int) []TickResult {
	out := make([]TickResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sh.Tick())
	}
	return out
}

// Results returns the most recent executions of a query, oldest first.
// A query moved by a repartition restarts its history on its new shard.
func (sh *Sharded) Results(id string, n int) ([]Execution, error) {
	sh.mu.Lock()
	owner, ok := sh.assign[id]
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown query id %q", id)
	}
	return sh.workers[owner].Results(id, n)
}

// QueryMetrics returns the per-query aggregates from the owning shard.
func (sh *Sharded) QueryMetrics(id string) (QueryMetrics, error) {
	sh.mu.Lock()
	owner, ok := sh.assign[id]
	sh.mu.Unlock()
	if !ok {
		return QueryMetrics{}, fmt.Errorf("service: unknown query id %q", id)
	}
	return sh.workers[owner].QueryMetrics(id)
}

// Metrics aggregates the whole fleet across shards: counters sum,
// per-stream traffic sums by registry index, rates are recomputed from
// the summed counters, and the sharded runtime adds its own picture —
// per-shard summaries, the modelled sharing lost to partitioning, the
// realized cross-shard duplicate traffic from the fleet ledger, and the
// relay's recovered-sharing counters when enabled.
func (sh *Sharded) Metrics() Metrics {
	if sh.k == 1 {
		m := sh.workers[0].Metrics()
		m.Shards = 1
		return m
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.refreshLossLocked()
	per := make([]Metrics, sh.k)
	for i, w := range sh.workers {
		per[i] = w.Metrics()
	}
	m := Metrics{
		Ticks:   sh.tick,
		Queries: len(sh.regOrder),
		Shards:  sh.k,

		Repartitions:            sh.repartitions,
		QueriesMoved:            sh.moved,
		ShardJointExpectedCost:  sh.loss.JointK,
		SingleJointExpectedCost: sh.loss.JointOne,
		SharingLostPct:          sh.loss.LostPct,
	}
	perStream := make([]StreamMetrics, sh.reg.Len())
	var ciWeight float64
	for i, pm := range per {
		m.Executions += pm.Executions
		m.PaidCost += pm.PaidCost
		m.ExpectedCost += pm.ExpectedCost
		m.AdaptiveExecutions += pm.AdaptiveExecutions
		m.BatchedCost += pm.BatchedCost
		m.BatchedItems += pm.BatchedItems
		m.DuplicatePullsAvoided += pm.DuplicatePullsAvoided
		m.PredicatesEvaluated += pm.PredicatesEvaluated
		m.PlanCacheHits += pm.PlanCacheHits
		m.FleetPlans += pm.FleetPlans
		m.FleetPlanReuses += pm.FleetPlanReuses
		m.FleetPlannedExecutions += pm.FleetPlannedExecutions
		m.FleetPlanIncremental += pm.FleetPlanIncremental
		m.PlanNanos += pm.PlanNanos
		m.FleetExpectedCost += pm.FleetExpectedCost
		m.IndependentExpectedCost += pm.IndependentExpectedCost
		m.PredicateDetectorTrips += pm.PredicateDetectorTrips
		m.CostDetectorTrips += pm.CostDetectorTrips
		m.ReplansForced += pm.ReplansForced
		m.TrackedPredicates += pm.TrackedPredicates
		m.TraceEvictions += pm.TraceEvictions
		m.AvgCIWidth += pm.AvgCIWidth * float64(pm.TrackedPredicates)
		ciWeight += float64(pm.TrackedPredicates)
		m.CacheRequested += pm.CacheRequested
		m.CacheTransferred += pm.CacheTransferred
		// Twins are never split across shards, so per-shard distinct
		// shapes sum to the fleet's distinct shapes.
		m.ShapeFactoring = m.ShapeFactoring || pm.ShapeFactoring
		m.DistinctShapes += pm.DistinctShapes
		m.ShapeSubscribers += pm.ShapeSubscribers
		m.SharedExecutions += pm.SharedExecutions
		m.RelayHits += pm.RelayHits
		m.RelaySavedSpend += pm.RelaySavedSpend
		// Remote workers overlay their relay-mirror purchase counters on
		// their metrics (see remote.go); in-process workers leave these
		// zero and the coordinator's own relay supplies them below.
		m.RelayPurchases += pm.RelayPurchases
		m.RelayTransferSpend += pm.RelayTransferSpend
		m.Estimator = pm.Estimator
		m.EstimatorWindow = pm.EstimatorWindow
		for _, ps := range pm.PerStream {
			tot := &perStream[ps.Stream]
			tot.Stream = ps.Stream
			tot.Name = ps.Name
			tot.Requested += ps.Requested
			tot.Transferred += ps.Transferred
			tot.Spent += ps.Spent
			tot.DuplicatePullsAvoided += ps.DuplicatePullsAvoided
			tot.CostDetectorTrips += ps.CostDetectorTrips
			tot.RelayHits += ps.RelayHits
			tot.RelaySavedSpend += ps.RelaySavedSpend
			// Transfer-weighted mean of the shards' learned costs: the
			// shards learn independently from their own pulls.
			tot.LearnedCostPerItem += ps.LearnedCostPerItem * float64(ps.Transferred)
		}
		// Histograms merge exactly: bucket counts add, so the fleet-wide
		// quantiles are computed over every shard's observations. Remote
		// workers' snapshots arrive through their Metrics JSON.
		m.TickLatency = obs.MergeLatency(m.TickLatency, pm.TickLatency)
		m.PerQuery = append(m.PerQuery, pm.PerQuery...)
		load := 0.0
		if i < len(sh.loads) {
			load = sh.loads[i]
		}
		sum := ShardSummary{
			Shard:            i,
			Queries:          pm.Queries,
			ExpectedLoad:     load,
			Executions:       pm.Executions,
			PaidCost:         pm.PaidCost,
			CacheTransferred: pm.CacheTransferred,
			CacheHitRate:     pm.CacheHitRate,
		}
		if total, ok := pm.TickLatency[obs.PhaseNames[obs.PhaseTotal]]; ok {
			sum.TickLatency = &total
		}
		m.PerShard = append(m.PerShard, sum)
	}
	for k := range perStream {
		ps := &perStream[k]
		ps.Stream = k
		if ps.Name == "" {
			ps.Name = sh.reg.At(k).Source.Name()
		}
		if ps.Requested > 0 {
			ps.HitRate = 1 - float64(ps.Transferred)/float64(ps.Requested)
		}
		if ps.Transferred > 0 {
			ps.LearnedCostPerItem /= float64(ps.Transferred)
		}
	}
	m.PerStream = perStream
	sortQueryMetrics(m.PerQuery)
	if m.ExpectedCost > 0 {
		m.RealizedOverExpected = m.PaidCost / m.ExpectedCost
	}
	// Every execution is either a plan-cache hit or a miss, so the hit
	// rate is hits over executions.
	if m.Executions > 0 {
		m.PlanCacheHitRate = float64(m.PlanCacheHits) / float64(m.Executions)
	}
	if m.IndependentExpectedCost > 0 {
		m.FleetModelledSaving = 1 - m.FleetExpectedCost/m.IndependentExpectedCost
	}
	if m.CacheRequested > 0 {
		m.CacheHitRate = 1 - float64(m.CacheTransferred)/float64(m.CacheRequested)
	}
	if ciWeight > 0 {
		m.AvgCIWidth /= ciWeight
	}
	if sh.ledger != nil {
		ls := sh.ledger.Stats()
		m.CrossShardDuplicateTransfers = ls.DuplicateTransfers
		m.CrossShardDuplicateSpend = ls.DuplicateSpend
	}
	if sh.relay != nil {
		m.RelayEnabled = true
		m.RelayTransferFrac = sh.relayFrac
		rs := sh.relay.Stats()
		if rs.Purchases > 0 || rs.Hits > 0 {
			// In-process workers share this relay directly; remote workers
			// already reported their mirrors' counters above.
			m.RelayPurchases = rs.Purchases
			m.RelayTransferSpend = rs.TransferSpend
		}
		rl := sh.loss.WithRelay(sh.relayFrac)
		m.RelayJointExpectedCost = rl.RelayK
		m.SharingLostPctRelay = rl.RelayLostPct
	}
	return m
}

// Package service turns the single-query engine into a concurrent
// multi-query scheduling service: many compiled queries share one stream
// registry, one acquisition cache and one trace store, time advances in
// ticks, and every query due at a tick executes on a worker pool.
//
// Sharing is the point of the paper's model — a data item pulled for one
// query is reused for free by every other query that needs it — and the
// service is where that sharing pays off across queries, not just across
// the leaves of one tree. The cache's per-stream retention horizon is
// kept equal to the maximum window over all registered queries,
// recomputed on register/unregister, and the per-query plan caches of the
// engine skip re-planning on ticks where nothing drifted.
package service

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paotr/internal/acquisition"
	"paotr/internal/adapt"
	"paotr/internal/admit"
	"paotr/internal/engine"
	"paotr/internal/fleet"
	"paotr/internal/obs"
	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/stream"
)

// Service schedules and executes many continuous queries over one shared
// registry and acquisition cache. All methods are safe for concurrent
// use; Register/Unregister serialize against running ticks.
type Service struct {
	mu        sync.Mutex
	reg       *stream.Registry
	eng       *engine.Engine
	cache     *acquisition.Cache
	queries   map[string]*registered
	order     []*registered // registration order, for deterministic dispatch
	workers   int
	history   int
	exec      engine.Executor // default executor for queries without one
	batch     bool            // batched first-leaf acquisition in Tick
	fleetPlan bool            // cross-query joint planning in Tick
	planner   *fleet.Planner  // fleet-level plan cache
	// shapeFactor interns registered queries into shape equivalence
	// classes (see WithShapeFactoring): classes holds them by canonical
	// shape key, classList in creation order (the deterministic iteration
	// drainTrips and Metrics use), and planKeys maps a class's fleet
	// plan-cache key back to it for collision disambiguation. Off, every
	// query is its own singleton class keyed by id — the exact pre-shape
	// behaviour.
	// textMemo shortcuts twin registration: (executor, text) of every
	// live class's members maps to the class, so registering an exact
	// twin skips compilation entirely and shares the class's compiled
	// query (one engine-side query per shape, not per identity).
	shapeFactor bool
	classes     map[string]*shapeClass
	classList   []*shapeClass
	planKeys    map[string]*shapeClass
	textMemo    map[string]*shapeClass
	// ad is the online estimator (nil under WithCumulativeEstimator).
	// After phase 3 of every tick, realized per-stream acquisition costs
	// are fed back into it; its detector events invalidate the fleet plan
	// cache here and per-query plan caches in the engine.
	ad *adapt.Windowed
	// prevSpent/prevTransferred/prevRelaySaved snapshot per-stream cache
	// accounting at the end of the previous tick, to derive per-tick cost
	// observations. Relay savings are added back so the estimator keeps
	// learning the stream's acquisition price, not the transfer price —
	// relay discounts enter planning deterministically via costScale
	// instead of through racy realized-cost observations.
	prevSpent       []float64
	prevTransferred []int64
	prevRelaySaved  []float64
	// costScale, when non-nil, multiplies each stream's per-item cost in
	// the joint planner's view of the fleet (see SetStreamCostScale): the
	// sharded coordinator prices streams shared across shards at the
	// relay-discounted blend of acquisition and transfer cost.
	costScale []float64
	// fleetInvalidated counts the joint-plan staleness marks driven by
	// detector trips — the forced fleet replans (or patches) those trips
	// cause.
	fleetInvalidated atomic.Int64
	// pendingTrips buffers detector events until the next tick: trips
	// fire from phase-3 worker goroutines while the service lock is held,
	// so they cannot touch planner state directly. tripMu guards it.
	tripMu       sync.Mutex
	pendingTrips []adapt.Event
	// scratch holds the per-tick buffers Tick reuses across calls so the
	// steady-state hot path allocates little beyond the TickResult it
	// returns. Guarded by mu like everything Tick touches.
	scratch tickScratch
	// shardIdx is this service's worker index under the sharded runtime
	// (0 otherwise); executions are stamped with it at creation so query
	// histories carry their shard.
	shardIdx int
	tick     int64
	// tickNow mirrors tick for the async observability hooks: detector
	// trips and plan invalidations fire from phase-3 worker goroutines
	// while the service lock is held, so journal events read the tick
	// through this atomic instead of racing s.tick.
	tickNow atomic.Int64
	// hists records the per-phase tick-latency histograms (allocation-free
	// atomic counters; nil under WithTickHistograms(false), the A/B
	// baseline for overhead measurement). tracer records sampled tick
	// traces (disabled by default; see WithTraceSampling) and journal the
	// rare structural events (drift trips, forced replans, evictions).
	// Under the sharded runtime all three are shared across the in-process
	// workers via options.
	hists   *obs.TickHists
	tracer  *obs.Tracer
	journal *obs.Journal

	executions    int64
	planHits      int64
	planMisses    int64
	paidCost      float64
	expCost       float64
	evaluated     int64
	adaptiveExecs int64
	batchCost     float64
	batchItems    int64
	dupAvoided    int64
	dupAvoidedK   []int64 // per-stream share of dupAvoided
	fleetPlans    int64
	fleetReuses   int64
	fleetPatched  int64
	fleetExecs    int64
	fleetExpected float64
	indepExpected float64
	planNanos     int64
	// sharedExecs counts executions served by fanning a shape leader's
	// verdict out to a twin subscriber instead of re-evaluating the tree.
	sharedExecs int64
}

// shapeClass is one shape equivalence class: every registered query whose
// compiled tree is identical up to AND/OR commutativity (and whose
// executor matches) shares one class. The tick path plans and evaluates
// one due member — the leader, the first due subscriber in registration
// order — and fans the verdict out to the rest (see Tick).
type shapeClass struct {
	// key is the interning key (executor name + canonical shape string;
	// just the query id when shape factoring is off), hash the compact
	// shape id for display.
	key  string
	hash uint64
	// planKey is the class's stable id in the fleet plan cache. It
	// depends only on the shape — never on which member happens to lead —
	// so registering a twin, unregistering any subscriber but the last,
	// or a leader change between ticks leaves cached joint plans
	// untouched: a new twin is a pure plan-cache hit with zero planning
	// work.
	planKey string
	// members holds the subscriber identities in registration order; the
	// first *due* member at a tick leads.
	members []*registered
	// q is the interned compiled query — members registered via the
	// text memo share it (only one member evaluates per tick, and a
	// compiled query supports concurrent use anyway), so the engine and
	// the garbage collector see one query per shape, not per identity.
	// Members whose distinct text independently compiled into this class
	// keep their own compile; texts lists the memo keys to drop when the
	// class dies.
	q     *engine.Query
	texts []string
	// estPreds holds the trace keys of the class's estimator-driven
	// predicates and usedStream marks the streams its leaves read; both
	// map detector trips to the one class-level plan they invalidate
	// (see drainTrips) — O(distinct shapes) per trip, not O(fleet).
	estPreds   map[string]struct{}
	usedStream []bool
	// mark/leadIdx are Tick-scoped: mark stamps the tick the class last
	// elected a leader at, leadIdx its index in the tick's leader list.
	mark    int64
	leadIdx int
}

// tickScratch is the per-tick working set of Tick and planFleet: due
// list, prepared plans, the joint planner's inputs and outputs, and the
// batcher's per-stream windows. Everything is truncated and refilled
// each tick, so after warm-up the buffers stop growing.
type tickScratch struct {
	due []*registered
	// Shape-factoring state: lead holds one leader per due shape class,
	// leadDueIdx each leader's index in due, leadOf maps every due index
	// to its class's leader index, and classDue counts the due
	// subscribers behind each leader (the joint planner's weights).
	lead       []*registered
	leadDueIdx []int
	leadOf     []int
	classDue   []int
	preps      []engine.Prepared
	fleetSet   []bool
	fleetOf    []int // leader index -> joint-plan index, -1 outside the plan
	idx        []int
	keys       []string
	weights    []int
	trees      []*query.Tree
	need       []int
	warm       [][]bool
	plans      []engine.Plan
	// Batcher state: per-stream opening windows of due plans, the items
	// needed per stream, which streams were touched this tick, and the
	// cached-items snapshot duplicates are counted against.
	winds        [][]int
	batchNeed    []int
	batchTouched []bool
	batchSnap    [][]bool
	// costSave holds the unscaled per-stream costs of each planned tree
	// while costScale is applied for the joint planner (restored after
	// planning, so scaling never compounds across ticks).
	costSave [][]float64
}

// registered is one query identity under service management: the tenant
// id, result history and metrics. Structure shared with equal-shaped
// queries lives on the shape class (see shapeClass).
type registered struct {
	id    string
	text  string
	q     *engine.Query
	every int
	exec  engine.Executor // nil: use the service default
	// hist is a fixed-capacity ring of the last executions: once full,
	// histPos is the oldest entry (the next to overwrite). A ring —
	// rather than append-and-reslice — keeps the steady tick path free
	// of per-query backing-array churn.
	hist    []Execution
	histPos int
	m       QueryMetrics
	// cls is the shape equivalence class the query is interned into (a
	// singleton when shape factoring is off).
	cls *shapeClass
	// tree is the per-query scratch tree the fleet planner re-annotates
	// in place every tick (see engine.Query.TreeInto).
	tree *query.Tree
}

// Option configures a Service.
type Option func(*config)

type config struct {
	workers     int
	history     int
	engOpts     []engine.Option
	exec        engine.Executor
	batch       bool
	fleetPlan   bool
	shapeFactor bool
	stripes     int
	cumulative  bool
	adaptCfg    adapt.Config
	traceCap    int
	ledger      *acquisition.Ledger
	relay       *acquisition.ItemRelay
	// repartEvery, balance and relayFrac configure the sharded runtime
	// (see NewSharded); a plain Service ignores them.
	repartEvery int64
	balance     float64
	relayFrac   float64
	shardIdx    int
	// Observability wiring (see internal/obs): histsOff disables the
	// tick-latency histograms, traceSample enables tick tracing at the
	// given period, and journal/tracer install shared instances (the
	// sharded runtime shares one of each across its in-process workers).
	histsOff    bool
	traceSample int
	journal     *obs.Journal
	tracer      *obs.Tracer
}

// WithWorkers sets the tick worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithHistory sets how many past executions are retained per query for
// Results (default 64).
func WithHistory(n int) Option { return func(c *config) { c.history = n } }

// WithEngineOptions forwards options to the underlying engine (planner
// overrides, trace store, replan threshold).
func WithEngineOptions(opts ...engine.Option) Option {
	return func(c *config) { c.engOpts = append(c.engOpts, opts...) }
}

// WithExecutor sets the default execution strategy for every registered
// query (default engine.LinearExecutor). Individual queries can override
// it with WithQueryExecutor.
func WithExecutor(x engine.Executor) Option { return func(c *config) { c.exec = x } }

// WithBatchedAcquisition toggles the tick-level acquisition batcher
// (default on): before executing due queries, their plans' first-leaf
// stream windows are coalesced and each shared stream is pre-acquired
// once, so concurrent workers do not race to pull the same items. First
// leaves are evaluated unconditionally, so pre-pulling them never wastes
// cost — it only moves it from the queries to the batcher (see
// Metrics.BatchedCost).
func WithBatchedAcquisition(on bool) Option { return func(c *config) { c.batch = on } }

// WithFleetPlanning toggles cross-query joint planning (default on):
// every tick, the due queries running the linear executor are planned as
// one joint workload by internal/fleet — a leaf's marginal cost is
// discounted by the probability that some sibling query's schedule pulls
// the same items — and the joint plan's acquisition manifest drives the
// tick batcher. Queries with adaptive executors keep their decision-tree
// path. Off, every query plans independently (the pre-fleet behaviour).
func WithFleetPlanning(on bool) Option { return func(c *config) { c.fleetPlan = on } }

// WithShapeFactoring toggles cross-tenant shape factoring (default on):
// queries whose compiled trees are identical up to AND/OR commutativity
// (same streams, windows, probabilities and predicate labels — see
// engine.Query.ShapeKey) and whose executors match are interned into one
// shape equivalence class. Each tick plans and evaluates every distinct
// due shape exactly once — the first due subscriber in registration
// order leads — and fans the verdict out to all subscriber identities,
// so per-tick planning and execution cost is O(distinct shapes) instead
// of O(fleet). Twins observe the leader's verdict, evaluated count and
// modelled cost; their realized Cost is 0 (the evaluation was shared)
// and their executions are flagged Shared. Estimator evidence is
// recorded once per shape evaluation — shared across subscribers through
// the common predicate trace keys — rather than once per twin, so
// duplicated tenants no longer overweight the same physical observation.
// Off, every query is planned and executed independently: the exact
// pre-shape-factoring behaviour, byte-identical executions included.
func WithShapeFactoring(on bool) Option { return func(c *config) { c.shapeFactor = on } }

// WithCacheStripes sets the acquisition cache's lock stripe count
// (default 0: one stripe per stream, so pulls on different streams never
// contend). 1 serializes all streams behind a single lock — the
// pre-sharding behaviour, kept as a benchmark baseline.
func WithCacheStripes(n int) Option { return func(c *config) { c.stripes = n } }

// WithCumulativeEstimator reverts probability estimation to the
// never-forgetting cumulative trace counter — the pre-adaptation
// behaviour, kept as the baseline: no sliding windows, no learned
// per-item costs, no change detectors, no forced replans.
func WithCumulativeEstimator() Option { return func(c *config) { c.cumulative = true } }

// WithAdaptConfig tunes the default windowed online estimator (window
// size, EWMA steps, Page-Hinkley thresholds; see adapt.Config). Ignored
// under WithCumulativeEstimator.
func WithAdaptConfig(cfg adapt.Config) Option { return func(c *config) { c.adaptCfg = cfg } }

// WithSharedLedger attaches a fleet-wide acquisition ledger to the
// service's cache: every transferred item is also recorded there, so
// several caches sharing one ledger can measure their duplicated
// traffic. The sharded runtime attaches one ledger across all shard
// caches (see acquisition.Ledger); plain services rarely need this.
func WithSharedLedger(l *acquisition.Ledger) Option {
	return func(c *config) { c.ledger = l }
}

// WithSharedRelay attaches the fleet-global L2 item relay to the
// service's cache: every L1 miss consults the relay before the stream,
// transferring items another attached cache already purchased at the
// relay's transfer fraction of their acquisition cost. The sharded
// runtime attaches one relay across all shard caches (see
// acquisition.ItemRelay and WithRelay); plain services rarely need this.
func WithSharedRelay(r *acquisition.ItemRelay) Option {
	return func(c *config) { c.relay = r }
}

// WithShardIndex stamps this service's executions with its worker index
// under a sharded runtime (Execution.Shard). The in-process sharded
// runtime sets it directly; a `paotrserve -worker` process passes its
// index here so the coordinator's merged results attribute executions.
func WithShardIndex(i int) Option {
	return func(c *config) { c.shardIdx = i }
}

// WithRelay enables, for the sharded runtime, the fleet-global L2 item
// relay: frac is the per-item transfer cost as a fraction of acquisition
// cost (clamped to [0, 1]). On an L1 miss a shard worker's cache checks
// the relay index and transfers an item another shard already purchased
// at frac of its acquisition cost instead of re-acquiring it at stream
// cost; the partitioner's placement objective and every worker's joint
// planner price co-location with the matching discount. 0 (the default)
// disables the relay, leaving the runtime byte-identical to the
// relay-less service. A plain Service ignores it.
func WithRelay(frac float64) Option {
	return func(c *config) { c.relayFrac = frac }
}

// WithRepartitionEvery sets, for the sharded runtime, the minimum number
// of ticks between drift-driven repartitions: after at least n ticks, a
// tick that observes new detector trips re-runs the partitioner and
// moves queries whose learned costs shifted (0, the default, disables
// live re-partitioning; see NewSharded). A plain Service ignores it.
func WithRepartitionEvery(n int) Option {
	return func(c *config) { c.repartEvery = int64(n) }
}

// WithShardBalance sets the sharded partitioner's load-balance weight:
// a query joins a shard when the expected spend it would share there
// exceeds this factor times the overload it would cause beyond the mean
// shard load (default 1; see shard.Config). A plain Service ignores it.
func WithShardBalance(f float64) Option {
	return func(c *config) { c.balance = f }
}

// WithTraceCap bounds the number of distinct predicates the cumulative
// trace store retains (default 8192; 0 removes the bound). Churning
// tenant registration otherwise grows the store forever.
func WithTraceCap(n int) Option { return func(c *config) { c.traceCap = n } }

// WithTickHistograms toggles the per-phase tick-latency histograms
// (default on). The histograms are allocation-free atomic counters, so
// the only reason to turn them off is A/B overhead measurement (see the
// BENCH_obs writer).
func WithTickHistograms(on bool) Option { return func(c *config) { c.histsOff = !on } }

// WithTraceSampling enables the span-style tick tracer at construction:
// every n-th tick records one structured trace (phase durations, due
// classes, plan cache hits vs replans, expected vs realized cost per
// executed class; see obs.TickTrace). n <= 0 leaves tracing disabled —
// the default, costing one atomic load per tick and zero allocations.
// SetTraceSampling changes the period at runtime.
func WithTraceSampling(n int) Option { return func(c *config) { c.traceSample = n } }

// WithJournal installs a shared event journal: the service appends its
// drift trips, forced replans and estimator evictions there instead of
// into a private journal. The sharded runtime shares one journal across
// its in-process workers so /debug/events shows the fleet timeline.
func WithJournal(j *obs.Journal) Option { return func(c *config) { c.journal = j } }

// WithTracer installs a shared tick tracer (see WithJournal; the sharded
// runtime shares one tracer so /debug/ticks/{n} returns every shard's
// trace of a sampled tick).
func WithTracer(t *obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// New creates a service over the registry with an empty shared cache.
// The windowed online estimator (see internal/adapt) is the default:
// leaf probabilities and per-item costs are learned from a sliding
// window of realized outcomes, and change detectors actively invalidate
// affected plans. WithCumulativeEstimator restores the old baseline.
func New(reg *stream.Registry, opts ...Option) *Service {
	cfg := config{workers: runtime.GOMAXPROCS(0), history: 64, batch: true, fleetPlan: true, shapeFactor: true, traceCap: -1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.history < 1 {
		cfg.history = 1
	}
	if cfg.exec == nil {
		cfg.exec = engine.LinearExecutor{}
	}
	var ad *adapt.Windowed
	engOpts := cfg.engOpts
	if !cfg.cumulative {
		ad = adapt.NewWindowed(cfg.adaptCfg)
		// Prepend so explicit WithEngineOptions overrides still win.
		engOpts = append([]engine.Option{engine.WithEstimator(ad), engine.WithCostSource(ad)}, engOpts...)
	}
	eng := engine.New(reg, engOpts...)
	if cfg.traceCap < 0 {
		cfg.traceCap = 8192
	}
	eng.Traces().SetCap(cfg.traceCap)
	s := &Service{
		reg:             reg,
		eng:             eng,
		cache:           acquisition.NewSharedStriped(reg, cfg.stripes),
		queries:         map[string]*registered{},
		shapeFactor:     cfg.shapeFactor,
		classes:         map[string]*shapeClass{},
		planKeys:        map[string]*shapeClass{},
		textMemo:        map[string]*shapeClass{},
		workers:         cfg.workers,
		history:         cfg.history,
		exec:            cfg.exec,
		batch:           cfg.batch,
		fleetPlan:       cfg.fleetPlan,
		ad:              ad,
		prevSpent:       make([]float64, reg.Len()),
		prevTransferred: make([]int64, reg.Len()),
		prevRelaySaved:  make([]float64, reg.Len()),
		planner:         &fleet.Planner{Eps: eng.ReplanThreshold()},
		dupAvoidedK:     make([]int64, reg.Len()),
		shardIdx:        cfg.shardIdx,
		journal:         cfg.journal,
		tracer:          cfg.tracer,
	}
	if !cfg.histsOff {
		s.hists = obs.NewTickHists()
	}
	if s.journal == nil {
		s.journal = obs.NewJournal(0)
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(0)
	}
	if cfg.traceSample > 0 {
		s.tracer.SetSample(cfg.traceSample)
	}
	// Rare structural events feed the journal: forced plan evictions from
	// the engine (detector trips land there first) and estimator-state
	// evictions under the trace cap. Both hooks fire while the emitting
	// component's lock is held, so they only append — the journal is a
	// leaf lock.
	eng.SetInvalidationHook(func(kind, pred string, stream, dropped int) {
		ev := obs.Event{Type: obs.EventForcedReplan, Tick: s.tickNow.Load(), Shard: s.shardIdx,
			Pred: pred, Count: dropped, Detail: "query plans invalidated (" + kind + " trip)"}
		if kind == adapt.KindStreamCost {
			ev.Stream = stream
		}
		s.journal.Append(ev)
	})
	eng.Traces().SetEvictionHook(func(n int) {
		s.journal.Append(obs.Event{Type: obs.EventEstimatorEviction, Tick: s.tickNow.Load(),
			Shard: s.shardIdx, Count: n, Detail: "trace-store predicates evicted"})
	})
	if cfg.ledger != nil {
		s.cache.SetLedger(cfg.ledger)
	}
	if cfg.relay != nil {
		s.cache.SetRelay(cfg.relay)
	}
	if ad != nil {
		// The engine already evicts affected per-query plans on detector
		// trips; the joint plans layered above them must react too. Trips
		// fire from phase-3 worker goroutines while the service lock is
		// held, so the event is only buffered here; the next tick drains
		// the buffer and marks exactly the affected queries stale, which
		// patches (or, for broad shifts, replans) the cached joint plan
		// instead of dropping every entry (see drainTrips).
		ad.Subscribe(func(ev adapt.Event) {
			s.tripMu.Lock()
			s.pendingTrips = append(s.pendingTrips, ev)
			s.tripMu.Unlock()
			jev := obs.Event{Type: obs.EventDriftTrip, Tick: s.tickNow.Load(), Shard: s.shardIdx,
				Pred: ev.Pred, Before: ev.Before, After: ev.After, Detail: ev.Kind}
			if ev.Kind == adapt.KindStreamCost {
				jev.Stream = ev.Stream
			}
			s.journal.Append(jev)
		})
		ad.SetEvictionHook(func(n int) {
			s.journal.Append(obs.Event{Type: obs.EventEstimatorEviction, Tick: s.tickNow.Load(),
				Shard: s.shardIdx, Count: n, Detail: "windowed predicate states evicted"})
		})
	}
	return s
}

// Journal returns the service's event journal (shared across workers
// under the sharded runtime).
func (s *Service) Journal() *obs.Journal { return s.journal }

// TickTraces returns every retained trace of the given tick (empty when
// the tick was not sampled; see WithTraceSampling).
func (s *Service) TickTraces(tick int64) []obs.TickTrace { return s.tracer.ForTick(tick) }

// SetTraceSampling sets the tick tracer's sampling period at runtime:
// every n-th tick records one structured trace; n <= 0 disables tracing
// (the default), restoring the zero-allocation tick path.
func (s *Service) SetTraceSampling(n int) { s.tracer.SetSample(n) }

// TraceSampling returns the current tick-trace sampling period (0 =
// disabled).
func (s *Service) TraceSampling() int { return s.tracer.Sampling() }

// TraceTicks lists the distinct sampled ticks still retained by the
// tracer's ring, oldest first.
func (s *Service) TraceTicks() []int64 { return s.tracer.Ticks() }

// treeAndKeys snapshots a registered query's probability-annotated tree
// (estimator-backed probabilities, learned per-item costs) and its
// predicate trace keys — what the sharded runtime profiles placements
// and migrates estimator state with.
func (s *Service) treeAndKeys(id string) (*query.Tree, []string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return nil, nil, false
	}
	return r.q.Tree(), r.q.PredKeys(), true
}

// ProfileTree is the exported treeAndKeys: the probability-annotated
// tree and predicate trace keys of one registered query, what a
// coordinator profiles placements and migrates estimator state with.
func (s *Service) ProfileTree(id string) (*query.Tree, []string, bool) {
	return s.treeAndKeys(id)
}

// Trips totals the online estimator's detector trips (predicate and
// stream-cost alike) — the drift signal a sharded coordinator polls to
// decide when a repartition is worthwhile. 0 under the cumulative
// estimator.
func (s *Service) Trips() int64 {
	if s.ad == nil {
		return 0
	}
	p, c := s.ad.Trips()
	return p + c
}

// ExportEvidence snapshots the estimator evidence of the given predicate
// trace keys, for migrating a query's learned state to another worker.
// Nil under the cumulative estimator.
func (s *Service) ExportEvidence(keys []string) []adapt.PredicateSnapshot {
	if s.ad == nil {
		return nil
	}
	return s.ad.ExportPredicates(keys)
}

// ImportEvidence seeds estimator evidence exported from another worker;
// predicates this estimator already tracks keep their own evidence.
func (s *Service) ImportEvidence(snaps []adapt.PredicateSnapshot) {
	if s.ad == nil || len(snaps) == 0 {
		return
	}
	s.ad.ImportPredicates(snaps)
}

// SetStreamCostScale installs per-stream multipliers on the joint
// planner's view of acquisition cost (nil clears them). The sharded
// coordinator prices streams whose demand spans m shards at the
// relay-discounted blend (1 + (m-1)*frac)/m of the acquisition cost —
// the expected per-item price when one shard purchases and the rest
// relay. Scaling affects planning (leaf order and expected costs) only;
// realized costs are whatever the cache actually pays.
func (s *Service) SetStreamCostScale(scale []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := len(scale) != len(s.costScale)
	if !changed {
		for k := range scale {
			if scale[k] != s.costScale[k] {
				changed = true
				break
			}
		}
	}
	if !changed {
		return
	}
	if scale == nil {
		s.costScale = nil
	} else {
		s.costScale = append(s.costScale[:0:0], scale...)
	}
	// Cached joint plans were priced under the old scales; drop them.
	s.planner.Invalidate()
}

// Adaptive exposes the online estimator (nil under
// WithCumulativeEstimator), e.g. for estimator-state inspection.
func (s *Service) Adaptive() *adapt.Windowed { return s.ad }

// Engine exposes the shared engine (e.g. for trace-store inspection).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Cache exposes the shared acquisition cache.
func (s *Service) Cache() *acquisition.Cache { return s.cache }

// QueryOption configures one registered query.
type QueryOption func(*registered)

// Every makes the query execute only on every n-th tick (default 1:
// every tick). The query still shares the cache on the ticks it runs.
func Every(n int) QueryOption {
	return func(r *registered) {
		if n > 0 {
			r.every = n
		}
	}
}

// WithQueryExecutor overrides the execution strategy for this query only
// (e.g. engine.AdaptiveExecutor on a query small enough for the
// decision-tree DP, while the fleet default stays linear).
func WithQueryExecutor(x engine.Executor) QueryOption {
	return func(r *registered) { r.exec = x }
}

// ErrDuplicateID is returned by Register when the id is already taken.
var ErrDuplicateID = errors.New("service: duplicate query id")

// Register compiles the query text and adds it under the given id. The
// shared cache's retention horizons grow to cover the query's windows.
// Registering an already-taken id returns an error wrapping
// ErrDuplicateID.
func (s *Service) Register(id, text string, opts ...QueryOption) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	r := &registered{id: id, text: text, every: 1}
	for _, o := range opts {
		o(r)
	}
	var ck, mk string
	if s.shapeFactor {
		// Exact-twin shortcut: a text already registered under the same
		// executor interns into its class without compiling again, and
		// shares the class's compiled query.
		mk = s.executorFor(r).Name() + "\x00" + text
		if c := s.textMemo[mk]; c != nil {
			r.q = c.q
			ck = c.key
		}
	}
	if r.q == nil {
		q, err := s.eng.Compile(text)
		if err != nil {
			return fmt.Errorf("service: compiling %q: %w", id, err)
		}
		r.q = q
		ck = s.classKeyFor(r)
	}
	r.m = QueryMetrics{ID: id, Query: text, Every: r.every, Executor: s.executorFor(r).Name()}
	if s.classes[ck] == nil {
		// Retention claims are held per shape class, not per identity:
		// twins share the leader's windows, so a 10k-twin registration
		// storm grows the cache's horizons once, not 10k times.
		if err := s.cache.Retain(ck, r.q.Windows()); err != nil {
			return err
		}
	}
	c := s.internLocked(r, ck)
	if s.shapeFactor {
		if _, seen := s.textMemo[mk]; !seen {
			s.textMemo[mk] = c
			c.texts = append(c.texts, mk)
		}
	}
	s.queries[id] = r
	s.order = append(s.order, r)
	return nil
}

// classKeyFor derives the shape-class key a query interns under.
func (s *Service) classKeyFor(r *registered) string {
	if s.shapeFactor {
		// The executor is part of the class key: equal trees driven by
		// different execution strategies report different evaluated counts
		// and strategies, so they must not share executions.
		return s.executorFor(r).Name() + "\x00" + r.q.ShapeKey()
	}
	// Factoring off: a singleton class per id, so the tick path below
	// degenerates to exactly the per-query behaviour.
	return "id\x00" + r.id
}

// internLocked adds the query to its shape equivalence class under the
// precomputed class key, creating the class on first sight, and returns
// the class. Caller holds the service lock.
func (s *Service) internLocked(r *registered, ck string) *shapeClass {
	q := r.q
	c := s.classes[ck]
	if c == nil {
		c = &shapeClass{key: ck, hash: q.ShapeHash(), q: q}
		if s.shapeFactor {
			// A stable shape-derived plan key, disambiguated on the
			// (vanishingly rare) 64-bit hash collision between two live
			// distinct shapes.
			c.planKey = fmt.Sprintf("shape:%016x", c.hash)
			for n := 1; ; n++ {
				if other, taken := s.planKeys[c.planKey]; !taken || other.key == ck {
					break
				}
				c.planKey = fmt.Sprintf("shape:%016x#%d", c.hash, n)
			}
		} else {
			c.planKey = r.id
		}
		// Precompute the trip-mapping sets once per class: which
		// estimator-driven predicate keys and which streams the shape
		// depends on (see drainTrips).
		keys := q.PredKeys()
		c.estPreds = make(map[string]struct{})
		for j, p := range q.Preds {
			if math.IsNaN(p.Prob) {
				c.estPreds[keys[j]] = struct{}{}
			}
		}
		wins := q.Windows()
		c.usedStream = make([]bool, len(wins))
		for k, w := range wins {
			c.usedStream[k] = w > 0
		}
		s.classes[ck] = c
		s.classList = append(s.classList, c)
		s.planKeys[c.planKey] = c
		// Joint plans are keyed by due-set plan keys: a reused key must not
		// inherit a plan built for a class that previously held it. Marking
		// it stale replans just this class into the cached joint plan
		// instead of dropping the whole plan cache. A twin joining an
		// existing class deliberately marks nothing: the planner's inputs
		// are unchanged, so the next tick is a pure plan-cache hit.
		s.planner.MarkStale(c.planKey)
	}
	c.members = append(c.members, r)
	r.cls = c
	return c
}

// Unregister removes a query and releases its retention claim; the
// cache's horizons shrink to the maximum over the remaining queries.
func (s *Service) Unregister(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("service: unknown query id %q", id)
	}
	if r.cls == nil || r.q != r.cls.q {
		// A compile owned by this identity alone (a distinct text that
		// interned into an existing class); the class-shared query is
		// forgotten when the class dies below.
		s.eng.Forget(r.q)
	}
	delete(s.queries, id)
	for i, o := range s.order {
		if o.id == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if c := r.cls; c != nil {
		for i, m := range c.members {
			if m == r {
				c.members = append(c.members[:i], c.members[i+1:]...)
				break
			}
		}
		if len(c.members) == 0 {
			// Last subscriber gone: the class dies with it, releasing the
			// class-held retention claim, the interned compiled query and
			// the exact-twin memo entries (see Register).
			delete(s.classes, c.key)
			delete(s.planKeys, c.planKey)
			for i, o := range s.classList {
				if o == c {
					s.classList = append(s.classList[:i], s.classList[i+1:]...)
					break
				}
			}
			s.cache.Release(c.key)
			s.eng.Forget(c.q)
			for _, mk := range c.texts {
				delete(s.textMemo, mk)
			}
		}
		// A surviving class keeps its plan key, cached joint plans and
		// retention claim: unregistering one of several subscribers is
		// free for the planner and the cache.
	}
	// No planner invalidation: a shrunken due set misses the plan-cache
	// key, and the planner patches the cached joint plan by dropping just
	// this class's schedule (see fleet.Planner).
	return nil
}

// drainTrips consumes the detector events buffered since the last tick
// and marks the affected shape classes' joint-plan entries stale: a
// predicate trip touches the classes whose estimator-driven predicates
// include the tripped key, a stream-cost trip the classes with a leaf on
// the stream. One mark per class covers every subscriber — a trip on a
// predicate shared by 10k twins stales exactly one plan entry, O(distinct
// shapes) per trip instead of O(fleet), and the replan all subscribers
// observe is the leader's. The next joint plan then patches exactly those
// classes (a shift broad enough to stale most of the fleet falls back to
// a full replan). Caller holds the service lock.
func (s *Service) drainTrips() {
	s.tripMu.Lock()
	trips := s.pendingTrips
	s.pendingTrips = nil
	s.tripMu.Unlock()
	if len(trips) == 0 {
		return
	}
	marked := 0
	for _, ev := range trips {
		for _, c := range s.classList {
			hit := false
			switch ev.Kind {
			case adapt.KindPredicate:
				_, hit = c.estPreds[ev.Pred]
			case adapt.KindStreamCost:
				hit = ev.Stream >= 0 && ev.Stream < len(c.usedStream) && c.usedStream[ev.Stream]
			default:
				hit = true
			}
			if hit {
				marked += s.planner.MarkStale(c.planKey)
			}
		}
	}
	s.fleetInvalidated.Add(int64(marked))
	if marked > 0 {
		s.journal.Append(obs.Event{Type: obs.EventForcedReplan, Tick: s.tick, Shard: s.shardIdx,
			Count: marked, Detail: "joint-plan entries marked stale"})
	}
}

// QueryIDs lists registered query ids in registration order.
func (s *Service) QueryIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, len(s.order))
	for i, r := range s.order {
		ids[i] = r.id
	}
	return ids
}

// Execution records one query execution at one tick.
type Execution struct {
	// ID is the query id.
	ID string `json:"id"`
	// Tick is the service tick at which the execution ran.
	Tick int64 `json:"tick"`
	// Value is the query's truth value.
	Value bool `json:"value"`
	// Cost is the acquisition cost this execution paid. Under a shared
	// cache, an item pulled by one query is free for the others, so the
	// per-query split depends on dispatch order; the sum is what matters.
	Cost float64 `json:"cost"`
	// ExpectedCost is the planner's expected cost at planning time.
	ExpectedCost float64 `json:"expected_cost"`
	// Evaluated counts predicates computed before the tree resolved.
	Evaluated int `json:"evaluated"`
	// PlanReused reports a plan-cache hit.
	PlanReused bool `json:"plan_reused"`
	// Strategy is the execution strategy actually used
	// (engine.StrategyLinear or engine.StrategyAdaptive; an adaptive
	// executor falls back to "linear" above the DP bound or below the gap
	// threshold).
	Strategy string `json:"strategy,omitempty"`
	// FleetPlanned reports that the schedule came from the cross-query
	// joint planner rather than the query's own planner (see
	// WithFleetPlanning). ExpectedCost is then the query's share of the
	// joint expected cost, which discounts items sibling queries pull.
	FleetPlanned bool `json:"fleet_planned,omitempty"`
	// Shared reports that the execution was served by fanning out a shape
	// leader's result instead of re-evaluating the tree (see
	// WithShapeFactoring): Value, Evaluated and ExpectedCost are the
	// leader's, and Cost is 0 because the class paid once through the
	// leader.
	Shared bool `json:"shared,omitempty"`
	// Shard is the shard worker that ran the execution, stamped at
	// creation so Results histories carry it too (always 0 — omitted —
	// on a plain or one-shard service).
	Shard int `json:"shard,omitempty"`
	// Err is the execution error, if any.
	Err string `json:"err,omitempty"`
}

// TickResult reports everything that ran during one tick.
type TickResult struct {
	// Tick is the time step just processed.
	Tick int64 `json:"tick"`
	// Executions holds one entry per due query, in registration order.
	Executions []Execution `json:"executions"`
}

// executorFor returns the query's executor, falling back to the service
// default.
func (s *Service) executorFor(r *registered) engine.Executor {
	if r.exec != nil {
		return r.exec
	}
	return s.exec
}

// fanOut runs f(0..n-1) on the tick worker pool and waits for completion.
// Caller holds the service lock, so registration cannot race.
func (s *Service) fanOut(n int, f func(int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// planFleet jointly plans the due shape-class leaders running the linear
// executor (see WithFleetPlanning): their probability-annotated trees are
// handed to the fleet planner as one workload against the shared warm
// cache state — keyed by the classes' stable plan keys and weighted by
// their due subscriber counts — and the resulting per-class schedules are
// bound into the scratch plan slice executed directly in phase 3.
// fleetSet marks the leader indices covered by the joint plan; fleetOf
// maps them to their plan. Returns nil when fleet planning is off or does
// not apply. All planner inputs live in the tick scratch — trees are
// re-annotated in place and the planner deep-copies what it caches — so a
// steady-state plan allocates nothing here. Caller holds the service
// lock.
func (s *Service) planFleet(lead []*registered, fleetSet []bool) *fleet.Plan {
	if !s.fleetPlan {
		return nil
	}
	sc := &s.scratch
	sc.idx = sc.idx[:0]
	for i, r := range lead {
		if _, ok := s.executorFor(r).(engine.LinearExecutor); ok {
			sc.idx = append(sc.idx, i)
		}
	}
	if len(sc.idx) == 0 {
		return nil
	}
	idx := sc.idx
	sc.keys = sc.keys[:0]
	sc.weights = sc.weights[:0]
	sc.trees = sc.trees[:0]
	if cap(sc.need) < s.reg.Len() {
		sc.need = make([]int, s.reg.Len())
	}
	sc.need = sc.need[:s.reg.Len()]
	for k := range sc.need {
		sc.need[k] = 0
	}
	for _, i := range idx {
		r := lead[i]
		r.tree = r.q.TreeInto(r.tree)
		sc.keys = append(sc.keys, r.cls.planKey)
		sc.weights = append(sc.weights, sc.classDue[i])
		sc.trees = append(sc.trees, r.tree)
		for _, lf := range r.tree.Leaves {
			if k := int(lf.Stream); lf.Items > sc.need[k] {
				sc.need[k] = lf.Items
			}
		}
	}
	// Relay-discounted C: scale each tree's per-stream costs for the
	// joint planner's eyes only, saving the annotated values so the
	// scaling never compounds across ticks (TreeInto re-annotates only
	// streams the cost source has observations for).
	if s.costScale != nil {
		if cap(sc.costSave) < len(sc.trees) {
			sc.costSave = append(sc.costSave, make([][]float64, len(sc.trees)-len(sc.costSave))...)
		}
		sc.costSave = sc.costSave[:len(sc.trees)]
		for ti, t := range sc.trees {
			save := sc.costSave[ti][:0]
			for k := range t.Streams {
				save = append(save, t.Streams[k].Cost)
				if k < len(s.costScale) {
					t.Streams[k].Cost *= s.costScale[k]
				}
			}
			sc.costSave[ti] = save
		}
		defer func() {
			for ti, t := range sc.trees {
				for k := range t.Streams {
					t.Streams[k].Cost = sc.costSave[ti][k]
				}
			}
		}()
	}
	sc.warm = s.cache.SnapshotInto(sc.need, sc.warm)
	start := time.Now()
	fplan, reused := s.planner.PlanWeighted(sc.keys, sc.trees, sc.weights, sched.Warm(sc.warm))
	err := fplan.Validate(sc.trees)
	s.planNanos += time.Since(start).Nanoseconds()
	if err != nil {
		// Defensive: an invalid joint plan falls back to per-query
		// planning (phase 1b picks the queries up).
		s.planner.Invalidate()
		return nil
	}
	s.fleetPlans++
	if reused {
		s.fleetReuses++
	} else if fplan.Patched {
		s.fleetPatched++
	}
	s.fleetExecs += int64(len(idx))
	s.fleetExpected += fplan.Expected
	s.indepExpected += fplan.IndependentExpected
	if cap(sc.plans) < len(idx) {
		sc.plans = make([]engine.Plan, len(idx))
	}
	sc.plans = sc.plans[:len(idx)]
	for fi, i := range idx {
		qp := fplan.Queries[fi]
		sc.plans[fi] = engine.Plan{
			Tree:         sc.trees[fi],
			Schedule:     qp.Schedule,
			ExpectedCost: qp.Expected,
			Reused:       reused,
		}
		fleetSet[i] = true
		sc.fleetOf[i] = fi
	}
	return fplan
}

// Tick advances shared time by one step and executes every due query on
// the worker pool, in three phases:
//
//  1. Plan: the due queries running the linear executor are planned as
//     one joint workload by the fleet planner (see WithFleetPlanning) —
//     cross-query sharing discounts each leaf's marginal cost — while
//     queries with other executors build (or reuse) their own plans.
//     Planning only reads the cache, so all plans of one tick see the
//     same state.
//  2. Batch: the joint plan's acquisition manifest, merged with the
//     first-leaf windows of the individually planned queries, is
//     deduplicated and each shared stream is pre-acquired once (see
//     WithBatchedAcquisition). First leaves are never short-circuited,
//     so every pre-pulled item would have been paid for by some query
//     this tick anyway; batching stops concurrent workers from racing
//     to pull the same items.
//  3. Execute: the prepared plans run on the worker pool. The cache
//     stripes pulls per stream, so workers on different streams proceed
//     in parallel and the first query to need an item pays for it while
//     the rest reuse it for free.
func (s *Service) Tick() TickResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	tickStart := time.Now()
	s.tick++
	s.tickNow.Store(s.tick)
	// One package-gate atomic load when tracing is disabled anywhere in
	// the process — the whole tracing branch costs nothing otherwise.
	traced := s.tracer.Sample(s.tick)
	s.cache.Advance(1)
	s.drainTrips()

	sc := &s.scratch
	sc.due = sc.due[:0]
	for _, r := range s.order {
		if s.tick%int64(r.every) == 0 {
			sc.due = append(sc.due, r)
		}
	}
	due := sc.due
	out := TickResult{Tick: s.tick, Executions: make([]Execution, len(due))}
	if len(due) == 0 {
		s.hists.Observe(obs.PhaseTotal, time.Since(tickStart))
		return out
	}

	// Leader election: the first due subscriber of each shape class leads,
	// and later due twins point at it through leadOf. With shape factoring
	// off every class is a singleton, so lead == due and every query leads
	// itself — the exact pre-shape tick path. classDue counts the due
	// subscribers behind each leader: the joint planner's weights.
	sc.lead = sc.lead[:0]
	sc.leadDueIdx = sc.leadDueIdx[:0]
	sc.classDue = sc.classDue[:0]
	if cap(sc.leadOf) < len(due) {
		sc.leadOf = make([]int, len(due))
	}
	leadOf := sc.leadOf[:len(due)]
	for i, r := range due {
		c := r.cls
		if c.mark != s.tick {
			c.mark = s.tick
			c.leadIdx = len(sc.lead)
			sc.lead = append(sc.lead, r)
			sc.leadDueIdx = append(sc.leadDueIdx, i)
			sc.classDue = append(sc.classDue, 0)
		}
		leadOf[i] = c.leadIdx
		sc.classDue[c.leadIdx]++
	}
	lead, leadDueIdx := sc.lead, sc.leadDueIdx
	planStart := time.Now()

	// Phase 1a: joint planning of the linear-executor leaders.
	if cap(sc.preps) < len(lead) {
		sc.preps = make([]engine.Prepared, len(lead))
		sc.fleetSet = make([]bool, len(lead))
		sc.fleetOf = make([]int, len(lead))
	}
	preps := sc.preps[:len(lead)]
	fleetSet := sc.fleetSet[:len(lead)]
	fleetOf := sc.fleetOf[:len(lead)]
	for i := range preps {
		preps[i] = nil
		fleetSet[i] = false
		fleetOf[i] = -1
	}
	fplan := s.planFleet(lead, fleetSet)

	// Phase 1b: every leader not covered by the joint plan prepares
	// through its own executor.
	s.fanOut(len(lead), func(i int) {
		if fleetSet[i] {
			return
		}
		r := lead[i]
		prep, err := s.executorFor(r).Prepare(r.q, s.cache)
		if err != nil {
			out.Executions[leadDueIdx[i]] = Execution{ID: r.id, Tick: s.tick, Shard: s.shardIdx, Err: err.Error()}
			return
		}
		preps[i] = prep
	})
	planDur := time.Since(planStart)
	acquireStart := time.Now()

	// Phase 2: batched acquisition of the deduplicated opening windows.
	if s.batch {
		n := s.reg.Len()
		if cap(sc.winds) < n {
			sc.winds = make([][]int, n)
			sc.batchNeed = make([]int, n)
			sc.batchTouched = make([]bool, n)
		}
		winds, need, touched := sc.winds[:n], sc.batchNeed[:n], sc.batchTouched[:n]
		for k := range winds {
			winds[k] = winds[k][:0]
			need[k] = 0
			touched[k] = false
		}
		if fplan != nil {
			for _, pf := range fplan.Manifest {
				winds[pf.Stream] = append(winds[pf.Stream], pf.Windows...)
				touched[pf.Stream] = true
				if pf.Items > need[pf.Stream] {
					need[pf.Stream] = pf.Items
				}
			}
		}
		for i, p := range preps {
			if p == nil || fleetSet[i] {
				continue // failed, or already in the joint manifest
			}
			k, d, ok := p.FirstAcquisition()
			if !ok {
				continue
			}
			winds[k] = append(winds[k], d)
			touched[k] = true
			if d > need[k] {
				need[k] = d
			}
		}
		// Count duplicates against items that actually have to be
		// transferred: a cached item costs nothing to re-request, but a
		// missing item wanted by n queries would be raced for by n workers
		// and is now pulled exactly once.
		sc.batchSnap = s.cache.SnapshotInto(need, sc.batchSnap)
		cached := sc.batchSnap
		for k := range winds {
			if !touched[k] {
				continue
			}
			ds := winds[k]
			for t := 1; t <= need[k]; t++ {
				if cached[k][t-1] {
					continue
				}
				covering := 0
				for _, d := range ds {
					if d >= t {
						covering++
					}
				}
				s.dupAvoided += int64(covering - 1)
				s.dupAvoidedK[k] += int64(covering - 1)
			}
			items, cost := s.cache.Prefetch(k, need[k])
			s.batchItems += int64(items)
			s.batchCost += cost
		}
	}

	acquireDur := time.Since(acquireStart)
	execStart := time.Now()

	// Phase 3: execute the leaders. Fleet-planned queries run their
	// scratch plan directly — no per-query Prepared wrapper on the hot
	// path.
	s.fanOut(len(lead), func(i int) {
		r := lead[i]
		var res engine.Result
		var err error
		if fi := fleetOf[i]; fi >= 0 {
			res, err = r.q.ExecutePlan(&sc.plans[fi], s.cache)
		} else if preps[i] != nil {
			res, err = preps[i].Execute(s.cache)
		} else {
			return // planning failed; the error is already recorded
		}
		e := Execution{
			ID:           r.id,
			Tick:         s.tick,
			Shard:        s.shardIdx,
			Value:        res.Value,
			Cost:         res.Cost,
			ExpectedCost: res.ExpectedCost,
			Evaluated:    res.Evaluated,
			PlanReused:   res.PlanReused,
			Strategy:     res.Strategy,
			FleetPlanned: fleetSet[i],
		}
		if err != nil {
			e.Err = err.Error()
		}
		out.Executions[leadDueIdx[i]] = e
	})
	execDur := time.Since(execStart)
	fanStart := time.Now()

	// Fan the leaders' results out to their due twins: every shared
	// subscriber observes the leader's verdict, evaluated count and
	// modelled cost under its own identity. Realized Cost stays 0 — the
	// class paid once, through the leader — and the execution is flagged
	// Shared. Errors fan out too: a failing shape fails every subscriber.
	if len(lead) < len(due) {
		for i, r := range due {
			li := leadOf[i]
			if leadDueIdx[li] == i {
				continue // the leader itself
			}
			e := &out.Executions[i]
			*e = out.Executions[leadDueIdx[li]]
			e.ID = r.id
			e.Cost = 0
			e.Shared = true
			s.sharedExecs++
		}
	}

	for i, r := range due {
		e := &out.Executions[i]
		s.executions++
		if e.PlanReused {
			s.planHits++
		} else {
			s.planMisses++
		}
		s.paidCost += e.Cost
		s.expCost += e.ExpectedCost
		s.evaluated += int64(e.Evaluated)
		if e.Strategy == engine.StrategyAdaptive {
			s.adaptiveExecs++
			r.m.AdaptiveExecutions++
		}
		r.m.Executions++
		if e.Value {
			r.m.TrueCount++
		}
		r.m.PaidCost += e.Cost
		r.m.ExpectedCost += e.ExpectedCost
		r.m.PredicatesEvaluated += int64(e.Evaluated)
		if e.PlanReused {
			r.m.PlanCacheHits++
		}
		if e.Err != "" {
			r.m.Errors++
		}
		if len(r.hist) < s.history {
			if r.hist == nil {
				r.hist = make([]Execution, 0, s.history)
			}
			r.hist = append(r.hist, *e)
		} else {
			r.hist[r.histPos] = *e
			if r.histPos++; r.histPos == s.history {
				r.histPos = 0
			}
		}
	}
	s.observeCosts()

	// Per-phase latency: five allocation-free atomic bumps.
	totalDur := time.Since(tickStart)
	s.hists.Observe(obs.PhasePlan, planDur)
	s.hists.Observe(obs.PhaseAcquire, acquireDur)
	s.hists.Observe(obs.PhaseExecute, execDur)
	s.hists.Observe(obs.PhaseFanOut, time.Since(fanStart))
	s.hists.Observe(obs.PhaseTotal, totalDur)
	if traced {
		s.recordTrace(tickStart, planDur, acquireDur, execDur, time.Since(fanStart), totalDur, len(due), lead, leadDueIdx, out)
	}
	return out
}

// recordTrace builds and stores one sampled tick trace (see
// WithTraceSampling). Only sampled ticks reach here, so its allocations
// never touch the steady-state tick path. Caller holds the service lock.
func (s *Service) recordTrace(start time.Time, plan, acquire, exec, fan, total time.Duration,
	dueN int, lead []*registered, leadDueIdx []int, out TickResult) {
	tr := obs.TickTrace{
		Tick:        s.tick,
		Shard:       s.shardIdx,
		StartUnixNs: start.UnixNano(),
		PlanNs:      int64(plan),
		AcquireNs:   int64(acquire),
		ExecuteNs:   int64(exec),
		FanOutNs:    int64(fan),
		TotalNs:     int64(total),
		DueQueries:  dueN,
		DueClasses:  len(lead),
		Classes:     make([]obs.ClassTrace, len(lead)),
	}
	for i, r := range lead {
		e := out.Executions[leadDueIdx[i]]
		tr.Classes[i] = obs.ClassTrace{
			Leader:       r.id,
			Shape:        r.cls.planKey,
			Subscribers:  s.scratch.classDue[i],
			PlanReused:   e.PlanReused,
			FleetPlanned: e.FleetPlanned,
			Strategy:     e.Strategy,
			ExpectedCost: e.ExpectedCost,
			RealizedCost: e.Cost,
			Evaluated:    e.Evaluated,
			Err:          e.Err,
		}
	}
	s.tracer.Record(tr)
}

// observeCosts feeds this tick's realized per-stream acquisition costs
// into the online estimator: for every stream that transferred items
// since the previous tick, the average per-item cost actually paid. This
// is how the planner's C becomes a learned quantity — and how the
// per-stream cost detectors see price-regime shifts. Caller holds the
// service lock.
func (s *Service) observeCosts() {
	if s.ad == nil {
		return
	}
	for k := 0; k < s.reg.Len(); k++ {
		ss := s.cache.StreamStats(k)
		items := ss.Transferred - s.prevTransferred[k]
		// Relay savings are added back: the estimator learns the stream's
		// acquisition price, not the (race-dependent) mix of full and
		// transfer prices this shard happened to pay. Relay discounts
		// reach the planner deterministically via SetStreamCostScale.
		spent := ss.Spent - s.prevSpent[k] + (ss.RelaySaved - s.prevRelaySaved[k])
		s.prevTransferred[k] = ss.Transferred
		s.prevSpent[k] = ss.Spent
		s.prevRelaySaved[k] = ss.RelaySaved
		if items > 0 {
			s.ad.ObserveCost(k, spent/float64(items), int(items))
		}
	}
}

// Run executes n consecutive ticks and returns their results.
func (s *Service) Run(n int) []TickResult {
	out := make([]TickResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Tick())
	}
	return out
}

// Results returns the most recent executions of a query (up to the
// configured history), oldest first.
func (s *Service) Results(id string, n int) ([]Execution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown query id %q", id)
	}
	// Unroll the ring into chronological order: oldest at histPos once
	// the ring is full, at 0 while still filling.
	h := make([]Execution, 0, len(r.hist))
	if len(r.hist) == cap(r.hist) {
		h = append(h, r.hist[r.histPos:]...)
		h = append(h, r.hist[:r.histPos]...)
	} else {
		h = append(h, r.hist...)
	}
	if n > 0 && n < len(h) {
		h = h[len(h)-n:]
	}
	return h, nil
}

// QueryMetrics aggregates the executions of one query.
type QueryMetrics struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	Every int    `json:"every"`
	// Executor is the strategy kind the query's executor aims for
	// ("linear", "adaptive"); AdaptiveExecutions counts executions that
	// actually walked a decision tree rather than falling back.
	Executor           string `json:"executor"`
	AdaptiveExecutions int64  `json:"adaptive_executions,omitempty"`
	Executions         int64  `json:"executions"`
	TrueCount          int64  `json:"true_count"`
	// PaidCost is the acquisition cost this query's executions paid;
	// ExpectedCost sums the planner's expectations. Under a shared cache
	// the per-query split of paid cost depends on dispatch order (and
	// batched acquisitions are paid by the fleet), so
	// RealizedOverExpected is most meaningful fleet-wide.
	PaidCost             float64 `json:"paid_cost"`
	ExpectedCost         float64 `json:"expected_cost"`
	RealizedOverExpected float64 `json:"realized_over_expected"`
	PredicatesEvaluated  int64   `json:"predicates_evaluated"`
	PlanCacheHits        int64   `json:"plan_cache_hits"`
	Errors               int64   `json:"errors"`
}

// withRatio returns the metrics with the realized-vs-expected cost ratio
// filled in.
func (m QueryMetrics) withRatio() QueryMetrics {
	if m.ExpectedCost > 0 {
		m.RealizedOverExpected = m.PaidCost / m.ExpectedCost
	}
	return m
}

// QueryMetrics returns the per-query aggregates.
func (s *Service) QueryMetrics(id string) (QueryMetrics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return QueryMetrics{}, fmt.Errorf("service: unknown query id %q", id)
	}
	return r.m.withRatio(), nil
}

// Metrics aggregates the whole fleet.
type Metrics struct {
	// Ticks is the number of time steps processed.
	Ticks int64 `json:"ticks"`
	// Queries is the number of currently registered queries.
	Queries int `json:"queries"`
	// Executions counts query executions across all ticks.
	Executions int64 `json:"executions"`
	// PaidCost is the total acquisition cost actually paid by the fleet;
	// ExpectedCost sums the planners' expectations. Paid below expected
	// is the shared-cache dividend.
	PaidCost     float64 `json:"paid_cost"`
	ExpectedCost float64 `json:"expected_cost"`
	// RealizedOverExpected is PaidCost / ExpectedCost: how the fleet's
	// realized acquisition spend compares to the planners' models (< 1 is
	// the shared-cache dividend).
	RealizedOverExpected float64 `json:"realized_over_expected"`
	// AdaptiveExecutions counts executions that walked a decision tree
	// instead of a fixed schedule (see engine.AdaptiveExecutor).
	AdaptiveExecutions int64 `json:"adaptive_executions"`
	// BatchedCost and BatchedItems report what the tick-level acquisition
	// batcher pre-pulled on behalf of the fleet (included in PaidCost);
	// DuplicatePullsAvoided counts, over items that actually had to be
	// transferred, the redundant first-leaf requests beyond the first —
	// the pulls concurrent workers would have raced to issue for the same
	// missing item (see WithBatchedAcquisition).
	BatchedCost           float64 `json:"batched_cost"`
	BatchedItems          int64   `json:"batched_items"`
	DuplicatePullsAvoided int64   `json:"duplicate_pulls_avoided"`
	// PredicatesEvaluated counts predicate evaluations across the fleet.
	PredicatesEvaluated int64 `json:"predicates_evaluated"`
	// PlanCacheHits / PlanCacheHitRate report how often re-planning was
	// skipped (see engine.WithReplanThreshold).
	PlanCacheHits    int64   `json:"plan_cache_hits"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	// FleetPlans counts ticks planned jointly across queries and
	// FleetPlanReuses the subset served from the fleet plan cache;
	// FleetPlannedExecutions counts executions that ran a joint
	// schedule (see WithFleetPlanning).
	FleetPlans             int64 `json:"fleet_plans"`
	FleetPlanReuses        int64 `json:"fleet_plan_reuses"`
	FleetPlannedExecutions int64 `json:"fleet_planned_executions"`
	// FleetPlanIncremental counts the fleet plans produced by patching
	// the previous joint plan — register/unregister/drift events absorbed
	// without replanning the whole fleet (see fleet.Planner). PlanNanos
	// is the cumulative wall-clock time spent in joint planning.
	FleetPlanIncremental int64 `json:"plan_incremental"`
	PlanNanos            int64 `json:"plan_ns"`
	// FleetExpectedCost sums the joint planner's modelled fleet costs
	// (every shared item priced once); IndependentExpectedCost sums what
	// per-query planning would have modelled for the same workloads.
	// FleetModelledSaving is their relative gap — the modelled dividend
	// of planning the fleet as one workload.
	FleetExpectedCost       float64 `json:"fleet_expected_cost"`
	IndependentExpectedCost float64 `json:"independent_expected_cost"`
	FleetModelledSaving     float64 `json:"fleet_modelled_saving"`
	// ShapeFactoring reports whether cross-tenant shape factoring is on
	// (see WithShapeFactoring). DistinctShapes counts the live shape
	// equivalence classes (equal to Queries when factoring is off or no
	// two queries share a shape) and ShapeSubscribers the registered
	// identities interned into them; SharedExecutions counts executions
	// served by fanning a leader's result out to a twin instead of
	// re-evaluating the tree.
	ShapeFactoring   bool  `json:"shape_factoring"`
	DistinctShapes   int   `json:"distinct_shapes"`
	ShapeSubscribers int   `json:"shape_subscribers"`
	SharedExecutions int64 `json:"shared_executions"`
	// Estimator names the probability-estimation mode: "windowed" (the
	// online adaptive default; see internal/adapt) or "cumulative" (the
	// never-forgetting baseline). EstimatorWindow is the sliding-window
	// size (0 for cumulative).
	Estimator       string `json:"estimator"`
	EstimatorWindow int    `json:"estimator_window,omitempty"`
	// PredicateDetectorTrips / CostDetectorTrips count Page-Hinkley
	// regime-shift detections on predicate probabilities and per-stream
	// acquisition costs; ReplansForced counts the plan-cache evictions
	// those trips drove — per-query cached plans plus cached joint fleet
	// plans (targeted invalidation instead of passive drift checks).
	PredicateDetectorTrips int64 `json:"predicate_detector_trips"`
	CostDetectorTrips      int64 `json:"cost_detector_trips"`
	ReplansForced          int64 `json:"replans_forced"`
	// AvgCIWidth is the mean confidence-interval width over tracked
	// predicates — the fleet's evidence gauge (small = estimates are
	// well-backed; 1 = no evidence).
	AvgCIWidth float64 `json:"avg_ci_width,omitempty"`
	// TrackedPredicates is the number of distinct predicates in the trace
	// store; TraceEvictions counts predicates evicted to honour its cap
	// (see WithTraceCap).
	TrackedPredicates int   `json:"tracked_predicates"`
	TraceEvictions    int64 `json:"trace_evictions"`
	// CacheRequested / CacheTransferred / CacheHitRate report shared
	// acquisition-cache traffic: the fraction of requested items served
	// without paying.
	CacheRequested   int64   `json:"cache_requested"`
	CacheTransferred int64   `json:"cache_transferred"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	// RelayHits counts L1 misses served from the fleet-global L2 relay
	// instead of re-acquiring from the stream; RelaySavedSpend is the
	// acquisition cost those hits avoided net of transfer prices (both
	// zero without an attached relay; see acquisition.ItemRelay).
	RelayHits       int64   `json:"relay_hits,omitempty"`
	RelaySavedSpend float64 `json:"relay_saved_spend,omitempty"`
	// TickLatency is the per-phase tick-latency picture (phase name ->
	// histogram snapshot with p50/p90/p99 estimates; see internal/obs).
	// On a plain service it is the service's own latency; the sharded
	// runtime merges every worker's histograms bucket-by-bucket, so the
	// quantiles are fleet-wide. Omitted under WithTickHistograms(false).
	TickLatency obs.LatencySnapshot `json:"tick_latency,omitempty"`
	// PerStream breaks acquisition traffic down by stream, by registry
	// index (see StreamMetrics).
	PerStream []StreamMetrics `json:"per_stream"`
	// PerQuery holds the per-query aggregates, sorted by id.
	PerQuery []QueryMetrics `json:"per_query"`

	// Shards is the number of shard workers (0 on a plain unsharded
	// Service, >= 1 under the sharded runtime; see NewSharded). The
	// remaining fields are populated only when Shards > 1.
	Shards int `json:"shards,omitempty"`
	// Repartitions counts partitioner runs (registrations place
	// incrementally; this counts full re-partitions) and QueriesMoved
	// the queries they moved between shards.
	Repartitions int64 `json:"repartitions,omitempty"`
	QueriesMoved int64 `json:"queries_moved,omitempty"`
	// ShardJointExpectedCost sums the per-shard joint plan costs of the
	// current placement (sharing only inside each shard);
	// SingleJointExpectedCost is the K=1 joint cost of the same fleet.
	// SharingLostPct is their relative gap — the modelled sharing lost
	// to partitioning (see shard.SharingLoss).
	ShardJointExpectedCost  float64 `json:"shard_joint_expected_cost,omitempty"`
	SingleJointExpectedCost float64 `json:"single_joint_expected_cost,omitempty"`
	SharingLostPct          float64 `json:"sharing_lost_pct,omitempty"`
	// CrossShardDuplicateTransfers / CrossShardDuplicateSpend are the
	// realized counterparts: items transferred by a shard cache that
	// another shard's cache had already paid for, and what those
	// re-acquisitions cost (see acquisition.Ledger). With a relay the
	// duplicates are still counted, but their spend is transfer cost.
	CrossShardDuplicateTransfers int64   `json:"cross_shard_duplicate_transfers,omitempty"`
	CrossShardDuplicateSpend     float64 `json:"cross_shard_duplicate_spend,omitempty"`
	// RelayEnabled reports a fleet-global L2 relay across the shard
	// caches; RelayTransferFrac its per-item transfer cost as a fraction
	// of acquisition cost; RelayPurchases the items acquired at full
	// stream cost (once fleet-wide); RelayTransferSpend the cost paid for
	// relay transfers (see acquisition.ItemRelay).
	RelayEnabled       bool    `json:"relay_enabled,omitempty"`
	RelayTransferFrac  float64 `json:"relay_transfer_frac,omitempty"`
	RelayPurchases     int64   `json:"relay_purchases,omitempty"`
	RelayTransferSpend float64 `json:"relay_transfer_spend,omitempty"`
	// RelayJointExpectedCost prices the current placement with the relay:
	// cross-shard duplicated expected spend paid at RelayTransferFrac
	// instead of in full; SharingLostPctRelay is the corresponding
	// modelled sharing loss (RelayTransferFrac * SharingLostPct — what
	// the relay does not recover; see shard.Loss.WithRelay).
	RelayJointExpectedCost float64 `json:"relay_joint_expected_cost,omitempty"`
	SharingLostPctRelay    float64 `json:"sharing_lost_pct_relay,omitempty"`
	// PerShard breaks the fleet down by shard worker.
	PerShard []ShardSummary `json:"per_shard,omitempty"`

	// Admission is the admission controller's backpressure snapshot —
	// overload verdict, decision census, tenant budgets (see
	// internal/admit). Nil when the runtime is not behind an
	// AdmissionGate, so admission off leaves the metrics payload
	// byte-identical to the ungated service.
	Admission *admit.Metrics `json:"admission,omitempty"`
}

// ShardSummary is one shard worker's slice of the sharded runtime's
// metrics.
type ShardSummary struct {
	// Shard is the worker index.
	Shard int `json:"shard"`
	// Queries is the number of queries currently placed on the shard;
	// ExpectedLoad their summed expected independent-plan cost (the
	// partitioner's balance currency).
	Queries      int     `json:"queries"`
	ExpectedLoad float64 `json:"expected_load"`
	// Executions, PaidCost, CacheTransferred and CacheHitRate are the
	// shard's share of the fleet aggregates.
	Executions       int64   `json:"executions"`
	PaidCost         float64 `json:"paid_cost"`
	CacheTransferred int64   `json:"cache_transferred"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	// TickLatency is the shard's total-phase tick-latency histogram (nil
	// when the worker reports no latency data).
	TickLatency *obs.HistSnapshot `json:"tick_latency,omitempty"`
}

// Runtime is the serving surface shared by the single-process Service
// and the sharded runtime (see NewSharded): everything a front-end needs
// to register queries, advance time and read results and metrics,
// independent of how execution is partitioned.
type Runtime interface {
	Register(id, text string, opts ...QueryOption) error
	// QuoteRegister prices a registration's marginal joint cost without
	// performing it — the read-only front half of admission control (see
	// Quote and fleet.QuoteJoint).
	QuoteRegister(id, text string, opts ...QueryOption) (Quote, error)
	Unregister(id string) error
	QueryIDs() []string
	Tick() TickResult
	Run(n int) []TickResult
	Results(id string, n int) ([]Execution, error)
	QueryMetrics(id string) (QueryMetrics, error)
	Metrics() Metrics
	// Journal exposes the runtime's event journal (drift trips, forced
	// replans, repartitions, relay publishes, estimator evictions) and
	// TickTraces the sampled tick traces; SetTraceSampling changes the
	// tracer's period at runtime (n <= 0 disables). See internal/obs.
	Journal() *obs.Journal
	TickTraces(tick int64) []obs.TickTrace
	TraceTicks() []int64
	SetTraceSampling(n int)
	TraceSampling() int
}

// StreamMetrics reports one stream's share of the shared acquisition
// cache's traffic — the per-stream contention and sharing picture that
// fleet-wide aggregates hide.
type StreamMetrics struct {
	// Stream is the registry index; Name the stream's source name.
	Stream int    `json:"stream"`
	Name   string `json:"name"`
	// Requested counts items of this stream asked for by executions;
	// Transferred every item actually acquired from it (on-demand misses
	// and batched prefetches alike); HitRate the fraction of requests
	// served without a same-call transfer (prefetched items count
	// against it, so it measures cross-query sharing).
	Requested   int64   `json:"requested"`
	Transferred int64   `json:"transferred"`
	HitRate     float64 `json:"hit_rate"`
	// Spent is the acquisition cost paid for the stream.
	Spent float64 `json:"spent"`
	// DuplicatePullsAvoided is this stream's share of the tick batcher's
	// coalesced duplicate pulls (see Metrics.DuplicatePullsAvoided).
	DuplicatePullsAvoided int64 `json:"duplicate_pulls_avoided"`
	// LearnedCostPerItem is the online estimator's per-item cost EWMA for
	// the stream (0 until an acquisition has been observed, or under the
	// cumulative estimator) — the C planners actually price with.
	LearnedCostPerItem float64 `json:"learned_cost_per_item,omitempty"`
	// CostDetectorTrips counts price-regime shifts detected on the
	// stream.
	CostDetectorTrips int64 `json:"cost_detector_trips,omitempty"`
	// RelayHits counts this stream's transfers served from the fleet L2
	// relay; RelaySavedSpend the acquisition cost they avoided net of
	// transfer prices (zero without a relay).
	RelayHits       int64   `json:"relay_hits,omitempty"`
	RelaySavedSpend float64 `json:"relay_saved_spend,omitempty"`
}

// Metrics returns a fleet-wide snapshot.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.cache.Stats()
	m := Metrics{
		Ticks:      s.tick,
		Queries:    len(s.queries),
		Executions: s.executions,
		// Batched acquisitions are paid by the fleet on the queries'
		// behalf: include them so PaidCost totals are comparable whether
		// batching is on or off.
		PaidCost:                s.paidCost + s.batchCost,
		ExpectedCost:            s.expCost,
		AdaptiveExecutions:      s.adaptiveExecs,
		BatchedCost:             s.batchCost,
		BatchedItems:            s.batchItems,
		DuplicatePullsAvoided:   s.dupAvoided,
		PredicatesEvaluated:     s.evaluated,
		PlanCacheHits:           s.planHits,
		FleetPlans:              s.fleetPlans,
		FleetPlanReuses:         s.fleetReuses,
		FleetPlannedExecutions:  s.fleetExecs,
		FleetPlanIncremental:    s.fleetPatched,
		PlanNanos:               s.planNanos,
		FleetExpectedCost:       s.fleetExpected,
		IndependentExpectedCost: s.indepExpected,
		CacheRequested:          cs.Requested,
		CacheTransferred:        cs.Transferred,
		CacheHitRate:            cs.HitRate(),
		ShapeFactoring:          s.shapeFactor,
		DistinctShapes:          len(s.classList),
		SharedExecutions:        s.sharedExecs,
	}
	for _, c := range s.classList {
		m.ShapeSubscribers += len(c.members)
	}
	if m.ExpectedCost > 0 {
		m.RealizedOverExpected = m.PaidCost / m.ExpectedCost
	}
	if s.planHits+s.planMisses > 0 {
		m.PlanCacheHitRate = float64(s.planHits) / float64(s.planHits+s.planMisses)
	}
	if m.IndependentExpectedCost > 0 {
		m.FleetModelledSaving = 1 - m.FleetExpectedCost/m.IndependentExpectedCost
	}
	m.Estimator = "cumulative"
	m.ReplansForced = s.eng.ReplansForced() + s.fleetInvalidated.Load()
	m.TrackedPredicates = s.eng.Traces().Len()
	m.TraceEvictions = s.eng.Traces().Evictions()
	learned := map[int]adapt.StreamCostState{}
	if s.ad != nil {
		m.Estimator = s.ad.Name()
		m.EstimatorWindow = s.ad.Window()
		m.PredicateDetectorTrips, m.CostDetectorTrips = s.ad.Trips()
		m.AvgCIWidth = s.ad.AvgCIWidth()
		for _, cs := range s.ad.StreamCosts() {
			learned[cs.Stream] = cs
		}
	}
	for _, ss := range s.cache.PerStream() {
		m.PerStream = append(m.PerStream, StreamMetrics{
			Stream:                ss.Stream,
			Name:                  ss.Name,
			Requested:             ss.Requested,
			Transferred:           ss.Transferred,
			HitRate:               ss.HitRate,
			Spent:                 ss.Spent,
			DuplicatePullsAvoided: s.dupAvoidedK[ss.Stream],
			LearnedCostPerItem:    learned[ss.Stream].PerItem,
			CostDetectorTrips:     learned[ss.Stream].Trips,
			RelayHits:             ss.RelayHits,
			RelaySavedSpend:       ss.RelaySaved,
		})
		m.RelayHits += ss.RelayHits
		m.RelaySavedSpend += ss.RelaySaved
	}
	for _, r := range s.queries {
		m.PerQuery = append(m.PerQuery, r.m.withRatio())
	}
	sortQueryMetrics(m.PerQuery)
	m.TickLatency = s.hists.Snapshot()
	return m
}

// sortQueryMetrics orders per-query aggregates by id.
func sortQueryMetrics(qs []QueryMetrics) {
	sort.Slice(qs, func(i, j int) bool { return qs[i].ID < qs[j].ID })
}

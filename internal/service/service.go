// Package service turns the single-query engine into a concurrent
// multi-query scheduling service: many compiled queries share one stream
// registry, one acquisition cache and one trace store, time advances in
// ticks, and every query due at a tick executes on a worker pool.
//
// Sharing is the point of the paper's model — a data item pulled for one
// query is reused for free by every other query that needs it — and the
// service is where that sharing pays off across queries, not just across
// the leaves of one tree. The cache's per-stream retention horizon is
// kept equal to the maximum window over all registered queries,
// recomputed on register/unregister, and the per-query plan caches of the
// engine skip re-planning on ticks where nothing drifted.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"paotr/internal/acquisition"
	"paotr/internal/engine"
	"paotr/internal/stream"
)

// Service schedules and executes many continuous queries over one shared
// registry and acquisition cache. All methods are safe for concurrent
// use; Register/Unregister serialize against running ticks.
type Service struct {
	mu      sync.Mutex
	reg     *stream.Registry
	eng     *engine.Engine
	cache   *acquisition.Cache
	queries map[string]*registered
	order   []string // registration order, for deterministic dispatch
	workers int
	history int
	tick    int64

	executions int64
	planHits   int64
	planMisses int64
	paidCost   float64
	expCost    float64
	evaluated  int64
}

// registered is one query under service management.
type registered struct {
	id    string
	text  string
	q     *engine.Query
	every int
	hist  []Execution
	m     QueryMetrics
}

// Option configures a Service.
type Option func(*config)

type config struct {
	workers int
	history int
	engOpts []engine.Option
}

// WithWorkers sets the tick worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithHistory sets how many past executions are retained per query for
// Results (default 64).
func WithHistory(n int) Option { return func(c *config) { c.history = n } }

// WithEngineOptions forwards options to the underlying engine (planner
// overrides, trace store, replan threshold).
func WithEngineOptions(opts ...engine.Option) Option {
	return func(c *config) { c.engOpts = append(c.engOpts, opts...) }
}

// New creates a service over the registry with an empty shared cache.
func New(reg *stream.Registry, opts ...Option) *Service {
	cfg := config{workers: runtime.GOMAXPROCS(0), history: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.history < 1 {
		cfg.history = 1
	}
	return &Service{
		reg:     reg,
		eng:     engine.New(reg, cfg.engOpts...),
		cache:   acquisition.NewShared(reg),
		queries: map[string]*registered{},
		workers: cfg.workers,
		history: cfg.history,
	}
}

// Engine exposes the shared engine (e.g. for trace-store inspection).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Cache exposes the shared acquisition cache.
func (s *Service) Cache() *acquisition.Cache { return s.cache }

// QueryOption configures one registered query.
type QueryOption func(*registered)

// Every makes the query execute only on every n-th tick (default 1:
// every tick). The query still shares the cache on the ticks it runs.
func Every(n int) QueryOption {
	return func(r *registered) {
		if n > 0 {
			r.every = n
		}
	}
}

// ErrDuplicateID is returned by Register when the id is already taken.
var ErrDuplicateID = errors.New("service: duplicate query id")

// Register compiles the query text and adds it under the given id. The
// shared cache's retention horizons grow to cover the query's windows.
// Registering an already-taken id returns an error wrapping
// ErrDuplicateID.
func (s *Service) Register(id, text string, opts ...QueryOption) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	q, err := s.eng.Compile(text)
	if err != nil {
		return fmt.Errorf("service: compiling %q: %w", id, err)
	}
	if err := s.cache.Retain(id, q.Windows()); err != nil {
		return err
	}
	r := &registered{id: id, text: text, q: q, every: 1}
	for _, o := range opts {
		o(r)
	}
	r.m = QueryMetrics{ID: id, Query: text, Every: r.every}
	s.queries[id] = r
	s.order = append(s.order, id)
	return nil
}

// Unregister removes a query and releases its retention claim; the
// cache's horizons shrink to the maximum over the remaining queries.
func (s *Service) Unregister(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queries[id]; !ok {
		return fmt.Errorf("service: unknown query id %q", id)
	}
	delete(s.queries, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.cache.Release(id)
	return nil
}

// QueryIDs lists registered query ids in registration order.
func (s *Service) QueryIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Execution records one query execution at one tick.
type Execution struct {
	// ID is the query id.
	ID string `json:"id"`
	// Tick is the service tick at which the execution ran.
	Tick int64 `json:"tick"`
	// Value is the query's truth value.
	Value bool `json:"value"`
	// Cost is the acquisition cost this execution paid. Under a shared
	// cache, an item pulled by one query is free for the others, so the
	// per-query split depends on dispatch order; the sum is what matters.
	Cost float64 `json:"cost"`
	// ExpectedCost is the planner's expected cost at planning time.
	ExpectedCost float64 `json:"expected_cost"`
	// Evaluated counts predicates computed before the tree resolved.
	Evaluated int `json:"evaluated"`
	// PlanReused reports a plan-cache hit.
	PlanReused bool `json:"plan_reused"`
	// Err is the execution error, if any.
	Err string `json:"err,omitempty"`
}

// TickResult reports everything that ran during one tick.
type TickResult struct {
	// Tick is the time step just processed.
	Tick int64 `json:"tick"`
	// Executions holds one entry per due query, in registration order.
	Executions []Execution `json:"executions"`
}

// Tick advances shared time by one step and executes every due query on
// the worker pool. Executions of one tick all see the same cache time;
// the cache serializes concurrent pulls, so the first query to need an
// item pays for it and the rest reuse it for free.
func (s *Service) Tick() TickResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.cache.Advance(1)

	due := make([]*registered, 0, len(s.order))
	for _, id := range s.order {
		r := s.queries[id]
		if s.tick%int64(r.every) == 0 {
			due = append(due, r)
		}
	}
	out := TickResult{Tick: s.tick, Executions: make([]Execution, len(due))}
	if len(due) == 0 {
		return out
	}

	// Fan the due queries out over the worker pool. The engine and cache
	// are concurrency-safe; the service lock is held, so registration
	// changes cannot race with the tick.
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(due) {
		workers = len(due)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := due[i]
				res, err := r.q.Execute(s.cache)
				e := Execution{
					ID:           r.id,
					Tick:         s.tick,
					Value:        res.Value,
					Cost:         res.Cost,
					ExpectedCost: res.ExpectedCost,
					Evaluated:    res.Evaluated,
					PlanReused:   res.PlanReused,
				}
				if err != nil {
					e.Err = err.Error()
				}
				out.Executions[i] = e
			}
		}()
	}
	for i := range due {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, r := range due {
		e := out.Executions[i]
		s.executions++
		if e.PlanReused {
			s.planHits++
		} else {
			s.planMisses++
		}
		s.paidCost += e.Cost
		s.expCost += e.ExpectedCost
		s.evaluated += int64(e.Evaluated)
		r.m.Executions++
		if e.Value {
			r.m.TrueCount++
		}
		r.m.PaidCost += e.Cost
		r.m.ExpectedCost += e.ExpectedCost
		r.m.PredicatesEvaluated += int64(e.Evaluated)
		if e.PlanReused {
			r.m.PlanCacheHits++
		}
		if e.Err != "" {
			r.m.Errors++
		}
		r.hist = append(r.hist, e)
		if len(r.hist) > s.history {
			r.hist = r.hist[len(r.hist)-s.history:]
		}
	}
	return out
}

// Run executes n consecutive ticks and returns their results.
func (s *Service) Run(n int) []TickResult {
	out := make([]TickResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Tick())
	}
	return out
}

// Results returns the most recent executions of a query (up to the
// configured history), oldest first.
func (s *Service) Results(id string, n int) ([]Execution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown query id %q", id)
	}
	h := r.hist
	if n > 0 && n < len(h) {
		h = h[len(h)-n:]
	}
	return append([]Execution(nil), h...), nil
}

// QueryMetrics aggregates the executions of one query.
type QueryMetrics struct {
	ID                  string  `json:"id"`
	Query               string  `json:"query"`
	Every               int     `json:"every"`
	Executions          int64   `json:"executions"`
	TrueCount           int64   `json:"true_count"`
	PaidCost            float64 `json:"paid_cost"`
	ExpectedCost        float64 `json:"expected_cost"`
	PredicatesEvaluated int64   `json:"predicates_evaluated"`
	PlanCacheHits       int64   `json:"plan_cache_hits"`
	Errors              int64   `json:"errors"`
}

// QueryMetrics returns the per-query aggregates.
func (s *Service) QueryMetrics(id string) (QueryMetrics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return QueryMetrics{}, fmt.Errorf("service: unknown query id %q", id)
	}
	return r.m, nil
}

// Metrics aggregates the whole fleet.
type Metrics struct {
	// Ticks is the number of time steps processed.
	Ticks int64 `json:"ticks"`
	// Queries is the number of currently registered queries.
	Queries int `json:"queries"`
	// Executions counts query executions across all ticks.
	Executions int64 `json:"executions"`
	// PaidCost is the total acquisition cost actually paid by the fleet;
	// ExpectedCost sums the planners' expectations. Paid below expected
	// is the shared-cache dividend.
	PaidCost     float64 `json:"paid_cost"`
	ExpectedCost float64 `json:"expected_cost"`
	// PredicatesEvaluated counts predicate evaluations across the fleet.
	PredicatesEvaluated int64 `json:"predicates_evaluated"`
	// PlanCacheHits / PlanCacheHitRate report how often re-planning was
	// skipped (see engine.WithReplanThreshold).
	PlanCacheHits    int64   `json:"plan_cache_hits"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	// CacheRequested / CacheTransferred / CacheHitRate report shared
	// acquisition-cache traffic: the fraction of requested items served
	// without paying.
	CacheRequested   int64   `json:"cache_requested"`
	CacheTransferred int64   `json:"cache_transferred"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	// PerQuery holds the per-query aggregates, sorted by id.
	PerQuery []QueryMetrics `json:"per_query"`
}

// Metrics returns a fleet-wide snapshot.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.cache.Stats()
	m := Metrics{
		Ticks:               s.tick,
		Queries:             len(s.queries),
		Executions:          s.executions,
		PaidCost:            s.paidCost,
		ExpectedCost:        s.expCost,
		PredicatesEvaluated: s.evaluated,
		PlanCacheHits:       s.planHits,
		CacheRequested:      cs.Requested,
		CacheTransferred:    cs.Transferred,
		CacheHitRate:        cs.HitRate(),
	}
	if s.planHits+s.planMisses > 0 {
		m.PlanCacheHitRate = float64(s.planHits) / float64(s.planHits+s.planMisses)
	}
	for _, r := range s.queries {
		m.PerQuery = append(m.PerQuery, r.m)
	}
	sort.Slice(m.PerQuery, func(i, j int) bool { return m.PerQuery[i].ID < m.PerQuery[j].ID })
	return m
}

// Package service turns the single-query engine into a concurrent
// multi-query scheduling service: many compiled queries share one stream
// registry, one acquisition cache and one trace store, time advances in
// ticks, and every query due at a tick executes on a worker pool.
//
// Sharing is the point of the paper's model — a data item pulled for one
// query is reused for free by every other query that needs it — and the
// service is where that sharing pays off across queries, not just across
// the leaves of one tree. The cache's per-stream retention horizon is
// kept equal to the maximum window over all registered queries,
// recomputed on register/unregister, and the per-query plan caches of the
// engine skip re-planning on ticks where nothing drifted.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"paotr/internal/acquisition"
	"paotr/internal/engine"
	"paotr/internal/stream"
)

// Service schedules and executes many continuous queries over one shared
// registry and acquisition cache. All methods are safe for concurrent
// use; Register/Unregister serialize against running ticks.
type Service struct {
	mu      sync.Mutex
	reg     *stream.Registry
	eng     *engine.Engine
	cache   *acquisition.Cache
	queries map[string]*registered
	order   []string // registration order, for deterministic dispatch
	workers int
	history int
	exec    engine.Executor // default executor for queries without one
	batch   bool            // batched first-leaf acquisition in Tick
	tick    int64

	executions    int64
	planHits      int64
	planMisses    int64
	paidCost      float64
	expCost       float64
	evaluated     int64
	adaptiveExecs int64
	batchCost     float64
	batchItems    int64
	dupAvoided    int64
}

// registered is one query under service management.
type registered struct {
	id    string
	text  string
	q     *engine.Query
	every int
	exec  engine.Executor // nil: use the service default
	hist  []Execution
	m     QueryMetrics
}

// Option configures a Service.
type Option func(*config)

type config struct {
	workers int
	history int
	engOpts []engine.Option
	exec    engine.Executor
	batch   bool
}

// WithWorkers sets the tick worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithHistory sets how many past executions are retained per query for
// Results (default 64).
func WithHistory(n int) Option { return func(c *config) { c.history = n } }

// WithEngineOptions forwards options to the underlying engine (planner
// overrides, trace store, replan threshold).
func WithEngineOptions(opts ...engine.Option) Option {
	return func(c *config) { c.engOpts = append(c.engOpts, opts...) }
}

// WithExecutor sets the default execution strategy for every registered
// query (default engine.LinearExecutor). Individual queries can override
// it with WithQueryExecutor.
func WithExecutor(x engine.Executor) Option { return func(c *config) { c.exec = x } }

// WithBatchedAcquisition toggles the tick-level acquisition batcher
// (default on): before executing due queries, their plans' first-leaf
// stream windows are coalesced and each shared stream is pre-acquired
// once, so concurrent workers do not race to pull the same items. First
// leaves are evaluated unconditionally, so pre-pulling them never wastes
// cost — it only moves it from the queries to the batcher (see
// Metrics.BatchedCost).
func WithBatchedAcquisition(on bool) Option { return func(c *config) { c.batch = on } }

// New creates a service over the registry with an empty shared cache.
func New(reg *stream.Registry, opts ...Option) *Service {
	cfg := config{workers: runtime.GOMAXPROCS(0), history: 64, batch: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.history < 1 {
		cfg.history = 1
	}
	if cfg.exec == nil {
		cfg.exec = engine.LinearExecutor{}
	}
	return &Service{
		reg:     reg,
		eng:     engine.New(reg, cfg.engOpts...),
		cache:   acquisition.NewShared(reg),
		queries: map[string]*registered{},
		workers: cfg.workers,
		history: cfg.history,
		exec:    cfg.exec,
		batch:   cfg.batch,
	}
}

// Engine exposes the shared engine (e.g. for trace-store inspection).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Cache exposes the shared acquisition cache.
func (s *Service) Cache() *acquisition.Cache { return s.cache }

// QueryOption configures one registered query.
type QueryOption func(*registered)

// Every makes the query execute only on every n-th tick (default 1:
// every tick). The query still shares the cache on the ticks it runs.
func Every(n int) QueryOption {
	return func(r *registered) {
		if n > 0 {
			r.every = n
		}
	}
}

// WithQueryExecutor overrides the execution strategy for this query only
// (e.g. engine.AdaptiveExecutor on a query small enough for the
// decision-tree DP, while the fleet default stays linear).
func WithQueryExecutor(x engine.Executor) QueryOption {
	return func(r *registered) { r.exec = x }
}

// ErrDuplicateID is returned by Register when the id is already taken.
var ErrDuplicateID = errors.New("service: duplicate query id")

// Register compiles the query text and adds it under the given id. The
// shared cache's retention horizons grow to cover the query's windows.
// Registering an already-taken id returns an error wrapping
// ErrDuplicateID.
func (s *Service) Register(id, text string, opts ...QueryOption) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	q, err := s.eng.Compile(text)
	if err != nil {
		return fmt.Errorf("service: compiling %q: %w", id, err)
	}
	if err := s.cache.Retain(id, q.Windows()); err != nil {
		return err
	}
	r := &registered{id: id, text: text, q: q, every: 1}
	for _, o := range opts {
		o(r)
	}
	r.m = QueryMetrics{ID: id, Query: text, Every: r.every, Executor: s.executorFor(r).Name()}
	s.queries[id] = r
	s.order = append(s.order, id)
	return nil
}

// Unregister removes a query and releases its retention claim; the
// cache's horizons shrink to the maximum over the remaining queries.
func (s *Service) Unregister(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queries[id]; !ok {
		return fmt.Errorf("service: unknown query id %q", id)
	}
	delete(s.queries, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.cache.Release(id)
	return nil
}

// QueryIDs lists registered query ids in registration order.
func (s *Service) QueryIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Execution records one query execution at one tick.
type Execution struct {
	// ID is the query id.
	ID string `json:"id"`
	// Tick is the service tick at which the execution ran.
	Tick int64 `json:"tick"`
	// Value is the query's truth value.
	Value bool `json:"value"`
	// Cost is the acquisition cost this execution paid. Under a shared
	// cache, an item pulled by one query is free for the others, so the
	// per-query split depends on dispatch order; the sum is what matters.
	Cost float64 `json:"cost"`
	// ExpectedCost is the planner's expected cost at planning time.
	ExpectedCost float64 `json:"expected_cost"`
	// Evaluated counts predicates computed before the tree resolved.
	Evaluated int `json:"evaluated"`
	// PlanReused reports a plan-cache hit.
	PlanReused bool `json:"plan_reused"`
	// Strategy is the execution strategy actually used
	// (engine.StrategyLinear or engine.StrategyAdaptive; an adaptive
	// executor falls back to "linear" above the DP bound or below the gap
	// threshold).
	Strategy string `json:"strategy,omitempty"`
	// Err is the execution error, if any.
	Err string `json:"err,omitempty"`
}

// TickResult reports everything that ran during one tick.
type TickResult struct {
	// Tick is the time step just processed.
	Tick int64 `json:"tick"`
	// Executions holds one entry per due query, in registration order.
	Executions []Execution `json:"executions"`
}

// executorFor returns the query's executor, falling back to the service
// default.
func (s *Service) executorFor(r *registered) engine.Executor {
	if r.exec != nil {
		return r.exec
	}
	return s.exec
}

// fanOut runs f(0..n-1) on the tick worker pool and waits for completion.
// Caller holds the service lock, so registration cannot race.
func (s *Service) fanOut(n int, f func(int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Tick advances shared time by one step and executes every due query on
// the worker pool, in three phases:
//
//  1. Plan: every due query builds (or reuses) its plan — linear schedule
//     or adaptive decision tree, per its executor — against the
//     post-advance cache state. Planning only reads the cache, so all
//     plans of one tick see the same state.
//  2. Batch: the plans' first-leaf stream windows are coalesced and each
//     shared stream is pre-acquired once (see WithBatchedAcquisition).
//     First leaves are never short-circuited, so every pre-pulled item
//     would have been paid for by some query this tick anyway; batching
//     stops concurrent workers from racing to pull the same items.
//  3. Execute: the prepared plans run on the worker pool. The cache
//     serializes residual concurrent pulls, so the first query to need an
//     item pays for it and the rest reuse it for free.
func (s *Service) Tick() TickResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.cache.Advance(1)

	due := make([]*registered, 0, len(s.order))
	for _, id := range s.order {
		r := s.queries[id]
		if s.tick%int64(r.every) == 0 {
			due = append(due, r)
		}
	}
	out := TickResult{Tick: s.tick, Executions: make([]Execution, len(due))}
	if len(due) == 0 {
		return out
	}

	// Phase 1: plan.
	preps := make([]engine.Prepared, len(due))
	s.fanOut(len(due), func(i int) {
		r := due[i]
		prep, err := s.executorFor(r).Prepare(r.q, s.cache)
		if err != nil {
			out.Executions[i] = Execution{ID: r.id, Tick: s.tick, Err: err.Error()}
			return
		}
		preps[i] = prep
	})

	// Phase 2: batched acquisition of the coalesced first-leaf windows.
	if s.batch {
		windows := make(map[int][]int) // stream -> first-leaf windows of due plans
		need := make([]int, s.reg.Len())
		for _, p := range preps {
			if p == nil {
				continue
			}
			k, d, ok := p.FirstAcquisition()
			if !ok {
				continue
			}
			windows[k] = append(windows[k], d)
			if d > need[k] {
				need[k] = d
			}
		}
		// Count duplicates against items that actually have to be
		// transferred: a cached item costs nothing to re-request, but a
		// missing item wanted by n queries would be raced for by n workers
		// and is now pulled exactly once.
		cached := s.cache.Snapshot(need)
		for k, ds := range windows {
			for t := 1; t <= need[k]; t++ {
				if cached[k][t-1] {
					continue
				}
				covering := 0
				for _, d := range ds {
					if d >= t {
						covering++
					}
				}
				s.dupAvoided += int64(covering - 1)
			}
			items, cost := s.cache.Prefetch(k, need[k])
			s.batchItems += int64(items)
			s.batchCost += cost
		}
	}

	// Phase 3: execute.
	s.fanOut(len(due), func(i int) {
		if preps[i] == nil {
			return // planning failed; the error is already recorded
		}
		r := due[i]
		res, err := preps[i].Execute(s.cache)
		e := Execution{
			ID:           r.id,
			Tick:         s.tick,
			Value:        res.Value,
			Cost:         res.Cost,
			ExpectedCost: res.ExpectedCost,
			Evaluated:    res.Evaluated,
			PlanReused:   res.PlanReused,
			Strategy:     res.Strategy,
		}
		if err != nil {
			e.Err = err.Error()
		}
		out.Executions[i] = e
	})

	for i, r := range due {
		e := out.Executions[i]
		s.executions++
		if e.PlanReused {
			s.planHits++
		} else {
			s.planMisses++
		}
		s.paidCost += e.Cost
		s.expCost += e.ExpectedCost
		s.evaluated += int64(e.Evaluated)
		if e.Strategy == engine.StrategyAdaptive {
			s.adaptiveExecs++
			r.m.AdaptiveExecutions++
		}
		r.m.Executions++
		if e.Value {
			r.m.TrueCount++
		}
		r.m.PaidCost += e.Cost
		r.m.ExpectedCost += e.ExpectedCost
		r.m.PredicatesEvaluated += int64(e.Evaluated)
		if e.PlanReused {
			r.m.PlanCacheHits++
		}
		if e.Err != "" {
			r.m.Errors++
		}
		r.hist = append(r.hist, e)
		if len(r.hist) > s.history {
			r.hist = r.hist[len(r.hist)-s.history:]
		}
	}
	return out
}

// Run executes n consecutive ticks and returns their results.
func (s *Service) Run(n int) []TickResult {
	out := make([]TickResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Tick())
	}
	return out
}

// Results returns the most recent executions of a query (up to the
// configured history), oldest first.
func (s *Service) Results(id string, n int) ([]Execution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown query id %q", id)
	}
	h := r.hist
	if n > 0 && n < len(h) {
		h = h[len(h)-n:]
	}
	return append([]Execution(nil), h...), nil
}

// QueryMetrics aggregates the executions of one query.
type QueryMetrics struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	Every int    `json:"every"`
	// Executor is the strategy kind the query's executor aims for
	// ("linear", "adaptive"); AdaptiveExecutions counts executions that
	// actually walked a decision tree rather than falling back.
	Executor           string `json:"executor"`
	AdaptiveExecutions int64  `json:"adaptive_executions,omitempty"`
	Executions         int64  `json:"executions"`
	TrueCount          int64  `json:"true_count"`
	// PaidCost is the acquisition cost this query's executions paid;
	// ExpectedCost sums the planner's expectations. Under a shared cache
	// the per-query split of paid cost depends on dispatch order (and
	// batched acquisitions are paid by the fleet), so
	// RealizedOverExpected is most meaningful fleet-wide.
	PaidCost             float64 `json:"paid_cost"`
	ExpectedCost         float64 `json:"expected_cost"`
	RealizedOverExpected float64 `json:"realized_over_expected"`
	PredicatesEvaluated  int64   `json:"predicates_evaluated"`
	PlanCacheHits        int64   `json:"plan_cache_hits"`
	Errors               int64   `json:"errors"`
}

// withRatio returns the metrics with the realized-vs-expected cost ratio
// filled in.
func (m QueryMetrics) withRatio() QueryMetrics {
	if m.ExpectedCost > 0 {
		m.RealizedOverExpected = m.PaidCost / m.ExpectedCost
	}
	return m
}

// QueryMetrics returns the per-query aggregates.
func (s *Service) QueryMetrics(id string) (QueryMetrics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.queries[id]
	if !ok {
		return QueryMetrics{}, fmt.Errorf("service: unknown query id %q", id)
	}
	return r.m.withRatio(), nil
}

// Metrics aggregates the whole fleet.
type Metrics struct {
	// Ticks is the number of time steps processed.
	Ticks int64 `json:"ticks"`
	// Queries is the number of currently registered queries.
	Queries int `json:"queries"`
	// Executions counts query executions across all ticks.
	Executions int64 `json:"executions"`
	// PaidCost is the total acquisition cost actually paid by the fleet;
	// ExpectedCost sums the planners' expectations. Paid below expected
	// is the shared-cache dividend.
	PaidCost     float64 `json:"paid_cost"`
	ExpectedCost float64 `json:"expected_cost"`
	// RealizedOverExpected is PaidCost / ExpectedCost: how the fleet's
	// realized acquisition spend compares to the planners' models (< 1 is
	// the shared-cache dividend).
	RealizedOverExpected float64 `json:"realized_over_expected"`
	// AdaptiveExecutions counts executions that walked a decision tree
	// instead of a fixed schedule (see engine.AdaptiveExecutor).
	AdaptiveExecutions int64 `json:"adaptive_executions"`
	// BatchedCost and BatchedItems report what the tick-level acquisition
	// batcher pre-pulled on behalf of the fleet (included in PaidCost);
	// DuplicatePullsAvoided counts, over items that actually had to be
	// transferred, the redundant first-leaf requests beyond the first —
	// the pulls concurrent workers would have raced to issue for the same
	// missing item (see WithBatchedAcquisition).
	BatchedCost           float64 `json:"batched_cost"`
	BatchedItems          int64   `json:"batched_items"`
	DuplicatePullsAvoided int64   `json:"duplicate_pulls_avoided"`
	// PredicatesEvaluated counts predicate evaluations across the fleet.
	PredicatesEvaluated int64 `json:"predicates_evaluated"`
	// PlanCacheHits / PlanCacheHitRate report how often re-planning was
	// skipped (see engine.WithReplanThreshold).
	PlanCacheHits    int64   `json:"plan_cache_hits"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	// CacheRequested / CacheTransferred / CacheHitRate report shared
	// acquisition-cache traffic: the fraction of requested items served
	// without paying.
	CacheRequested   int64   `json:"cache_requested"`
	CacheTransferred int64   `json:"cache_transferred"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	// PerQuery holds the per-query aggregates, sorted by id.
	PerQuery []QueryMetrics `json:"per_query"`
}

// Metrics returns a fleet-wide snapshot.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.cache.Stats()
	m := Metrics{
		Ticks:      s.tick,
		Queries:    len(s.queries),
		Executions: s.executions,
		// Batched acquisitions are paid by the fleet on the queries'
		// behalf: include them so PaidCost totals are comparable whether
		// batching is on or off.
		PaidCost:              s.paidCost + s.batchCost,
		ExpectedCost:          s.expCost,
		AdaptiveExecutions:    s.adaptiveExecs,
		BatchedCost:           s.batchCost,
		BatchedItems:          s.batchItems,
		DuplicatePullsAvoided: s.dupAvoided,
		PredicatesEvaluated:   s.evaluated,
		PlanCacheHits:         s.planHits,
		CacheRequested:        cs.Requested,
		CacheTransferred:      cs.Transferred,
		CacheHitRate:          cs.HitRate(),
	}
	if m.ExpectedCost > 0 {
		m.RealizedOverExpected = m.PaidCost / m.ExpectedCost
	}
	if s.planHits+s.planMisses > 0 {
		m.PlanCacheHitRate = float64(s.planHits) / float64(s.planHits+s.planMisses)
	}
	for _, r := range s.queries {
		m.PerQuery = append(m.PerQuery, r.m.withRatio())
	}
	sort.Slice(m.PerQuery, func(i, j int) bool { return m.PerQuery[i].ID < m.PerQuery[j].ID })
	return m
}

package service

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"paotr/internal/admit"
	"paotr/internal/obs"
)

// admitConfig is a tight test policy: small budgets, instant windows.
func admitConfig() admit.Config {
	return admit.Config{
		RefillJPerTick: 5,
		BurstJ:         15,
		MaxQuoteJ:      [admit.NumTiers]float64{0, 0, 0},
		SLOTickP99: [admit.NumTiers]time.Duration{
			time.Second, 4 * time.Second, 16 * time.Second,
		},
		WindowTicks: 2,
	}
}

// pinnedFleetQueries is the sharing workload with explicit probability
// annotations: with no estimator drift between a quote and the next
// tick's plan, quote accuracy can be asserted exactly.
func pinnedFleetQueries() []string {
	return []string{
		"AVG(heart-rate,8) > 100 [p=0.6] AND AVG(spo2,6) < 95 [p=0.7]",
		"AVG(heart-rate,8) > 110 [p=0.3] AND accelerometer > 15 [p=0.5]",
		"AVG(spo2,6) < 92 [p=0.4] OR AVG(gps-speed,4) < 0.5 [p=0.6]",
		"AVG(temperature,6) > 24 [p=0.5] AND heart-rate > 90 [p=0.55]",
		"accelerometer > 20 [p=0.25] AND AVG(gps-speed,4) < 0.2 [p=0.45]",
	}
}

// TestQuoteRegisterMatchesRealizedDelta: the service-level quote must
// match the joint-plan cost delta the fleet realizes when the query is
// actually registered — the admission pricing acceptance criterion.
// Probabilities are pinned so the only difference between the treated
// and control runs is the admitted newcomer.
func TestQuoteRegisterMatchesRealizedDelta(t *testing.T) {
	build := func() *Service {
		s := New(testRegistry(5))
		for i, q := range pinnedFleetQueries() {
			if err := s.Register(string(rune('a'+i)), q); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(3)
		return s
	}
	// Overlaps resident windows on heart-rate and spo2 but adds its own
	// temperature read — a partial overlap discount.
	const newcomer = "AVG(heart-rate,8) > 95 [p=0.5] AND AVG(temperature,6) > 22 [p=0.35]"

	s := build()
	quote, err := s.QuoteRegister("x", newcomer)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().FleetExpectedCost
	if err := s.Register("x", newcomer); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	after := s.Metrics().FleetExpectedCost

	// FleetExpectedCost accumulates per tick; the tick after admission
	// adds (resident + newcomer) while a control service without the
	// newcomer adds just resident. Compare against that control.
	ctl := build()
	cb := ctl.Metrics().FleetExpectedCost
	ctl.Tick()
	delta := (after - before) - (ctl.Metrics().FleetExpectedCost - cb)
	if math.Abs(delta-quote.MarginalJPerTick) > 1e-6 {
		t.Fatalf("quote %.9f J/tick, realized joint-plan delta %.9f", quote.MarginalJPerTick, delta)
	}
	if quote.MarginalJPerTick > quote.IndependentJPerTick+1e-9 {
		t.Fatalf("marginal %.9f above independent %.9f", quote.MarginalJPerTick, quote.IndependentJPerTick)
	}
	if quote.MarginalJPerTick >= quote.IndependentJPerTick-1e-9 {
		t.Fatalf("no overlap discount: marginal %.9f, independent %.9f", quote.MarginalJPerTick, quote.IndependentJPerTick)
	}
}

// TestQuoteRegisterDoesNotMutate: quoting must not change what the
// fleet plans or pays — tick results with and without an interleaved
// quote are byte-identical.
func TestQuoteRegisterDoesNotMutate(t *testing.T) {
	run := func(quote bool) string {
		s := New(testRegistry(9))
		for i, q := range fleetQueries() {
			if err := s.Register(string(rune('a'+i)), q); err != nil {
				t.Fatal(err)
			}
		}
		var out []TickResult
		for i := 0; i < 12; i++ {
			if quote && i%3 == 0 {
				if _, err := s.QuoteRegister("probe", "AVG(temperature,6) > 20 AND heart-rate > 85"); err != nil {
					t.Fatal(err)
				}
			}
			out = append(out, s.Tick())
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if clean, probed := run(false), run(true); clean != probed {
		t.Fatal("interleaved quotes changed tick results")
	}
}

// TestQuoteRegisterTwinIsFree: an exact twin of a resident shape quotes
// zero marginal cost with SharedShape set.
func TestQuoteRegisterTwinIsFree(t *testing.T) {
	s := New(testRegistry(3))
	const text = "AVG(heart-rate,5) > 100 AND accelerometer < 12"
	if err := s.Register("a/orig", text); err != nil {
		t.Fatal(err)
	}
	q, err := s.QuoteRegister("b/twin", text)
	if err != nil {
		t.Fatal(err)
	}
	if !q.SharedShape || q.MarginalJPerTick != 0 {
		t.Fatalf("twin quote: %+v, want shared shape at zero marginal", q)
	}
	if q.IndependentJPerTick <= 0 {
		t.Fatalf("twin independent price %v, want > 0", q.IndependentJPerTick)
	}
}

// TestQuoteRegisterErrors: duplicate ids and non-compiling texts fail.
func TestQuoteRegisterErrors(t *testing.T) {
	s := New(testRegistry(3))
	if err := s.Register("a", "heart-rate > 120"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QuoteRegister("a", "heart-rate > 120"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate id: %v", err)
	}
	if _, err := s.QuoteRegister("b", "no-such-stream > 1"); err == nil {
		t.Fatal("bad text quoted")
	}
}

// TestShardedQuoteRegister: the coordinator quotes twins free and routes
// fresh shapes to their placement shard.
func TestShardedQuoteRegister(t *testing.T) {
	sh := NewSharded(testRegistry(7), 2)
	if err := sh.Register("a/q", "heart-rate > 120 OR spo2 < 90"); err != nil {
		t.Fatal(err)
	}
	sh.Run(2)
	q, err := sh.QuoteRegister("b/twin", "heart-rate > 120 OR spo2 < 90")
	if err != nil {
		t.Fatal(err)
	}
	if !q.SharedShape || q.MarginalJPerTick != 0 {
		t.Fatalf("sharded twin quote: %+v", q)
	}
	q, err = sh.QuoteRegister("b/fresh", "AVG(temperature,6) > 24 AND accelerometer > 15")
	if err != nil {
		t.Fatal(err)
	}
	if q.MarginalJPerTick <= 0 {
		t.Fatalf("fresh shape quoted %v, want > 0", q.MarginalJPerTick)
	}
}

// gatedService builds a small admission-gated fleet.
func gatedService(t *testing.T, cfg admit.Config) (*AdmissionGate, *Service) {
	t.Helper()
	s := New(testRegistry(11))
	g := NewAdmissionGate(s, admit.NewController(cfg))
	return g, s
}

// TestGateBudgetExhaustionDefersThenAdmits: an over-budget registration
// returns a queued AdmissionError with the quote, and the gate's tick
// loop admits it once the tenant's bucket refills — no client retry.
func TestGateBudgetExhaustionDefersThenAdmits(t *testing.T) {
	const (
		first  = "AVG(heart-rate,5) > 100 AND accelerometer < 12"
		second = "AVG(temperature,6) > 24 OR AVG(gps-speed,4) > 1.5"
	)
	// Measure the two quotes on an ungated twin fleet, then size the
	// budget to cover the first admission but strand the second until
	// one or two refills have landed.
	probe := New(testRegistry(11))
	q1, err := probe.QuoteRegister("a/first", first)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Register("a/first", first); err != nil {
		t.Fatal(err)
	}
	q2, err := probe.QuoteRegister("a/second", second)
	if err != nil {
		t.Fatal(err)
	}
	if q1.MarginalJPerTick <= 0 || q2.MarginalJPerTick <= 0 {
		t.Fatalf("probe quotes not positive: %v %v", q1, q2)
	}
	cfg := admitConfig()
	cfg.BurstJ = q1.MarginalJPerTick + q2.MarginalJPerTick/2
	cfg.RefillJPerTick = q2.MarginalJPerTick / 2

	g, _ := gatedService(t, cfg)
	if err := g.RegisterTier("a/first", first, admit.TierGold); err != nil {
		t.Fatal(err)
	}
	err = g.RegisterTier("a/second", second, admit.TierGold)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Decision.Action != admit.Defer || !ae.Queued {
		t.Fatalf("want queued defer, got %v", err)
	}
	if ae.Decision.QuoteJ <= 0 || ae.Decision.RetryAfterTicks < 1 {
		t.Fatalf("defer verdict missing quote/retry: %+v", ae.Decision)
	}
	if got := g.DeferredIDs(); len(got) != 1 || got[0] != "a/second" {
		t.Fatalf("defer queue: %v", got)
	}
	deadline := ae.Decision.RetryAfterTicks + 5
	for i := 0; i < deadline; i++ {
		g.Tick()
	}
	found := false
	for _, id := range g.QueryIDs() {
		if id == "a/second" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deferred query not admitted after %d ticks; queue %v", deadline, g.DeferredIDs())
	}
	if len(g.DeferredIDs()) != 0 {
		t.Fatalf("defer queue not drained: %v", g.DeferredIDs())
	}
	j := g.Journal().CountByType()
	if j[obs.EventDefer] < 1 || j[obs.EventAdmit] < 2 {
		t.Fatalf("journal census: %v", j)
	}
}

// TestGateSLOBurnShedsBronzeOnly: under forced overload bronze sheds,
// gold admits, and the metrics snapshot exposes the backpressure state.
func TestGateSLOBurnShedsBronzeOnly(t *testing.T) {
	cfg := admitConfig()
	cfg.BurstJ, cfg.RefillJPerTick = 1e6, 1e6
	g, _ := gatedService(t, cfg)
	g.Controller().SetOverloaded(true)

	err := g.RegisterTier("a/best-effort", "heart-rate > 120", admit.TierBronze)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Decision.Action != admit.Shed || ae.Decision.Reason != "slo-burn" {
		t.Fatalf("bronze under burn: %v", err)
	}
	if err := g.RegisterTier("a/alert", "spo2 < 92", admit.TierGold); err != nil {
		t.Fatalf("gold under burn: %v", err)
	}
	m := g.Metrics()
	if m.Admission == nil || !m.Admission.Overloaded {
		t.Fatalf("metrics missing admission backpressure: %+v", m.Admission)
	}
	if m.Admission.Decisions["bronze"]["shed"] != 1 || m.Admission.Decisions["gold"]["admit"] != 1 {
		t.Fatalf("decision census: %v", m.Admission.Decisions)
	}
	if m.Admission.ShedPrecision != 1 {
		t.Fatalf("shed precision %v", m.Admission.ShedPrecision)
	}
}

// TestGatePassthroughIsByteIdentical: behind a gate with headroom, the
// fleet's tick results are byte-identical to the ungated service — the
// gate prices and observes but never perturbs.
func TestGatePassthroughIsByteIdentical(t *testing.T) {
	run := func(gated bool) string {
		s := New(testRegistry(13))
		var rt Runtime = s
		if gated {
			cfg := admit.DefaultConfig()
			cfg.BurstJ, cfg.RefillJPerTick = 1e9, 1e9
			rt = NewAdmissionGate(s, admit.NewController(cfg))
		}
		for i, q := range fleetQueries() {
			if err := rt.Register(string(rune('a'+i))+"/q", q); err != nil {
				t.Fatal(err)
			}
		}
		b, err := json.Marshal(rt.Run(10))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if plain, gated := run(false), run(true); plain != gated {
		t.Fatal("admission gate with headroom changed tick results")
	}
}

// TestGateUnregisterCancelsDeferred: unregistering a parked id removes
// it from the defer queue without touching the runtime.
func TestGateUnregisterCancelsDeferred(t *testing.T) {
	cfg := admitConfig()
	cfg.BurstJ, cfg.RefillJPerTick = 0.001, 0.001
	g, _ := gatedService(t, cfg)
	err := g.RegisterTier("a/parked", "heart-rate > 120 AND accelerometer > 15", admit.TierSilver)
	var ae *AdmissionError
	if !errors.As(err, &ae) || !ae.Queued {
		t.Fatalf("want queued defer, got %v", err)
	}
	if err := g.Unregister("a/parked"); err != nil {
		t.Fatal(err)
	}
	if ids := g.DeferredIDs(); len(ids) != 0 {
		t.Fatalf("defer queue after cancel: %v", ids)
	}
}

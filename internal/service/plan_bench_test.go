package service

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"paotr/internal/fleet"
	"paotr/internal/query"
	"paotr/internal/stream"
)

// planCorpus synthesizes n annotated query trees over the given stream
// space — the registration-storm scale (1k/10k queries, ~n/streams
// queries per stream) where the joint planner's selection loop is the
// cost that matters.
func planCorpus(n, streams int, rng *rand.Rand) []*query.Tree {
	ss := make([]query.Stream, streams)
	for k := range ss {
		ss[k] = query.Stream{Name: fmt.Sprintf("s%d", k), Cost: 1 + 9*rng.Float64()}
	}
	trees := make([]*query.Tree, n)
	for qi := range trees {
		tr := &query.Tree{Streams: ss}
		ands := 1 + rng.IntN(2)
		for a := 0; a < ands; a++ {
			for l := 0; l < 1+rng.IntN(2); l++ {
				tr.Leaves = append(tr.Leaves, query.Leaf{
					And:    a,
					Stream: query.StreamID(rng.IntN(streams)),
					Items:  1 + rng.IntN(4),
					Prob:   0.05 + 0.9*rng.Float64(),
				})
			}
		}
		trees[qi] = tr
	}
	return trees
}

// timePlan returns the best-of-rounds wall-clock time of one joint plan.
func timePlan(rounds int, plan func() *fleet.Plan) (time.Duration, *fleet.Plan) {
	best := time.Duration(1<<63 - 1)
	var p *fleet.Plan
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		p = plan()
		if dt := time.Since(t0); dt < best {
			best = dt
		}
	}
	return best, p
}

// planBenchRow is one planner-scaling measurement of BENCH_plan.json.
type planBenchRow struct {
	Name    string  `json:"name"`
	Queries int     `json:"queries"`
	PlanMs  float64 `json:"plan_ms"`
}

// planBenchFile is the machine-readable planner-scaling artifact tracked
// PR-over-PR. AllocsPerTick is the only gated metric (deterministic);
// plan times and tick throughput are recorded for the trajectory but not
// gated across heterogeneous hosts.
type planBenchFile struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	Plan       []planBenchRow `json:"plan"`
	// HeapSpeedup1k is the reference (quadratic-scan) planner's 1k-query
	// plan time divided by the heap planner's — the tentpole's headline.
	HeapSpeedup1k float64 `json:"heap_speedup_1k"`
	// TicksPerSec is steady-state tick throughput of a 48-query fleet at
	// one worker; AllocsPerTick the heap allocations one such tick costs.
	TicksPerSec   float64 `json:"ticks_per_sec"`
	AllocsPerTick float64 `json:"allocs_per_tick"`
}

// allocBenchService builds the steady fleet the allocation and tick-rate
// rows measure: 48 annotated queries over 12 streams, one worker, so the
// per-tick numbers are deterministic modulo amortized buffer growth.
// Extra options (e.g. the observability bench's histogram/tracing
// configurations) are appended after the fixed ones.
func allocBenchService(tb testing.TB, opts ...Option) *Service {
	const streams = 12
	reg := stream.NewRegistry()
	for i := 0; i < streams; i++ {
		if err := reg.Add(stream.Uniform(fmt.Sprintf("s%d", i), uint64(i+1)), stream.CostModel{BaseJoules: 1}); err != nil {
			tb.Fatal(err)
		}
	}
	svc := New(reg, append([]Option{WithWorkers(1)}, opts...)...)
	for q := 0; q < 48; q++ {
		base := q % streams
		text := fmt.Sprintf(
			"(AVG(s%d,8) > 0.3 [p=0.6] AND AVG(s%d,6) > 0.3 [p=0.7]) OR AVG(s%d,4) > 0.3 [p=0.5]",
			base, (base+1)%streams, (base+2)%streams)
		if err := svc.Register(fmt.Sprintf("q%d", q), text); err != nil {
			tb.Fatal(err)
		}
	}
	return svc
}

// TestWritePlanBenchJSON emits BENCH_plan.json when PAOTR_BENCH_PLAN_JSON
// names an output path (the CI perf-trajectory artifact; skipped
// otherwise). It also carries the tentpole's acceptance assertions: the
// lazy-heap planner must plan a 1k-query fleet at least 5x faster than
// the retained quadratic reference while producing the bitwise-identical
// joint expected cost.
func TestWritePlanBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_PLAN_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_PLAN_JSON=<path> to write the benchmark artifact")
	}
	const streams = 64
	rng := rand.New(rand.NewPCG(97, 13))
	corpus1k := planCorpus(1000, streams, rng)
	corpus10k := planCorpus(10000, streams, rng)

	quadMs, quadPlan := timePlan(3, func() *fleet.Plan { return fleet.PlanJointReference(corpus1k, nil) })
	heapMs, heapPlan := timePlan(3, func() *fleet.Plan { return fleet.PlanJoint(corpus1k, nil) })
	heap10kMs, _ := timePlan(1, func() *fleet.Plan { return fleet.PlanJoint(corpus10k, nil) })
	if quadPlan.Expected != heapPlan.Expected {
		t.Fatalf("heap plan expected %v, reference %v (must be bitwise identical)",
			heapPlan.Expected, quadPlan.Expected)
	}
	speedup := quadMs.Seconds() / heapMs.Seconds()
	if speedup < 5 {
		t.Errorf("1k-query heap planner speedup %.1fx over the quadratic reference, want >= 5x", speedup)
	}

	svc := allocBenchService(t)
	svc.Run(80) // past history-buffer warm-up so steady-state allocs are measured
	allocs := testing.AllocsPerRun(100, func() { svc.Tick() })
	t0 := time.Now()
	const ticks = 400
	svc.Run(ticks)
	ticksPerSec := ticks / time.Since(t0).Seconds()

	file := planBenchFile{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Plan: []planBenchRow{
			{Name: "plan/quad-1k", Queries: 1000, PlanMs: quadMs.Seconds() * 1e3},
			{Name: "plan/heap-1k", Queries: 1000, PlanMs: heapMs.Seconds() * 1e3},
			{Name: "plan/heap-10k", Queries: 10000, PlanMs: heap10kMs.Seconds() * 1e3},
		},
		HeapSpeedup1k: speedup,
		TicksPerSec:   ticksPerSec,
		AllocsPerTick: allocs,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: 1k-query plan %.1fms -> %.1fms (%.1fx), 10k-query %.1fms, %.0f ticks/sec, %.0f allocs/tick",
		out, file.Plan[0].PlanMs, file.Plan[1].PlanMs, speedup, file.Plan[2].PlanMs, ticksPerSec, allocs)
}

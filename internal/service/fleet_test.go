package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"sync"
	"testing"
	"time"

	"paotr/internal/acquisition"
	"paotr/internal/engine"
	"paotr/internal/stream"
)

// overlapRegistry builds a registry with one shared expensive stream and
// n cheaper private streams, the shape where joint planning pays: each
// tenant's query is near-tied between a shared branch and a private
// branch, and only a fleet-level view makes the shared branch win.
func overlapRegistry(tb testing.TB, tenants int, seed uint64) *stream.Registry {
	tb.Helper()
	reg := stream.NewRegistry()
	if err := reg.Add(stream.Uniform("shared", seed), stream.CostModel{BaseJoules: 8}); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		if err := reg.Add(stream.Uniform(fmt.Sprintf("private%d", i), seed+uint64(i)+1), stream.CostModel{BaseJoules: 7}); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// overlapFleet registers one query per tenant: an OR of a shared-stream
// branch and a private-stream branch with annotated probabilities, so
// planning is deterministic and the shared/private tie is controlled.
func overlapFleet(tb testing.TB, svc Runtime, tenants int) {
	tb.Helper()
	for i := 0; i < tenants; i++ {
		text := fmt.Sprintf(
			"(AVG(shared,4) > 0.2 [p=0.5]) OR (AVG(private%d,4) > 0.2 [p=0.5])", i)
		if err := svc.Register(fmt.Sprintf("tenant%d", i), text); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestFleetPlanningSharedMatchesSequential is the fleet-planning
// counterpart of TestSharedMatchesSequential: joint planning reorders
// leaf evaluation across queries, but every per-tick verdict must equal
// the one the same query produces alone on a private cache, and the
// fleet must never pay more than the private-cache baselines combined.
// Under -race this also stresses the striped cache and the fleet plan
// cache across the worker pool.
func TestFleetPlanningSharedMatchesSequential(t *testing.T) {
	const seed = 271
	const ticks = 60
	queries := fleetQueries()

	svc := New(testRegistry(seed), WithWorkers(8), WithFleetPlanning(true))
	for i, q := range queries {
		if err := svc.Register(fmt.Sprintf("q%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	shared := make([][]bool, len(queries))
	for i := range shared {
		shared[i] = make([]bool, ticks)
	}
	for tick, tr := range svc.Run(ticks) {
		for _, e := range tr.Executions {
			if e.Err != "" {
				t.Fatalf("tick %d query %s: %s", tick, e.ID, e.Err)
			}
			if !e.FleetPlanned {
				t.Fatalf("tick %d query %s not fleet-planned despite linear executor", tick, e.ID)
			}
			var qi int
			fmt.Sscanf(e.ID, "q%d", &qi)
			shared[qi][tick] = e.Value
		}
	}
	m := svc.Metrics()
	if m.FleetPlans != ticks || m.FleetPlannedExecutions != int64(ticks*len(queries)) {
		t.Errorf("fleet planning metrics = %+v, want %d plans / %d executions",
			m, ticks, ticks*len(queries))
	}
	if m.FleetExpectedCost <= 0 || m.FleetExpectedCost > m.IndependentExpectedCost+1e-9 {
		t.Errorf("fleet expected %v vs independent %v: joint model must not exceed independent sum",
			m.FleetExpectedCost, m.IndependentExpectedCost)
	}

	var privateCost float64
	for i, qtext := range queries {
		reg := testRegistry(seed)
		eng := engine.New(reg)
		q, err := eng.Compile(qtext)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := q.NewCache()
		if err != nil {
			t.Fatal(err)
		}
		results, err := q.Run(cache, ticks)
		if err != nil {
			t.Fatal(err)
		}
		for tick, r := range results {
			if r.Value != shared[i][tick] {
				t.Errorf("query %d tick %d: fleet-planned=%v sequential=%v", i, tick, shared[i][tick], r.Value)
			}
		}
		privateCost += cache.Spent()
	}
	if m.PaidCost > privateCost+1e-9 {
		t.Errorf("fleet paid %.3f, more than private caches' %.3f", m.PaidCost, privateCost)
	}
	t.Logf("fleet-planned cost %.1f J vs private %.1f J; modelled joint %.1f J vs independent %.1f J (%.1f%% modelled saving)",
		m.PaidCost, privateCost, m.FleetExpectedCost, m.IndependentExpectedCost, 100*m.FleetModelledSaving)
}

// TestFleetPlanningRealizesSaving: on the overlapping-tenant corpus,
// joint planning must realize a lower (or equal) total acquisition cost
// than independent per-query planning over the same streams, and a
// strictly lower modelled cost.
func TestFleetPlanningRealizesSaving(t *testing.T) {
	const tenants = 6
	ticks := 400
	if testing.Short() {
		ticks = 120
	}
	run := func(fleetOn bool) Metrics {
		svc := New(overlapRegistry(t, tenants, 99), WithWorkers(4), WithFleetPlanning(fleetOn))
		overlapFleet(t, svc, tenants)
		svc.Run(ticks)
		return svc.Metrics()
	}
	on := run(true)
	off := run(false)
	if on.FleetExpectedCost >= on.IndependentExpectedCost {
		t.Errorf("joint planning modelled no saving: fleet %v vs independent %v",
			on.FleetExpectedCost, on.IndependentExpectedCost)
	}
	if on.PaidCost > off.PaidCost*1.01 {
		t.Errorf("fleet planning paid %.1f J, independent planning %.1f J", on.PaidCost, off.PaidCost)
	}
	t.Logf("realized over %d ticks: fleet %.1f J vs independent %.1f J (%.1f%% saved); modelled saving %.1f%%",
		ticks, on.PaidCost, off.PaidCost, 100*(1-on.PaidCost/off.PaidCost), 100*on.FleetModelledSaving)
}

// TestPerStreamMetricsExposed: the fleet snapshot must break traffic
// down by stream — hit rate, pulls, spent and the batcher's per-stream
// duplicate-pull shares — summing to the fleet-wide aggregates.
func TestPerStreamMetricsExposed(t *testing.T) {
	svc := New(overlapRegistry(t, 4, 5), WithWorkers(2))
	overlapFleet(t, svc, 4)
	svc.Run(30)
	m := svc.Metrics()
	if len(m.PerStream) != 5 {
		t.Fatalf("per-stream metrics for %d streams, want 5", len(m.PerStream))
	}
	var req, tr, dup int64
	sharedSeen := false
	for _, ps := range m.PerStream {
		req += ps.Requested
		tr += ps.Transferred
		dup += ps.DuplicatePullsAvoided
		if ps.Name == "shared" {
			sharedSeen = true
			if ps.Requested == 0 || ps.Transferred == 0 || ps.HitRate <= 0 {
				t.Errorf("shared stream has no traffic: %+v", ps)
			}
		}
	}
	if !sharedSeen {
		t.Error("shared stream missing from per-stream metrics")
	}
	if req != m.CacheRequested || tr != m.CacheTransferred {
		t.Errorf("per-stream sums (%d, %d) != fleet aggregates (%d, %d)",
			req, tr, m.CacheRequested, m.CacheTransferred)
	}
	if dup != m.DuplicatePullsAvoided {
		t.Errorf("per-stream duplicate pulls %d != fleet total %d", dup, m.DuplicatePullsAvoided)
	}
	if m.DuplicatePullsAvoided == 0 {
		t.Error("overlapping fleet avoided no duplicate pulls")
	}
}

// TestFleetPlanCacheReuses: with annotated probabilities and a stable
// fleet, the joint planner must reuse its cached plan on most ticks.
func TestFleetPlanCacheReuses(t *testing.T) {
	svc := New(overlapRegistry(t, 3, 11), WithWorkers(1),
		WithEngineOptions(engine.WithReplanThreshold(0.02)))
	overlapFleet(t, svc, 3)
	svc.Run(30)
	m := svc.Metrics()
	if m.FleetPlans == 0 {
		t.Fatal("no fleet plans recorded")
	}
	if rate := float64(m.FleetPlanReuses) / float64(m.FleetPlans); rate < 0.8 {
		t.Errorf("fleet plan reuse rate %.2f, want >= 0.8 under stable probabilities", rate)
	}
}

// TestRegisterInvalidatesFleetPlans: a query id re-registered with a
// different query must not inherit the joint plan cached for the old
// query — Register/Unregister drop the planner's entries, so the next
// tick re-plans.
func TestRegisterInvalidatesFleetPlans(t *testing.T) {
	svc := New(overlapRegistry(t, 3, 13), WithWorkers(1),
		WithEngineOptions(engine.WithReplanThreshold(0.05)))
	overlapFleet(t, svc, 3)
	svc.Run(5)
	before := svc.Metrics()
	if before.FleetPlanReuses == 0 {
		t.Fatal("stable fleet produced no plan reuse to begin with")
	}
	if err := svc.Unregister("tenant0"); err != nil {
		t.Fatal(err)
	}
	// Same id, same stream shape, different probabilities: without
	// invalidation the old fingerprint would match within Eps and the
	// stale plan would be reused.
	if err := svc.Register("tenant0",
		"(AVG(shared,4) > 0.2 [p=0.52]) OR (AVG(private0,4) > 0.2 [p=0.48])"); err != nil {
		t.Fatal(err)
	}
	svc.Tick()
	after := svc.Metrics()
	if after.FleetPlanReuses != before.FleetPlanReuses {
		t.Errorf("tick after re-registration reused a cached joint plan (%d -> %d reuses)",
			before.FleetPlanReuses, after.FleetPlanReuses)
	}
	if after.FleetPlans != before.FleetPlans+1 {
		t.Errorf("fleet plans %d -> %d, want exactly one fresh plan", before.FleetPlans, after.FleetPlans)
	}
}

// BenchmarkFleetVsIndependent measures realized acquisition cost and
// tick throughput of joint versus per-query planning on the
// overlapping-tenant corpus. J/tick is the headline: the fleet planner
// should pay measurably less per tick by steering every tenant onto the
// shared stream.
func BenchmarkFleetVsIndependent(b *testing.B) {
	const tenants = 6
	bench := func(b *testing.B, fleetOn bool) {
		svc := New(overlapRegistry(b, tenants, 99), WithWorkers(4), WithFleetPlanning(fleetOn))
		overlapFleet(b, svc, tenants)
		svc.Run(3) // steady state
		start := svc.Metrics().PaidCost
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Tick()
		}
		b.StopTimer()
		b.ReportMetric((svc.Metrics().PaidCost-start)/float64(b.N), "J/tick")
	}
	b.Run("independent", func(b *testing.B) { bench(b, false) })
	b.Run("fleet", func(b *testing.B) { bench(b, true) })
}

// wideFleet builds a service whose tick is dominated by cache traffic:
// many queries over many disjoint streams, each evaluating wide windows
// on several streams, with stable annotated probabilities so the plan
// caches absorb planning and phase 3's concurrent pulls are the
// bottleneck the stripe count controls.
func wideFleet(tb testing.TB, stripes int) *Service {
	const streams = 16
	reg := stream.NewRegistry()
	for i := 0; i < streams; i++ {
		if err := reg.Add(stream.Uniform(fmt.Sprintf("s%d", i), uint64(i+1)), stream.CostModel{BaseJoules: 1}); err != nil {
			tb.Fatal(err)
		}
	}
	svc := New(reg, WithWorkers(8), WithCacheStripes(stripes), WithBatchedAcquisition(false))
	for q := 0; q < 2*streams; q++ {
		base := q % streams
		text := fmt.Sprintf(
			"AVG(s%d,48) > 0.01 [p=0.95] AND AVG(s%d,40) > 0.01 [p=0.95] AND AVG(s%d,32) > 0.01 [p=0.95]",
			base, (base+1)%streams, (base+2)%streams)
		if err := svc.Register(fmt.Sprintf("q%d", q), text); err != nil {
			tb.Fatal(err)
		}
	}
	return svc
}

// BenchmarkShardedVsGlobalCacheTicks measures service tick throughput
// with the per-stream striped cache versus the single-lock baseline, on
// a fleet whose queries spread over many disjoint streams so phase 3
// pulls can proceed in parallel.
func BenchmarkShardedVsGlobalCacheTicks(b *testing.B) {
	bench := func(b *testing.B, stripes int) {
		svc := wideFleet(b, stripes)
		svc.Run(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Tick()
		}
	}
	b.Run("global", func(b *testing.B) { bench(b, 1) })
	b.Run("sharded", func(b *testing.B) { bench(b, 0) })
}

// fleetBenchResult is one row of BENCH_fleet.json. Planning rows report
// J/tick and ticks/sec of the scheduling service; cache rows report the
// concurrent multi-stream Acquire throughput that bounds tick throughput
// at scale.
type fleetBenchResult struct {
	Name     string  `json:"name"`
	Unit     string  `json:"unit"` // "tick" or "acquire"
	Ops      int     `json:"ops"`
	JPerTick float64 `json:"j_per_tick,omitempty"`
	PerSec   float64 `json:"per_sec"`
	// MutexWaitNsPerOp is the time goroutines spent blocked on mutexes
	// per operation (cache rows only): the serialization a single global
	// lock imposes and per-stream striping removes. Unlike wall-clock
	// throughput it exposes the contention even on single-core hosts.
	MutexWaitNsPerOp float64 `json:"mutex_wait_ns_per_op,omitempty"`
}

// fleetBenchFile is the machine-readable benchmark artifact tracked
// PR-over-PR (see the ci workflow).
type fleetBenchFile struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Results    []fleetBenchResult `json:"results"`
	// FleetSavingPct is the realized J/tick saving of fleet over
	// independent planning; ShardedSpeedup the concurrent-acquire
	// throughput ratio of the striped cache over the single global lock
	// (meaningful on multi-core hosts; see MutexWaitNsPerOp for the
	// host-independent contention picture).
	FleetSavingPct float64 `json:"fleet_saving_pct"`
	ShardedSpeedup float64 `json:"sharded_speedup"`
	// MutexWaitReduction is global-lock mutex wait divided by sharded
	// mutex wait, per acquire — how much blocked time striping removes.
	MutexWaitReduction float64 `json:"mutex_wait_reduction"`
}

// mutexWaitSeconds reads the runtime's cumulative mutex wait clock.
func mutexWaitSeconds(t *testing.T) float64 {
	t.Helper()
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		t.Fatalf("mutex wait metric unavailable (kind %v)", sample[0].Value.Kind())
	}
	return sample[0].Value.Float64()
}

// measureCacheThroughput drives 8 goroutines of Acquire traffic over 16
// disjoint streams and returns the aggregate acquires/sec — the
// contention surface the stripe count controls. GOMAXPROCS is raised for
// the measurement so the goroutines actually contend.
func measureCacheThroughput(t *testing.T, name string, stripes int) fleetBenchResult {
	t.Helper()
	const streams, workers, opsPerWorker = 16, 8, 100000
	reg := stream.NewRegistry()
	for i := 0; i < streams; i++ {
		if err := reg.Add(stream.Uniform(fmt.Sprintf("s%d", i), uint64(i+1)), stream.CostModel{BaseJoules: 1}); err != nil {
			t.Fatal(err)
		}
	}
	c := acquisition.NewSharedStriped(reg, stripes)
	windows := make([]int, streams)
	for k := range windows {
		windows[k] = 8
	}
	if err := c.Retain("bench", windows); err != nil {
		t.Fatal(err)
	}
	c.Advance(1)
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	// Best-of-rounds: the lock-free fast path drains the whole op budget
	// in milliseconds, so a single round is at the mercy of scheduler
	// noise on a shared host.
	const rounds = 3
	ops := workers * opsPerWorker
	best := fleetBenchResult{Name: name, Unit: "acquire", Ops: ops}
	for r := 0; r < rounds; r++ {
		wait0 := mutexWaitSeconds(t)
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				k := w % streams
				for i := 0; i < opsPerWorker; i++ {
					if _, _, err := c.Acquire(k, 8); err != nil {
						t.Error(err)
					}
				}
			}(w)
		}
		wg.Wait()
		perSec := float64(ops) / time.Since(t0).Seconds()
		if perSec > best.PerSec {
			best.PerSec = perSec
			best.MutexWaitNsPerOp = (mutexWaitSeconds(t) - wait0) * 1e9 / float64(ops)
		}
	}
	return best
}

// TestWriteFleetBenchJSON emits BENCH_fleet.json when PAOTR_BENCH_JSON
// names an output path (the CI perf-trajectory artifact). It is skipped
// otherwise, keeping the default test run fast and file-free.
func TestWriteFleetBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_JSON=<path> to write the benchmark artifact")
	}
	const ticks = 600
	measure := func(name string, mk func() *Service) fleetBenchResult {
		svc := mk()
		svc.Run(3)
		start := svc.Metrics().PaidCost
		t0 := time.Now()
		svc.Run(ticks)
		dt := time.Since(t0)
		return fleetBenchResult{
			Name:     name,
			Unit:     "tick",
			Ops:      ticks,
			JPerTick: (svc.Metrics().PaidCost - start) / ticks,
			PerSec:   float64(ticks) / dt.Seconds(),
		}
	}
	const tenants = 6
	mkOverlap := func(fleetOn bool) func() *Service {
		return func() *Service {
			svc := New(overlapRegistry(t, tenants, 99), WithWorkers(4), WithFleetPlanning(fleetOn))
			overlapFleet(t, svc, tenants)
			return svc
		}
	}

	file := fleetBenchFile{GoMaxProcs: runtime.GOMAXPROCS(0)}
	indep := measure("planning/independent", mkOverlap(false))
	fleetRes := measure("planning/fleet", mkOverlap(true))
	// Interleave the two cache configurations: host-load drift between
	// back-to-back measurements would otherwise bias the ratio.
	var global, sharded fleetBenchResult
	for r := 0; r < 3; r++ {
		if g := measureCacheThroughput(t, "cache/global-lock", 1); g.PerSec > global.PerSec {
			global = g
		}
		if s := measureCacheThroughput(t, "cache/sharded", 0); s.PerSec > sharded.PerSec {
			sharded = s
		}
	}
	file.Results = []fleetBenchResult{indep, fleetRes, global, sharded}
	if indep.JPerTick > 0 {
		file.FleetSavingPct = 100 * (1 - fleetRes.JPerTick/indep.JPerTick)
	}
	if global.PerSec > 0 {
		file.ShardedSpeedup = sharded.PerSec / global.PerSec
	}
	if sharded.MutexWaitNsPerOp > 0 {
		file.MutexWaitReduction = global.MutexWaitNsPerOp / sharded.MutexWaitNsPerOp
	}
	if fleetRes.JPerTick > indep.JPerTick*1.01 {
		t.Errorf("fleet planning J/tick %.2f exceeds independent %.2f", fleetRes.JPerTick, indep.JPerTick)
	}
	if file.ShardedSpeedup < 0.95 {
		// The lock-free view fast path must close the striping gap: warm
		// repeat acquires bypass the stripe mutexes entirely, so the
		// sharded cache may no longer lose to the single global lock.
		t.Errorf("sharded cache %.2fx the global-lock throughput, want >= 0.95x", file.ShardedSpeedup)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: fleet saves %.1f%% J/tick, sharded cache %.2fx concurrent acquires/sec",
		out, file.FleetSavingPct, file.ShardedSpeedup)
}

// The Worker interface is the coordinator/worker seam of the sharded
// runtime: everything the Sharded coordinator needs from one shard
// worker, implemented directly by *Service for in-process workers and by
// an HTTP client (see remote.go) for `paotrserve -worker` processes. The
// coordinator owns the shard partitioner, the fleet-global L2 item relay
// and the aggregated metrics; workers own their queries, striped L1
// caches, planners and estimators.
package service

import (
	"paotr/internal/adapt"
	"paotr/internal/query"
)

// Worker is one shard worker as the coordinator sees it. All methods
// must be safe for concurrent use.
type Worker interface {
	// Register / Unregister manage query ownership; Tick advances the
	// worker's time by one step and executes its due queries; Results,
	// QueryMetrics and Metrics read back state — the Runtime surface,
	// scoped to the worker's slice of the fleet.
	Register(id, text string, opts ...QueryOption) error
	Unregister(id string) error
	Tick() TickResult
	Results(id string, n int) ([]Execution, error)
	QueryMetrics(id string) (QueryMetrics, error)
	Metrics() Metrics

	// ProfileTree returns the query's probability-annotated tree and its
	// predicate trace keys — what the coordinator profiles placements
	// with (see shard.Profile) and migrates estimator state by.
	ProfileTree(id string) (*query.Tree, []string, bool)
	// Trips totals the worker's detector trips; the coordinator polls it
	// to decide when drift warrants a repartition.
	Trips() int64
	// ExportEvidence / ImportEvidence migrate windowed-estimator evidence
	// when a query moves between workers.
	ExportEvidence(keys []string) []adapt.PredicateSnapshot
	ImportEvidence(snaps []adapt.PredicateSnapshot)
	// SetStreamCostScale installs the coordinator's relay-discounted
	// per-stream cost multipliers on the worker's joint planner.
	SetStreamCostScale(scale []float64)
}

var _ Worker = (*Service)(nil)

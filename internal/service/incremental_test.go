package service

import (
	"fmt"
	"sync"
	"testing"

	"paotr/internal/engine"
)

// TestServiceIncrementalPlanOnChurn: registering or unregistering a query
// between ticks must patch the cached joint plan — survivors keep their
// schedules, only the delta is replanned — instead of replanning the
// whole fleet, and steady-state reuse must resume right after.
func TestServiceIncrementalPlanOnChurn(t *testing.T) {
	svc := New(overlapRegistry(t, 6, 17), WithWorkers(1),
		WithEngineOptions(engine.WithReplanThreshold(0.05)))
	overlapFleet(t, svc, 5) // tenants 0..4; private5 stays free for growth
	tickAll(t, svc, 5)
	base := svc.Metrics()
	if base.FleetPlanIncremental != 0 {
		t.Fatalf("stable fleet patched %d plans before any churn", base.FleetPlanIncremental)
	}

	if err := svc.Register("tenant5",
		"(AVG(shared,4) > 0.2 [p=0.5]) OR (AVG(private5,4) > 0.2 [p=0.5])"); err != nil {
		t.Fatal(err)
	}
	tickAll(t, svc, 1)
	grown := svc.Metrics()
	if grown.FleetPlanIncremental != base.FleetPlanIncremental+1 {
		t.Errorf("register tick: %d incremental plans, want %d — registration full-replanned the fleet",
			grown.FleetPlanIncremental, base.FleetPlanIncremental+1)
	}

	if err := svc.Unregister("tenant2"); err != nil {
		t.Fatal(err)
	}
	tickAll(t, svc, 1)
	shrunk := svc.Metrics()
	if shrunk.FleetPlanIncremental != grown.FleetPlanIncremental+1 {
		t.Errorf("unregister tick: %d incremental plans, want %d — unregistration full-replanned the fleet",
			shrunk.FleetPlanIncremental, grown.FleetPlanIncremental+1)
	}

	// The patched plan is stored like any other: a stable fleet reuses it.
	tickAll(t, svc, 3)
	after := svc.Metrics()
	if after.FleetPlanReuses <= shrunk.FleetPlanReuses {
		t.Errorf("no plan reuse after churn settled (%d -> %d reuses)",
			shrunk.FleetPlanReuses, after.FleetPlanReuses)
	}
	if after.PlanNanos <= 0 {
		t.Error("plan_ns not accounted")
	}
}

// TestServiceDriftTripPatchesPlan: a cost-detector trip on one stream
// must mark stale exactly the queries reading that stream, and the next
// tick must absorb the shift by patching the joint plan — not by
// dropping the whole plan cache.
func TestServiceDriftTripPatchesPlan(t *testing.T) {
	reg := overlapRegistry(t, 6, 19)
	svc := New(reg, WithWorkers(1), WithEngineOptions(engine.WithReplanThreshold(0.05)))
	overlapFleet(t, svc, 6)
	tickAll(t, svc, 20)
	before := svc.Metrics()

	// Feed the estimator a sustained per-item price shift on private0 —
	// only tenant0 reads it. The trip fires the service's subscription,
	// which buffers it for the next tick.
	ad := svc.Adaptive()
	k, ok := reg.IndexOf("private0")
	if !ok {
		t.Fatal("private0 missing from registry")
	}
	_, trips0 := ad.Trips()
	for i := 0; i < 15; i++ {
		ad.ObserveCost(k, 7, 1)
	}
	for i := 0; i < 10; i++ {
		ad.ObserveCost(k, 42, 8)
	}
	if _, trips := ad.Trips(); trips == trips0 {
		t.Fatal("price shift did not trip the cost detector")
	}

	tickAll(t, svc, 1)
	after := svc.Metrics()
	if after.FleetPlanIncremental <= before.FleetPlanIncremental {
		t.Errorf("drift trip full-replanned the fleet: %d incremental plans before and after",
			before.FleetPlanIncremental)
	}
	if after.ReplansForced <= before.ReplansForced {
		t.Errorf("drift trip forced no replan: %d -> %d", before.ReplansForced, after.ReplansForced)
	}
}

// TestConcurrentRegisterUnregisterStress churns a four-digit number of
// registrations against a continuously ticking service — the
// registration-storm scenario the incremental planner exists for. Run
// under -race in CI, it exercises Register/Unregister/Tick interleaving,
// the buffered detector trips and the lock-free cache fast path at fleet
// scale.
func TestConcurrentRegisterUnregisterStress(t *testing.T) {
	const privates = 8
	churn := 1000
	if testing.Short() {
		churn = 120
	}
	svc := New(overlapRegistry(t, privates, 31), WithWorkers(4))
	overlapFleet(t, svc, privates)

	stop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, e := range svc.Tick().Executions {
					if e.Err != "" {
						t.Errorf("tick %d query %s: %s", svc.Metrics().Ticks, e.ID, e.Err)
						return
					}
				}
			}
		}
	}()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < churn; i += writers {
				id := fmt.Sprintf("churn%d", i)
				text := fmt.Sprintf(
					"(AVG(shared,4) > 0.2 [p=0.5]) OR (AVG(private%d,4) > 0.2 [p=0.5])", i%privates)
				if err := svc.Register(id, text); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := svc.Unregister(id); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	ticker.Wait()

	tickAll(t, svc, 2)
	m := svc.Metrics()
	if want := privates + churn/2; m.Queries != want {
		t.Errorf("%d queries registered after churn, want %d", m.Queries, want)
	}
	if m.FleetPlans == 0 || m.FleetPlannedExecutions == 0 {
		t.Errorf("churned service did no joint planning: %+v", m)
	}
	t.Logf("churn=%d: %d ticks, %d joint plans (%d reused, %d incremental), plan time %.1fms",
		churn, m.Ticks, m.FleetPlans, m.FleetPlanReuses, m.FleetPlanIncremental,
		float64(m.PlanNanos)/1e6)
}

package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"paotr/internal/stream"
)

// lowOverlapRegistry builds 2*n uniform streams: query i owns streams
// 2i and 2i+1, so the fleet shares nothing and partitioning costs no
// sharing — the pure-throughput scenario.
func lowOverlapRegistry(tb testing.TB, n int, seed uint64) *stream.Registry {
	tb.Helper()
	reg := stream.NewRegistry()
	for i := 0; i < 2*n; i++ {
		if err := reg.Add(stream.Uniform(fmt.Sprintf("s%d", i), seed+uint64(i)), stream.CostModel{BaseJoules: 1}); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// lowOverlapFleet registers n disjoint 10-branch DNF queries without
// annotated probabilities: estimates keep sliding with the windowed
// estimator, so every tick re-plans — the planning-dominated regime
// where the joint planner's quadratic cost in fleet size makes K shards
// of n/K queries much cheaper than one shard of n, independent of core
// count.
func lowOverlapFleet(tb testing.TB, svc Runtime, n int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		a, b := 2*i, 2*i+1
		branches := make([]string, 10)
		for j := range branches {
			branches[j] = fmt.Sprintf("(AVG(s%d,%d) > 0.%d AND AVG(s%d,%d) > 0.%d)",
				a, 2+(j*3)%7, 3+j%6, b, 2+(j*5)%7, 2+(j*7)%7)
		}
		text := strings.Join(branches, " OR ")
		if err := svc.Register(fmt.Sprintf("q%d", i), text); err != nil {
			tb.Fatal(err)
		}
	}
}

// shardBenchResult is one row of BENCH_shard.json.
type shardBenchResult struct {
	Name     string  `json:"name"`
	Unit     string  `json:"unit"`
	Ops      int     `json:"ops"`
	JPerTick float64 `json:"j_per_tick"`
	PerSec   float64 `json:"per_sec"`
}

// shardBenchFile is the machine-readable sharding benchmark tracked
// PR-over-PR (and gated by cmd/benchgate).
type shardBenchFile struct {
	GoMaxProcs int `json:"gomaxprocs"`
	Queries    int `json:"queries"`
	// Results holds the low-overlap throughput rows (shards/1 and
	// shards/4).
	Results []shardBenchResult `json:"results"`
	// ThroughputSpeedup4x is ticks/sec at 4 shards over 1 on the
	// low-overlap fleet. The win is planning-complexity, not
	// parallelism: 4 joint plans over 8 queries are ~K times cheaper
	// than one joint plan over 32, so it holds even on one core.
	ThroughputSpeedup4x float64 `json:"throughput_speedup_4x"`
	// K1ByteIdentical records that a one-shard runtime produced
	// byte-identical serialized tick results to the unsharded service.
	K1ByteIdentical bool `json:"k1_byte_identical"`
	// Overlap reports the price of partitioning on the
	// overlapping-tenant corpus at 4 shards: the modelled joint cost of
	// the placement vs K=1, and the realized cross-shard duplicate
	// spend per tick.
	Overlap shardOverlapBench `json:"overlap"`
}

type shardOverlapBench struct {
	Tenants              int     `json:"tenants"`
	ShardJointCost       float64 `json:"shard_joint_cost"`
	SingleJointCost      float64 `json:"single_joint_cost"`
	SharingLostPct       float64 `json:"sharing_lost_pct"`
	DupSpendPerTick      float64 `json:"dup_spend_per_tick"`
	JPerTickSharded      float64 `json:"j_per_tick_sharded"`
	JPerTickUnsharded    float64 `json:"j_per_tick_unsharded"`
	RealizedLossPctJTick float64 `json:"realized_loss_pct_j_tick"`
}

// TestWriteShardBenchJSON emits BENCH_shard.json when
// PAOTR_BENCH_SHARD_JSON names an output path (the CI artifact gated by
// cmd/benchgate). Skipped otherwise.
func TestWriteShardBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_SHARD_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_SHARD_JSON=<path> to write the benchmark artifact")
	}
	const queries = 32
	const ticks = 120
	measure := func(k int) shardBenchResult {
		sh := NewSharded(lowOverlapRegistry(t, queries, 1), k, WithWorkers(4))
		lowOverlapFleet(t, sh, queries)
		sh.Run(3) // steady state
		start := sh.Metrics().PaidCost
		t0 := time.Now()
		sh.Run(ticks)
		dt := time.Since(t0)
		return shardBenchResult{
			Name:     fmt.Sprintf("shards/%d", k),
			Unit:     "tick",
			Ops:      ticks,
			JPerTick: (sh.Metrics().PaidCost - start) / ticks,
			PerSec:   float64(ticks) / dt.Seconds(),
		}
	}
	file := shardBenchFile{GoMaxProcs: runtime.GOMAXPROCS(0), Queries: queries}
	one := measure(1)
	four := measure(4)
	file.Results = []shardBenchResult{one, four}
	if one.PerSec > 0 {
		file.ThroughputSpeedup4x = four.PerSec / one.PerSec
	}
	if file.ThroughputSpeedup4x < 2 {
		t.Errorf("4-shard throughput speedup %.2fx on the %d-query low-overlap fleet, want >= 2x",
			file.ThroughputSpeedup4x, queries)
	}
	// Sharding disjoint queries must not change what the fleet pays.
	if four.JPerTick > one.JPerTick*1.01 {
		t.Errorf("low-overlap fleet pays %.2f J/tick at 4 shards vs %.2f at 1 — disjoint sharding must not cost energy",
			four.JPerTick, one.JPerTick)
	}

	// K=1 must degenerate byte-identically to the unsharded service.
	{
		const seed, n = 41, 20
		plain := New(testRegistry(seed), WithWorkers(4))
		sharded := NewSharded(testRegistry(seed), 1, WithWorkers(4))
		for i, q := range fleetQueries() {
			id := fmt.Sprintf("q%d", i)
			if err := plain.Register(id, q); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Register(id, q); err != nil {
				t.Fatal(err)
			}
		}
		a, _ := json.Marshal(plain.Run(n))
		b, _ := json.Marshal(sharded.Run(n))
		file.K1ByteIdentical = string(a) == string(b)
		if !file.K1ByteIdentical {
			t.Error("K=1 sharded tick results diverge from the unsharded service")
		}
	}

	// The overlapping-tenant corpus prices what partitioning costs.
	{
		const tenants, oticks = 8, 300
		run := func(k int) (Metrics, float64) {
			sh := NewSharded(overlapRegistry(t, tenants, 99), k, WithWorkers(4))
			overlapFleet(t, sh, tenants)
			sh.Run(3)
			start := sh.Metrics().PaidCost
			sh.Run(oticks)
			m := sh.Metrics()
			return m, (m.PaidCost - start) / oticks
		}
		m4, j4 := run(4)
		_, j1 := run(1)
		file.Overlap = shardOverlapBench{
			Tenants:           tenants,
			ShardJointCost:    m4.ShardJointExpectedCost,
			SingleJointCost:   m4.SingleJointExpectedCost,
			SharingLostPct:    m4.SharingLostPct,
			DupSpendPerTick:   m4.CrossShardDuplicateSpend / float64(m4.Ticks),
			JPerTickSharded:   j4,
			JPerTickUnsharded: j1,
		}
		if j1 > 0 {
			file.Overlap.RealizedLossPctJTick = 100 * (j4 - j1) / j1
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: 4-shard speedup %.2fx (%.1f -> %.1f ticks/sec), overlap sharing lost %.1f%% modelled / %.1f%% realized J/tick",
		out, file.ThroughputSpeedup4x, one.PerSec, four.PerSec,
		file.Overlap.SharingLostPct, file.Overlap.RealizedLossPctJTick)
}

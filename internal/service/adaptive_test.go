package service

import (
	"fmt"
	"math"
	"testing"

	"paotr/internal/engine"
	"paotr/internal/query"
	"paotr/internal/strategy"
	"paotr/internal/stream"
)

// TestAdaptiveAndLinearSharedMatchesSequential is the adaptive-execution
// counterpart of TestSharedMatchesSequential: 8 adaptive and 8 linear
// queries execute concurrently over one shared cache, and every per-tick
// verdict must equal the one the same query produces alone on a private
// cache. A decision tree changes the evaluation order — never the truth
// value — and sharing changes who pays — never what is observed. Under
// -race this also stresses the adaptive plan cache and the tick batcher.
func TestAdaptiveAndLinearSharedMatchesSequential(t *testing.T) {
	const seed = 1942
	const ticks = 60
	queries := fleetQueries()

	svc := New(testRegistry(seed), WithWorkers(8))
	adaptive := engine.AdaptiveExecutor{GapThreshold: 0}
	for i, qtext := range queries {
		if err := svc.Register(fmt.Sprintf("ad%d", i), qtext, WithQueryExecutor(adaptive)); err != nil {
			t.Fatal(err)
		}
		if err := svc.Register(fmt.Sprintf("lin%d", i), qtext); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]bool{}
	for tick, tr := range svc.Run(ticks) {
		if len(tr.Executions) != 2*len(queries) {
			t.Fatalf("tick %d ran %d executions, want %d", tick, len(tr.Executions), 2*len(queries))
		}
		for _, e := range tr.Executions {
			if e.Err != "" {
				t.Fatalf("tick %d query %s: %s", tick, e.ID, e.Err)
			}
			got[e.ID] = append(got[e.ID], e.Value)
		}
	}

	// Sequential baseline: each query alone on a private cache over an
	// identically seeded registry, linear execution.
	for i, qtext := range queries {
		reg := testRegistry(seed)
		eng := engine.New(reg)
		q, err := eng.Compile(qtext)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := q.NewCache()
		if err != nil {
			t.Fatal(err)
		}
		results, err := q.Run(cache, ticks)
		if err != nil {
			t.Fatal(err)
		}
		for tick, r := range results {
			for _, id := range []string{fmt.Sprintf("ad%d", i), fmt.Sprintf("lin%d", i)} {
				if got[id][tick] != r.Value {
					t.Errorf("query %s tick %d: shared=%v sequential=%v", id, tick, got[id][tick], r.Value)
				}
			}
		}
	}
}

// TestBatchingCostNeutralAndCountsDuplicates: batched acquisition must
// not change verdicts or the fleet's total paid cost — it only moves
// first-leaf pulls from racing workers to the batcher — and it must
// report the duplicate first-leaf pulls it coalesced away.
func TestBatchingCostNeutralAndCountsDuplicates(t *testing.T) {
	run := func(batch bool) ([]TickResult, Metrics) {
		svc := New(testRegistry(9), WithWorkers(4), WithBatchedAcquisition(batch))
		for i, qtext := range fleetQueries() {
			if err := svc.Register(fmt.Sprintf("q%d", i), qtext); err != nil {
				t.Fatal(err)
			}
		}
		return svc.Run(40), svc.Metrics()
	}
	onTicks, on := run(true)
	offTicks, off := run(false)
	for i := range onTicks {
		for j := range onTicks[i].Executions {
			a, b := onTicks[i].Executions[j], offTicks[i].Executions[j]
			if a.Value != b.Value || a.Err != b.Err {
				t.Fatalf("tick %d execution %s: batching changed outcome (%+v vs %+v)", i, a.ID, a, b)
			}
		}
	}
	if math.Abs(on.PaidCost-off.PaidCost) > 1e-6 {
		t.Errorf("batching changed total paid cost: %.6f vs %.6f", on.PaidCost, off.PaidCost)
	}
	if on.DuplicatePullsAvoided == 0 || on.BatchedItems == 0 || on.BatchedCost == 0 {
		t.Errorf("batching on but no batch activity recorded: %+v", on)
	}
	if off.DuplicatePullsAvoided != 0 || off.BatchedItems != 0 || off.BatchedCost != 0 {
		t.Errorf("batching off but batch metrics non-zero: %+v", off)
	}
	t.Logf("batcher coalesced %d duplicate first-leaf pulls (%d items, %.2f J) at equal total cost %.2f J",
		on.DuplicatePullsAvoided, on.BatchedItems, on.BatchedCost, on.PaidCost)
}

// TestStrategyMetricsExposed: per-query metrics must report the executor
// kind and count decision-tree executions, and the fleet snapshot must
// carry the realized-vs-expected ratio.
func TestStrategyMetricsExposed(t *testing.T) {
	tr := strategy.CounterExample()
	names := []string{"u0", "u1", "u2"}
	reg := stream.NewRegistry()
	for k, st := range tr.Streams {
		if err := reg.Add(stream.Uniform(names[k], uint64(k+1)), stream.CostModel{BaseJoules: st.Cost}); err != nil {
			t.Fatal(err)
		}
	}
	svc := New(reg, WithWorkers(2))
	text := strategy.UniformQueryText(tr, names)
	if err := svc.Register("ad", text, WithQueryExecutor(engine.AdaptiveExecutor{GapThreshold: -1})); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("lin", text); err != nil {
		t.Fatal(err)
	}
	svc.Run(30)
	ad, err := svc.QueryMetrics("ad")
	if err != nil {
		t.Fatal(err)
	}
	lin, err := svc.QueryMetrics("lin")
	if err != nil {
		t.Fatal(err)
	}
	if ad.Executor != engine.StrategyAdaptive || lin.Executor != engine.StrategyLinear {
		t.Fatalf("executor kinds = %q/%q, want adaptive/linear", ad.Executor, lin.Executor)
	}
	if ad.AdaptiveExecutions == 0 {
		t.Errorf("adaptive query recorded no decision-tree executions: %+v", ad)
	}
	if lin.AdaptiveExecutions != 0 {
		t.Errorf("linear query recorded decision-tree executions: %+v", lin)
	}
	m := svc.Metrics()
	if m.AdaptiveExecutions != ad.AdaptiveExecutions {
		t.Errorf("fleet adaptive executions %d != per-query %d", m.AdaptiveExecutions, ad.AdaptiveExecutions)
	}
	if m.RealizedOverExpected <= 0 {
		t.Errorf("fleet realized/expected ratio not computed: %+v", m)
	}
	if res, err := svc.Results("ad", 1); err != nil || len(res) != 1 || res[0].Strategy != engine.StrategyAdaptive {
		t.Errorf("adaptive execution record = %+v, %v", res, err)
	}
}

// gapFleet registers the corpus queries (one per tree, each over its own
// uniform streams) in a fresh service with the given executor.
func gapFleet(t testing.TB, corpus []*query.Tree, seed uint64, x engine.Executor) *Service {
	reg := stream.NewRegistry()
	names := make([][]string, len(corpus))
	for qi, tr := range corpus {
		names[qi] = make([]string, len(tr.Streams))
		for k, st := range tr.Streams {
			name := fmt.Sprintf("q%d-s%d", qi, k)
			names[qi][k] = name
			if err := reg.Add(stream.Uniform(name, seed+uint64(qi*16+k)), stream.CostModel{BaseJoules: st.Cost}); err != nil {
				t.Fatal(err)
			}
		}
	}
	svc := New(reg, WithExecutor(x),
		WithEngineOptions(engine.WithReplanThreshold(0.05)))
	for qi, tr := range corpus {
		if err := svc.Register(fmt.Sprintf("q%d", qi), strategy.UniformQueryText(tr, names[qi])); err != nil {
			t.Fatal(err)
		}
	}
	return svc
}

// TestAdaptiveRealizedBeatsLinearOnGapCorpus: on a counter-example corpus
// the adaptive executor's realized acquisition cost must not exceed the
// linear executor's on identical streams (small tolerance for sampling
// noise; the modelled gap is >= 10%).
func TestAdaptiveRealizedBeatsLinearOnGapCorpus(t *testing.T) {
	corpus := strategy.GapCorpus(4, 1.10)
	if len(corpus) < 2 {
		t.Fatalf("gap corpus too small: %d trees", len(corpus))
	}
	const seed = 7
	ticks := 1500
	if testing.Short() {
		ticks = 400
	}
	lin := gapFleet(t, corpus, seed, engine.LinearExecutor{})
	lin.Run(ticks)
	ad := gapFleet(t, corpus, seed, engine.AdaptiveExecutor{GapThreshold: engine.DefaultGapThreshold})
	ad.Run(ticks)
	lc, ac := lin.Metrics().PaidCost, ad.Metrics().PaidCost
	if ac > lc*1.02 {
		t.Errorf("adaptive realized %.1f J exceeds linear %.1f J", ac, lc)
	}
	t.Logf("realized over %d ticks: linear %.1f J, adaptive %.1f J (%.1f%% saved)",
		ticks, lc, ac, 100*(1-ac/lc))
}

// BenchmarkAdaptiveVsLinear measures realized acquisition cost and tick
// throughput of the two executors on the counter-example corpus. The
// J/tick metrics are the headline gap: adaptive execution should pay
// measurably less per tick than linear on these instances.
func BenchmarkAdaptiveVsLinear(b *testing.B) {
	corpus := strategy.GapCorpus(4, 1.10)
	bench := func(b *testing.B, x engine.Executor) {
		svc := gapFleet(b, corpus, 7, x)
		svc.Run(3) // steady state
		start := svc.Metrics().PaidCost
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Tick()
		}
		b.StopTimer()
		b.ReportMetric((svc.Metrics().PaidCost-start)/float64(b.N), "J/tick")
	}
	b.Run("linear", func(b *testing.B) { bench(b, engine.LinearExecutor{}) })
	b.Run("adaptive", func(b *testing.B) { bench(b, engine.AdaptiveExecutor{GapThreshold: engine.DefaultGapThreshold}) })
}

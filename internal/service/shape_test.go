package service

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"paotr/internal/corpus"
	"paotr/internal/stream"
)

// cseService builds a service over a CSE fleet's stream space and
// registers every tenant. Stream content is seeded per stream index, so
// two services built from the same config observe identical items.
func cseService(tb testing.TB, cfg corpus.CSEConfig, opts ...Option) *Service {
	tb.Helper()
	reg := stream.NewRegistry()
	for i, name := range cfg.StreamNames() {
		if err := reg.Add(stream.Uniform(name, uint64(i+1)), stream.CostModel{BaseJoules: 1}); err != nil {
			tb.Fatal(err)
		}
	}
	svc := New(reg, opts...)
	for _, q := range corpus.CSEFleet(cfg) {
		if err := svc.Register(q.ID, q.Text); err != nil {
			tb.Fatal(err)
		}
	}
	return svc
}

// Property: on a fleet where every query's shape is unique, shape
// factoring is a pure no-op — plans, costs and executions are
// byte-identical to the unfactored service, tick for tick.
func TestShapeFactoringAllUniqueByteIdentical(t *testing.T) {
	cfg := corpus.CSEConfig{Tenants: 24, Shapes: 24, Streams: 8, Seed: 41}
	run := func(factor bool) ([]TickResult, Metrics) {
		svc := cseService(t, cfg, WithWorkers(1), WithShapeFactoring(factor))
		return svc.Run(60), svc.Metrics()
	}
	ft, fm := run(true)
	ut, um := run(false)
	if !reflect.DeepEqual(ft, ut) {
		for i := range ft {
			if !reflect.DeepEqual(ft[i], ut[i]) {
				t.Fatalf("tick %d diverged:\nfactored   %+v\nunfactored %+v", i+1, ft[i], ut[i])
			}
		}
		t.Fatal("tick results diverged")
	}
	if fm.SharedExecutions != 0 {
		t.Errorf("all-unique fleet shared %d executions, want 0", fm.SharedExecutions)
	}
	if fm.DistinctShapes != cfg.Tenants {
		t.Errorf("DistinctShapes = %d, want %d", fm.DistinctShapes, cfg.Tenants)
	}
	type cmp struct {
		name string
		f, u any
	}
	for _, c := range []cmp{
		{"Executions", fm.Executions, um.Executions},
		{"PaidCost", fm.PaidCost, um.PaidCost},
		{"ExpectedCost", fm.ExpectedCost, um.ExpectedCost},
		{"PredicatesEvaluated", fm.PredicatesEvaluated, um.PredicatesEvaluated},
		{"PlanCacheHits", fm.PlanCacheHits, um.PlanCacheHits},
		{"FleetPlans", fm.FleetPlans, um.FleetPlans},
		{"FleetPlanReuses", fm.FleetPlanReuses, um.FleetPlanReuses},
		{"FleetExpectedCost", fm.FleetExpectedCost, um.FleetExpectedCost},
		{"BatchedCost", fm.BatchedCost, um.BatchedCost},
	} {
		if c.f != c.u {
			t.Errorf("%s: factored %v != unfactored %v", c.name, c.f, c.u)
		}
	}
}

// normalizeShared strips the factoring-only surface from an execution so
// it can be compared against the per-query baseline.
func normalizeShared(e Execution) Execution {
	e.Shared = false
	return e
}

// Property: over random duplicated-shape fleets, every tenant observes
// exactly the per-query baseline — verdict, realized cost, modelled cost
// and evaluated count — when factoring shares the evaluation. One worker
// and per-query planning keep the baseline deterministic: a baseline
// twin executes the leader's schedule against the items the leader just
// pulled, so its realized cost is 0 there too.
func TestShapeFactoringMatchesPerTenantBaseline(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		cfg := corpus.CSEConfig{
			Tenants: 8 + trial%9,
			Shapes:  1 + trial%5,
			Streams: 3 + trial%5,
			Seed:    uint64(1000 + trial),
		}
		run := func(factor bool) []TickResult {
			svc := cseService(t, cfg, WithWorkers(1), WithFleetPlanning(false),
				WithCumulativeEstimator(), WithShapeFactoring(factor))
			return svc.Run(8)
		}
		ft, ut := run(true), run(false)
		for ti := range ft {
			for i := range ft[ti].Executions {
				fe, ue := normalizeShared(ft[ti].Executions[i]), ut[ti].Executions[i]
				if fe != ue {
					t.Fatalf("trial %d (%d tenants / %d shapes) tick %d tenant %s:\nfactored   %+v\nbaseline   %+v",
						trial, cfg.Tenants, cfg.Shapes, ti+1, ue.ID, fe, ue)
				}
			}
		}
	}
}

// Property: with the full default pipeline (joint fleet planning,
// batching, windowed estimator), factoring must still deliver exactly
// the baseline verdict to every tenant. Costs may differ — the joint
// planner sees distinct shapes instead of the whole fleet, so twin
// schedules and short-circuit pulls legitimately change — but truth
// values cannot.
func TestShapeFactoringVerdictsMatchFleetPlanned(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		cfg := corpus.CSEConfig{
			Tenants: 10 + trial%7,
			Shapes:  2 + trial%4,
			Streams: 4 + trial%3,
			Seed:    uint64(7000 + trial),
		}
		run := func(factor bool) []TickResult {
			svc := cseService(t, cfg, WithWorkers(1), WithShapeFactoring(factor))
			return svc.Run(12)
		}
		ft, ut := run(true), run(false)
		for ti := range ft {
			for i := range ft[ti].Executions {
				fe, ue := ft[ti].Executions[i], ut[ti].Executions[i]
				if fe.ID != ue.ID || fe.Value != ue.Value || fe.Err != ue.Err {
					t.Fatalf("trial %d tick %d tenant %s: factored verdict (%v, %q) != baseline (%v, %q)",
						trial, ti+1, ue.ID, fe.Value, fe.Err, ue.Value, ue.Err)
				}
			}
		}
	}
}

// A duplicated fleet ticks through a probability regime shift: the
// Page-Hinkley trip on the shared estimator-driven predicate must
// invalidate the one shape-class plan, and every subscriber must observe
// the leader's replanned execution — twins stay equal to the leader
// through the shift, and the modelled cost visibly moves.
func TestDriftTripReplansShapeClassForAllSubscribers(t *testing.T) {
	rcfg := corpus.RegimeConfig{Seed: 17, ShiftStep: 120}
	reg := corpus.RegimeRegistry(rcfg)
	svc := New(reg, WithWorkers(1))
	text := corpus.RegimeQueries(rcfg)[0] // estimator-driven predicates
	const twins = 10
	for i := 0; i < twins; i++ {
		if err := svc.Register(fmt.Sprintf("t%d", i), text); err != nil {
			t.Fatal(err)
		}
	}
	if m := svc.Metrics(); m.DistinctShapes != 1 || m.ShapeSubscribers != twins {
		t.Fatalf("got %d shapes / %d subscribers, want 1 / %d", m.DistinctShapes, m.ShapeSubscribers, twins)
	}
	results := svc.Run(2 * int(rcfg.ShiftStep))
	expChangedAt := int64(0)
	var prevExp float64
	for ti, tr := range results {
		lead := tr.Executions[0]
		if lead.Shared {
			t.Fatalf("tick %d: leader execution flagged Shared", tr.Tick)
		}
		for _, e := range tr.Executions[1:] {
			if !e.Shared {
				t.Fatalf("tick %d: twin %s not shared", tr.Tick, e.ID)
			}
			if e.Value != lead.Value || e.ExpectedCost != lead.ExpectedCost || e.Evaluated != lead.Evaluated {
				t.Fatalf("tick %d: twin %s diverged from leader:\ntwin   %+v\nleader %+v", tr.Tick, e.ID, e, lead)
			}
			if e.Cost != 0 {
				t.Fatalf("tick %d: twin %s paid %.3f, want 0", tr.Tick, e.ID, e.Cost)
			}
		}
		if ti > int(rcfg.ShiftStep) && expChangedAt == 0 && prevExp != 0 && lead.ExpectedCost != prevExp {
			expChangedAt = tr.Tick
		}
		prevExp = lead.ExpectedCost
	}
	m := svc.Metrics()
	if m.PredicateDetectorTrips == 0 {
		t.Error("no predicate detector trips across the regime shift")
	}
	if m.ReplansForced == 0 {
		t.Error("detector trips forced no replans")
	}
	if expChangedAt == 0 {
		t.Error("no subscriber observed a post-shift replan (expected cost never moved)")
	}
	if m.SharedExecutions != int64(len(results))*(twins-1) {
		t.Errorf("SharedExecutions = %d, want %d", m.SharedExecutions, int64(len(results))*(twins-1))
	}
}

// Unregistering one subscriber must leave the class live for the rest —
// the remaining twins keep observing executions, and the cached joint
// plan survives (no staleness marks, pure reuse).
func TestUnregisterSubscriberKeepsClassLive(t *testing.T) {
	cfg := corpus.CSEConfig{Tenants: 6, Shapes: 2, Streams: 4, Seed: 5}
	svc := cseService(t, cfg, WithWorkers(1))
	svc.Run(5)
	before := svc.Metrics()
	if before.DistinctShapes != 2 {
		t.Fatalf("DistinctShapes = %d, want 2", before.DistinctShapes)
	}
	if err := svc.Unregister("t2"); err != nil { // shape 0 subscriber, not the leader
		t.Fatal(err)
	}
	after := svc.Metrics()
	if after.DistinctShapes != 2 || after.ShapeSubscribers != cfg.Tenants-1 {
		t.Fatalf("after unregister: %d shapes / %d subscribers, want 2 / %d",
			after.DistinctShapes, after.ShapeSubscribers, cfg.Tenants-1)
	}
	reuses := after.FleetPlanReuses
	tr := svc.Tick()
	if got := len(tr.Executions); got != cfg.Tenants-1 {
		t.Fatalf("%d executions after unregister, want %d", got, cfg.Tenants-1)
	}
	final := svc.Metrics()
	if final.FleetPlanReuses <= reuses {
		t.Errorf("unregistering one subscriber broke the joint plan cache (reuses %d -> %d)",
			reuses, final.FleetPlanReuses)
	}
	// And the last subscriber's departure kills the class.
	for _, id := range []string{"t0", "t4"} {
		if err := svc.Unregister(id); err != nil {
			t.Fatal(err)
		}
	}
	if m := svc.Metrics(); m.DistinctShapes != 1 {
		t.Errorf("DistinctShapes = %d after shape 0 fully unregistered, want 1", m.DistinctShapes)
	}
}

// Registering a twin of an already-planned shape must be a pure
// plan-cache hit: no staleness marks, so the next tick reuses the cached
// joint plan.
func TestTwinRegistrationIsPurePlanCacheHit(t *testing.T) {
	cfg := corpus.CSEConfig{Tenants: 4, Shapes: 2, Streams: 4, Seed: 9}
	svc := cseService(t, cfg, WithWorkers(1))
	svc.Run(20) // enough ticks for warm windows and estimator drift to stabilize
	fleet := corpus.CSEFleet(cfg)
	if err := svc.Register("twin-late", fleet[0].Text); err != nil {
		t.Fatal(err)
	}
	before := svc.Metrics()
	svc.Tick()
	after := svc.Metrics()
	if after.FleetPlanReuses != before.FleetPlanReuses+1 {
		t.Errorf("twin registration forced planner work: reuses %d -> %d (want +1)",
			before.FleetPlanReuses, after.FleetPlanReuses)
	}
	if after.DistinctShapes != 2 {
		t.Errorf("DistinctShapes = %d after twin registration, want 2", after.DistinctShapes)
	}
}

// TestShapeChurnStress registers and unregisters shape twins from
// concurrent goroutines while the fleet ticks — the -race surface for
// the class interning, leader election and fan-out paths.
func TestShapeChurnStress(t *testing.T) {
	cfg := corpus.CSEConfig{Tenants: 12, Shapes: 3, Streams: 6, Seed: 13}
	svc := cseService(t, cfg, WithWorkers(4))
	fleet := corpus.CSEFleet(cfg)
	stop := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		for {
			select {
			case <-stop:
				return
			default:
				svc.Tick()
			}
		}
	}()
	const churners = 4
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 99))
			for i := 0; i < 60; i++ {
				id := fmt.Sprintf("churn-%d-%d", c, i)
				text := fleet[rng.IntN(len(fleet))].Text
				if err := svc.Register(id, text); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				if rng.IntN(2) == 0 {
					svc.Tick()
				}
				if err := svc.Unregister(id); err != nil {
					t.Errorf("unregister %s: %v", id, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	<-tickerDone
	m := svc.Metrics()
	if m.DistinctShapes != cfg.Shapes {
		t.Errorf("DistinctShapes = %d after churn, want %d", m.DistinctShapes, cfg.Shapes)
	}
	if m.ShapeSubscribers != cfg.Tenants {
		t.Errorf("ShapeSubscribers = %d after churn, want %d", m.ShapeSubscribers, cfg.Tenants)
	}
}

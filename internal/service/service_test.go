package service

import (
	"fmt"
	"testing"

	"paotr/internal/engine"
	"paotr/internal/stream"
)

// testRegistry builds the standard five-sensor registry used across the
// service tests. Every call re-creates the sources, so deterministic
// streams produce identical values across registries built with the same
// seed.
func testRegistry(seed uint64) *stream.Registry {
	return stream.Wearables(seed)
}

// fleetQueries is a workload of 8 queries sharing the five streams with
// heavily overlapping windows — the multi-query sharing scenario of the
// paper's motivation.
func fleetQueries() []string {
	return []string{
		"AVG(heart-rate,5) > 100 AND accelerometer < 12",
		"heart-rate > 120 OR spo2 < 90",
		"spo2 < 92 OR (heart-rate > 110 AND gps-speed < 0.5)",
		"AVG(heart-rate,5) > 90 AND AVG(spo2,3) < 95",
		"accelerometer > 15 AND heart-rate > 100",
		"temperature > 24 OR (accelerometer > 20 AND gps-speed > 1.0)",
		"AVG(gps-speed,4) > 1.5 AND heart-rate > 80",
		"AVG(temperature,6) < 25 AND spo2 > 90",
	}
}

func TestRegisterUnregisterHorizons(t *testing.T) {
	reg := testRegistry(1)
	s := New(reg)
	if err := s.Register("a", "AVG(heart-rate,5) > 100"); err != nil {
		t.Fatal(err)
	}
	hr, _ := reg.IndexOf("heart-rate")
	if got := s.Cache().Horizon(hr); got != 5 {
		t.Fatalf("horizon after register = %d, want 5", got)
	}
	if err := s.Register("b", "AVG(heart-rate,9) > 100 AND spo2 < 95"); err != nil {
		t.Fatal(err)
	}
	if got := s.Cache().Horizon(hr); got != 9 {
		t.Fatalf("horizon with two queries = %d, want max window 9", got)
	}
	if err := s.Register("a", "heart-rate > 0"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.Unregister("b"); err != nil {
		t.Fatal(err)
	}
	if got := s.Cache().Horizon(hr); got != 5 {
		t.Fatalf("horizon after unregister = %d, want 5 again", got)
	}
	if err := s.Unregister("b"); err == nil {
		t.Fatal("double unregister accepted")
	}
	if got := len(s.QueryIDs()); got != 1 {
		t.Fatalf("%d queries registered, want 1", got)
	}
}

func TestRegisterErrors(t *testing.T) {
	s := New(testRegistry(1))
	if err := s.Register("bad", "no-such-stream > 1"); err == nil {
		t.Fatal("unknown stream accepted")
	}
	if err := s.Register("bad", "AVG(heart-rate"); err == nil {
		t.Fatal("syntax error accepted")
	}
	if got := len(s.QueryIDs()); got != 0 {
		t.Fatalf("failed registrations left %d queries", got)
	}
}

// TestSharedMatchesSequential is the central correctness property of the
// multi-query refactor: >=8 queries executing concurrently over one
// shared cache must produce exactly the per-tick truth values that the
// same queries produce when each runs alone on a private cache — sharing
// may only change who pays, never what is observed. Run under -race this
// also stresses the concurrency surface of cache, engine and traces.
func TestSharedMatchesSequential(t *testing.T) {
	const seed = 42
	const ticks = 60
	queries := fleetQueries()

	// Concurrent run: one service, shared cache, worker pool.
	svc := New(testRegistry(seed), WithWorkers(8))
	for i, q := range queries {
		if err := svc.Register(fmt.Sprintf("q%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	shared := make([][]bool, len(queries))
	for i := range shared {
		shared[i] = make([]bool, ticks)
	}
	for tick, tr := range svc.Run(ticks) {
		if len(tr.Executions) != len(queries) {
			t.Fatalf("tick %d ran %d executions, want %d", tick, len(tr.Executions), len(queries))
		}
		for _, e := range tr.Executions {
			if e.Err != "" {
				t.Fatalf("tick %d query %s: %s", tick, e.ID, e.Err)
			}
			var qi int
			fmt.Sscanf(e.ID, "q%d", &qi)
			shared[qi][tick] = e.Value
		}
	}

	// Sequential baseline: each query alone, on a private cache over an
	// identically seeded registry.
	var sharedCost = svc.Metrics().PaidCost
	var privateCost float64
	for i, qtext := range queries {
		reg := testRegistry(seed)
		eng := engine.New(reg)
		q, err := eng.Compile(qtext)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := q.NewCache()
		if err != nil {
			t.Fatal(err)
		}
		results, err := q.Run(cache, ticks)
		if err != nil {
			t.Fatal(err)
		}
		for tick, r := range results {
			if r.Value != shared[i][tick] {
				t.Errorf("query %d tick %d: shared=%v sequential=%v", i, tick, shared[i][tick], r.Value)
			}
		}
		privateCost += cache.Spent()
	}

	// The shared cache can only save cost versus private caches: every
	// item a query needs is either paid once by somebody or already there.
	if sharedCost > privateCost+1e-9 {
		t.Errorf("shared fleet paid %.3f, more than private caches' %.3f", sharedCost, privateCost)
	}
	t.Logf("fleet cost: shared %.3f vs private %.3f (%.1f%% saved)",
		sharedCost, privateCost, 100*(1-sharedCost/privateCost))
}

func TestEveryAndResults(t *testing.T) {
	svc := New(testRegistry(3), WithHistory(8))
	if err := svc.Register("fast", "heart-rate > 0"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("slow", "spo2 > 0", Every(5)); err != nil {
		t.Fatal(err)
	}
	svc.Run(20)
	fast, err := svc.QueryMetrics("fast")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := svc.QueryMetrics("slow")
	if err != nil {
		t.Fatal(err)
	}
	if fast.Executions != 20 || slow.Executions != 4 {
		t.Fatalf("executions fast=%d slow=%d, want 20 and 4", fast.Executions, slow.Executions)
	}
	res, err := svc.Results("fast", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("history kept %d results, want 8 (WithHistory)", len(res))
	}
	if res[len(res)-1].Tick != 20 {
		t.Fatalf("last result at tick %d, want 20", res[len(res)-1].Tick)
	}
	if _, err := svc.Results("nope", 1); err == nil {
		t.Fatal("unknown id accepted")
	}
	m := svc.Metrics()
	if m.Ticks != 20 || m.Executions != 24 || m.Queries != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.PaidCost <= 0 || m.PredicatesEvaluated <= 0 {
		t.Fatalf("metrics missing aggregates: %+v", m)
	}
	if m.CacheRequested < m.CacheTransferred {
		t.Fatalf("cache counters inconsistent: %+v", m)
	}
}

// TestPlanCacheHitsWithStableProbabilities: with annotated (fixed)
// probabilities and a steady-state cache, ticks after the first few must
// reuse plans rather than re-plan.
func TestPlanCacheHitsWithStableProbabilities(t *testing.T) {
	reg := stream.NewRegistry()
	if err := reg.Add(stream.Constant("c1", 1), stream.BLE); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(stream.Constant("c2", 2), stream.BLE); err != nil {
		t.Fatal(err)
	}
	// One worker: execution order (and so the warm fingerprints) is
	// deterministic; concurrency is exercised by the stress test above.
	svc := New(reg, WithWorkers(1))
	// Annotated probabilities: estimates never drift.
	if err := svc.Register("q0", "AVG(c1,3) > 0 [p=0.7] AND c2 > 1 [p=0.4]"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("q1", "c1 > 0 [p=0.9] OR AVG(c2,2) > 5 [p=0.1]"); err != nil {
		t.Fatal(err)
	}
	svc.Run(30)
	m := svc.Metrics()
	if m.PlanCacheHitRate < 0.8 {
		t.Fatalf("plan cache hit rate %.2f, want >= 0.8 under stable probabilities", m.PlanCacheHitRate)
	}
}

// BenchmarkServiceTicks measures repeated ticks of a stable fleet with
// the plan cache on (default) and off (negative replan threshold). The
// acceptance bar for the refactor is a >=3x speedup from plan reuse.
func BenchmarkServiceTicks(b *testing.B) {
	bench := func(b *testing.B, opts ...Option) {
		reg := stream.NewRegistry()
		for i := 0; i < 6; i++ {
			if err := reg.Add(stream.Constant(fmt.Sprintf("s%d", i), float64(i)), stream.BLE); err != nil {
				b.Fatal(err)
			}
		}
		svc := New(reg, append(opts, WithWorkers(1))...)
		// A wide DNF query per tenant: planning is the expensive part.
		for qi := 0; qi < 4; qi++ {
			text := ""
			for a := 0; a < 5; a++ {
				if a > 0 {
					text += " OR "
				}
				text += fmt.Sprintf("(AVG(s%d,4) > 10 [p=0.3%d] AND AVG(s%d,3) > 10 [p=0.4%d] AND AVG(s%d,5) > 10 [p=0.2%d])",
					(a+qi)%6, a, (a+qi+1)%6, a, (a+qi+2)%6, a)
			}
			if err := svc.Register(fmt.Sprintf("t%d", qi), text); err != nil {
				b.Fatal(err)
			}
		}
		svc.Run(3) // reach steady-state cache occupancy
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Tick()
		}
	}
	b.Run("plan-cache", func(b *testing.B) { bench(b) })
	b.Run("replan-every-tick", func(b *testing.B) {
		bench(b, WithEngineOptions(engine.WithReplanThreshold(-1)))
	})
}

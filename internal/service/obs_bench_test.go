package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"paotr/internal/obs"
)

// obsBenchRow is one observability configuration's cost on the steady
// 48-query alloc-bench fleet.
type obsBenchRow struct {
	Name string `json:"name"`
	// JPerTick is the realized acquisition energy per tick — the paper's
	// efficiency metric, which instrumentation must not move.
	JPerTick float64 `json:"j_per_tick"`
	// AllocsPerTick is the steady-state heap allocations one tick costs.
	AllocsPerTick float64 `json:"allocs_per_tick"`
}

// obsBenchFile is BENCH_obs.json: the observability layer's overhead on
// the gated hot path, measured with histograms off, histograms on
// (tracing off — the production default), and tracing sampling 1% of
// ticks. Both j_per_tick and allocs_per_tick are gated by benchgate
// against ci/baselines.
type obsBenchFile struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Modes      []obsBenchRow `json:"modes"`
	// HistOverheadPct is the histogram configuration's j_per_tick
	// overhead over the histogram-less run, in percent (acceptance
	// bound: <= 2).
	HistOverheadPct float64 `json:"hist_overhead_pct"`
}

// measureObsMode runs one configuration of the alloc-bench fleet to a
// steady state and returns its per-tick energy and allocations.
func measureObsMode(t *testing.T, opts ...Option) obsBenchRow {
	t.Helper()
	svc := allocBenchService(t, opts...)
	svc.Run(80) // past history-buffer warm-up (and the tracer's lazy ring)
	allocs := testing.AllocsPerRun(100, func() { svc.Tick() })
	before := svc.Metrics()
	const ticks = 400
	svc.Run(ticks)
	after := svc.Metrics()
	return obsBenchRow{
		JPerTick:      (after.PaidCost - before.PaidCost) / ticks,
		AllocsPerTick: allocs,
	}
}

// TestWriteObsBenchJSON emits BENCH_obs.json when PAOTR_BENCH_OBS_JSON
// names an output path (the CI perf-trajectory artifact; skipped
// otherwise). It carries the observability acceptance assertions: the
// always-on histograms must cost <= 2% j_per_tick over a histogram-less
// run, and with tracing disabled the alloc count must stay at the
// histogram-less figure (the 755 allocs/tick gated by BENCH_plan.json).
func TestWriteObsBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_OBS_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_OBS_JSON=<path> to write the benchmark artifact")
	}
	off := measureObsMode(t, WithTickHistograms(false))
	off.Name = "obs/off"
	hist := measureObsMode(t)
	hist.Name = "obs/hist"
	trace := measureObsMode(t, WithTraceSampling(100))
	trace.Name = "obs/trace1pct"

	overheadPct := 100 * (hist.JPerTick - off.JPerTick) / off.JPerTick
	if overheadPct > 2 {
		t.Errorf("histogram j_per_tick overhead %.2f%% (%.3f -> %.3f J/tick), want <= 2%%",
			overheadPct, off.JPerTick, hist.JPerTick)
	}
	// The tick path's observability cost is a handful of atomic adds:
	// with tracing off the histogram run must not allocate beyond the
	// histogram-less one (10% headroom absorbs amortized buffer growth).
	if hist.AllocsPerTick > off.AllocsPerTick*1.10 {
		t.Errorf("histograms cost allocations: %.0f allocs/tick vs %.0f without",
			hist.AllocsPerTick, off.AllocsPerTick)
	}

	file := obsBenchFile{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Modes:           []obsBenchRow{off, hist, trace},
		HistOverheadPct: overheadPct,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: off %.3f J / %.0f allocs, hist %.3f J / %.0f allocs (%.2f%% J overhead), trace1%% %.3f J / %.0f allocs",
		out, off.JPerTick, off.AllocsPerTick, hist.JPerTick, hist.AllocsPerTick, overheadPct,
		trace.JPerTick, trace.AllocsPerTick)
}

// TestTracingDisabledAllocPinned pins the zero-overhead contract of the
// tracer's gate: enabling sampling and disabling it again must return
// the tick path to exactly the allocation count it had before tracing
// was ever on — the disabled check is one atomic load, not a branch
// that leaves residue.
func TestTracingDisabledAllocPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state allocation measurement")
	}
	// Per-tick allocations are deterministic but not stationary (result
	// histories grow amortized), so the comparison runs two identical
	// fleets to the same tick and differs only in whether tracing was
	// ever on. The toggled fleet's residue, if any, shows up as extra
	// allocations in the measured window.
	pristine := allocBenchService(t)
	toggled := allocBenchService(t)
	pristine.Run(80)
	toggled.Run(80)

	toggled.SetTraceSampling(1)
	toggled.Run(4) // sampled ticks allocate traces and the lazy ring
	toggled.SetTraceSampling(0)
	pristine.Run(4)

	want := testing.AllocsPerRun(50, func() { pristine.Tick() })
	got := testing.AllocsPerRun(50, func() { toggled.Tick() })
	if got > want {
		t.Errorf("tracing left residue: %.0f allocs/tick after enable+disable, %.0f on the pristine twin", got, want)
	}
	if toggled.TraceSampling() != 0 || obs.TracingEnabled() {
		t.Errorf("tracer not fully disabled: period %d, gate %v", toggled.TraceSampling(), obs.TracingEnabled())
	}
}

// TestTickLatencyMergeMatchesFleet: the coordinator's merged tick
// histograms must be byte-identical (as JSON) to merging every shard's
// snapshot by hand — the exactness the integer bucket counters buy.
func TestTickLatencyMergeMatchesFleet(t *testing.T) {
	const tenants, shards, ticks = 6, 3, 30
	reg := overlapRegistry(t, tenants, 11)
	sh := NewSharded(reg, shards, WithWorkers(2))
	overlapFleet(t, sh, tenants)
	sh.Run(ticks)

	merged := sh.Metrics().TickLatency
	if merged == nil {
		t.Fatal("sharded runtime reports no tick latency")
	}
	var manual obs.LatencySnapshot
	for i := 0; i < shards; i++ {
		manual = obs.MergeLatency(manual, sh.Shard(i).Metrics().TickLatency)
	}
	a, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(manual)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("merged snapshot diverges from per-shard merge:\nfleet:  %s\nmanual: %s", a, b)
	}
	total := merged[obs.PhaseNames[obs.PhaseTotal]]
	if total.Count != int64(shards*ticks) {
		t.Errorf("total-phase count = %d, want %d (shards x ticks)", total.Count, shards*ticks)
	}
}

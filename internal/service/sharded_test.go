package service

import (
	"encoding/json"
	"fmt"
	"testing"

	"paotr/internal/corpus"
	"paotr/internal/engine"
)

// TestShardedOneShardByteIdentical: the K=1 sharded runtime must be the
// unsharded service — same plans, same verdicts, same costs, down to
// byte-identical serialized tick results.
func TestShardedOneShardByteIdentical(t *testing.T) {
	const seed, ticks = 41, 40
	plain := New(testRegistry(seed), WithWorkers(4))
	sharded := NewSharded(testRegistry(seed), 1, WithWorkers(4))
	for i, q := range fleetQueries() {
		id := fmt.Sprintf("q%d", i)
		if err := plain.Register(id, q); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Register(id, q); err != nil {
			t.Fatal(err)
		}
	}
	a, err := json.Marshal(plain.Run(ticks))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sharded.Run(ticks))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("K=1 sharded tick results diverge from the unsharded service:\nplain:   %.200s\nsharded: %.200s", a, b)
	}
	pm, sm := plain.Metrics(), sharded.Metrics()
	if pm.PaidCost != sm.PaidCost || pm.ExpectedCost != sm.ExpectedCost {
		t.Errorf("K=1 costs diverge: plain paid %v / expected %v, sharded %v / %v",
			pm.PaidCost, pm.ExpectedCost, sm.PaidCost, sm.ExpectedCost)
	}
	if sm.Shards != 1 {
		t.Errorf("sharded metrics report %d shards, want 1", sm.Shards)
	}
}

// TestShardStressMatchesSequential is the sharded counterpart of the
// fleet stress test: 4 shard workers over 8 queries sharing overlapping
// streams, ticking concurrently against private caches, must produce
// exactly the per-tick verdicts each query produces alone on a private
// cache. Under -race this stresses the shard fan-out, the shared stream
// sources and the fleet ledger across shard goroutines.
func TestShardStressMatchesSequential(t *testing.T) {
	const seed = 307
	const ticks = 60
	queries := fleetQueries()

	sh := NewSharded(testRegistry(seed), 4, WithWorkers(4))
	for i, q := range queries {
		if err := sh.Register(fmt.Sprintf("q%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	used := map[int]bool{}
	for _, s := range sh.Assignment() {
		used[s] = true
	}
	if len(used) < 2 {
		t.Fatalf("8 queries all placed on %d shard(s); the stress needs a real split", len(used))
	}
	verdicts := make([][]bool, len(queries))
	for i := range verdicts {
		verdicts[i] = make([]bool, ticks)
	}
	for tick, tr := range sh.Run(ticks) {
		if len(tr.Executions) != len(queries) {
			t.Fatalf("tick %d ran %d executions, want %d", tick, len(tr.Executions), len(queries))
		}
		for _, e := range tr.Executions {
			if e.Err != "" {
				t.Fatalf("tick %d query %s: %s", tick, e.ID, e.Err)
			}
			var qi int
			fmt.Sscanf(e.ID, "q%d", &qi)
			verdicts[qi][tick] = e.Value
		}
	}

	for i, qtext := range queries {
		reg := testRegistry(seed)
		eng := engine.New(reg)
		q, err := eng.Compile(qtext)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := q.NewCache()
		if err != nil {
			t.Fatal(err)
		}
		results, err := q.Run(cache, ticks)
		if err != nil {
			t.Fatal(err)
		}
		for tick, r := range results {
			if r.Value != verdicts[i][tick] {
				t.Errorf("query %d tick %d: sharded=%v sequential=%v", i, tick, verdicts[i][tick], r.Value)
			}
		}
	}

	// Histories must carry the owning shard, not just live tick results.
	for id, owner := range sh.Assignment() {
		res, err := sh.Results(id, 1)
		if err != nil || len(res) != 1 {
			t.Fatalf("Results(%s) = %v, %v", id, res, err)
		}
		if res[0].Shard != owner {
			t.Errorf("query %s history tagged shard %d, owner is %d", id, res[0].Shard, owner)
		}
	}

	m := sh.Metrics()
	if m.Shards != 4 || len(m.PerShard) != 4 {
		t.Fatalf("metrics report %d shards / %d summaries, want 4", m.Shards, len(m.PerShard))
	}
	var execs int64
	var paid float64
	for _, ps := range m.PerShard {
		execs += ps.Executions
		paid += ps.PaidCost
	}
	if execs != m.Executions {
		t.Errorf("per-shard executions sum %d != fleet %d", execs, m.Executions)
	}
	if diff := paid - m.PaidCost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("per-shard paid sum %v != fleet %v", paid, m.PaidCost)
	}
	// Overlapping streams split across shards must show up as realized
	// sharing loss: some item was transferred by more than one shard.
	if m.CrossShardDuplicateTransfers == 0 {
		t.Error("overlapping fleet split across 4 shards recorded no cross-shard duplicate transfers")
	}
	if m.CrossShardDuplicateSpend <= 0 {
		t.Error("cross-shard duplicate transfers cost nothing")
	}
	if m.ShardJointExpectedCost < m.SingleJointExpectedCost {
		t.Errorf("modelled shard joint cost %v below the K=1 joint cost %v",
			m.ShardJointExpectedCost, m.SingleJointExpectedCost)
	}
	t.Logf("4-shard stress: %d cross-shard duplicate transfers (%.1f J), modelled sharing lost %.1f%%",
		m.CrossShardDuplicateTransfers, m.CrossShardDuplicateSpend, m.SharingLostPct)
}

// TestShardStressDuplicateSpendDeterministic: the ledger's duplicate
// accounting (per item, total transfer cost minus the single most
// expensive transfer) is order-independent, so repeated runs of the
// shard stress scenario must report identical duplicate-spend totals
// even though shard ticks race to record each item. The overlapping
// corpus's integer costs make every total exact in binary floating
// point, so the comparison is exact equality, not a tolerance.
func TestShardStressDuplicateSpendDeterministic(t *testing.T) {
	const tenants, shards, ticks = 8, 4, 50
	run := func() (int64, float64, float64) {
		reg := overlapRegistry(t, tenants, 3)
		sh := NewSharded(reg, shards, WithWorkers(2))
		overlapFleet(t, sh, tenants)
		sh.Run(ticks)
		m := sh.Metrics()
		return m.CrossShardDuplicateTransfers, m.CrossShardDuplicateSpend, m.PaidCost
	}
	dupN0, dupJ0, paid0 := run()
	if dupN0 == 0 || dupJ0 <= 0 {
		t.Fatalf("stress run recorded no duplicate traffic: %d transfers, %v J", dupN0, dupJ0)
	}
	for i := 0; i < 3; i++ {
		dupN, dupJ, paid := run()
		if dupN != dupN0 || dupJ != dupJ0 || paid != paid0 {
			t.Fatalf("run %d ledger diverged: dup %d/%v J (want %d/%v J), paid %v J (want %v J)",
				i, dupN, dupJ, dupN0, dupJ0, paid, paid0)
		}
	}
}

// TestShardedAffinityCoLocatesTenants: on the overlapping-tenant corpus
// the partitioner must keep queries sharing the expensive stream
// together where balance allows, and the modelled sharing loss must
// stay below a round-robin placement's.
func TestShardedAffinityCoLocatesTenants(t *testing.T) {
	const tenants = 6
	sh := NewSharded(overlapRegistry(t, tenants, 99), 2, WithWorkers(2))
	overlapFleet(t, sh, tenants)
	sh.Run(20)
	m := sh.Metrics()
	if m.SharingLostPct < 0 {
		t.Errorf("negative sharing loss %v%%", m.SharingLostPct)
	}
	if m.ShardJointExpectedCost < m.SingleJointExpectedCost-1e-9 {
		t.Errorf("shard joint %v below single joint %v", m.ShardJointExpectedCost, m.SingleJointExpectedCost)
	}
	for _, ps := range m.PerShard {
		if ps.Queries == 0 {
			t.Errorf("shard %d empty under balanced placement: %+v", ps.Shard, m.PerShard)
		}
	}
}

// TestShardedRepartitionOnDrift: with WithRepartitionEvery set, a regime
// shift that trips the detectors must eventually trigger a live
// repartition, and the runtime must keep serving correct results
// (every due query executes, no errors) through the moves.
func TestShardedRepartitionOnDrift(t *testing.T) {
	cfg := corpus.RegimeConfig{Seed: 5, ShiftStep: 60}
	sh := NewSharded(corpus.RegimeRegistry(cfg), 2, WithWorkers(2), WithRepartitionEvery(10))
	for i, q := range corpus.RegimeQueries(cfg) {
		if err := sh.Register(fmt.Sprintf("q%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	for tick, tr := range sh.Run(200) {
		for _, e := range tr.Executions {
			if e.Err != "" {
				t.Fatalf("tick %d query %s: %s", tick, e.ID, e.Err)
			}
		}
	}
	m := sh.Metrics()
	if m.PredicateDetectorTrips+m.CostDetectorTrips == 0 {
		t.Fatal("regime shift tripped no detectors; the drift trigger was never exercised")
	}
	if m.Repartitions == 0 {
		t.Error("detector trips never triggered a repartition despite WithRepartitionEvery")
	}
	t.Logf("drift run: %d/%d detector trips, %d repartitions, %d queries moved",
		m.PredicateDetectorTrips, m.CostDetectorTrips, m.Repartitions, m.QueriesMoved)
}

// TestShardedRegisterUnregister: lifecycle bookkeeping across shards —
// ids are fleet-unique, unregistering frees them, results and per-query
// metrics route to the owning shard.
func TestShardedRegisterUnregister(t *testing.T) {
	sh := NewSharded(testRegistry(3), 3, WithWorkers(2))
	if err := sh.Register("a", "AVG(heart-rate,5) > 100"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Register("a", "heart-rate > 0"); err == nil {
		t.Fatal("duplicate id accepted across shards")
	}
	if err := sh.Register("b", "spo2 < 92 OR accelerometer > 15"); err != nil {
		t.Fatal(err)
	}
	sh.Run(5)
	if res, err := sh.Results("b", 3); err != nil || len(res) == 0 {
		t.Fatalf("Results(b) = %v, %v", res, err)
	}
	if qm, err := sh.QueryMetrics("a"); err != nil || qm.Executions != 5 {
		t.Fatalf("QueryMetrics(a) = %+v, %v; want 5 executions", qm, err)
	}
	if err := sh.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Unregister("a"); err == nil {
		t.Fatal("double unregister accepted")
	}
	if _, err := sh.Results("a", 1); err == nil {
		t.Fatal("results served for an unregistered id")
	}
	if got := sh.QueryIDs(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("QueryIDs = %v, want [b]", got)
	}
	if err := sh.Register("a", "temperature > 20"); err != nil {
		t.Fatalf("re-registering a freed id: %v", err)
	}
}

// TestShardedManualRepartitionMigratesEvidence: moving a query must
// carry its windowed predicate evidence to the new shard's estimator
// instead of resetting it to the prior.
func TestShardedManualRepartitionMigratesEvidence(t *testing.T) {
	const tenants = 4
	sh := NewSharded(overlapRegistry(t, tenants, 7), 2, WithWorkers(1))
	overlapFleet(t, sh, tenants)
	sh.Run(30)

	// Find a query with windowed evidence, then force a full repartition
	// after deliberately scrambling the assignment so something moves.
	assign := sh.Assignment()
	var someID string
	for id := range assign {
		someID = id
		break
	}
	pred := ""
	{
		ownerBefore := assign[someID]
		_, keys, ok := sh.Shard(ownerBefore).treeAndKeys(someID)
		if !ok || len(keys) == 0 {
			t.Fatal("query has no predicate keys")
		}
		pred = keys[0]
		if _, n := sh.Shard(ownerBefore).Adaptive().Estimate(pred); n == 0 {
			t.Fatalf("no evidence for %q on shard %d after 30 ticks", pred, ownerBefore)
		}
	}
	sh.mu.Lock()
	from := sh.assign[someID]
	to := (from + 1) % sh.k
	sh.moveLocked(someID, from, to, true)
	sh.assign[someID] = to
	sh.mu.Unlock()
	if _, n := sh.Shard(to).Adaptive().Estimate(pred); n == 0 {
		t.Errorf("moved query's predicate %q has no evidence on destination shard", pred)
	}
	// The runtime keeps serving the moved query.
	sh.Run(3)
	if qm, err := sh.QueryMetrics(someID); err != nil || qm.Executions < 3 {
		t.Fatalf("moved query stopped executing: %+v, %v", qm, err)
	}
}

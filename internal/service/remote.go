// Remote workers: the HTTP/JSON transport behind the coordinator/worker
// seam. A `paotrserve -worker` process serves WorkerHandler over one
// plain Service plus a local mirror of the fleet-global item relay; the
// coordinator drives it through remoteWorker, which implements Worker.
//
// Relay state syncs at tick boundaries: each tick request carries the
// delta of items other shards published since the last tick, the worker
// imports them into its mirror before ticking, and the response carries
// the purchases the worker's own caches made during the tick, which the
// coordinator publishes into the global index. A worker therefore sees a
// sibling's purchase one tick late at the earliest — the price of not
// holding a distributed lock on the hot acquire path; totals stay
// order-independent because transfers always cost frac of the recorded
// acquisition cost, whichever side resolved them.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"paotr/internal/acquisition"
	"paotr/internal/adapt"
	"paotr/internal/engine"
	"paotr/internal/query"
	"paotr/internal/stream"
)

// workerQuery is one query registration in wire form. Executor carries
// the engine strategy name (engine.StrategyLinear/StrategyAdaptive,
// empty for the worker's default); Gap the adaptive executor's
// gap threshold.
type workerQuery struct {
	ID       string  `json:"id"`
	Query    string  `json:"query"`
	Every    int     `json:"every,omitempty"`
	Executor string  `json:"executor,omitempty"`
	Gap      float64 `json:"gap,omitempty"`
}

// encodeQueryOpts flattens QueryOptions into wire form by applying them
// to a scratch registration. Executors other than the engine's linear
// and adaptive strategies cannot cross the wire.
func encodeQueryOpts(id, text string, opts []QueryOption) (workerQuery, error) {
	var r registered
	for _, o := range opts {
		o(&r)
	}
	wq := workerQuery{ID: id, Query: text, Every: r.every}
	switch x := r.exec.(type) {
	case nil:
	case engine.LinearExecutor:
		wq.Executor = engine.StrategyLinear
	case engine.AdaptiveExecutor:
		wq.Executor = engine.StrategyAdaptive
		wq.Gap = x.GapThreshold
	default:
		return wq, fmt.Errorf("service: executor %q does not serialize to a remote worker", x.Name())
	}
	return wq, nil
}

// decodeQueryOpts is the inverse: wire form back to QueryOptions.
func decodeQueryOpts(wq workerQuery) ([]QueryOption, error) {
	var opts []QueryOption
	if wq.Every > 0 {
		opts = append(opts, Every(wq.Every))
	}
	switch wq.Executor {
	case "":
	case engine.StrategyLinear:
		opts = append(opts, WithQueryExecutor(engine.LinearExecutor{}))
	case engine.StrategyAdaptive:
		opts = append(opts, WithQueryExecutor(engine.AdaptiveExecutor{GapThreshold: wq.Gap}))
	default:
		return nil, fmt.Errorf("service: unknown remote executor %q", wq.Executor)
	}
	return opts, nil
}

// workerTickRequest carries the coordinator's relay delta into a tick;
// workerTickResponse carries the tick result and the worker's own
// purchases back.
type workerTickRequest struct {
	RelayItems []acquisition.RelayItem `json:"relay_items,omitempty"`
}

type workerTickResponse struct {
	Result     TickResult              `json:"result"`
	RelayItems []acquisition.RelayItem `json:"relay_items,omitempty"`
}

// workerProfileResponse is the wire form of Worker.ProfileTree: the
// probability-annotated tree serializes directly (query.Tree is a plain
// streams+leaves value).
type workerProfileResponse struct {
	Tree     *query.Tree `json:"tree"`
	PredKeys []string    `json:"pred_keys"`
}

// WorkerHandler serves one shard worker's slice of the coordinator/worker
// protocol over HTTP/JSON (the `paotrserve -worker` surface). All
// endpoints live under /worker/.
type WorkerHandler struct {
	svc *Service
	// mirror is this process's mirror of the fleet-global item relay (nil
	// when the relay is off); the service's cache must have been built
	// with WithSharedRelay(mirror).
	mirror *acquisition.ItemRelay
	mux    *http.ServeMux

	mu sync.Mutex
	// exported is the mirror epoch already shipped to the coordinator.
	exported int64
	// regs remembers registrations in wire form and order, so a restarted
	// coordinator can adopt the worker's standing queries.
	regs  map[string]workerQuery
	order []string
}

// NewWorkerHandler wraps a worker service. mirror may be nil (relay
// off); when set it must be the relay the service's cache was built with
// (see WithSharedRelay).
func NewWorkerHandler(svc *Service, mirror *acquisition.ItemRelay) *WorkerHandler {
	h := &WorkerHandler{svc: svc, mirror: mirror, mux: http.NewServeMux(), regs: map[string]workerQuery{}}
	h.mux.HandleFunc("POST /worker/queries", h.handleRegister)
	h.mux.HandleFunc("GET /worker/queries", h.handleList)
	h.mux.HandleFunc("DELETE /worker/queries/{id...}", h.handleUnregister)
	h.mux.HandleFunc("POST /worker/tick", h.handleTick)
	h.mux.HandleFunc("GET /worker/results/{id...}", h.handleResults)
	h.mux.HandleFunc("GET /worker/query-metrics/{id...}", h.handleQueryMetrics)
	h.mux.HandleFunc("GET /worker/metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /worker/profile/{id...}", h.handleProfile)
	h.mux.HandleFunc("GET /worker/trips", h.handleTrips)
	h.mux.HandleFunc("POST /worker/evidence/export", h.handleEvidenceExport)
	h.mux.HandleFunc("POST /worker/evidence/import", h.handleEvidenceImport)
	h.mux.HandleFunc("POST /worker/cost-scale", h.handleCostScale)
	h.mux.HandleFunc("GET /worker/healthz", func(w http.ResponseWriter, r *http.Request) {
		workerJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return h
}

// ServeHTTP dispatches to the worker protocol routes under /worker/.
func (h *WorkerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func workerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func workerErr(w http.ResponseWriter, status int, err error) {
	workerJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(v); err != nil {
		workerErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func (h *WorkerHandler) handleRegister(w http.ResponseWriter, r *http.Request) {
	var wq workerQuery
	if !decodeBody(w, r, &wq) {
		return
	}
	opts, err := decodeQueryOpts(wq)
	if err != nil {
		workerErr(w, http.StatusBadRequest, err)
		return
	}
	if err := h.svc.Register(wq.ID, wq.Query, opts...); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicateID) {
			status = http.StatusConflict
		}
		workerErr(w, status, err)
		return
	}
	h.mu.Lock()
	h.regs[wq.ID] = wq
	h.order = append(h.order, wq.ID)
	h.mu.Unlock()
	workerJSON(w, http.StatusCreated, map[string]string{"status": "registered"})
}

func (h *WorkerHandler) handleList(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	out := make([]workerQuery, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, h.regs[id])
	}
	h.mu.Unlock()
	workerJSON(w, http.StatusOK, out)
}

func (h *WorkerHandler) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := h.svc.Unregister(id); err != nil {
		workerErr(w, http.StatusNotFound, err)
		return
	}
	h.mu.Lock()
	delete(h.regs, id)
	for i, o := range h.order {
		if o == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	workerJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

func (h *WorkerHandler) handleTick(w http.ResponseWriter, r *http.Request) {
	var req workerTickRequest
	if r.ContentLength != 0 && !decodeBody(w, r, &req) {
		return
	}
	// Serialize ticks against each other so the export epoch window
	// matches exactly one tick's purchases.
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.mirror != nil {
		h.mirror.Import(req.RelayItems)
	}
	resp := workerTickResponse{Result: h.svc.Tick()}
	if h.mirror != nil {
		resp.RelayItems, h.exported = h.mirror.Export(h.exported)
	}
	workerJSON(w, http.StatusOK, resp)
}

func (h *WorkerHandler) handleResults(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			workerErr(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	res, err := h.svc.Results(r.PathValue("id"), n)
	if err != nil {
		workerErr(w, http.StatusNotFound, err)
		return
	}
	workerJSON(w, http.StatusOK, res)
}

func (h *WorkerHandler) handleQueryMetrics(w http.ResponseWriter, r *http.Request) {
	m, err := h.svc.QueryMetrics(r.PathValue("id"))
	if err != nil {
		workerErr(w, http.StatusNotFound, err)
		return
	}
	workerJSON(w, http.StatusOK, m)
}

func (h *WorkerHandler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := h.svc.Metrics()
	if h.mirror != nil {
		// Overlay the mirror's purchase counters: the coordinator's global
		// index only sees this worker's purchases as published items, so
		// the worker reports its own spend (see Sharded.Metrics).
		rs := h.mirror.Stats()
		m.RelayPurchases = rs.Purchases
		m.RelayTransferSpend = rs.TransferSpend
	}
	workerJSON(w, http.StatusOK, m)
}

func (h *WorkerHandler) handleProfile(w http.ResponseWriter, r *http.Request) {
	t, keys, ok := h.svc.ProfileTree(r.PathValue("id"))
	if !ok {
		workerErr(w, http.StatusNotFound, fmt.Errorf("unknown query id %q", r.PathValue("id")))
		return
	}
	workerJSON(w, http.StatusOK, workerProfileResponse{Tree: t, PredKeys: keys})
}

func (h *WorkerHandler) handleTrips(w http.ResponseWriter, r *http.Request) {
	workerJSON(w, http.StatusOK, map[string]int64{"trips": h.svc.Trips()})
}

func (h *WorkerHandler) handleEvidenceExport(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keys []string `json:"keys"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	workerJSON(w, http.StatusOK, h.svc.ExportEvidence(req.Keys))
}

func (h *WorkerHandler) handleEvidenceImport(w http.ResponseWriter, r *http.Request) {
	var snaps []adapt.PredicateSnapshot
	if !decodeBody(w, r, &snaps) {
		return
	}
	h.svc.ImportEvidence(snaps)
	workerJSON(w, http.StatusOK, map[string]string{"status": "imported"})
}

func (h *WorkerHandler) handleCostScale(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Scale []float64 `json:"scale"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	h.svc.SetStreamCostScale(req.Scale)
	workerJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// remoteWorker drives one WorkerHandler over HTTP, implementing Worker
// for the coordinator. Transport failures on read paths degrade to zero
// values (the coordinator's merge treats the worker as idle that tick);
// failures on Register/Unregister surface as errors.
type remoteWorker struct {
	base string
	hc   *http.Client
	// global is the coordinator's fleet-global relay index (nil when the
	// relay is off); clockH its pruning clock handle for this worker.
	global *acquisition.ItemRelay
	clockH int

	mu sync.Mutex
	// sent is the global-relay epoch already shipped to this worker;
	// ticks counts Tick calls, advancing the global relay's pruning clock.
	sent  int64
	ticks int64
}

func newRemoteWorker(base string, global *acquisition.ItemRelay) *remoteWorker {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	rw := &remoteWorker{base: base, hc: &http.Client{}, global: global, clockH: -1}
	if global != nil {
		rw.clockH = global.Attach()
	}
	return rw
}

var _ Worker = (*remoteWorker)(nil)

// call runs one JSON round-trip. out may be nil to discard the body.
func (rw *remoteWorker) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, rw.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rw.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("service: worker %s %s%s: %s", method, rw.base, path, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}

func (rw *remoteWorker) Register(id, text string, opts ...QueryOption) error {
	wq, err := encodeQueryOpts(id, text, opts)
	if err != nil {
		return err
	}
	return rw.call(http.MethodPost, "/worker/queries", wq, nil)
}

func (rw *remoteWorker) Unregister(id string) error {
	return rw.call(http.MethodDelete, "/worker/queries/"+id, nil, nil)
}

func (rw *remoteWorker) Tick() TickResult {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	var req workerTickRequest
	sent := rw.sent
	if rw.global != nil {
		req.RelayItems, sent = rw.global.Export(rw.sent)
	}
	var resp workerTickResponse
	if err := rw.call(http.MethodPost, "/worker/tick", req, &resp); err != nil {
		return TickResult{}
	}
	rw.ticks++
	if rw.global != nil {
		rw.sent = sent
		rw.global.Publish(resp.RelayItems)
		rw.global.Advance(rw.clockH, rw.ticks)
	}
	return resp.Result
}

func (rw *remoteWorker) Results(id string, n int) ([]Execution, error) {
	var out []Execution
	err := rw.call(http.MethodGet, "/worker/results/"+id+"?n="+strconv.Itoa(n), nil, &out)
	return out, err
}

func (rw *remoteWorker) QueryMetrics(id string) (QueryMetrics, error) {
	var out QueryMetrics
	err := rw.call(http.MethodGet, "/worker/query-metrics/"+id, nil, &out)
	return out, err
}

func (rw *remoteWorker) Metrics() Metrics {
	var out Metrics
	if err := rw.call(http.MethodGet, "/worker/metrics", nil, &out); err != nil {
		return Metrics{}
	}
	return out
}

func (rw *remoteWorker) ProfileTree(id string) (*query.Tree, []string, bool) {
	var out workerProfileResponse
	if err := rw.call(http.MethodGet, "/worker/profile/"+id, nil, &out); err != nil || out.Tree == nil {
		return nil, nil, false
	}
	return out.Tree, out.PredKeys, true
}

func (rw *remoteWorker) Trips() int64 {
	var out struct {
		Trips int64 `json:"trips"`
	}
	if err := rw.call(http.MethodGet, "/worker/trips", nil, &out); err != nil {
		return 0
	}
	return out.Trips
}

func (rw *remoteWorker) ExportEvidence(keys []string) []adapt.PredicateSnapshot {
	var out []adapt.PredicateSnapshot
	req := struct {
		Keys []string `json:"keys"`
	}{Keys: keys}
	if err := rw.call(http.MethodPost, "/worker/evidence/export", req, &out); err != nil {
		return nil
	}
	return out
}

func (rw *remoteWorker) ImportEvidence(snaps []adapt.PredicateSnapshot) {
	if len(snaps) == 0 {
		return
	}
	_ = rw.call(http.MethodPost, "/worker/evidence/import", snaps, nil)
}

func (rw *remoteWorker) SetStreamCostScale(scale []float64) {
	req := struct {
		Scale []float64 `json:"scale"`
	}{Scale: scale}
	_ = rw.call(http.MethodPost, "/worker/cost-scale", req, nil)
}

// listQueries reads the worker's standing registrations (adoption on
// coordinator restart).
func (rw *remoteWorker) listQueries() ([]workerQuery, error) {
	var out []workerQuery
	err := rw.call(http.MethodGet, "/worker/queries", nil, &out)
	return out, err
}

// NewShardedRemote builds the coordinator over already-running
// `paotrserve -worker` processes, one shard per endpoint. Standing
// queries the workers already hold are adopted into the coordinator's
// assignment (coordinator restart), keyed by each worker's registration
// order. Options configure the coordinator-side knobs (WithRelay,
// WithShardBalance, WithRepartitionEvery); the worker processes carry
// their own service configuration. The cross-shard duplicate ledger is
// in-process only and stays off in remote mode.
func NewShardedRemote(reg *stream.Registry, endpoints []string, opts ...Option) (*Sharded, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("service: no worker endpoints")
	}
	cfg := config{balance: 0, shapeFactor: true}
	for _, o := range opts {
		o(&cfg)
	}
	sh := newShardedShell(reg, len(endpoints), cfg)
	sh.workers = make([]Worker, sh.k)
	sh.locals = make([]*Service, sh.k)
	for i, ep := range endpoints {
		sh.workers[i] = newRemoteWorker(ep, sh.relay)
	}
	for i, w := range sh.workers {
		regs, err := w.(*remoteWorker).listQueries()
		if err != nil {
			return nil, fmt.Errorf("service: adopting worker %d: %w", i, err)
		}
		for _, wq := range regs {
			if _, dup := sh.assign[wq.ID]; dup {
				return nil, fmt.Errorf("service: query %q registered on two workers", wq.ID)
			}
			qopts, err := decodeQueryOpts(wq)
			if err != nil {
				return nil, fmt.Errorf("service: adopting worker %d: %w", i, err)
			}
			sh.assign[wq.ID] = i
			sh.regOrder = append(sh.regOrder, wq.ID)
			sh.regInfo[wq.ID] = &shardedQuery{text: wq.Query, opts: qopts}
			// Re-derive the shape class so later twins co-locate here. An
			// adopted fleet may already hold a class split across workers
			// (pre-factoring state); the next repartition reunites it.
			ck := "id\x00" + wq.ID
			if sh.shapeFactor {
				if q, err := engine.New(reg).Compile(wq.Query); err == nil {
					ck = coordClassKey(q, qopts)
				}
			}
			sh.shapeOf[wq.ID] = ck
			sh.classSize[ck]++
			sh.classShard[ck] = i
		}
	}
	if len(sh.regOrder) > 0 {
		sh.lossDirty = true
		sh.scalesDirty = true
	}
	return sh, nil
}

package service

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"paotr/internal/acquisition"
)

// TestShardedRelayRecoversSharing is the tentpole check: on the
// overlapping-tenant corpus, sharding at K=4 loses most of the fleet's
// modelled sharing (every shard re-buys the shared stream), and the
// fleet-global relay must recover it — both in the model
// (SharingLostPctRelay << SharingLostPct) and in realized spend (the
// relay run pays measurably less than the relay-less run).
func TestShardedRelayRecoversSharing(t *testing.T) {
	const tenants, shards, ticks = 12, 4, 80
	run := func(frac float64) Metrics {
		reg := overlapRegistry(t, tenants, 99)
		opts := []Option{WithWorkers(2)}
		if frac > 0 {
			opts = append(opts, WithRelay(frac))
		}
		sh := NewSharded(reg, shards, opts...)
		overlapFleet(t, sh, tenants)
		sh.Run(ticks)
		return sh.Metrics()
	}
	base := run(0)
	relay := run(0.1)

	if base.RelayEnabled || base.RelayHits != 0 {
		t.Fatalf("relay-less run reports relay activity: %+v", base)
	}
	if !relay.RelayEnabled || relay.RelayTransferFrac != 0.1 {
		t.Fatalf("relay run not enabled at frac 0.1: enabled=%v frac=%v",
			relay.RelayEnabled, relay.RelayTransferFrac)
	}
	if relay.RelayHits == 0 || relay.RelayPurchases == 0 {
		t.Fatalf("relay saw no traffic: hits=%d purchases=%d", relay.RelayHits, relay.RelayPurchases)
	}
	if relay.RelayTransferSpend <= 0 || relay.RelaySavedSpend <= 0 {
		t.Fatalf("relay spend not accounted: transfer=%v saved=%v",
			relay.RelayTransferSpend, relay.RelaySavedSpend)
	}
	// The modelled residual loss after relay discounts is frac of the raw
	// loss — far below the acceptance bound of 25%.
	if relay.SharingLostPctRelay >= 25 {
		t.Errorf("modelled sharing lost with relay = %.1f%%, want < 25%%", relay.SharingLostPctRelay)
	}
	if relay.SharingLostPctRelay >= relay.SharingLostPct {
		t.Errorf("relay loss %.1f%% not below raw loss %.1f%%",
			relay.SharingLostPctRelay, relay.SharingLostPct)
	}
	// Realized: the relay run must be cheaper than the relay-less run by
	// at least half of what it claims to have saved (the claim is exact,
	// but plans may differ slightly under the discounted cost model).
	if relay.PaidCost >= base.PaidCost {
		t.Errorf("relay run paid %.2f J, relay-less paid %.2f J — no realized saving",
			relay.PaidCost, base.PaidCost)
	}
	if saved := base.PaidCost - relay.PaidCost; saved < relay.RelaySavedSpend/2 {
		t.Errorf("realized saving %.2f J < half the claimed relay saving %.2f J", saved, relay.RelaySavedSpend)
	}
	// Per-stream accounting: relay hits concentrate on the shared stream
	// (index 0), and the per-stream sums must cover the fleet totals.
	var hits int64
	for _, ps := range relay.PerStream {
		hits += ps.RelayHits
	}
	if hits != relay.RelayHits {
		t.Errorf("per-stream relay hits sum %d != fleet relay hits %d", hits, relay.RelayHits)
	}
	if relay.PerStream[0].RelayHits == 0 {
		t.Errorf("shared stream saw no relay hits: %+v", relay.PerStream[0])
	}
}

// TestShardedRelayZeroFracIdentical pins the byte-identity guarantee:
// WithRelay(0) must leave the sharded runtime exactly as it is without
// the option — same executions, same metrics JSON.
func TestShardedRelayZeroFracIdentical(t *testing.T) {
	const tenants, shards, ticks = 6, 3, 40
	run := func(opts ...Option) ([]TickResult, []byte) {
		reg := overlapRegistry(t, tenants, 7)
		sh := NewSharded(reg, shards, append(opts, WithWorkers(1))...)
		overlapFleet(t, sh, tenants)
		res := sh.Run(ticks)
		met := sh.Metrics()
		met.PlanNanos = 0     // wall-clock, never byte-stable
		met.TickLatency = nil // wall-clock histograms, never byte-stable
		for i := range met.PerShard {
			met.PerShard[i].TickLatency = nil
		}
		m, err := json.Marshal(met)
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	baseRes, baseM := run()
	zeroRes, zeroM := run(WithRelay(0))
	br, _ := json.Marshal(baseRes)
	zr, _ := json.Marshal(zeroRes)
	if string(br) != string(zr) {
		t.Fatalf("WithRelay(0) changed tick results")
	}
	if string(baseM) != string(zeroM) {
		t.Fatalf("WithRelay(0) changed metrics:\nbase: %s\nzero: %s", baseM, zeroM)
	}
}

// TestShardedRelayTotalsDeterministic: which shard wins an item's full
// purchase is race-dependent, but the fleet's totals are not — an item
// needed by m shards costs full + (m-1)*frac*full whichever shard wins.
// With the corpus's integer costs and frac 0.25 every quantity is exact
// in binary floating point, so repeated runs must agree exactly.
func TestShardedRelayTotalsDeterministic(t *testing.T) {
	const tenants, shards, ticks = 8, 4, 50
	run := func() (float64, float64, int64) {
		reg := overlapRegistry(t, tenants, 3)
		sh := NewSharded(reg, shards, WithWorkers(2), WithRelay(0.25))
		overlapFleet(t, sh, tenants)
		sh.Run(ticks)
		m := sh.Metrics()
		return m.PaidCost, m.RelayTransferSpend, m.RelayPurchases
	}
	paid0, spend0, buys0 := run()
	for i := 0; i < 3; i++ {
		paid, spend, buys := run()
		if paid != paid0 || spend != spend0 || buys != buys0 {
			t.Fatalf("run %d diverged: paid %v/%v transfer %v/%v purchases %d/%d",
				i, paid, paid0, spend, spend0, buys, buys0)
		}
	}
}

// TestShardedRelayPlannerDiscount: with the relay on, the coordinator
// installs the relay-discounted per-stream scales on every worker
// (shared by 4 shards at frac 0.1 -> (1+3*0.1)/4), and the discounted
// price steers the joint planner toward the relayed stream — the relay
// run evaluates the shared branch first where the undiscounted run
// prefers the private branch.
func TestShardedRelayPlannerDiscount(t *testing.T) {
	const tenants, shards, ticks = 10, 4, 40
	run := func(frac float64) (*Sharded, Metrics) {
		reg := overlapRegistry(t, tenants, 21)
		opts := []Option{WithWorkers(1)}
		if frac > 0 {
			opts = append(opts, WithRelay(frac))
		}
		sh := NewSharded(reg, shards, opts...)
		overlapFleet(t, sh, tenants)
		sh.Run(ticks)
		return sh, sh.Metrics()
	}
	_, base := run(0)
	sh, relay := run(0.1)
	for i := 0; i < shards; i++ {
		svc := sh.Shard(i)
		svc.mu.Lock()
		scale := append([]float64(nil), svc.costScale...)
		svc.mu.Unlock()
		want := (1 + float64(shards-1)*0.1) / float64(shards)
		if len(scale) == 0 || scale[0] != want {
			t.Fatalf("worker %d shared-stream scale = %v, want %v", i, scale, want)
		}
	}
	// The discounted shared stream wins the leaf order: the relay run
	// requests it more than the undiscounted run does.
	if relay.PerStream[0].Requested <= base.PerStream[0].Requested {
		t.Errorf("relay run requested shared %d times, base %d — discount did not steer the planner",
			relay.PerStream[0].Requested, base.PerStream[0].Requested)
	}
	if relay.RelayJointExpectedCost <= 0 || relay.RelayJointExpectedCost >= relay.ShardJointExpectedCost {
		t.Errorf("relay joint model %.2f J not inside (0, shard joint %.2f J)",
			relay.RelayJointExpectedCost, relay.ShardJointExpectedCost)
	}
}

// startRemoteFleet spins n worker processes (as httptest servers over
// WorkerHandler) sharing one corpus seed, and returns their endpoints.
func startRemoteFleet(t *testing.T, tenants, n int, frac float64, seed uint64) []string {
	t.Helper()
	endpoints := make([]string, n)
	for i := 0; i < n; i++ {
		reg := overlapRegistry(t, tenants, seed)
		var mirror *acquisition.ItemRelay
		opts := []Option{WithWorkers(1), WithShardIndex(i)}
		if frac > 0 {
			mirror = acquisition.NewItemRelay(reg.Len(), frac)
			opts = append(opts, WithSharedRelay(mirror))
		}
		srv := httptest.NewServer(NewWorkerHandler(New(reg, opts...), mirror))
		t.Cleanup(srv.Close)
		endpoints[i] = srv.URL
	}
	return endpoints
}

// TestShardedRemoteWorkers drives the coordinator over HTTP workers:
// registrations place across processes, ticks merge every worker's
// executions, relay deltas sync at tick boundaries, and a restarted
// coordinator adopts the standing queries.
func TestShardedRemoteWorkers(t *testing.T) {
	const tenants, workers, ticks = 8, 4, 60
	endpoints := startRemoteFleet(t, tenants, workers, 0.1, 17)
	sh, err := NewShardedRemote(overlapRegistry(t, tenants, 17), endpoints, WithRelay(0.1))
	if err != nil {
		t.Fatal(err)
	}
	overlapFleet(t, sh, tenants)

	assign := sh.Assignment()
	used := map[int]bool{}
	for _, s := range assign {
		used[s] = true
	}
	if len(used) < 2 {
		t.Fatalf("all queries landed on one worker: %v", assign)
	}
	for i, tr := range sh.Run(ticks - 20) {
		if len(tr.Executions) != tenants {
			t.Fatalf("tick %d merged %d executions, want %d", i, len(tr.Executions), tenants)
		}
	}
	// Relay mirrors sync at tick boundaries, so a worker's steady-state
	// pulls are L1 hits — remote relay transfers surface when demand
	// moves between workers. Register a single-leaf probe query (always
	// evaluated), let its worker build pull history, then move it: the
	// destination's first pull of the probe's stream misses L1 and the
	// mirror serves the items the old worker already published.
	if err := sh.Register("obs", "AVG(private0,4) > 0.2 [p=0.9]"); err != nil {
		t.Fatal(err)
	}
	sh.Run(10)
	sh.mu.Lock()
	from := sh.assign["obs"]
	to := (from + 1) % workers
	sh.moveLocked("obs", from, to, true)
	sh.assign["obs"] = to
	sh.lossDirty, sh.scalesDirty = true, true
	sh.mu.Unlock()
	sh.Run(10)
	m := sh.Metrics()
	if m.Executions != int64(tenants*ticks+20) {
		t.Fatalf("fleet executions = %d, want %d", m.Executions, tenants*ticks+20)
	}
	if !m.RelayEnabled || m.RelayHits == 0 {
		t.Fatalf("remote relay saw no traffic: enabled=%v hits=%d", m.RelayEnabled, m.RelayHits)
	}
	if m.RelayPurchases == 0 || m.RelayTransferSpend <= 0 {
		t.Fatalf("remote relay purchase counters empty: purchases=%d transfer=%v",
			m.RelayPurchases, m.RelayTransferSpend)
	}
	if _, err := sh.Results("tenant0", 5); err != nil {
		t.Fatalf("Results over remote worker: %v", err)
	}

	// Coordinator restart: a fresh coordinator over the same workers must
	// adopt every standing query and keep ticking without re-registering.
	sh2, err := NewShardedRemote(overlapRegistry(t, tenants, 17), endpoints, WithRelay(0.1))
	if err != nil {
		t.Fatal(err)
	}
	const standing = tenants + 1 // the tenant fleet plus the probe
	if got := len(sh2.QueryIDs()); got != standing {
		t.Fatalf("restarted coordinator adopted %d queries, want %d", got, standing)
	}
	if diff := len(sh2.Assignment()); diff != standing {
		t.Fatalf("restarted coordinator assignment size %d, want %d", diff, standing)
	}
	tr := sh2.Tick()
	if len(tr.Executions) != standing {
		t.Fatalf("restarted coordinator tick merged %d executions, want %d", len(tr.Executions), standing)
	}
	// Unregister through the restarted coordinator reaches the worker.
	if err := sh2.Unregister("tenant0"); err != nil {
		t.Fatal(err)
	}
	if tr := sh2.Tick(); len(tr.Executions) != standing-1 {
		t.Fatalf("after unregister, tick merged %d executions, want %d", len(tr.Executions), standing-1)
	}
}

// TestShardedRemoteRepartition moves a query between worker processes:
// estimator evidence must migrate over the wire and the moved query must
// keep executing on its new worker.
func TestShardedRemoteRepartition(t *testing.T) {
	const tenants, workers = 6, 3
	endpoints := startRemoteFleet(t, tenants, workers, 0.1, 5)
	sh, err := NewShardedRemote(overlapRegistry(t, tenants, 5), endpoints, WithRelay(0.1))
	if err != nil {
		t.Fatal(err)
	}
	overlapFleet(t, sh, tenants)
	sh.Run(20)
	sh.Repartition()
	for i, tr := range sh.Run(10) {
		if len(tr.Executions) != tenants {
			t.Fatalf("post-repartition tick %d merged %d executions, want %d",
				i, len(tr.Executions), tenants)
		}
	}
	m := sh.Metrics()
	if m.Repartitions != 1 {
		t.Fatalf("repartitions = %d, want 1", m.Repartitions)
	}
	if m.Executions != int64(tenants*30) {
		t.Fatalf("executions = %d, want %d", m.Executions, tenants*30)
	}
}

// TestRelayTransferFracSweep checks the cost model across transfer
// fractions: total realized spend must be monotone non-decreasing in
// frac (cheaper transfers can only help), with frac=1 no better than
// the relay-less baseline.
func TestRelayTransferFracSweep(t *testing.T) {
	const tenants, shards, ticks = 8, 4, 40
	run := func(frac float64, on bool) float64 {
		reg := overlapRegistry(t, tenants, 11)
		opts := []Option{WithWorkers(1)}
		if on {
			opts = append(opts, WithRelay(frac))
		}
		sh := NewSharded(reg, shards, opts...)
		overlapFleet(t, sh, tenants)
		sh.Run(ticks)
		return sh.Metrics().PaidCost
	}
	base := run(0, false)
	fracs := []float64{0.25, 0.5, 1}
	var prev float64
	for i, f := range fracs {
		paid := run(f, true)
		if i > 0 && paid < prev-1e-9 {
			t.Errorf("frac %.2f paid %.2f J < frac %.2f's %.2f J — not monotone",
				f, paid, fracs[i-1], prev)
		}
		if paid > base+1e-9 {
			t.Errorf("frac %.2f paid %.2f J above relay-less baseline %.2f J", f, paid, base)
		}
		prev = paid
	}
}

// Marginal-cost quoting on the serving runtimes: QuoteRegister prices a
// registration without performing it, the read-only front half of
// admission control. The plain service quotes against its own resident
// fleet via fleet.QuoteJoint (a strict dry run on the joint planner);
// the sharded coordinator routes the quote to the shard the query would
// be placed on, so the price reflects the sharing actually available
// there.
package service

import (
	"fmt"

	"paotr/internal/engine"
	"paotr/internal/fleet"
	"paotr/internal/query"
	"paotr/internal/sched"
	"paotr/internal/shard"
)

// Quote is a registration's price tag: what admitting it would add to
// the fleet's planned acquisition energy.
type Quote struct {
	// MarginalJPerTick is the quoted marginal joint cost: the expected
	// J/tick the patched joint plan including the newcomer costs over the
	// resident plan. Zero for a twin of a resident shape.
	MarginalJPerTick float64 `json:"marginal_j_per_tick"`
	// IndependentJPerTick is what the same query would cost planned
	// alone — the no-sharing price. The gap to MarginalJPerTick is the
	// overlap discount the resident fleet grants the newcomer.
	IndependentJPerTick float64 `json:"independent_j_per_tick"`
	// SharedShape reports an exact twin: the query interns into an
	// already-resident shape class and executes by fan-out, adding no
	// planned acquisition at all.
	SharedShape bool `json:"shared_shape"`
}

// QuoteRegister prices registering (id, text, opts) against the current
// fleet without registering it and without mutating any planner or
// cache state. The id must be free; the text must compile. The quote
// equals the joint-plan delta the planner realizes if the query is
// admitted (see fleet.QuoteJoint), so admission control can spend
// budgets in the same currency the planner accounts in.
func (s *Service) QuoteRegister(id, text string, opts ...QueryOption) (Quote, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[id]; dup {
		return Quote{}, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	r := &registered{id: id, text: text, every: 1}
	for _, o := range opts {
		o(r)
	}
	var q *engine.Query
	if s.shapeFactor {
		if c := s.textMemo[s.executorFor(r).Name()+"\x00"+text]; c != nil {
			q = c.q
		}
	}
	if q == nil {
		compiled, err := s.eng.Compile(text)
		if err != nil {
			return Quote{}, fmt.Errorf("service: compiling %q: %w", id, err)
		}
		q = compiled
	}
	r.q = q
	tree := q.Tree()
	if c := s.classes[s.classKeyFor(r)]; c != nil {
		// An exact twin of a resident shape: it shares the leader's
		// execution and plan, so its marginal planned cost is zero.
		return Quote{SharedShape: true, IndependentJPerTick: s.independentPriceLocked(tree)}, nil
	}

	// The independent price is taken on a fresh copy: independentPrice-
	// Locked and the joint dry run below each apply the relay cost
	// scaling once, and it must not compound on a shared tree.
	quote := Quote{IndependentJPerTick: s.independentPriceLocked(q.Tree())}
	if !s.fleetPlan {
		// Without joint planning every query pays its own way.
		quote.MarginalJPerTick = quote.IndependentJPerTick
		return quote, nil
	}
	if _, linear := s.executorFor(r).(engine.LinearExecutor); !linear {
		// Non-linear executors do not participate in the joint plan;
		// their marginal cost is their independent price.
		quote.MarginalJPerTick = quote.IndependentJPerTick
		return quote, nil
	}

	// Assemble the resident linear fleet the joint planner would see —
	// one prob-annotated tree per shape class, in classList (due-set)
	// order — plus the newcomer, and dry-run the patch.
	keys := make([]string, 0, len(s.classList))
	trees := make([]*query.Tree, 0, len(s.classList))
	weights := make([]int, 0, len(s.classList))
	need := make([]int, s.reg.Len())
	for _, c := range s.classList {
		lead := c.members[0]
		if _, linear := s.executorFor(lead).(engine.LinearExecutor); !linear {
			continue
		}
		t := c.q.Tree()
		keys = append(keys, c.planKey)
		trees = append(trees, t)
		weights = append(weights, len(c.members))
		growNeed(need, t)
	}
	growNeed(need, tree)
	s.scaleTreeCosts(trees)
	s.scaleTreeCosts([]*query.Tree{tree})
	warm := sched.Warm(s.cache.SnapshotInto(need, nil))
	quote.MarginalJPerTick = s.planner.QuoteJoint(keys, trees, weights, warm, s.quotePlanKey(r), tree)
	return quote, nil
}

// independentPriceLocked prices one tree planned alone under the
// current cache warm state. Caller holds the service lock.
func (s *Service) independentPriceLocked(tree *query.Tree) float64 {
	need := make([]int, s.reg.Len())
	growNeed(need, tree)
	s.scaleTreeCosts([]*query.Tree{tree})
	warm := sched.Warm(s.cache.SnapshotInto(need, nil))
	p := fleet.PlanJoint([]*query.Tree{tree}, warm)
	return p.Expected
}

// quotePlanKey derives the plan key the newcomer's class would get —
// the shape-derived key under factoring, the id otherwise — so the
// dry-run patch prices against exactly the due set a real admission
// produces.
func (s *Service) quotePlanKey(r *registered) string {
	if !s.shapeFactor {
		return r.id
	}
	pk := fmt.Sprintf("shape:%016x", r.q.ShapeHash())
	for n := 1; ; n++ {
		if _, taken := s.planKeys[pk]; !taken {
			return pk
		}
		pk = fmt.Sprintf("shape:%016x#%d", r.q.ShapeHash(), n)
	}
}

// growNeed widens the per-stream item horizon to cover the tree.
func growNeed(need []int, t *query.Tree) {
	for _, lf := range t.Leaves {
		if k := int(lf.Stream); k < len(need) && lf.Items > need[k] {
			need[k] = lf.Items
		}
	}
}

// scaleTreeCosts applies the coordinator's relay-discounted per-stream
// cost multipliers to freshly allocated trees, mirroring what planFleet
// does on the tick path so quotes price in the same currency.
func (s *Service) scaleTreeCosts(trees []*query.Tree) {
	if s.costScale == nil {
		return
	}
	for _, t := range trees {
		for k := range t.Streams {
			if k < len(s.costScale) {
				t.Streams[k].Cost *= s.costScale[k]
			}
		}
	}
}

// QuoteRegister on the sharded coordinator prices the registration on
// the shard it would be placed on: twins of a placed class are free,
// otherwise the placement shard's worker quotes against its resident
// fleet. Remote workers (paotrserve -worker processes) fall back to the
// independent price of a neutrally compiled tree — the upper bound of
// the marginal cost.
func (sh *Sharded) QuoteRegister(id, text string, opts ...QueryOption) (Quote, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.assign[id]; dup {
		return Quote{}, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	target := 0
	if sh.k > 1 {
		q, err := engine.New(sh.reg).Compile(text)
		if err != nil {
			return Quote{}, fmt.Errorf("service: compiling %q: %w", id, err)
		}
		ck := "id\x00" + id
		if sh.shapeFactor {
			ck = coordClassKey(q, opts)
		}
		if owner, placed := sh.classShard[ck]; placed {
			target = owner
		} else {
			prof := shard.Profile(id, q.Tree())
			target = shard.PlaceOne(prof, sh.profilesLocked(), sh.assign, sh.shardConfig())
		}
	}
	type quoter interface {
		QuoteRegister(id, text string, opts ...QueryOption) (Quote, error)
	}
	if w, ok := sh.workers[target].(quoter); ok {
		return w.QuoteRegister(id, text, opts...)
	}
	// Remote worker: quote the no-sharing upper bound from a neutral
	// compile (prior probabilities, static costs, cold cache).
	q, err := engine.New(sh.reg).Compile(text)
	if err != nil {
		return Quote{}, fmt.Errorf("service: compiling %q: %w", id, err)
	}
	tree := q.Tree()
	cold := make(sched.Warm, len(tree.Streams))
	for k, d := range tree.StreamMaxItems() {
		cold[k] = make([]bool, d)
	}
	p := fleet.PlanJoint([]*query.Tree{tree}, cold)
	return Quote{MarginalJPerTick: p.Expected, IndependentJPerTick: p.Expected}, nil
}

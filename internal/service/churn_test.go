package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestShardedChurnRepartitionTickRace races register/unregister churn
// and manual repartitions against in-flight ticks on the relay-enabled
// 4-shard runtime (meaningful under -race). The coordinator serializes
// the operations behind its lock, so whatever the interleaving:
//
//   - no tick reports an error or the same query twice,
//   - every stable query executes exactly once per tick,
//   - the merged fleet metrics count exactly the executions the tick
//     results reported — churn and query moves drop nothing and
//     double-report nothing.
func TestShardedChurnRepartitionTickRace(t *testing.T) {
	const tenants, shards, ticks = 8, 4, 60
	reg := overlapRegistry(t, tenants, 31)
	sh := NewSharded(reg, shards, WithWorkers(2), WithRelay(0.1))
	overlapFleet(t, sh, tenants)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ephemeral queries register and unregister as fast as the lock
	// admits them; some live across a tick boundary and execute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("churn%d", i%5)
			if err := sh.Register(id, fmt.Sprintf("AVG(private%d,4) > 0.2 [p=0.5]", i%tenants)); err != nil {
				t.Errorf("churn register %s: %v", id, err)
				return
			}
			if err := sh.Unregister(id); err != nil {
				t.Errorf("churn unregister %s: %v", id, err)
				return
			}
		}
	}()

	// Full repartitions race the ticks too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.Repartition()
			time.Sleep(time.Millisecond)
		}
	}()

	stable := map[string]int{}
	var total int64
	for i := 0; i < ticks; i++ {
		tr := sh.Tick()
		seen := map[string]bool{}
		for _, e := range tr.Executions {
			if e.Err != "" {
				t.Fatalf("tick %d query %s: %s", i, e.ID, e.Err)
			}
			if seen[e.ID] {
				t.Fatalf("tick %d double-reported query %s", i, e.ID)
			}
			seen[e.ID] = true
			total++
			if strings.HasPrefix(e.ID, "tenant") {
				stable[e.ID]++
			}
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	if len(stable) != tenants {
		t.Fatalf("tick results covered %d stable queries, want %d", len(stable), tenants)
	}
	for id, n := range stable {
		if n != ticks {
			t.Errorf("stable query %s executed %d times across %d ticks", id, n, ticks)
		}
	}
	m := sh.Metrics()
	if m.Executions != total {
		t.Errorf("merged metrics count %d executions, tick results reported %d", m.Executions, total)
	}
	if m.Repartitions == 0 {
		t.Error("manual repartitions never recorded despite racing goroutine")
	}
	// Churn must have been live, not starved out by the tick loop.
	if m.Executions == int64(tenants*ticks) && m.QueriesMoved == 0 {
		t.Logf("note: no churn query crossed a tick and nothing moved; race window may be too narrow")
	}
}

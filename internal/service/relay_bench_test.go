package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// relayBenchResult is one row of BENCH_relay.json.
type relayBenchResult struct {
	Name     string  `json:"name"`
	Unit     string  `json:"unit"`
	Ops      int     `json:"ops"`
	JPerTick float64 `json:"j_per_tick"`
	PerSec   float64 `json:"per_sec"`
}

// relayBenchFile is the machine-readable relay benchmark tracked
// PR-over-PR (and gated by cmd/benchgate): the overlapping-tenant
// corpus at 4 shards, with and without the fleet-global L2 item relay.
type relayBenchFile struct {
	GoMaxProcs   int     `json:"gomaxprocs"`
	Tenants      int     `json:"tenants"`
	Shards       int     `json:"shards"`
	TransferFrac float64 `json:"transfer_frac"`
	// Results holds the realized energy rows (relay/off and relay/on);
	// their j_per_tick fields are the gated metrics.
	Results []relayBenchResult `json:"results"`
	// SharingLostPct is the modelled sharing loss of the relay-less
	// 4-shard placement; SharingLostPctRelay is the residual loss once
	// cross-shard re-acquisitions become transfers at TransferFrac —
	// the number the tentpole acceptance bound (< 25%) is on.
	SharingLostPct      float64 `json:"sharing_lost_pct"`
	SharingLostPctRelay float64 `json:"sharing_lost_pct_relay"`
	// RelayHits / RelayPurchases / TransferSpendPerTick summarize relay
	// traffic in the relay/on run.
	RelayHits            int64   `json:"relay_hits"`
	RelayPurchases       int64   `json:"relay_purchases"`
	TransferSpendPerTick float64 `json:"transfer_spend_per_tick"`
	// RecoveredSavingPct is the realized J/tick gap the relay closed:
	// 100 * (off - on) / off.
	RecoveredSavingPct float64 `json:"recovered_saving_pct"`
}

// TestWriteRelayBenchJSON emits BENCH_relay.json when
// PAOTR_BENCH_RELAY_JSON names an output path (the CI artifact gated by
// cmd/benchgate). Skipped otherwise.
func TestWriteRelayBenchJSON(t *testing.T) {
	out := os.Getenv("PAOTR_BENCH_RELAY_JSON")
	if out == "" {
		t.Skip("set PAOTR_BENCH_RELAY_JSON=<path> to write the benchmark artifact")
	}
	const tenants, shards, ticks = 12, 4, 300
	const frac = 0.1
	run := func(name string, frac float64) (relayBenchResult, Metrics) {
		reg := overlapRegistry(t, tenants, 99)
		opts := []Option{WithWorkers(4)}
		if frac > 0 {
			opts = append(opts, WithRelay(frac))
		}
		sh := NewSharded(reg, shards, opts...)
		overlapFleet(t, sh, tenants)
		sh.Run(3) // steady state
		start := sh.Metrics().PaidCost
		t0 := time.Now()
		sh.Run(ticks)
		dt := time.Since(t0)
		m := sh.Metrics()
		return relayBenchResult{
			Name:     name,
			Unit:     "tick",
			Ops:      ticks,
			JPerTick: (m.PaidCost - start) / ticks,
			PerSec:   float64(ticks) / dt.Seconds(),
		}, m
	}
	off, offM := run("relay/off", 0)
	on, onM := run("relay/on", frac)

	file := relayBenchFile{
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Tenants:             tenants,
		Shards:              shards,
		TransferFrac:        frac,
		Results:             []relayBenchResult{off, on},
		SharingLostPct:      offM.SharingLostPct,
		SharingLostPctRelay: onM.SharingLostPctRelay,
		RelayHits:           onM.RelayHits,
		RelayPurchases:      onM.RelayPurchases,
	}
	if onM.Ticks > 0 {
		file.TransferSpendPerTick = onM.RelayTransferSpend / float64(onM.Ticks)
	}
	if off.JPerTick > 0 {
		file.RecoveredSavingPct = 100 * (off.JPerTick - on.JPerTick) / off.JPerTick
	}

	// The tentpole acceptance bound: the relay must bring the modelled
	// sharing loss of the 4-shard placement under 25%.
	if file.SharingLostPctRelay >= 25 {
		t.Errorf("sharing lost with relay = %.1f%%, acceptance bound is < 25%%", file.SharingLostPctRelay)
	}
	if file.SharingLostPctRelay >= file.SharingLostPct {
		t.Errorf("relay loss %.1f%% not below raw loss %.1f%%", file.SharingLostPctRelay, file.SharingLostPct)
	}
	if on.JPerTick >= off.JPerTick {
		t.Errorf("relay run pays %.2f J/tick vs %.2f without — no realized saving", on.JPerTick, off.JPerTick)
	}
	if file.RelayHits == 0 || file.TransferSpendPerTick <= 0 {
		t.Errorf("relay traffic missing from metrics: hits=%d transfer=%.3f J/tick",
			file.RelayHits, file.TransferSpendPerTick)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sharing lost %.1f%% -> %.1f%% with relay (frac %.2f), %.1f -> %.1f J/tick (%.1f%% recovered)",
		out, file.SharingLostPct, file.SharingLostPctRelay, frac, off.JPerTick, on.JPerTick, file.RecoveredSavingPct)
}

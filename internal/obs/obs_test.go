package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketOf pins the bucket boundary arithmetic: every bucket's
// upper bound lands in that bucket, the next nanosecond in the next.
func TestBucketOf(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", got)
	}
	if got := bucketOf(1); got != 0 {
		t.Fatalf("bucketOf(1) = %d, want 0", got)
	}
	for i := 0; i < NumBuckets; i++ {
		bound := int64(BucketBound(i))
		if got := bucketOf(bound); got != i {
			t.Fatalf("bucketOf(%d) = %d, want %d", bound, got, i)
		}
		want := i + 1
		if got := bucketOf(bound + 1); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", bound+1, got, want)
		}
	}
	if got := bucketOf(math.MaxInt64); got != NumBuckets {
		t.Fatalf("bucketOf(MaxInt64) = %d, want overflow bucket %d", got, NumBuckets)
	}
}

// TestHistogramMergeByteIdentical is the property the sharded runtime
// depends on: per-shard histograms merged together must serialize
// byte-identically to a single histogram that observed every sample.
func TestHistogramMergeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const shards = 4
	var whole Histogram
	var parts [shards]Histogram
	for i := 0; i < 20000; i++ {
		// Log-uniform samples from ~100ns to ~10s.
		d := time.Duration(math.Exp(rng.Float64()*math.Log(1e10/1e2)) * 1e2)
		whole.Observe(d)
		parts[i%shards].Observe(d)
	}
	merged := parts[0].Snapshot()
	for i := 1; i < shards; i++ {
		merged.Merge(parts[i].Snapshot())
	}
	wantJSON, err := json.Marshal(whole.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("merged shard snapshots differ from whole-fleet snapshot:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestQuantileWithinOneBucket checks the accuracy contract: every
// quantile estimate must land in the same log-spaced bucket as the
// exact order statistic.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 100 + rng.Intn(5000)
		samples := make([]int64, n)
		for i := range samples {
			ns := int64(math.Exp(rng.Float64()*math.Log(1e9)) + 1)
			samples[i] = ns
			h.Observe(time.Duration(ns))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			est := s.Quantile(q)
			// Ceil before re-bucketing: the interpolated estimate lies
			// strictly inside (lo, hi] but can truncate onto lo.
			if got, want := bucketOf(int64(math.Ceil(est))), bucketOf(exact); got != want {
				t.Fatalf("trial %d q=%v: estimate %v in bucket %d, exact %d in bucket %d",
					trial, q, est, got, exact, want)
			}
		}
	}
}

// TestQuantileEmptyAndClamp covers the degenerate snapshot paths.
func TestQuantileEmptyAndClamp(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", got)
	}
	var h Histogram
	h.Observe(50 * time.Microsecond)
	s = h.Snapshot()
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("q=-1 (%v) should clamp to q=0 (%v)", got, s.Quantile(0))
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("q=2 (%v) should clamp to q=1 (%v)", got, s.Quantile(1))
	}
}

// TestMergeLatency checks the phase-keyed fleet merge, including a
// phase missing on one side.
func TestMergeLatency(t *testing.T) {
	a := NewTickHists()
	b := NewTickHists()
	a.Observe(PhasePlan, time.Millisecond)
	a.Observe(PhaseTotal, 2*time.Millisecond)
	b.Observe(PhaseTotal, 4*time.Millisecond)
	merged := MergeLatency(nil, a.Snapshot())
	merged = MergeLatency(merged, b.Snapshot())
	if got := merged["total"].Count; got != 2 {
		t.Fatalf("merged total count = %d, want 2", got)
	}
	if got := merged["plan"].Count; got != 1 {
		t.Fatalf("merged plan count = %d, want 1", got)
	}
	single := MergeLatency(nil, LatencySnapshot{"only": HistSnapshot{Counts: []int64{1}, Count: 1, SumNs: 10}})
	if got := single["only"].Count; got != 1 {
		t.Fatalf("copied-whole phase count = %d, want 1", got)
	}
}

// TestJournalRingAndFilter exercises eviction, ordering, type filter
// and limits.
func TestJournalRingAndFilter(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		typ := EventDriftTrip
		if i%2 == 1 {
			typ = EventRepartition
		}
		j.Append(Event{Type: typ, Tick: int64(i)})
	}
	all := j.Events("", 0)
	if len(all) != 4 {
		t.Fatalf("retained %d events, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("events out of order: %v", all)
		}
	}
	if got := all[0].Tick; got != 2 {
		t.Fatalf("oldest retained tick = %d, want 2", got)
	}
	trips := j.Events(EventDriftTrip, 0)
	for _, e := range trips {
		if e.Type != EventDriftTrip {
			t.Fatalf("filter leaked %q", e.Type)
		}
	}
	limited := j.Events("", 2)
	if len(limited) != 2 || limited[1].Tick != 5 {
		t.Fatalf("limit=2 returned %v", limited)
	}
	counts := j.CountByType()
	if counts[EventDriftTrip] != 3 || counts[EventRepartition] != 3 {
		t.Fatalf("cumulative counts survived eviction wrong: %v", counts)
	}
	if got := j.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

// TestJournalConcurrent is the -race stress: concurrent appends and
// reads over a small ring must stay consistent.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Append(Event{Type: EventRelayPublish, Shard: w, Stream: i})
			}
		}(w)
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := j.Events("", 0)
				last := int64(0)
				for _, e := range evs {
					if e.Seq <= last {
						t.Error("events out of order under concurrency")
						return
					}
					last = e.Seq
				}
				j.CountByType()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := j.CountByType()[EventRelayPublish]; got != writers*perWriter {
		t.Fatalf("cumulative count = %d, want %d", got, writers*perWriter)
	}
}

// TestTracerGateAndRing covers the sampling gate, multi-shard traces
// for one tick, and ring eviction.
func TestTracerGateAndRing(t *testing.T) {
	tr := NewTracer(4)
	if tr.Sample(0) {
		t.Fatal("disabled tracer sampled a tick")
	}
	before := TracingEnabled()
	tr.SetSample(2)
	defer tr.SetSample(0)
	if !TracingEnabled() {
		t.Fatal("gate not raised by SetSample")
	}
	if !tr.Sample(4) || tr.Sample(5) {
		t.Fatal("sampling period not honored")
	}
	for i := int64(0); i < 12; i += 2 {
		tr.Record(TickTrace{Tick: i, Shard: 0})
		tr.Record(TickTrace{Tick: i, Shard: 1})
	}
	if got := tr.ForTick(0); len(got) != 0 {
		t.Fatalf("evicted tick still returned %d traces", len(got))
	}
	got := tr.ForTick(10)
	if len(got) != 2 || got[0].Shard != 0 || got[1].Shard != 1 {
		t.Fatalf("ForTick(10) = %+v, want both shards in order", got)
	}
	ticks := tr.Ticks()
	if len(ticks) != 2 || ticks[0] != 8 || ticks[1] != 10 {
		t.Fatalf("Ticks() = %v, want [8 10]", ticks)
	}
	tr.SetSample(0)
	if TracingEnabled() != before {
		t.Fatal("gate not restored after disable")
	}
	var nilT *Tracer
	if nilT.Sample(0) || nilT.Sampling() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	nilT.Record(TickTrace{})
	nilT.SetSample(3)
}

// TestTracerSampleNoAlloc pins the disabled-tracer hot path: Sample on
// a disabled tracer must not allocate.
func TestTracerSampleNoAlloc(t *testing.T) {
	tr := NewTracer(8)
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Sample(7) {
			t.Fatal("disabled tracer sampled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Sample allocates %v per call, want 0", allocs)
	}
	var h Histogram
	allocs = testing.AllocsPerRun(1000, func() {
		h.Observe(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v per call, want 0", allocs)
	}
}

// TestPromWriterSelfLint round-trips the encoder through the linter:
// everything the writer emits must pass validation, including a
// histogram family and escaped label values.
func TestPromWriterSelfLint(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Header("paotr_ticks_total", "Total ticks executed.", "counter")
	w.Value("paotr_ticks_total", nil, 12345)
	w.Header("paotr_queries", "Registered queries.", "gauge")
	w.Value("paotr_queries", map[string]string{"shard": "0", "note": `quo"te\n`}, 7)
	w.Header("paotr_tick_seconds", "Tick latency.", "histogram")
	w.Histogram("paotr_tick_seconds", map[string]string{"phase": "total"}, h.Snapshot())
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	rep, err := LintProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("self-lint failed: %v\npayload:\n%s", err, buf.String())
	}
	if rep.Families != 3 {
		t.Fatalf("families = %d, want 3", rep.Families)
	}
	if rep.Samples < NumBuckets+3 {
		t.Fatalf("samples = %d, want at least %d", rep.Samples, NumBuckets+3)
	}
}

// TestLintPromRejects feeds the linter known violations.
func TestLintPromRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload string
	}{
		{"sample before TYPE", "paotr_x 1\n"},
		{"bad name", "# TYPE paotr_y counter\n9bad_name 1\n"},
		{"bad value", "# TYPE paotr_y counter\npaotr_y one\n"},
		{"duplicate series", "# TYPE paotr_y counter\npaotr_y 1\npaotr_y 2\n"},
		{"unknown type", "# TYPE paotr_y countttter\npaotr_y 1\n"},
		{"bucket order", "# TYPE paotr_h histogram\n" +
			`paotr_h_bucket{le="2"} 1` + "\n" +
			`paotr_h_bucket{le="1"} 2` + "\n" +
			`paotr_h_bucket{le="+Inf"} 2` + "\n" +
			"paotr_h_sum 3\npaotr_h_count 2\n"},
		{"bucket not cumulative", "# TYPE paotr_h histogram\n" +
			`paotr_h_bucket{le="1"} 5` + "\n" +
			`paotr_h_bucket{le="2"} 3` + "\n" +
			`paotr_h_bucket{le="+Inf"} 5` + "\n" +
			"paotr_h_sum 3\npaotr_h_count 5\n"},
		{"inf != count", "# TYPE paotr_h histogram\n" +
			`paotr_h_bucket{le="1"} 1` + "\n" +
			`paotr_h_bucket{le="+Inf"} 2` + "\n" +
			"paotr_h_sum 3\npaotr_h_count 5\n"},
		{"missing inf", "# TYPE paotr_h histogram\n" +
			`paotr_h_bucket{le="1"} 1` + "\n" +
			"paotr_h_sum 3\npaotr_h_count 1\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		if _, err := LintProm(bytes.NewReader([]byte(tc.payload))); err == nil {
			t.Errorf("%s: lint accepted invalid payload:\n%s", tc.name, tc.payload)
		}
	}
}

// TestPromFormatFloat pins the sample-value rendering.
func TestPromFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		12345:       "12345",
		0.5:         "0.5",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

// TestJournalNilSafe: unwired components append into a nil journal.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(Event{Type: EventDriftTrip})
	if j.Events("", 0) != nil || j.CountByType() != nil || j.Dropped() != 0 {
		t.Fatal("nil journal must be inert")
	}
}

// TestHistogramSnapshotJSONShape pins the wire shape the HTTP layer
// serves (counts array length, quantile fields present).
func TestHistogramSnapshotJSONShape(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	counts, ok := m["counts"].([]any)
	if !ok || len(counts) != NumBuckets+1 {
		t.Fatalf("counts shape wrong: %v", m["counts"])
	}
	for _, k := range []string{"count", "sum_ns", "p50_ns", "p90_ns", "p99_ns"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", k, raw)
		}
	}
}

func ExamplePromWriter() {
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Header("paotr_ticks_total", "Total ticks executed.", "counter")
	w.Value("paotr_ticks_total", nil, 3)
	fmt.Print(buf.String())
	// Output:
	// # HELP paotr_ticks_total Total ticks executed.
	// # TYPE paotr_ticks_total counter
	// paotr_ticks_total 3
}

package obs

import (
	"sync"
	"sync/atomic"
)

// tracingGate counts enabled tracers process-wide. The hot path asks
// this package-level atomic before doing any per-tick tracing work, so a
// service with tracing disabled (the default) pays one atomic load per
// tick and allocates nothing.
var tracingGate atomic.Int64

// TracingEnabled reports whether any tracer in the process is currently
// sampling. The tick path consults this first; false guarantees the
// whole tracing branch is skipped.
func TracingEnabled() bool { return tracingGate.Load() != 0 }

// ClassTrace is one executed shape class inside a tick trace: which
// leader ran for how many subscribers, whether its plan was a cache hit
// or a replan, and the modelled vs realized cost of the execution.
type ClassTrace struct {
	// Leader is the query id that evaluated for the class this tick;
	// Shape the class's stable plan key (shape hash, or the query id when
	// shape factoring is off); Subscribers how many due identities the
	// verdict fanned out to (including the leader).
	Leader      string `json:"leader"`
	Shape       string `json:"shape"`
	Subscribers int    `json:"subscribers"`
	// PlanReused reports a plan-cache hit; FleetPlanned that the schedule
	// came from the cross-query joint planner.
	PlanReused   bool   `json:"plan_reused"`
	FleetPlanned bool   `json:"fleet_planned,omitempty"`
	Strategy     string `json:"strategy,omitempty"`
	// ExpectedCost is the planner's modelled cost at planning time;
	// RealizedCost what the execution actually paid — the per-class
	// closure of the paper's expected-cost model against reality.
	ExpectedCost float64 `json:"expected_cost"`
	RealizedCost float64 `json:"realized_cost"`
	Evaluated    int     `json:"evaluated"`
	Err          string  `json:"err,omitempty"`
}

// TickTrace is one structured trace of one sampled tick on one service
// (one shard, under the sharded runtime): per-phase durations and the
// per-class planning/execution picture.
type TickTrace struct {
	Tick  int64 `json:"tick"`
	Shard int   `json:"shard"`
	// StartUnixNs is the wall-clock tick start.
	StartUnixNs int64 `json:"start_unix_ns"`
	// Per-phase durations in nanoseconds (see the Phase constants).
	PlanNs    int64 `json:"plan_ns"`
	AcquireNs int64 `json:"acquire_ns"`
	ExecuteNs int64 `json:"execute_ns"`
	FanOutNs  int64 `json:"fanout_ns"`
	TotalNs   int64 `json:"total_ns"`
	// DueQueries counts the due query identities, DueClasses the distinct
	// shape classes they collapsed to (the executed work).
	DueQueries int `json:"due_queries"`
	DueClasses int `json:"due_classes"`
	// Classes holds one entry per executed class, in leader-election
	// order.
	Classes []ClassTrace `json:"classes"`
}

// Tracer records sampled tick traces into a bounded ring buffer. All
// methods are safe for concurrent use and nil-receiver safe. Sampling is
// off by default; SetSample flips the package-level gate so disabled
// tracers cost one atomic load per tick.
type Tracer struct {
	sample atomic.Int64
	mu     sync.Mutex
	ring   []TickTrace
	size   int
	next   int
	filled bool
}

// DefaultTraceCap is the default ring capacity (sampled ticks retained).
const DefaultTraceCap = 256

// NewTracer creates a disabled tracer retaining up to capacity sampled
// ticks (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{size: capacity}
}

// SetSample sets the sampling period: every n-th tick is traced; n <= 0
// disables tracing. Toggling maintains the package-level gate.
func (t *Tracer) SetSample(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	old := t.sample.Swap(int64(n))
	switch {
	case old == 0 && n > 0:
		tracingGate.Add(1)
	case old > 0 && n == 0:
		tracingGate.Add(-1)
	}
}

// Sampling returns the current sampling period (0 = disabled).
func (t *Tracer) Sampling() int {
	if t == nil {
		return 0
	}
	return int(t.sample.Load())
}

// Sample reports whether the given tick should be traced. The disabled
// path is one package-gate load (plus one tracer load when some other
// tracer in the process is enabled) and never allocates.
func (t *Tracer) Sample(tick int64) bool {
	if t == nil || !TracingEnabled() {
		return false
	}
	n := t.sample.Load()
	return n > 0 && tick%n == 0
}

// Record stores one tick trace, evicting the oldest when the ring is
// full. The trace's Classes slice is retained as-is (callers hand over
// ownership).
func (t *Tracer) Record(tr TickTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil {
		t.ring = make([]TickTrace, t.size)
	}
	t.ring[t.next] = tr
	if t.next++; t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// ForTick returns every retained trace of the given tick (one per shard
// under the sharded runtime), in recording order. Empty when the tick
// was not sampled or has been evicted.
func (t *Tracer) ForTick(tick int64) []TickTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TickTrace
	t.scanLocked(func(tr TickTrace) {
		if tr.Tick == tick {
			out = append(out, tr)
		}
	})
	return out
}

// Ticks lists the distinct sampled tick numbers currently retained,
// oldest first.
func (t *Tracer) Ticks() []int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int64
	t.scanLocked(func(tr TickTrace) {
		if n := len(out); n == 0 || out[n-1] != tr.Tick {
			out = append(out, tr.Tick)
		}
	})
	return out
}

// scanLocked visits every retained trace oldest-first. Caller holds
// t.mu.
func (t *Tracer) scanLocked(f func(TickTrace)) {
	if t.ring == nil {
		return
	}
	if t.filled {
		for _, tr := range t.ring[t.next:] {
			f(tr)
		}
	}
	for _, tr := range t.ring[:t.next] {
		f(tr)
	}
}

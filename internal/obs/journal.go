package obs

import (
	"sync"
	"time"
)

// Event kinds recorded in the journal. Each corresponds to a rare
// structural change that previously only bumped a counter.
const (
	// EventDriftTrip: a Page-Hinkley detector tripped on a predicate or
	// stream-cost series (Pred/Stream identify the series, Before/After
	// the estimate across the reset).
	EventDriftTrip = "drift-trip"
	// EventForcedReplan: cached plans were invalidated after a drift trip
	// (Count = plans dropped).
	EventForcedReplan = "forced-replan"
	// EventRepartition: the sharded coordinator rebalanced queries across
	// shards (Count = queries moved).
	EventRepartition = "repartition"
	// EventRelayPublish: a shard published an item to the fleet-global L2
	// relay for the first time (Stream/Detail identify the item).
	EventRelayPublish = "relay-publish"
	// EventEstimatorEviction: the windowed estimator evicted cold
	// predicate traces to stay under its cap (Count = traces evicted).
	EventEstimatorEviction = "estimator-eviction"
	// EventAdmit / EventDefer / EventShed: the admission controller's
	// verdict on a registration (Pred carries the query id, Before the
	// quoted marginal J/tick, Detail "tier=... tenant=... reason=...").
	EventAdmit = "admit"
	EventDefer = "defer"
	EventShed  = "shed"
)

// Event is one timestamped journal entry. Fields not meaningful for a
// kind are zero (Stream is -1 when no stream is involved).
type Event struct {
	// Seq is a monotonically increasing sequence number assigned at
	// append; UnixNs the wall-clock append time.
	Seq    int64  `json:"seq"`
	UnixNs int64  `json:"unix_ns"`
	Type   string `json:"type"`
	// Tick is the service tick during which the event fired (0 when the
	// event fired outside a tick), Shard the originating shard index.
	Tick  int64 `json:"tick,omitempty"`
	Shard int   `json:"shard"`
	// Stream/Pred identify the affected series or plan key.
	Stream int    `json:"stream,omitempty"`
	Pred   string `json:"pred,omitempty"`
	// Before/After carry estimate values across a reset (drift trips).
	Before float64 `json:"before,omitempty"`
	After  float64 `json:"after,omitempty"`
	// Count is the magnitude of bulk events (plans dropped, queries
	// moved, traces evicted).
	Count  int    `json:"count,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// DefaultJournalCap is the default journal ring capacity.
const DefaultJournalCap = 1024

// Journal is a bounded ring buffer of typed events. Appends on a full
// ring evict the oldest entry; per-type counts survive eviction so
// exposition stays cumulative. Safe for concurrent use; the zero-cost
// invariant is structural — appends happen only on rare events, never
// on the per-tick path.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	size    int
	next    int
	filled  bool
	seq     int64
	dropped int64
	byType  map[string]int64
	clock   func() int64
}

// NewJournal creates a journal retaining up to capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{size: capacity, byType: make(map[string]int64)}
}

// Append records one event, stamping Seq and UnixNs. Nil-receiver safe
// so unwired components can call unconditionally.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if j.clock != nil {
		e.UnixNs = j.clock()
	} else {
		e.UnixNs = time.Now().UnixNano()
	}
	j.byType[e.Type]++
	if j.ring == nil {
		j.ring = make([]Event, j.size)
	}
	if j.filled {
		j.dropped++
	}
	j.ring[j.next] = e
	if j.next++; j.next == len(j.ring) {
		j.next = 0
		j.filled = true
	}
}

// Events returns retained events in chronological order, filtered to
// typ when non-empty and truncated to the most recent limit entries
// when limit > 0.
func (j *Journal) Events(typ string, limit int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	scan := func(evs []Event) {
		for _, e := range evs {
			if e.Type != "" && (typ == "" || e.Type == typ) {
				out = append(out, e)
			}
		}
	}
	if j.filled {
		scan(j.ring[j.next:])
	}
	if j.ring != nil {
		scan(j.ring[:j.next])
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// CountByType returns the cumulative per-type event counts (including
// evicted events).
func (j *Journal) CountByType() map[string]int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int64, len(j.byType))
	for k, v := range j.byType {
		out[k] = v
	}
	return out
}

// Dropped returns how many events have been evicted from the ring.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
